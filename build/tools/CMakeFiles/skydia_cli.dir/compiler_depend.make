# Empty compiler generated dependencies file for skydia_cli.
# This may be replaced when dependencies are built.
