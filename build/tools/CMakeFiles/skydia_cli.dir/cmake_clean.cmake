file(REMOVE_RECURSE
  "CMakeFiles/skydia_cli.dir/skydia_cli.cc.o"
  "CMakeFiles/skydia_cli.dir/skydia_cli.cc.o.d"
  "skydia"
  "skydia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skydia_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
