file(REMOVE_RECURSE
  "CMakeFiles/skydia_skyline_test.dir/skyline/algorithms_test.cc.o"
  "CMakeFiles/skydia_skyline_test.dir/skyline/algorithms_test.cc.o.d"
  "CMakeFiles/skydia_skyline_test.dir/skyline/dominance_test.cc.o"
  "CMakeFiles/skydia_skyline_test.dir/skyline/dominance_test.cc.o.d"
  "CMakeFiles/skydia_skyline_test.dir/skyline/dsg_test.cc.o"
  "CMakeFiles/skydia_skyline_test.dir/skyline/dsg_test.cc.o.d"
  "CMakeFiles/skydia_skyline_test.dir/skyline/interning_test.cc.o"
  "CMakeFiles/skydia_skyline_test.dir/skyline/interning_test.cc.o.d"
  "CMakeFiles/skydia_skyline_test.dir/skyline/layers_test.cc.o"
  "CMakeFiles/skydia_skyline_test.dir/skyline/layers_test.cc.o.d"
  "CMakeFiles/skydia_skyline_test.dir/skyline/query_test.cc.o"
  "CMakeFiles/skydia_skyline_test.dir/skyline/query_test.cc.o.d"
  "skydia_skyline_test"
  "skydia_skyline_test.pdb"
  "skydia_skyline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skydia_skyline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
