# Empty compiler generated dependencies file for skydia_skyline_test.
# This may be replaced when dependencies are built.
