
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/skyline/algorithms_test.cc" "tests/CMakeFiles/skydia_skyline_test.dir/skyline/algorithms_test.cc.o" "gcc" "tests/CMakeFiles/skydia_skyline_test.dir/skyline/algorithms_test.cc.o.d"
  "/root/repo/tests/skyline/dominance_test.cc" "tests/CMakeFiles/skydia_skyline_test.dir/skyline/dominance_test.cc.o" "gcc" "tests/CMakeFiles/skydia_skyline_test.dir/skyline/dominance_test.cc.o.d"
  "/root/repo/tests/skyline/dsg_test.cc" "tests/CMakeFiles/skydia_skyline_test.dir/skyline/dsg_test.cc.o" "gcc" "tests/CMakeFiles/skydia_skyline_test.dir/skyline/dsg_test.cc.o.d"
  "/root/repo/tests/skyline/interning_test.cc" "tests/CMakeFiles/skydia_skyline_test.dir/skyline/interning_test.cc.o" "gcc" "tests/CMakeFiles/skydia_skyline_test.dir/skyline/interning_test.cc.o.d"
  "/root/repo/tests/skyline/layers_test.cc" "tests/CMakeFiles/skydia_skyline_test.dir/skyline/layers_test.cc.o" "gcc" "tests/CMakeFiles/skydia_skyline_test.dir/skyline/layers_test.cc.o.d"
  "/root/repo/tests/skyline/query_test.cc" "tests/CMakeFiles/skydia_skyline_test.dir/skyline/query_test.cc.o" "gcc" "tests/CMakeFiles/skydia_skyline_test.dir/skyline/query_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skydia.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
