# Empty dependencies file for skydia_datagen_test.
# This may be replaced when dependencies are built.
