file(REMOVE_RECURSE
  "CMakeFiles/skydia_datagen_test.dir/datagen/distributions_test.cc.o"
  "CMakeFiles/skydia_datagen_test.dir/datagen/distributions_test.cc.o.d"
  "CMakeFiles/skydia_datagen_test.dir/datagen/real_data_test.cc.o"
  "CMakeFiles/skydia_datagen_test.dir/datagen/real_data_test.cc.o.d"
  "CMakeFiles/skydia_datagen_test.dir/datagen/workload_test.cc.o"
  "CMakeFiles/skydia_datagen_test.dir/datagen/workload_test.cc.o.d"
  "skydia_datagen_test"
  "skydia_datagen_test.pdb"
  "skydia_datagen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skydia_datagen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
