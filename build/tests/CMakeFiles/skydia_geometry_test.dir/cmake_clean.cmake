file(REMOVE_RECURSE
  "CMakeFiles/skydia_geometry_test.dir/geometry/dataset_test.cc.o"
  "CMakeFiles/skydia_geometry_test.dir/geometry/dataset_test.cc.o.d"
  "CMakeFiles/skydia_geometry_test.dir/geometry/grid_test.cc.o"
  "CMakeFiles/skydia_geometry_test.dir/geometry/grid_test.cc.o.d"
  "CMakeFiles/skydia_geometry_test.dir/geometry/point_test.cc.o"
  "CMakeFiles/skydia_geometry_test.dir/geometry/point_test.cc.o.d"
  "CMakeFiles/skydia_geometry_test.dir/geometry/polyomino_test.cc.o"
  "CMakeFiles/skydia_geometry_test.dir/geometry/polyomino_test.cc.o.d"
  "skydia_geometry_test"
  "skydia_geometry_test.pdb"
  "skydia_geometry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skydia_geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
