# Empty dependencies file for skydia_geometry_test.
# This may be replaced when dependencies are built.
