file(REMOVE_RECURSE
  "CMakeFiles/skydia_core_extras_test.dir/core/incremental_test.cc.o"
  "CMakeFiles/skydia_core_extras_test.dir/core/incremental_test.cc.o.d"
  "CMakeFiles/skydia_core_extras_test.dir/core/parallel_test.cc.o"
  "CMakeFiles/skydia_core_extras_test.dir/core/parallel_test.cc.o.d"
  "CMakeFiles/skydia_core_extras_test.dir/core/range_query_test.cc.o"
  "CMakeFiles/skydia_core_extras_test.dir/core/range_query_test.cc.o.d"
  "CMakeFiles/skydia_core_extras_test.dir/core/render_svg_test.cc.o"
  "CMakeFiles/skydia_core_extras_test.dir/core/render_svg_test.cc.o.d"
  "CMakeFiles/skydia_core_extras_test.dir/core/serialize_test.cc.o"
  "CMakeFiles/skydia_core_extras_test.dir/core/serialize_test.cc.o.d"
  "skydia_core_extras_test"
  "skydia_core_extras_test.pdb"
  "skydia_core_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skydia_core_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
