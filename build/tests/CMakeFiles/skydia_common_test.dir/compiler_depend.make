# Empty compiler generated dependencies file for skydia_common_test.
# This may be replaced when dependencies are built.
