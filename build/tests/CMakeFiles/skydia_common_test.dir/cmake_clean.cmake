file(REMOVE_RECURSE
  "CMakeFiles/skydia_common_test.dir/common/csv_test.cc.o"
  "CMakeFiles/skydia_common_test.dir/common/csv_test.cc.o.d"
  "CMakeFiles/skydia_common_test.dir/common/hash_test.cc.o"
  "CMakeFiles/skydia_common_test.dir/common/hash_test.cc.o.d"
  "CMakeFiles/skydia_common_test.dir/common/logging_test.cc.o"
  "CMakeFiles/skydia_common_test.dir/common/logging_test.cc.o.d"
  "CMakeFiles/skydia_common_test.dir/common/random_test.cc.o"
  "CMakeFiles/skydia_common_test.dir/common/random_test.cc.o.d"
  "CMakeFiles/skydia_common_test.dir/common/sha256_test.cc.o"
  "CMakeFiles/skydia_common_test.dir/common/sha256_test.cc.o.d"
  "CMakeFiles/skydia_common_test.dir/common/status_test.cc.o"
  "CMakeFiles/skydia_common_test.dir/common/status_test.cc.o.d"
  "CMakeFiles/skydia_common_test.dir/common/thread_pool_test.cc.o"
  "CMakeFiles/skydia_common_test.dir/common/thread_pool_test.cc.o.d"
  "skydia_common_test"
  "skydia_common_test.pdb"
  "skydia_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skydia_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
