file(REMOVE_RECURSE
  "CMakeFiles/skydia_core_dynamic_test.dir/core/dynamic_diagram_test.cc.o"
  "CMakeFiles/skydia_core_dynamic_test.dir/core/dynamic_diagram_test.cc.o.d"
  "CMakeFiles/skydia_core_dynamic_test.dir/core/subcell_grid_test.cc.o"
  "CMakeFiles/skydia_core_dynamic_test.dir/core/subcell_grid_test.cc.o.d"
  "skydia_core_dynamic_test"
  "skydia_core_dynamic_test.pdb"
  "skydia_core_dynamic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skydia_core_dynamic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
