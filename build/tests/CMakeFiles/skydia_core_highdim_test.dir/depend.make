# Empty dependencies file for skydia_core_highdim_test.
# This may be replaced when dependencies are built.
