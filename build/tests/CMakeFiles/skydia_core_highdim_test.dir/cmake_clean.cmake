file(REMOVE_RECURSE
  "CMakeFiles/skydia_core_highdim_test.dir/core/highdim_test.cc.o"
  "CMakeFiles/skydia_core_highdim_test.dir/core/highdim_test.cc.o.d"
  "skydia_core_highdim_test"
  "skydia_core_highdim_test.pdb"
  "skydia_core_highdim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skydia_core_highdim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
