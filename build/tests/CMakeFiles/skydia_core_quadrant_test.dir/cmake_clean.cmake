file(REMOVE_RECURSE
  "CMakeFiles/skydia_core_quadrant_test.dir/core/global_diagram_test.cc.o"
  "CMakeFiles/skydia_core_quadrant_test.dir/core/global_diagram_test.cc.o.d"
  "CMakeFiles/skydia_core_quadrant_test.dir/core/merge_test.cc.o"
  "CMakeFiles/skydia_core_quadrant_test.dir/core/merge_test.cc.o.d"
  "CMakeFiles/skydia_core_quadrant_test.dir/core/quadrant_diagram_test.cc.o"
  "CMakeFiles/skydia_core_quadrant_test.dir/core/quadrant_diagram_test.cc.o.d"
  "CMakeFiles/skydia_core_quadrant_test.dir/core/sweeping_test.cc.o"
  "CMakeFiles/skydia_core_quadrant_test.dir/core/sweeping_test.cc.o.d"
  "CMakeFiles/skydia_core_quadrant_test.dir/core/theorems_test.cc.o"
  "CMakeFiles/skydia_core_quadrant_test.dir/core/theorems_test.cc.o.d"
  "skydia_core_quadrant_test"
  "skydia_core_quadrant_test.pdb"
  "skydia_core_quadrant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skydia_core_quadrant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
