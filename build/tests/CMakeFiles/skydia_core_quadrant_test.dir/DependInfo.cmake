
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/global_diagram_test.cc" "tests/CMakeFiles/skydia_core_quadrant_test.dir/core/global_diagram_test.cc.o" "gcc" "tests/CMakeFiles/skydia_core_quadrant_test.dir/core/global_diagram_test.cc.o.d"
  "/root/repo/tests/core/merge_test.cc" "tests/CMakeFiles/skydia_core_quadrant_test.dir/core/merge_test.cc.o" "gcc" "tests/CMakeFiles/skydia_core_quadrant_test.dir/core/merge_test.cc.o.d"
  "/root/repo/tests/core/quadrant_diagram_test.cc" "tests/CMakeFiles/skydia_core_quadrant_test.dir/core/quadrant_diagram_test.cc.o" "gcc" "tests/CMakeFiles/skydia_core_quadrant_test.dir/core/quadrant_diagram_test.cc.o.d"
  "/root/repo/tests/core/sweeping_test.cc" "tests/CMakeFiles/skydia_core_quadrant_test.dir/core/sweeping_test.cc.o" "gcc" "tests/CMakeFiles/skydia_core_quadrant_test.dir/core/sweeping_test.cc.o.d"
  "/root/repo/tests/core/theorems_test.cc" "tests/CMakeFiles/skydia_core_quadrant_test.dir/core/theorems_test.cc.o" "gcc" "tests/CMakeFiles/skydia_core_quadrant_test.dir/core/theorems_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skydia.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
