# Empty dependencies file for skydia_core_quadrant_test.
# This may be replaced when dependencies are built.
