# Empty compiler generated dependencies file for skydia_diagram_test.
# This may be replaced when dependencies are built.
