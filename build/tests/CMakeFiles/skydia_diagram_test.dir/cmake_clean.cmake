file(REMOVE_RECURSE
  "CMakeFiles/skydia_diagram_test.dir/core/diagram_test.cc.o"
  "CMakeFiles/skydia_diagram_test.dir/core/diagram_test.cc.o.d"
  "skydia_diagram_test"
  "skydia_diagram_test.pdb"
  "skydia_diagram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skydia_diagram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
