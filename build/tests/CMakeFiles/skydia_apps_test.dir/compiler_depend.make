# Empty compiler generated dependencies file for skydia_apps_test.
# This may be replaced when dependencies are built.
