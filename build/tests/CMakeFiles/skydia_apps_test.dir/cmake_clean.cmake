file(REMOVE_RECURSE
  "CMakeFiles/skydia_apps_test.dir/apps/authentication_test.cc.o"
  "CMakeFiles/skydia_apps_test.dir/apps/authentication_test.cc.o.d"
  "CMakeFiles/skydia_apps_test.dir/apps/pir_test.cc.o"
  "CMakeFiles/skydia_apps_test.dir/apps/pir_test.cc.o.d"
  "CMakeFiles/skydia_apps_test.dir/apps/reverse_skyline_test.cc.o"
  "CMakeFiles/skydia_apps_test.dir/apps/reverse_skyline_test.cc.o.d"
  "skydia_apps_test"
  "skydia_apps_test.pdb"
  "skydia_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skydia_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
