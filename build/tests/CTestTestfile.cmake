# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/skydia_common_test[1]_include.cmake")
include("/root/repo/build/tests/skydia_geometry_test[1]_include.cmake")
include("/root/repo/build/tests/skydia_skyline_test[1]_include.cmake")
include("/root/repo/build/tests/skydia_core_quadrant_test[1]_include.cmake")
include("/root/repo/build/tests/skydia_core_dynamic_test[1]_include.cmake")
include("/root/repo/build/tests/skydia_core_highdim_test[1]_include.cmake")
include("/root/repo/build/tests/skydia_diagram_test[1]_include.cmake")
include("/root/repo/build/tests/skydia_core_extras_test[1]_include.cmake")
include("/root/repo/build/tests/skydia_datagen_test[1]_include.cmake")
include("/root/repo/build/tests/skydia_apps_test[1]_include.cmake")
