# Empty compiler generated dependencies file for bench_highdim.
# This may be replaced when dependencies are built.
