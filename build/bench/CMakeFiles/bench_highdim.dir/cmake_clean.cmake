file(REMOVE_RECURSE
  "CMakeFiles/bench_highdim.dir/bench_highdim.cc.o"
  "CMakeFiles/bench_highdim.dir/bench_highdim.cc.o.d"
  "bench_highdim"
  "bench_highdim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_highdim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
