# Empty compiler generated dependencies file for bench_quadrant_domain.
# This may be replaced when dependencies are built.
