file(REMOVE_RECURSE
  "CMakeFiles/bench_quadrant_domain.dir/bench_quadrant_domain.cc.o"
  "CMakeFiles/bench_quadrant_domain.dir/bench_quadrant_domain.cc.o.d"
  "bench_quadrant_domain"
  "bench_quadrant_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quadrant_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
