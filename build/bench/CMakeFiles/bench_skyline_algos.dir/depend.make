# Empty dependencies file for bench_skyline_algos.
# This may be replaced when dependencies are built.
