file(REMOVE_RECURSE
  "CMakeFiles/bench_skyline_algos.dir/bench_skyline_algos.cc.o"
  "CMakeFiles/bench_skyline_algos.dir/bench_skyline_algos.cc.o.d"
  "bench_skyline_algos"
  "bench_skyline_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skyline_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
