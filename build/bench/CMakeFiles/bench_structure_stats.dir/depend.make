# Empty dependencies file for bench_structure_stats.
# This may be replaced when dependencies are built.
