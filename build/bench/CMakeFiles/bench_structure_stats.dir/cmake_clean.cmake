file(REMOVE_RECURSE
  "CMakeFiles/bench_structure_stats.dir/bench_structure_stats.cc.o"
  "CMakeFiles/bench_structure_stats.dir/bench_structure_stats.cc.o.d"
  "bench_structure_stats"
  "bench_structure_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_structure_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
