file(REMOVE_RECURSE
  "CMakeFiles/bench_quadrant_scaling.dir/bench_quadrant_scaling.cc.o"
  "CMakeFiles/bench_quadrant_scaling.dir/bench_quadrant_scaling.cc.o.d"
  "bench_quadrant_scaling"
  "bench_quadrant_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quadrant_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
