# Empty compiler generated dependencies file for bench_quadrant_scaling.
# This may be replaced when dependencies are built.
