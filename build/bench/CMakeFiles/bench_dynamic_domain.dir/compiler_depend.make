# Empty compiler generated dependencies file for bench_dynamic_domain.
# This may be replaced when dependencies are built.
