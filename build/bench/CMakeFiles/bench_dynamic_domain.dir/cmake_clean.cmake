file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_domain.dir/bench_dynamic_domain.cc.o"
  "CMakeFiles/bench_dynamic_domain.dir/bench_dynamic_domain.cc.o.d"
  "bench_dynamic_domain"
  "bench_dynamic_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
