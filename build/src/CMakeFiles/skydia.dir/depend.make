# Empty dependencies file for skydia.
# This may be replaced when dependencies are built.
