
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/authentication.cc" "src/CMakeFiles/skydia.dir/apps/authentication.cc.o" "gcc" "src/CMakeFiles/skydia.dir/apps/authentication.cc.o.d"
  "/root/repo/src/apps/pir.cc" "src/CMakeFiles/skydia.dir/apps/pir.cc.o" "gcc" "src/CMakeFiles/skydia.dir/apps/pir.cc.o.d"
  "/root/repo/src/apps/reverse_skyline.cc" "src/CMakeFiles/skydia.dir/apps/reverse_skyline.cc.o" "gcc" "src/CMakeFiles/skydia.dir/apps/reverse_skyline.cc.o.d"
  "/root/repo/src/common/csv.cc" "src/CMakeFiles/skydia.dir/common/csv.cc.o" "gcc" "src/CMakeFiles/skydia.dir/common/csv.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/skydia.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/skydia.dir/common/hash.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/skydia.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/skydia.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/skydia.dir/common/random.cc.o" "gcc" "src/CMakeFiles/skydia.dir/common/random.cc.o.d"
  "/root/repo/src/common/sha256.cc" "src/CMakeFiles/skydia.dir/common/sha256.cc.o" "gcc" "src/CMakeFiles/skydia.dir/common/sha256.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/skydia.dir/common/status.cc.o" "gcc" "src/CMakeFiles/skydia.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/skydia.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/skydia.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/core/diagram.cc" "src/CMakeFiles/skydia.dir/core/diagram.cc.o" "gcc" "src/CMakeFiles/skydia.dir/core/diagram.cc.o.d"
  "/root/repo/src/core/dynamic_baseline.cc" "src/CMakeFiles/skydia.dir/core/dynamic_baseline.cc.o" "gcc" "src/CMakeFiles/skydia.dir/core/dynamic_baseline.cc.o.d"
  "/root/repo/src/core/dynamic_scanning.cc" "src/CMakeFiles/skydia.dir/core/dynamic_scanning.cc.o" "gcc" "src/CMakeFiles/skydia.dir/core/dynamic_scanning.cc.o.d"
  "/root/repo/src/core/dynamic_subset.cc" "src/CMakeFiles/skydia.dir/core/dynamic_subset.cc.o" "gcc" "src/CMakeFiles/skydia.dir/core/dynamic_subset.cc.o.d"
  "/root/repo/src/core/global_diagram.cc" "src/CMakeFiles/skydia.dir/core/global_diagram.cc.o" "gcc" "src/CMakeFiles/skydia.dir/core/global_diagram.cc.o.d"
  "/root/repo/src/core/highdim.cc" "src/CMakeFiles/skydia.dir/core/highdim.cc.o" "gcc" "src/CMakeFiles/skydia.dir/core/highdim.cc.o.d"
  "/root/repo/src/core/incremental.cc" "src/CMakeFiles/skydia.dir/core/incremental.cc.o" "gcc" "src/CMakeFiles/skydia.dir/core/incremental.cc.o.d"
  "/root/repo/src/core/merge.cc" "src/CMakeFiles/skydia.dir/core/merge.cc.o" "gcc" "src/CMakeFiles/skydia.dir/core/merge.cc.o.d"
  "/root/repo/src/core/parallel.cc" "src/CMakeFiles/skydia.dir/core/parallel.cc.o" "gcc" "src/CMakeFiles/skydia.dir/core/parallel.cc.o.d"
  "/root/repo/src/core/quadrant_baseline.cc" "src/CMakeFiles/skydia.dir/core/quadrant_baseline.cc.o" "gcc" "src/CMakeFiles/skydia.dir/core/quadrant_baseline.cc.o.d"
  "/root/repo/src/core/quadrant_dsg.cc" "src/CMakeFiles/skydia.dir/core/quadrant_dsg.cc.o" "gcc" "src/CMakeFiles/skydia.dir/core/quadrant_dsg.cc.o.d"
  "/root/repo/src/core/quadrant_scanning.cc" "src/CMakeFiles/skydia.dir/core/quadrant_scanning.cc.o" "gcc" "src/CMakeFiles/skydia.dir/core/quadrant_scanning.cc.o.d"
  "/root/repo/src/core/quadrant_sweeping.cc" "src/CMakeFiles/skydia.dir/core/quadrant_sweeping.cc.o" "gcc" "src/CMakeFiles/skydia.dir/core/quadrant_sweeping.cc.o.d"
  "/root/repo/src/core/range_query.cc" "src/CMakeFiles/skydia.dir/core/range_query.cc.o" "gcc" "src/CMakeFiles/skydia.dir/core/range_query.cc.o.d"
  "/root/repo/src/core/render_svg.cc" "src/CMakeFiles/skydia.dir/core/render_svg.cc.o" "gcc" "src/CMakeFiles/skydia.dir/core/render_svg.cc.o.d"
  "/root/repo/src/core/serialize.cc" "src/CMakeFiles/skydia.dir/core/serialize.cc.o" "gcc" "src/CMakeFiles/skydia.dir/core/serialize.cc.o.d"
  "/root/repo/src/core/skyline_cell.cc" "src/CMakeFiles/skydia.dir/core/skyline_cell.cc.o" "gcc" "src/CMakeFiles/skydia.dir/core/skyline_cell.cc.o.d"
  "/root/repo/src/core/subcell_grid.cc" "src/CMakeFiles/skydia.dir/core/subcell_grid.cc.o" "gcc" "src/CMakeFiles/skydia.dir/core/subcell_grid.cc.o.d"
  "/root/repo/src/datagen/distributions.cc" "src/CMakeFiles/skydia.dir/datagen/distributions.cc.o" "gcc" "src/CMakeFiles/skydia.dir/datagen/distributions.cc.o.d"
  "/root/repo/src/datagen/real_data.cc" "src/CMakeFiles/skydia.dir/datagen/real_data.cc.o" "gcc" "src/CMakeFiles/skydia.dir/datagen/real_data.cc.o.d"
  "/root/repo/src/datagen/workload.cc" "src/CMakeFiles/skydia.dir/datagen/workload.cc.o" "gcc" "src/CMakeFiles/skydia.dir/datagen/workload.cc.o.d"
  "/root/repo/src/geometry/dataset.cc" "src/CMakeFiles/skydia.dir/geometry/dataset.cc.o" "gcc" "src/CMakeFiles/skydia.dir/geometry/dataset.cc.o.d"
  "/root/repo/src/geometry/grid.cc" "src/CMakeFiles/skydia.dir/geometry/grid.cc.o" "gcc" "src/CMakeFiles/skydia.dir/geometry/grid.cc.o.d"
  "/root/repo/src/geometry/point.cc" "src/CMakeFiles/skydia.dir/geometry/point.cc.o" "gcc" "src/CMakeFiles/skydia.dir/geometry/point.cc.o.d"
  "/root/repo/src/geometry/polyomino.cc" "src/CMakeFiles/skydia.dir/geometry/polyomino.cc.o" "gcc" "src/CMakeFiles/skydia.dir/geometry/polyomino.cc.o.d"
  "/root/repo/src/skyline/algorithms.cc" "src/CMakeFiles/skydia.dir/skyline/algorithms.cc.o" "gcc" "src/CMakeFiles/skydia.dir/skyline/algorithms.cc.o.d"
  "/root/repo/src/skyline/dominance.cc" "src/CMakeFiles/skydia.dir/skyline/dominance.cc.o" "gcc" "src/CMakeFiles/skydia.dir/skyline/dominance.cc.o.d"
  "/root/repo/src/skyline/dsg.cc" "src/CMakeFiles/skydia.dir/skyline/dsg.cc.o" "gcc" "src/CMakeFiles/skydia.dir/skyline/dsg.cc.o.d"
  "/root/repo/src/skyline/interning.cc" "src/CMakeFiles/skydia.dir/skyline/interning.cc.o" "gcc" "src/CMakeFiles/skydia.dir/skyline/interning.cc.o.d"
  "/root/repo/src/skyline/layers.cc" "src/CMakeFiles/skydia.dir/skyline/layers.cc.o" "gcc" "src/CMakeFiles/skydia.dir/skyline/layers.cc.o.d"
  "/root/repo/src/skyline/query.cc" "src/CMakeFiles/skydia.dir/skyline/query.cc.o" "gcc" "src/CMakeFiles/skydia.dir/skyline/query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
