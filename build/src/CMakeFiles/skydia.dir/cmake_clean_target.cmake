file(REMOVE_RECURSE
  "libskydia.a"
)
