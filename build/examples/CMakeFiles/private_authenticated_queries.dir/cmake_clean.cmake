file(REMOVE_RECURSE
  "CMakeFiles/private_authenticated_queries.dir/private_authenticated_queries.cpp.o"
  "CMakeFiles/private_authenticated_queries.dir/private_authenticated_queries.cpp.o.d"
  "private_authenticated_queries"
  "private_authenticated_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_authenticated_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
