# Empty compiler generated dependencies file for private_authenticated_queries.
# This may be replaced when dependencies are built.
