# Empty dependencies file for safe_zone_monitor.
# This may be replaced when dependencies are built.
