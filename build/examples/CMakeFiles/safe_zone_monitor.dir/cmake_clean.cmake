file(REMOVE_RECURSE
  "CMakeFiles/safe_zone_monitor.dir/safe_zone_monitor.cpp.o"
  "CMakeFiles/safe_zone_monitor.dir/safe_zone_monitor.cpp.o.d"
  "safe_zone_monitor"
  "safe_zone_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_zone_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
