file(REMOVE_RECURSE
  "CMakeFiles/reverse_skyline_demo.dir/reverse_skyline_demo.cpp.o"
  "CMakeFiles/reverse_skyline_demo.dir/reverse_skyline_demo.cpp.o.d"
  "reverse_skyline_demo"
  "reverse_skyline_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reverse_skyline_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
