# Empty compiler generated dependencies file for reverse_skyline_demo.
# This may be replaced when dependencies are built.
