file(REMOVE_RECURSE
  "CMakeFiles/hotel_pricing.dir/hotel_pricing.cpp.o"
  "CMakeFiles/hotel_pricing.dir/hotel_pricing.cpp.o.d"
  "hotel_pricing"
  "hotel_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotel_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
