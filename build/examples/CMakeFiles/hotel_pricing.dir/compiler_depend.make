# Empty compiler generated dependencies file for hotel_pricing.
# This may be replaced when dependencies are built.
