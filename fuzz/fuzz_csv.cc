// Fuzz target: the CSV reader (src/common/csv.cc) — the entry point for
// every real-data dataset and the `skydia query` points file, i.e. bytes
// the user hands the process from disk.
//
// Invariants under fuzz: ParseCsv never throws or over-reads; a document it
// accepts survives a Write -> Parse round trip with identical rows (the
// writer's quoting must cover everything the reader can produce).
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "src/common/csv.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  auto doc = skydia::ParseCsv(text);
  if (!doc.ok()) return 0;
  const std::string written = skydia::WriteCsv(*doc);
  auto reparsed = skydia::ParseCsv(written);
  if (!reparsed.ok()) std::abort();
  if (reparsed->rows != doc->rows) std::abort();
  return 0;
}
