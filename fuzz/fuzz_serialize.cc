// Fuzz target: the v1/v2 diagram blob deserializer (src/core/serialize.cc).
//
// Snapshot blobs cross trust boundaries twice — the serve daemon loads
// whatever path a reload names, and the outsourcing applications load files
// an untrusted server returns — so the reader must treat every byte as
// hostile: malformed input returns Status::Corruption, never throws, never
// over-reads, never over-allocates past its declared caps.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "src/core/serialize.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  // Both readers must survive arbitrary bytes. A success is legitimate only
  // for an actually-valid blob (the corpus seeds some); a parsed v2 blob
  // must then re-serialize byte-identically, which pins the writer/reader
  // pair together. (v1 blobs legitimately re-serialize as v2, so the
  // round-trip check applies to the current format only.)
  const bool v2 = bytes.size() >= 8 && bytes.compare(0, 8, "SKYDIAG2") == 0;
  auto cell = skydia::ParseCellDiagram(bytes);
  if (cell.ok() && v2) {
    const std::string again =
        skydia::SerializeCellDiagram(cell->dataset, cell->diagram);
    if (again != bytes) std::abort();
  }
  auto subcell = skydia::ParseSubcellDiagram(bytes);
  if (subcell.ok() && v2) {
    const std::string again =
        skydia::SerializeSubcellDiagram(subcell->dataset, subcell->diagram);
    if (again != bytes) std::abort();
  }
  return 0;
}
