// Standalone corpus-replay driver for the fuzz targets.
//
// When SKYDIA_FUZZ=OFF the fuzz targets link this main() instead of
// libFuzzer: it feeds every file under the corpus directories given on the
// command line through LLVMFuzzerTestOneInput, so the committed seed
// corpora run as deterministic regression tests under any compiler
// (including the GCC-only environments that cannot build libFuzzer). A
// crash in the target crashes the driver, which is exactly what ctest
// reports as the failure.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz driver: cannot read %s\n", path.c_str());
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir-or-file>...\n", argv[0]);
    return 2;
  }
  size_t ran = 0;
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path root(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(root, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(root)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      // Deterministic order: corpus file names are stable identifiers.
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        ok = RunFile(file) && ok;
        ++ran;
      }
    } else {
      ok = RunFile(root) && ok;
      ++ran;
    }
  }
  std::printf("fuzz driver: replayed %zu corpus inputs\n", ran);
  return ok && ran > 0 ? 0 : 1;
}
