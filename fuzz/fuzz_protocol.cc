// Fuzz target: the serve daemon's line-protocol parser
// (src/serve/protocol.cc) — the rawest untrusted-input surface in the
// system (anything a TCP peer sends reaches ParseRequest verbatim).
//
// The contract under fuzz: ParseRequest never throws, never aborts, never
// reads out of bounds, and every successfully parsed request can be echoed
// back through the reply renderers without corruption.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "src/serve/protocol.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view line(reinterpret_cast<const char*>(data), size);
  auto parsed = skydia::serve::ParseRequest(line);
  std::string out;
  if (parsed.ok()) {
    // A parsed request must render back into a reply line ending in '\n';
    // exercise every Append* path the server uses on hot replies.
    skydia::serve::AppendOkReply(parsed->id, 1, &out);
    skydia::serve::AppendQueryReply(parsed->id, 1, "ids", "[1,2]", &out);
    skydia::serve::AppendRangeReply(parsed->id, 1, "[1]", "[]", 3, &out);
    skydia::serve::AppendInsertReply(parsed->id, 1, 0, &out);
    if (out.empty() || out.back() != '\n') std::abort();
  } else {
    // Error messages flow into AppendErrorReply and must JSON-escape
    // cleanly even when they quote hostile request bytes.
    skydia::serve::AppendErrorReply(std::nullopt,
                                    skydia::serve::ErrorCode::kParseError,
                                    parsed.status().message(), &out);
    if (out.find('\n') != out.size() - 1) std::abort();
  }
  return 0;
}
