#!/usr/bin/env python3
"""Line-coverage gate over gcov profiles, with an HTML report.

Zero-dependency replacement for gcovr: walks a coverage-instrumented build
tree (SKYDIA_COVERAGE=ON, tests already run), feeds every .gcda through
`gcov --json-format`, merges per-line execution counts across translation
units, and

  * prints a per-file table for sources matching --filter,
  * writes a self-contained HTML report (summary + uncovered lines), and
  * exits 1 if aggregate line coverage over the filtered files is below
    --min-percent.

Usage:
  python3 tools/coverage_gate.py --build-dir build/coverage \
      --filter src/core --min-percent 90 --html-out coverage.html
"""

import argparse
import html
import json
import os
import subprocess
import sys


def find_gcda(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                yield os.path.join(root, name)


def run_gcov(gcda, build_dir):
    """Returns the parsed gcov JSON documents for one .gcda file."""
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", gcda],
        cwd=build_dir,
        capture_output=True,
        text=True,
        check=False,
    )
    docs = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            docs.append(json.loads(line))
        except json.JSONDecodeError:
            pass  # gcov prints warnings on stdout for stale profiles
    return docs


def merge_counts(docs, build_dir, source_root, counts):
    """Accumulates {source_path: {line: count}} from gcov JSON documents."""
    for doc in docs:
        for entry in doc.get("files", []):
            path = entry.get("file", "")
            if not os.path.isabs(path):
                path = os.path.join(build_dir, path)
            path = os.path.realpath(path)
            if not path.startswith(source_root + os.sep):
                continue
            rel = os.path.relpath(path, source_root)
            per_line = counts.setdefault(rel, {})
            for line in entry.get("lines", []):
                number = line.get("line_number")
                if number is None:
                    continue
                per_line[number] = per_line.get(number, 0) + int(
                    line.get("count", 0))


def coverage_of(per_line):
    covered = sum(1 for count in per_line.values() if count > 0)
    return covered, len(per_line)


def render_html(rows, total_covered, total_lines, minimum, uncovered):
    percent = 100.0 * total_covered / total_lines if total_lines else 0.0
    verdict = "PASS" if percent >= minimum else "FAIL"
    out = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>skydia coverage</title>",
        "<style>body{font-family:monospace}table{border-collapse:collapse}",
        "td,th{border:1px solid #999;padding:2px 8px;text-align:right}",
        "td:first-child,th:first-child{text-align:left}",
        ".low{background:#fdd}.ok{background:#dfd}</style></head><body>",
        "<h1>skydia line coverage</h1>",
        "<p>gate: %.2f%% covered, floor %.2f%% — <b>%s</b></p>"
        % (percent, minimum, verdict),
        "<table><tr><th>file</th><th>covered</th><th>lines</th>"
        "<th>%</th></tr>",
    ]
    for rel, covered, lines in rows:
        file_pct = 100.0 * covered / lines if lines else 0.0
        css = "ok" if file_pct >= minimum else "low"
        out.append(
            "<tr class='%s'><td>%s</td><td>%d</td><td>%d</td>"
            "<td>%.1f</td></tr>"
            % (css, html.escape(rel), covered, lines, file_pct))
    out.append(
        "<tr><th>total</th><th>%d</th><th>%d</th><th>%.2f</th></tr></table>"
        % (total_covered, total_lines, percent))
    out.append("<h2>uncovered lines</h2><pre>")
    for rel, lines in uncovered:
        out.append("%s: %s" % (html.escape(rel),
                               ", ".join(str(n) for n in lines)))
    out.append("</pre></body></html>")
    return "\n".join(out)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True)
    parser.add_argument("--source-root", default=".")
    parser.add_argument("--filter", default="src/core",
                        help="source path prefix the gate applies to")
    parser.add_argument("--min-percent", type=float, default=0.0)
    parser.add_argument("--html-out", default="")
    args = parser.parse_args()

    source_root = os.path.realpath(args.source_root)
    build_dir = os.path.realpath(args.build_dir)
    gcda_files = sorted(find_gcda(build_dir))
    if not gcda_files:
        print("error: no .gcda profiles under %s (configure with "
              "--preset coverage and run ctest first)" % build_dir)
        return 1

    counts = {}
    for gcda in gcda_files:
        merge_counts(run_gcov(gcda, build_dir), build_dir, source_root,
                     counts)

    prefix = args.filter.rstrip("/") + "/"
    rows = []
    uncovered = []
    total_covered = 0
    total_lines = 0
    for rel in sorted(counts):
        if not rel.startswith(prefix):
            continue
        covered, lines = coverage_of(counts[rel])
        if lines == 0:
            continue
        rows.append((rel, covered, lines))
        total_covered += covered
        total_lines += lines
        missing = sorted(n for n, c in counts[rel].items() if c == 0)
        if missing:
            uncovered.append((rel, missing))

    if total_lines == 0:
        print("error: no instrumented lines match filter %r" % args.filter)
        return 1

    percent = 100.0 * total_covered / total_lines
    width = max(len(rel) for rel, _c, _l in rows)
    for rel, covered, lines in rows:
        print("%-*s %6d/%-6d %6.1f%%"
              % (width, rel, covered, lines, 100.0 * covered / lines))
    print("%-*s %6d/%-6d %6.2f%% (floor %.2f%%)"
          % (width, "TOTAL", total_covered, total_lines, percent,
             args.min_percent))

    if args.html_out:
        with open(args.html_out, "w", encoding="utf-8") as fh:
            fh.write(render_html(rows, total_covered, total_lines,
                                 args.min_percent, uncovered))
        print("wrote %s" % args.html_out)

    if percent < args.min_percent:
        print("FAIL: %s line coverage %.2f%% is below the %.2f%% floor"
              % (args.filter, percent, args.min_percent))
        return 1
    print("PASS: %s line coverage %.2f%% >= %.2f%%"
          % (args.filter, percent, args.min_percent))
    return 0


if __name__ == "__main__":
    sys.exit(main())
