#!/usr/bin/env python3
"""Prometheus naming lint for the skydia /metrics surface.

Extracts every metric family emitted by src/serve/metrics.cc — the single
place metric names may be introduced — and enforces the repo's naming
scheme before a scrape ever sees them:

  prefix      Every family is named ^skydia_[a-z][a-z0-9_]*$ (lowercase,
              no double underscores, no trailing underscore).
  counter     Counter families end in `_total`; nothing else may.
  gauge       Gauge families must NOT end in `_total` (a gauge that looks
              like a counter lies to rate()).
  units       Families with `_duration_` in the name end in `_seconds`
              (durations are exported in base seconds, never ms/ns);
              `_bytes`/`_seconds`/`_ns` unit suffixes come last.
  histogram   Histogram families must not themselves end in
              `_bucket`/`_sum`/`_count` (those suffixes belong to the
              series the renderer derives).

The extraction keys on the Counter(...)/Gauge(...)/Histogram-style render
helpers and on `# TYPE` literals, so a metric emitted through a new helper
still gets caught by the fallback literal scan. The companion runtime check
lives in tests/serve/metrics_format_test.cc, which parses a live payload;
this lint runs without building anything.

Usage:
  tools/metrics_lint.py [--root REPO_ROOT]

Exits non-zero with file:line diagnostics when a rule fires.
"""

import argparse
import pathlib
import re
import sys

NAME_RE = re.compile(r"^skydia_[a-z][a-z0-9_]*$")
# "Gauge(\n    "skydia_foo", ..." — the helper name, then the first string
# literal argument possibly on the next line.
HELPER_RE = re.compile(
    r"\b(Counter|Gauge|SecondsHistogram)\s*\(\s*\"(skydia_[A-Za-z0-9_]*)\"",
    re.S)
TYPE_RE = re.compile(r"#\s*TYPE\s+(skydia_[A-Za-z0-9_]*)\s+([a-z]+)")
LITERAL_RE = re.compile(r"\"(skydia_[A-Za-z0-9_]*)\"")

HELPER_TYPE = {
    "Counter": "counter",
    "Gauge": "gauge",
    "SecondsHistogram": "histogram",
}
UNIT_SUFFIXES = ("_total", "_seconds", "_bytes", "_ns", "_ratio", "_info")
SERIES_SUFFIXES = ("_bucket", "_sum", "_count")


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def collect_families(text):
    """Returns {name: (type or None, line)} for every family literal."""
    families = {}
    for match in HELPER_RE.finditer(text):
        helper, name = match.group(1), match.group(2)
        families.setdefault(name, (HELPER_TYPE[helper],
                                   line_of(text, match.start())))
    for match in TYPE_RE.finditer(text):
        name, mtype = match.group(1), match.group(2)
        families.setdefault(name, (mtype, line_of(text, match.start())))
    # Fallback: any other skydia_* literal (e.g. a name passed through a
    # helper this lint does not know) still gets the prefix/unit rules.
    for match in LITERAL_RE.finditer(text):
        name = match.group(1)
        base = name
        for suffix in SERIES_SUFFIXES:
            if base.endswith(suffix):
                base = base[: -len(suffix)]
        families.setdefault(base, (None, line_of(text, match.start())))
    return families


def check(path):
    text = path.read_text(encoding="utf-8")
    errors = []
    families = collect_families(text)
    if not families:
        errors.append(f"{path}:1: no skydia_* metric families found "
                      "(extraction broken?)")
    for name, (mtype, line) in sorted(families.items()):
        where = f"{path}:{line}"
        if not NAME_RE.match(name):
            errors.append(f"{where}: {name}: does not match "
                          "^skydia_[a-z][a-z0-9_]*$")
        if "__" in name or name.endswith("_"):
            errors.append(f"{where}: {name}: double/trailing underscore")
        ends_total = name.endswith("_total")
        if mtype == "counter" and not ends_total:
            errors.append(f"{where}: {name}: counters must end in _total")
        if mtype is not None and mtype != "counter" and ends_total:
            errors.append(f"{where}: {name}: only counters end in _total")
        if "_duration_" in name and not name.endswith("_seconds"):
            errors.append(f"{where}: {name}: durations are exported in "
                          "base seconds (_seconds suffix)")
        if mtype == "histogram" and name.endswith(SERIES_SUFFIXES):
            errors.append(f"{where}: {name}: histogram family named like "
                          "a derived series")
        for suffix in UNIT_SUFFIXES:
            stripped = name[: -len(suffix)] if name.endswith(suffix) else None
            if stripped and any(stripped.endswith(u) for u in UNIT_SUFFIXES):
                errors.append(f"{where}: {name}: stacked unit suffixes")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args()
    root = pathlib.Path(args.root)
    target = root / "src" / "serve" / "metrics.cc"
    if not target.is_file():
        print(f"error: {target} not found", file=sys.stderr)
        return 2
    errors = check(target)
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} metric naming violation(s)", file=sys.stderr)
        return 1
    print(f"ok: metric families in {target} conform to the naming scheme")
    return 0


if __name__ == "__main__":
    sys.exit(main())
