#!/usr/bin/env python3
"""Schema gate for the machine-readable benchmark baselines.

Every benchmark binary (bench/bench_common.h, SKYDIA_BENCH_MAIN) writes a
`BENCH_<name>.json` baseline; the CI perf-smoke job uploads them as
artifacts and runs this checker so a drifting writer fails the build
instead of silently producing files downstream tooling cannot parse.

Zero dependencies beyond the standard library, by design.

Usage:
  python3 tools/bench_schema_check.py BENCH_foo.json [BENCH_bar.json ...]
  python3 tools/bench_schema_check.py --dir build/bench-json

Exit code 0 when every file conforms; 1 with one diagnostic line per
violation otherwise.
"""

import argparse
import glob
import json
import os
import sys

SCHEMA_VERSION = 1

# Top-level required fields and their types.
TOP_LEVEL = {
    "schema_version": int,
    "bench": str,
    "version": str,
    "commit": str,
    "build_type": str,
    "compiler": str,
    "hardware_concurrency": int,
    "timestamp_unix": int,
    "benchmarks": list,
}

# Required per-row fields. `iterations` counts loop executions; the two time
# fields are per-iteration nanoseconds.
ROW_REQUIRED = {
    "name": str,
    "iterations": int,
    "real_time_ns": (int, float),
    "cpu_time_ns": (int, float),
}

# Optional per-row fields (present only when the run sets them).
ROW_OPTIONAL = {
    "aggregate": str,
    "label": str,
    "counters": dict,
}


def check_file(path):
    """Returns a list of violation strings for one baseline file."""
    errors = []

    def err(message):
        errors.append(f"{path}: {message}")

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level must be a JSON object"]

    for key, expected in TOP_LEVEL.items():
        if key not in doc:
            err(f"missing top-level field '{key}'")
        elif not isinstance(doc[key], expected):
            err(f"field '{key}' must be {expected.__name__}, "
                f"got {type(doc[key]).__name__}")

    if doc.get("schema_version") != SCHEMA_VERSION:
        err(f"schema_version must be {SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}")

    expected_bench = os.path.basename(path)
    if expected_bench.startswith("BENCH_") and expected_bench.endswith(".json"):
        stem = expected_bench[len("BENCH_"):-len(".json")]
        if isinstance(doc.get("bench"), str) and doc["bench"] != stem:
            err(f"'bench' is {doc['bench']!r} but the filename says {stem!r}")

    rows = doc.get("benchmarks")
    if not isinstance(rows, list):
        return errors
    if not rows:
        err("'benchmarks' is empty — the binary measured nothing")
    for i, row in enumerate(rows):
        where = f"benchmarks[{i}]"
        if not isinstance(row, dict):
            err(f"{where} must be an object")
            continue
        for key, expected in ROW_REQUIRED.items():
            if key not in row:
                err(f"{where} missing field '{key}'")
            elif not isinstance(row[key], expected) or isinstance(
                    row[key], bool):
                err(f"{where}.{key} has the wrong type "
                    f"({type(row[key]).__name__})")
        for key, expected in ROW_OPTIONAL.items():
            if key in row and not isinstance(row[key], expected):
                err(f"{where}.{key} has the wrong type "
                    f"({type(row[key]).__name__})")
        for key in row:
            if key not in ROW_REQUIRED and key not in ROW_OPTIONAL:
                err(f"{where} has unknown field '{key}' "
                    "(bump SCHEMA_VERSION when extending the schema)")
        if isinstance(row.get("iterations"), int) and row["iterations"] <= 0:
            err(f"{where}.iterations must be positive")
        for key in ("real_time_ns", "cpu_time_ns"):
            value = row.get(key)
            if isinstance(value, (int, float)) and value < 0:
                err(f"{where}.{key} must be non-negative")
        counters = row.get("counters")
        if isinstance(counters, dict):
            for name, value in counters.items():
                if not isinstance(value, (int, float)) or isinstance(
                        value, bool):
                    err(f"{where}.counters[{name!r}] must be numeric")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="BENCH_*.json files")
    parser.add_argument("--dir", help="check every BENCH_*.json in this dir")
    args = parser.parse_args()

    files = list(args.files)
    if args.dir:
        files.extend(sorted(glob.glob(os.path.join(args.dir, "BENCH_*.json"))))
    if not files:
        print("error: no baseline files given (and --dir matched none)",
              file=sys.stderr)
        return 1

    all_errors = []
    for path in files:
        all_errors.extend(check_file(path))
    for message in all_errors:
        print(message, file=sys.stderr)
    if not all_errors:
        print(f"ok: {len(files)} baseline file(s) conform to schema "
              f"v{SCHEMA_VERSION}")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())
