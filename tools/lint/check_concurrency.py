#!/usr/bin/env python3
"""Project-invariant concurrency lints for the skydia serving stack.

Three rules, all derived from the concurrency model documented in
DESIGN.md ("Static analysis") and enforced in CI alongside the Clang
-Wthread-safety build:

  raw-mutex       No raw std::mutex / std::lock_guard / std::unique_lock /
                  std::scoped_lock outside src/common/annotations.h. All
                  lock-protected state must go through the annotated
                  skydia::Mutex / skydia::MutexLock wrappers so the
                  thread-safety analysis sees every acquisition.
                  Suppress per-line with:  // lint:allow(raw-mutex)

  reactor-only    Functions declared SKYDIA_REACTOR_ONLY run on the
                  reactor's event-loop thread and must never block it or
                  re-enter the pool: no direct calls to ThreadPool::Submit /
                  ParallelFor / WaitIdle, no sleeps, no synchronous file
                  I/O (fopen/ifstream/ofstream/fstream, Load*File). The
                  check is over direct calls in the function's own body
                  (not transitive): helpers a reactor function calls must
                  themselves be marked SKYDIA_REACTOR_ONLY to stay in
                  scope, which is exactly the discipline the rule imposes.
                  Suppress per-line with:  // lint:allow(reactor-only)

  atomic-order    Every std::atomic<...> member declared in a serve header
                  must carry a memory-ordering comment (a nearby comment
                  mentioning relaxed / acquire / release / seq_cst /
                  ordering / monotonic) so readers know which ordering the
                  accesses rely on and why.
                  Suppress per-line with:  // lint:allow(atomic-order)

Usage:
  tools/lint/check_concurrency.py [-p BUILD_DIR] [--root REPO_ROOT]

With -p, the file list comes from BUILD_DIR/compile_commands.json (plus
headers found by include-scanning src/); otherwise every *.h/*.cc under
src/ is checked. Exits non-zero and prints file:line diagnostics when any
rule fires.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)")

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|timed_mutex|shared_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)

REACTOR_ONLY_DECL_RE = re.compile(
    r"^\s*(?:[\w:<>,*&\s]+?\s)?(\w+)\s*\([^;{]*\)[^;{]*\bSKYDIA_REACTOR_ONLY\b",
    re.MULTILINE,
)

# Direct calls forbidden on the reactor thread. ServeBatch and the query
# execution helpers are deliberately absent: they run both inline on the
# reactor (small batches) and on workers, and block on neither path.
FORBIDDEN_IN_REACTOR = [
    (re.compile(r"\.\s*Submit\s*\(|->\s*Submit\s*\("), "ThreadPool::Submit"),
    (re.compile(r"\bParallelFor\s*\("), "ThreadPool::ParallelFor"),
    (re.compile(r"\.\s*WaitIdle\s*\(|->\s*WaitIdle\s*\("),
     "ThreadPool::WaitIdle"),
    (re.compile(r"\bsleep_for\s*\(|\bsleep_until\s*\(|\busleep\s*\(|"
                r"\bnanosleep\s*\(|(?<![\w.])sleep\s*\("), "sleep"),
    (re.compile(r"\bfopen\s*\(|\bstd::if?stream\b|\bstd::ofstream\b|"
                r"\bstd::fstream\b"), "synchronous file I/O"),
    (re.compile(r"\bLoad\w*File\s*\(|\bReadCsvFile\s*\(|\bWriteCsvFile\s*\("),
     "synchronous file I/O"),
]

ORDERING_WORDS_RE = re.compile(
    r"relaxed|acquire|release|acq_rel|seq_cst|ordering|monotonic|seqlock",
    re.IGNORECASE,
)
ATOMIC_MEMBER_RE = re.compile(r"^\s*(?:mutable\s+)?std::atomic\s*<")


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and string/char literal contents from one line.

    Good enough for these lints: the repo style never spreads a /* */
    comment across the constructs we match.
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            end = line.find("*/", i + 2)
            if end < 0:
                break
            i = end + 2
            continue
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            if i < n:
                out.append(quote)
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def allowed(line: str, rule: str) -> bool:
    m = ALLOW_RE.search(line)
    return bool(m and m.group(1) == rule)


def check_raw_mutex(path: pathlib.Path, lines: list[str], errors: list[str]):
    if path.as_posix().endswith("src/common/annotations.h"):
        return
    for lineno, line in enumerate(lines, 1):
        if allowed(line, "raw-mutex"):
            continue
        code = strip_comments_and_strings(line)
        m = RAW_MUTEX_RE.search(code)
        if m:
            errors.append(
                f"{path}:{lineno}: [raw-mutex] std::{m.group(1)} outside "
                f"annotations.h — use skydia::Mutex / skydia::MutexLock so "
                f"-Wthread-safety sees the acquisition"
            )


def find_reactor_only_names(text: str) -> set[str]:
    return {m.group(1) for m in REACTOR_ONLY_DECL_RE.finditer(text)}


def function_bodies(text: str, names: set[str]):
    """Yields (name, start_line, body_text) for each definition of a name.

    Matches `ReturnType Class::Name(...) {` definitions by brace matching
    from the opening brace. Qualified or unqualified definitions both match.
    """
    for name in names:
        for m in re.finditer(
            r"(?:^|\n)[^\n;{}]*?\b(?:\w+::)*" + re.escape(name) +
            r"\s*\([^;{]*\)\s*(?:const\s*)?(?:noexcept\s*)?\{", text
        ):
            open_brace = text.index("{", m.end() - 1)
            depth = 0
            i = open_brace
            while i < len(text):
                if text[i] == "{":
                    depth += 1
                elif text[i] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            body = text[open_brace : i + 1]
            start_line = text.count("\n", 0, open_brace) + 1
            yield name, start_line, body


def check_reactor_only(
    headers: list[pathlib.Path],
    sources: list[pathlib.Path],
    errors: list[str],
):
    names: set[str] = set()
    for h in headers:
        names |= find_reactor_only_names(h.read_text(errors="replace"))
    if not names:
        return
    for src in sources:
        text = src.read_text(errors="replace")
        for name, start_line, body in function_bodies(text, names):
            for offset, line in enumerate(body.splitlines()):
                if allowed(line, "reactor-only"):
                    continue
                code = strip_comments_and_strings(line)
                for pattern, what in FORBIDDEN_IN_REACTOR:
                    if pattern.search(code):
                        errors.append(
                            f"{src}:{start_line + offset}: [reactor-only] "
                            f"{what} inside SKYDIA_REACTOR_ONLY function "
                            f"{name}() — it would block the event loop"
                        )


def check_atomic_order(path: pathlib.Path, lines: list[str],
                       errors: list[str]):
    if "/serve/" not in path.as_posix() or path.suffix != ".h":
        return
    for lineno, line in enumerate(lines, 1):
        if not ATOMIC_MEMBER_RE.match(line):
            continue
        if allowed(line, "atomic-order"):
            continue
        window = lines[max(0, lineno - 16) : lineno]
        commented = any(
            ORDERING_WORDS_RE.search(prev)
            for prev in window
            if "//" in prev or "*" in prev.lstrip()[:1] or "/*" in prev
        )
        if not commented:
            errors.append(
                f"{path}:{lineno}: [atomic-order] std::atomic member without "
                f"a memory-ordering comment nearby — state which ordering "
                f"the accesses use and why it suffices"
            )


def collect_files(root: pathlib.Path, build_dir: pathlib.Path | None):
    src = root / "src"
    if build_dir is not None:
        cc_path = build_dir / "compile_commands.json"
        files = set()
        if cc_path.is_file():
            for entry in json.loads(cc_path.read_text()):
                f = pathlib.Path(entry["file"])
                if not f.is_absolute():
                    f = pathlib.Path(entry["directory"]) / f
                f = f.resolve()
                if src in f.parents:
                    files.add(f)
        if files:
            headers = sorted(src.rglob("*.h"))
            sources = sorted(f for f in files if f.suffix == ".cc")
            return headers, sources
        print(f"note: {cc_path} missing or empty; falling back to src/ scan",
              file=sys.stderr)
    return sorted(src.rglob("*.h")), sorted(src.rglob("*.cc"))


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("-p", metavar="BUILD_DIR", type=pathlib.Path,
                    default=None,
                    help="build dir holding compile_commands.json")
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parents[2],
                    help="repository root (default: two dirs up)")
    args = ap.parse_args()

    root = args.root.resolve()
    headers, sources = collect_files(root, args.p)
    if not headers and not sources:
        print(f"error: no C++ files found under {root / 'src'}",
              file=sys.stderr)
        return 2

    errors: list[str] = []
    for path in headers + sources:
        lines = path.read_text(errors="replace").splitlines()
        check_raw_mutex(path, lines, errors)
        check_atomic_order(path, lines, errors)
    check_reactor_only(headers, sources, errors)

    for e in errors:
        print(e)
    checked = len(headers) + len(sources)
    if errors:
        print(f"\ncheck_concurrency: {len(errors)} violation(s) across "
              f"{checked} files", file=sys.stderr)
        return 1
    print(f"check_concurrency: OK ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
