#!/usr/bin/env python3
"""Header self-containment check: every header under src/ must compile on
its own — i.e. `#include "src/x/y.h"` as the first include of a TU must
work without relying on anything the including file happened to pull in
first. Include-what-you-use hygiene for a codebase without IWYU.

For each header the script synthesizes a one-line TU that includes it and
runs `$CXX -std=c++20 -fsyntax-only -I<root>` on it. Failures print the
compiler's diagnostics prefixed with the offending header.

Usage:
  tools/check_headers.py [--root REPO_ROOT] [--compiler CXX] [-j N]
"""

from __future__ import annotations

import argparse
import concurrent.futures
import pathlib
import subprocess
import sys
import tempfile


def check_one(compiler: str, root: pathlib.Path,
              header: pathlib.Path) -> tuple[pathlib.Path, str | None]:
    rel = header.relative_to(root).as_posix()
    with tempfile.NamedTemporaryFile(
        "w", suffix=".cc", prefix="hdrchk_", delete=False
    ) as tu:
        tu.write(f'#include "{rel}"\n')
        tu_path = tu.name
    try:
        proc = subprocess.run(
            [compiler, "-std=c++20", "-fsyntax-only", f"-I{root}",
             "-x", "c++", tu_path],
            capture_output=True, text=True,
        )
        if proc.returncode != 0:
            return header, proc.stderr.strip()
        return header, None
    finally:
        pathlib.Path(tu_path).unlink(missing_ok=True)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parents[1])
    ap.add_argument("--compiler", default="c++")
    ap.add_argument("-j", type=int, default=8)
    args = ap.parse_args()

    root = args.root.resolve()
    headers = sorted((root / "src").rglob("*.h"))
    if not headers:
        print(f"error: no headers under {root / 'src'}", file=sys.stderr)
        return 2

    failures: list[tuple[pathlib.Path, str]] = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.j) as pool:
        for header, diag in pool.map(
            lambda h: check_one(args.compiler, root, h), headers
        ):
            if diag is not None:
                failures.append((header, diag))

    for header, diag in failures:
        rel = header.relative_to(root)
        print(f"{rel}: not self-contained:")
        for line in diag.splitlines()[:12]:
            print(f"  {line}")
    if failures:
        print(f"\ncheck_headers: {len(failures)} of {len(headers)} headers "
              f"failed", file=sys.stderr)
        return 1
    print(f"check_headers: OK ({len(headers)} headers)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
