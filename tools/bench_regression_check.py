#!/usr/bin/env python3
"""Perf regression gate: compare a fresh benchmark run against a baseline.

Rows are matched by name between the committed baseline (bench/baselines/)
and a freshly emitted BENCH_*.json from the same benchmark. A row regresses
when its latency metric worsens by more than the threshold (default 15%).
The metric is `counters.p99_burst_ns` when both sides carry it (the serve
bench's tail-latency counter), else per-iteration `real_time_ns`.

Rows present on only one side are reported but do not fail the gate —
sweeps legitimately grow and shrink — and improvements never fail it.
Throughput-style counters (qps) are noisy on shared CI runners, so the gate
reads time-per-unit metrics only.

Zero dependencies beyond the standard library, by design.

Usage:
  python3 tools/bench_regression_check.py \
      --baseline bench/baselines/BENCH_serve_throughput.json \
      --current build/bench-json/BENCH_serve_throughput.json \
      [--threshold-pct 15]

Exit code 0 when no matched row regresses past the threshold; 1 otherwise.
"""

import argparse
import json
import sys


def load_rows(path):
    """Returns {row name: row dict} for one baseline file."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("benchmarks", []):
        if isinstance(row, dict) and isinstance(row.get("name"), str):
            rows[row["name"]] = row
    return rows


def metric(row):
    """Returns (value, metric name) — p99 burst latency when present."""
    counters = row.get("counters")
    if isinstance(counters, dict):
        p99 = counters.get("p99_burst_ns")
        if isinstance(p99, (int, float)) and not isinstance(p99, bool) \
                and p99 > 0:
            return float(p99), "p99_burst_ns"
    value = row.get("real_time_ns")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value), "real_time_ns"
    return None, None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json to compare against")
    parser.add_argument("--current", required=True,
                        help="freshly emitted BENCH_*.json from this run")
    parser.add_argument("--threshold-pct", type=float, default=15.0,
                        help="fail when a metric worsens past this (%%)")
    args = parser.parse_args()

    try:
        baseline = load_rows(args.baseline)
        current = load_rows(args.current)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1

    if not baseline or not current:
        print("error: baseline or current file has no benchmark rows",
              file=sys.stderr)
        return 1

    regressions = []
    matched = 0
    for name, base_row in sorted(baseline.items()):
        cur_row = current.get(name)
        if cur_row is None:
            print(f"note: row only in baseline (skipped): {name}")
            continue
        base_value, base_metric = metric(base_row)
        cur_value, cur_metric = metric(cur_row)
        if base_value is None or cur_value is None:
            print(f"note: row has no usable metric (skipped): {name}")
            continue
        # Fall back to real_time_ns on both sides when the metrics differ,
        # so a baseline with p99 never compares against a wall-clock value.
        if base_metric != cur_metric:
            base_value = float(base_row.get("real_time_ns", 0))
            cur_value = float(cur_row.get("real_time_ns", 0))
            base_metric = "real_time_ns"
            if base_value <= 0 or cur_value <= 0:
                print(f"note: metrics disagree and real_time_ns is unusable "
                      f"(skipped): {name}")
                continue
        matched += 1
        delta_pct = (cur_value - base_value) / base_value * 100.0
        status = "ok"
        if delta_pct > args.threshold_pct:
            status = "REGRESSION"
            regressions.append((name, base_metric, delta_pct))
        print(f"{status}: {name} {base_metric} {base_value:.0f} -> "
              f"{cur_value:.0f} ({delta_pct:+.1f}%)")
    for name in sorted(set(current) - set(baseline)):
        print(f"note: row only in current run (skipped): {name}")

    if matched == 0:
        print("error: no rows matched between baseline and current run",
              file=sys.stderr)
        return 1
    if regressions:
        print(f"FAIL: {len(regressions)} row(s) regressed more than "
              f"{args.threshold_pct:.0f}% vs {args.baseline}",
              file=sys.stderr)
        return 1
    print(f"ok: {matched} matched row(s) within {args.threshold_pct:.0f}% "
          f"of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
