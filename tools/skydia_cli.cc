// skydia command-line tool: generate workloads, build/save/load diagrams,
// answer queries, dump structure statistics and render SVG visualizations.
//
// Usage:
//   skydia generate --n 256 --domain 1024 --dist independent --seed 1
//          --out points.csv
//   skydia build   --in points.csv --x x --y y --type quadrant
//          [--algo scanning] [--threads 1] --out diagram.skd
//   skydia query   --diagram diagram.skd --qx 10 --qy 80 [--exact]
//   skydia stats   --diagram diagram.skd
//   skydia check   diagram.skd [--samples 64] [--seed 1]
//   skydia render  --diagram diagram.skd --out diagram.svg [--labels]
//
// Exit code 0 on success; errors print to stderr.
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/common/csv.h"
#include "src/core/diagram.h"
#include "src/core/dynamic_scanning.h"
#include "src/core/merge.h"
#include "src/core/parallel.h"
#include "src/core/render_svg.h"
#include "src/core/serialize.h"
#include "src/core/validate.h"
#include "src/datagen/distributions.h"
#include "src/datagen/real_data.h"
#include "src/skyline/query.h"

namespace skydia {
namespace {

// --- tiny flag parser --------------------------------------------------------

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        error_ = "unexpected positional argument: " + arg;
        return;
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";  // boolean flag
      }
    }
  }

  const std::string& error() const { return error_; }

  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& name, int64_t fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }
  bool GetBool(const std::string& name) const {
    const auto it = values_.find(name);
    return it != values_.end() && it->second != "false";
  }
  bool Has(const std::string& name) const { return values_.contains(name); }

 private:
  std::map<std::string, std::string> values_;
  std::string error_;
};

int Fail(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  return 1;
}

void PrintUsage() {
  std::cerr
      << "skydia — skyline diagrams for skyline queries\n\n"
         "commands:\n"
         "  generate --n N --domain S [--dist independent|correlated|\n"
         "           anticorrelated|clustered] [--seed K] [--distinct]\n"
         "           --out points.csv\n"
         "  build    --in points.csv [--x x --y y] --type quadrant|global|\n"
         "           dynamic [--algo baseline|dsg|scanning] [--threads T]\n"
         "           --out diagram.skd\n"
         "  query    --diagram diagram.skd --qx X --qy Y [--exact]\n"
         "  stats    --diagram diagram.skd\n"
         "  check    <diagram.skd> [--samples N] [--seed K]\n"
         "           [--allow-duplicate-sets]  (validate invariants;\n"
         "           non-zero exit on corruption)\n"
         "  render   --diagram diagram.skd --out out.svg [--labels]\n"
         "  hotels   (print the paper's Figure 1 example)\n";
}

// --- commands ----------------------------------------------------------------

int CmdGenerate(const Flags& flags) {
  DataGenOptions options;
  options.n = static_cast<size_t>(flags.GetInt("n", 256));
  options.domain_size = flags.GetInt("domain", 1024);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  options.distinct_coordinates = flags.GetBool("distinct");
  const std::string dist = flags.GetString("dist", "independent");
  if (dist == "independent") {
    options.distribution = Distribution::kIndependent;
  } else if (dist == "correlated") {
    options.distribution = Distribution::kCorrelated;
  } else if (dist == "anticorrelated") {
    options.distribution = Distribution::kAnticorrelated;
  } else if (dist == "clustered") {
    options.distribution = Distribution::kClustered;
  } else {
    return Fail("unknown --dist " + dist);
  }
  const std::string out = flags.GetString("out");
  if (out.empty()) return Fail("--out is required");

  auto dataset = GenerateDataset(options);
  if (!dataset.ok()) return Fail(dataset.status().ToString());

  CsvDocument doc;
  doc.rows.push_back({"label", "x", "y"});
  for (PointId id = 0; id < dataset->size(); ++id) {
    const Point2D& p = dataset->point(id);
    doc.rows.push_back(
        {dataset->label(id), std::to_string(p.x), std::to_string(p.y)});
  }
  if (Status s = WriteCsvFile(out, doc); !s.ok()) return Fail(s.ToString());
  std::cout << "wrote " << dataset->size() << " " << dist << " points to "
            << out << "\n";
  return 0;
}

int CmdBuild(const Flags& flags) {
  const std::string in = flags.GetString("in");
  const std::string out = flags.GetString("out");
  if (in.empty() || out.empty()) return Fail("--in and --out are required");

  auto dataset =
      LoadDatasetCsv(in, flags.GetString("x", "x"), flags.GetString("y", "y"));
  if (!dataset.ok()) return Fail(dataset.status().ToString());

  const std::string type = flags.GetString("type", "quadrant");
  const std::string algo = flags.GetString("algo", "scanning");
  const int threads = static_cast<int>(flags.GetInt("threads", 1));

  SkylineDiagram::BuildOptions build;
  if (algo == "baseline") {
    build.cell_algorithm = QuadrantAlgorithm::kBaseline;
    build.dynamic_algorithm = DynamicAlgorithm::kBaseline;
  } else if (algo == "dsg") {
    build.cell_algorithm = QuadrantAlgorithm::kDsg;
    build.dynamic_algorithm = DynamicAlgorithm::kSubset;
  } else if (algo == "scanning") {
    build.cell_algorithm = QuadrantAlgorithm::kScanning;
    build.dynamic_algorithm = DynamicAlgorithm::kScanning;
  } else {
    return Fail("unknown --algo " + algo);
  }

  Status saved = Status::OK();
  if (type == "quadrant" && threads > 1) {
    const CellDiagram diagram = BuildQuadrantDsgParallel(*dataset, threads);
    saved = SaveCellDiagram(*dataset, diagram, out);
  } else if (type == "dynamic" && threads > 1) {
    const SubcellDiagram diagram =
        BuildDynamicScanningParallel(*dataset, threads);
    saved = SaveSubcellDiagram(*dataset, diagram, out);
  } else if (type == "quadrant" || type == "global") {
    const SkylineQueryType qt = type == "quadrant"
                                    ? SkylineQueryType::kQuadrant
                                    : SkylineQueryType::kGlobal;
    auto diagram = SkylineDiagram::Build(*dataset, qt, build);
    if (!diagram.ok()) return Fail(diagram.status().ToString());
    saved = SaveCellDiagram(*dataset, *diagram->cell_diagram(), out);
  } else if (type == "dynamic") {
    auto diagram =
        SkylineDiagram::Build(*dataset, SkylineQueryType::kDynamic, build);
    if (!diagram.ok()) return Fail(diagram.status().ToString());
    saved = SaveSubcellDiagram(*dataset, *diagram->subcell_diagram(), out);
  } else {
    return Fail("unknown --type " + type);
  }
  if (!saved.ok()) return Fail(saved.ToString());
  std::cout << "built " << type << " diagram (" << algo << ", " << threads
            << " thread(s)) over " << dataset->size() << " points -> " << out
            << "\n";
  return 0;
}

// Tries the cell format first, then the subcell format.
int WithLoadedDiagram(const Flags& flags,
                      const std::function<int(const LoadedCellDiagram*)>& cell,
                      const std::function<int(const LoadedSubcellDiagram*)>&
                          subcell) {
  const std::string path = flags.GetString("diagram");
  if (path.empty()) return Fail("--diagram is required");
  auto as_cell = LoadCellDiagram(path);
  if (as_cell.ok()) return cell(&*as_cell);
  auto as_subcell = LoadSubcellDiagram(path);
  if (as_subcell.ok()) return subcell(&*as_subcell);
  return Fail("cannot load " + path + ": " + as_cell.status().ToString());
}

int CmdQuery(const Flags& flags) {
  if (!flags.Has("qx") || !flags.Has("qy")) {
    return Fail("--qx and --qy are required");
  }
  const Point2D q{flags.GetInt("qx", 0), flags.GetInt("qy", 0)};
  const bool exact = flags.GetBool("exact");
  const auto print = [&](const Dataset& dataset,
                         const std::vector<PointId>& ids) {
    std::cout << "skyline(" << q << ") = {";
    for (size_t i = 0; i < ids.size(); ++i) {
      std::cout << (i ? ", " : "") << dataset.label(ids[i]);
    }
    std::cout << "}\n";
    return 0;
  };
  return WithLoadedDiagram(
      flags,
      [&](const LoadedCellDiagram* loaded) {
        const auto span = loaded->diagram.Query(q);
        std::vector<PointId> ids(span.begin(), span.end());
        return print(loaded->dataset, ids);
      },
      [&](const LoadedSubcellDiagram* loaded) {
        if (exact) {
          return print(loaded->dataset, DynamicSkyline(loaded->dataset, q));
        }
        const auto span = loaded->diagram.Query(q);
        std::vector<PointId> ids(span.begin(), span.end());
        return print(loaded->dataset, ids);
      });
}

int CmdStats(const Flags& flags) {
  return WithLoadedDiagram(
      flags,
      [&](const LoadedCellDiagram* loaded) {
        const auto stats = loaded->diagram.ComputeStats();
        const MergedPolyominoes merged = MergeCells(loaded->diagram);
        std::cout << "kind: cell diagram (quadrant/global)\n"
                  << "points: " << loaded->dataset.size() << "\n"
                  << "domain: " << loaded->dataset.domain_size() << "\n"
                  << "cells: " << stats.num_cells << "\n"
                  << "polyominoes: " << merged.num_polyominoes() << "\n"
                  << "distinct results: " << stats.num_distinct_sets << "\n"
                  << "result elements: " << stats.total_set_elements << "\n"
                  << "arena bytes: " << stats.pool_bytes << "\n"
                  << "approx bytes: " << stats.approx_bytes << "\n";
        return 0;
      },
      [&](const LoadedSubcellDiagram* loaded) {
        const auto stats = loaded->diagram.ComputeStats();
        std::cout << "kind: subcell diagram (dynamic)\n"
                  << "points: " << loaded->dataset.size() << "\n"
                  << "domain: " << loaded->dataset.domain_size() << "\n"
                  << "subcells: " << stats.num_subcells << "\n"
                  << "distinct results: " << stats.num_distinct_sets << "\n"
                  << "result elements: " << stats.total_set_elements << "\n"
                  << "arena bytes: " << stats.pool_bytes << "\n"
                  << "approx bytes: " << stats.approx_bytes << "\n";
        return 0;
      });
}

// Validates every invariant of a stored diagram (src/core/validate.h) and
// exits non-zero on the first violation. The file's checksum and field-level
// structure are already verified by the loader; `check` additionally proves
// the decoded diagram is a well-formed skyline diagram and spot-checks stored
// results against brute-force queries.
int CmdCheck(const Flags& flags, const std::string& positional_path) {
  std::string path = flags.GetString("diagram");
  if (path.empty()) path = positional_path;
  if (path.empty()) return Fail("usage: skydia check <diagram.skd>");

  ValidateOptions validate;
  validate.sample_queries = static_cast<size_t>(flags.GetInt("samples", 64));
  validate.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  validate.require_canonical_pool = !flags.GetBool("allow-duplicate-sets");

  auto as_cell = LoadCellDiagram(path);
  if (as_cell.ok()) {
    if (Status s = ValidateDiagram(as_cell->dataset, as_cell->diagram, validate);
        !s.ok()) {
      return Fail(path + ": " + s.ToString());
    }
    std::cout << "ok: cell diagram, " << as_cell->dataset.size()
              << " points, " << as_cell->diagram.grid().num_cells()
              << " cells, " << as_cell->diagram.pool().size()
              << " result sets, " << validate.sample_queries
              << " sampled queries verified\n";
    return 0;
  }
  auto as_subcell = LoadSubcellDiagram(path);
  if (as_subcell.ok()) {
    if (Status s =
            ValidateDiagram(as_subcell->dataset, as_subcell->diagram, validate);
        !s.ok()) {
      return Fail(path + ": " + s.ToString());
    }
    std::cout << "ok: subcell diagram, " << as_subcell->dataset.size()
              << " points, " << as_subcell->diagram.grid().num_subcells()
              << " subcells, " << as_subcell->diagram.pool().size()
              << " result sets, " << validate.sample_queries
              << " sampled queries verified\n";
    return 0;
  }
  return Fail("cannot load " + path + ": " + as_cell.status().ToString());
}

int CmdRender(const Flags& flags) {
  const std::string out = flags.GetString("out");
  if (out.empty()) return Fail("--out is required");
  SvgOptions svg;
  svg.draw_labels = flags.GetBool("labels");
  return WithLoadedDiagram(
      flags,
      [&](const LoadedCellDiagram* loaded) {
        const Status s = WriteSvgFile(
            out, RenderCellDiagramSvg(loaded->dataset, loaded->diagram, svg));
        if (!s.ok()) return Fail(s.ToString());
        std::cout << "rendered " << out << "\n";
        return 0;
      },
      [&](const LoadedSubcellDiagram* loaded) {
        const Status s = WriteSvgFile(
            out,
            RenderSubcellDiagramSvg(loaded->dataset, loaded->diagram, svg));
        if (!s.ok()) return Fail(s.ToString());
        std::cout << "rendered " << out << "\n";
        return 0;
      });
}

int CmdHotels() {
  const Dataset hotels = HotelExample();
  const Point2D q = HotelExampleQuery();
  std::cout << "Figure 1 running example, q = " << q << "\n";
  const auto print = [&](const char* name, const std::vector<PointId>& ids) {
    std::cout << "  " << name << ": {";
    for (size_t i = 0; i < ids.size(); ++i) {
      std::cout << (i ? ", " : "") << hotels.label(ids[i]);
    }
    std::cout << "}\n";
  };
  print("quadrant", FirstQuadrantSkyline(hotels, q));
  print("global", GlobalSkyline(hotels, q));
  print("dynamic", DynamicSkyline(hotels, q));
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  const std::string command = argv[1];
  // `check` accepts the diagram path as a positional argument.
  std::string positional;
  int first_flag = 2;
  if (command == "check" && argc > 2 &&
      std::string(argv[2]).rfind("--", 0) != 0) {
    positional = argv[2];
    first_flag = 3;
  }
  const Flags flags(argc, argv, first_flag);
  if (!flags.error().empty()) return Fail(flags.error());

  if (command == "generate") return CmdGenerate(flags);
  if (command == "build") return CmdBuild(flags);
  if (command == "query") return CmdQuery(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "check") return CmdCheck(flags, positional);
  if (command == "render") return CmdRender(flags);
  if (command == "hotels") return CmdHotels();
  PrintUsage();
  return Fail("unknown command " + command);
}

}  // namespace
}  // namespace skydia

int main(int argc, char** argv) { return skydia::Main(argc, argv); }
