// skydia command-line tool: generate workloads, build/save/load diagrams,
// answer queries, dump structure statistics and render SVG visualizations.
//
// Usage:
//   skydia generate --n 256 --domain 1024 --dist independent --seed 1
//          --out points.csv
//   skydia build   --in points.csv --x x --y y --type quadrant
//          [--algo auto] [--threads 1] [--report] [--trace out.json]
//          --out diagram.skd
//   skydia query   diagram.skd points.csv [--threads T] [--exact]
//          [--semantics quadrant|global] [--stats] [--bench [--repeat R]]
//          [--trace out.json] [--batch-threshold N]
//   skydia query   diagram.skd --qx 10 --qy 80 [--exact]
//   skydia serve   diagram.skd [--port 7447] [--threads T] [--shards S]
//          [--workers W] [--trace [f.json]] [--slow-query-ms MS]
//   skydia stats   --diagram diagram.skd
//   skydia check   diagram.skd [--samples 64] [--seed 1]
//   skydia render  --diagram diagram.skd --out diagram.svg [--labels]
//
// Exit code 0 on success; errors print to stderr.
#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/common/csv.h"
#include "src/common/timer.h"
#include "src/common/trace.h"
#include "src/core/build_report.h"
#include "src/core/diagram.h"
#include "src/core/merge.h"
#include "src/core/query_engine.h"
#include "src/core/render_svg.h"
#include "src/core/serialize.h"
#include "src/core/validate.h"
#include "src/datagen/distributions.h"
#include "src/datagen/real_data.h"
#include "src/serve/server.h"
#include "src/skyline/query.h"

namespace skydia {
namespace {

// --- tiny flag parser --------------------------------------------------------

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        error_ = "unexpected positional argument: " + arg;
        return;
      }
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";  // boolean flag
      }
    }
  }

  const std::string& error() const { return error_; }

  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& name, int64_t fallback) const {
    const auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }
  bool GetBool(const std::string& name) const {
    const auto it = values_.find(name);
    return it != values_.end() && it->second != "false";
  }
  bool Has(const std::string& name) const { return values_.contains(name); }

 private:
  std::map<std::string, std::string> values_;
  std::string error_;
};

int Fail(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  return 1;
}

// --- tracing -----------------------------------------------------------------

/// Reads --trace and, when present, turns span collection on for the rest of
/// the command. `--trace out.json` names the Chrome-trace output file; a bare
/// `--trace` collects spans for the text summary only. Returns the output
/// path ("" when none was given).
std::string EnableTraceIfRequested(const Flags& flags) {
  if (!flags.Has("trace")) return "";
  trace::SetEnabled(true);
  const std::string path = flags.GetString("trace");
  return path == "true" ? "" : path;
}

/// Writes the collected spans as Chrome trace-event JSON (open it at
/// ui.perfetto.dev or chrome://tracing) and prints the text summary to
/// stderr. No-op when tracing was not requested.
int FinishTrace(const std::string& trace_path) {
  if (!trace::Enabled()) return 0;
  const trace::TraceSnapshot snapshot = trace::Collect();
  if (!trace_path.empty()) {
    if (Status s = trace::WriteChromeTrace(snapshot, trace_path); !s.ok()) {
      return Fail(s.ToString());
    }
  }
  std::cerr << trace::RenderTextSummary(snapshot);
  if (!trace_path.empty()) {
    std::cerr << "wrote trace to " << trace_path << "\n";
  }
  return 0;
}

void PrintUsage() {
  std::cerr
      << "skydia — skyline diagrams for skyline queries\n\n"
         "commands:\n"
         "  generate --n N --domain S [--dist independent|correlated|\n"
         "           anticorrelated|clustered] [--seed K] [--distinct]\n"
         "           --out points.csv\n"
         "  build    --in points.csv [--x x --y y] --type quadrant|global|\n"
         "           dynamic [--algo auto|baseline|dsg|subset|scanning]\n"
         "           [--threads T] [--report] [--trace out.json]\n"
         "           --out diagram.skd  (--report prints per-phase timings;\n"
         "           --trace writes Chrome trace-event JSON for Perfetto)\n"
         "  query    <diagram.skd> [<points.csv>] [--qx X --qy Y]\n"
         "           [--x x --y y] [--threads T] [--exact] [--stats]\n"
         "           [--semantics quadrant|global] [--bench [--repeat R]]\n"
         "           [--trace out.json] [--batch-threshold N]\n"
         "  stats    --diagram diagram.skd\n"
         "  check    <diagram.skd> [--samples N] [--seed K]\n"
         "           [--allow-duplicate-sets]  (validate invariants;\n"
         "           non-zero exit on corruption)\n"
         "  serve    <diagram.skd> [--host H] [--port P] [--threads T]\n"
         "           [--shards S] [--workers W]\n"
         "           [--semantics quadrant|global] [--cache-entries N]\n"
         "           [--idle-timeout-ms MS] [--max-connections N]\n"
         "           [--slow-query-ms MS] [--mutation-window-ms MS]\n"
         "           [--mutation-max-pending N] [--trace [out.json]]\n"
         "           [--trace-sample N] [--trace-window-ms MS]\n"
         "           [--crash-trace out.json|none]\n"
         "           (line-JSON queries over TCP; insert/delete/flush\n"
         "           mutate the served snapshot, coalesced over the\n"
         "           mutation window; SIGHUP hot-swaps the snapshot;\n"
         "           GET /metrics, /healthz, /readyz, /debug/trace,\n"
         "           /debug/snapshot, /debug/connections on the same\n"
         "           port; the flight recorder samples every Nth span\n"
         "           (default 256, 0 disables) over the trace window\n"
         "           (default 10s) and dumps it to --crash-trace on a\n"
         "           fatal signal; --trace records every span and\n"
         "           flushes a summary on exit, even under SIGTERM)\n"
         "  render   --diagram diagram.skd --out out.svg [--labels]\n"
         "  hotels   (print the paper's Figure 1 example)\n";
}

// --- commands ----------------------------------------------------------------

int CmdGenerate(const Flags& flags) {
  DataGenOptions options;
  options.n = static_cast<size_t>(flags.GetInt("n", 256));
  options.domain_size = flags.GetInt("domain", 1024);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  options.distinct_coordinates = flags.GetBool("distinct");
  const std::string dist = flags.GetString("dist", "independent");
  if (dist == "independent") {
    options.distribution = Distribution::kIndependent;
  } else if (dist == "correlated") {
    options.distribution = Distribution::kCorrelated;
  } else if (dist == "anticorrelated") {
    options.distribution = Distribution::kAnticorrelated;
  } else if (dist == "clustered") {
    options.distribution = Distribution::kClustered;
  } else {
    return Fail("unknown --dist " + dist);
  }
  const std::string out = flags.GetString("out");
  if (out.empty()) return Fail("--out is required");

  auto dataset = GenerateDataset(options);
  if (!dataset.ok()) return Fail(dataset.status().ToString());

  CsvDocument doc;
  doc.rows.push_back({"label", "x", "y"});
  for (PointId id = 0; id < dataset->size(); ++id) {
    const Point2D& p = dataset->point(id);
    doc.rows.push_back(
        {dataset->label(id), std::to_string(p.x), std::to_string(p.y)});
  }
  if (Status s = WriteCsvFile(out, doc); !s.ok()) return Fail(s.ToString());
  std::cout << "wrote " << dataset->size() << " " << dist << " points to "
            << out << "\n";
  return 0;
}

int CmdBuild(const Flags& flags) {
  const std::string in = flags.GetString("in");
  const std::string out = flags.GetString("out");
  if (in.empty() || out.empty()) return Fail("--in and --out are required");

  auto dataset =
      LoadDatasetCsv(in, flags.GetString("x", "x"), flags.GetString("y", "y"));
  if (!dataset.ok()) return Fail(dataset.status().ToString());

  auto type = ParseSkylineQueryType(flags.GetString("type", "quadrant"));
  if (!type.ok()) return Fail(type.status().ToString());

  SkylineDiagram::BuildOptions build;
  auto algo = ParseBuildAlgorithm(flags.GetString("algo", "auto"));
  if (!algo.ok()) return Fail(algo.status().ToString());
  build.algorithm = *algo;
  build.parallelism = static_cast<int>(flags.GetInt("threads", 1));

  const std::string trace_path = EnableTraceIfRequested(flags);
  BuildReport report;
  if (flags.GetBool("report") || trace::Enabled()) build.report = &report;

  auto diagram = SkylineDiagram::Build(*std::move(dataset), *type, build);
  if (!diagram.ok()) return Fail(diagram.status().ToString());

  const Status saved =
      diagram->cell_diagram() != nullptr
          ? SaveCellDiagram(diagram->dataset(), *diagram->cell_diagram(), out)
          : SaveSubcellDiagram(diagram->dataset(),
                               *diagram->subcell_diagram(), out);
  if (!saved.ok()) return Fail(saved.ToString());
  std::cout << "built " << SkylineQueryTypeName(*type) << " diagram ("
            << BuildAlgorithmName(build.algorithm) << ", "
            << build.parallelism << " thread(s)) over "
            << diagram->dataset().size() << " points -> " << out << "\n";
  if (build.report != nullptr) std::cout << report.ToString();
  return FinishTrace(trace_path);
}

// Tries the cell format first, then the subcell format.
int WithLoadedDiagram(const Flags& flags,
                      const std::function<int(const LoadedCellDiagram*)>& cell,
                      const std::function<int(const LoadedSubcellDiagram*)>&
                          subcell) {
  const std::string path = flags.GetString("diagram");
  if (path.empty()) return Fail("--diagram is required");
  auto as_cell = LoadCellDiagram(path);
  if (as_cell.ok()) return cell(&*as_cell);
  auto as_subcell = LoadSubcellDiagram(path);
  if (as_subcell.ok()) return subcell(&*as_subcell);
  return Fail("cannot load " + path + ": " + as_cell.status().ToString());
}

// Loads query points from a CSV with a header row naming columns `x_column`
// and `y_column`; extra columns are ignored.
StatusOr<std::vector<Point2D>> LoadQueryPoints(const std::string& path,
                                               const std::string& x_column,
                                               const std::string& y_column) {
  auto doc = ReadCsvFile(path);
  if (!doc.ok()) return doc.status();
  if (doc->rows.empty()) {
    return Status::InvalidArgument("query CSV has no header row: " + path);
  }
  const auto& header = doc->rows[0];
  size_t xi = header.size();
  size_t yi = header.size();
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == x_column) xi = i;
    if (header[i] == y_column) yi = i;
  }
  if (xi == header.size() || yi == header.size()) {
    return Status::InvalidArgument("query CSV columns not found: " + x_column +
                                   ", " + y_column);
  }
  const auto parse = [](const std::string& field, int64_t* out) {
    char* end = nullptr;
    *out = std::strtoll(field.c_str(), &end, 10);
    return end != field.c_str() && *end == '\0';
  };
  std::vector<Point2D> points;
  points.reserve(doc->rows.size() - 1);
  for (size_t r = 1; r < doc->rows.size(); ++r) {
    const auto& row = doc->rows[r];
    Point2D q;
    if (xi >= row.size() || yi >= row.size() || !parse(row[xi], &q.x) ||
        !parse(row[yi], &q.y)) {
      return Status::Corruption("bad query CSV row " + std::to_string(r) +
                                " in " + path);
    }
    points.push_back(q);
  }
  return points;
}

void PrintAnswer(const Dataset& dataset, const Point2D& q,
                 std::span<const PointId> ids) {
  std::cout << "skyline(" << q << ") = {";
  for (size_t i = 0; i < ids.size(); ++i) {
    std::cout << (i ? ", " : "") << dataset.label(ids[i]);
  }
  std::cout << "}\n";
}

void PrintEngineStats(const QueryEngine& engine) {
  const QueryEngineStats stats = engine.Stats();
  std::cout << "engine stats: served=" << stats.queries_served
            << " memo_hits=" << stats.memo_hits
            << " batches=" << stats.batches << " p50=" << stats.p50_latency_ns
            << "ns p99=" << stats.p99_latency_ns << "ns\n";
}

// Compares, over the same query stream: (a) from-scratch linear scans of the
// dataset, (b) per-query indexed lookups, (c) the batched parallel API.
int RunQueryBench(const ServableDiagram& servable,
                  const std::vector<Point2D>& points, int repeat) {
  if (points.empty()) return Fail("--bench needs a non-empty points CSV");
  if (repeat < 1) repeat = 1;
  const Dataset& dataset = servable.dataset();
  const QueryEngine& engine = servable.engine();
  const double total = static_cast<double>(points.size()) * repeat;

  uint64_t sink = 0;
  Timer timer;
  for (int r = 0; r < repeat; ++r) {
    for (const Point2D& q : points) {
      switch (engine.semantics()) {
        case SkylineQueryType::kQuadrant:
          sink += FirstQuadrantSkyline(dataset, q).size();
          break;
        case SkylineQueryType::kGlobal:
          sink += GlobalSkyline(dataset, q).size();
          break;
        case SkylineQueryType::kDynamic:
          sink += DynamicSkyline(dataset, q).size();
          break;
      }
    }
  }
  const double scan_ns = timer.ElapsedSeconds() * 1e9 / total;

  timer.Restart();
  for (int r = 0; r < repeat; ++r) {
    for (const Point2D& q : points) sink += engine.Answer(q).size();
  }
  const double single_ns = timer.ElapsedSeconds() * 1e9 / total;

  std::vector<SetId> out;
  timer.Restart();
  for (int r = 0; r < repeat; ++r) engine.AnswerBatch(points, &out);
  const double batch_ns = timer.ElapsedSeconds() * 1e9 / total;
  for (const SetId id : out) sink += id;

  std::cout << "bench: " << points.size() << " queries x " << repeat
            << " repeat(s), n=" << dataset.size() << " (sink " << sink
            << ")\n";
  const auto line = [&](const char* name, double ns) {
    std::cout << "  " << name << ": " << static_cast<int64_t>(ns)
              << " ns/query (" << scan_ns / (ns > 0 ? ns : 1) << "x)\n";
  };
  line("linear scan", scan_ns);
  line("index      ", single_ns);
  line("batched    ", batch_ns);
  PrintEngineStats(engine);
  return 0;
}

int CmdQuery(const Flags& flags,
             const std::vector<std::string>& positionals) {
  std::string path = flags.GetString("diagram");
  if (path.empty() && !positionals.empty()) path = positionals[0];
  if (path.empty()) {
    return Fail(
        "usage: skydia query <diagram.skd> [<points.csv>] [--qx X --qy Y]");
  }
  std::string points_path = flags.GetString("points");
  if (points_path.empty() && positionals.size() > 1) {
    points_path = positionals[1];
  }

  auto cell_semantics =
      ParseSkylineQueryType(flags.GetString("semantics", "quadrant"));
  if (!cell_semantics.ok()) return Fail(cell_semantics.status().ToString());
  if (*cell_semantics == SkylineQueryType::kDynamic) {
    return Fail("--semantics selects the cell-blob oracle (quadrant|global);"
                " dynamic is inferred from subcell blobs");
  }

  const std::string trace_path = EnableTraceIfRequested(flags);

  QueryEngineOptions options;
  options.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  options.parallel_batch_threshold = static_cast<size_t>(flags.GetInt(
      "batch-threshold",
      static_cast<int64_t>(options.parallel_batch_threshold)));
  auto servable = ServableDiagram::Load(path, options, *cell_semantics);
  if (!servable.ok()) return Fail(servable.status().ToString());
  const QueryEngine& engine = servable->engine();
  const Dataset& dataset = servable->dataset();
  QueryOptions query_options;
  query_options.exact = flags.GetBool("exact");

  if (flags.Has("qx") || flags.Has("qy")) {
    if (!flags.Has("qx") || !flags.Has("qy")) {
      return Fail("--qx and --qy must be given together");
    }
    const Point2D q{flags.GetInt("qx", 0), flags.GetInt("qy", 0)};
    if (query_options.exact) {
      auto answer = engine.Answer(q, query_options);
      if (!answer.ok()) return Fail(answer.status().ToString());
      PrintAnswer(dataset, q, *answer);
    } else {
      PrintAnswer(dataset, q, engine.Answer(q));
    }
  } else if (points_path.empty()) {
    return Fail("provide <points.csv> (or --points), or --qx and --qy");
  }

  if (!points_path.empty()) {
    auto points = LoadQueryPoints(points_path, flags.GetString("x", "x"),
                                  flags.GetString("y", "y"));
    if (!points.ok()) return Fail(points.status().ToString());
    if (flags.GetBool("bench")) {
      const int repeat = static_cast<int>(flags.GetInt("repeat", 3));
      const int rc = RunQueryBench(*servable, *points, repeat);
      if (rc != 0) return rc;
    } else if (query_options.exact) {
      auto answers = engine.AnswerBatch(*points, query_options);
      if (!answers.ok()) return Fail(answers.status().ToString());
      for (size_t i = 0; i < points->size(); ++i) {
        PrintAnswer(dataset, (*points)[i], (*answers)[i]);
      }
    } else {
      std::vector<SetId> out;
      engine.AnswerBatch(*points, &out);
      for (size_t i = 0; i < points->size(); ++i) {
        PrintAnswer(dataset, (*points)[i], engine.Get(out[i]));
      }
    }
  }

  if (flags.GetBool("stats")) PrintEngineStats(engine);
  return FinishTrace(trace_path);
}

int CmdStats(const Flags& flags) {
  return WithLoadedDiagram(
      flags,
      [&](const LoadedCellDiagram* loaded) {
        const auto stats = loaded->diagram.ComputeStats();
        const MergedPolyominoes merged = MergeCells(loaded->diagram);
        std::cout << "kind: cell diagram (quadrant/global)\n"
                  << "points: " << loaded->dataset.size() << "\n"
                  << "domain: " << loaded->dataset.domain_size() << "\n"
                  << "cells: " << stats.num_cells << "\n"
                  << "polyominoes: " << merged.num_polyominoes() << "\n"
                  << "distinct results: " << stats.num_distinct_sets << "\n"
                  << "result elements: " << stats.total_set_elements << "\n"
                  << "arena bytes: " << stats.pool_bytes << "\n"
                  << "approx bytes: " << stats.approx_bytes << "\n";
        return 0;
      },
      [&](const LoadedSubcellDiagram* loaded) {
        const auto stats = loaded->diagram.ComputeStats();
        std::cout << "kind: subcell diagram (dynamic)\n"
                  << "points: " << loaded->dataset.size() << "\n"
                  << "domain: " << loaded->dataset.domain_size() << "\n"
                  << "subcells: " << stats.num_subcells << "\n"
                  << "distinct results: " << stats.num_distinct_sets << "\n"
                  << "result elements: " << stats.total_set_elements << "\n"
                  << "arena bytes: " << stats.pool_bytes << "\n"
                  << "approx bytes: " << stats.approx_bytes << "\n";
        return 0;
      });
}

// Validates every invariant of a stored diagram (src/core/validate.h) and
// exits non-zero on the first violation. The file's checksum and field-level
// structure are already verified by the loader; `check` additionally proves
// the decoded diagram is a well-formed skyline diagram and spot-checks stored
// results against brute-force queries.
int CmdCheck(const Flags& flags, const std::string& positional_path) {
  std::string path = flags.GetString("diagram");
  if (path.empty()) path = positional_path;
  if (path.empty()) return Fail("usage: skydia check <diagram.skd>");

  ValidateOptions validate;
  validate.sample_queries = static_cast<size_t>(flags.GetInt("samples", 64));
  validate.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  validate.require_canonical_pool = !flags.GetBool("allow-duplicate-sets");

  auto as_cell = LoadCellDiagram(path);
  if (as_cell.ok()) {
    if (Status s = ValidateDiagram(as_cell->dataset, as_cell->diagram, validate);
        !s.ok()) {
      return Fail(path + ": " + s.ToString());
    }
    std::cout << "ok: cell diagram, " << as_cell->dataset.size()
              << " points, " << as_cell->diagram.grid().num_cells()
              << " cells, " << as_cell->diagram.pool().size()
              << " result sets, " << validate.sample_queries
              << " sampled queries verified\n";
    return 0;
  }
  auto as_subcell = LoadSubcellDiagram(path);
  if (as_subcell.ok()) {
    if (Status s =
            ValidateDiagram(as_subcell->dataset, as_subcell->diagram, validate);
        !s.ok()) {
      return Fail(path + ": " + s.ToString());
    }
    std::cout << "ok: subcell diagram, " << as_subcell->dataset.size()
              << " points, " << as_subcell->diagram.grid().num_subcells()
              << " subcells, " << as_subcell->diagram.pool().size()
              << " result sets, " << validate.sample_queries
              << " sampled queries verified\n";
    return 0;
  }
  return Fail("cannot load " + path + ": " + as_cell.status().ToString());
}

int CmdRender(const Flags& flags) {
  const std::string out = flags.GetString("out");
  if (out.empty()) return Fail("--out is required");
  SvgOptions svg;
  svg.draw_labels = flags.GetBool("labels");
  return WithLoadedDiagram(
      flags,
      [&](const LoadedCellDiagram* loaded) {
        const Status s = WriteSvgFile(
            out, RenderCellDiagramSvg(loaded->dataset, loaded->diagram, svg));
        if (!s.ok()) return Fail(s.ToString());
        std::cout << "rendered " << out << "\n";
        return 0;
      },
      [&](const LoadedSubcellDiagram* loaded) {
        const Status s = WriteSvgFile(
            out,
            RenderSubcellDiagramSvg(loaded->dataset, loaded->diagram, svg));
        if (!s.ok()) return Fail(s.ToString());
        std::cout << "rendered " << out << "\n";
        return 0;
      });
}

// Serves a built diagram blob over TCP until SIGINT/SIGTERM; SIGHUP
// hot-swaps the snapshot by re-reading the blob (src/serve/server.h).
int CmdServe(const Flags& flags, const std::string& positional_path) {
  std::string path = flags.GetString("diagram");
  if (path.empty()) path = positional_path;
  if (path.empty()) {
    return Fail("usage: skydia serve <diagram.skd> [--port P] [--threads T]"
                " [--shards S] [--workers W]");
  }

  auto cell_semantics =
      ParseSkylineQueryType(flags.GetString("semantics", "quadrant"));
  if (!cell_semantics.ok()) return Fail(cell_semantics.status().ToString());
  if (*cell_semantics == SkylineQueryType::kDynamic) {
    return Fail("--semantics selects the cell-blob oracle (quadrant|global);"
                " dynamic is inferred from subcell blobs");
  }

  serve::ServerOptions options;
  options.host = flags.GetString("host", "127.0.0.1");
  options.port = static_cast<int>(flags.GetInt("port", 7447));
  options.engine.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  options.num_shards = static_cast<int>(flags.GetInt("shards", 1));
  options.num_workers = static_cast<int>(flags.GetInt("workers", 1));
  options.cell_semantics = *cell_semantics;
  options.cache.capacity =
      static_cast<size_t>(flags.GetInt("cache-entries", 1 << 14));
  options.idle_timeout_ms =
      static_cast<int>(flags.GetInt("idle-timeout-ms", 60'000));
  options.max_connections =
      static_cast<int>(flags.GetInt("max-connections", 256));
  options.slow_query_ms =
      static_cast<int>(flags.GetInt("slow-query-ms", options.slow_query_ms));
  options.mutation_window_ms = static_cast<int>(
      flags.GetInt("mutation-window-ms", options.mutation_window_ms));
  options.mutation_max_pending = static_cast<size_t>(
      flags.GetInt("mutation-max-pending",
                   static_cast<int64_t>(options.mutation_max_pending)));

  // The always-on flight recorder: sampled spans over a bounded window,
  // exported live via GET /debug/trace and dumped to --crash-trace by the
  // fatal-signal handler. --trace-sample 0 turns both off.
  const auto sample = flags.GetInt("trace-sample", 256);
  if (sample > 0) {
    trace::RecorderOptions recorder;
    recorder.sample_period = static_cast<uint32_t>(sample);
    recorder.window_ns =
        static_cast<uint64_t>(
            std::max<int64_t>(1, flags.GetInt("trace-window-ms", 10'000))) *
        1'000'000ull;
    trace::EnableFlightRecorder(recorder);
    const std::string crash_path =
        flags.GetString("crash-trace", "/tmp/skydia-crash-trace.json");
    if (crash_path != "none") {
      if (Status s = trace::InstallCrashHandler(crash_path); !s.ok()) {
        std::cerr << "crash-trace handler not installed: " << s << "\n";
      }
    }
  }

  // --trace on the daemon: collect spans for the whole serving lifetime and
  // guarantee the text summary reaches stderr even on a signal-driven exit —
  // RegisterExitSummary installs an atexit flush, and the explicit
  // FlushExitSummary below covers the normal sigwait shutdown path.
  const std::string trace_path = EnableTraceIfRequested(flags);
  if (trace::Enabled()) trace::RegisterExitSummary();

  // Handle the lifecycle signals synchronously on this thread via sigwait:
  // the server threads keep serving while we sleep in sigwait, and a SIGHUP
  // reload runs outside any signal-handler restrictions.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGHUP);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  serve::SkylineServer server(options);
  if (Status s = server.Start(path); !s.ok()) return Fail(s.ToString());
  std::cout << "serving " << path << " on " << options.host << ":"
            << server.port() << " (generation "
            << server.registry().generation()
            << ", SIGHUP reloads, /metrics over HTTP)" << std::endl;

  for (;;) {
    int signo = 0;
    if (sigwait(&mask, &signo) != 0) continue;
    if (signo == SIGHUP) {
      const Status s = server.Reload("");
      if (s.ok()) {
        std::cout << "reloaded " << path << " (generation "
                  << server.registry().generation() << ")" << std::endl;
      } else {
        std::cerr << "reload failed, keeping old snapshot: " << s << std::endl;
      }
      continue;
    }
    break;  // SIGINT / SIGTERM
  }
  std::cout << "shutting down" << std::endl;
  server.Stop();
  if (trace::Enabled()) {
    if (!trace_path.empty()) {
      const trace::TraceSnapshot snapshot = trace::Collect();
      if (Status s = trace::WriteChromeTrace(snapshot, trace_path); !s.ok()) {
        std::cerr << "trace write failed: " << s << "\n";
      } else {
        std::cerr << "wrote trace to " << trace_path << "\n";
      }
    }
    trace::FlushExitSummary();
  }
  return 0;
}

int CmdHotels() {
  const Dataset hotels = HotelExample();
  const Point2D q = HotelExampleQuery();
  std::cout << "Figure 1 running example, q = " << q << "\n";
  const auto print = [&](const char* name, const std::vector<PointId>& ids) {
    std::cout << "  " << name << ": {";
    for (size_t i = 0; i < ids.size(); ++i) {
      std::cout << (i ? ", " : "") << hotels.label(ids[i]);
    }
    std::cout << "}\n";
  };
  print("quadrant", FirstQuadrantSkyline(hotels, q));
  print("global", GlobalSkyline(hotels, q));
  print("dynamic", DynamicSkyline(hotels, q));
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  const std::string command = argv[1];
  // `check` and `query` accept leading positional arguments (the diagram
  // path, and for `query` an optional points CSV).
  std::vector<std::string> positionals;
  int first_flag = 2;
  if (command == "check" || command == "query" || command == "serve") {
    while (first_flag < argc &&
           std::string(argv[first_flag]).rfind("--", 0) != 0) {
      positionals.emplace_back(argv[first_flag++]);
    }
  }
  const Flags flags(argc, argv, first_flag);
  if (!flags.error().empty()) return Fail(flags.error());

  if (command == "generate") return CmdGenerate(flags);
  if (command == "build") return CmdBuild(flags);
  if (command == "query") return CmdQuery(flags, positionals);
  if (command == "stats") return CmdStats(flags);
  if (command == "check") {
    return CmdCheck(flags, positionals.empty() ? "" : positionals[0]);
  }
  if (command == "serve") {
    return CmdServe(flags, positionals.empty() ? "" : positionals[0]);
  }
  if (command == "render") return CmdRender(flags);
  if (command == "hotels") return CmdHotels();
  PrintUsage();
  return Fail("unknown command " + command);
}

}  // namespace
}  // namespace skydia

int main(int argc, char** argv) { return skydia::Main(argc, argv); }
