#include "src/serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/protocol.h"
#include "src/skyline/query.h"
#include "tests/serve/serve_test_util.h"

namespace skydia::serve {
namespace {

using skydia::testing::LineClient;
using skydia::testing::SaveQuadrantFixture;

std::string FixturePath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

/// Starts a server over a fresh fixture blob; fails the test on error.
class ServerTest : public ::testing::Test {
 protected:
  void StartServer(const char* blob_name, size_t n = 64, uint64_t seed = 1) {
    path_ = FixturePath(blob_name);
    dataset_ = SaveQuadrantFixture(n, 1024, seed, path_);
    ServerOptions options;
    options.port = 0;  // ephemeral
    server_ = std::make_unique<SkylineServer>(options);
    ASSERT_TRUE(server_->Start(path_).ok());
    ASSERT_TRUE(client_.Connect(server_->port()));
  }

  std::string path_;
  std::optional<Dataset> dataset_;
  std::unique_ptr<SkylineServer> server_;
  LineClient client_;
};

std::string ExpectedIds(const Dataset& dataset, const Point2D& q) {
  return RenderIdsArray(FirstQuadrantSkyline(dataset, q));
}

/// Strips the trailing `,"rid":"..."` every reply now carries so the oracle
/// comparisons stay byte-exact on the payload fields (the rid itself is
/// covered by debug_endpoints_test.cc).
std::string StripRid(std::string reply) {
  const size_t pos = reply.rfind(",\"rid\":\"");
  if (pos != std::string::npos && !reply.empty() && reply.back() == '}') {
    reply.erase(pos, reply.size() - pos - 1);
  }
  return reply;
}

TEST_F(ServerTest, AnswersQueryAgainstOracle) {
  StartServer("server_query.skd");
  for (const Point2D q : {Point2D{0, 0}, Point2D{17, 900}, Point2D{512, 512},
                          Point2D{1023, 1023}}) {
    ASSERT_TRUE(client_.SendLine("{\"q\":[" + std::to_string(q.x) + "," +
                                 std::to_string(q.y) + "]}"));
    const std::string reply = StripRid(client_.ReadLine());
    EXPECT_EQ(reply,
              "{\"gen\":1,\"ids\":" + ExpectedIds(*dataset_, q) + "}");
  }
}

TEST_F(ServerTest, EchoesCorrelationIdAndLabels) {
  StartServer("server_labels.skd");
  ASSERT_TRUE(client_.SendLine(R"({"q":[512,512],"id":99,"labels":true})"));
  const std::string reply = client_.ReadLine();
  EXPECT_EQ(reply.rfind("{\"id\":99,\"gen\":1,\"labels\":[", 0), 0u) << reply;
}

TEST_F(ServerTest, PipelinedBatchRepliesInOrder) {
  StartServer("server_pipeline.skd");
  std::string burst;
  constexpr int kDepth = 50;
  for (int i = 0; i < kDepth; ++i) {
    burst += "{\"id\":" + std::to_string(i) + ",\"q\":[" +
             std::to_string(i * 20) + "," + std::to_string(1000 - i * 20) +
             "]}\n";
  }
  ASSERT_TRUE(client_.Send(burst));
  for (int i = 0; i < kDepth; ++i) {
    const std::string reply = client_.ReadLine();
    const std::string prefix = "{\"id\":" + std::to_string(i) + ",";
    EXPECT_EQ(reply.rfind(prefix, 0), 0u) << reply;
    EXPECT_EQ(reply.find("\"error\""), std::string::npos) << reply;
  }
}

TEST_F(ServerTest, MalformedLineGetsErrorAndConnectionSurvives) {
  StartServer("server_malformed.skd");
  ASSERT_TRUE(client_.SendLine("this is not json"));
  const std::string error_reply = client_.ReadLine();
  EXPECT_EQ(error_reply.rfind("{\"error\":", 0), 0u) << error_reply;

  // The same connection must keep serving.
  ASSERT_TRUE(client_.SendLine(R"({"q":[512,512],"id":1})"));
  const std::string ok_reply = client_.ReadLine();
  EXPECT_EQ(ok_reply.rfind("{\"id\":1,\"gen\":1,\"ids\":", 0), 0u) << ok_reply;
  EXPECT_GE(server_->metrics().malformed_requests.load(), 1u);
}

TEST_F(ServerTest, SemanticsMismatchIsPerLineError) {
  StartServer("server_semantics.skd");
  // The blob serves quadrant semantics; asking for dynamic without exact
  // must error, with exact must answer via the oracle.
  ASSERT_TRUE(client_.SendLine(R"({"q":[512,512],"semantics":"dynamic"})"));
  EXPECT_EQ(client_.ReadLine().rfind("{\"error\":", 0), 0u);

  ASSERT_TRUE(client_.SendLine(
      R"({"q":[512,512],"semantics":"dynamic","exact":true,"id":2})"));
  const std::string reply = client_.ReadLine();
  EXPECT_EQ(reply.rfind("{\"id\":2,\"gen\":1,\"ids\":", 0), 0u) << reply;
  EXPECT_EQ(reply.find("\"error\""), std::string::npos);
}

TEST_F(ServerTest, PingStatsAndReloadCommands) {
  StartServer("server_admin.skd");
  ASSERT_TRUE(client_.SendLine(R"({"cmd":"ping","id":1})"));
  EXPECT_EQ(StripRid(client_.ReadLine()), "{\"id\":1,\"ok\":true,\"gen\":1}");

  ASSERT_TRUE(client_.SendLine(R"({"q":[512,512]})"));
  (void)client_.ReadLine();
  ASSERT_TRUE(client_.SendLine(R"({"cmd":"stats","id":2})"));
  const std::string stats = client_.ReadLine();
  EXPECT_NE(stats.find("\"queries_served\":"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"cache_misses\":"), std::string::npos) << stats;

  // Overwrite the blob and hot-swap through the admin command.
  SaveQuadrantFixture(96, 1024, /*seed=*/7, path_);
  ASSERT_TRUE(client_.SendLine(R"({"cmd":"reload","id":3})"));
  EXPECT_EQ(StripRid(client_.ReadLine()), "{\"id\":3,\"ok\":true,\"gen\":2}");
  ASSERT_TRUE(client_.SendLine(R"({"q":[512,512],"id":4})"));
  EXPECT_EQ(client_.ReadLine().rfind("{\"id\":4,\"gen\":2,", 0), 0u);
  EXPECT_EQ(server_->registry().Current()->diagram->dataset().size(), 96u);
}

TEST_F(ServerTest, FailedReloadKeepsOldSnapshot) {
  StartServer("server_badreload.skd");
  ASSERT_TRUE(client_.SendLine(
      R"({"cmd":"reload","path":"/nonexistent/blob.skd","id":1})"));
  const std::string reply = client_.ReadLine();
  EXPECT_EQ(reply.rfind("{\"id\":1,\"error\":", 0), 0u) << reply;
  ASSERT_TRUE(client_.SendLine(R"({"q":[512,512],"id":2})"));
  EXPECT_EQ(client_.ReadLine().rfind("{\"id\":2,\"gen\":1,", 0), 0u);
  EXPECT_EQ(server_->metrics().reload_failures.load(), 1u);
}

TEST_F(ServerTest, RepeatedCellQueriesHitTheCache) {
  StartServer("server_cache.skd");
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client_.SendLine(R"({"q":[512,512]})"));
    ASSERT_FALSE(client_.ReadLine().empty());
  }
  const ResultCacheStats stats =
      server_->registry().Current()->cache->Stats();
  EXPECT_GE(stats.hits, 7u);
  EXPECT_GE(stats.misses, 1u);
}

TEST_F(ServerTest, OversizeLineClosesConnection) {
  ServerOptions options;
  options.port = 0;
  options.max_request_bytes = 256;
  path_ = FixturePath("server_oversize.skd");
  SaveQuadrantFixture(16, 1024, /*seed=*/1, path_);
  server_ = std::make_unique<SkylineServer>(options);
  ASSERT_TRUE(server_->Start(path_).ok());
  ASSERT_TRUE(client_.Connect(server_->port()));

  // A single unterminated line larger than the limit.
  std::string oversize(1024, 'x');
  ASSERT_TRUE(client_.Send(oversize));
  const std::string reply = client_.ReadLine();
  EXPECT_EQ(reply.rfind("{\"error\":", 0), 0u) << reply;
  // After the error the server closes: the next read returns "".
  EXPECT_EQ(client_.ReadLine(), "");
}

TEST_F(ServerTest, HttpMetricsAndHealthOnTheSamePort) {
  StartServer("server_http.skd");
  // Generate some traffic so the counters are nonzero.
  ASSERT_TRUE(client_.SendLine(R"({"q":[512,512]})"));
  ASSERT_FALSE(client_.ReadLine().empty());

  LineClient http;
  ASSERT_TRUE(http.Connect(server_->port()));
  ASSERT_TRUE(http.Send("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"));
  const std::string metrics = http.ReadAll();
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("skydia_requests_total"), std::string::npos);
  EXPECT_NE(metrics.find("skydia_snapshot_generation 1"), std::string::npos);
  EXPECT_NE(metrics.find("skydia_cache_hit_ratio"), std::string::npos);
  EXPECT_NE(metrics.find("skydia_query_latency_p99_ns"), std::string::npos);

  LineClient health;
  ASSERT_TRUE(health.Connect(server_->port()));
  ASSERT_TRUE(health.Send("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"));
  EXPECT_NE(health.ReadAll().find("ok"), std::string::npos);
}

TEST_F(ServerTest, StopIsIdempotentAndDrains) {
  StartServer("server_stop.skd");
  ASSERT_TRUE(client_.SendLine(R"({"q":[1,2]})"));
  ASSERT_FALSE(client_.ReadLine().empty());
  server_->Stop();
  server_->Stop();  // second call is a no-op
  EXPECT_FALSE(server_->running());
  EXPECT_EQ(server_->metrics().connections_open.load(), 0u);
}

TEST_F(ServerTest, PartialReadsSplitMidLineStillAnswer) {
  StartServer("server_partial.skd");
  // One request delivered in four fragments, split inside the JSON and
  // inside a number; the reactor must buffer across reads.
  const Point2D q{17, 900};
  ASSERT_TRUE(client_.Send("{\"q\":[1"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(client_.Send("7,90"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(client_.Send("0],\"id\""));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(client_.Send(":7}\n"));
  const std::string reply = StripRid(client_.ReadLine());
  EXPECT_EQ(reply, "{\"id\":7,\"gen\":1,\"ids\":" + ExpectedIds(*dataset_, q) +
                       "}");

  // A fragment arriving together with a complete line: the complete line is
  // answered, the fragment waits.
  ASSERT_TRUE(client_.Send("{\"id\":8,\"q\":[0,0]}\n{\"id\":9,\"q\":[1,"));
  EXPECT_EQ(client_.ReadLine().rfind("{\"id\":8,", 0), 0u);
  ASSERT_TRUE(client_.Send("1]}\n"));
  EXPECT_EQ(client_.ReadLine().rfind("{\"id\":9,", 0), 0u);
}

TEST_F(ServerTest, HalfClosedPeerStillGetsAllReplies) {
  StartServer("server_halfclose.skd");
  // Pipeline a burst, then FIN our write side before reading anything. The
  // server must answer everything already sent, flush, and only then close.
  std::string burst;
  constexpr int kDepth = 200;
  for (int i = 0; i < kDepth; ++i) {
    burst += "{\"id\":" + std::to_string(i) + ",\"q\":[" +
             std::to_string(i * 5) + "," + std::to_string(i * 5) + "]}\n";
  }
  ASSERT_TRUE(client_.Send(burst));
  ASSERT_EQ(::shutdown(client_.fd(), SHUT_WR), 0);
  for (int i = 0; i < kDepth; ++i) {
    const std::string reply = client_.ReadLine();
    EXPECT_EQ(reply.rfind("{\"id\":" + std::to_string(i) + ",", 0), 0u)
        << "at " << i << ": " << reply;
  }
  // After the tail is flushed the server closes its side: EOF, not a hang.
  EXPECT_EQ(client_.ReadLine(), "");
}

TEST_F(ServerTest, SlowClientHitsWriteBackpressureCap) {
  ServerOptions options;
  options.port = 0;
  options.max_response_bytes = 32 * 1024;  // tiny cap for the test
  options.idle_timeout_ms = 0;             // isolate the backpressure path
  path_ = FixturePath("server_backpressure.skd");
  SaveQuadrantFixture(64, 1024, /*seed=*/1, path_);
  server_ = std::make_unique<SkylineServer>(options);
  ASSERT_TRUE(server_->Start(path_).ok());

  // A client that shrinks its receive window and never reads: replies pile
  // up in the server's output buffer until the cap drops the connection.
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  const int rcvbuf = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  timeval tv{0, 200 * 1000};  // bounded sends so the test can't hang
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  const std::string line = "{\"q\":[512,512]}\n";
  std::string chunk;
  for (int i = 0; i < 1024; ++i) chunk += line;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server_->metrics().backpressure_disconnects.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    // Sends fail once the server drops us or our own buffer jams; both are
    // fine — keep polling the metric until the drop is observed.
    (void)::send(fd, chunk.data(), chunk.size(), MSG_NOSIGNAL);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server_->metrics().backpressure_disconnects.load(), 1u);
  ::close(fd);
}

TEST_F(ServerTest, IdleConnectionsAreClosedByTheWheel) {
  ServerOptions options;
  options.port = 0;
  options.idle_timeout_ms = 100;
  path_ = FixturePath("server_idle.skd");
  SaveQuadrantFixture(16, 1024, /*seed=*/1, path_);
  server_ = std::make_unique<SkylineServer>(options);
  ASSERT_TRUE(server_->Start(path_).ok());
  ASSERT_TRUE(client_.Connect(server_->port()));
  // A silent connection must be closed within a few timeout periods (the
  // wheel is coarse, not exact).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server_->metrics().idle_disconnects.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server_->metrics().idle_disconnects.load(), 1u);
  EXPECT_EQ(client_.ReadLine(), "");  // we were the one closed
}

TEST_F(ServerTest, ActiveConnectionSurvivesTheIdleWheel) {
  ServerOptions options;
  options.port = 0;
  // Generous timeout-to-cadence ratio: sanitizer builds on a loaded
  // one-core host can stall a 30ms sleep past a tight idle window.
  options.idle_timeout_ms = 300;
  path_ = FixturePath("server_active.skd");
  SaveQuadrantFixture(16, 1024, /*seed=*/1, path_);
  server_ = std::make_unique<SkylineServer>(options);
  ASSERT_TRUE(server_->Start(path_).ok());
  ASSERT_TRUE(client_.Connect(server_->port()));
  // Query steadily for several timeout periods; the touches must keep the
  // connection enrolled ahead of the hand.
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(900);
  while (std::chrono::steady_clock::now() < until) {
    ASSERT_TRUE(client_.SendLine(R"({"q":[3,4]})"));
    ASSERT_FALSE(client_.ReadLine().empty());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  ASSERT_TRUE(client_.SendLine(R"({"q":[5,6],"id":1})"));
  EXPECT_EQ(client_.ReadLine().rfind("{\"id\":1,", 0), 0u);
}

TEST_F(ServerTest, ShardedServerAnswersIdenticallyToTheOracle) {
  ServerOptions options;
  options.port = 0;
  options.num_shards = 4;
  options.num_workers = 2;
  path_ = FixturePath("server_sharded.skd");
  dataset_ = SaveQuadrantFixture(128, 1024, /*seed=*/21, path_);
  server_ = std::make_unique<SkylineServer>(options);
  ASSERT_TRUE(server_->Start(path_).ok());
  ASSERT_TRUE(client_.Connect(server_->port()));

  // A pipelined burst routed across all four stripes.
  std::string burst;
  constexpr int kDepth = 64;
  for (int i = 0; i < kDepth; ++i) {
    burst += "{\"id\":" + std::to_string(i) + ",\"q\":[" +
             std::to_string((i * 37) % 1024) + "," +
             std::to_string((i * 61) % 1024) + "]}\n";
  }
  ASSERT_TRUE(client_.Send(burst));
  for (int i = 0; i < kDepth; ++i) {
    const Point2D q{(i * 37) % 1024, (i * 61) % 1024};
    EXPECT_EQ(StripRid(client_.ReadLine()),
              "{\"id\":" + std::to_string(i) + ",\"gen\":1,\"ids\":" +
                  ExpectedIds(*dataset_, q) + "}");
  }

  // The stats body and the Prometheus scrape expose the shard dimension.
  ASSERT_TRUE(client_.SendLine(R"({"cmd":"stats","id":99})"));
  const std::string stats = client_.ReadLine();
  EXPECT_NE(stats.find("\"shards\":4"), std::string::npos) << stats;
  LineClient http;
  ASSERT_TRUE(http.Connect(server_->port()));
  ASSERT_TRUE(http.Send("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"));
  const std::string metrics = http.ReadAll();
  EXPECT_NE(metrics.find("skydia_shards 4"), std::string::npos);
  EXPECT_NE(metrics.find("skydia_shard_queries_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("skydia_shard_queries_total{shard=\"3\"}"),
            std::string::npos);

  // Hot-swap under sharding: the new generation serves immediately and the
  // shard view follows atomically.
  SaveQuadrantFixture(96, 1024, /*seed=*/22, path_);
  ASSERT_TRUE(client_.SendLine(R"({"cmd":"reload","id":100})"));
  EXPECT_EQ(StripRid(client_.ReadLine()),
            "{\"id\":100,\"ok\":true,\"gen\":2}");
  ASSERT_TRUE(client_.SendLine(R"({"q":[512,512],"id":101})"));
  EXPECT_EQ(client_.ReadLine().rfind("{\"id\":101,\"gen\":2,", 0), 0u);
  EXPECT_EQ(server_->registry().Current()->sharded->num_shards(), 4);
}

TEST_F(ServerTest, RangeCommandMatchesBruteForce) {
  StartServer("server_range.skd", /*n=*/48, /*seed=*/33);
  const QueryRange range{100, 180, 40, 90};
  // Brute-force union/intersection/distinct over every integer position.
  std::set<PointId> uni;
  std::set<PointId> inter;
  std::set<std::vector<PointId>> distinct;
  bool first = true;
  for (int64_t x = range.x_lo; x <= range.x_hi; ++x) {
    for (int64_t y = range.y_lo; y <= range.y_hi; ++y) {
      const auto sky = FirstQuadrantSkyline(*dataset_, {x, y});
      distinct.insert(sky);
      uni.insert(sky.begin(), sky.end());
      if (first) {
        inter.insert(sky.begin(), sky.end());
        first = false;
      } else {
        std::set<PointId> next;
        for (PointId id : sky) {
          if (inter.count(id)) next.insert(id);
        }
        inter = std::move(next);
      }
    }
  }
  const std::string expected =
      "{\"id\":9,\"gen\":1,\"union\":" +
      RenderIdsArray(std::vector<PointId>(uni.begin(), uni.end())) +
      ",\"intersection\":" +
      RenderIdsArray(std::vector<PointId>(inter.begin(), inter.end())) +
      ",\"distinct\":" + std::to_string(distinct.size()) + "}";
  ASSERT_TRUE(client_.SendLine(
      R"({"cmd":"range","x":[100,180],"y":[40,90],"id":9})"));
  EXPECT_EQ(StripRid(client_.ReadLine()), expected);

  // An inverted range is a per-line error; the connection survives.
  ASSERT_TRUE(client_.SendLine(
      R"({"cmd":"range","x":[5,4],"y":[0,1],"id":10})"));
  EXPECT_EQ(client_.ReadLine().rfind("{\"id\":10,\"error\":", 0), 0u);
  ASSERT_TRUE(client_.SendLine(R"({"cmd":"ping","id":11})"));
  EXPECT_EQ(StripRid(client_.ReadLine()),
            "{\"id\":11,\"ok\":true,\"gen\":1}");
}

TEST_F(ServerTest, InsertDeleteFlushOverTheWire) {
  StartServer("server_mutate.skd", /*n=*/32, /*seed=*/41);
  // Synchronous publish (default window 0): the ack's gen is exact and the
  // next query serves the mutated dataset.
  ASSERT_TRUE(client_.SendLine(R"({"cmd":"insert","x":3,"y":2,"id":1})"));
  EXPECT_EQ(StripRid(client_.ReadLine()),
            "{\"id\":1,\"ok\":true,\"gen\":2,\"point\":32}");

  std::vector<Point2D> points = dataset_->points();
  points.push_back({3, 2});
  auto mutated = Dataset::Create(points, 1024);
  ASSERT_TRUE(mutated.ok());
  ASSERT_TRUE(client_.SendLine(R"({"q":[0,0],"id":2})"));
  EXPECT_EQ(StripRid(client_.ReadLine()),
            "{\"id\":2,\"gen\":2,\"ids\":" + ExpectedIds(*mutated, {0, 0}) +
                "}");

  // Delete the point we just inserted; ids above it are unaffected.
  ASSERT_TRUE(client_.SendLine(R"({"cmd":"delete","point":32,"id":3})"));
  EXPECT_EQ(StripRid(client_.ReadLine()), "{\"id\":3,\"ok\":true,\"gen\":3}");
  ASSERT_TRUE(client_.SendLine(R"({"q":[0,0],"id":4})"));
  EXPECT_EQ(StripRid(client_.ReadLine()),
            "{\"id\":4,\"gen\":3,\"ids\":" + ExpectedIds(*dataset_, {0, 0}) +
                "}");

  // Error codes ride the reply: unknown point, then a clean parse error.
  ASSERT_TRUE(client_.SendLine(R"({"cmd":"delete","point":99,"id":5})"));
  const std::string unknown = client_.ReadLine();
  EXPECT_EQ(unknown.rfind("{\"id\":5,\"error\":", 0), 0u) << unknown;
  EXPECT_NE(unknown.find("\"code\":\"unknown_point\""), std::string::npos)
      << unknown;
  ASSERT_TRUE(client_.SendLine(R"({"cmd":"insert","x":[1,2],"y":3,"id":6})"));
  const std::string bad = client_.ReadLine();
  EXPECT_NE(bad.find("\"code\":\"parse_error\""), std::string::npos) << bad;

  // A flush with nothing pending acks at the current generation.
  ASSERT_TRUE(client_.SendLine(R"({"cmd":"flush","id":7})"));
  EXPECT_EQ(StripRid(client_.ReadLine()), "{\"id\":7,\"ok\":true,\"gen\":3}");
  EXPECT_EQ(server_->metrics().mutation_inserts.load(), 1u);
  EXPECT_EQ(server_->metrics().mutation_deletes.load(), 1u);
  EXPECT_GE(server_->metrics().mutation_failures.load(), 1u);
}

TEST_F(ServerTest, MutationWindowCoalescesAndFlushPublishes) {
  ServerOptions options;
  options.port = 0;
  options.mutation_window_ms = 60'000;  // publish only on explicit flush
  path_ = FixturePath("server_window.skd");
  dataset_ = SaveQuadrantFixture(32, 1024, /*seed=*/42, path_);
  server_ = std::make_unique<SkylineServer>(options);
  ASSERT_TRUE(server_->Start(path_).ok());
  ASSERT_TRUE(client_.Connect(server_->port()));

  // Three deferred inserts: acks carry the lower-bound gen 2, reads keep
  // serving generation 1 until the flush.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client_.SendLine("{\"cmd\":\"insert\",\"x\":" +
                                 std::to_string(200 + i) + ",\"y\":" +
                                 std::to_string(210 + i) +
                                 ",\"id\":" + std::to_string(i) + "}"));
    EXPECT_EQ(StripRid(client_.ReadLine()),
              "{\"id\":" + std::to_string(i) +
                  ",\"ok\":true,\"gen\":2,\"point\":" +
                  std::to_string(32 + i) + "}");
  }
  ASSERT_TRUE(client_.SendLine(R"({"q":[0,0],"id":10})"));
  EXPECT_EQ(client_.ReadLine().rfind("{\"id\":10,\"gen\":1,", 0), 0u);
  EXPECT_EQ(server_->mutations()->pending(), 3u);

  ASSERT_TRUE(client_.SendLine(R"({"cmd":"flush","id":11})"));
  EXPECT_EQ(StripRid(client_.ReadLine()),
            "{\"id\":11,\"ok\":true,\"gen\":2}");
  EXPECT_EQ(server_->registry().Current()->serving().point_count(), 35u);
  ASSERT_TRUE(client_.SendLine(R"({"q":[0,0],"id":12})"));
  EXPECT_EQ(client_.ReadLine().rfind("{\"id\":12,\"gen\":2,", 0), 0u);
  EXPECT_EQ(server_->metrics().mutation_last_publish_mutations.load(), 3u);

  // The mutation series lands on the Prometheus scrape.
  LineClient http;
  ASSERT_TRUE(http.Connect(server_->port()));
  ASSERT_TRUE(http.Send("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"));
  const std::string metrics = http.ReadAll();
  EXPECT_NE(metrics.find("skydia_mutation_inserts_total 3"),
            std::string::npos);
  EXPECT_NE(metrics.find("skydia_mutation_publishes_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("skydia_mutation_points_live 35"),
            std::string::npos);
}

TEST_F(ServerTest, ReloadDiscardsUnpublishedMutations) {
  ServerOptions options;
  options.port = 0;
  options.mutation_window_ms = 60'000;
  path_ = FixturePath("server_mutate_reload.skd");
  dataset_ = SaveQuadrantFixture(32, 1024, /*seed=*/43, path_);
  server_ = std::make_unique<SkylineServer>(options);
  ASSERT_TRUE(server_->Start(path_).ok());
  ASSERT_TRUE(client_.Connect(server_->port()));

  ASSERT_TRUE(client_.SendLine(R"({"cmd":"insert","x":7,"y":9,"id":1})"));
  ASSERT_FALSE(client_.ReadLine().empty());
  ASSERT_EQ(server_->mutations()->pending(), 1u);

  // A successful reload supersedes the shadow; the pending insert is gone.
  ASSERT_TRUE(client_.SendLine(R"({"cmd":"reload","id":2})"));
  EXPECT_EQ(StripRid(client_.ReadLine()), "{\"id\":2,\"ok\":true,\"gen\":2}");
  EXPECT_EQ(server_->mutations()->pending(), 0u);
  ASSERT_TRUE(client_.SendLine(R"({"cmd":"flush","id":3})"));
  EXPECT_EQ(StripRid(client_.ReadLine()), "{\"id\":3,\"ok\":true,\"gen\":2}");
  EXPECT_EQ(server_->registry().Current()->serving().point_count(), 32u);
}

TEST(ServerStartTest, MissingBlobFailsCleanly) {
  SkylineServer server;
  const Status s = server.Start("/nonexistent/diagram.skd");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace skydia::serve
