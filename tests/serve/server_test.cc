#include "src/serve/server.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/serve/protocol.h"
#include "src/skyline/query.h"
#include "tests/serve/serve_test_util.h"

namespace skydia::serve {
namespace {

using skydia::testing::LineClient;
using skydia::testing::SaveQuadrantFixture;

std::string FixturePath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

/// Starts a server over a fresh fixture blob; fails the test on error.
class ServerTest : public ::testing::Test {
 protected:
  void StartServer(const char* blob_name, size_t n = 64, uint64_t seed = 1) {
    path_ = FixturePath(blob_name);
    dataset_ = SaveQuadrantFixture(n, 1024, seed, path_);
    ServerOptions options;
    options.port = 0;  // ephemeral
    server_ = std::make_unique<SkylineServer>(options);
    ASSERT_TRUE(server_->Start(path_).ok());
    ASSERT_TRUE(client_.Connect(server_->port()));
  }

  std::string path_;
  std::optional<Dataset> dataset_;
  std::unique_ptr<SkylineServer> server_;
  LineClient client_;
};

std::string ExpectedIds(const Dataset& dataset, const Point2D& q) {
  return RenderIdsArray(FirstQuadrantSkyline(dataset, q));
}

TEST_F(ServerTest, AnswersQueryAgainstOracle) {
  StartServer("server_query.skd");
  for (const Point2D q : {Point2D{0, 0}, Point2D{17, 900}, Point2D{512, 512},
                          Point2D{1023, 1023}}) {
    ASSERT_TRUE(client_.SendLine("{\"q\":[" + std::to_string(q.x) + "," +
                                 std::to_string(q.y) + "]}"));
    const std::string reply = client_.ReadLine();
    EXPECT_EQ(reply,
              "{\"gen\":1,\"ids\":" + ExpectedIds(*dataset_, q) + "}");
  }
}

TEST_F(ServerTest, EchoesCorrelationIdAndLabels) {
  StartServer("server_labels.skd");
  ASSERT_TRUE(client_.SendLine(R"({"q":[512,512],"id":99,"labels":true})"));
  const std::string reply = client_.ReadLine();
  EXPECT_EQ(reply.rfind("{\"id\":99,\"gen\":1,\"labels\":[", 0), 0u) << reply;
}

TEST_F(ServerTest, PipelinedBatchRepliesInOrder) {
  StartServer("server_pipeline.skd");
  std::string burst;
  constexpr int kDepth = 50;
  for (int i = 0; i < kDepth; ++i) {
    burst += "{\"id\":" + std::to_string(i) + ",\"q\":[" +
             std::to_string(i * 20) + "," + std::to_string(1000 - i * 20) +
             "]}\n";
  }
  ASSERT_TRUE(client_.Send(burst));
  for (int i = 0; i < kDepth; ++i) {
    const std::string reply = client_.ReadLine();
    const std::string prefix = "{\"id\":" + std::to_string(i) + ",";
    EXPECT_EQ(reply.rfind(prefix, 0), 0u) << reply;
    EXPECT_EQ(reply.find("\"error\""), std::string::npos) << reply;
  }
}

TEST_F(ServerTest, MalformedLineGetsErrorAndConnectionSurvives) {
  StartServer("server_malformed.skd");
  ASSERT_TRUE(client_.SendLine("this is not json"));
  const std::string error_reply = client_.ReadLine();
  EXPECT_EQ(error_reply.rfind("{\"error\":", 0), 0u) << error_reply;

  // The same connection must keep serving.
  ASSERT_TRUE(client_.SendLine(R"({"q":[512,512],"id":1})"));
  const std::string ok_reply = client_.ReadLine();
  EXPECT_EQ(ok_reply.rfind("{\"id\":1,\"gen\":1,\"ids\":", 0), 0u) << ok_reply;
  EXPECT_GE(server_->metrics().malformed_requests.load(), 1u);
}

TEST_F(ServerTest, SemanticsMismatchIsPerLineError) {
  StartServer("server_semantics.skd");
  // The blob serves quadrant semantics; asking for dynamic without exact
  // must error, with exact must answer via the oracle.
  ASSERT_TRUE(client_.SendLine(R"({"q":[512,512],"semantics":"dynamic"})"));
  EXPECT_EQ(client_.ReadLine().rfind("{\"error\":", 0), 0u);

  ASSERT_TRUE(client_.SendLine(
      R"({"q":[512,512],"semantics":"dynamic","exact":true,"id":2})"));
  const std::string reply = client_.ReadLine();
  EXPECT_EQ(reply.rfind("{\"id\":2,\"gen\":1,\"ids\":", 0), 0u) << reply;
  EXPECT_EQ(reply.find("\"error\""), std::string::npos);
}

TEST_F(ServerTest, PingStatsAndReloadCommands) {
  StartServer("server_admin.skd");
  ASSERT_TRUE(client_.SendLine(R"({"cmd":"ping","id":1})"));
  EXPECT_EQ(client_.ReadLine(), "{\"id\":1,\"ok\":true,\"gen\":1}");

  ASSERT_TRUE(client_.SendLine(R"({"q":[512,512]})"));
  (void)client_.ReadLine();
  ASSERT_TRUE(client_.SendLine(R"({"cmd":"stats","id":2})"));
  const std::string stats = client_.ReadLine();
  EXPECT_NE(stats.find("\"queries_served\":"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"cache_misses\":"), std::string::npos) << stats;

  // Overwrite the blob and hot-swap through the admin command.
  SaveQuadrantFixture(96, 1024, /*seed=*/7, path_);
  ASSERT_TRUE(client_.SendLine(R"({"cmd":"reload","id":3})"));
  EXPECT_EQ(client_.ReadLine(), "{\"id\":3,\"ok\":true,\"gen\":2}");
  ASSERT_TRUE(client_.SendLine(R"({"q":[512,512],"id":4})"));
  EXPECT_EQ(client_.ReadLine().rfind("{\"id\":4,\"gen\":2,", 0), 0u);
  EXPECT_EQ(server_->registry().Current()->diagram->dataset().size(), 96u);
}

TEST_F(ServerTest, FailedReloadKeepsOldSnapshot) {
  StartServer("server_badreload.skd");
  ASSERT_TRUE(client_.SendLine(
      R"({"cmd":"reload","path":"/nonexistent/blob.skd","id":1})"));
  const std::string reply = client_.ReadLine();
  EXPECT_EQ(reply.rfind("{\"id\":1,\"error\":", 0), 0u) << reply;
  ASSERT_TRUE(client_.SendLine(R"({"q":[512,512],"id":2})"));
  EXPECT_EQ(client_.ReadLine().rfind("{\"id\":2,\"gen\":1,", 0), 0u);
  EXPECT_EQ(server_->metrics().reload_failures.load(), 1u);
}

TEST_F(ServerTest, RepeatedCellQueriesHitTheCache) {
  StartServer("server_cache.skd");
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client_.SendLine(R"({"q":[512,512]})"));
    ASSERT_FALSE(client_.ReadLine().empty());
  }
  const ResultCacheStats stats =
      server_->registry().Current()->cache->Stats();
  EXPECT_GE(stats.hits, 7u);
  EXPECT_GE(stats.misses, 1u);
}

TEST_F(ServerTest, OversizeLineClosesConnection) {
  ServerOptions options;
  options.port = 0;
  options.max_request_bytes = 256;
  path_ = FixturePath("server_oversize.skd");
  SaveQuadrantFixture(16, 1024, /*seed=*/1, path_);
  server_ = std::make_unique<SkylineServer>(options);
  ASSERT_TRUE(server_->Start(path_).ok());
  ASSERT_TRUE(client_.Connect(server_->port()));

  // A single unterminated line larger than the limit.
  std::string oversize(1024, 'x');
  ASSERT_TRUE(client_.Send(oversize));
  const std::string reply = client_.ReadLine();
  EXPECT_EQ(reply.rfind("{\"error\":", 0), 0u) << reply;
  // After the error the server closes: the next read returns "".
  EXPECT_EQ(client_.ReadLine(), "");
}

TEST_F(ServerTest, HttpMetricsAndHealthOnTheSamePort) {
  StartServer("server_http.skd");
  // Generate some traffic so the counters are nonzero.
  ASSERT_TRUE(client_.SendLine(R"({"q":[512,512]})"));
  ASSERT_FALSE(client_.ReadLine().empty());

  LineClient http;
  ASSERT_TRUE(http.Connect(server_->port()));
  ASSERT_TRUE(http.Send("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"));
  const std::string metrics = http.ReadAll();
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("skydia_requests_total"), std::string::npos);
  EXPECT_NE(metrics.find("skydia_snapshot_generation 1"), std::string::npos);
  EXPECT_NE(metrics.find("skydia_cache_hit_ratio"), std::string::npos);
  EXPECT_NE(metrics.find("skydia_query_latency_p99_ns"), std::string::npos);

  LineClient health;
  ASSERT_TRUE(health.Connect(server_->port()));
  ASSERT_TRUE(health.Send("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"));
  EXPECT_NE(health.ReadAll().find("ok"), std::string::npos);
}

TEST_F(ServerTest, StopIsIdempotentAndDrains) {
  StartServer("server_stop.skd");
  ASSERT_TRUE(client_.SendLine(R"({"q":[1,2]})"));
  ASSERT_FALSE(client_.ReadLine().empty());
  server_->Stop();
  server_->Stop();  // second call is a no-op
  EXPECT_FALSE(server_->running());
  EXPECT_EQ(server_->metrics().connections_open.load(), 0u);
}

TEST(ServerStartTest, MissingBlobFailsCleanly) {
  SkylineServer server;
  const Status s = server.Start("/nonexistent/diagram.skd");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace skydia::serve
