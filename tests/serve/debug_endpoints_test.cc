// End-to-end tests for the PR-10 observability surface: rid stamping on
// replies, request-context propagation across the reactor, worker pool, and
// query shards (the acceptance criterion), the liveness/readiness split,
// and the /debug/{trace,connections,snapshot} endpoints.
#include <chrono>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "src/common/trace.h"
#include "src/serve/server.h"
#include "tests/serve/serve_test_util.h"

namespace skydia::serve {
namespace {

using skydia::testing::LineClient;
using skydia::testing::SaveQuadrantFixture;

/// Arms the flight recorder with record-every-span sampling for the test
/// and restores the all-off default (plus clean rings) on exit.
class ScopedRecorder {
 public:
  ScopedRecorder() {
    trace::Reset();
    trace::RecorderOptions options;
    options.sample_period = 1;
    trace::EnableFlightRecorder(options);
  }
  ~ScopedRecorder() {
    trace::DisableFlightRecorder();
    trace::Reset();
  }
};

class DebugEndpointsTest : public ::testing::Test {
 protected:
  void StartServer(const char* blob_name, ServerOptions options = {}) {
    const std::string path = ::testing::TempDir() + "/" + blob_name;
    SaveQuadrantFixture(64, 1024, /*seed=*/1, path);
    options.port = 0;
    server_ = std::make_unique<SkylineServer>(options);
    ASSERT_TRUE(server_->Start(path).ok());
    ASSERT_TRUE(client_.Connect(server_->port()));
  }

  std::string Http(const std::string& target) {
    LineClient http;
    if (!http.Connect(server_->port())) return "";
    if (!http.Send("GET " + target + " HTTP/1.1\r\nHost: x\r\n\r\n")) {
      return "";
    }
    return http.ReadAll();
  }

  std::unique_ptr<SkylineServer> server_;
  LineClient client_;
};

TEST_F(DebugEndpointsTest, ClientRidStampsReplyAndSpansAcrossThreads) {
  ScopedRecorder recorder;
  ServerOptions options;
  options.inline_batch_lines = 0;  // force the worker-pool path
  options.num_shards = 2;
  options.num_workers = 2;
  options.engine.num_threads = 2;
  StartServer("debug_rid.skd", options);

  ASSERT_TRUE(
      client_.SendLine(R"({"q":[512,512],"id":1,"rid":"X-req-1"})"));
  const std::string reply = client_.ReadLine();
  // The rid is stamped as the last field of the reply.
  ASSERT_GE(reply.size(), 2u);
  EXPECT_EQ(reply.substr(reply.size() - std::string(
                ",\"rid\":\"X-req-1\"}").size()),
            ",\"rid\":\"X-req-1\"}")
      << reply;

  // The acceptance criterion: spans from this one request share the rid
  // across the reactor thread (serve.dispatch), a worker thread
  // (serve.batch), and at least one query shard (shard.answer). Tokens are
  // resolved back to strings because interning is not idempotent.
  struct Seen {
    uint32_t tid = 0;
    bool found = false;
  };
  Seen dispatch;
  Seen batch;
  Seen shard;
  for (int attempt = 0; attempt < 50; ++attempt) {
    dispatch = batch = shard = Seen{};
    const trace::TraceSnapshot snapshot = trace::CollectRecent();
    for (const trace::ThreadTrack& track : snapshot.threads) {
      for (const trace::TraceEvent& event : track.events) {
        if (event.ctx == 0 ||
            trace::RequestIdForToken(event.ctx) != "X-req-1") {
          continue;
        }
        const std::string name = event.name;
        if (name == "serve.dispatch") dispatch = {track.tid, true};
        if (name == "serve.batch") batch = {track.tid, true};
        if (name == "shard.answer") shard = {track.tid, true};
      }
    }
    if (dispatch.found && batch.found && shard.found) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(dispatch.found) << "no serve.dispatch span with the rid";
  EXPECT_TRUE(batch.found) << "no serve.batch span with the rid";
  EXPECT_TRUE(shard.found) << "no shard.answer span with the rid";
  // The reactor and the worker are genuinely different threads.
  EXPECT_NE(dispatch.tid, batch.tid);

  // The same window is exported over HTTP as Perfetto JSON with rid args.
  const std::string traced = Http("/debug/trace");
  EXPECT_NE(traced.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(traced.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(traced.find("\"args\":{\"rid\":\"X-req-1\"}"),
            std::string::npos);
}

TEST_F(DebugEndpointsTest, MissingOrInvalidRidGetsServerGeneratedId) {
  StartServer("debug_server_rid.skd");
  ASSERT_TRUE(client_.SendLine(R"({"q":[1,2],"id":1})"));
  const std::string reply = client_.ReadLine();
  EXPECT_NE(reply.find(",\"rid\":\"s"), std::string::npos) << reply;

  // A rid over the 64-byte cap is rejected at parse time; the reply still
  // carries a server-generated id rather than echoing the oversize one.
  const std::string long_rid(65, 'r');
  ASSERT_TRUE(client_.SendLine("{\"q\":[1,2],\"id\":2,\"rid\":\"" +
                               long_rid + "\"}"));
  const std::string rejected = client_.ReadLine();
  EXPECT_EQ(rejected.find(long_rid), std::string::npos) << rejected;
  EXPECT_NE(rejected.find(",\"rid\":\"s"), std::string::npos) << rejected;
}

TEST_F(DebugEndpointsTest, MultiLineBatchSuffixesTheSharedRid) {
  ServerOptions options;
  options.inline_batch_lines = 0;
  StartServer("debug_batch_rid.skd", options);
  // Two lines delivered as one batch: a line's own rid is echoed verbatim,
  // and a rid-less line borrows the batch id with a ".<index>" suffix so
  // every reply of a pipelined batch stays individually addressable.
  ASSERT_TRUE(client_.Send(
      "{\"q\":[1,2],\"id\":0,\"rid\":\"B7\"}\n{\"q\":[3,4],\"id\":1}\n"));
  const std::string first = client_.ReadLine();
  const std::string second = client_.ReadLine();
  EXPECT_NE(first.find(",\"rid\":\"B7\"}"), std::string::npos) << first;
  EXPECT_NE(second.find(",\"rid\":\"B7.1\"}"), std::string::npos) << second;
}

TEST_F(DebugEndpointsTest, ErrorRepliesCarryTheRid) {
  StartServer("debug_error_rid.skd");
  ASSERT_TRUE(client_.SendLine(R"({"nonsense":true,"rid":"bad-1"})"));
  const std::string reply = client_.ReadLine();
  EXPECT_EQ(reply.rfind("{\"error\":", 0), 0u) << reply;
  EXPECT_NE(reply.find("\"rid\":\"bad-1\""), std::string::npos) << reply;
}

TEST_F(DebugEndpointsTest, HealthzIsLivenessAndReadyzReportsServingState) {
  StartServer("debug_health.skd");
  const std::string health = Http("/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string ready = Http("/readyz");
  EXPECT_NE(ready.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(ready.find("\"generation\":1"), std::string::npos) << ready;
  EXPECT_NE(ready.find("\"shards\":"), std::string::npos);
  EXPECT_NE(ready.find("\"points\":64"), std::string::npos) << ready;
  EXPECT_NE(ready.find("\"mutation_pending\":0"), std::string::npos);
}

TEST_F(DebugEndpointsTest, UnknownEndpointListsTheDebugSurface) {
  StartServer("debug_404.skd");
  const std::string reply = Http("/debug/nope");
  EXPECT_NE(reply.find("HTTP/1.1 404 Not Found"), std::string::npos);
  EXPECT_NE(reply.find("/debug/trace"), std::string::npos);
  EXPECT_NE(reply.find("/debug/connections"), std::string::npos);
}

TEST_F(DebugEndpointsTest, DebugConnectionsRendersReactorState) {
  StartServer("debug_conns.skd");
  // Keep one line connection open with an in-flight rid-less query first so
  // the listing has at least the idle line client plus the HTTP probe.
  ASSERT_TRUE(client_.SendLine(R"({"q":[1,2],"id":1})"));
  ASSERT_FALSE(client_.ReadLine().empty());
  const std::string reply = Http("/debug/connections");
  EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(reply.find("\"connections\":["), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"inbuf_bytes\":"), std::string::npos);
  EXPECT_NE(reply.find("\"outbuf_bytes\":"), std::string::npos);
  EXPECT_NE(reply.find("\"idle_ms\":"), std::string::npos);
  // The line client and the HTTP probe itself are both listed.
  EXPECT_NE(reply.find("\"open\":2"), std::string::npos) << reply;
}

TEST_F(DebugEndpointsTest, DebugSnapshotLinksMutationStateAndExemplars) {
  ScopedRecorder recorder;
  ServerOptions options;
  options.mutation_window_ms = 60'000;  // acks now, publish deferred
  StartServer("debug_snapshot.skd", options);

  ASSERT_TRUE(client_.SendLine(
      R"({"cmd":"insert","x":3,"y":2,"id":1,"rid":"mut-1"})"));
  const std::string ack = client_.ReadLine();
  EXPECT_NE(ack.find("\"rid\":\"mut-1\""), std::string::npos) << ack;

  const std::string reply = Http("/debug/snapshot");
  EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(reply.find("\"generation\":1"), std::string::npos) << reply;
  EXPECT_NE(reply.find("\"recorder_active\":true"), std::string::npos);
  EXPECT_NE(reply.find("\"mutation\":{\"pending\":1"), std::string::npos)
      << reply;
  // The deferred window remembers which request opened it.
  EXPECT_NE(reply.find("\"pending_rid\":\"mut-1\""), std::string::npos)
      << reply;
  EXPECT_NE(reply.find("\"window_ms\":60000"), std::string::npos);
  // The insert and the queries above landed duration exemplars carrying
  // their rids.
  EXPECT_NE(reply.find("\"request_duration_exemplars\":[{"),
            std::string::npos)
      << reply;
  EXPECT_NE(reply.find("\"le_ns\":"), std::string::npos);
  EXPECT_NE(reply.find("\"duration_ns\":"), std::string::npos);
}

TEST_F(DebugEndpointsTest, MutationPublishCarriesThePendingRid) {
  ScopedRecorder recorder;
  ServerOptions options;
  options.mutation_window_ms = 60'000;
  StartServer("debug_publish_rid.skd", options);

  ASSERT_TRUE(client_.SendLine(
      R"({"cmd":"insert","x":5,"y":6,"id":1,"rid":"pub-1"})"));
  ASSERT_FALSE(client_.ReadLine().empty());
  // Flush publishes the coalesced window synchronously; the publish span
  // must carry the rid of the request that opened the window, not the
  // flusher's.
  ASSERT_TRUE(client_.SendLine(R"({"cmd":"flush","id":2,"rid":"flusher"})"));
  ASSERT_FALSE(client_.ReadLine().empty());

  bool publish_with_rid = false;
  for (int attempt = 0; attempt < 50 && !publish_with_rid; ++attempt) {
    const trace::TraceSnapshot snapshot = trace::CollectRecent();
    for (const trace::ThreadTrack& track : snapshot.threads) {
      for (const trace::TraceEvent& event : track.events) {
        if (event.ctx != 0 && std::string(event.name) == "mutation.publish" &&
            trace::RequestIdForToken(event.ctx) == "pub-1") {
          publish_with_rid = true;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(publish_with_rid)
      << "no mutation.publish span carrying the window-opening rid";
}

}  // namespace
}  // namespace skydia::serve
