#include "src/serve/protocol.h"

#include <gtest/gtest.h>

#include <limits>

#include "tests/testing/util.h"

namespace skydia::serve {
namespace {

TEST(ParseRequestTest, MinimalQuery) {
  auto r = ParseRequest(R"({"q":[10,80]})");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->kind, RequestKind::kQuery);
  EXPECT_EQ(r->query().q.x, 10);
  EXPECT_EQ(r->query().q.y, 80);
  EXPECT_FALSE(r->query().exact);
  EXPECT_FALSE(r->query().labels);
  EXPECT_FALSE(r->query().semantics.has_value());
  EXPECT_FALSE(r->id.has_value());
}

TEST(ParseRequestTest, AllQueryFields) {
  auto r = ParseRequest(
      R"({"q":[-3,7],"exact":true,"labels":true,"semantics":"global","id":42})");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->query().q.x, -3);
  EXPECT_EQ(r->query().q.y, 7);
  EXPECT_TRUE(r->query().exact);
  EXPECT_TRUE(r->query().labels);
  ASSERT_TRUE(r->query().semantics.has_value());
  EXPECT_EQ(*r->query().semantics, SkylineQueryType::kGlobal);
  ASSERT_TRUE(r->id.has_value());
  EXPECT_EQ(*r->id, 42);
}

TEST(ParseRequestTest, WhitespaceTolerated) {
  auto r = ParseRequest(R"(  { "q" : [ 1 , 2 ] , "id" : 9 }  )");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->query().q.x, 1);
  EXPECT_EQ(r->query().q.y, 2);
  EXPECT_EQ(*r->id, 9);
}

TEST(ParseRequestTest, AdminCommands) {
  auto ping = ParseRequest(R"({"cmd":"ping"})");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->kind, RequestKind::kPing);

  auto stats = ParseRequest(R"({"cmd":"stats","id":1})");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->kind, RequestKind::kStats);
  EXPECT_EQ(*stats->id, 1);

  auto reload = ParseRequest(R"({"cmd":"reload"})");
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->kind, RequestKind::kReload);
  EXPECT_TRUE(reload->reload().path.empty());

  auto reload_path = ParseRequest(R"({"cmd":"reload","path":"/tmp/x.skd"})");
  ASSERT_TRUE(reload_path.ok());
  EXPECT_EQ(reload_path->kind, RequestKind::kReload);
  EXPECT_EQ(reload_path->reload().path, "/tmp/x.skd");
}

TEST(ParseRequestTest, MutationCommands) {
  auto insert = ParseRequest(R"({"cmd":"insert","x":10,"y":-4,"id":7})");
  ASSERT_TRUE(insert.ok()) << insert.status();
  EXPECT_EQ(insert->kind, RequestKind::kInsert);
  EXPECT_EQ(insert->insert().p.x, 10);
  EXPECT_EQ(insert->insert().p.y, -4);
  EXPECT_FALSE(insert->insert().label.has_value());
  EXPECT_EQ(*insert->id, 7);

  auto labelled =
      ParseRequest(R"({"cmd":"insert","x":1,"y":2,"label":"hotel"})");
  ASSERT_TRUE(labelled.ok()) << labelled.status();
  ASSERT_TRUE(labelled->insert().label.has_value());
  EXPECT_EQ(*labelled->insert().label, "hotel");

  auto del = ParseRequest(R"({"cmd":"delete","point":12,"id":9})");
  ASSERT_TRUE(del.ok()) << del.status();
  EXPECT_EQ(del->kind, RequestKind::kDelete);
  EXPECT_EQ(del->del().point, 12);
  EXPECT_EQ(*del->id, 9);

  auto flush = ParseRequest(R"({"cmd":"flush"})");
  ASSERT_TRUE(flush.ok()) << flush.status();
  EXPECT_EQ(flush->kind, RequestKind::kFlush);
}

TEST(ParseRequestTest, MutationRejections) {
  const char* bad[] = {
      R"({"cmd":"insert"})",                    // missing both coordinates
      R"({"cmd":"insert","x":1})",              // missing y
      R"({"cmd":"insert","y":1})",              // missing x
      R"({"cmd":"insert","x":[1,2],"y":3})",    // pair where scalar expected
      R"({"cmd":"insert","x":1,"y":2,"point":3})",  // point on insert
      R"({"cmd":"delete"})",                    // missing point
      R"({"cmd":"delete","point":1,"label":"a"})",  // label on delete
      R"({"cmd":"delete","x":3,"point":1})",    // scalar x on delete
      R"({"cmd":"flush","point":1})",           // point on flush
      R"({"cmd":"ping","label":"a"})",          // label on admin cmd
      R"({"point":3})",                         // point without cmd
      R"({"label":"a","q":[1,2]})",             // label on plain query
      R"({"cmd":"range","x":1,"y":[1,2]})",     // scalar bound on range
  };
  for (const char* line : bad) {
    auto r = ParseRequest(line);
    EXPECT_FALSE(r.ok()) << "accepted: " << line;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << line;
  }
}

TEST(ParseRequestTest, StringEscapes) {
  auto r = ParseRequest(R"({"cmd":"reload","path":"a\"b\\c\n\t"})");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->reload().path, "a\"b\\c\n\t");
}

TEST(ParseRequestTest, Rejections) {
  // One representative malformed line per rule; each must fail, never abort.
  const char* bad[] = {
      "",                                    // not an object
      "[1,2]",                               // not an object
      R"({"q":[1,2]} trailing)",             // trailing bytes
      R"({"q":[1]})",                        // not a pair
      R"({"q":[1,2,3]})",                    // not a pair
      R"({"q":[1.5,2]})",                    // non-integer
      R"({"q":[1e3,2]})",                    // non-integer
      R"({"q":[99999999999999999999,2]})",   // overflow
      R"({"zzz":1})",                        // unknown field
      R"({"q":[1,2],"cmd":"ping"})",         // cmd and q together
      R"({"exact":true})",                   // neither cmd nor q
      R"({"cmd":"explode"})",                // unknown cmd
      R"({"semantics":"voronoi","q":[1,2]})",// unknown semantics
      R"({"exact":maybe,"q":[1,2]})",        // bad bool
      R"({"q":[1,2])",                       // unterminated object
      R"({"cmd":"ping)",                     // unterminated string
  };
  for (const char* line : bad) {
    auto r = ParseRequest(line);
    EXPECT_FALSE(r.ok()) << "accepted: " << line;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << line;
  }
}

TEST(ParseRequestTest, RangeCommand) {
  auto r = ParseRequest(R"({"cmd":"range","x":[10,20],"y":[-5,5],"id":3})");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->kind, RequestKind::kRange);
  EXPECT_EQ(r->range().range.x_lo, 10);
  EXPECT_EQ(r->range().range.x_hi, 20);
  EXPECT_EQ(r->range().range.y_lo, -5);
  EXPECT_EQ(r->range().range.y_hi, 5);
  EXPECT_EQ(*r->id, 3);

  // Field order and labels compose like everywhere else.
  auto swapped = ParseRequest(
      R"({"y":[0,0],"labels":true,"x":[7,7],"cmd":"range"})");
  ASSERT_TRUE(swapped.ok()) << swapped.status();
  EXPECT_EQ(swapped->kind, RequestKind::kRange);
  EXPECT_EQ(swapped->range().range.x_lo, 7);
  EXPECT_TRUE(swapped->range().labels);
}

TEST(ParseRequestTest, RangeRejections) {
  const char* bad[] = {
      R"({"cmd":"range"})",                  // missing both bounds
      R"({"cmd":"range","x":[1,2]})",        // missing y
      R"({"cmd":"range","y":[1,2]})",        // missing x
      R"({"cmd":"range","x":[1],"y":[1,2]})",// not a pair
      R"({"cmd":"range","x":[1,2,3],"y":[1,2]})",
      R"({"cmd":"range","x":[1.5,2],"y":[1,2]})",
      R"({"cmd":"range","x":[1,2],"y":[1,2],"q":[1,2]})",  // with q
      R"({"cmd":"ping","x":[1,2],"y":[1,2]})",  // bounds on other cmd
      R"({"q":[1,2],"x":[1,2],"y":[1,2]})",     // bounds on plain query
      R"({"x":[1,2],"y":[1,2]})",               // bounds alone
  };
  for (const char* line : bad) {
    auto r = ParseRequest(line);
    EXPECT_FALSE(r.ok()) << "accepted: " << line;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << line;
  }
}

TEST(RenderTest, RangeReply) {
  std::string out;
  AppendRangeReply(4, 2, "[1,2]", "[2]", 3, &out);
  EXPECT_EQ(out,
            "{\"id\":4,\"gen\":2,\"union\":[1,2],"
            "\"intersection\":[2],\"distinct\":3}\n");
  out.clear();
  AppendRangeReply(std::nullopt, 1, "[]", "[]", 1, &out);
  EXPECT_EQ(out, "{\"gen\":1,\"union\":[],\"intersection\":[],\"distinct\":1}\n");
}

TEST(ParseRequestTest, UnicodeEscapesRejected) {
  // Built programmatically: backslash-u escapes are out of the protocol's
  // JSON subset and must be rejected, not mis-decoded.
  std::string line = R"({"cmd":"reload","path":")";
  line += '\\';
  line += "u0041\"}";
  auto r = ParseRequest(line);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseRequestTest, NegativeIdAndInt64Extremes) {
  auto r = ParseRequest(
      R"({"q":[-9223372036854775808,9223372036854775807],"id":-1})");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->query().q.x, std::numeric_limits<int64_t>::min());
  EXPECT_EQ(r->query().q.y, std::numeric_limits<int64_t>::max());
  EXPECT_EQ(*r->id, -1);
}

TEST(RenderTest, IdsArray) {
  const PointId ids[] = {1, 4, 9};
  EXPECT_EQ(RenderIdsArray(ids), "[1,4,9]");
  EXPECT_EQ(RenderIdsArray({}), "[]");
}

TEST(RenderTest, LabelsArrayEscapes) {
  auto dataset = Dataset::Create({{1, 2}, {3, 4}}, 10, {"a\"b", "plain"});
  ASSERT_TRUE(dataset.ok());
  const PointId ids[] = {0, 1};
  EXPECT_EQ(RenderLabelsArray(*dataset, ids), R"(["a\"b","plain"])");
}

TEST(RenderTest, JsonEscapeControlCharacters) {
  std::string out;
  JsonEscape(std::string_view("\x01ok\"\\", 5), &out);
  std::string expected;
  expected += '\\';
  expected += "u0001ok";
  expected += '\\';
  expected += '"';
  expected += '\\';
  expected += '\\';
  EXPECT_EQ(out, expected);
}

TEST(RenderTest, ReplyLines) {
  std::string out;
  AppendQueryReply(7, 3, "ids", "[1,2]", &out);
  EXPECT_EQ(out, "{\"id\":7,\"gen\":3,\"ids\":[1,2]}\n");

  out.clear();
  AppendQueryReply(std::nullopt, 1, "labels", R"(["a"])", &out);
  EXPECT_EQ(out, "{\"gen\":1,\"labels\":[\"a\"]}\n");

  out.clear();
  AppendOkReply(5, 2, &out);
  EXPECT_EQ(out, "{\"id\":5,\"ok\":true,\"gen\":2}\n");

  out.clear();
  AppendInsertReply(5, 2, 17, &out);
  EXPECT_EQ(out, "{\"id\":5,\"ok\":true,\"gen\":2,\"point\":17}\n");

  out.clear();
  AppendErrorReply(std::nullopt, ErrorCode::kParseError, "bad \"thing\"",
                   &out);
  EXPECT_EQ(out,
            "{\"error\":\"bad \\\"thing\\\"\",\"code\":\"parse_error\"}\n");

  // The error message comes first so clients of the pre-code protocol that
  // prefix-match on {"error": (or {"id":N,"error":) keep working.
  out.clear();
  AppendErrorReply(3, ErrorCode::kUnknownPoint, "unknown point id 9", &out);
  EXPECT_EQ(out.rfind("{\"id\":3,\"error\":", 0), 0u);
  EXPECT_EQ(out,
            "{\"id\":3,\"error\":\"unknown point id 9\","
            "\"code\":\"unknown_point\"}\n");
}

TEST(ErrorCodeTest, NamesAreStable) {
  // Wire contract: these spellings are what clients branch on.
  EXPECT_EQ(ErrorCodeName(ErrorCode::kParseError), "parse_error");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kInvalidArgument), "invalid_argument");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kDuplicateCoordinate),
            "duplicate_coordinate");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kUnknownPoint), "unknown_point");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kOverloaded), "overloaded");
}

TEST(ErrorCodeTest, StatusMapping) {
  EXPECT_EQ(ErrorCodeForStatus(Status::NotFound("unknown point id 3")),
            ErrorCode::kUnknownPoint);
  EXPECT_EQ(ErrorCodeForStatus(
                Status::AlreadyExists("duplicate x coordinate 7")),
            ErrorCode::kDuplicateCoordinate);
  EXPECT_EQ(ErrorCodeForStatus(Status::ResourceExhausted(
                "mutation backlog full (9 pending); flush or retry")),
            ErrorCode::kOverloaded);
  EXPECT_EQ(ErrorCodeForStatus(
                Status::InvalidArgument("point outside the domain")),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(ErrorCodeForStatus(Status::FailedPrecondition(
                "cannot delete the last remaining point")),
            ErrorCode::kInvalidArgument);
}

TEST(ErrorCodeTest, StatusMappingIsStructuralNotTextual) {
  // Message wording must never decide the wire code: a status whose text
  // merely mentions a mapped keyword keeps its own code's mapping.
  EXPECT_EQ(ErrorCodeForStatus(Status::InvalidArgument(
                "label \"duplicate\" is not a valid label")),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(ErrorCodeForStatus(
                Status::FailedPrecondition("journal backlog full")),
            ErrorCode::kInvalidArgument);
}

TEST(RenderTest, ReplyRoundTripsThroughParserShape) {
  // Every reply the server emits must itself be a line the parser's string
  // and integer rules agree on (guards accidental raw control bytes).
  std::string out;
  AppendErrorReply(-3, ErrorCode::kInvalidArgument, "tab\there", &out);
  EXPECT_EQ(out.find('\t'), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
}

// --- adversarial inputs (fuzz corpus regressions) ----------------------------

TEST(ParseRequestTest, DuplicateKeysLastWins) {
  // The grammar does not forbid repeated keys; the parser's documented
  // behaviour is last-assignment-wins. Pin it so a refactor that changes
  // the semantics (e.g. to first-wins or rejection) fails loudly.
  auto r = ParseRequest(R"({"id":1,"id":2,"q":[3,4],"q":[5,6]})");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->id, 2);
  EXPECT_EQ(r->query().q.x, 5);
  EXPECT_EQ(r->query().q.y, 6);
}

TEST(ParseRequestTest, DuplicateAxisKeysMayChangeShape) {
  // "x" is shape-overloaded (range pair vs insert scalar); last-wins
  // applies to the shape too.
  auto r = ParseRequest(R"({"cmd":"insert","x":[1,2],"x":3,"y":4})");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->insert().p.x, 3);

  auto pair_last =
      ParseRequest(R"({"cmd":"range","x":5,"x":[1,2],"y":[0,9]})");
  ASSERT_TRUE(pair_last.ok()) << pair_last.status();
  EXPECT_EQ(pair_last->range().range.x_lo, 1);
}

TEST(ParseRequestTest, RejectsEmbeddedNulBytes) {
  // NUL inside a string is a control character; NUL after the closing
  // brace is trailing garbage. Both must error, neither may truncate the
  // line at the NUL (the classic C-string confusion bug).
  const std::string in_string("{\"cmd\":\"pi\0ng\"}", 15);
  EXPECT_FALSE(ParseRequest(in_string).ok());
  const std::string after_brace("{\"q\":[1,2]}\0", 12);
  EXPECT_FALSE(ParseRequest(after_brace).ok());
}

TEST(ParseRequestTest, RejectsHugeNumericRun) {
  // A 400-digit integer must come back as a clean overflow error, not a
  // crash or a silently wrapped value.
  std::string line = R"({"q":[)";
  line.append(400, '1');
  line += ",2]}";
  auto r = ParseRequest(line);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseRequestTest, RejectsNestedStructures) {
  // The grammar has no nesting beyond the coordinate pair; anything
  // deeper is rejected at the first unexpected token.
  EXPECT_FALSE(ParseRequest(R"({"q":[[1],2]})").ok());
  EXPECT_FALSE(ParseRequest(R"({"q":{"x":1,"y":2}})").ok());
  EXPECT_FALSE(ParseRequest(R"({"cmd":["ping"]})").ok());
}

}  // namespace
}  // namespace skydia::serve
