#include "src/serve/mutation_pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/incremental.h"
#include "src/core/incremental_dynamic.h"
#include "src/core/query_engine.h"
#include "src/serve/metrics.h"
#include "src/serve/protocol.h"
#include "src/serve/snapshot_registry.h"
#include "src/skyline/query.h"
#include "tests/testing/util.h"

namespace skydia::serve {
namespace {

using skydia::testing::AsSorted;
using skydia::testing::BuildDiagram;
using skydia::testing::RandomDistinctDataset;

/// Installs a quadrant-cell snapshot over `dataset` (built through the same
/// incremental type the pipeline shadows, so structure sharing is exercised).
uint64_t InstallQuadrant(SnapshotRegistry* registry, const Dataset& dataset) {
  auto built = IncrementalQuadrantDiagram::Create(dataset, {});
  SKYDIA_CHECK(built.ok());
  return registry->Install(
      ServableDiagram::Wrap(built->shared_dataset(), built->shared_diagram(),
                            SkylineQueryType::kQuadrant),
      "mem://quadrant");
}

/// Installs a dynamic (subcell) snapshot over `dataset`.
uint64_t InstallDynamic(SnapshotRegistry* registry, const Dataset& dataset) {
  auto built = IncrementalDynamicDiagram::Create(dataset, {});
  SKYDIA_CHECK(built.ok());
  return registry->Install(
      ServableDiagram::Wrap(built->shared_dataset(), built->shared_diagram()),
      "mem://dynamic");
}

std::vector<PointId> ServedSkyline(const SnapshotRegistry& registry,
                                   const Point2D& q) {
  const auto snapshot = registry.Current();
  SKYDIA_CHECK(snapshot != nullptr);
  QueryOptions exact;
  exact.exact = true;
  auto answer = snapshot->serving().engine().Answer(q, exact);
  SKYDIA_CHECK(answer.ok());
  return AsSorted(std::move(answer).value());
}

TEST(MutationPipelineTest, SynchronousInsertPublishesExactGeneration) {
  SnapshotRegistry registry;
  ServerMetrics metrics;
  const Dataset dataset = RandomDistinctDataset(32, 1024, /*seed=*/5);
  ASSERT_EQ(InstallQuadrant(&registry, dataset), 1u);

  MutationPipeline pipeline(&registry, &metrics, {});  // window_ms = 0
  auto ack = pipeline.Insert({3, 2}, std::nullopt);
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(ack->generation, 2u);
  EXPECT_EQ(ack->point, 32u);
  EXPECT_EQ(registry.generation(), 2u);
  EXPECT_EQ(pipeline.pending(), 0u);

  // The published snapshot serves the mutated dataset, verified against the
  // brute-force oracle over the same points.
  const auto snapshot = registry.Current();
  ASSERT_EQ(snapshot->serving().point_count(), 33u);
  std::vector<Point2D> points(dataset.points().begin(),
                              dataset.points().end());
  points.push_back({3, 2});
  auto oracle_ds = Dataset::Create(points, 1024);
  ASSERT_TRUE(oracle_ds.ok());
  for (const Point2D q : {Point2D{0, 0}, Point2D{10, 10}, Point2D{500, 4}}) {
    EXPECT_EQ(ServedSkyline(registry, q),
              AsSorted(FirstQuadrantSkyline(*oracle_ds, q)))
        << "q=(" << q.x << "," << q.y << ")";
  }
  EXPECT_EQ(metrics.mutation_inserts.load(), 1u);
  EXPECT_EQ(metrics.mutation_publishes.load(), 1u);
  EXPECT_EQ(metrics.mutation_points_live.load(), 33u);
  EXPECT_GE(metrics.mutation_cells_recomputed.load(), 1u);
}

TEST(MutationPipelineTest, DeleteRemovesPointAndRejectsUnknownIds) {
  SnapshotRegistry registry;
  ServerMetrics metrics;
  const Dataset dataset = RandomDistinctDataset(24, 1024, /*seed=*/6);
  InstallQuadrant(&registry, dataset);
  MutationPipeline pipeline(&registry, &metrics, {});

  auto ack = pipeline.Delete(7);
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(registry.Current()->serving().point_count(), 23u);

  // Ids shift down past the deleted point; the oracle mirrors that.
  std::vector<Point2D> points(dataset.points().begin(),
                              dataset.points().end());
  points.erase(points.begin() + 7);
  auto oracle_ds = Dataset::Create(points, 1024);
  ASSERT_TRUE(oracle_ds.ok());
  EXPECT_EQ(ServedSkyline(registry, {0, 0}),
            AsSorted(FirstQuadrantSkyline(*oracle_ds, {0, 0})));

  auto unknown = pipeline.Delete(23);  // one past the shrunk end
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ErrorCodeForStatus(unknown.status()), ErrorCode::kUnknownPoint);
  EXPECT_FALSE(pipeline.Delete(-1).ok());
  EXPECT_EQ(metrics.mutation_deletes.load(), 1u);
  EXPECT_EQ(metrics.mutation_failures.load(), 2u);
}

TEST(MutationPipelineTest, WindowCoalescesIntoOneFlushPublish) {
  SnapshotRegistry registry;
  ServerMetrics metrics;
  InstallQuadrant(&registry, RandomDistinctDataset(16, 4096, /*seed=*/7));

  MutationPipelineOptions options;
  options.window_ms = 60'000;  // effectively "until flush"
  MutationPipeline pipeline(&registry, &metrics, options);

  for (int i = 0; i < 5; ++i) {
    auto ack =
        pipeline.Insert({2000 + 2 * i, 2001 + 2 * i}, std::nullopt);
    ASSERT_TRUE(ack.ok()) << ack.status();
    // Deferred acks carry a lower bound on the publishing generation.
    EXPECT_EQ(ack->generation, 2u);
  }
  EXPECT_EQ(pipeline.pending(), 5u);
  EXPECT_EQ(registry.generation(), 1u);  // nothing visible yet
  EXPECT_EQ(metrics.mutation_pending.load(), 5u);

  EXPECT_EQ(pipeline.Flush(), 2u);
  EXPECT_EQ(registry.generation(), 2u);
  EXPECT_EQ(pipeline.pending(), 0u);
  EXPECT_EQ(registry.Current()->serving().point_count(), 21u);
  EXPECT_EQ(metrics.mutation_publishes.load(), 1u);
  EXPECT_EQ(metrics.mutation_last_publish_mutations.load(), 5u);

  // A flush with nothing pending is a no-op at the same generation.
  EXPECT_EQ(pipeline.Flush(), 2u);
  EXPECT_EQ(metrics.mutation_publishes.load(), 1u);
}

TEST(MutationPipelineTest, PublisherThreadFlushesAfterTheWindow) {
  SnapshotRegistry registry;
  ServerMetrics metrics;
  InstallQuadrant(&registry, RandomDistinctDataset(16, 4096, /*seed=*/8));

  MutationPipelineOptions options;
  options.window_ms = 20;
  MutationPipeline pipeline(&registry, &metrics, options);
  ASSERT_TRUE(pipeline.Insert({3000, 3000}, std::nullopt).ok());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (registry.generation() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(registry.generation(), 2u);
  EXPECT_EQ(registry.Current()->serving().point_count(), 17u);
  EXPECT_EQ(pipeline.pending(), 0u);
}

TEST(MutationPipelineTest, BacklogRejectsAsOverloaded) {
  SnapshotRegistry registry;
  ServerMetrics metrics;
  InstallQuadrant(&registry, RandomDistinctDataset(8, 4096, /*seed=*/9));

  MutationPipelineOptions options;
  options.window_ms = 60'000;
  options.max_pending = 2;
  MutationPipeline pipeline(&registry, &metrics, options);
  ASSERT_TRUE(pipeline.Insert({100, 101}, std::nullopt).ok());
  ASSERT_TRUE(pipeline.Insert({102, 103}, std::nullopt).ok());

  auto overloaded = pipeline.Insert({104, 105}, std::nullopt);
  ASSERT_FALSE(overloaded.ok());
  EXPECT_EQ(overloaded.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ErrorCodeForStatus(overloaded.status()), ErrorCode::kOverloaded);

  // Flushing drains the backlog and unblocks writers.
  pipeline.Flush();
  EXPECT_TRUE(pipeline.Insert({104, 105}, std::nullopt).ok());
}

TEST(MutationPipelineTest, ResetDiscardsUnpublishedMutations) {
  SnapshotRegistry registry;
  ServerMetrics metrics;
  InstallQuadrant(&registry, RandomDistinctDataset(16, 4096, /*seed=*/10));

  MutationPipelineOptions options;
  options.window_ms = 60'000;
  MutationPipeline pipeline(&registry, &metrics, options);
  ASSERT_TRUE(pipeline.Insert({2000, 2000}, std::nullopt).ok());
  ASSERT_EQ(pipeline.pending(), 1u);

  pipeline.Reset();
  EXPECT_EQ(pipeline.pending(), 0u);
  EXPECT_EQ(pipeline.Flush(), 1u);  // nothing to publish
  EXPECT_EQ(registry.Current()->serving().point_count(), 16u);

  // The next mutation re-seeds from the current snapshot and works.
  ASSERT_TRUE(pipeline.Insert({2000, 2000}, std::nullopt).ok());
  EXPECT_EQ(pipeline.Flush(), 2u);
  EXPECT_EQ(registry.Current()->serving().point_count(), 17u);
}

TEST(MutationPipelineTest, ReloadAndResetSerializesWithInFlightPublishes) {
  // Regression: a publish that grabbed pre-reload shadow state must never
  // Install() after the reload's snapshot — ReloadAndReset holds the
  // publish lock across the registry swap + shadow reset, so the racing
  // flush either lands before the swap or finds nothing pending after it.
  SnapshotRegistry registry;
  ServerMetrics metrics;
  InstallQuadrant(&registry, RandomDistinctDataset(64, 1 << 20, /*seed=*/21));

  MutationPipelineOptions options;
  options.window_ms = 60'000;  // publishes happen only via Flush
  MutationPipeline pipeline(&registry, &metrics, options);

  const Dataset reloaded = RandomDistinctDataset(48, 1 << 20, /*seed=*/22);
  for (int round = 0; round < 16; ++round) {
    ASSERT_TRUE(
        pipeline.Insert({500'000 + round, 600'000 + round}, std::nullopt)
            .ok());
    std::thread flusher([&pipeline] { pipeline.Flush(); });
    const Status swapped = pipeline.ReloadAndReset([&] {
      InstallQuadrant(&registry, reloaded);
      return Status::OK();
    });
    flusher.join();
    ASSERT_TRUE(swapped.ok());
    // Whatever the interleaving, the reloaded data is what serves.
    EXPECT_EQ(registry.Current()->serving().point_count(), 48u)
        << "round " << round;
    EXPECT_EQ(pipeline.pending(), 0u);
  }
  // A failing swap leaves the shadow (and its pending mutations) intact.
  ASSERT_TRUE(pipeline.Insert({999'999, 999'998}, std::nullopt).ok());
  const Status failed = pipeline.ReloadAndReset(
      [] { return Status::NotFound("no such blob"); });
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(pipeline.pending(), 1u);
  const uint64_t published = pipeline.Flush();
  EXPECT_EQ(published, registry.generation());
  EXPECT_EQ(registry.Current()->serving().point_count(), 49u);
}

TEST(MutationPipelineTest, DeferredAckBoundHoldsUnderConcurrentFlushes) {
  // Visibility contract: once the served generation reaches a deferred
  // ack's lower bound, the write is in the snapshot — including when the
  // mutation lands while a publish that predates it is mid-build (that
  // publish's generation must lie strictly below the bound).
  SnapshotRegistry registry;
  ServerMetrics metrics;
  InstallQuadrant(&registry, RandomDistinctDataset(16, 1 << 20, /*seed=*/23));

  MutationPipelineOptions options;
  options.window_ms = 60'000;  // publishes come only from the flusher
  MutationPipeline pipeline(&registry, &metrics, options);

  std::atomic<bool> stop{false};
  std::thread flusher([&] {
    while (!stop.load(std::memory_order_acquire)) {
      pipeline.Flush();
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (int i = 0; i < 64 && std::chrono::steady_clock::now() < deadline;
       ++i) {
    const Point2D p{100'000 + i, 200'000 + i};
    auto ack = pipeline.Insert(p, std::nullopt);
    ASSERT_TRUE(ack.ok()) << ack.status();
    auto snapshot = registry.Current();
    while (snapshot->generation < ack->generation &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      snapshot = registry.Current();
    }
    ASSERT_GE(snapshot->generation, ack->generation) << "i=" << i;
    const auto& points = snapshot->serving().dataset().points();
    EXPECT_NE(std::find(points.begin(), points.end(), p), points.end())
        << "acked write missing at gen " << snapshot->generation
        << " (bound " << ack->generation << ", i=" << i << ")";
  }
  stop.store(true, std::memory_order_release);
  flusher.join();
}

TEST(MutationPipelineTest, RequireDistinctMapsToDuplicateCoordinate) {
  SnapshotRegistry registry;
  ServerMetrics metrics;
  const Dataset dataset = RandomDistinctDataset(16, 1024, /*seed=*/11);
  InstallQuadrant(&registry, dataset);

  MutationPipelineOptions options;
  options.require_distinct = true;
  MutationPipeline pipeline(&registry, &metrics, options);
  const Point2D clash{dataset.point(0).x, dataset.point(0).y + 1};
  auto dup = pipeline.Insert(clash, std::nullopt);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(ErrorCodeForStatus(dup.status()),
            ErrorCode::kDuplicateCoordinate);
}

TEST(MutationPipelineTest, GlobalSemanticsSnapshotRejectsMutations) {
  SnapshotRegistry registry;
  ServerMetrics metrics;
  const Dataset dataset = RandomDistinctDataset(16, 1024, /*seed=*/12);
  auto holder = std::make_shared<SkylineDiagram>(
      BuildDiagram(dataset, SkylineQueryType::kGlobal));
  registry.Install(
      ServableDiagram::Wrap(
          std::shared_ptr<const Dataset>(holder, &holder->dataset()),
          std::shared_ptr<const CellDiagram>(holder, holder->cell_diagram()),
          SkylineQueryType::kGlobal),
      "mem://global");

  MutationPipeline pipeline(&registry, &metrics, {});
  auto rejected = pipeline.Insert({3, 3}, std::nullopt);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.generation(), 1u);
}

TEST(MutationPipelineTest, NoSnapshotInstalledFailsCleanly) {
  SnapshotRegistry registry;
  ServerMetrics metrics;
  MutationPipeline pipeline(&registry, &metrics, {});
  auto rejected = pipeline.Insert({1, 2}, std::nullopt);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MutationPipelineTest, DynamicFamilyMutatesAndKeepsSubcellShape) {
  SnapshotRegistry registry;
  ServerMetrics metrics;
  const Dataset dataset = RandomDistinctDataset(24, 1024, /*seed=*/13);
  InstallDynamic(&registry, dataset);

  MutationPipeline pipeline(&registry, &metrics, {});
  auto ins = pipeline.Insert({900, 900}, std::string("late"));
  ASSERT_TRUE(ins.ok()) << ins.status();
  auto del = pipeline.Delete(0);
  ASSERT_TRUE(del.ok()) << del.status();

  const auto snapshot = registry.Current();
  EXPECT_EQ(snapshot->generation, 3u);
  EXPECT_EQ(snapshot->serving().point_count(), 24u);
  // The published family must stay subcell: the shadow was seeded dynamic.
  EXPECT_NE(snapshot->diagram->subcell_diagram(), nullptr);
  EXPECT_EQ(snapshot->diagram->cell_diagram(), nullptr);

  // Parity against a from-scratch incremental build over the same points.
  std::vector<Point2D> points(dataset.points().begin(),
                              dataset.points().end());
  points.push_back({900, 900});
  points.erase(points.begin());
  auto oracle_ds = Dataset::Create(points, 1024);
  ASSERT_TRUE(oracle_ds.ok());
  auto oracle = IncrementalDynamicDiagram::Create(*oracle_ds, {});
  ASSERT_TRUE(oracle.ok());
  for (const Point2D q : {Point2D{5, 5}, Point2D{321, 123}}) {
    // Both sides answer through the subcell index (interior-exact), so the
    // comparison carries the same boundary convention.
    auto served = snapshot->serving().engine().Answer(q, {});
    ASSERT_TRUE(served.ok()) << served.status();
    const auto expect = oracle->Query(q);
    EXPECT_EQ(AsSorted(std::move(served).value()),
              AsSorted(std::vector<PointId>(expect.begin(), expect.end())))
        << "q=(" << q.x << "," << q.y << ")";
  }
}

TEST(MutationPipelineTest, ReadersPinnedAcrossPublishKeepTheirSnapshot) {
  SnapshotRegistry registry;
  ServerMetrics metrics;
  InstallQuadrant(&registry, RandomDistinctDataset(16, 4096, /*seed=*/14));
  MutationPipeline pipeline(&registry, &metrics, {});

  const auto pinned = registry.Current();
  ASSERT_TRUE(pipeline.Insert({3000, 3000}, std::nullopt).ok());

  // The pinned (pre-publish) snapshot still answers from the old dataset
  // while the registry serves the new generation.
  EXPECT_EQ(pinned->serving().point_count(), 16u);
  EXPECT_EQ(pinned->generation, 1u);
  EXPECT_EQ(registry.Current()->serving().point_count(), 17u);
  EXPECT_EQ(registry.Current()->generation, 2u);
}

}  // namespace
}  // namespace skydia::serve
