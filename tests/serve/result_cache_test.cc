#include "src/serve/result_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace skydia::serve {
namespace {

ResultCacheOptions SingleShard(size_t capacity) {
  ResultCacheOptions options;
  options.shards = 1;
  options.capacity = capacity;
  return options;
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(SingleShard(4));
  std::string value;
  EXPECT_FALSE(cache.Lookup(7, &value));
  cache.Insert(7, "[1,2]");
  ASSERT_TRUE(cache.Lookup(7, &value));
  EXPECT_EQ(value, "[1,2]");

  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.value_bytes, 5u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(SingleShard(2));
  cache.Insert(1, "a");
  cache.Insert(2, "b");
  std::string value;
  ASSERT_TRUE(cache.Lookup(1, &value));  // 1 is now most recent
  cache.Insert(3, "c");                  // evicts 2
  EXPECT_FALSE(cache.Lookup(2, &value));
  EXPECT_TRUE(cache.Lookup(1, &value));
  EXPECT_TRUE(cache.Lookup(3, &value));
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_EQ(cache.Stats().entries, 2u);
}

TEST(ResultCacheTest, InsertRefreshesExistingKey) {
  ResultCache cache(SingleShard(2));
  cache.Insert(1, "old");
  cache.Insert(2, "b");
  cache.Insert(1, "new!");  // refresh, not a second entry
  cache.Insert(3, "c");     // evicts 2 (1 was refreshed to the front)
  std::string value;
  ASSERT_TRUE(cache.Lookup(1, &value));
  EXPECT_EQ(value, "new!");
  EXPECT_FALSE(cache.Lookup(2, &value));
  EXPECT_EQ(cache.Stats().entries, 2u);
  EXPECT_EQ(cache.Stats().value_bytes, 5u);  // "new!" + "c"
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCacheOptions options;
  options.capacity = 0;
  ResultCache cache(options);
  cache.Insert(1, "a");
  std::string value;
  EXPECT_FALSE(cache.Lookup(1, &value));
  EXPECT_EQ(cache.Stats().entries, 0u);
  EXPECT_EQ(cache.Stats().misses, 1u);
}

TEST(ResultCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  ResultCacheOptions options;
  options.shards = 3;  // rounds to 4
  options.capacity = 8;
  ResultCache cache(options);
  for (uint64_t k = 0; k < 8; ++k) cache.Insert(k, std::to_string(k));
  std::string value;
  size_t resident = 0;
  for (uint64_t k = 0; k < 8; ++k) resident += cache.Lookup(k, &value) ? 1 : 0;
  // Per-shard capacity is 2; uneven key spread may evict, but something
  // must be resident and entry accounting must agree with lookups.
  EXPECT_GT(resident, 0u);
  EXPECT_EQ(cache.Stats().entries, resident);
}

TEST(ResultCacheTest, ConcurrentMixedLoadIsSafe) {
  ResultCache cache(ResultCacheOptions{.shards = 4, .capacity = 64});
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      std::string value;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>((t * 37 + i) % 128);
        if (i % 3 == 0) {
          cache.Insert(key, std::to_string(key));
        } else if (cache.Lookup(key, &value)) {
          // A hit must return the exact value inserted for that key.
          EXPECT_EQ(value, std::to_string(key));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const ResultCacheStats stats = cache.Stats();
  EXPECT_LE(stats.entries, 64u);
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace skydia::serve
