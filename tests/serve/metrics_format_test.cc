// A strict Prometheus text-format (0.0.4) parser over the full /metrics
// payload: every emitted family must carry # HELP and # TYPE before its
// first sample, names must follow the repo naming scheme (lint-enforced in
// tools/metrics_lint.py, re-checked here against the live payload), and
// histograms must expose cumulative monotone buckets with a +Inf bucket
// equal to _count. New metrics that would silently break scrapers fail
// here first.
#include "src/serve/metrics.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/query_engine.h"
#include "src/serve/snapshot_registry.h"
#include "tests/serve/serve_test_util.h"

namespace skydia::serve {
namespace {

struct Sample {
  std::string name;  // full sample name, e.g. skydia_foo_seconds_bucket
  std::map<std::string, std::string> labels;
  double value = 0;
};

struct Family {
  bool have_help = false;
  std::string type;  // "counter" | "gauge" | "histogram" | ...
  std::vector<Sample> samples;
};

/// The family a sample belongs to: histogram series fold their
/// _bucket/_sum/_count suffix back onto the base name.
std::string FamilyOf(const std::string& sample_name,
                     const std::map<std::string, Family>& families) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s(suffix);
    if (sample_name.size() > s.size() &&
        sample_name.compare(sample_name.size() - s.size(), s.size(), s) ==
            0) {
      const std::string base = sample_name.substr(0, sample_name.size() -
                                                         s.size());
      const auto it = families.find(base);
      if (it != families.end() && it->second.type == "histogram") {
        return base;
      }
    }
  }
  return sample_name;
}

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return false;
  }
  for (const char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != ':') {
      return false;
    }
  }
  return true;
}

/// Parses one exposition payload. Violations of the text format are
/// collected into `errors` (empty = fully conformant).
std::map<std::string, Family> ParseExposition(
    const std::string& text, std::vector<std::string>* errors) {
  std::map<std::string, Family> families;
  size_t start = 0;
  int line_no = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      errors->push_back("payload does not end with a newline");
      end = text.size();
    }
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    const auto fail = [&](const std::string& why) {
      errors->push_back("line " + std::to_string(line_no) + ": " + why +
                        ": " + line);
    };
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# HELP <name> <docstring>" or "# TYPE <name> <type>".
      if (line.rfind("# HELP ", 0) == 0) {
        const std::string rest = line.substr(7);
        const size_t sp = rest.find(' ');
        if (sp == std::string::npos || sp + 1 >= rest.size()) {
          fail("HELP without a docstring");
          continue;
        }
        const std::string name = rest.substr(0, sp);
        if (families[name].have_help) fail("duplicate HELP");
        families[name].have_help = true;
      } else if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const size_t sp = rest.find(' ');
        if (sp == std::string::npos) {
          fail("TYPE without a type");
          continue;
        }
        const std::string name = rest.substr(0, sp);
        const std::string type = rest.substr(sp + 1);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          fail("unknown TYPE " + type);
        }
        if (!families[name].type.empty()) fail("duplicate TYPE");
        if (!families[name].samples.empty()) {
          fail("TYPE after the family's first sample");
        }
        families[name].type = type;
      } else {
        fail("comment that is neither HELP nor TYPE");
      }
      continue;
    }
    // Sample line: name[{labels}] value
    Sample sample;
    size_t pos = 0;
    while (pos < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[pos])) ||
            line[pos] == '_' || line[pos] == ':')) {
      ++pos;
    }
    sample.name = line.substr(0, pos);
    if (!ValidMetricName(sample.name)) {
      fail("invalid metric name");
      continue;
    }
    if (pos < line.size() && line[pos] == '{') {
      const size_t close = line.rfind('}');
      if (close == std::string::npos || close < pos) {
        fail("unterminated label set");
        continue;
      }
      // Label pairs: name="value" with \\, \", \n escapes.
      size_t lp = pos + 1;
      while (lp < close) {
        size_t eq = line.find('=', lp);
        if (eq == std::string::npos || eq > close ||
            line[eq + 1] != '"') {
          fail("malformed label pair");
          break;
        }
        const std::string label_name = line.substr(lp, eq - lp);
        if (!ValidMetricName(label_name)) {
          fail("invalid label name " + label_name);
          break;
        }
        std::string value;
        size_t vp = eq + 2;
        bool closed = false;
        while (vp < close) {
          if (line[vp] == '\\' && vp + 1 < close) {
            value.push_back(line[vp + 1] == 'n' ? '\n' : line[vp + 1]);
            vp += 2;
          } else if (line[vp] == '"') {
            closed = true;
            ++vp;
            break;
          } else {
            value.push_back(line[vp++]);
          }
        }
        if (!closed) {
          fail("unterminated label value");
          break;
        }
        sample.labels[label_name] = value;
        if (vp < close && line[vp] == ',') ++vp;
        lp = vp;
      }
      pos = close + 1;
    }
    if (pos >= line.size() || line[pos] != ' ') {
      fail("no space before the sample value");
      continue;
    }
    const std::string value_text = line.substr(pos + 1);
    try {
      size_t consumed = 0;
      if (value_text == "+Inf") {
        sample.value = std::numeric_limits<double>::infinity();
      } else {
        sample.value = std::stod(value_text, &consumed);
        if (consumed != value_text.size()) {
          fail("trailing garbage after the value");
          continue;
        }
      }
    } catch (...) {
      fail("unparseable sample value");
      continue;
    }
    families[FamilyOf(sample.name, families)].samples.push_back(sample);
  }
  // Post: every family with samples has HELP and TYPE.
  for (const auto& [name, family] : families) {
    if (family.samples.empty()) {
      errors->push_back("family " + name + " has HELP/TYPE but no samples");
      continue;
    }
    if (!family.have_help) errors->push_back("family " + name + ": no HELP");
    if (family.type.empty()) errors->push_back("family " + name +
                                               ": no TYPE");
  }
  return families;
}

class MetricsFormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string path = ::testing::TempDir() + "/metrics_format.skd";
    skydia::testing::SaveQuadrantFixture(256, 1 << 10, 7, path);
    auto servable = ServableDiagram::Load(path, QueryEngineOptions{});
    ASSERT_TRUE(servable.ok()) << servable.status().ToString();
    snapshot_.diagram = std::make_shared<const ServableDiagram>(
        std::move(servable).value());
    snapshot_.cache = std::make_shared<ResultCache>();
    snapshot_.generation = 2;
    snapshot_.source_path = path;
    std::vector<Point2D> queries;
    for (int i = 0; i < 2048; ++i) {
      queries.push_back(Point2D{i % 1024, (i * 7) % 1024});
    }
    std::vector<SetId> out;
    snapshot_.diagram->engine().AnswerBatch(queries, &out);

    // Populate every server-side family, including the PR-10 histograms,
    // so the parse walks real bucket series rather than empty stubs.
    metrics_.requests_total.store(9);
    metrics_.connections_opened.store(3);
    metrics_.reactor_loop_lag_ns.store(1'500'000);
    for (uint64_t ns : {800u, 70'000u, 70'001u, 2'000'000u, 900'000'000u}) {
      metrics_.RecordRequestDuration(ns, /*ctx=*/0);
    }
    for (uint64_t ns : {40'000u, 3'000'000u}) {
      metrics_.RecordMutationPublish(ns);
    }
    exposition_ =
        RenderPrometheusMetrics(metrics_, &snapshot_, /*uptime_seconds=*/1.5);
  }

  ServerMetrics metrics_;
  ServingSnapshot snapshot_;
  std::string exposition_;
};

TEST_F(MetricsFormatTest, EveryFamilyParsesWithHelpAndType) {
  std::vector<std::string> errors;
  const auto families = ParseExposition(exposition_, &errors);
  EXPECT_TRUE(errors.empty()) << errors.front() << " (+"
                              << errors.size() - 1 << " more)";
  // The families the dashboards depend on are present with sane types.
  const std::map<std::string, std::string> expect_type = {
      {"skydia_requests_total", "counter"},
      {"skydia_connections_open", "gauge"},
      {"skydia_uptime_seconds", "gauge"},
      {"skydia_reactor_loop_lag_seconds", "gauge"},
      {"skydia_request_duration_seconds", "histogram"},
      {"skydia_mutation_publish_duration_seconds", "histogram"},
      {"skydia_query_latency_ns", "histogram"},
      {"skydia_build_info", "gauge"},
  };
  for (const auto& [name, type] : expect_type) {
    const auto it = families.find(name);
    ASSERT_NE(it, families.end()) << name << " missing from /metrics";
    EXPECT_EQ(it->second.type, type) << name;
    EXPECT_FALSE(it->second.samples.empty()) << name;
  }
}

TEST_F(MetricsFormatTest, HistogramsAreCumulativeWithConsistentSumAndCount) {
  std::vector<std::string> errors;
  const auto families = ParseExposition(exposition_, &errors);
  ASSERT_TRUE(errors.empty()) << errors.front();
  int histograms_checked = 0;
  for (const auto& [name, family] : families) {
    if (family.type != "histogram") continue;
    ++histograms_checked;
    double last_le = -std::numeric_limits<double>::infinity();
    double last_count = -1;
    double inf_count = -1;
    std::optional<double> count;
    bool have_sum = false;
    for (const Sample& sample : family.samples) {
      if (sample.name == name + "_bucket") {
        const auto le = sample.labels.find("le");
        ASSERT_NE(le, sample.labels.end()) << name << " bucket without le";
        const double bound = le->second == "+Inf"
                                 ? std::numeric_limits<double>::infinity()
                                 : std::stod(le->second);
        EXPECT_GT(bound, last_le) << name << ": le not strictly ascending";
        EXPECT_GE(sample.value, last_count)
            << name << ": bucket counts not cumulative at le=" << le->second;
        last_le = bound;
        last_count = sample.value;
        if (std::isinf(bound)) inf_count = sample.value;
      } else if (sample.name == name + "_count") {
        count = sample.value;
      } else if (sample.name == name + "_sum") {
        have_sum = true;
        EXPECT_GE(sample.value, 0) << name;
      }
    }
    ASSERT_TRUE(count.has_value()) << name << ": no _count series";
    EXPECT_TRUE(have_sum) << name << ": no _sum series";
    EXPECT_GE(inf_count, 0) << name << ": no +Inf bucket";
    EXPECT_EQ(inf_count, *count) << name << ": +Inf bucket != _count";
  }
  // All three histograms (engine latency + the two PR-10 duration ones).
  EXPECT_GE(histograms_checked, 3);
}

TEST_F(MetricsFormatTest, NamesFollowTheRepoScheme) {
  std::vector<std::string> errors;
  const auto families = ParseExposition(exposition_, &errors);
  ASSERT_TRUE(errors.empty()) << errors.front();
  for (const auto& [name, family] : families) {
    EXPECT_EQ(name.rfind("skydia_", 0), 0u) << name << ": missing prefix";
    for (const char c : name) {
      EXPECT_TRUE(std::islower(static_cast<unsigned char>(c)) ||
                  std::isdigit(static_cast<unsigned char>(c)) || c == '_')
          << name;
    }
    const bool ends_total =
        name.size() > 6 && name.compare(name.size() - 6, 6, "_total") == 0;
    if (family.type == "counter") {
      EXPECT_TRUE(ends_total) << name << ": counters end in _total";
    } else {
      EXPECT_FALSE(ends_total) << name << ": only counters end in _total";
    }
    // Duration metrics are rendered in base seconds, never milliseconds.
    EXPECT_EQ(name.find("_duration_ms"), std::string::npos) << name;
    if (name.find("_duration_") != std::string::npos) {
      EXPECT_TRUE(name.size() > 8 &&
                  name.compare(name.size() - 8, 8, "_seconds") == 0)
          << name << ": durations are in seconds";
    }
  }
}

TEST_F(MetricsFormatTest, EmptyHistogramsStillRenderInfSumAndCount) {
  // A fresh server with zero mutation publishes must still expose the
  // family (scrapers pre-create series from the first scrape).
  ServerMetrics empty;
  const std::string exposition =
      RenderPrometheusMetrics(empty, nullptr, /*uptime_seconds=*/0.1);
  std::vector<std::string> errors;
  const auto families = ParseExposition(exposition, &errors);
  EXPECT_TRUE(errors.empty()) << errors.front();
  const auto it = families.find("skydia_mutation_publish_duration_seconds");
  ASSERT_NE(it, families.end());
  bool inf_zero = false;
  bool count_zero = false;
  for (const Sample& sample : it->second.samples) {
    if (sample.name.size() > 7 &&
        sample.name.compare(sample.name.size() - 7, 7, "_bucket") == 0 &&
        sample.labels.count("le") && sample.labels.at("le") == "+Inf") {
      inf_zero = sample.value == 0;
    }
    if (sample.name.size() > 6 &&
        sample.name.compare(sample.name.size() - 6, 6, "_count") == 0) {
      count_zero = sample.value == 0;
    }
  }
  EXPECT_TRUE(inf_zero);
  EXPECT_TRUE(count_zero);
}

}  // namespace
}  // namespace skydia::serve
