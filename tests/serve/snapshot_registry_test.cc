#include "src/serve/snapshot_registry.h"

#include <gtest/gtest.h>

#include <string>

#include "src/core/query_engine.h"
#include "tests/serve/serve_test_util.h"

namespace skydia::serve {
namespace {

using skydia::testing::SaveQuadrantFixture;

std::string FixturePath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SnapshotRegistryTest, EmptyUntilFirstInstall) {
  SnapshotRegistry registry;
  EXPECT_EQ(registry.Current(), nullptr);
  EXPECT_EQ(registry.generation(), 0u);
}

TEST(SnapshotRegistryTest, InstallBumpsGeneration) {
  const std::string path = FixturePath("registry_install.skd");
  SaveQuadrantFixture(32, 1024, /*seed=*/1, path);

  SnapshotRegistry registry;
  auto loaded = ServableDiagram::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(registry.Install(std::move(loaded).value(), path), 1u);
  EXPECT_EQ(registry.generation(), 1u);

  const auto snapshot = registry.Current();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->generation, 1u);
  EXPECT_EQ(snapshot->source_path, path);
  EXPECT_EQ(snapshot->diagram->dataset().size(), 32u);
  ASSERT_NE(snapshot->cache, nullptr);
}

TEST(SnapshotRegistryTest, ReloadSwapsAndOldSnapshotSurvivesPin) {
  const std::string path = FixturePath("registry_reload.skd");
  SaveQuadrantFixture(32, 1024, /*seed=*/1, path);

  SnapshotRegistry registry;
  ASSERT_TRUE(registry
                  .Reload(path, QueryEngineOptions{},
                          SkylineQueryType::kQuadrant)
                  .ok());
  const auto pinned = registry.Current();
  ASSERT_NE(pinned, nullptr);

  // Overwrite the blob with a different dataset and reload by stored path.
  SaveQuadrantFixture(48, 1024, /*seed=*/2, path);
  ASSERT_TRUE(
      registry.Reload("", QueryEngineOptions{}, SkylineQueryType::kQuadrant)
          .ok());
  EXPECT_EQ(registry.generation(), 2u);

  // The pinned generation keeps answering from the old dataset.
  EXPECT_EQ(pinned->generation, 1u);
  EXPECT_EQ(pinned->diagram->dataset().size(), 32u);
  EXPECT_EQ(registry.Current()->diagram->dataset().size(), 48u);
}

TEST(SnapshotRegistryTest, FailedReloadKeepsServing) {
  const std::string path = FixturePath("registry_failed_reload.skd");
  SaveQuadrantFixture(32, 1024, /*seed=*/1, path);

  SnapshotRegistry registry;
  ASSERT_TRUE(registry
                  .Reload(path, QueryEngineOptions{},
                          SkylineQueryType::kQuadrant)
                  .ok());
  const Status bad = registry.Reload(path + ".does-not-exist",
                                     QueryEngineOptions{},
                                     SkylineQueryType::kQuadrant);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(registry.generation(), 1u);
  ASSERT_NE(registry.Current(), nullptr);
  EXPECT_EQ(registry.Current()->generation, 1u);
}

TEST(SnapshotRegistryTest, PathlessReloadWithoutInstallFails) {
  SnapshotRegistry registry;
  const Status s =
      registry.Reload("", QueryEngineOptions{}, SkylineQueryType::kQuadrant);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotRegistryTest, FreshCachePerSnapshot) {
  const std::string path = FixturePath("registry_cache.skd");
  SaveQuadrantFixture(32, 1024, /*seed=*/1, path);

  SnapshotRegistry registry;
  ASSERT_TRUE(registry
                  .Reload(path, QueryEngineOptions{},
                          SkylineQueryType::kQuadrant)
                  .ok());
  registry.Current()->cache->Insert(1, "stale");
  ASSERT_TRUE(
      registry.Reload("", QueryEngineOptions{}, SkylineQueryType::kQuadrant)
          .ok());
  std::string value;
  EXPECT_FALSE(registry.Current()->cache->Lookup(1, &value));
}

}  // namespace
}  // namespace skydia::serve
