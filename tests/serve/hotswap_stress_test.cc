// Snapshot hot-swap under concurrent query load.
//
// One writer thread re-saves the fixture blob and reloads the server 50
// times while client threads hammer pipelined queries over real sockets.
// The acceptance contract: zero failed queries across every swap, every
// reply stamped with a valid generation, generations observed monotonically
// non-decreasing per connection, and the run is TSan-clean (this file is in
// the tsan CI preset like every other test).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/server.h"
#include "tests/serve/serve_test_util.h"

namespace skydia::serve {
namespace {

using skydia::testing::LineClient;
using skydia::testing::SaveQuadrantFixture;

constexpr int kReloads = 50;
constexpr int kClientThreads = 2;
constexpr int kPipeline = 16;

/// Extracts the "gen" stamp from a reply line; -1 when absent.
int64_t ParseGeneration(const std::string& reply) {
  const size_t pos = reply.find("\"gen\":");
  if (pos == std::string::npos) return -1;
  return std::atoll(reply.c_str() + pos + 6);
}

TEST(HotSwapStressTest, FiftyReloadsUnderLoadLoseNoQueries) {
  const std::string path =
      ::testing::TempDir() + "/hotswap_stress.skd";
  SaveQuadrantFixture(64, 1024, /*seed=*/1, path);

  ServerOptions options;
  options.port = 0;
  SkylineServer server(options);
  ASSERT_TRUE(server.Start(path).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> replies{0};
  std::atomic<uint64_t> failures{0};

  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&server, &stop, &replies, &failures, t] {
      LineClient client;
      if (!client.Connect(server.port())) {
        failures.fetch_add(1);
        return;
      }
      Rng rng(static_cast<uint64_t>(t) + 1);
      int64_t last_generation = 0;
      while (!stop.load(std::memory_order_acquire)) {
        std::string burst;
        for (int i = 0; i < kPipeline; ++i) {
          burst += "{\"q\":[" + std::to_string(rng.NextInt(0, 1023)) + "," +
                   std::to_string(rng.NextInt(0, 1023)) + "]}\n";
        }
        if (!client.Send(burst)) {
          failures.fetch_add(1);
          return;
        }
        for (int i = 0; i < kPipeline; ++i) {
          const std::string reply = client.ReadLine();
          const int64_t generation = ParseGeneration(reply);
          if (reply.empty() || reply.find("\"error\"") != std::string::npos ||
              reply.find("\"ids\":[") == std::string::npos ||
              generation < 1 || generation > kReloads + 1 ||
              generation < last_generation) {
            failures.fetch_add(1);
            return;
          }
          last_generation = generation;
          replies.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // The writer: alternate between two datasets so every swap changes the
  // served content, not just the generation counter.
  for (int r = 0; r < kReloads; ++r) {
    SaveQuadrantFixture(64 + (r % 2) * 32, 1024,
                        /*seed=*/static_cast<uint64_t>(r + 2), path);
    ASSERT_TRUE(server.Reload("").ok()) << "reload " << r;
    EXPECT_EQ(server.registry().generation(), static_cast<uint64_t>(r + 2));
  }

  // Let the clients run against the final snapshot briefly, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_release);
  for (auto& client : clients) client.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(replies.load(), 0u);
  EXPECT_EQ(server.registry().generation(),
            static_cast<uint64_t>(kReloads + 1));
  EXPECT_EQ(server.metrics().reloads.load(), static_cast<uint64_t>(kReloads));
  EXPECT_EQ(server.metrics().error_replies.load(), 0u);
  server.Stop();
}

}  // namespace
}  // namespace skydia::serve
