// Tests for src/serve/metrics.h: the GuardedDecrement underflow guard (a
// double-closed connection must never wrap connections_open to 2^64-1), the
// cumulative Prometheus histogram derived from the engine's log2 latency
// buckets, and the skydia_build_info labeled gauge.
#include "src/serve/metrics.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/version.h"
#include "src/core/query_engine.h"
#include "tests/serve/serve_test_util.h"
#include "tests/testing/util.h"

namespace skydia::serve {
namespace {

TEST(GuardedDecrementTest, DecrementsUntilZeroThenRefuses) {
  std::atomic<uint64_t> gauge{2};
  EXPECT_TRUE(GuardedDecrement(&gauge));
  EXPECT_EQ(gauge.load(), 1u);
  EXPECT_TRUE(GuardedDecrement(&gauge));
  EXPECT_EQ(gauge.load(), 0u);
  // The double-close regression: a second decrement of an already-closed
  // connection is refused instead of wrapping to 2^64-1.
  EXPECT_FALSE(GuardedDecrement(&gauge));
  EXPECT_EQ(gauge.load(), 0u);
  EXPECT_FALSE(GuardedDecrement(&gauge));
  EXPECT_EQ(gauge.load(), 0u);
}

TEST(GuardedDecrementTest, NeverUnderflowsUnderConcurrentDoubleClose) {
  // 8 threads each try 1000 decrements against 500 opens: exactly 500 must
  // succeed, the rest must be refused, and the gauge must end at 0.
  std::atomic<uint64_t> gauge{500};
  std::atomic<uint64_t> succeeded{0};
  std::vector<std::thread> closers;
  closers.reserve(8);
  for (int t = 0; t < 8; ++t) {
    closers.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (GuardedDecrement(&gauge)) {
          succeeded.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& closer : closers) closer.join();
  EXPECT_EQ(succeeded.load(), 500u);
  EXPECT_EQ(gauge.load(), 0u);
}

/// Parses every `name{labels} value` / `name value` sample line of a
/// Prometheus text exposition into name+labels -> value.
std::map<std::string, double> ParseSamples(const std::string& exposition) {
  std::map<std::string, double> samples;
  std::istringstream stream(exposition);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) {
      ADD_FAILURE() << "unparsable sample line: " << line;
      continue;
    }
    samples[line.substr(0, space)] = std::stod(line.substr(space + 1));
  }
  return samples;
}

class MetricsRenderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string path = ::testing::TempDir() + "/metrics_fixture.skd";
    skydia::testing::SaveQuadrantFixture(256, 1 << 10, 99, path);
    QueryEngineOptions options;
    auto servable = ServableDiagram::Load(path, options);
    ASSERT_TRUE(servable.ok()) << servable.status().ToString();
    snapshot_.diagram = std::make_shared<const ServableDiagram>(
        std::move(servable).value());
    snapshot_.cache = std::make_shared<ResultCache>();
    snapshot_.generation = 3;
    snapshot_.source_path = path;

    // Enough batched queries that the engine's 1-in-32 sampler records a
    // non-trivial latency histogram.
    std::vector<Point2D> queries;
    queries.reserve(2048);
    for (int i = 0; i < 2048; ++i) {
      queries.push_back(Point2D{i % 1024, (i * 7) % 1024});
    }
    std::vector<SetId> out;
    snapshot_.diagram->engine().AnswerBatch(queries, &out);
  }

  ServerMetrics metrics_;
  ServingSnapshot snapshot_;
};

TEST_F(MetricsRenderTest, HistogramIsCumulativeAndConsistent) {
  const QueryEngineStats stats = snapshot_.diagram->engine().Stats();
  ASSERT_GT(stats.latency_samples, 0u);

  const std::string exposition =
      RenderPrometheusMetrics(metrics_, &snapshot_, /*uptime_seconds=*/1.0);
  EXPECT_NE(exposition.find("# TYPE skydia_query_latency_ns histogram"),
            std::string::npos);

  const std::map<std::string, double> samples = ParseSamples(exposition);

  // _count and the +Inf bucket both equal the engine's sample count.
  const double count = samples.at("skydia_query_latency_ns_count");
  EXPECT_EQ(count, static_cast<double>(stats.latency_samples));
  EXPECT_EQ(samples.at("skydia_query_latency_ns_bucket{le=\"+Inf\"}"), count);
  EXPECT_GT(samples.at("skydia_query_latency_ns_sum"), 0.0);

  // Finite buckets are cumulative: non-decreasing in le order, bounded by
  // the +Inf bucket, with power-of-two upper bounds.
  double previous = 0.0;
  double last_finite = 0.0;
  int finite_buckets = 0;
  for (uint64_t le = 2; le != 0; le <<= 1) {
    const auto it = samples.find("skydia_query_latency_ns_bucket{le=\"" +
                                 std::to_string(le) + "\"}");
    if (it == samples.end()) continue;
    ++finite_buckets;
    EXPECT_GE(it->second, previous) << "le=" << le;
    previous = it->second;
    last_finite = it->second;
  }
  EXPECT_GT(finite_buckets, 0);
  // Trailing empty buckets collapse into +Inf, so the last finite bucket
  // already holds every sample.
  EXPECT_EQ(last_finite, count);
}

TEST_F(MetricsRenderTest, BuildInfoCarriesVersionGenerationAndDatasetShape) {
  const std::string exposition =
      RenderPrometheusMetrics(metrics_, &snapshot_, /*uptime_seconds=*/1.0);
  EXPECT_NE(exposition.find("# TYPE skydia_build_info gauge"),
            std::string::npos);
  const std::string expected_prefix =
      std::string("skydia_build_info{version=\"") + kVersion + "\"";
  EXPECT_NE(exposition.find(expected_prefix), std::string::npos);
  EXPECT_NE(exposition.find("generation=\"3\""), std::string::npos);
  EXPECT_NE(exposition.find("points=\"256\""), std::string::npos);
  // Info pattern: the gauge's value is the constant 1.
  const size_t at = exposition.find("skydia_build_info{");
  ASSERT_NE(at, std::string::npos);
  const size_t eol = exposition.find('\n', at);
  const std::string line = exposition.substr(at, eol - at);
  EXPECT_EQ(line.substr(line.size() - 2), " 1");
}

TEST_F(MetricsRenderTest, NullSnapshotStillRendersServerCounters) {
  metrics_.connections_opened.store(5);
  const std::string exposition =
      RenderPrometheusMetrics(metrics_, nullptr, /*uptime_seconds=*/2.0);
  EXPECT_NE(exposition.find("skydia_connections_opened_total 5"),
            std::string::npos);
  // Snapshot-derived families must be absent, not rendered with garbage.
  EXPECT_EQ(exposition.find("skydia_build_info"), std::string::npos);
  EXPECT_EQ(exposition.find("skydia_query_latency_ns_bucket"),
            std::string::npos);
}

}  // namespace
}  // namespace skydia::serve
