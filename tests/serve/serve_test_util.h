// Shared helpers for the serve test suites: fixture blobs on disk and a
// minimal blocking line-protocol client over a real loopback socket.
#ifndef SKYDIA_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define SKYDIA_TESTS_SERVE_SERVE_TEST_UTIL_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <utility>

#include "src/common/logging.h"
#include "src/common/status.h"
#include "src/core/diagram.h"
#include "src/core/serialize.h"
#include "tests/testing/util.h"

namespace skydia::testing {

/// Builds a quadrant diagram over a seeded random dataset and saves it to
/// `path` (overwriting). Returns the dataset for oracle comparisons.
inline Dataset SaveQuadrantFixture(size_t n, int64_t domain, uint64_t seed,
                                   const std::string& path) {
  Dataset dataset = RandomDataset(n, domain, seed);
  auto diagram =
      SkylineDiagram::Build(std::move(dataset), SkylineQueryType::kQuadrant);
  SKYDIA_CHECK(diagram.ok());
  SKYDIA_CHECK(
      SaveCellDiagram(diagram->dataset(), *diagram->cell_diagram(), path)
          .ok());
  auto copy = Dataset::Create(diagram->dataset().points(),
                              diagram->dataset().domain_size());
  return std::move(copy).value();
}

/// A blocking line-oriented test client with a receive timeout, so a server
/// bug fails the test instead of hanging it.
class LineClient {
 public:
  LineClient() = default;
  ~LineClient() { Close(); }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  bool Connect(int port, int recv_timeout_ms = 10'000) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      Close();
      return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return true;
  }

  /// Sends raw bytes (append the '\n' yourself — lets tests pipeline).
  bool Send(const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  bool SendLine(const std::string& line) { return Send(line + "\n"); }

  /// Reads one reply line (without the newline); "" on timeout/close.
  std::string ReadLine() {
    for (;;) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return "";
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// Reads until the peer closes (HTTP responses).
  std::string ReadAll() {
    std::string out = std::move(buffer_);
    buffer_.clear();
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return out;
      }
      out.append(chunk, static_cast<size_t>(n));
    }
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool connected() const { return fd_ >= 0; }

  /// The raw socket, for tests that need shutdown() or setsockopt().
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace skydia::testing

#endif  // SKYDIA_TESTS_SERVE_SERVE_TEST_UTIL_H_
