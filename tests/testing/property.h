// Property-based testing harness: seeded random cases with printed
// reproduction seeds.
//
// The differential suites (tests/core/query_engine_test.cc) generate
// thousands of random datasets and query points and assert that the serving
// path agrees with the brute-force oracles. When a case fails, the harness
// prints the case seed; every generator below is deterministic in that seed,
// so re-running the generator chain with the printed seed reconstructs the
// exact counterexample.
#ifndef SKYDIA_TESTS_TESTING_PROPERTY_H_
#define SKYDIA_TESTS_TESTING_PROPERTY_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

#include "src/common/random.h"
#include "src/geometry/dataset.h"
#include "src/geometry/point.h"
#include "tests/testing/util.h"

namespace skydia::testing {

/// Seed of case `index` under `base_seed`. Exposed so a failure message's
/// case seed can be plugged back into a standalone reproduction.
inline uint64_t CaseSeed(uint64_t base_seed, size_t index) {
  return base_seed + 0x9E3779B97F4A7C15ull * (index + 1);
}

/// Environment override for the whole suite's base seed: set
/// SKYDIA_PROPERTY_SEED to re-run every property at a chosen base (e.g. to
/// reproduce a CI failure locally or to widen a soak run).
inline uint64_t PropertyBaseSeed(uint64_t fallback) {
  const char* env = std::getenv("SKYDIA_PROPERTY_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : fallback;
}

/// Runs `fn(rng, case_seed)` for `cases` independently seeded cases. On the
/// first case with a failed gtest assertion, prints the base and case seeds
/// and stops (one failing run pins one reproducible counterexample instead
/// of cascading noise).
template <typename Fn>
void RunSeededCases(const char* property, size_t cases, uint64_t base_seed,
                    Fn&& fn) {
  for (size_t i = 0; i < cases; ++i) {
    const uint64_t seed = CaseSeed(base_seed, i);
    Rng rng(seed);
    fn(rng, seed);
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "property \"" << property << "\" failed at case " << i
                    << " of " << cases << "; reproduce with base_seed="
                    << base_seed << " (case_seed=" << seed
                    << ", or rerun with SKYDIA_PROPERTY_SEED=" << base_seed
                    << ")";
      return;
    }
  }
}

/// A query position for differential testing: mostly uniform over the
/// domain, with deliberate mass on the measure-zero positions the half-open
/// convention has to get right — data points (arrangement vertices), grid
/// lines, domain corners, and positions outside the bounding grid
/// (including negative coordinates).
inline Point2D RandomQueryPoint(Rng& rng, const Dataset& dataset) {
  const int64_t s = dataset.domain_size();
  switch (rng.NextBounded(8)) {
    case 0:  // exactly on a data point
      return dataset.point(
          static_cast<PointId>(rng.NextBounded(dataset.size())));
    case 1: {  // on one point's grid line, random in the other dimension
      const Point2D& p = dataset.point(
          static_cast<PointId>(rng.NextBounded(dataset.size())));
      return rng.NextBernoulli(0.5) ? Point2D{p.x, rng.NextInt(-2, s + 1)}
                                    : Point2D{rng.NextInt(-2, s + 1), p.y};
    }
    case 2:  // domain corners
      return Point2D{rng.NextBernoulli(0.5) ? 0 : s - 1,
                     rng.NextBernoulli(0.5) ? 0 : s - 1};
    case 3:  // outside the bounding grid
      return rng.NextBernoulli(0.5)
                 ? Point2D{rng.NextInt(-s, -1), rng.NextInt(-s, 2 * s)}
                 : Point2D{rng.NextInt(s, 2 * s), rng.NextInt(-s, 2 * s)};
    default:  // uniform interior-ish position
      return Point2D{rng.NextInt(0, s - 1), rng.NextInt(0, s - 1)};
  }
}

}  // namespace skydia::testing

#endif  // SKYDIA_TESTS_TESTING_PROPERTY_H_
