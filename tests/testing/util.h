// Shared helpers for the skydia test suites: brute-force oracles and random
// dataset construction independent of the library's generators.
#ifndef SKYDIA_TESTS_TESTING_UTIL_H_
#define SKYDIA_TESTS_TESTING_UTIL_H_

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/core/diagram.h"
#include "src/datagen/distributions.h"
#include "src/geometry/dataset.h"
#include "src/skyline/dominance.h"

namespace skydia::testing {

/// Builds a diagram through the SkylineDiagram::Build facade from a
/// borrowed dataset (the facade takes ownership, so this copies — fine at
/// test sizes). CHECK-fails on error: tests that exercise Build's error
/// paths call the facade directly.
inline SkylineDiagram BuildDiagram(const Dataset& dataset,
                                   SkylineQueryType type,
                                   BuildAlgorithm algorithm = BuildAlgorithm::kAuto,
                                   int parallelism = 1,
                                   const DiagramOptions& diagram_options = {}) {
  std::vector<std::string> labels;
  if (dataset.has_labels()) {
    labels.reserve(dataset.size());
    for (PointId id = 0; id < dataset.size(); ++id) {
      labels.push_back(dataset.label(id));
    }
  }
  auto copy = Dataset::Create(dataset.points(), dataset.domain_size(),
                              std::move(labels));
  SKYDIA_CHECK(copy.ok());
  SkylineBuildOptions options;
  options.algorithm = algorithm;
  options.parallelism = parallelism;
  options.diagram = diagram_options;
  auto built = SkylineDiagram::Build(std::move(copy).value(), type, options);
  SKYDIA_CHECK(built.ok());
  return std::move(built).value();
}

/// BuildDiagram, unwrapped to the cell diagram (quadrant/global).
inline SkylineDiagram BuildCellDiagram(
    const Dataset& dataset, SkylineQueryType type,
    BuildAlgorithm algorithm = BuildAlgorithm::kAuto, int parallelism = 1,
    const DiagramOptions& diagram_options = {}) {
  SkylineDiagram built =
      BuildDiagram(dataset, type, algorithm, parallelism, diagram_options);
  SKYDIA_CHECK(built.cell_diagram() != nullptr);
  return built;
}

/// One seeded dataset through the library's workload generator. The single
/// shared construction for every suite that needs "n points of distribution
/// D at seed K" (previously re-implemented ad hoc per test file).
inline Dataset GeneratedDataset(size_t n, int64_t domain,
                                Distribution distribution, uint64_t seed) {
  DataGenOptions options;
  options.n = n;
  options.domain_size = domain;
  options.distribution = distribution;
  options.seed = seed;
  auto ds = GenerateDataset(options);
  return std::move(ds).value();
}

/// O(n^2) oracle: min-preference skyline by pairwise dominance.
inline std::vector<PointId> BruteSkyline2d(const Dataset& dataset) {
  std::vector<PointId> result;
  for (PointId a = 0; a < dataset.size(); ++a) {
    bool dominated = false;
    for (PointId b = 0; b < dataset.size(); ++b) {
      if (b != a && Dominates(dataset.point(b), dataset.point(a))) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(a);
  }
  return result;
}

/// O(n^2 d) oracle for d dimensions.
inline std::vector<PointId> BruteSkylineNd(const DatasetNd& dataset) {
  std::vector<PointId> result;
  for (PointId a = 0; a < dataset.size(); ++a) {
    bool dominated = false;
    for (PointId b = 0; b < dataset.size(); ++b) {
      if (b != a &&
          DominatesNd(dataset.row(b), dataset.row(a), dataset.dims())) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(a);
  }
  return result;
}

/// Random dataset with optionally heavy coordinate ties (small domain).
inline Dataset RandomDataset(size_t n, int64_t domain, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2D> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.push_back(
        Point2D{rng.NextInt(0, domain - 1), rng.NextInt(0, domain - 1)});
  }
  auto ds = Dataset::Create(std::move(points), domain);
  return std::move(ds).value();
}

/// Random dataset with distinct coordinates per dimension (n <= domain).
inline Dataset RandomDistinctDataset(size_t n, int64_t domain, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> xs(domain);
  std::vector<int64_t> ys(domain);
  for (int64_t v = 0; v < domain; ++v) {
    xs[v] = v;
    ys[v] = v;
  }
  // Partial Fisher-Yates for the first n entries of each axis.
  for (size_t i = 0; i < n; ++i) {
    std::swap(xs[i], xs[i + rng.NextBounded(domain - i)]);
    std::swap(ys[i], ys[i + rng.NextBounded(domain - i)]);
  }
  std::vector<Point2D> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) points.push_back(Point2D{xs[i], ys[i]});
  auto ds = Dataset::Create(std::move(points), domain);
  return std::move(ds).value();
}

/// Like RandomDistinctDataset but with all coordinates >= 1, so every
/// skyline cell has positive area inside [0, domain]^2 (coordinate-0 points
/// pin degenerate cell strips to the domain edge that geometric partitions
/// cannot represent).
inline Dataset RandomDistinctPositiveDataset(size_t n, int64_t domain,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> xs(domain - 1);
  std::vector<int64_t> ys(domain - 1);
  for (int64_t v = 1; v < domain; ++v) {
    xs[v - 1] = v;
    ys[v - 1] = v;
  }
  for (size_t i = 0; i < n; ++i) {
    std::swap(xs[i], xs[i + rng.NextBounded(domain - 1 - i)]);
    std::swap(ys[i], ys[i + rng.NextBounded(domain - 1 - i)]);
  }
  std::vector<Point2D> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) points.push_back(Point2D{xs[i], ys[i]});
  auto ds = Dataset::Create(std::move(points), domain);
  return std::move(ds).value();
}

inline std::vector<PointId> AsSorted(std::vector<PointId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace skydia::testing

#endif  // SKYDIA_TESTS_TESTING_UTIL_H_
