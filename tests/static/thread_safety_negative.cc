// Negative-compile proof that the thread-safety analysis is live.
//
// The annotated serving stack compiles clean under
// -Wthread-safety -Werror=thread-safety-analysis (the thread-safety CI
// job proves that); this file proves the complementary property — that
// the analysis actually FIRES on the bug classes the annotations exist
// to catch. It is compiled twice by ctest (Clang only):
//
//   1. as-is: the guarded-state accesses below must FAIL to compile
//      (the test is registered WILL_FAIL);
//   2. with -DSKYDIA_TS_NEGATIVE_CLEAN: the violations are compiled out
//      and the file must compile clean, proving the expected failure in
//      (1) comes from the analysis and not an unrelated breakage.
//
// Each violation below is a real bug pattern from this codebase's
// history-of-near-misses: an unlocked queue read, a mutation with the
// wrong lock held, and a call into a REQUIRES function without the lock.
#include <queue>

#include "src/common/annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) SKYDIA_EXCLUDES(mu_) {
    skydia::MutexLock lock(mu_);
    balance_ += amount;
  }

  int UnsafeRead() SKYDIA_EXCLUDES(mu_) {
#ifndef SKYDIA_TS_NEGATIVE_CLEAN
    return balance_;  // reading guarded state without mu_ — must not compile
#else
    skydia::MutexLock lock(mu_);
    return balance_;
#endif
  }

  void WrongLock() SKYDIA_EXCLUDES(mu_, other_mu_) {
#ifndef SKYDIA_TS_NEGATIVE_CLEAN
    skydia::MutexLock lock(other_mu_);
    balance_ = 0;  // holding other_mu_, not mu_ — must not compile
#else
    skydia::MutexLock lock(mu_);
    balance_ = 0;
#endif
  }

  void CallRequiresWithoutLock() SKYDIA_EXCLUDES(mu_) {
#ifndef SKYDIA_TS_NEGATIVE_CLEAN
    DrainLocked();  // REQUIRES(mu_) callee, lock not held — must not compile
#else
    skydia::MutexLock lock(mu_);
    DrainLocked();
#endif
  }

 private:
  void DrainLocked() SKYDIA_REQUIRES(mu_) { pending_ = {}; }

  skydia::Mutex mu_;
  skydia::Mutex other_mu_;
  int balance_ SKYDIA_GUARDED_BY(mu_) = 0;
  std::queue<int> pending_ SKYDIA_GUARDED_BY(mu_);
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  account.UnsafeRead();
  account.WrongLock();
  account.CallRequiresWithoutLock();
  return 0;
}
