#include "src/geometry/grid.h"

#include <gtest/gtest.h>

namespace skydia {
namespace {

Dataset MakeDataset(std::vector<Point2D> points, int64_t domain = 100) {
  auto ds = Dataset::Create(std::move(points), domain);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TEST(CellGridTest, DistinctCoordinateCounts) {
  const Dataset ds = MakeDataset({{1, 5}, {3, 7}, {3, 9}, {6, 5}});
  const CellGrid grid(ds);
  EXPECT_EQ(grid.num_distinct_x(), 3u);  // 1, 3, 6
  EXPECT_EQ(grid.num_distinct_y(), 3u);  // 5, 7, 9
  EXPECT_EQ(grid.num_columns(), 4u);
  EXPECT_EQ(grid.num_rows(), 4u);
  EXPECT_EQ(grid.num_cells(), 16u);
}

TEST(CellGridTest, RanksFollowSortedDistinctValues) {
  const Dataset ds = MakeDataset({{6, 5}, {1, 9}, {3, 7}});
  const CellGrid grid(ds);
  EXPECT_EQ(grid.xrank(0), 2u);  // x=6 is the largest
  EXPECT_EQ(grid.xrank(1), 0u);
  EXPECT_EQ(grid.xrank(2), 1u);
  EXPECT_EQ(grid.yrank(0), 0u);  // y=5 is the smallest
  EXPECT_EQ(grid.yrank(1), 2u);
  EXPECT_EQ(grid.yrank(2), 1u);
}

TEST(CellGridTest, ColumnOfHalfOpenConvention) {
  const Dataset ds = MakeDataset({{10, 0}, {20, 1}});
  const CellGrid grid(ds);
  EXPECT_EQ(grid.ColumnOf(5), 0u);
  EXPECT_EQ(grid.ColumnOf(10), 0u);  // on the line -> left column
  EXPECT_EQ(grid.ColumnOf(11), 1u);
  EXPECT_EQ(grid.ColumnOf(20), 1u);
  EXPECT_EQ(grid.ColumnOf(21), 2u);
}

TEST(CellGridTest, PointsAtColumnGroupsTies) {
  const Dataset ds = MakeDataset({{3, 1}, {3, 2}, {7, 3}});
  const CellGrid grid(ds);
  EXPECT_EQ(grid.PointsAtColumn(0), (std::vector<PointId>{0, 1}));
  EXPECT_EQ(grid.PointsAtColumn(1), (std::vector<PointId>{2}));
  EXPECT_TRUE(grid.PointsAtColumn(2).empty());
  EXPECT_TRUE(grid.PointsAtColumn(99).empty());
}

TEST(CellGridTest, PointsAtCorner) {
  const Dataset ds = MakeDataset({{3, 1}, {3, 1}, {7, 5}});
  const CellGrid grid(ds);
  EXPECT_EQ(grid.PointsAtCorner(0, 0), (std::vector<PointId>{0, 1}));
  EXPECT_EQ(grid.PointsAtCorner(1, 1), (std::vector<PointId>{2}));
  EXPECT_TRUE(grid.PointsAtCorner(0, 1).empty());
}

TEST(CellGridTest, BoundaryPredicates) {
  const Dataset ds = MakeDataset({{3, 8}});
  const CellGrid grid(ds);
  EXPECT_TRUE(grid.IsOnVerticalLine(3));
  EXPECT_FALSE(grid.IsOnVerticalLine(8));
  EXPECT_TRUE(grid.IsOnHorizontalLine(8));
  EXPECT_FALSE(grid.IsOnHorizontalLine(3));
}

TEST(CellGridTest, CellIndexRowMajor) {
  const Dataset ds = MakeDataset({{1, 1}, {2, 2}});
  const CellGrid grid(ds);  // 3x3 cells
  EXPECT_EQ(grid.CellIndex(0, 0), 0u);
  EXPECT_EQ(grid.CellIndex(2, 0), 2u);
  EXPECT_EQ(grid.CellIndex(0, 1), 3u);
  EXPECT_EQ(grid.CellIndex(2, 2), 8u);
}

}  // namespace
}  // namespace skydia
