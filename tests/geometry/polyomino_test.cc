#include "src/geometry/polyomino.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace skydia {
namespace {

PolyominoOutline Rect(int64_t x0, int64_t y0, int64_t x1, int64_t y1) {
  // Counter-clockwise rectangle.
  return PolyominoOutline{{{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}}};
}

TEST(PolyominoTest, RectangleArea) {
  const PolyominoOutline r = Rect(0, 0, 4, 3);
  EXPECT_EQ(r.Area(), 12);
  EXPECT_EQ(r.Perimeter(), 14);
  EXPECT_TRUE(r.IsRectilinear());
}

TEST(PolyominoTest, OrientationDoesNotAffectArea) {
  PolyominoOutline cw = Rect(0, 0, 4, 3);
  std::reverse(cw.vertices.begin(), cw.vertices.end());
  EXPECT_EQ(cw.Area(), 12);
  EXPECT_LT(cw.SignedDoubleArea(), 0);
}

TEST(PolyominoTest, LShapeArea) {
  // L-shape: 4x4 square minus 2x2 top-right notch.
  const PolyominoOutline l{
      {{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}}};
  EXPECT_EQ(l.Area(), 12);
  EXPECT_EQ(l.Perimeter(), 16);
  EXPECT_TRUE(l.IsRectilinear());
}

TEST(PolyominoTest, StaircaseArea) {
  // The shape the sweeping walk produces: top edge, then down/right steps.
  const PolyominoOutline s{
      {{6, 6}, {0, 6}, {0, 4}, {2, 4}, {2, 2}, {4, 2}, {4, 0}, {6, 0}}};
  EXPECT_EQ(s.Area(), 36 - 4 - 8);  // full square minus two steps
  EXPECT_TRUE(s.IsRectilinear());
}

TEST(PolyominoTest, ContainsInterior) {
  const PolyominoOutline l{
      {{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}}};
  EXPECT_TRUE(l.ContainsInterior({1, 1}));
  EXPECT_TRUE(l.ContainsInterior({3, 1}));
  EXPECT_TRUE(l.ContainsInterior({1, 3}));
  EXPECT_FALSE(l.ContainsInterior({3, 3}));  // in the notch
  EXPECT_FALSE(l.ContainsInterior({5, 1}));
  EXPECT_FALSE(l.ContainsInterior({-1, 1}));
}

TEST(PolyominoTest, NonRectilinearDetected) {
  const PolyominoOutline diag{{{0, 0}, {2, 2}, {0, 2}}};
  EXPECT_FALSE(diag.IsRectilinear());
}

TEST(PolyominoTest, DegenerateOutlines) {
  PolyominoOutline empty;
  EXPECT_EQ(empty.Area(), 0);
  EXPECT_EQ(empty.Perimeter(), 0);
  EXPECT_FALSE(empty.IsRectilinear());
}

}  // namespace
}  // namespace skydia
