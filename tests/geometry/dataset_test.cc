#include "src/geometry/dataset.h"

#include <gtest/gtest.h>

namespace skydia {
namespace {

TEST(DatasetTest, CreateValidatesDomain) {
  EXPECT_FALSE(Dataset::Create({{0, 0}}, 0).ok());
  EXPECT_FALSE(Dataset::Create({{-1, 0}}, 10).ok());
  EXPECT_FALSE(Dataset::Create({{0, 10}}, 10).ok());
  EXPECT_TRUE(Dataset::Create({{0, 9}}, 10).ok());
}

TEST(DatasetTest, CreateValidatesLabelCount) {
  EXPECT_FALSE(Dataset::Create({{0, 0}, {1, 1}}, 10, {"only-one"}).ok());
  EXPECT_TRUE(Dataset::Create({{0, 0}, {1, 1}}, 10, {"a", "b"}).ok());
}

TEST(DatasetTest, DefaultLabels) {
  auto ds = Dataset::Create({{0, 0}, {1, 1}}, 10);
  ASSERT_TRUE(ds.ok());
  EXPECT_FALSE(ds->has_labels());
  EXPECT_EQ(ds->label(0), "p0");
  EXPECT_EQ(ds->label(1), "p1");
}

TEST(DatasetTest, ExplicitLabels) {
  auto ds = Dataset::Create({{0, 0}}, 10, {"hotel"});
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE(ds->has_labels());
  EXPECT_EQ(ds->label(0), "hotel");
}

TEST(DatasetTest, DistinctCoordinatesDetection) {
  auto distinct = Dataset::Create({{0, 0}, {1, 2}, {2, 1}}, 10);
  ASSERT_TRUE(distinct.ok());
  EXPECT_TRUE(distinct->HasDistinctCoordinates());

  auto shared_x = Dataset::Create({{1, 0}, {1, 2}}, 10);
  ASSERT_TRUE(shared_x.ok());
  EXPECT_FALSE(shared_x->HasDistinctCoordinates());

  auto shared_y = Dataset::Create({{0, 3}, {2, 3}}, 10);
  ASSERT_TRUE(shared_y.ok());
  EXPECT_FALSE(shared_y->HasDistinctCoordinates());
}

TEST(DatasetTest, AccessorsAndSize) {
  auto ds = Dataset::Create({{3, 4}, {5, 6}}, 10);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2u);
  EXPECT_FALSE(ds->empty());
  EXPECT_EQ(ds->point(1), (Point2D{5, 6}));
  EXPECT_EQ(ds->domain_size(), 10);
}

TEST(DatasetNdTest, CreateValidatesShape) {
  EXPECT_FALSE(DatasetNd::Create({1, 2, 3}, 2, 10).ok());  // not multiple
  EXPECT_FALSE(DatasetNd::Create({1, 2}, 0, 10).ok());
  EXPECT_FALSE(DatasetNd::Create({1, 12}, 2, 10).ok());  // out of domain
  EXPECT_TRUE(DatasetNd::Create({1, 2, 3, 4}, 2, 10).ok());
}

TEST(DatasetNdTest, RowAccess) {
  auto nd = DatasetNd::Create({1, 2, 3, 4, 5, 6}, 3, 10);
  ASSERT_TRUE(nd.ok());
  EXPECT_EQ(nd->size(), 2u);
  EXPECT_EQ(nd->dims(), 3);
  EXPECT_EQ(nd->coord(1, 2), 6);
  EXPECT_EQ(nd->row(1)[0], 4);
}

TEST(DatasetNdTest, FromDataset2d) {
  auto ds = Dataset::Create({{3, 4}, {5, 6}}, 10);
  ASSERT_TRUE(ds.ok());
  const DatasetNd nd = DatasetNd::FromDataset2d(*ds);
  EXPECT_EQ(nd.dims(), 2);
  EXPECT_EQ(nd.size(), 2u);
  EXPECT_EQ(nd.coord(0, 0), 3);
  EXPECT_EQ(nd.coord(1, 1), 6);
  EXPECT_EQ(nd.domain_size(), 10);
}

}  // namespace
}  // namespace skydia
