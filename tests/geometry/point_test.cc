#include "src/geometry/point.h"

#include <sstream>

#include <gtest/gtest.h>

namespace skydia {
namespace {

TEST(PointTest, Equality) {
  EXPECT_EQ((Point2D{1, 2}), (Point2D{1, 2}));
  EXPECT_NE((Point2D{1, 2}), (Point2D{2, 1}));
}

TEST(PointTest, LexLessOrdersByXThenY) {
  EXPECT_TRUE(LexLess({1, 5}, {2, 0}));
  EXPECT_TRUE(LexLess({1, 2}, {1, 3}));
  EXPECT_FALSE(LexLess({1, 3}, {1, 3}));
  EXPECT_FALSE(LexLess({2, 0}, {1, 9}));
}

TEST(PointTest, Streaming) {
  std::ostringstream os;
  os << Point2D{10, 80};
  EXPECT_EQ(os.str(), "(10, 80)");
  EXPECT_EQ(ToString(Point2D{-1, 3}), "(-1, 3)");
}

}  // namespace
}  // namespace skydia
