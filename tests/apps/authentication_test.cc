#include "src/apps/authentication.h"

#include <gtest/gtest.h>

#include "src/core/diagram.h"
#include "src/datagen/workload.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::RandomDataset;

TEST(AuthenticationTest, HonestProofsVerify) {
  const Dataset ds = RandomDataset(25, 32, 3);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const AuthenticatedDiagram auth(diagram);
  for (const Point2D& q : GenerateQueries(ds, 50, 7)) {
    const SkylineProof proof = auth.Prove(q);
    EXPECT_TRUE(
        AuthenticatedDiagram::Verify(auth.root(), auth.num_leaves(), proof));
  }
}

TEST(AuthenticationTest, ProofResultMatchesDiagram) {
  const Dataset ds = RandomDataset(20, 24, 5);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const AuthenticatedDiagram auth(diagram);
  const Point2D q{7, 9};
  const SkylineProof proof = auth.Prove(q);
  const auto direct = diagram.Query(q);
  EXPECT_EQ(proof.result,
            std::vector<PointId>(direct.begin(), direct.end()));
}

TEST(AuthenticationTest, TamperedResultFailsVerification) {
  const Dataset ds = RandomDataset(20, 24, 9);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const AuthenticatedDiagram auth(diagram);
  SkylineProof proof = auth.Prove({5, 5});

  SkylineProof dropped = proof;
  if (!dropped.result.empty()) {
    dropped.result.pop_back();  // server truncates the answer
    EXPECT_FALSE(AuthenticatedDiagram::Verify(auth.root(), auth.num_leaves(),
                                              dropped));
  }

  SkylineProof forged = proof;
  forged.result.push_back(999);  // server injects a bogus point
  EXPECT_FALSE(
      AuthenticatedDiagram::Verify(auth.root(), auth.num_leaves(), forged));
}

TEST(AuthenticationTest, WrongCellIndexFails) {
  const Dataset ds = RandomDataset(20, 24, 11);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const AuthenticatedDiagram auth(diagram);
  SkylineProof proof = auth.Prove({5, 5});
  proof.cell_index = (proof.cell_index + 1) % auth.num_leaves();
  EXPECT_FALSE(
      AuthenticatedDiagram::Verify(auth.root(), auth.num_leaves(), proof));
}

TEST(AuthenticationTest, TamperedPathFails) {
  const Dataset ds = RandomDataset(20, 24, 13);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const AuthenticatedDiagram auth(diagram);
  SkylineProof proof = auth.Prove({3, 3});
  ASSERT_FALSE(proof.path.empty());
  proof.path[0][0] ^= 0x01;
  EXPECT_FALSE(
      AuthenticatedDiagram::Verify(auth.root(), auth.num_leaves(), proof));
}

TEST(AuthenticationTest, WrongRootFails) {
  const Dataset ds_a = RandomDataset(20, 24, 15);
  const Dataset ds_b = RandomDataset(20, 24, 16);
  const SkylineDiagram built_a = testing::BuildDiagram(
      ds_a, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const SkylineDiagram built_b = testing::BuildDiagram(
      ds_b, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const AuthenticatedDiagram auth_a(*built_a.cell_diagram());
  const AuthenticatedDiagram auth_b(*built_b.cell_diagram());
  const SkylineProof proof = auth_a.Prove({5, 5});
  if (auth_a.num_leaves() == auth_b.num_leaves()) {
    EXPECT_FALSE(AuthenticatedDiagram::Verify(auth_b.root(),
                                              auth_b.num_leaves(), proof));
  }
}

TEST(AuthenticationTest, PathLengthMustMatchTreeHeight) {
  const Dataset ds = RandomDataset(20, 24, 17);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const AuthenticatedDiagram auth(diagram);
  SkylineProof proof = auth.Prove({5, 5});
  proof.path.pop_back();
  EXPECT_FALSE(
      AuthenticatedDiagram::Verify(auth.root(), auth.num_leaves(), proof));
}

TEST(AuthenticationTest, RootIsDeterministic) {
  const Dataset ds = RandomDataset(15, 20, 19);
  const SkylineDiagram d1 = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const SkylineDiagram d2 = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const AuthenticatedDiagram a1(*d1.cell_diagram());
  const AuthenticatedDiagram a2(*d2.cell_diagram());
  EXPECT_EQ(DigestToHex(a1.root()), DigestToHex(a2.root()));
}

}  // namespace
}  // namespace skydia
