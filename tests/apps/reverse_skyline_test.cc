#include "src/apps/reverse_skyline.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::RandomDataset;

TEST(ReverseSkylineTest, SimpleExample) {
  // q between two points: both see q undominated around them.
  auto ds = Dataset::Create({{0, 0}, {10, 10}}, 16);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ReverseSkylineBruteForce(*ds, {5, 5}),
            (std::vector<PointId>{0, 1}));
}

TEST(ReverseSkylineTest, BlockedByCloserPoint) {
  // Around p0 = (0,0), p1 = (2,2) is closer than q = (10,10) in both dims,
  // so p0 drops out; around p1, p0 sits at distance (2,2) < q's (8,8), so p1
  // drops out too. Only p2 = (12,12) — q at distance (2,2), both competitors
  // at (10,10)+ — keeps q undominated.
  auto ds = Dataset::Create({{0, 0}, {2, 2}, {12, 12}}, 16);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ReverseSkylineBruteForce(*ds, {10, 10}),
            (std::vector<PointId>{2}));
}

TEST(ReverseSkylineTest, IndexMatchesBruteForceRandom) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Dataset ds = RandomDataset(60, 40, seed);
    const ReverseSkylineIndex index(ds);
    Rng rng(seed * 19);
    for (int i = 0; i < 25; ++i) {
      const Point2D q{rng.NextInt(0, 39), rng.NextInt(0, 39)};
      EXPECT_EQ(index.Query(q), ReverseSkylineBruteForce(ds, q))
          << "seed " << seed << " q " << q;
    }
  }
}

TEST(ReverseSkylineTest, IndexMatchesBruteForceWithTies) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Dataset ds = RandomDataset(80, 8, seed);  // heavy duplicates
    const ReverseSkylineIndex index(ds);
    Rng rng(seed * 23);
    for (int i = 0; i < 25; ++i) {
      const Point2D q{rng.NextInt(0, 7), rng.NextInt(0, 7)};
      EXPECT_EQ(index.Query(q), ReverseSkylineBruteForce(ds, q))
          << "seed " << seed << " q " << q;
    }
  }
}

TEST(ReverseSkylineTest, QueryOnDataPoint) {
  const Dataset ds = RandomDataset(40, 20, 31);
  const ReverseSkylineIndex index(ds);
  for (PointId id = 0; id < 10; ++id) {
    const Point2D q = ds.point(id);
    EXPECT_EQ(index.Query(q), ReverseSkylineBruteForce(ds, q));
  }
}

TEST(ReverseSkylineTest, CountBoxAgainstLinearScan) {
  const Dataset ds = RandomDataset(50, 30, 37);
  const ReverseSkylineIndex index(ds);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const int64_t x_lo = rng.NextInt(-5, 30);
    const int64_t x_hi = x_lo + rng.NextInt(0, 20);
    const int64_t y_lo = rng.NextInt(-5, 30);
    const int64_t y_hi = y_lo + rng.NextInt(0, 20);
    int64_t expected = 0;
    for (const Point2D& p : ds.points()) {
      if (p.x >= x_lo && p.x <= x_hi && p.y >= y_lo && p.y <= y_hi) ++expected;
    }
    EXPECT_EQ(index.CountBox(x_lo, x_hi, y_lo, y_hi), expected);
  }
}

TEST(ReverseSkylineTest, SinglePointDatasetAlwaysReverseSkyline) {
  auto ds = Dataset::Create({{5, 5}}, 16);
  ASSERT_TRUE(ds.ok());
  const ReverseSkylineIndex index(*ds);
  EXPECT_EQ(index.Query({0, 0}), (std::vector<PointId>{0}));
  EXPECT_EQ(index.Query({5, 5}), (std::vector<PointId>{0}));
}

}  // namespace
}  // namespace skydia
