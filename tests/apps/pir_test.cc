#include "src/apps/pir.h"

#include <gtest/gtest.h>

#include "src/core/diagram.h"
#include "src/datagen/workload.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::RandomDataset;

TEST(PirTest, DatabaseEncodesEveryCell) {
  const Dataset ds = RandomDataset(15, 20, 3);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const PirDatabase db = BuildPirDatabase(diagram);
  EXPECT_EQ(db.num_records, diagram.grid().num_cells());
  const CellGrid& grid = diagram.grid();
  for (uint32_t cy = 0; cy < grid.num_rows(); ++cy) {
    for (uint32_t cx = 0; cx < grid.num_columns(); ++cx) {
      const auto decoded =
          DecodePirRecord(db.record(grid.CellIndex(cx, cy)), db.record_bytes);
      const auto expected = diagram.CellSkyline(cx, cy);
      EXPECT_EQ(decoded,
                std::vector<PointId>(expected.begin(), expected.end()));
    }
  }
}

TEST(PirTest, EndToEndPrivateQueriesAreCorrect) {
  const Dataset ds = RandomDataset(20, 24, 5);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const PirDatabase db = BuildPirDatabase(diagram);
  const PirServer server1(&db);
  const PirServer server2(&db);
  Rng rng(11);
  for (const Point2D& q : GenerateQueries(ds, 30, 13)) {
    auto result =
        PrivateSkylineQuery(diagram, db, server1, server2, q, &rng);
    ASSERT_TRUE(result.ok());
    const auto expected = diagram.Query(q);
    EXPECT_EQ(*result,
              std::vector<PointId>(expected.begin(), expected.end()));
  }
}

TEST(PirTest, SelectionVectorsDifferInExactlyTheTarget) {
  PirClient client(/*num_records=*/64, /*record_bytes=*/8);
  Rng rng(7);
  for (uint64_t target = 0; target < 64; target += 13) {
    const auto queries = client.CreateQueries(target, &rng);
    ASSERT_EQ(queries.to_server1.size(), 64u);
    for (uint64_t i = 0; i < 64; ++i) {
      if (i == target) {
        EXPECT_NE(queries.to_server1[i], queries.to_server2[i]);
      } else {
        EXPECT_EQ(queries.to_server1[i], queries.to_server2[i]);
      }
    }
  }
}

TEST(PirTest, SingleServerViewIsUnbiased) {
  // Each individual selection vector must look uniformly random regardless
  // of the target index: bit frequencies near 1/2.
  PirClient client(128, 8);
  Rng rng(17);
  std::vector<int> counts(128, 0);
  const int kTrials = 400;
  for (int t = 0; t < kTrials; ++t) {
    const auto queries = client.CreateQueries(/*index=*/5, &rng);
    for (size_t i = 0; i < 128; ++i) counts[i] += queries.to_server1[i];
  }
  for (size_t i = 0; i < 128; ++i) {
    EXPECT_GT(counts[i], kTrials / 4) << "bit " << i;
    EXPECT_LT(counts[i], 3 * kTrials / 4) << "bit " << i;
  }
}

TEST(PirTest, DecodeRejectsWrongSizes) {
  PirClient client(16, 8);
  const auto bad = client.Decode(std::vector<uint8_t>(8, 0),
                                 std::vector<uint8_t>(7, 0));
  EXPECT_FALSE(bad.ok());
}

TEST(PirTest, XorReconstructionIdentity) {
  // Answer(S1) xor Answer(S2) equals the target record by linearity.
  const Dataset ds = RandomDataset(10, 16, 9);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const PirDatabase db = BuildPirDatabase(diagram);
  const PirServer server(&db);
  PirClient client(db.num_records, db.record_bytes);
  Rng rng(23);
  const uint64_t target = db.num_records / 2;
  const auto queries = client.CreateQueries(target, &rng);
  auto record = client.Decode(server.Answer(queries.to_server1),
                              server.Answer(queries.to_server2));
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(*record, std::vector<uint8_t>(db.record(target),
                                          db.record(target) + db.record_bytes));
}

}  // namespace
}  // namespace skydia
