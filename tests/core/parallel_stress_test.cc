// Concurrency stress tests, written to be run under ThreadSanitizer (the
// `tsan` CMake preset / CI job). They hammer the ThreadPool primitive and the
// two parallel diagram builders at varying thread counts, maximising
// cross-thread interleavings: plain (non-atomic) writes that must be
// published by the pool's mutex handshake, pool reuse across rounds, nested
// submission, and teardown with a loaded queue. Under TSan any missing
// happens-before edge is a hard failure; under a plain build the tests still
// verify the functional results.
#include <atomic>
#include <cstddef>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/common/trace.h"
#include "src/core/diagram.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::BuildDiagram;
using skydia::testing::RandomDataset;

TEST(ThreadPoolStressTest, ParallelForCoversEveryIndexExactlyOnce) {
  // Plain int writes: only the WaitIdle barrier makes them visible to the
  // checking thread. TSan flags the pool if that edge is missing.
  for (const size_t threads : {1u, 2u, 3u, 8u, 16u}) {
    ThreadPool pool(threads);
    for (const size_t count : {0u, 1u, 7u, 64u, 1013u}) {
      std::vector<int> hits(count, 0);
      pool.ParallelFor(count, [&hits](size_t i) { ++hits[i]; });
      EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), size_t{0}), count)
          << threads << " threads, " << count << " indices";
    }
  }
}

TEST(ThreadPoolStressTest, ReuseAcrossRoundsPublishesPriorWrites) {
  // Each round reads the values the previous round wrote — likely from a
  // different worker thread — so every round depends on the inter-round
  // happens-before chain through WaitIdle.
  constexpr size_t kIndices = 257;
  constexpr int kRounds = 50;
  ThreadPool pool(8);
  std::vector<int> counters(kIndices, 0);
  for (int round = 0; round < kRounds; ++round) {
    pool.ParallelFor(kIndices, [&counters, round](size_t i) {
      EXPECT_EQ(counters[i], round);
      ++counters[i];
    });
  }
  for (const int value : counters) EXPECT_EQ(value, kRounds);
}

TEST(ThreadPoolStressTest, SubmitWaitIdleDrainsEverything) {
  ThreadPool pool(5);
  std::atomic<size_t> done{0};
  constexpr size_t kTasks = 2000;
  for (size_t i = 0; i < kTasks; ++i) {
    pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolStressTest, NestedSubmissionRunsBeforeIdle) {
  // Tasks that enqueue children before returning: WaitIdle must not report
  // idle between a parent finishing and its already-enqueued child starting.
  ThreadPool pool(4);
  std::atomic<size_t> done{0};
  constexpr size_t kParents = 100;
  for (size_t i = 0; i < kParents; ++i) {
    pool.Submit([&pool, &done] {
      pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 2 * kParents);
}

TEST(ThreadPoolStressTest, DestructorDrainsLoadedQueue) {
  // ~ThreadPool drains whatever was submitted; repeated create/destroy also
  // stresses worker startup racing against immediate shutdown.
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> done{0};
    {
      ThreadPool pool(3);
      for (size_t i = 0; i < 64; ++i) {
        pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
    }
    EXPECT_EQ(done.load(), 64u);
  }
}

TEST(ParallelBuilderStressTest, QuadrantMatchesSequentialUnderRepetition) {
  const Dataset ds = RandomDataset(80, 64, 29);
  const SkylineDiagram sequential =
      BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg);
  for (int round = 0; round < 3; ++round) {
    for (const int threads : {2, 3, 5, 8, 13}) {
      const SkylineDiagram parallel = BuildDiagram(
          ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg, threads);
      EXPECT_TRUE(
          parallel.cell_diagram()->SameResults(*sequential.cell_diagram()))
          << "round " << round << ", " << threads << " threads";
    }
  }
}

TEST(ParallelBuilderStressTest, DynamicMatchesSequentialUnderRepetition) {
  const Dataset ds = RandomDataset(36, 48, 31);
  const SkylineDiagram sequential =
      BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning);
  for (int round = 0; round < 3; ++round) {
    for (const int threads : {2, 3, 5, 8, 13}) {
      const SkylineDiagram parallel =
          BuildDiagram(ds, SkylineQueryType::kDynamic,
                       BuildAlgorithm::kScanning, threads);
      EXPECT_TRUE(parallel.subcell_diagram()->SameResults(
          *sequential.subcell_diagram()))
          << "round " << round << ", " << threads << " threads";
    }
  }
}

TEST(TraceStressTest, EightThreadsEmitSpansDuringParallelBuildWhileDraining) {
  // The trace seqlock under maximum contention: 8 pool workers emit stripe
  // spans from a real parallel build, 8 extra threads hammer tiny rings into
  // wraparound, and a collector thread drains concurrently the whole time.
  // Under TSan any non-atomic slot access or missing acquire edge in
  // Collect() is a hard failure; under a plain build the test still checks
  // that drained events are never torn (names stay one of the emitted
  // literals and timestamps are sane).
  trace::SetEnabled(false);
  trace::Reset();
  trace::SetRingCapacity(256);  // small enough that emitters wrap mid-drain
  trace::SetEnabled(true);

  std::atomic<bool> stop{false};
  std::thread collector([&] {
    uint64_t drains = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const trace::TraceSnapshot snapshot = trace::Collect();
      for (const trace::ThreadTrack& track : snapshot.threads) {
        for (const trace::TraceEvent& event : track.events) {
          ASSERT_NE(event.name, nullptr);
          const std::string name = event.name;
          ASSERT_FALSE(name.empty());
          ASSERT_LT(event.duration_ns, uint64_t{60} * 1'000'000'000)
              << "torn span " << name;
        }
      }
      ++drains;
    }
    EXPECT_GT(drains, 0u);
  });

  std::vector<std::thread> emitters;
  emitters.reserve(8);
  for (int t = 0; t < 8; ++t) {
    emitters.emplace_back([t] {
      trace::SetThreadName("stress-emitter-" + std::to_string(t));
      for (int i = 0; i < 4000; ++i) {
        SKYDIA_TRACE_SPAN("stress.outer");
        {
          SKYDIA_TRACE_SPAN("stress.inner");
          trace::Counter("stress.progress", static_cast<uint64_t>(i));
        }
      }
    });
  }

  const Dataset ds = RandomDataset(120, 256, 41);
  for (int round = 0; round < 3; ++round) {
    const SkylineDiagram parallel =
        BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg,
                     /*parallelism=*/8);
    ASSERT_NE(parallel.cell_diagram(), nullptr);
  }

  for (std::thread& emitter : emitters) emitter.join();
  stop.store(true, std::memory_order_release);
  collector.join();

  // The build's stripe spans and the emitters' spans both made it into the
  // final drain (their threads are parked/joined, so this read is quiescent).
  const trace::TraceSnapshot final_snapshot = trace::Collect();
  bool saw_stripe = false;
  bool saw_emitter = false;
  for (const trace::ThreadTrack& track : final_snapshot.threads) {
    for (const trace::TraceEvent& event : track.events) {
      const std::string name = event.name;
      saw_stripe |= name == "stripe.dsg" || name == "sweep.row";
      saw_emitter |= name == "stress.outer";
    }
  }
  EXPECT_TRUE(saw_stripe);
  EXPECT_TRUE(saw_emitter);

  trace::SetEnabled(false);
  trace::Reset();
  trace::SetRingCapacity(16384);
}

TEST(ParallelBuilderStressTest, InterleavedFamiliesShareNothing) {
  // Both builders create private pools; alternating them back-to-back would
  // surface any accidental shared mutable state between the two paths.
  const Dataset ds = RandomDataset(48, 48, 37);
  const SkylineDiagram cell_reference =
      BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg);
  const SkylineDiagram subcell_reference =
      BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning);
  for (int round = 0; round < 4; ++round) {
    const int threads = 2 + round;
    EXPECT_TRUE(
        BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg,
                     threads)
            .cell_diagram()
            ->SameResults(*cell_reference.cell_diagram()));
    EXPECT_TRUE(BuildDiagram(ds, SkylineQueryType::kDynamic,
                             BuildAlgorithm::kScanning, threads)
                    .subcell_diagram()
                    ->SameResults(*subcell_reference.subcell_diagram()));
  }
}

}  // namespace
}  // namespace skydia
