// Concurrency stress tests, written to be run under ThreadSanitizer (the
// `tsan` CMake preset / CI job). They hammer the ThreadPool primitive and the
// two parallel diagram builders at varying thread counts, maximising
// cross-thread interleavings: plain (non-atomic) writes that must be
// published by the pool's mutex handshake, pool reuse across rounds, nested
// submission, and teardown with a loaded queue. Under TSan any missing
// happens-before edge is a hard failure; under a plain build the tests still
// verify the functional results.
#include <atomic>
#include <cstddef>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"
#include "src/core/diagram.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::BuildDiagram;
using skydia::testing::RandomDataset;

TEST(ThreadPoolStressTest, ParallelForCoversEveryIndexExactlyOnce) {
  // Plain int writes: only the WaitIdle barrier makes them visible to the
  // checking thread. TSan flags the pool if that edge is missing.
  for (const size_t threads : {1u, 2u, 3u, 8u, 16u}) {
    ThreadPool pool(threads);
    for (const size_t count : {0u, 1u, 7u, 64u, 1013u}) {
      std::vector<int> hits(count, 0);
      pool.ParallelFor(count, [&hits](size_t i) { ++hits[i]; });
      EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), size_t{0}), count)
          << threads << " threads, " << count << " indices";
    }
  }
}

TEST(ThreadPoolStressTest, ReuseAcrossRoundsPublishesPriorWrites) {
  // Each round reads the values the previous round wrote — likely from a
  // different worker thread — so every round depends on the inter-round
  // happens-before chain through WaitIdle.
  constexpr size_t kIndices = 257;
  constexpr int kRounds = 50;
  ThreadPool pool(8);
  std::vector<int> counters(kIndices, 0);
  for (int round = 0; round < kRounds; ++round) {
    pool.ParallelFor(kIndices, [&counters, round](size_t i) {
      EXPECT_EQ(counters[i], round);
      ++counters[i];
    });
  }
  for (const int value : counters) EXPECT_EQ(value, kRounds);
}

TEST(ThreadPoolStressTest, SubmitWaitIdleDrainsEverything) {
  ThreadPool pool(5);
  std::atomic<size_t> done{0};
  constexpr size_t kTasks = 2000;
  for (size_t i = 0; i < kTasks; ++i) {
    pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolStressTest, NestedSubmissionRunsBeforeIdle) {
  // Tasks that enqueue children before returning: WaitIdle must not report
  // idle between a parent finishing and its already-enqueued child starting.
  ThreadPool pool(4);
  std::atomic<size_t> done{0};
  constexpr size_t kParents = 100;
  for (size_t i = 0; i < kParents; ++i) {
    pool.Submit([&pool, &done] {
      pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 2 * kParents);
}

TEST(ThreadPoolStressTest, DestructorDrainsLoadedQueue) {
  // ~ThreadPool drains whatever was submitted; repeated create/destroy also
  // stresses worker startup racing against immediate shutdown.
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> done{0};
    {
      ThreadPool pool(3);
      for (size_t i = 0; i < 64; ++i) {
        pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
    }
    EXPECT_EQ(done.load(), 64u);
  }
}

TEST(ParallelBuilderStressTest, QuadrantMatchesSequentialUnderRepetition) {
  const Dataset ds = RandomDataset(80, 64, 29);
  const SkylineDiagram sequential =
      BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg);
  for (int round = 0; round < 3; ++round) {
    for (const int threads : {2, 3, 5, 8, 13}) {
      const SkylineDiagram parallel = BuildDiagram(
          ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg, threads);
      EXPECT_TRUE(
          parallel.cell_diagram()->SameResults(*sequential.cell_diagram()))
          << "round " << round << ", " << threads << " threads";
    }
  }
}

TEST(ParallelBuilderStressTest, DynamicMatchesSequentialUnderRepetition) {
  const Dataset ds = RandomDataset(36, 48, 31);
  const SkylineDiagram sequential =
      BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning);
  for (int round = 0; round < 3; ++round) {
    for (const int threads : {2, 3, 5, 8, 13}) {
      const SkylineDiagram parallel =
          BuildDiagram(ds, SkylineQueryType::kDynamic,
                       BuildAlgorithm::kScanning, threads);
      EXPECT_TRUE(parallel.subcell_diagram()->SameResults(
          *sequential.subcell_diagram()))
          << "round " << round << ", " << threads << " threads";
    }
  }
}

TEST(ParallelBuilderStressTest, InterleavedFamiliesShareNothing) {
  // Both builders create private pools; alternating them back-to-back would
  // surface any accidental shared mutable state between the two paths.
  const Dataset ds = RandomDataset(48, 48, 37);
  const SkylineDiagram cell_reference =
      BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg);
  const SkylineDiagram subcell_reference =
      BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning);
  for (int round = 0; round < 4; ++round) {
    const int threads = 2 + round;
    EXPECT_TRUE(
        BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg,
                     threads)
            .cell_diagram()
            ->SameResults(*cell_reference.cell_diagram()));
    EXPECT_TRUE(BuildDiagram(ds, SkylineQueryType::kDynamic,
                             BuildAlgorithm::kScanning, threads)
                    .subcell_diagram()
                    ->SameResults(*subcell_reference.subcell_diagram()));
  }
}

}  // namespace
}  // namespace skydia
