// Property-based differential tests for the query-serving engine: for
// thousands of random (dataset, query) pairs across all three semantics
// and all distributions — including duplicate/collinear-heavy data — the
// engine's answers must equal the brute-force oracles in
// src/skyline/query.h. Failing
// cases print their reproduction seed (see tests/testing/property.h).
#include "src/core/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "src/core/diagram.h"
#include "src/core/serialize.h"
#include "src/datagen/distributions.h"
#include "src/skyline/query.h"
#include "tests/testing/property.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::GeneratedDataset;
using skydia::testing::PropertyBaseSeed;
using skydia::testing::RandomDataset;
using skydia::testing::RandomQueryPoint;
using skydia::testing::RunSeededCases;

constexpr Distribution kDistributions[] = {Distribution::kIndependent,
                                           Distribution::kCorrelated,
                                           Distribution::kAnticorrelated};

// 3 datasets x 400 queries = 1200 differential queries per semantics x
// distribution (the acceptance floor is 1000).
constexpr size_t kDatasetsPerDistribution = 3;
constexpr size_t kQueriesPerDataset = 400;

void ExpectSameIds(std::span<const PointId> got,
                   const std::vector<PointId>& expected, const Point2D& q,
                   const char* what) {
  const bool equal = got.size() == expected.size() &&
                     std::equal(got.begin(), got.end(), expected.begin());
  EXPECT_TRUE(equal) << what << " disagrees with the oracle at q = " << q
                     << " (got " << got.size() << " ids, expected "
                     << expected.size() << ")";
}

SkylineDiagram BuildOrDie(const Dataset& dataset, SkylineQueryType type) {
  auto diagram = SkylineDiagram::Build(dataset, type);
  EXPECT_TRUE(diagram.ok()) << diagram.status();
  return std::move(diagram).value();
}

QueryEngine MakeEngine(const SkylineDiagram& diagram,
                       const QueryEngineOptions& options = {}) {
  if (diagram.cell_diagram() != nullptr) {
    return QueryEngine(diagram.dataset(), *diagram.cell_diagram(),
                       diagram.type(), options);
  }
  return QueryEngine(diagram.dataset(), *diagram.subcell_diagram(), options);
}

// Differential check of one engine against the oracles for `queries` random
// positions: Answer() must match wherever the diagram contract says it is
// exact, AnswerExact() must match everywhere.
void CheckEngineAgainstOracle(const QueryEngine& engine, Rng& rng,
                              size_t queries) {
  const Dataset& ds = engine.dataset();
  for (size_t i = 0; i < queries; ++i) {
    const Point2D q = RandomQueryPoint(rng, ds);
    std::vector<PointId> expected;
    switch (engine.semantics()) {
      case SkylineQueryType::kQuadrant:
        expected = FirstQuadrantSkyline(ds, q);
        // Quadrant point location is exact at every position, boundaries
        // and vertices included.
        ExpectSameIds(engine.Answer(q), expected, q, "quadrant Answer");
        break;
      case SkylineQueryType::kGlobal:
        expected = GlobalSkyline(ds, q);
        if (!engine.index().OnBoundary(q)) {
          ExpectSameIds(engine.Answer(q), expected, q, "global Answer");
        }
        break;
      case SkylineQueryType::kDynamic:
        expected = DynamicSkyline(ds, q);
        if (!engine.index().OnBoundary(q)) {
          ExpectSameIds(engine.Answer(q), expected, q, "dynamic Answer");
        }
        break;
    }
    ExpectSameIds(engine.AnswerExact(q), expected, q, "AnswerExact");
    if (::testing::Test::HasFailure()) return;
  }
}

class QueryEngineDifferentialTest
    : public ::testing::TestWithParam<SkylineQueryType> {};

TEST_P(QueryEngineDifferentialTest, MatchesOracleOnEveryDistribution) {
  const SkylineQueryType type = GetParam();
  for (const Distribution distribution : kDistributions) {
    const std::string property =
        std::string(SkylineQueryTypeName(type)) + " diagram answers == " +
        DistributionName(distribution) + " oracle";
    RunSeededCases(
        property.c_str(), kDatasetsPerDistribution,
        PropertyBaseSeed(20260805 + static_cast<uint64_t>(type)),
        [&](Rng& rng, uint64_t seed) {
          const Dataset ds = GeneratedDataset(40, 64, distribution, seed);
          const SkylineDiagram diagram = BuildOrDie(ds, type);
          const QueryEngine engine = MakeEngine(diagram);
          CheckEngineAgainstOracle(engine, rng, kQueriesPerDataset);
        });
  }
}

TEST_P(QueryEngineDifferentialTest, MatchesOracleOnDuplicateHeavyData) {
  // Tiny domains force duplicate points and collinear coordinates, the
  // adversarial case for the half-open convention and for bisector/grid
  // line coincidences in the dynamic arrangement.
  const SkylineQueryType type = GetParam();
  RunSeededCases(
      "tie-heavy diagram answers == oracle", kDatasetsPerDistribution,
      PropertyBaseSeed(777 + static_cast<uint64_t>(type)),
      [&](Rng& rng, uint64_t seed) {
        const Dataset ds = RandomDataset(24, 8, seed);
        const SkylineDiagram diagram = BuildOrDie(ds, type);
        const QueryEngine engine = MakeEngine(diagram);
        CheckEngineAgainstOracle(engine, rng, kQueriesPerDataset);
      });
}

INSTANTIATE_TEST_SUITE_P(AllSemantics, QueryEngineDifferentialTest,
                         ::testing::Values(SkylineQueryType::kQuadrant,
                                           SkylineQueryType::kGlobal,
                                           SkylineQueryType::kDynamic),
                         [](const auto& info) {
                           return std::string(
                               SkylineQueryTypeName(info.param));
                         });

TEST(QueryEngineBatchTest, BatchMatchesSingleAcrossThreadCounts) {
  const Dataset ds =
      GeneratedDataset(48, 128, Distribution::kIndependent, 11);
  const SkylineDiagram diagram = BuildOrDie(ds, SkylineQueryType::kQuadrant);
  const QueryEngine reference = MakeEngine(diagram);

  Rng rng(12);
  std::vector<Point2D> queries;
  queries.reserve(3000);
  for (size_t i = 0; i < 3000; ++i) {
    // Duplicate every third query to give the memo something to hit.
    if (i % 3 == 2 && !queries.empty()) {
      queries.push_back(queries[rng.NextBounded(queries.size())]);
    } else {
      queries.push_back(RandomQueryPoint(rng, ds));
    }
  }

  for (const int threads : {1, 2, 7}) {
    for (const size_t memo : {size_t{0}, size_t{64}}) {
      QueryEngineOptions options;
      options.num_threads = threads;
      options.memo_entries = memo;
      options.parallel_batch_threshold = 128;  // force sharding
      const QueryEngine engine = MakeEngine(diagram, options);
      const std::vector<SetId> answers = engine.AnswerBatch(queries);
      ASSERT_EQ(answers.size(), queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        const auto got = engine.Get(answers[i]);
        const auto expected = reference.Answer(queries[i]);
        ASSERT_TRUE(got.size() == expected.size() &&
                    std::equal(got.begin(), got.end(), expected.begin()))
            << "batch answer " << i << " (threads=" << threads
            << ", memo=" << memo << ") diverges at q = " << queries[i];
      }
    }
  }
}

TEST(QueryEngineBatchTest, SmallBatchesStayInline) {
  const Dataset ds = GeneratedDataset(16, 32, Distribution::kCorrelated, 5);
  const SkylineDiagram diagram = BuildOrDie(ds, SkylineQueryType::kQuadrant);
  QueryEngineOptions options;
  options.num_threads = 4;
  options.parallel_batch_threshold = 1 << 20;  // never reached
  const QueryEngine engine = MakeEngine(diagram, options);
  const std::vector<Point2D> queries(100, Point2D{3, 3});
  const std::vector<SetId> answers = engine.AnswerBatch(queries);
  ASSERT_EQ(answers.size(), queries.size());
  for (const SetId id : answers) EXPECT_EQ(id, answers.front());
}

TEST(QueryEngineStatsTest, CountersAndLatencyPercentiles) {
  const Dataset ds =
      GeneratedDataset(32, 64, Distribution::kIndependent, 21);
  const SkylineDiagram diagram = BuildOrDie(ds, SkylineQueryType::kQuadrant);
  QueryEngineOptions options;
  options.memo_entries = 64;
  const QueryEngine engine = MakeEngine(diagram, options);

  // A batch of one repeated point: everything after the first lookup per
  // shard is a memo hit.
  const std::vector<Point2D> repeated(512, Point2D{7, 9});
  (void)engine.AnswerBatch(repeated);
  (void)engine.Answer(Point2D{1, 1});

  const QueryEngineStats stats = engine.Stats();
  EXPECT_EQ(stats.queries_served, 513u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.memo_hits, 511u);
  EXPECT_GT(stats.latency_samples, 0u);
  EXPECT_GT(stats.p50_latency_ns, 0.0);
  EXPECT_GE(stats.p99_latency_ns, stats.p50_latency_ns);
}

TEST(QueryEngineStatsTest, MemoDisabledNeverHits) {
  const Dataset ds = GeneratedDataset(16, 32, Distribution::kClustered, 3);
  const SkylineDiagram diagram = BuildOrDie(ds, SkylineQueryType::kQuadrant);
  QueryEngineOptions options;
  options.memo_entries = 0;
  const QueryEngine engine = MakeEngine(diagram, options);
  const std::vector<Point2D> repeated(64, Point2D{2, 2});
  (void)engine.AnswerBatch(repeated);
  EXPECT_EQ(engine.Stats().memo_hits, 0u);
}

// A temporary file path inside the build tree's test working directory.
std::string TempBlobPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(ServableDiagramTest, LoadedBlobServesIdenticallyToFreshBuild) {
  struct Case {
    SkylineQueryType type;
    const char* file;
  };
  const Case cases[] = {
      {SkylineQueryType::kQuadrant, "servable_quadrant.skd"},
      {SkylineQueryType::kGlobal, "servable_global.skd"},
      {SkylineQueryType::kDynamic, "servable_dynamic.skd"},
  };
  for (const Case& c : cases) {
    const Dataset ds =
        GeneratedDataset(28, 48, Distribution::kAnticorrelated, 31);
    const SkylineDiagram built = BuildOrDie(ds, c.type);
    const std::string path = TempBlobPath(c.file);
    if (built.cell_diagram() != nullptr) {
      ASSERT_TRUE(SaveCellDiagram(ds, *built.cell_diagram(), path).ok());
    } else {
      ASSERT_TRUE(SaveSubcellDiagram(ds, *built.subcell_diagram(), path).ok());
    }

    const SkylineQueryType cell_semantics =
        c.type == SkylineQueryType::kDynamic ? SkylineQueryType::kQuadrant
                                             : c.type;
    auto servable = ServableDiagram::Load(path, {}, cell_semantics);
    ASSERT_TRUE(servable.ok()) << servable.status();
    EXPECT_EQ(servable->type(), c.type);
    ASSERT_EQ(servable->dataset().size(), ds.size());

    const QueryEngine in_memory = MakeEngine(built);
    Rng rng(41);
    for (size_t i = 0; i < 200; ++i) {
      const Point2D q = RandomQueryPoint(rng, ds);
      const auto expected = in_memory.AnswerExact(q);
      const auto got = servable->engine().AnswerExact(q);
      ASSERT_EQ(got, expected)
          << SkylineQueryTypeName(c.type) << " blob diverges at q = " << q;
    }
    std::remove(path.c_str());
  }
}

TEST(ServableDiagramTest, RejectsDynamicCellSemantics) {
  const auto servable = ServableDiagram::Load(
      TempBlobPath("unused.skd"), {}, SkylineQueryType::kDynamic);
  ASSERT_FALSE(servable.ok());
  EXPECT_EQ(servable.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServableDiagramTest, MissingFileFailsWithStatus) {
  const auto servable =
      ServableDiagram::Load(TempBlobPath("does_not_exist.skd"));
  ASSERT_FALSE(servable.ok());
}

}  // namespace
}  // namespace skydia
