#include <gtest/gtest.h>

#include "src/core/diagram.h"
#include "src/core/dynamic_subset.h"
#include "src/datagen/distributions.h"
#include "src/datagen/real_data.h"
#include "src/skyline/query.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::BuildDiagram;
using skydia::testing::RandomDataset;

class DynamicDiagramTest : public ::testing::TestWithParam<BuildAlgorithm> {
 protected:
  SkylineDiagram Build(const Dataset& ds) const {
    return BuildDiagram(ds, SkylineQueryType::kDynamic, GetParam());
  }
};

TEST_P(DynamicDiagramTest, EverySubcellMatchesBruteForce) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const Dataset ds = RandomDataset(10, 16, seed);
    const SkylineDiagram built = Build(ds);
    const SubcellDiagram& diagram = *built.subcell_diagram();
    const SubcellGrid& grid = diagram.grid();
    for (uint32_t sy = 0; sy < grid.num_rows(); ++sy) {
      for (uint32_t sx = 0; sx < grid.num_columns(); ++sx) {
        const auto expected =
            DynamicSkylineAt4(ds, grid.x_axis().Representative4(sx),
                              grid.y_axis().Representative4(sy));
        const auto actual = diagram.SubcellSkyline(sx, sy);
        ASSERT_EQ(std::vector<PointId>(actual.begin(), actual.end()), expected)
            << "seed " << seed << " subcell (" << sx << ", " << sy << ")";
      }
    }
  }
}

TEST_P(DynamicDiagramTest, TieHeavyDataset) {
  const Dataset ds = RandomDataset(20, 6, 7);  // many coincident lines
  const SkylineDiagram built = Build(ds);
  const SubcellDiagram& diagram = *built.subcell_diagram();
  const SubcellGrid& grid = diagram.grid();
  for (uint32_t sy = 0; sy < grid.num_rows(); ++sy) {
    for (uint32_t sx = 0; sx < grid.num_columns(); ++sx) {
      const auto expected =
          DynamicSkylineAt4(ds, grid.x_axis().Representative4(sx),
                            grid.y_axis().Representative4(sy));
      const auto actual = diagram.SubcellSkyline(sx, sy);
      ASSERT_EQ(std::vector<PointId>(actual.begin(), actual.end()), expected)
          << "subcell (" << sx << ", " << sy << ")";
    }
  }
}

TEST_P(DynamicDiagramTest, SinglePoint) {
  auto ds = Dataset::Create({{3, 3}}, 8);
  ASSERT_TRUE(ds.ok());
  const SkylineDiagram built = Build(*ds);
  const SubcellDiagram& diagram = *built.subcell_diagram();
  // One line per axis -> 2x2 subcells, each containing only the point.
  EXPECT_EQ(diagram.grid().num_subcells(), 4u);
  for (uint32_t sy = 0; sy < 2; ++sy) {
    for (uint32_t sx = 0; sx < 2; ++sx) {
      EXPECT_EQ(diagram.SubcellSkyline(sx, sy).size(), 1u);
    }
  }
}

TEST_P(DynamicDiagramTest, DuplicatePoints) {
  auto ds = Dataset::Create({{2, 2}, {2, 2}, {5, 5}}, 8);
  ASSERT_TRUE(ds.ok());
  const SkylineDiagram built = Build(*ds);
  const SubcellDiagram& diagram = *built.subcell_diagram();
  const SubcellGrid& grid = diagram.grid();
  for (uint32_t sy = 0; sy < grid.num_rows(); ++sy) {
    for (uint32_t sx = 0; sx < grid.num_columns(); ++sx) {
      const auto expected =
          DynamicSkylineAt4(*ds, grid.x_axis().Representative4(sx),
                            grid.y_axis().Representative4(sy));
      const auto actual = diagram.SubcellSkyline(sx, sy);
      ASSERT_EQ(std::vector<PointId>(actual.begin(), actual.end()), expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBuilders, DynamicDiagramTest,
                         ::testing::Values(BuildAlgorithm::kBaseline,
                                           BuildAlgorithm::kSubset,
                                           BuildAlgorithm::kScanning),
                         [](const auto& info) {
                           return std::string(BuildAlgorithmName(info.param));
                         });

TEST(DynamicDiagramCrossTest, AllFourBuildersAgree) {
  struct Case {
    size_t n;
    int64_t domain;
    Distribution distribution;
  };
  const Case cases[] = {
      {12, 64, Distribution::kIndependent},
      {12, 64, Distribution::kCorrelated},
      {12, 64, Distribution::kAnticorrelated},
      {24, 8, Distribution::kIndependent},
  };
  for (const Case& c : cases) {
    const Dataset ds =
        testing::GeneratedDataset(c.n, c.domain, c.distribution, 17);
    const SkylineDiagram baseline =
        BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kBaseline);
    for (const BuildAlgorithm algorithm :
         {BuildAlgorithm::kSubset, BuildAlgorithm::kScanning,
          BuildAlgorithm::kDsg}) {
      const SkylineDiagram other =
          BuildDiagram(ds, SkylineQueryType::kDynamic, algorithm);
      EXPECT_TRUE(baseline.subcell_diagram()->SameResults(
          *other.subcell_diagram()))
          << DistributionName(c.distribution) << "/"
          << BuildAlgorithmName(algorithm);
    }
  }
}

TEST(DynamicDiagramCrossTest, SubsetWorksWithEveryGlobalBuilder) {
  // The baseline-composed subset has no facade spelling (kSubset composes
  // over scanning, kDsg over DSG), so this parity check stays on the direct
  // entry point.
  const Dataset ds = RandomDataset(14, 24, 23);
  const SubcellDiagram a = BuildDynamicSubset(ds, QuadrantAlgorithm::kBaseline);
  const SubcellDiagram b = BuildDynamicSubset(ds, QuadrantAlgorithm::kDsg);
  const SubcellDiagram c = BuildDynamicSubset(ds, QuadrantAlgorithm::kScanning);
  EXPECT_TRUE(a.SameResults(b));
  EXPECT_TRUE(a.SameResults(c));
}

TEST(DynamicDiagramCrossTest, HotelExampleDynamicQuery) {
  const Dataset hotels = HotelExample();
  const SkylineDiagram built = BuildDiagram(hotels, SkylineQueryType::kDynamic,
                                            BuildAlgorithm::kScanning);
  const SubcellDiagram& diagram = *built.subcell_diagram();
  // q = (10, 80) may lie on a bisector line; the paper's stated dynamic
  // result {p6, p11} must hold via the exact reference at minimum.
  EXPECT_EQ(DynamicSkyline(hotels, HotelExampleQuery()),
            (std::vector<PointId>{5, 10}));
  // And the diagram agrees at the interior representative of q's subcell.
  const SubcellGrid& grid = diagram.grid();
  const uint32_t sx = grid.x_axis().SlabOfDoubled(2 * HotelExampleQuery().x);
  const uint32_t sy = grid.y_axis().SlabOfDoubled(2 * HotelExampleQuery().y);
  const auto expected =
      DynamicSkylineAt4(hotels, grid.x_axis().Representative4(sx),
                        grid.y_axis().Representative4(sy));
  const auto actual = diagram.SubcellSkyline(sx, sy);
  EXPECT_EQ(std::vector<PointId>(actual.begin(), actual.end()), expected);
}

TEST(DynamicDiagramCrossTest, StatsAreConsistent) {
  const Dataset ds = RandomDataset(12, 20, 29);
  const SkylineDiagram built =
      BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning);
  const SubcellDiagram::Stats stats = built.subcell_diagram()->ComputeStats();
  EXPECT_EQ(stats.num_subcells, built.subcell_diagram()->grid().num_subcells());
  EXPECT_GE(stats.num_distinct_sets, 1u);
  EXPECT_GT(stats.approx_bytes, 0u);
}

}  // namespace
}  // namespace skydia
