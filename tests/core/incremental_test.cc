#include "src/core/incremental.h"

#include <gtest/gtest.h>

#include "src/core/diagram.h"
#include "src/datagen/distributions.h"
#include "src/skyline/query.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::RandomDataset;

Dataset Slice(const Dataset& ds, size_t count) {
  std::vector<Point2D> points(ds.points().begin(),
                              ds.points().begin() + count);
  return std::move(Dataset::Create(std::move(points), ds.domain_size()))
      .value();
}

TEST(IncrementalTest, InsertMatchesFullRebuildRandom) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const Dataset full = RandomDataset(25, 24, seed);
    auto incremental =
        IncrementalQuadrantDiagram::Create(Slice(full, 10));
    ASSERT_TRUE(incremental.ok());
    for (size_t i = 10; i < full.size(); ++i) {
      auto id = incremental->Insert(full.point(static_cast<PointId>(i)));
      ASSERT_TRUE(id.ok());
      EXPECT_EQ(*id, i);
    }
    const SkylineDiagram rebuilt = testing::BuildDiagram(
        full, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
    EXPECT_TRUE(incremental->diagram().SameResults(*rebuilt.cell_diagram()))
        << "seed " << seed;
  }
}

TEST(IncrementalTest, InsertWithTies) {
  // Insertions that share coordinates with existing points (no new grid
  // line) and exact duplicates.
  auto base = Dataset::Create({{3, 3}, {6, 6}}, 10);
  ASSERT_TRUE(base.ok());
  auto incremental = IncrementalQuadrantDiagram::Create(*base);
  ASSERT_TRUE(incremental.ok());
  ASSERT_TRUE(incremental->Insert({3, 6}).ok());   // both coords shared
  ASSERT_TRUE(incremental->Insert({3, 3}).ok());   // exact duplicate
  ASSERT_TRUE(incremental->Insert({6, 1}).ok());   // one shared coord

  auto full = Dataset::Create({{3, 3}, {6, 6}, {3, 6}, {3, 3}, {6, 1}}, 10);
  ASSERT_TRUE(full.ok());
  const SkylineDiagram rebuilt = testing::BuildDiagram(
      *full, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  EXPECT_TRUE(incremental->diagram().SameResults(*rebuilt.cell_diagram()));
}

TEST(IncrementalTest, UpperRightInsertRecomputesOneCell) {
  auto base = Dataset::Create({{1, 1}, {2, 2}}, 16);
  ASSERT_TRUE(base.ok());
  auto incremental = IncrementalQuadrantDiagram::Create(*base);
  ASSERT_TRUE(incremental.ok());
  // Dominated corner insert: its ranks are maximal, so the affected
  // rectangle is the full lower-left grid...
  ASSERT_TRUE(incremental->Insert({10, 10}).ok());
  EXPECT_EQ(incremental->last_insert_recomputed_cells(), 3u * 3u);
  // ...while a lower-left insert touches exactly one cell.
  ASSERT_TRUE(incremental->Insert({0, 0}).ok());
  EXPECT_EQ(incremental->last_insert_recomputed_cells(), 1u);
}

TEST(IncrementalTest, QueriesAreExactAfterInserts) {
  auto incremental =
      IncrementalQuadrantDiagram::Create(RandomDataset(8, 12, 3));
  ASSERT_TRUE(incremental.ok());
  Rng rng(99);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        incremental->Insert({rng.NextInt(0, 11), rng.NextInt(0, 11)}).ok());
  }
  const Dataset& ds = incremental->dataset();
  for (int64_t x = 0; x < 12; ++x) {
    for (int64_t y = 0; y < 12; ++y) {
      const auto actual = incremental->Query({x, y});
      EXPECT_EQ(std::vector<PointId>(actual.begin(), actual.end()),
                FirstQuadrantSkyline(ds, {x, y}));
    }
  }
}

TEST(IncrementalTest, RejectsOutOfDomainInserts) {
  auto incremental =
      IncrementalQuadrantDiagram::Create(RandomDataset(5, 8, 5));
  ASSERT_TRUE(incremental.ok());
  EXPECT_FALSE(incremental->Insert({8, 0}).ok());
  EXPECT_FALSE(incremental->Insert({0, -1}).ok());
}

TEST(IncrementalTest, DatasetValidationFailureIsInvalidArgumentNotAbort) {
  // Under require_distinct_coordinates, an insert that duplicates an existing
  // coordinate makes the extended Dataset::Create fail. That failure must
  // surface as InvalidArgument from Insert — never a process abort — and the
  // diagram must keep serving its pre-insert state.
  IncrementalOptions options;
  options.require_distinct_coordinates = true;
  auto base = Dataset::Create({{1, 2}, {3, 4}}, 16);
  ASSERT_TRUE(base.ok());
  auto incremental = IncrementalQuadrantDiagram::Create(*base, options);
  ASSERT_TRUE(incremental.ok());

  const auto dup_x = incremental->Insert({1, 7});  // x collides with (1, 2)
  ASSERT_FALSE(dup_x.ok());
  EXPECT_EQ(dup_x.status().code(), StatusCode::kInvalidArgument);
  const auto dup_y = incremental->Insert({7, 4});  // y collides with (3, 4)
  ASSERT_FALSE(dup_y.ok());
  EXPECT_EQ(dup_y.status().code(), StatusCode::kInvalidArgument);

  // The failed inserts changed nothing: size, ids, and results are intact.
  EXPECT_EQ(incremental->dataset().size(), 2u);
  auto ok = incremental->Insert({5, 6});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2u);
  const auto at_origin = incremental->Query({0, 0});
  EXPECT_EQ(std::vector<PointId>(at_origin.begin(), at_origin.end()),
            FirstQuadrantSkyline(incremental->dataset(), {0, 0}));

  // And Create itself rejects a seed dataset that violates the invariant.
  auto bad_seed = IncrementalQuadrantDiagram::Create(
      std::move(Dataset::Create({{2, 2}, {2, 5}}, 8)).value(), options);
  ASSERT_FALSE(bad_seed.ok());
  EXPECT_EQ(bad_seed.status().code(), StatusCode::kInvalidArgument);
}

TEST(IncrementalTest, LabelsExtendWhenPresent) {
  auto base = Dataset::Create({{1, 1}}, 8, {"first"});
  ASSERT_TRUE(base.ok());
  auto incremental = IncrementalQuadrantDiagram::Create(*base);
  ASSERT_TRUE(incremental.ok());
  ASSERT_TRUE(incremental->Insert({2, 2}).ok());
  EXPECT_EQ(incremental->dataset().label(0), "first");
  EXPECT_EQ(incremental->dataset().label(1), "p1");
}

}  // namespace
}  // namespace skydia
