#include "src/core/incremental.h"

#include <gtest/gtest.h>

#include "src/core/diagram.h"
#include "src/datagen/distributions.h"
#include "src/skyline/query.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::RandomDataset;

Dataset Slice(const Dataset& ds, size_t count) {
  std::vector<Point2D> points(ds.points().begin(),
                              ds.points().begin() + count);
  return std::move(Dataset::Create(std::move(points), ds.domain_size()))
      .value();
}

TEST(IncrementalTest, InsertMatchesFullRebuildRandom) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const Dataset full = RandomDataset(25, 24, seed);
    auto incremental =
        IncrementalQuadrantDiagram::Create(Slice(full, 10));
    ASSERT_TRUE(incremental.ok());
    for (size_t i = 10; i < full.size(); ++i) {
      auto id = incremental->Insert(full.point(static_cast<PointId>(i)));
      ASSERT_TRUE(id.ok());
      EXPECT_EQ(*id, i);
    }
    const SkylineDiagram rebuilt = testing::BuildDiagram(
        full, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
    EXPECT_TRUE(incremental->diagram().SameResults(*rebuilt.cell_diagram()))
        << "seed " << seed;
  }
}

TEST(IncrementalTest, InsertWithTies) {
  // Insertions that share coordinates with existing points (no new grid
  // line) and exact duplicates.
  auto base = Dataset::Create({{3, 3}, {6, 6}}, 10);
  ASSERT_TRUE(base.ok());
  auto incremental = IncrementalQuadrantDiagram::Create(*base);
  ASSERT_TRUE(incremental.ok());
  ASSERT_TRUE(incremental->Insert({3, 6}).ok());   // both coords shared
  ASSERT_TRUE(incremental->Insert({3, 3}).ok());   // exact duplicate
  ASSERT_TRUE(incremental->Insert({6, 1}).ok());   // one shared coord

  auto full = Dataset::Create({{3, 3}, {6, 6}, {3, 6}, {3, 3}, {6, 1}}, 10);
  ASSERT_TRUE(full.ok());
  const SkylineDiagram rebuilt = testing::BuildDiagram(
      *full, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  EXPECT_TRUE(incremental->diagram().SameResults(*rebuilt.cell_diagram()));
}

TEST(IncrementalTest, UpperRightInsertRecomputesOneCell) {
  auto base = Dataset::Create({{1, 1}, {2, 2}}, 16);
  ASSERT_TRUE(base.ok());
  auto incremental = IncrementalQuadrantDiagram::Create(*base);
  ASSERT_TRUE(incremental.ok());
  // Dominated corner insert: the candidate rectangle is the full lower-left
  // grid, but wherever a dominator — (2,2), ranks (1,1) — is also a
  // candidate the cell keeps its result, leaving the changed staircase
  // {cx<=1, cy=2} + {cx=2, cy<=2} = 5 of the 9 rectangle cells...
  ASSERT_TRUE(incremental->Insert({10, 10}).ok());
  EXPECT_EQ(incremental->last_insert_recomputed_cells(), 5u);
  // ...while a lower-left insert touches exactly one cell.
  ASSERT_TRUE(incremental->Insert({0, 0}).ok());
  EXPECT_EQ(incremental->last_insert_recomputed_cells(), 1u);
}

TEST(IncrementalTest, DominatedInsertRecomputesStaircaseOnly) {
  // Points on the diagonal: inserting a point dominated at distance one
  // must recompute only the staircase its dominators leave exposed, not the
  // whole candidate rectangle.
  std::vector<Point2D> points;
  for (int64_t v = 0; v < 8; ++v) points.push_back({v, v});
  auto base = Dataset::Create(std::move(points), 64);
  ASSERT_TRUE(base.ok());
  auto incremental = IncrementalQuadrantDiagram::Create(*base);
  ASSERT_TRUE(incremental.ok());
  // (7,7) dominates (8,8): only cells with cx > xrank(7) or cy > yrank(7)
  // inside the rectangle change — one row plus one column of it.
  ASSERT_TRUE(incremental->Insert({8, 8}).ok());
  EXPECT_EQ(incremental->last_insert_recomputed_cells(), 2u * 9u - 1u);
  const SkylineDiagram rebuilt =
      testing::BuildDiagram(incremental->dataset(), SkylineQueryType::kQuadrant,
                            BuildAlgorithm::kScanning);
  EXPECT_TRUE(incremental->diagram().SameResults(*rebuilt.cell_diagram()));
}

TEST(IncrementalTest, DeleteMatchesFullRebuildRandom) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const Dataset full = RandomDataset(25, 24, seed);
    auto incremental = IncrementalQuadrantDiagram::Create(full);
    ASSERT_TRUE(incremental.ok());
    Rng rng(seed * 977);
    for (int step = 0; step < 15; ++step) {
      const auto victim = static_cast<PointId>(rng.NextInt(
          0, static_cast<int64_t>(incremental->dataset().size()) - 1));
      ASSERT_TRUE(incremental->Delete(victim).ok());
      const SkylineDiagram rebuilt =
          testing::BuildDiagram(incremental->dataset(),
                                SkylineQueryType::kQuadrant,
                                BuildAlgorithm::kScanning);
      ASSERT_TRUE(incremental->diagram().SameResults(*rebuilt.cell_diagram()))
          << "seed " << seed << " step " << step;
    }
  }
}

TEST(IncrementalTest, DeleteRenumbersIdsAndLabelsFollow) {
  auto base = Dataset::Create({{1, 5}, {3, 3}, {5, 1}}, 8, {"a", "b", "c"});
  ASSERT_TRUE(base.ok());
  auto incremental = IncrementalQuadrantDiagram::Create(*base);
  ASSERT_TRUE(incremental.ok());
  ASSERT_TRUE(incremental->Delete(1).ok());
  ASSERT_EQ(incremental->dataset().size(), 2u);
  EXPECT_EQ(incremental->dataset().label(0), "a");
  EXPECT_EQ(incremental->dataset().label(1), "c");
  EXPECT_EQ(incremental->dataset().point(1).x, 5);
  const auto at_origin = incremental->Query({0, 0});
  EXPECT_EQ(std::vector<PointId>(at_origin.begin(), at_origin.end()),
            FirstQuadrantSkyline(incremental->dataset(), {0, 0}));
}

TEST(IncrementalTest, DeleteRejectsUnknownAndLastPoint) {
  auto base = Dataset::Create({{1, 1}, {2, 2}}, 8);
  ASSERT_TRUE(base.ok());
  auto incremental = IncrementalQuadrantDiagram::Create(*base);
  ASSERT_TRUE(incremental.ok());
  const Status unknown = incremental->Delete(7);
  EXPECT_EQ(unknown.code(), StatusCode::kNotFound);
  ASSERT_TRUE(incremental->Delete(0).ok());
  const Status last = incremental->Delete(0);
  EXPECT_EQ(last.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(incremental->dataset().size(), 1u);
}

TEST(IncrementalTest, DeleteOfDominatedPointRecomputesNothing) {
  // (2,2) is dominated by (1,1) everywhere it is a candidate, so deleting
  // it never changes a result set: every cell copies.
  auto base = Dataset::Create({{1, 1}, {2, 2}, {3, 0}}, 16);
  ASSERT_TRUE(base.ok());
  auto incremental = IncrementalQuadrantDiagram::Create(*base);
  ASSERT_TRUE(incremental.ok());
  ASSERT_TRUE(incremental->Delete(1).ok());
  EXPECT_EQ(incremental->last_delete_recomputed_cells(), 0u);
  const SkylineDiagram rebuilt =
      testing::BuildDiagram(incremental->dataset(), SkylineQueryType::kQuadrant,
                            BuildAlgorithm::kScanning);
  EXPECT_TRUE(incremental->diagram().SameResults(*rebuilt.cell_diagram()));
}

TEST(IncrementalTest, DeleteWithTies) {
  // Deleting a point that shares grid lines with survivors (no line
  // disappears) and one whose lines disappear with it.
  auto base = Dataset::Create({{3, 3}, {3, 6}, {6, 3}, {1, 7}}, 10);
  ASSERT_TRUE(base.ok());
  auto incremental = IncrementalQuadrantDiagram::Create(*base);
  ASSERT_TRUE(incremental.ok());
  ASSERT_TRUE(incremental->Delete(0).ok());  // shares x=3 and y=3
  ASSERT_TRUE(incremental->Delete(2).ok());  // unique lines x=1, y=7
  const SkylineDiagram rebuilt =
      testing::BuildDiagram(incremental->dataset(), SkylineQueryType::kQuadrant,
                            BuildAlgorithm::kScanning);
  EXPECT_TRUE(incremental->diagram().SameResults(*rebuilt.cell_diagram()));
}

TEST(IncrementalTest, InterleavedInsertDeleteMatchesRebuild) {
  auto incremental =
      IncrementalQuadrantDiagram::Create(RandomDataset(12, 32, 11));
  ASSERT_TRUE(incremental.ok());
  Rng rng(42);
  for (int step = 0; step < 30; ++step) {
    if (incremental->dataset().size() <= 2 || rng.NextInt(0, 2) != 0) {
      ASSERT_TRUE(
          incremental->Insert({rng.NextInt(0, 31), rng.NextInt(0, 31)}).ok());
    } else {
      const auto victim = static_cast<PointId>(rng.NextInt(
          0, static_cast<int64_t>(incremental->dataset().size()) - 1));
      ASSERT_TRUE(incremental->Delete(victim).ok());
    }
  }
  const SkylineDiagram rebuilt =
      testing::BuildDiagram(incremental->dataset(), SkylineQueryType::kQuadrant,
                            BuildAlgorithm::kScanning);
  EXPECT_TRUE(incremental->diagram().SameResults(*rebuilt.cell_diagram()));
}

TEST(IncrementalTest, QueriesAreExactAfterInserts) {
  auto incremental =
      IncrementalQuadrantDiagram::Create(RandomDataset(8, 12, 3));
  ASSERT_TRUE(incremental.ok());
  Rng rng(99);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        incremental->Insert({rng.NextInt(0, 11), rng.NextInt(0, 11)}).ok());
  }
  const Dataset& ds = incremental->dataset();
  for (int64_t x = 0; x < 12; ++x) {
    for (int64_t y = 0; y < 12; ++y) {
      const auto actual = incremental->Query({x, y});
      EXPECT_EQ(std::vector<PointId>(actual.begin(), actual.end()),
                FirstQuadrantSkyline(ds, {x, y}));
    }
  }
}

TEST(IncrementalTest, RejectsOutOfDomainInserts) {
  auto incremental =
      IncrementalQuadrantDiagram::Create(RandomDataset(5, 8, 5));
  ASSERT_TRUE(incremental.ok());
  EXPECT_FALSE(incremental->Insert({8, 0}).ok());
  EXPECT_FALSE(incremental->Insert({0, -1}).ok());
}

TEST(IncrementalTest, DatasetValidationFailureIsCleanStatusNotAbort) {
  // Under require_distinct_coordinates, an insert that duplicates an existing
  // coordinate makes the extended Dataset::Create fail. That failure must
  // surface as AlreadyExists from Insert — never a process abort — and the
  // diagram must keep serving its pre-insert state.
  IncrementalOptions options;
  options.require_distinct_coordinates = true;
  auto base = Dataset::Create({{1, 2}, {3, 4}}, 16);
  ASSERT_TRUE(base.ok());
  auto incremental = IncrementalQuadrantDiagram::Create(*base, options);
  ASSERT_TRUE(incremental.ok());

  const auto dup_x = incremental->Insert({1, 7});  // x collides with (1, 2)
  ASSERT_FALSE(dup_x.ok());
  EXPECT_EQ(dup_x.status().code(), StatusCode::kAlreadyExists);
  const auto dup_y = incremental->Insert({7, 4});  // y collides with (3, 4)
  ASSERT_FALSE(dup_y.ok());
  EXPECT_EQ(dup_y.status().code(), StatusCode::kAlreadyExists);

  // The failed inserts changed nothing: size, ids, and results are intact.
  EXPECT_EQ(incremental->dataset().size(), 2u);
  auto ok = incremental->Insert({5, 6});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2u);
  const auto at_origin = incremental->Query({0, 0});
  EXPECT_EQ(std::vector<PointId>(at_origin.begin(), at_origin.end()),
            FirstQuadrantSkyline(incremental->dataset(), {0, 0}));

  // And Create itself rejects a seed dataset that violates the invariant.
  auto bad_seed = IncrementalQuadrantDiagram::Create(
      std::move(Dataset::Create({{2, 2}, {2, 5}}, 8)).value(), options);
  ASSERT_FALSE(bad_seed.ok());
  EXPECT_EQ(bad_seed.status().code(), StatusCode::kInvalidArgument);
}

TEST(IncrementalTest, LabelsExtendWhenPresent) {
  auto base = Dataset::Create({{1, 1}}, 8, {"first"});
  ASSERT_TRUE(base.ok());
  auto incremental = IncrementalQuadrantDiagram::Create(*base);
  ASSERT_TRUE(incremental.ok());
  ASSERT_TRUE(incremental->Insert({2, 2}).ok());
  EXPECT_EQ(incremental->dataset().label(0), "first");
  EXPECT_EQ(incremental->dataset().label(1), "p1");
}

}  // namespace
}  // namespace skydia
