// Pins the BuildReport contract of src/core/build_report.h: every builder
// family fills per-phase wall times whose sum covers the measured total (the
// acceptance bound is 10% slack on the n=4096 fixture), plus the structure
// counts the `--report` CLI line prints. Phase timing accumulates only on
// the thread driving the build, so the contract must hold for parallel
// builders too — their stripe work happens inside the driver's "stripes"
// phase.
#include "src/core/build_report.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/diagram.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::RandomDataset;

// The family sweep runs at n=512 (a quadrant grid is already (n+1)^2 cells,
// so n=4096 costs tens of seconds per build); the n=4096 acceptance fixture
// is asserted once, in release builds, by PhaseTimesCoverTotalOnAcceptanceN.
constexpr size_t kSweepN = 512;
constexpr int64_t kSweepDomain = 1 << 12;
constexpr size_t kAcceptanceN = 4096;
constexpr int64_t kAcceptanceDomain = 1 << 16;
constexpr uint64_t kFixtureSeed = 20260806;

double PhaseSum(const BuildReport& report) {
  double sum = 0.0;
  for (const BuildPhaseTiming& phase : report.phases) sum += phase.seconds;
  return sum;
}

BuildReport BuildWithReport(SkylineQueryType type, BuildAlgorithm algorithm,
                            int parallelism, size_t n = kSweepN,
                            int64_t domain = kSweepDomain) {
  Dataset dataset = RandomDataset(n, domain, kFixtureSeed);
  BuildReport report;
  SkylineBuildOptions options;
  options.algorithm = algorithm;
  options.parallelism = parallelism;
  options.report = &report;
  auto diagram = SkylineDiagram::Build(std::move(dataset), type, options);
  SKYDIA_CHECK(diagram.ok());
  return report;
}

struct BuilderCase {
  const char* label;
  SkylineQueryType type;
  BuildAlgorithm algorithm;
  int parallelism;
  size_t n;  // dynamic subcell grids are O(n^2), so those cases stay small
};

const BuilderCase kBuilders[] = {
    {"quadrant/scanning", SkylineQueryType::kQuadrant,
     BuildAlgorithm::kScanning, 1, kSweepN},
    {"quadrant/dsg", SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg, 1,
     kSweepN},
    {"quadrant/dsg-parallel", SkylineQueryType::kQuadrant,
     BuildAlgorithm::kDsg, 4, kSweepN},
    {"global/scanning", SkylineQueryType::kGlobal, BuildAlgorithm::kScanning,
     1, kSweepN},
    {"dynamic/scanning", SkylineQueryType::kDynamic,
     BuildAlgorithm::kScanning, 1, 64},
    {"dynamic/scanning-parallel", SkylineQueryType::kDynamic,
     BuildAlgorithm::kScanning, 4, 64},
};

TEST(BuildReportTest, PhaseTimesCoverTotalWithinTenPercent) {
  for (const BuilderCase& c : kBuilders) {
    const BuildReport report =
        BuildWithReport(c.type, c.algorithm, c.parallelism, c.n);
    ASSERT_FALSE(report.phases.empty()) << c.label;
    ASSERT_GT(report.total_seconds, 0.0) << c.label;
    const double sum = PhaseSum(report);
    // The phases live inside the timed region, so the sum cannot exceed the
    // total; the acceptance bound is that they cover at least 90% of it.
    EXPECT_LE(sum, report.total_seconds * 1.001) << c.label;
    EXPECT_GE(sum, report.total_seconds * 0.9)
        << c.label << ": phases cover only "
        << 100.0 * sum / report.total_seconds << "% of "
        << report.total_seconds * 1e3 << " ms";
  }
}

TEST(BuildReportTest, PhaseTimesCoverTotalOnAcceptanceN4096) {
#ifndef NDEBUG
  GTEST_SKIP() << "n=4096 builds take minutes under debug/sanitizer builds; "
                  "the release CI job runs this";
#endif
  const BuildReport report =
      BuildWithReport(SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning,
                      1, kAcceptanceN, kAcceptanceDomain);
  ASSERT_EQ(report.dataset_points, kAcceptanceN);
  ASSERT_GT(report.total_seconds, 0.0);
  const double sum = PhaseSum(report);
  EXPECT_LE(sum, report.total_seconds * 1.001);
  EXPECT_GE(sum, report.total_seconds * 0.9)
      << "phases cover only " << 100.0 * sum / report.total_seconds
      << "% of " << report.total_seconds * 1e3 << " ms";
}

TEST(BuildReportTest, StructureCountsArePopulated) {
  const BuildReport report = BuildWithReport(SkylineQueryType::kQuadrant,
                                             BuildAlgorithm::kScanning, 1);
  EXPECT_EQ(report.dataset_points, kSweepN);
  EXPECT_GT(report.num_cells, 0u);
  EXPECT_GT(report.num_distinct_sets, 0u);
  EXPECT_GT(report.total_set_elements, 0u);
  EXPECT_GT(report.arena_bytes, 0u);
  EXPECT_GE(report.approx_bytes, report.arena_bytes);
  EXPECT_EQ(report.diagram_type, "quadrant");
  EXPECT_EQ(report.algorithm, "scanning");
  EXPECT_EQ(report.parallelism, 1);
}

TEST(BuildReportTest, ParallelBuildRecordsStripeAndMergePhases) {
  const BuildReport report =
      BuildWithReport(SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg, 4);
  const auto has_phase = [&](const std::string& name) {
    for (const BuildPhaseTiming& phase : report.phases) {
      if (phase.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_phase("grid"));
  EXPECT_TRUE(has_phase("dsg"));
  EXPECT_TRUE(has_phase("stripes"));
  EXPECT_TRUE(has_phase("merge"));
  EXPECT_TRUE(has_phase("freeze"));
  EXPECT_EQ(report.algorithm, "dsg");
  EXPECT_EQ(report.parallelism, 4);
}

TEST(BuildReportTest, AutoAlgorithmIsReportedResolved) {
  const BuildReport sequential =
      BuildWithReport(SkylineQueryType::kQuadrant, BuildAlgorithm::kAuto, 1);
  EXPECT_EQ(sequential.algorithm, "scanning");
  const BuildReport parallel =
      BuildWithReport(SkylineQueryType::kQuadrant, BuildAlgorithm::kAuto, 2);
  EXPECT_EQ(parallel.algorithm, "dsg");
}

TEST(BuildReportTest, ReportIsOverwrittenNotAppended) {
  Dataset first = RandomDataset(256, 1 << 12, 1);
  Dataset second = RandomDataset(256, 1 << 12, 2);
  BuildReport report;
  SkylineBuildOptions options;
  options.report = &report;
  SKYDIA_CHECK(SkylineDiagram::Build(std::move(first),
                                     SkylineQueryType::kQuadrant, options)
                   .ok());
  const size_t phases_after_first = report.phases.size();
  const auto counts = [&] {
    std::vector<uint64_t> out;
    for (const BuildPhaseTiming& phase : report.phases) {
      out.push_back(phase.count);
    }
    return out;
  };
  const std::vector<uint64_t> first_counts = counts();
  SKYDIA_CHECK(SkylineDiagram::Build(std::move(second),
                                     SkylineQueryType::kQuadrant, options)
                   .ok());
  EXPECT_EQ(report.phases.size(), phases_after_first);
  EXPECT_EQ(counts(), first_counts);
}

TEST(BuildReportTest, ToStringRendersPhasesAndCounts) {
  const BuildReport report = BuildWithReport(SkylineQueryType::kQuadrant,
                                             BuildAlgorithm::kScanning, 1);
  const std::string text = report.ToString();
  EXPECT_NE(text.find("build report: quadrant/scanning"), std::string::npos);
  EXPECT_NE(text.find("phase grid"), std::string::npos);
  EXPECT_NE(text.find("phase scan"), std::string::npos);
  EXPECT_NE(text.find("total"), std::string::npos);
  EXPECT_NE(text.find("cells="), std::string::npos);
  EXPECT_NE(text.find("arena_bytes="), std::string::npos);
}

TEST(BuildReportTest, NestedPhaseScopesAccumulateOnlyAtTopLevel) {
  BuildReport report;
  {
    build_report_internal::ReportInstaller installer(&report);
    PhaseScope outer("outer");
    {
      // Nested scopes trace but never double-count into the report.
      PhaseScope inner("inner");
    }
  }
  ASSERT_EQ(report.phases.size(), 1u);
  EXPECT_EQ(report.phases[0].name, "outer");
  EXPECT_EQ(report.phases[0].count, 1u);
}

TEST(BuildReportTest, PhaseScopeWithoutInstalledReportIsInert) {
  {
    PhaseScope phase("orphan");
  }
  SUCCEED();
}

}  // namespace
}  // namespace skydia
