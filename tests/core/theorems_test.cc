// Direct checks of the paper's formal statements, independent of the
// algorithm implementations (which have their own suites): Theorem 1's
// multiset identity over skyline cells, its saturating-subtraction extension
// under ties, and the Theorem 2 properties of the sweeping subdivision.
#include <map>

#include <gtest/gtest.h>

#include "src/core/diagram.h"
#include "src/core/quadrant_sweeping.h"
#include "src/skyline/query.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::RandomDataset;
using skydia::testing::RandomDistinctDataset;

// Theorem 1: Sky(C[i][j]) = Sky(C[i+1][j]) + Sky(C[i][j+1]) - Sky(C[i+1][j+1])
// (multiset arithmetic, subtraction saturating at zero) for every cell
// without a point on its upper-right corner. Verified against the
// baseline-built diagram, so this exercises the *identity*, not the scanning
// code.
TEST(Theorem1Test, MultisetIdentityHoldsOnDistinctData) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const Dataset ds = RandomDistinctDataset(20, 64, seed);
    const SkylineDiagram built = testing::BuildDiagram(
        ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kBaseline);
    const CellDiagram& diagram = *built.cell_diagram();
    const CellGrid& grid = diagram.grid();
    for (uint32_t cy = 0; cy + 1 < grid.num_rows(); ++cy) {
      for (uint32_t cx = 0; cx + 1 < grid.num_columns(); ++cx) {
        if (!grid.PointsAtCorner(cx, cy).empty()) continue;
        std::map<PointId, int> count;
        for (PointId id : diagram.CellSkyline(cx + 1, cy)) ++count[id];
        for (PointId id : diagram.CellSkyline(cx, cy + 1)) ++count[id];
        for (PointId id : diagram.CellSkyline(cx + 1, cy + 1)) --count[id];
        std::vector<PointId> combined;
        for (const auto& [id, c] : count) {
          ASSERT_LE(c, 1) << "multiset count above 1";
          // Counts of -1 occur when a candidate is dominated from both the
          // cell's grid lines while surviving among the upper-right points;
          // the subtraction must saturate (see SaturationIsRequired).
          if (c == 1) combined.push_back(id);
        }
        const auto expected = diagram.CellSkyline(cx, cy);
        EXPECT_EQ(combined, std::vector<PointId>(expected.begin(),
                                                 expected.end()))
            << "seed " << seed << " cell (" << cx << ", " << cy << ")";
      }
    }
  }
}

TEST(Theorem1Test, SaturationIsRequired) {
  // A candidate dominated by a point on the crossed vertical line AND a
  // point on the crossed horizontal line — while undominated among the
  // strictly-upper-right points — shows count -1 in the raw multiset
  // arithmetic. This happens even with distinct coordinates; the saturating
  // variant stays correct. Documents why BuildQuadrantScanning clamps at 0.
  bool saw_saturation = false;
  for (uint64_t seed = 1; seed <= 30 && !saw_saturation; ++seed) {
    const Dataset ds = RandomDataset(40, 6, seed);
    const SkylineDiagram built = testing::BuildDiagram(
        ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kBaseline);
    const CellDiagram& diagram = *built.cell_diagram();
    const CellGrid& grid = diagram.grid();
    for (uint32_t cy = 0; cy + 1 < grid.num_rows(); ++cy) {
      for (uint32_t cx = 0; cx + 1 < grid.num_columns(); ++cx) {
        if (!grid.PointsAtCorner(cx, cy).empty()) continue;
        std::map<PointId, int> count;
        for (PointId id : diagram.CellSkyline(cx + 1, cy)) ++count[id];
        for (PointId id : diagram.CellSkyline(cx, cy + 1)) ++count[id];
        for (PointId id : diagram.CellSkyline(cx + 1, cy + 1)) --count[id];
        std::vector<PointId> combined;
        for (const auto& [id, c] : count) {
          if (c < 0) saw_saturation = true;  // the case Theorem 1 glosses
          if (c >= 1) combined.push_back(id);
        }
        const auto expected = diagram.CellSkyline(cx, cy);
        // Saturated arithmetic must still reproduce the true skyline.
        ASSERT_EQ(combined, std::vector<PointId>(expected.begin(),
                                                 expected.end()))
            << "seed " << seed;
      }
    }
  }
  EXPECT_TRUE(saw_saturation)
      << "expected at least one tie configuration requiring saturation";
}

TEST(Theorem1Test, CornerCellsHaveTheCornerAsSkyline) {
  const Dataset ds = RandomDataset(30, 16, 7);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kBaseline);
  const CellDiagram& diagram = *built.cell_diagram();
  const CellGrid& grid = diagram.grid();
  for (uint32_t cy = 0; cy < grid.num_rows(); ++cy) {
    for (uint32_t cx = 0; cx < grid.num_columns(); ++cx) {
      const auto& corner = grid.PointsAtCorner(cx, cy);
      if (corner.empty()) continue;
      std::vector<PointId> expected = corner;
      std::sort(expected.begin(), expected.end());
      const auto actual = diagram.CellSkyline(cx, cy);
      EXPECT_EQ(std::vector<PointId>(actual.begin(), actual.end()), expected);
    }
  }
}

// Theorem 2: the half-open grid segments partition the plane into regions of
// constant quadrant skyline. Checked as: crossing any downward ray strictly
// below its point changes the skyline; crossing where no ray lies does not.
TEST(Theorem2Test, RaysAreExactlyTheResultBoundaries) {
  const Dataset ds = RandomDistinctDataset(14, 40, 3);
  for (PointId id = 0; id < ds.size(); ++id) {
    const Point2D& p = ds.point(id);
    // Just below p, crossing its vertical ray: results must differ.
    const int64_t y4 = 4 * p.y - 2;
    if (p.y == 0) continue;
    const auto left = QuadrantSkylineAt4(ds, 4 * p.x - 1, y4, 0);
    const auto right = QuadrantSkylineAt4(ds, 4 * p.x + 1, y4, 0);
    EXPECT_NE(left, right) << "crossing the ray of " << ds.label(id)
                           << " below it must change the skyline";
    // Just above p (beyond the ray): results must agree.
    const int64_t above4 = 4 * p.y + 2;
    const auto left_above = QuadrantSkylineAt4(ds, 4 * p.x - 1, above4, 0);
    const auto right_above = QuadrantSkylineAt4(ds, 4 * p.x + 1, above4, 0);
    EXPECT_EQ(left_above, right_above)
        << "no ray above " << ds.label(id) << ", the skyline cannot change";
  }
}

TEST(Theorem2Test, PolyominoShapeIsTopEdgePlusStaircase) {
  // "The polyominos are either rectangles or half-rectangles with lower left
  // side shaped like steps": vertex count is even and >= 4, first edge goes
  // left, second goes down.
  const Dataset ds = RandomDistinctDataset(18, 48, 5);
  const auto swept = BuildQuadrantSweeping(ds);
  ASSERT_TRUE(swept.ok());
  for (const auto& poly : swept->polyominoes) {
    const auto& v = poly.outline.vertices;
    ASSERT_GE(v.size(), 4u);
    EXPECT_EQ(v.size() % 2, 0u);
    EXPECT_EQ(v[0], poly.corner);
    EXPECT_LT(v[1].x, v[0].x);  // top edge leftward
    EXPECT_EQ(v[1].y, v[0].y);
    EXPECT_LT(v[2].y, v[1].y);  // then down
    EXPECT_EQ(v[2].x, v[1].x);
    // Staircase monotonicity: x never decreases, y never increases after the
    // top edge.
    for (size_t i = 2; i + 1 < v.size(); i += 2) {
      EXPECT_LE(v[i].y, v[i - 1].y);
      if (i + 1 < v.size()) {
        EXPECT_GE(v[i + 1].x, v[i].x);
      }
    }
  }
}

}  // namespace
}  // namespace skydia
