#include "src/core/quadrant_sweeping.h"

#include <map>

#include <gtest/gtest.h>

#include "src/core/merge.h"
#include "src/core/quadrant_scanning.h"
#include "src/skyline/query.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::RandomDataset;
using skydia::testing::RandomDistinctDataset;

TEST(SweepingTest, RejectsTiedCoordinates) {
  auto ds = Dataset::Create({{3, 1}, {3, 2}}, 10);
  ASSERT_TRUE(ds.ok());
  const auto result = BuildQuadrantSweeping(*ds);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SweepingTest, TwoPointWorkedExample) {
  // The example from the design discussion: a = (2, 8), b = (6, 4), s = 10.
  auto ds = Dataset::Create({{2, 8}, {6, 4}}, 10);
  ASSERT_TRUE(ds.ok());
  const auto result = BuildQuadrantSweeping(*ds);
  ASSERT_TRUE(result.ok());
  // Faces: {a}, {a,b}, {b}, empty region.
  EXPECT_EQ(result->polyominoes.size(), 4u);
  int64_t total_area = 0;
  for (const auto& poly : result->polyominoes) {
    EXPECT_TRUE(poly.outline.IsRectilinear()) << ToString(poly.corner);
    total_area += poly.outline.Area();
  }
  EXPECT_EQ(total_area, 100);
}

TEST(SweepingTest, PolyominoesTileTheDomain) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Dataset ds = RandomDistinctDataset(24, 64, seed);
    const auto result = BuildQuadrantSweeping(ds);
    ASSERT_TRUE(result.ok()) << "seed " << seed;
    int64_t total_area = 0;
    for (const auto& poly : result->polyominoes) {
      EXPECT_TRUE(poly.outline.IsRectilinear());
      EXPECT_GT(poly.outline.Area(), 0);
      total_area += poly.outline.Area();
    }
    const int64_t s = ds.domain_size();
    EXPECT_EQ(total_area, s * s) << "seed " << seed;
  }
}

TEST(SweepingTest, PolyominoCountMatchesCellLabelPartition) {
  // With all coordinates >= 1 every rank-space cell has positive area, so
  // the geometric face count and the cell-label component count coincide.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Dataset ds =
        skydia::testing::RandomDistinctPositiveDataset(20, 48, seed);
    const auto swept = BuildQuadrantSweeping(ds);
    ASSERT_TRUE(swept.ok());
    const CellGrid grid(ds);
    const SweepingCellLabels labels = BuildSweepingCellLabels(ds, grid);
    EXPECT_EQ(swept->polyominoes.size(), labels.num_polyominoes)
        << "seed " << seed;
  }
}

TEST(SweepingTest, ZeroCoordinatesOnlyAddDegenerateStrips) {
  // Points with coordinate 0 pin measure-zero cell strips to the domain
  // boundary: the label partition counts them, the geometric walk cannot.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Dataset ds = RandomDistinctDataset(20, 48, seed);
    const auto swept = BuildQuadrantSweeping(ds);
    ASSERT_TRUE(swept.ok());
    const CellGrid grid(ds);
    const SweepingCellLabels labels = BuildSweepingCellLabels(ds, grid);
    EXPECT_LE(swept->polyominoes.size(), labels.num_polyominoes);
  }
}

TEST(SweepingTest, CellLabelsMatchMergedScanningDiagram) {
  // Theorem 2 + the merge phase: for distinct coordinates, the sweeping
  // partition equals the merged equal-result partition exactly.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Dataset ds = RandomDistinctDataset(22, 64, seed);
    const CellGrid grid(ds);
    const SweepingCellLabels sweep_labels = BuildSweepingCellLabels(ds, grid);
    const CellDiagram diagram = BuildQuadrantScanning(ds);
    const MergedPolyominoes merged = MergeCells(diagram);
    ASSERT_EQ(sweep_labels.labels.size(), merged.cell_to_polyomino.size());
    EXPECT_EQ(sweep_labels.num_polyominoes, merged.num_polyominoes());
    // Same partition up to relabeling: the label pair mapping is a bijection.
    std::map<uint32_t, uint32_t> fwd;
    std::map<uint32_t, uint32_t> bwd;
    for (size_t i = 0; i < sweep_labels.labels.size(); ++i) {
      const uint32_t a = sweep_labels.labels[i];
      const uint32_t b = merged.cell_to_polyomino[i];
      auto [fit, finserted] = fwd.emplace(a, b);
      EXPECT_EQ(fit->second, b) << "seed " << seed << " cell " << i;
      auto [bit, binserted] = bwd.emplace(b, a);
      EXPECT_EQ(bit->second, a) << "seed " << seed << " cell " << i;
    }
  }
}

TEST(SweepingTest, InteriorSamplesHaveCornerSkyline) {
  // Every query point strictly inside a polyomino must share the quadrant
  // skyline of the polyomino's upper-right corner region.
  const Dataset ds = RandomDistinctDataset(16, 40, 11);
  const auto swept = BuildQuadrantSweeping(ds);
  ASSERT_TRUE(swept.ok());
  for (const auto& poly : swept->polyominoes) {
    // Sample just inside the upper-right corner: corner - (eps, eps) in 4x
    // coordinates.
    const int64_t qx4 = 4 * poly.corner.x - 1;
    const int64_t qy4 = 4 * poly.corner.y - 1;
    const auto corner_sky = QuadrantSkylineAt4(ds, qx4, qy4, 0);
    // And sample other interior integer points when they exist.
    for (const Point2D& v : poly.outline.vertices) {
      const Point2D candidate{v.x + 1, v.y + 1};
      if (candidate.x >= ds.domain_size() || candidate.y >= ds.domain_size()) {
        continue;
      }
      if (!poly.outline.ContainsInterior(candidate)) continue;
      // Integer points can sit on grid lines; sample at +0.25 offsets.
      const auto sample =
          QuadrantSkylineAt4(ds, 4 * candidate.x + 1, 4 * candidate.y + 1, 0);
      EXPECT_EQ(sample, corner_sky)
          << "corner " << ToString(poly.corner) << " sample "
          << ToString(candidate);
    }
  }
}

TEST(SweepingTest, IntersectionCountAccounting) {
  const Dataset ds = RandomDistinctDataset(12, 32, 17);
  const auto swept = BuildQuadrantSweeping(ds);
  ASSERT_TRUE(swept.ok());
  // Interior nodes are exactly the polyominoes; boundary nodes on the two
  // axes are excluded.
  EXPECT_GT(swept->num_intersections, swept->polyominoes.size());
}

TEST(SweepingTest, CellLabelsWorkWithTies) {
  // The tie-tolerant labelling must still partition the grid when the
  // vertex-walk refuses the dataset.
  const Dataset ds = RandomDataset(40, 8, 19);
  const CellGrid grid(ds);
  const SweepingCellLabels labels = BuildSweepingCellLabels(ds, grid);
  EXPECT_EQ(labels.labels.size(), grid.num_cells());
  EXPECT_GT(labels.num_polyominoes, 0u);
  for (uint32_t label : labels.labels) {
    EXPECT_LT(label, labels.num_polyominoes);
  }
}

}  // namespace
}  // namespace skydia
