// Property-based differential suite for the live-mutation path: random
// interleaved insert/delete/query sequences over the incremental diagrams,
// checked at every step against a full rebuild of the same point set. This
// is the correctness backstop behind the serve layer's write path — if the
// staircase (quadrant) or subcell reuse (dynamic) maintenance ever drifts
// from the from-scratch construction, one of these cases pins a seed.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/core/diagram.h"
#include "src/core/incremental.h"
#include "src/core/incremental_dynamic.h"
#include "src/datagen/distributions.h"
#include "tests/testing/property.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::AsSorted;
using skydia::testing::BuildDiagram;
using skydia::testing::GeneratedDataset;
using skydia::testing::PropertyBaseSeed;
using skydia::testing::RandomQueryPoint;
using skydia::testing::RunSeededCases;

constexpr int64_t kDomain = 256;

std::vector<PointId> Sorted(std::span<const PointId> ids) {
  return AsSorted(std::vector<PointId>(ids.begin(), ids.end()));
}

/// One random interleaved mutation/query trace over `family`, rebuilding
/// the oracle diagram from scratch (at `parallelism`) after every mutation.
void RunInterleavedTrace(SkylineQueryType family, Distribution distribution,
                         int parallelism, Rng& rng, uint64_t seed) {
  const size_t n0 = 12 + rng.NextBounded(12);
  Dataset initial = GeneratedDataset(n0, kDomain, distribution, seed);
  std::vector<Point2D> mirror = initial.points();

  std::optional<IncrementalQuadrantDiagram> quadrant;
  std::optional<IncrementalDynamicDiagram> dynamic;
  if (family == SkylineQueryType::kQuadrant) {
    auto built = IncrementalQuadrantDiagram::Create(std::move(initial));
    ASSERT_TRUE(built.ok()) << built.status();
    quadrant.emplace(std::move(built).value());
  } else {
    auto built = IncrementalDynamicDiagram::Create(std::move(initial));
    ASSERT_TRUE(built.ok()) << built.status();
    dynamic.emplace(std::move(built).value());
  }

  constexpr int kSteps = 12;
  for (int step = 0; step < kSteps; ++step) {
    // ~2/3 inserts so the set grows and deletes keep finding structure.
    const bool do_delete = mirror.size() > 2 && rng.NextBounded(3) == 0;
    if (do_delete) {
      const auto victim =
          static_cast<PointId>(rng.NextBounded(mirror.size()));
      const Status deleted = quadrant.has_value() ? quadrant->Delete(victim)
                                                  : dynamic->Delete(victim);
      ASSERT_TRUE(deleted.ok()) << deleted;
      mirror.erase(mirror.begin() + victim);
    } else {
      const Point2D p{rng.NextInt(0, kDomain - 1),
                      rng.NextInt(0, kDomain - 1)};
      const StatusOr<PointId> id = quadrant.has_value()
                                       ? quadrant->Insert(p)
                                       : dynamic->Insert(p);
      ASSERT_TRUE(id.ok()) << id.status();
      ASSERT_EQ(*id, mirror.size());
      mirror.push_back(p);
    }

    // Full-rebuild oracle over the mirrored point set, at the requested
    // build parallelism (the mutation path itself is sequential; the
    // rebuild exercises the parallel constructions against it).
    auto mirror_ds = Dataset::Create(mirror, kDomain);
    ASSERT_TRUE(mirror_ds.ok()) << mirror_ds.status();
    const SkylineDiagram rebuilt = BuildDiagram(
        *mirror_ds, family, BuildAlgorithm::kAuto, parallelism);

    const Dataset& served = quadrant.has_value() ? quadrant->dataset()
                                                 : dynamic->dataset();
    ASSERT_EQ(served.size(), mirror.size());
    for (int probe = 0; probe < 6; ++probe) {
      const Point2D q = RandomQueryPoint(rng, served);
      const std::vector<PointId> incremental =
          quadrant.has_value() ? Sorted(quadrant->Query(q))
                               : Sorted(dynamic->Query(q));
      const std::vector<PointId> oracle =
          quadrant.has_value() ? Sorted(rebuilt.cell_diagram()->Query(q))
                               : Sorted(rebuilt.subcell_diagram()->Query(q));
      ASSERT_EQ(incremental, oracle)
          << "step " << step << " q=(" << q.x << "," << q.y << ") n="
          << mirror.size();
    }
  }
}

struct MutationPropertyParam {
  SkylineQueryType family;
  Distribution distribution;
  int parallelism;
};

class MutationPropertyTest
    : public ::testing::TestWithParam<MutationPropertyParam> {};

TEST_P(MutationPropertyTest, InterleavedMutationsMatchFullRebuild) {
  const MutationPropertyParam param = GetParam();
  RunSeededCases(
      "interleaved mutations vs rebuild", /*cases=*/4,
      PropertyBaseSeed(0xD1A6 + static_cast<uint64_t>(param.parallelism)),
      [&](Rng& rng, uint64_t seed) {
        RunInterleavedTrace(param.family, param.distribution,
                            param.parallelism, rng, seed);
      });
}

std::string ParamName(
    const ::testing::TestParamInfo<MutationPropertyParam>& info) {
  std::string dist = DistributionName(info.param.distribution);
  if (!dist.empty() && dist[0] >= 'a' && dist[0] <= 'z') {
    dist[0] = static_cast<char>(dist[0] - 'a' + 'A');
  }
  return std::string(info.param.family == SkylineQueryType::kQuadrant
                         ? "Quadrant"
                         : "Dynamic") +
         dist + "P" + std::to_string(info.param.parallelism);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesDistributionsParallelism, MutationPropertyTest,
    ::testing::Values(
        // Quadrant family x 3 distributions x parallelism 1/2/7.
        MutationPropertyParam{SkylineQueryType::kQuadrant,
                              Distribution::kIndependent, 1},
        MutationPropertyParam{SkylineQueryType::kQuadrant,
                              Distribution::kCorrelated, 2},
        MutationPropertyParam{SkylineQueryType::kQuadrant,
                              Distribution::kAnticorrelated, 7},
        MutationPropertyParam{SkylineQueryType::kQuadrant,
                              Distribution::kAnticorrelated, 1},
        MutationPropertyParam{SkylineQueryType::kQuadrant,
                              Distribution::kIndependent, 7},
        // Dynamic family x 3 distributions x parallelism 1/2/7.
        MutationPropertyParam{SkylineQueryType::kDynamic,
                              Distribution::kIndependent, 1},
        MutationPropertyParam{SkylineQueryType::kDynamic,
                              Distribution::kCorrelated, 7},
        MutationPropertyParam{SkylineQueryType::kDynamic,
                              Distribution::kAnticorrelated, 2},
        MutationPropertyParam{SkylineQueryType::kDynamic,
                              Distribution::kCorrelated, 1},
        MutationPropertyParam{SkylineQueryType::kDynamic,
                              Distribution::kIndependent, 2}),
    ParamName);

// The mutation fast path adopts the previous pool wholesale — carrying some
// no-longer-referenced sets forward — and compacts (re-interns referenced
// sets) once the pool doubles past the watermark. A long trace must stay
// query-correct across many adoptions and compactions, and the pool must
// stay within the structural bound the watermark policy implies: the size
// right after a compaction is at most referenced + recomputed
// (<= 2 * cells + 1), growth continues until it doubles past that, plus one
// mutation's delta before the next compaction lands.
TEST(MutationCompactionTest, LongTraceStaysCorrectWithBoundedPool) {
  RunSeededCases(
      "long mutation trace pool bound", /*cases=*/2,
      PropertyBaseSeed(0xC017AC7), [&](Rng& rng, uint64_t seed) {
        Dataset initial =
            GeneratedDataset(16, kDomain, Distribution::kIndependent, seed);
        std::vector<Point2D> mirror = initial.points();
        auto built = IncrementalQuadrantDiagram::Create(std::move(initial));
        ASSERT_TRUE(built.ok()) << built.status();
        IncrementalQuadrantDiagram diagram = std::move(built).value();

        for (int step = 0; step < 80; ++step) {
          if (mirror.size() > 2 && rng.NextBounded(3) == 0) {
            const auto victim =
                static_cast<PointId>(rng.NextBounded(mirror.size()));
            ASSERT_TRUE(diagram.Delete(victim).ok());
            mirror.erase(mirror.begin() + victim);
          } else {
            const Point2D p{rng.NextInt(0, kDomain - 1),
                            rng.NextInt(0, kDomain - 1)};
            ASSERT_TRUE(diagram.Insert(p).ok());
            mirror.push_back(p);
          }
          const uint64_t cells = diagram.diagram().grid().num_cells();
          ASSERT_LE(diagram.diagram().pool().size(), 6 * cells + 16)
              << "pool grew past the compaction bound at step " << step;
          if (step % 8 != 0) continue;
          auto mirror_ds = Dataset::Create(mirror, kDomain);
          ASSERT_TRUE(mirror_ds.ok());
          const SkylineDiagram rebuilt =
              BuildDiagram(*mirror_ds, SkylineQueryType::kQuadrant);
          for (int probe = 0; probe < 4; ++probe) {
            const Point2D q = RandomQueryPoint(rng, diagram.dataset());
            ASSERT_EQ(Sorted(diagram.Query(q)),
                      Sorted(rebuilt.cell_diagram()->Query(q)))
                << "step " << step;
          }
        }
      });
}

// Labels ride along with mutations: inserted labels attach to the new id
// and deletions renumber without detaching any label from its point.
TEST(MutationLabelTest, LabelsFollowPointsAcrossInterleavedMutations) {
  RunSeededCases(
      "labels follow points", /*cases=*/6, PropertyBaseSeed(0x1ABE1),
      [&](Rng& rng, uint64_t seed) {
        (void)seed;
        std::vector<Point2D> points;
        std::vector<std::string> labels;
        for (int i = 0; i < 8; ++i) {
          points.push_back(
              {rng.NextInt(0, kDomain - 1), rng.NextInt(0, kDomain - 1)});
          labels.push_back("seed" + std::to_string(i));
        }
        auto ds = Dataset::Create(points, kDomain, labels);
        ASSERT_TRUE(ds.ok());
        auto diagram = IncrementalQuadrantDiagram::Create(*ds);
        ASSERT_TRUE(diagram.ok());

        std::vector<std::string> mirror = labels;
        for (int step = 0; step < 16; ++step) {
          if (mirror.size() > 2 && rng.NextBernoulli(0.4)) {
            const auto victim =
                static_cast<PointId>(rng.NextBounded(mirror.size()));
            ASSERT_TRUE(diagram->Delete(victim).ok());
            mirror.erase(mirror.begin() + victim);
          } else {
            const std::string label = "ins" + std::to_string(step);
            auto id = diagram->Insert({rng.NextInt(0, kDomain - 1),
                                       rng.NextInt(0, kDomain - 1)},
                                      label);
            ASSERT_TRUE(id.ok());
            mirror.push_back(label);
          }
          ASSERT_EQ(diagram->dataset().size(), mirror.size());
          for (PointId id = 0; id < mirror.size(); ++id) {
            ASSERT_EQ(diagram->dataset().label(id), mirror[id])
                << "step " << step;
          }
        }
      });
}

}  // namespace
}  // namespace skydia
