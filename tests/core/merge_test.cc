#include "src/core/merge.h"

#include <gtest/gtest.h>

#include "src/core/diagram.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::RandomDataset;

TEST(MergeTest, SinglePointProducesTwoPolyominoes) {
  auto ds = Dataset::Create({{4, 4}}, 10);
  ASSERT_TRUE(ds.ok());
  const SkylineDiagram built = testing::BuildDiagram(
      *ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const MergedPolyominoes merged = MergeCells(*built.cell_diagram());
  // Cell (0,0) has result {p0}; the other three cells are empty and
  // 4-connected through (1,1).
  EXPECT_EQ(merged.num_polyominoes(), 2u);
}

TEST(MergeTest, LabelsCoverAllCellsExactlyOnce) {
  const Dataset ds = RandomDataset(30, 24, 5);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const MergedPolyominoes merged = MergeCells(diagram);
  EXPECT_EQ(merged.cell_to_polyomino.size(), diagram.grid().num_cells());
  uint64_t total = 0;
  for (uint32_t cells : merged.polyomino_cells) total += cells;
  EXPECT_EQ(total, diagram.grid().num_cells());
}

TEST(MergeTest, CellsInOnePolyominoShareResults) {
  const Dataset ds = RandomDataset(40, 16, 7);  // ties included
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const MergedPolyominoes merged = MergeCells(diagram);
  const CellGrid& grid = diagram.grid();
  for (uint32_t cy = 0; cy < grid.num_rows(); ++cy) {
    for (uint32_t cx = 0; cx < grid.num_columns(); ++cx) {
      const uint32_t label = merged.cell_to_polyomino[grid.CellIndex(cx, cy)];
      const auto expected = diagram.pool().Get(merged.polyomino_set[label]);
      const auto actual = diagram.CellSkyline(cx, cy);
      EXPECT_TRUE(expected.size() == actual.size() &&
                  std::equal(expected.begin(), expected.end(), actual.begin()));
    }
  }
}

TEST(MergeTest, AdjacentCellsWithDifferentResultsGetDifferentLabels) {
  const Dataset ds = RandomDataset(25, 32, 11);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const MergedPolyominoes merged = MergeCells(diagram);
  const CellGrid& grid = diagram.grid();
  for (uint32_t cy = 0; cy < grid.num_rows(); ++cy) {
    for (uint32_t cx = 0; cx + 1 < grid.num_columns(); ++cx) {
      const auto a = diagram.CellSkyline(cx, cy);
      const auto b = diagram.CellSkyline(cx + 1, cy);
      const bool same_result =
          a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
      const bool same_label =
          merged.cell_to_polyomino[grid.CellIndex(cx, cy)] ==
          merged.cell_to_polyomino[grid.CellIndex(cx + 1, cy)];
      if (!same_result) {
        EXPECT_FALSE(same_label);
      } else {
        EXPECT_TRUE(same_label);
      }
    }
  }
}

TEST(MergeTest, PolyominoesAreConnected) {
  // BFS from one cell of each polyomino over same-label adjacency must reach
  // the whole polyomino.
  const Dataset ds = RandomDataset(20, 20, 13);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const MergedPolyominoes merged = MergeCells(diagram);
  const CellGrid& grid = diagram.grid();
  const uint32_t cols = grid.num_columns();
  const uint32_t rows = grid.num_rows();

  std::vector<uint32_t> first_cell(merged.num_polyominoes(), UINT32_MAX);
  for (uint64_t i = 0; i < merged.cell_to_polyomino.size(); ++i) {
    const uint32_t label = merged.cell_to_polyomino[i];
    if (first_cell[label] == UINT32_MAX) {
      first_cell[label] = static_cast<uint32_t>(i);
    }
  }
  for (uint32_t label = 0; label < merged.num_polyominoes(); ++label) {
    std::vector<uint8_t> visited(cols * rows, 0);
    std::vector<uint32_t> stack = {first_cell[label]};
    visited[first_cell[label]] = 1;
    uint32_t reached = 0;
    while (!stack.empty()) {
      const uint32_t cell = stack.back();
      stack.pop_back();
      ++reached;
      const uint32_t cx = cell % cols;
      const uint32_t cy = cell / cols;
      const auto try_push = [&](uint32_t nx, uint32_t ny) {
        const auto n = static_cast<uint32_t>(grid.CellIndex(nx, ny));
        if (!visited[n] && merged.cell_to_polyomino[n] == label) {
          visited[n] = 1;
          stack.push_back(n);
        }
      };
      if (cx > 0) try_push(cx - 1, cy);
      if (cx + 1 < cols) try_push(cx + 1, cy);
      if (cy > 0) try_push(cx, cy - 1);
      if (cy + 1 < rows) try_push(cx, cy + 1);
    }
    EXPECT_EQ(reached, merged.polyomino_cells[label]) << "label " << label;
  }
}

}  // namespace
}  // namespace skydia
