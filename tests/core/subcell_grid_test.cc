#include "src/core/subcell_grid.h"

#include <gtest/gtest.h>

#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::RandomDataset;

TEST(SubcellAxisTest, LinesArePairwiseSumsInDoubledCoordinates) {
  // Values {1, 4}: lines at 2, 5, 8 (doubled: 2*1, 1+4, 2*4).
  const SubcellAxis axis({1, 4});
  ASSERT_EQ(axis.num_lines(), 3u);
  EXPECT_EQ(axis.line(0), 2);
  EXPECT_EQ(axis.line(1), 5);
  EXPECT_EQ(axis.line(2), 8);
  EXPECT_EQ(axis.num_slabs(), 4u);
}

TEST(SubcellAxisTest, CoincidentSumsCollapse) {
  // Values {0, 2, 4}: sums 0,2,4,4,6,8 -> lines {0,2,4,6,8}.
  const SubcellAxis axis({0, 2, 4});
  EXPECT_EQ(axis.num_lines(), 5u);
}

TEST(SubcellAxisTest, RepresentativesAreStrictlyInterior) {
  const SubcellAxis axis({1, 4, 9});
  for (uint32_t slab = 0; slab < axis.num_slabs(); ++slab) {
    const int64_t rep4 = axis.Representative4(slab);
    if (slab > 0) {
      EXPECT_GT(rep4, 2 * axis.line(slab - 1));
    }
    if (slab < axis.num_lines()) {
      EXPECT_LT(rep4, 2 * axis.line(slab));
    }
  }
}

TEST(SubcellAxisTest, RepresentativeNeverHitsAMappedPoint) {
  // Mapped point positions in 4x space are 4*value = 2*(point line); the
  // representative is strictly between adjacent lines, so never equal.
  const SubcellAxis axis({3, 5, 6, 11});
  for (uint32_t slab = 0; slab < axis.num_slabs(); ++slab) {
    const int64_t rep4 = axis.Representative4(slab);
    for (const int64_t v : {3, 5, 6, 11}) {
      EXPECT_NE(rep4, 4 * v);
    }
  }
}

TEST(SubcellAxisTest, SlabOfDoubledHalfOpen) {
  const SubcellAxis axis({1, 4});  // lines 2, 5, 8
  EXPECT_EQ(axis.SlabOfDoubled(1), 0u);
  EXPECT_EQ(axis.SlabOfDoubled(2), 0u);  // on line 0 -> left slab
  EXPECT_EQ(axis.SlabOfDoubled(3), 1u);
  EXPECT_EQ(axis.SlabOfDoubled(5), 1u);
  EXPECT_EQ(axis.SlabOfDoubled(6), 2u);
  EXPECT_EQ(axis.SlabOfDoubled(9), 3u);
  EXPECT_TRUE(axis.IsOnLine(5));
  EXPECT_FALSE(axis.IsOnLine(6));
}

TEST(SubcellGridTest, DimensionsMultiply) {
  auto ds = Dataset::Create({{1, 1}, {4, 9}}, 16);
  ASSERT_TRUE(ds.ok());
  const SubcellGrid grid(*ds);
  // x values {1,4} -> 3 lines -> 4 slabs; y values {1,9} -> 3 lines -> 4.
  EXPECT_EQ(grid.num_columns(), 4u);
  EXPECT_EQ(grid.num_rows(), 4u);
  EXPECT_EQ(grid.num_subcells(), 16u);
}

TEST(SubcellGridTest, ContributorsCoverBisectorParties) {
  auto ds = Dataset::Create({{1, 0}, {4, 0}, {9, 0}}, 16);
  ASSERT_TRUE(ds.ok());
  const SubcellGrid grid(*ds);
  const SubcellAxis& x = grid.x_axis();
  // Lines (doubled): 2(=2*1), 5(=1+4), 8(=2*4), 10(=1+9), 13(=4+9), 18(=2*9).
  ASSERT_EQ(x.num_lines(), 6u);
  EXPECT_EQ(grid.ContributorsX(0), (std::vector<PointId>{0}));        // 2*1
  EXPECT_EQ(grid.ContributorsX(1), (std::vector<PointId>{0, 1}));     // 1+4
  EXPECT_EQ(grid.ContributorsX(2), (std::vector<PointId>{1}));        // 2*4
  EXPECT_EQ(grid.ContributorsX(3), (std::vector<PointId>{0, 2}));     // 1+9
  EXPECT_EQ(grid.ContributorsX(4), (std::vector<PointId>{1, 2}));     // 4+9
  EXPECT_EQ(grid.ContributorsX(5), (std::vector<PointId>{2}));        // 2*9
}

TEST(SubcellGridTest, CoincidentLinesMergeContributors) {
  // Points at x = 0, 2, 4: line 4 is both 2*2 and 0+4.
  auto ds = Dataset::Create({{0, 0}, {2, 0}, {4, 0}}, 8);
  ASSERT_TRUE(ds.ok());
  const SubcellGrid grid(*ds);
  const SubcellAxis& x = grid.x_axis();
  ASSERT_EQ(x.num_lines(), 5u);  // 0, 2, 4, 6, 8
  EXPECT_EQ(x.line(2), 4);
  EXPECT_EQ(grid.ContributorsX(2), (std::vector<PointId>{0, 1, 2}));
}

TEST(SubcellGridTest, LineCountBoundedByDomain) {
  const Dataset ds = RandomDataset(64, 16, 3);
  const SubcellGrid grid(ds);
  // Doubled coordinates range over [0, 2*(s-1)] -> at most 2s-1 lines.
  EXPECT_LE(grid.x_axis().num_lines(), 2u * 16 - 1);
  EXPECT_LE(grid.y_axis().num_lines(), 2u * 16 - 1);
}

}  // namespace
}  // namespace skydia
