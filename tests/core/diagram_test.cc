#include "src/core/diagram.h"

#include <gtest/gtest.h>

#include "src/datagen/real_data.h"
#include "src/datagen/workload.h"
#include "src/skyline/query.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::RandomDataset;

TEST(SkylineDiagramTest, RejectsEmptyDataset) {
  auto ds = Dataset::Create({}, 16);
  ASSERT_TRUE(ds.ok());
  auto diagram =
      SkylineDiagram::Build(std::move(ds).value(), SkylineQueryType::kQuadrant);
  EXPECT_FALSE(diagram.ok());
  EXPECT_EQ(diagram.status().code(), StatusCode::kInvalidArgument);
}

TEST(SkylineDiagramTest, QuadrantQueryExactEverywhere) {
  const Dataset ds = RandomDataset(20, 12, 3);
  auto built = SkylineDiagram::Build(RandomDataset(20, 12, 3),
                                     SkylineQueryType::kQuadrant);
  ASSERT_TRUE(built.ok());
  for (int64_t x = 0; x < 12; ++x) {
    for (int64_t y = 0; y < 12; ++y) {
      EXPECT_EQ(built->QueryExact({x, y}), FirstQuadrantSkyline(ds, {x, y}))
          << "(" << x << ", " << y << ")";
    }
  }
}

TEST(SkylineDiagramTest, GlobalQueryExactEverywhere) {
  const Dataset ds = RandomDataset(18, 12, 5);
  auto built = SkylineDiagram::Build(RandomDataset(18, 12, 5),
                                     SkylineQueryType::kGlobal);
  ASSERT_TRUE(built.ok());
  for (int64_t x = 0; x < 12; ++x) {
    for (int64_t y = 0; y < 12; ++y) {
      EXPECT_EQ(built->QueryExact({x, y}), GlobalSkyline(ds, {x, y}))
          << "(" << x << ", " << y << ")";
    }
  }
}

TEST(SkylineDiagramTest, DynamicQueryExactEverywhere) {
  const Dataset ds = RandomDataset(10, 10, 7);
  auto built = SkylineDiagram::Build(RandomDataset(10, 10, 7),
                                     SkylineQueryType::kDynamic);
  ASSERT_TRUE(built.ok());
  for (int64_t x = 0; x < 10; ++x) {
    for (int64_t y = 0; y < 10; ++y) {
      EXPECT_EQ(built->QueryExact({x, y}), DynamicSkyline(ds, {x, y}))
          << "(" << x << ", " << y << ")";
    }
  }
}

TEST(SkylineDiagramTest, AllCellAlgorithmsAgreeThroughFacade) {
  for (const BuildAlgorithm algo :
       {BuildAlgorithm::kAuto, BuildAlgorithm::kBaseline, BuildAlgorithm::kDsg,
        BuildAlgorithm::kScanning}) {
    SkylineDiagram::BuildOptions options;
    options.algorithm = algo;
    auto built = SkylineDiagram::Build(RandomDataset(15, 16, 9),
                                       SkylineQueryType::kQuadrant, options);
    ASSERT_TRUE(built.ok()) << BuildAlgorithmName(algo);
    const Dataset ds = RandomDataset(15, 16, 9);
    const auto result = built->Query({4, 4});
    EXPECT_EQ(std::vector<PointId>(result.begin(), result.end()),
              FirstQuadrantSkyline(ds, {4, 4}));
  }
}

TEST(SkylineDiagramTest, AllDynamicAlgorithmsAgreeThroughFacade) {
  const Dataset reference = RandomDataset(8, 12, 11);
  for (const BuildAlgorithm algo :
       {BuildAlgorithm::kAuto, BuildAlgorithm::kBaseline,
        BuildAlgorithm::kSubset, BuildAlgorithm::kDsg,
        BuildAlgorithm::kScanning}) {
    SkylineDiagram::BuildOptions options;
    options.algorithm = algo;
    auto built = SkylineDiagram::Build(RandomDataset(8, 12, 11),
                                       SkylineQueryType::kDynamic, options);
    ASSERT_TRUE(built.ok()) << BuildAlgorithmName(algo);
    EXPECT_EQ(built->QueryExact({5, 5}), DynamicSkyline(reference, {5, 5}))
        << BuildAlgorithmName(algo);
  }
}

TEST(SkylineDiagramTest, RejectsAlgorithmSemanticsMismatch) {
  // kSubset names a dynamic-only construction; the facade must reject it for
  // cell diagrams instead of silently picking something else.
  SkylineDiagram::BuildOptions options;
  options.algorithm = BuildAlgorithm::kSubset;
  auto built = SkylineDiagram::Build(RandomDataset(10, 16, 13),
                                     SkylineQueryType::kQuadrant, options);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(SkylineDiagramTest, RejectsBadParallelismCombinations) {
  SkylineDiagram::BuildOptions options;
  options.parallelism = 0;
  EXPECT_FALSE(SkylineDiagram::Build(RandomDataset(10, 16, 13),
                                     SkylineQueryType::kQuadrant, options)
                   .ok());
  // Global diagrams have no parallel construction.
  options.parallelism = 4;
  auto global = SkylineDiagram::Build(RandomDataset(10, 16, 13),
                                      SkylineQueryType::kGlobal, options);
  ASSERT_FALSE(global.ok());
  EXPECT_EQ(global.status().code(), StatusCode::kInvalidArgument);
  // A parallel quadrant build only exists for the DSG construction.
  options.algorithm = BuildAlgorithm::kScanning;
  EXPECT_FALSE(SkylineDiagram::Build(RandomDataset(10, 16, 13),
                                     SkylineQueryType::kQuadrant, options)
                   .ok());
}

TEST(SkylineDiagramTest, HotelExampleAllThreeSemantics) {
  const Point2D q = HotelExampleQuery();

  auto quadrant =
      SkylineDiagram::Build(HotelExample(), SkylineQueryType::kQuadrant);
  ASSERT_TRUE(quadrant.ok());
  EXPECT_EQ(quadrant->QueryLabels(q),
            (std::vector<std::string>{"p3", "p8", "p10"}));

  auto global =
      SkylineDiagram::Build(HotelExample(), SkylineQueryType::kGlobal);
  ASSERT_TRUE(global.ok());
  EXPECT_EQ(global->QueryLabels(q),
            (std::vector<std::string>{"p3", "p6", "p8", "p10", "p11"}));

  auto dynamic =
      SkylineDiagram::Build(HotelExample(), SkylineQueryType::kDynamic);
  ASSERT_TRUE(dynamic.ok());
  EXPECT_EQ(dynamic->QueryLabels(q), (std::vector<std::string>{"p6", "p11"}));
}

TEST(SkylineDiagramTest, AccessorsExposeUnderlyingDiagrams) {
  auto quadrant =
      SkylineDiagram::Build(HotelExample(), SkylineQueryType::kQuadrant);
  ASSERT_TRUE(quadrant.ok());
  EXPECT_NE(quadrant->cell_diagram(), nullptr);
  EXPECT_EQ(quadrant->subcell_diagram(), nullptr);
  EXPECT_EQ(quadrant->type(), SkylineQueryType::kQuadrant);

  auto dynamic =
      SkylineDiagram::Build(HotelExample(), SkylineQueryType::kDynamic);
  ASSERT_TRUE(dynamic.ok());
  EXPECT_EQ(dynamic->cell_diagram(), nullptr);
  EXPECT_NE(dynamic->subcell_diagram(), nullptr);
}

TEST(SkylineDiagramTest, EnumNames) {
  EXPECT_STREQ(SkylineQueryTypeName(SkylineQueryType::kQuadrant), "quadrant");
  EXPECT_STREQ(SkylineQueryTypeName(SkylineQueryType::kGlobal), "global");
  EXPECT_STREQ(SkylineQueryTypeName(SkylineQueryType::kDynamic), "dynamic");
  EXPECT_STREQ(DynamicAlgorithmName(DynamicAlgorithm::kSubset), "subset");
  EXPECT_STREQ(QuadrantAlgorithmName(QuadrantAlgorithm::kDsg), "dsg");
  EXPECT_STREQ(BuildAlgorithmName(BuildAlgorithm::kAuto), "auto");
  EXPECT_STREQ(BuildAlgorithmName(BuildAlgorithm::kScanning), "scanning");
}

TEST(SkylineDiagramTest, ParseRoundTrips) {
  for (const BuildAlgorithm algo :
       {BuildAlgorithm::kAuto, BuildAlgorithm::kBaseline, BuildAlgorithm::kDsg,
        BuildAlgorithm::kSubset, BuildAlgorithm::kScanning}) {
    auto parsed = ParseBuildAlgorithm(BuildAlgorithmName(algo));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, algo);
  }
  EXPECT_FALSE(ParseBuildAlgorithm("fastest").ok());
  for (const SkylineQueryType type :
       {SkylineQueryType::kQuadrant, SkylineQueryType::kGlobal,
        SkylineQueryType::kDynamic}) {
    auto parsed = ParseSkylineQueryType(SkylineQueryTypeName(type));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, type);
  }
  EXPECT_FALSE(ParseSkylineQueryType("voronoi").ok());
}

}  // namespace
}  // namespace skydia
