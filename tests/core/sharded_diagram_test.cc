#include "src/core/sharded_diagram.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/common/thread_pool.h"
#include "src/core/diagram.h"
#include "src/core/serialize.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::BuildDiagram;
using skydia::testing::RandomDataset;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

/// Builds a diagram over a seeded random dataset, round-trips it through the
/// serialized form (the only way to construct a ServableDiagram) and returns
/// it shared, ready for sharding.
std::shared_ptr<const ServableDiagram> LoadFixture(SkylineQueryType type,
                                                   size_t n, int64_t domain,
                                                   uint64_t seed,
                                                   const char* name) {
  const Dataset dataset = RandomDataset(n, domain, seed);
  const SkylineDiagram built = BuildDiagram(dataset, type);
  const std::string path = TempPath(name);
  if (type == SkylineQueryType::kDynamic) {
    SKYDIA_CHECK(
        SaveSubcellDiagram(built.dataset(), *built.subcell_diagram(), path)
            .ok());
  } else {
    SKYDIA_CHECK(
        SaveCellDiagram(built.dataset(), *built.cell_diagram(), path).ok());
  }
  auto loaded = ServableDiagram::Load(path, {}, type == SkylineQueryType::kDynamic
                                                   ? SkylineQueryType::kQuadrant
                                                   : type);
  SKYDIA_CHECK(loaded.ok());
  return std::make_shared<const ServableDiagram>(std::move(loaded).value());
}

/// Query points covering the interesting positions: corners, interior,
/// out-of-domain, and positions exactly on data coordinates (stripe
/// boundaries live on data y values, so these exercise boundary routing).
std::vector<Point2D> ProbeQueries(const Dataset& dataset, int64_t domain,
                                  uint64_t seed) {
  std::vector<Point2D> queries = {{0, 0},
                                  {domain - 1, domain - 1},
                                  {-5, domain / 2},
                                  {domain / 2, -5},
                                  {domain + 100, domain + 100}};
  for (PointId id = 0; id < dataset.size(); id += 3) {
    const Point2D p = dataset.point(id);
    queries.push_back(p);                    // exactly on both lines
    queries.push_back({p.x + 1, p.y});       // on a y boundary only
    queries.push_back({p.x, p.y - 1});       // just below a y boundary
  }
  Rng rng(seed);
  for (int i = 0; i < 500; ++i) {
    queries.push_back({rng.NextInt(-2, domain + 2),
                       rng.NextInt(-2, domain + 2)});
  }
  return queries;
}

TEST(ShardedDiagramTest, StripesPartitionTheRowsExactly) {
  auto base = LoadFixture(SkylineQueryType::kQuadrant, 128, 1024, 11,
                          "sharded_rows.skd");
  auto sharded = ShardedServableDiagram::Create(base, {.num_shards = 5});
  ASSERT_TRUE(sharded.ok());
  EXPECT_EQ(sharded->num_shards(), 5);
  const auto stats = sharded->Stats();
  ASSERT_EQ(stats.size(), 5u);
  EXPECT_EQ(stats.front().row_begin, 0u);
  for (size_t s = 1; s < stats.size(); ++s) {
    EXPECT_EQ(stats[s].row_begin, stats[s - 1].row_end);
    EXPECT_GT(stats[s].row_end, stats[s].row_begin);
  }
}

TEST(ShardedDiagramTest, SingleQueriesMatchTheUnshardedEngine) {
  auto base = LoadFixture(SkylineQueryType::kQuadrant, 200, 512, 3,
                          "sharded_single.skd");
  for (const int shards : {1, 2, 4, 7}) {
    auto sharded =
        ShardedServableDiagram::Create(base, {.num_shards = shards});
    ASSERT_TRUE(sharded.ok());
    for (const Point2D& q : ProbeQueries(base->dataset(), 512, 17)) {
      EXPECT_EQ(sharded->AnswerSetId(q), base->engine().AnswerSetId(q))
          << "shards=" << shards << " q=(" << q.x << "," << q.y << ")";
    }
  }
}

TEST(ShardedDiagramTest, BatchScatterGatherMatchesSequentialAndEngine) {
  auto base = LoadFixture(SkylineQueryType::kQuadrant, 300, 2048, 5,
                          "sharded_batch.skd");
  const auto queries = ProbeQueries(base->dataset(), 2048, 23);
  auto sharded = ShardedServableDiagram::Create(base, {.num_shards = 4});
  ASSERT_TRUE(sharded.ok());

  std::vector<SetId> expected;
  base->engine().AnswerBatch(queries, &expected);

  std::vector<SetId> sequential;
  sharded->AnswerBatch(queries, &sequential, /*pool=*/nullptr);
  EXPECT_EQ(sequential, expected);

  ThreadPool pool(4);
  std::vector<SetId> parallel;
  sharded->AnswerBatch(queries, &parallel, &pool);
  EXPECT_EQ(parallel, expected);

  // Every query was routed somewhere, and the counters add up. Each batch
  // routes all queries once; the single-query probes above are not counted
  // here because this is a fresh sharded view... so: 2 full batches.
  uint64_t routed = 0;
  for (const ShardStats& s : sharded->Stats()) routed += s.queries;
  EXPECT_EQ(routed, 2 * queries.size());
}

TEST(ShardedDiagramTest, SubcellDiagramShardsAnswerDynamicSemantics) {
  auto base = LoadFixture(SkylineQueryType::kDynamic, 150, 1024, 9,
                          "sharded_dynamic.skd");
  auto sharded = ShardedServableDiagram::Create(base, {.num_shards = 3});
  ASSERT_TRUE(sharded.ok());
  const auto queries = ProbeQueries(base->dataset(), 1024, 31);
  std::vector<SetId> expected;
  base->engine().AnswerBatch(queries, &expected);
  std::vector<SetId> got;
  sharded->AnswerBatch(queries, &got);
  EXPECT_EQ(got, expected);
  for (const Point2D& q : queries) {
    EXPECT_EQ(sharded->AnswerSetId(q), base->engine().AnswerSetId(q));
  }
}

TEST(ShardedDiagramTest, ShardCountClampsToTheRowCount) {
  auto base = LoadFixture(SkylineQueryType::kQuadrant, 8, 64, 2,
                          "sharded_clamp.skd");
  auto sharded =
      ShardedServableDiagram::Create(base, {.num_shards = 100000});
  ASSERT_TRUE(sharded.ok());
  // 8 points -> at most 9 rows; every shard still owns >= 1 row.
  EXPECT_LE(sharded->num_shards(), 9);
  EXPECT_GE(sharded->num_shards(), 1);
  for (const Point2D& q : ProbeQueries(base->dataset(), 64, 41)) {
    EXPECT_EQ(sharded->AnswerSetId(q), base->engine().AnswerSetId(q));
  }
}

TEST(ShardedDiagramTest, MemoCountsHitsOnRepeatedQueries) {
  auto base = LoadFixture(SkylineQueryType::kQuadrant, 64, 256, 13,
                          "sharded_memo.skd");
  auto sharded = ShardedServableDiagram::Create(
      base, {.num_shards = 2, .memo_entries = 64});
  ASSERT_TRUE(sharded.ok());
  std::vector<Point2D> repeated(512, Point2D{100, 100});
  std::vector<SetId> out;
  sharded->AnswerBatch(repeated, &out);
  uint64_t hits = 0;
  for (const ShardStats& s : sharded->Stats()) hits += s.memo_hits;
  EXPECT_GE(hits, 500u);
}

TEST(ShardedDiagramTest, NullBaseIsRejected) {
  auto sharded = ShardedServableDiagram::Create(nullptr, {.num_shards = 2});
  EXPECT_FALSE(sharded.ok());
}

}  // namespace
}  // namespace skydia
