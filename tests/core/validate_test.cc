// ValidateDiagram parity: every builder of every family must produce a
// diagram that passes the full invariant suite (structural + sampled
// ground-truth) on every distribution, and deliberate corruption of the
// interned pool or the cell table must be detected.
#include "src/core/validate.h"

#include <gtest/gtest.h>

#include "src/core/diagram.h"
#include "src/core/dynamic_scanning.h"
#include "src/core/global_diagram.h"
#include "src/core/merge.h"
#include "src/core/quadrant_sweeping.h"
#include "src/core/serialize.h"
#include "src/datagen/distributions.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::BuildDiagram;
using skydia::testing::RandomDataset;

Dataset MakeDataset(Distribution distribution, uint64_t seed) {
  return testing::GeneratedDataset(24, 48, distribution, seed);
}

constexpr Distribution kDistributions[] = {Distribution::kIndependent,
                                           Distribution::kCorrelated,
                                           Distribution::kAnticorrelated};

ValidateOptions Sampled(size_t samples, CellSemantics semantics) {
  ValidateOptions options;
  options.sample_queries = samples;
  options.semantics = semantics;
  return options;
}

TEST(ValidateParityTest, QuadrantBuildersPassOnEveryDistribution) {
  for (const Distribution distribution : kDistributions) {
    const Dataset ds = MakeDataset(distribution, 7);
    for (const BuildAlgorithm algorithm :
         {BuildAlgorithm::kBaseline, BuildAlgorithm::kDsg,
          BuildAlgorithm::kScanning}) {
      const SkylineDiagram built =
          BuildDiagram(ds, SkylineQueryType::kQuadrant, algorithm);
      const Status status = ValidateDiagram(
          ds, *built.cell_diagram(), Sampled(32, CellSemantics::kQuadrant));
      EXPECT_TRUE(status.ok())
          << DistributionName(distribution) << "/"
          << BuildAlgorithmName(algorithm) << ": " << status;
    }
  }
}

TEST(ValidateParityTest, GlobalBuildersPassOnEveryDistribution) {
  for (const Distribution distribution : kDistributions) {
    const Dataset ds = MakeDataset(distribution, 11);
    for (const BuildAlgorithm algorithm :
         {BuildAlgorithm::kBaseline, BuildAlgorithm::kDsg,
          BuildAlgorithm::kScanning}) {
      const SkylineDiagram built =
          BuildDiagram(ds, SkylineQueryType::kGlobal, algorithm);
      const Status status = ValidateDiagram(
          ds, *built.cell_diagram(), Sampled(32, CellSemantics::kGlobal));
      EXPECT_TRUE(status.ok())
          << DistributionName(distribution) << "/"
          << BuildAlgorithmName(algorithm) << ": " << status;
    }
  }
}

TEST(ValidateParityTest, DynamicBuildersPassOnEveryDistribution) {
  for (const Distribution distribution : kDistributions) {
    const Dataset ds = MakeDataset(distribution, 13);
    for (const BuildAlgorithm algorithm :
         {BuildAlgorithm::kBaseline, BuildAlgorithm::kSubset,
          BuildAlgorithm::kScanning}) {
      const SkylineDiagram built =
          BuildDiagram(ds, SkylineQueryType::kDynamic, algorithm);
      const Status status = ValidateDiagram(
          ds, *built.subcell_diagram(), Sampled(32, CellSemantics::kAuto));
      EXPECT_TRUE(status.ok())
          << DistributionName(distribution) << "/"
          << BuildAlgorithmName(algorithm) << ": " << status;
    }
  }
}

TEST(ValidateParityTest, ParallelBuildersPass) {
  for (const Distribution distribution : kDistributions) {
    const Dataset ds = MakeDataset(distribution, 17);
    for (const int threads : {2, 5}) {
      const SkylineDiagram cells =
          BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kAuto,
                       threads);
      const Status cell_status = ValidateDiagram(
          ds, *cells.cell_diagram(), Sampled(16, CellSemantics::kQuadrant));
      EXPECT_TRUE(cell_status.ok()) << cell_status;

      const SkylineDiagram subcells =
          BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kAuto,
                       threads);
      const Status subcell_status = ValidateDiagram(
          ds, *subcells.subcell_diagram(), Sampled(16, CellSemantics::kAuto));
      EXPECT_TRUE(subcell_status.ok()) << subcell_status;
    }
  }
}

TEST(ValidateParityTest, SweepingPartitionMatchesValidatedDiagram) {
  // The sweeping construction emits polyomino outlines, not a cell table, so
  // it is cross-validated against a validated scanning diagram: the vertex
  // walk must find exactly the polyominoes that MergeCells extracts.
  // Positive coordinates: coordinate-0 points would pin degenerate cell
  // strips the geometric vertex walk cannot see (see sweeping_test.cc).
  const Dataset ds = skydia::testing::RandomDistinctPositiveDataset(18, 48, 19);
  const SkylineDiagram built =
      BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  ASSERT_TRUE(
      ValidateDiagram(ds, diagram, Sampled(32, CellSemantics::kQuadrant)).ok());
  const auto swept = BuildQuadrantSweeping(ds);
  ASSERT_TRUE(swept.ok());
  EXPECT_EQ(swept->polyominoes.size(), MergeCells(diagram).num_polyominoes());
}

TEST(ValidateParityTest, AutoSemanticsAcceptsBothCellFamilies) {
  const Dataset ds = RandomDataset(20, 24, 3);
  const SkylineDiagram quadrant =
      BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const SkylineDiagram global =
      BuildDiagram(ds, SkylineQueryType::kGlobal, BuildAlgorithm::kScanning);
  EXPECT_TRUE(ValidateDiagram(ds, *quadrant.cell_diagram(),
                              Sampled(48, CellSemantics::kAuto))
                  .ok());
  EXPECT_TRUE(ValidateDiagram(ds, *global.cell_diagram(),
                              Sampled(48, CellSemantics::kAuto))
                  .ok());
  // And the wrong fixed oracle is rejected (the sampled cells of a 20-point
  // dataset inevitably include one where quadrant != global).
  EXPECT_FALSE(ValidateDiagram(ds, *global.cell_diagram(),
                               Sampled(48, CellSemantics::kQuadrant))
                   .ok());
}

// The corruption tests below construct through the direct builder entry
// points on purpose: they mutate diagram internals (set_cell, pool Append),
// and the SkylineDiagram facade only hands out const views.
TEST(ValidateCorruptionTest, DetectsOverwrittenCellResults) {
  const Dataset ds = RandomDataset(16, 24, 5);
  CellDiagram diagram = BuildQuadrantDiagram(ds, QuadrantAlgorithm::kScanning);
  // Cross-wire every cell that disagrees with cell (0, 0) to its result. The
  // structural checks still pass (the ids are valid and the pool untouched);
  // only the sampled ground-truth check can catch it.
  const CellGrid& grid = diagram.grid();
  const SetId first = diagram.cell_set(0, 0);
  size_t corrupted = 0;
  for (uint32_t cy = 0; cy < grid.num_rows(); ++cy) {
    for (uint32_t cx = 0; cx < grid.num_columns(); ++cx) {
      if (diagram.cell_set(cx, cy) != first) {
        diagram.set_cell(cx, cy, first);
        ++corrupted;
      }
    }
  }
  ASSERT_GT(corrupted, grid.num_cells() / 2)
      << "dataset too degenerate for the corruption to be observable";
  ValidateOptions options;
  options.sample_queries = 64;
  options.semantics = CellSemantics::kQuadrant;
  EXPECT_FALSE(ValidateDiagram(ds, diagram, options).ok());
}

TEST(ValidateCorruptionTest, DetectsDuplicatePoolEntry) {
  const Dataset ds = RandomDataset(16, 24, 7);
  CellDiagram diagram = BuildQuadrantDiagram(ds, QuadrantAlgorithm::kScanning);
  ASSERT_GE(diagram.pool().size(), 2u);
  // Append a verbatim copy of an existing set: hash-consing is broken.
  const auto existing = diagram.pool().Get(1);
  diagram.pool().Append(
      std::vector<PointId>(existing.begin(), existing.end()));
  const Status status = ValidateDiagram(ds, diagram);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  // The same diagram passes when canonicality is waived (the duplicate is
  // unreferenced and structurally sound).
  ValidateOptions relaxed;
  relaxed.require_canonical_pool = false;
  EXPECT_TRUE(ValidateDiagram(ds, diagram, relaxed).ok());
}

TEST(ValidateCorruptionTest, DetectsCorruptedSubcellPool) {
  const Dataset ds = RandomDataset(10, 16, 9);
  SubcellDiagram diagram = BuildDynamicScanning(ds);
  const auto existing = diagram.pool().Get(1);
  diagram.pool().Append(
      std::vector<PointId>(existing.begin(), existing.end()));
  EXPECT_FALSE(ValidateDiagram(ds, diagram).ok());
}

TEST(ValidateCorruptionTest, NoDedupDiagramNeedsRelaxedOptions) {
  const Dataset ds = RandomDataset(14, 20, 11);
  DiagramOptions build;
  build.intern_result_sets = false;
  const SkylineDiagram built =
      BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning,
                   /*parallelism=*/1, build);
  const CellDiagram& diagram = *built.cell_diagram();
  EXPECT_FALSE(ValidateDiagram(ds, diagram).ok());
  ValidateOptions relaxed = Sampled(16, CellSemantics::kQuadrant);
  relaxed.require_canonical_pool = false;
  const Status status = ValidateDiagram(ds, diagram, relaxed);
  EXPECT_TRUE(status.ok()) << status;
}

TEST(ValidateOnLoadTest, RoundTrippedDiagramsPassAllFamilies) {
  const Dataset ds = RandomDataset(18, 24, 13);
  ParseOptions parse;
  parse.validate_structure = true;
  parse.validate.sample_queries = 16;

  const SkylineDiagram quadrant =
      BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  auto loaded_q = ParseCellDiagram(
      SerializeCellDiagram(ds, *quadrant.cell_diagram()), parse);
  ASSERT_TRUE(loaded_q.ok()) << loaded_q.status();

  const SkylineDiagram global =
      BuildDiagram(ds, SkylineQueryType::kGlobal, BuildAlgorithm::kScanning);
  auto loaded_g =
      ParseCellDiagram(SerializeCellDiagram(ds, *global.cell_diagram()), parse);
  ASSERT_TRUE(loaded_g.ok()) << loaded_g.status();

  const SkylineDiagram dynamic =
      BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning);
  auto loaded_d = ParseSubcellDiagram(
      SerializeSubcellDiagram(ds, *dynamic.subcell_diagram()), parse);
  ASSERT_TRUE(loaded_d.ok()) << loaded_d.status();
}

}  // namespace
}  // namespace skydia
