#include "src/core/serialize.h"

#include <cstdio>
#include <cstring>
#include <random>

#include <gtest/gtest.h>

#include "src/common/sha256.h"
#include "src/core/diagram.h"
#include "src/datagen/real_data.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::RandomDataset;

TEST(SerializeTest, CellDiagramRoundTrip) {
  const Dataset ds = RandomDataset(30, 32, 3);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const std::string bytes = SerializeCellDiagram(ds, diagram);
  auto loaded = ParseCellDiagram(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->dataset.points(), ds.points());
  EXPECT_EQ(loaded->dataset.domain_size(), ds.domain_size());
  EXPECT_TRUE(loaded->diagram.SameResults(diagram));
}

TEST(SerializeTest, CellDiagramWithLabelsRoundTrip) {
  const Dataset hotels = HotelExample();
  const SkylineDiagram built = testing::BuildDiagram(
      hotels, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  auto loaded = ParseCellDiagram(SerializeCellDiagram(hotels, diagram));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->dataset.has_labels());
  EXPECT_EQ(loaded->dataset.label(10), "p11");
  EXPECT_TRUE(loaded->diagram.SameResults(diagram));
}

TEST(SerializeTest, SubcellDiagramRoundTrip) {
  const Dataset ds = RandomDataset(12, 16, 5);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning);
  const SubcellDiagram& diagram = *built.subcell_diagram();
  auto loaded = ParseSubcellDiagram(SerializeSubcellDiagram(ds, diagram));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->diagram.SameResults(diagram));
}

TEST(SerializeTest, QueriesSurviveTheRoundTrip) {
  const Dataset ds = RandomDataset(20, 24, 7);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  auto loaded = ParseCellDiagram(SerializeCellDiagram(ds, diagram));
  ASSERT_TRUE(loaded.ok());
  for (int64_t x = 0; x < 24; x += 3) {
    for (int64_t y = 0; y < 24; y += 3) {
      const auto a = diagram.Query({x, y});
      const auto b = loaded->diagram.Query({x, y});
      EXPECT_TRUE(a.size() == b.size() &&
                  std::equal(a.begin(), a.end(), b.begin()));
    }
  }
}

TEST(SerializeTest, FileRoundTrip) {
  const Dataset ds = RandomDataset(15, 20, 9);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const std::string path = ::testing::TempDir() + "/skydia_diagram.skd";
  ASSERT_TRUE(SaveCellDiagram(ds, diagram, path).ok());
  auto loaded = LoadCellDiagram(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->diagram.SameResults(diagram));
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsNotFound) {
  auto loaded = LoadCellDiagram("/no/such/skydia/file.skd");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// --- failure injection -------------------------------------------------------

std::string ValidBytes() {
  const Dataset ds = RandomDataset(10, 16, 11);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  return SerializeCellDiagram(ds, diagram);
}

TEST(SerializeTest, RejectsBadMagic) {
  std::string bytes = ValidBytes();
  bytes[0] ^= 0xFF;
  auto loaded = ParseCellDiagram(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, RejectsEveryBitFlipSomewhere) {
  const std::string valid = ValidBytes();
  // Flip one byte at a spread of positions; the checksum (or an earlier
  // structural check) must catch every one of them.
  for (size_t pos = 8; pos < valid.size(); pos += 37) {
    std::string bytes = valid;
    bytes[pos] ^= 0x5A;
    auto loaded = ParseCellDiagram(bytes);
    EXPECT_FALSE(loaded.ok()) << "undetected corruption at byte " << pos;
  }
}

TEST(SerializeTest, RejectsTruncation) {
  const std::string valid = ValidBytes();
  for (const size_t keep :
       {size_t{0}, size_t{5}, size_t{9}, valid.size() / 2, valid.size() - 1}) {
    auto loaded = ParseCellDiagram(valid.substr(0, keep));
    EXPECT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  }
}

TEST(SerializeTest, RejectsTrailingGarbage) {
  std::string bytes = ValidBytes();
  bytes += "extra";
  auto loaded = ParseCellDiagram(bytes);
  EXPECT_FALSE(loaded.ok());
}

TEST(SerializeTest, RejectsKindConfusion) {
  // A subcell file must not parse as a cell diagram and vice versa.
  const Dataset ds = RandomDataset(8, 12, 13);
  const SkylineDiagram dynamic = testing::BuildDiagram(
      ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning);
  const std::string sub_bytes =
      SerializeSubcellDiagram(ds, *dynamic.subcell_diagram());
  EXPECT_FALSE(ParseCellDiagram(sub_bytes).ok());

  const SkylineDiagram cells = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const std::string cell_bytes =
      SerializeCellDiagram(ds, *cells.cell_diagram());
  EXPECT_FALSE(ParseSubcellDiagram(cell_bytes).ok());
}

// --- v2 pool offset-table hardening ------------------------------------------
//
// The checksum catches random damage, but a malicious (or buggy) writer can
// produce a correctly checksummed blob whose pool offset table points outside
// the arena buffer, or whose header demands absurd allocations. These must be
// rejected by the structural checks with a Corruption status — never by
// reading out of bounds or by attempting a multi-gigabyte allocation.

uint64_t ReadU64At(const std::string& bytes, size_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= uint64_t{static_cast<uint8_t>(bytes[pos + i])} << (8 * i);
  }
  return v;
}

void WriteU64At(std::string* bytes, size_t pos, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*bytes)[pos + i] = static_cast<char>(v >> (8 * i));
  }
}

void WriteU32At(std::string* bytes, size_t pos, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*bytes)[pos + i] = static_cast<char>(v >> (8 * i));
  }
}

// Re-signs a hand-corrupted blob so only the structural checks can reject it.
void Rechecksum(std::string* bytes) {
  const size_t body = bytes->size() - 32;
  const Sha256Digest digest = Sha256::Hash(bytes->data(), body);
  std::memcpy(bytes->data() + body, digest.data(), digest.size());
}

// Byte layout of a label-free v2 cell blob (see serialize.cc file comment):
// magic+version+kind (9), dataset (8 domain + 8 n + 16n points + 1 label
// flag), then the pool block.
struct PoolLayout {
  size_t header_pos;  // num_sets u64, buffer_len u64
  size_t buffer_pos;
  size_t table_pos;   // num_sets x (offset u64, length u32)
  uint64_t num_sets;
  uint64_t buffer_len;
};

PoolLayout LocatePool(const std::string& bytes) {
  PoolLayout layout;
  const uint64_t n = ReadU64At(bytes, 9 + 8);
  layout.header_pos = 9 + 16 + 16 * n + 1;
  layout.num_sets = ReadU64At(bytes, layout.header_pos);
  layout.buffer_len = ReadU64At(bytes, layout.header_pos + 8);
  layout.buffer_pos = layout.header_pos + 16;
  layout.table_pos = layout.buffer_pos + 4 * layout.buffer_len;
  return layout;
}

TEST(SerializeTest, RejectsOffsetTablePointingPastBufferEnd) {
  std::string bytes = ValidBytes();
  const PoolLayout pool = LocatePool(bytes);
  ASSERT_GE(pool.num_sets, 2u);
  // Point record 1 far past the arena buffer and re-sign the blob.
  WriteU64At(&bytes, pool.table_pos + 12, pool.buffer_len + 1000);
  Rechecksum(&bytes);
  auto loaded = ParseCellDiagram(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, RejectsRecordLengthOverrunningBuffer) {
  std::string bytes = ValidBytes();
  const PoolLayout pool = LocatePool(bytes);
  ASSERT_GE(pool.num_sets, 2u);
  // Record 1 keeps its canonical offset but claims more members than the
  // buffer holds.
  WriteU32At(&bytes, pool.table_pos + 12 + 8,
             static_cast<uint32_t>(pool.buffer_len + 5));
  Rechecksum(&bytes);
  auto loaded = ParseCellDiagram(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, RejectsImplausibleSetCountWithoutAllocating) {
  std::string bytes = ValidBytes();
  const PoolLayout pool = LocatePool(bytes);
  // 2^31 sets would demand an 8 GiB offset-table allocation before the fix;
  // the reader must reject against the actual payload size instead.
  WriteU64At(&bytes, pool.header_pos, uint64_t{1} << 31);
  Rechecksum(&bytes);
  auto loaded = ParseCellDiagram(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, RejectsNonCanonicalGapInOffsetTable) {
  std::string bytes = ValidBytes();
  const PoolLayout pool = LocatePool(bytes);
  ASSERT_GE(pool.num_sets, 3u);
  // Shift record 2 forward by one element: records must tile back to back.
  const uint64_t offset = ReadU64At(bytes, pool.table_pos + 24);
  WriteU64At(&bytes, pool.table_pos + 24, offset + 1);
  Rechecksum(&bytes);
  auto loaded = ParseCellDiagram(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

// --- format versioning -------------------------------------------------------

#include "tests/core/serialize_v1_fixture.inc"

TEST(SerializeTest, WritesVersion2Magic) {
  const std::string bytes = ValidBytes();
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes.substr(0, 8), "SKYDIAG2");
}

TEST(SerializeTest, V1CellFixtureStillLoads) {
  const std::string bytes(kV1CellBlob, kV1CellBlob_len);
  ASSERT_EQ(bytes.substr(0, 8), "SKYDIAG1");
  auto loaded = ParseCellDiagram(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // The blob was written for exactly this dataset/diagram; the v1 reader
  // must reproduce it content-identically.
  const Dataset ds = RandomDataset(10, 16, 11);
  EXPECT_EQ(loaded->dataset.points(), ds.points());
  const SkylineDiagram rebuilt = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  EXPECT_TRUE(loaded->diagram.SameResults(*rebuilt.cell_diagram()));
}

TEST(SerializeTest, V1SubcellFixtureStillLoads) {
  const std::string bytes(kV1SubcellBlob, kV1SubcellBlob_len);
  ASSERT_EQ(bytes.substr(0, 8), "SKYDIAG1");
  auto loaded = ParseSubcellDiagram(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  const Dataset ds = RandomDataset(8, 12, 13);
  EXPECT_EQ(loaded->dataset.points(), ds.points());
  const SkylineDiagram rebuilt = testing::BuildDiagram(
      ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning);
  EXPECT_TRUE(loaded->diagram.SameResults(*rebuilt.subcell_diagram()));
}

TEST(SerializeTest, V1RoundTripsThroughV2) {
  // Load the v1 fixture, re-serialize (always v2), reload: still equal.
  auto loaded = ParseCellDiagram(std::string(kV1CellBlob, kV1CellBlob_len));
  ASSERT_TRUE(loaded.ok());
  const std::string v2 = SerializeCellDiagram(loaded->dataset, loaded->diagram);
  EXPECT_EQ(v2.substr(0, 8), "SKYDIAG2");
  auto reloaded = ParseCellDiagram(v2);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_TRUE(reloaded->diagram.SameResults(loaded->diagram));
}

TEST(SerializeTest, RejectsUnknownVersion) {
  std::string bytes = ValidBytes();
  bytes[7] = '3';
  auto loaded = ParseCellDiagram(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

// --- adversarial inputs (fuzz corpus regressions) ----------------------------

TEST(SerializeTest, RejectsEveryTruncationLength) {
  // Exhaustive version of RejectsTruncation: every proper prefix of a
  // valid blob is corrupt — no prefix length may parse, hang, or crash.
  const std::string valid = ValidBytes();
  for (size_t keep = 0; keep < valid.size(); ++keep) {
    auto loaded = ParseCellDiagram(valid.substr(0, keep));
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " of " << valid.size();
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  }
}

TEST(SerializeTest, RejectsRandomGarbage) {
  // Deterministic garbage of assorted lengths through both readers; the
  // odds of fabricating a valid checksum are nil, so everything must be
  // rejected without throwing or over-allocating.
  std::mt19937_64 rng(0xD1A62A11u);
  for (int round = 0; round < 64; ++round) {
    std::string bytes((rng() % 512) + 1, '\0');
    for (char& c : bytes) c = static_cast<char>(rng());
    EXPECT_FALSE(ParseCellDiagram(bytes).ok());
    EXPECT_FALSE(ParseSubcellDiagram(bytes).ok());
  }
}

TEST(SerializeTest, ReserializeIsByteIdentical) {
  // The fuzz harness's core invariant as a unit test: parsing a v2 blob
  // and serializing the result reproduces the input byte for byte (the
  // format is canonical — one diagram, one encoding).
  const std::string valid = ValidBytes();
  auto loaded = ParseCellDiagram(valid);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(SerializeCellDiagram(loaded->dataset, loaded->diagram), valid);
}

TEST(SerializeTest, NoDedupPoolSurvives) {
  // Diagrams built without interning store duplicate sets; Append-based
  // reconstruction must keep cell->content intact.
  const Dataset ds = RandomDataset(12, 16, 15);
  DiagramOptions options;
  options.intern_result_sets = false;
  const SkylineDiagram built =
      testing::BuildDiagram(ds, SkylineQueryType::kQuadrant,
                            BuildAlgorithm::kScanning, /*parallelism=*/1,
                            options);
  const CellDiagram& diagram = *built.cell_diagram();
  auto loaded = ParseCellDiagram(SerializeCellDiagram(ds, diagram));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->diagram.SameResults(diagram));
}

}  // namespace
}  // namespace skydia
