#include "src/core/serialize.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "src/core/dynamic_scanning.h"
#include "src/core/quadrant_scanning.h"
#include "src/datagen/real_data.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::RandomDataset;

TEST(SerializeTest, CellDiagramRoundTrip) {
  const Dataset ds = RandomDataset(30, 32, 3);
  const CellDiagram diagram = BuildQuadrantScanning(ds);
  const std::string bytes = SerializeCellDiagram(ds, diagram);
  auto loaded = ParseCellDiagram(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->dataset.points(), ds.points());
  EXPECT_EQ(loaded->dataset.domain_size(), ds.domain_size());
  EXPECT_TRUE(loaded->diagram.SameResults(diagram));
}

TEST(SerializeTest, CellDiagramWithLabelsRoundTrip) {
  const Dataset hotels = HotelExample();
  const CellDiagram diagram = BuildQuadrantScanning(hotels);
  auto loaded = ParseCellDiagram(SerializeCellDiagram(hotels, diagram));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->dataset.has_labels());
  EXPECT_EQ(loaded->dataset.label(10), "p11");
  EXPECT_TRUE(loaded->diagram.SameResults(diagram));
}

TEST(SerializeTest, SubcellDiagramRoundTrip) {
  const Dataset ds = RandomDataset(12, 16, 5);
  const SubcellDiagram diagram = BuildDynamicScanning(ds);
  auto loaded = ParseSubcellDiagram(SerializeSubcellDiagram(ds, diagram));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->diagram.SameResults(diagram));
}

TEST(SerializeTest, QueriesSurviveTheRoundTrip) {
  const Dataset ds = RandomDataset(20, 24, 7);
  const CellDiagram diagram = BuildQuadrantScanning(ds);
  auto loaded = ParseCellDiagram(SerializeCellDiagram(ds, diagram));
  ASSERT_TRUE(loaded.ok());
  for (int64_t x = 0; x < 24; x += 3) {
    for (int64_t y = 0; y < 24; y += 3) {
      const auto a = diagram.Query({x, y});
      const auto b = loaded->diagram.Query({x, y});
      EXPECT_TRUE(a.size() == b.size() &&
                  std::equal(a.begin(), a.end(), b.begin()));
    }
  }
}

TEST(SerializeTest, FileRoundTrip) {
  const Dataset ds = RandomDataset(15, 20, 9);
  const CellDiagram diagram = BuildQuadrantScanning(ds);
  const std::string path = ::testing::TempDir() + "/skydia_diagram.skd";
  ASSERT_TRUE(SaveCellDiagram(ds, diagram, path).ok());
  auto loaded = LoadCellDiagram(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->diagram.SameResults(diagram));
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsNotFound) {
  auto loaded = LoadCellDiagram("/no/such/skydia/file.skd");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// --- failure injection -------------------------------------------------------

std::string ValidBytes() {
  const Dataset ds = RandomDataset(10, 16, 11);
  const CellDiagram diagram = BuildQuadrantScanning(ds);
  return SerializeCellDiagram(ds, diagram);
}

TEST(SerializeTest, RejectsBadMagic) {
  std::string bytes = ValidBytes();
  bytes[0] ^= 0xFF;
  auto loaded = ParseCellDiagram(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, RejectsEveryBitFlipSomewhere) {
  const std::string valid = ValidBytes();
  // Flip one byte at a spread of positions; the checksum (or an earlier
  // structural check) must catch every one of them.
  for (size_t pos = 8; pos < valid.size(); pos += 37) {
    std::string bytes = valid;
    bytes[pos] ^= 0x5A;
    auto loaded = ParseCellDiagram(bytes);
    EXPECT_FALSE(loaded.ok()) << "undetected corruption at byte " << pos;
  }
}

TEST(SerializeTest, RejectsTruncation) {
  const std::string valid = ValidBytes();
  for (const size_t keep :
       {size_t{0}, size_t{5}, size_t{9}, valid.size() / 2, valid.size() - 1}) {
    auto loaded = ParseCellDiagram(valid.substr(0, keep));
    EXPECT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  }
}

TEST(SerializeTest, RejectsTrailingGarbage) {
  std::string bytes = ValidBytes();
  bytes += "extra";
  auto loaded = ParseCellDiagram(bytes);
  EXPECT_FALSE(loaded.ok());
}

TEST(SerializeTest, RejectsKindConfusion) {
  // A subcell file must not parse as a cell diagram and vice versa.
  const Dataset ds = RandomDataset(8, 12, 13);
  const SubcellDiagram dynamic = BuildDynamicScanning(ds);
  const std::string sub_bytes = SerializeSubcellDiagram(ds, dynamic);
  EXPECT_FALSE(ParseCellDiagram(sub_bytes).ok());

  const CellDiagram cells = BuildQuadrantScanning(ds);
  const std::string cell_bytes = SerializeCellDiagram(ds, cells);
  EXPECT_FALSE(ParseSubcellDiagram(cell_bytes).ok());
}

// --- format versioning -------------------------------------------------------

#include "tests/core/serialize_v1_fixture.inc"

TEST(SerializeTest, WritesVersion2Magic) {
  const std::string bytes = ValidBytes();
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes.substr(0, 8), "SKYDIAG2");
}

TEST(SerializeTest, V1CellFixtureStillLoads) {
  const std::string bytes(kV1CellBlob, kV1CellBlob_len);
  ASSERT_EQ(bytes.substr(0, 8), "SKYDIAG1");
  auto loaded = ParseCellDiagram(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // The blob was written for exactly this dataset/diagram; the v1 reader
  // must reproduce it content-identically.
  const Dataset ds = RandomDataset(10, 16, 11);
  EXPECT_EQ(loaded->dataset.points(), ds.points());
  const CellDiagram rebuilt = BuildQuadrantScanning(ds);
  EXPECT_TRUE(loaded->diagram.SameResults(rebuilt));
}

TEST(SerializeTest, V1SubcellFixtureStillLoads) {
  const std::string bytes(kV1SubcellBlob, kV1SubcellBlob_len);
  ASSERT_EQ(bytes.substr(0, 8), "SKYDIAG1");
  auto loaded = ParseSubcellDiagram(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  const Dataset ds = RandomDataset(8, 12, 13);
  EXPECT_EQ(loaded->dataset.points(), ds.points());
  const SubcellDiagram rebuilt = BuildDynamicScanning(ds);
  EXPECT_TRUE(loaded->diagram.SameResults(rebuilt));
}

TEST(SerializeTest, V1RoundTripsThroughV2) {
  // Load the v1 fixture, re-serialize (always v2), reload: still equal.
  auto loaded = ParseCellDiagram(std::string(kV1CellBlob, kV1CellBlob_len));
  ASSERT_TRUE(loaded.ok());
  const std::string v2 = SerializeCellDiagram(loaded->dataset, loaded->diagram);
  EXPECT_EQ(v2.substr(0, 8), "SKYDIAG2");
  auto reloaded = ParseCellDiagram(v2);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_TRUE(reloaded->diagram.SameResults(loaded->diagram));
}

TEST(SerializeTest, RejectsUnknownVersion) {
  std::string bytes = ValidBytes();
  bytes[7] = '3';
  auto loaded = ParseCellDiagram(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(SerializeTest, NoDedupPoolSurvives) {
  // Diagrams built without interning store duplicate sets; Append-based
  // reconstruction must keep cell->content intact.
  const Dataset ds = RandomDataset(12, 16, 15);
  DiagramOptions options;
  options.intern_result_sets = false;
  const CellDiagram diagram = BuildQuadrantScanning(ds, options);
  auto loaded = ParseCellDiagram(SerializeCellDiagram(ds, diagram));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->diagram.SameResults(diagram));
}

}  // namespace
}  // namespace skydia
