#include "src/core/incremental_dynamic.h"

#include <gtest/gtest.h>

#include "src/core/dynamic_scanning.h"
#include "src/skyline/query.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::RandomDataset;

SubcellDiagram RebuildDynamic(const Dataset& dataset) {
  return BuildDynamicScanning(dataset);
}

TEST(IncrementalDynamicTest, InsertMatchesFullRebuildRandom) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const Dataset full = RandomDataset(12, 20, seed);
    std::vector<Point2D> seed_points(full.points().begin(),
                                     full.points().begin() + 5);
    auto incremental = IncrementalDynamicDiagram::Create(
        std::move(Dataset::Create(std::move(seed_points), full.domain_size()))
            .value());
    ASSERT_TRUE(incremental.ok());
    for (size_t i = 5; i < full.size(); ++i) {
      auto id = incremental->Insert(full.point(static_cast<PointId>(i)));
      ASSERT_TRUE(id.ok());
      EXPECT_EQ(*id, i);
      const SubcellDiagram rebuilt = RebuildDynamic(incremental->dataset());
      ASSERT_TRUE(incremental->diagram().SameResults(rebuilt))
          << "seed " << seed << " after insert " << i;
    }
  }
}

TEST(IncrementalDynamicTest, DeleteMatchesFullRebuildRandom) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const Dataset full = RandomDataset(12, 20, seed);
    auto incremental = IncrementalDynamicDiagram::Create(full);
    ASSERT_TRUE(incremental.ok());
    Rng rng(seed * 31);
    for (int step = 0; step < 8; ++step) {
      const auto victim = static_cast<PointId>(rng.NextInt(
          0, static_cast<int64_t>(incremental->dataset().size()) - 1));
      ASSERT_TRUE(incremental->Delete(victim).ok());
      const SubcellDiagram rebuilt = RebuildDynamic(incremental->dataset());
      ASSERT_TRUE(incremental->diagram().SameResults(rebuilt))
          << "seed " << seed << " step " << step;
    }
  }
}

TEST(IncrementalDynamicTest, InterleavedMutationsStayInteriorExact) {
  auto incremental =
      IncrementalDynamicDiagram::Create(RandomDataset(8, 16, 7));
  ASSERT_TRUE(incremental.ok());
  Rng rng(123);
  for (int step = 0; step < 16; ++step) {
    if (incremental->dataset().size() <= 2 || rng.NextInt(0, 2) != 0) {
      ASSERT_TRUE(
          incremental->Insert({rng.NextInt(0, 15), rng.NextInt(0, 15)}).ok());
    } else {
      const auto victim = static_cast<PointId>(rng.NextInt(
          0, static_cast<int64_t>(incremental->dataset().size()) - 1));
      ASSERT_TRUE(incremental->Delete(victim).ok());
    }
  }
  const SubcellDiagram rebuilt = RebuildDynamic(incremental->dataset());
  EXPECT_TRUE(incremental->diagram().SameResults(rebuilt));
}

TEST(IncrementalDynamicTest, DominatedInsertCopiesMostSubcells) {
  // A point wedged between existing ones changes only the subcells where it
  // survives into the dynamic skyline — far fewer than the whole grid.
  auto base = Dataset::Create({{2, 2}, {13, 13}}, 16);
  ASSERT_TRUE(base.ok());
  auto incremental = IncrementalDynamicDiagram::Create(*base);
  ASSERT_TRUE(incremental.ok());
  ASSERT_TRUE(incremental->Insert({3, 3}).ok());
  const SubcellGrid& grid = incremental->diagram().grid();
  EXPECT_LT(incremental->last_insert_recomputed_subcells(),
            grid.num_subcells());
  const SubcellDiagram rebuilt = RebuildDynamic(incremental->dataset());
  EXPECT_TRUE(incremental->diagram().SameResults(rebuilt));
}

TEST(IncrementalDynamicTest, MutationErrorsLeaveDiagramUntouched) {
  auto base = Dataset::Create({{1, 1}, {9, 9}}, 12);
  ASSERT_TRUE(base.ok());
  auto incremental = IncrementalDynamicDiagram::Create(*base);
  ASSERT_TRUE(incremental.ok());
  EXPECT_EQ(incremental->Insert({99, 0}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(incremental->Delete(5).code(), StatusCode::kNotFound);
  ASSERT_TRUE(incremental->Delete(0).ok());
  EXPECT_EQ(incremental->Delete(0).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(incremental->dataset().size(), 1u);
  const SubcellDiagram rebuilt = RebuildDynamic(incremental->dataset());
  EXPECT_TRUE(incremental->diagram().SameResults(rebuilt));
}

}  // namespace
}  // namespace skydia
