#include <gtest/gtest.h>

#include "src/core/diagram.h"
#include "src/datagen/distributions.h"
#include "src/skyline/query.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::BuildDiagram;
using skydia::testing::RandomDataset;
using skydia::testing::RandomDistinctDataset;

// Interior representative of cell (cx, cy) in 4x coordinates.
std::pair<int64_t, int64_t> CellRep4(const CellGrid& grid, uint32_t cx,
                                     uint32_t cy) {
  auto rep = [](int64_t lo_exists, int64_t lo, int64_t hi_exists, int64_t hi) {
    if (!lo_exists) return 4 * hi - 1;
    if (!hi_exists) return 4 * lo + 1;
    return 2 * (lo + hi);
  };
  const int64_t x = rep(cx > 0, cx > 0 ? grid.x_value(cx - 1) : 0,
                        cx < grid.num_distinct_x(),
                        cx < grid.num_distinct_x() ? grid.x_value(cx) : 0);
  const int64_t y = rep(cy > 0, cy > 0 ? grid.y_value(cy - 1) : 0,
                        cy < grid.num_distinct_y(),
                        cy < grid.num_distinct_y() ? grid.y_value(cy) : 0);
  return {x, y};
}

class QuadrantAlgorithmsTest : public ::testing::TestWithParam<BuildAlgorithm> {
 protected:
  SkylineDiagram Build(const Dataset& ds) const {
    return BuildDiagram(ds, SkylineQueryType::kQuadrant, GetParam());
  }
};

TEST_P(QuadrantAlgorithmsTest, EveryCellMatchesInteriorBruteForce) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const Dataset ds = RandomDataset(24, 20, seed);
    const SkylineDiagram built = Build(ds);
    const CellDiagram& diagram = *built.cell_diagram();
    const CellGrid& grid = diagram.grid();
    for (uint32_t cy = 0; cy < grid.num_rows(); ++cy) {
      for (uint32_t cx = 0; cx < grid.num_columns(); ++cx) {
        const auto [qx4, qy4] = CellRep4(grid, cx, cy);
        const auto expected = QuadrantSkylineAt4(ds, qx4, qy4, 0);
        const auto actual = diagram.CellSkyline(cx, cy);
        EXPECT_EQ(std::vector<PointId>(actual.begin(), actual.end()), expected)
            << "seed " << seed << " cell (" << cx << ", " << cy << ")";
      }
    }
  }
}

TEST_P(QuadrantAlgorithmsTest, ExactForEveryIntegerQueryPosition) {
  const Dataset ds = RandomDataset(16, 12, 77);
  const SkylineDiagram built = Build(ds);
  for (int64_t qx = 0; qx < ds.domain_size(); ++qx) {
    for (int64_t qy = 0; qy < ds.domain_size(); ++qy) {
      const Point2D q{qx, qy};
      const auto actual = built.Query(q);
      EXPECT_EQ(std::vector<PointId>(actual.begin(), actual.end()),
                FirstQuadrantSkyline(ds, q))
          << "query " << q;
    }
  }
}

TEST_P(QuadrantAlgorithmsTest, HandlesDuplicatePoints) {
  auto ds = Dataset::Create({{3, 3}, {3, 3}, {1, 5}, {5, 1}}, 8);
  ASSERT_TRUE(ds.ok());
  const SkylineDiagram built = Build(*ds);
  // Query at origin sees all four points; the duplicates are incomparable.
  const auto origin = built.Query({0, 0});
  EXPECT_EQ(std::vector<PointId>(origin.begin(), origin.end()),
            (std::vector<PointId>{0, 1, 2, 3}));
  // Query at the duplicate location keeps both copies.
  const auto at_dup = built.Query({3, 3});
  EXPECT_EQ(std::vector<PointId>(at_dup.begin(), at_dup.end()),
            (std::vector<PointId>{0, 1}));
}

TEST_P(QuadrantAlgorithmsTest, SinglePointDiagram) {
  auto ds = Dataset::Create({{4, 4}}, 10);
  ASSERT_TRUE(ds.ok());
  const SkylineDiagram built = Build(*ds);
  const CellDiagram& diagram = *built.cell_diagram();
  EXPECT_EQ(diagram.grid().num_cells(), 4u);
  EXPECT_EQ(diagram.CellSkyline(0, 0).size(), 1u);
  EXPECT_TRUE(diagram.CellSkyline(1, 0).empty());
  EXPECT_TRUE(diagram.CellSkyline(0, 1).empty());
  EXPECT_TRUE(diagram.CellSkyline(1, 1).empty());
}

INSTANTIATE_TEST_SUITE_P(AllBuilders, QuadrantAlgorithmsTest,
                         ::testing::Values(BuildAlgorithm::kBaseline,
                                           BuildAlgorithm::kDsg,
                                           BuildAlgorithm::kScanning),
                         [](const auto& info) {
                           return std::string(BuildAlgorithmName(info.param));
                         });

struct EqualityCase {
  size_t n;
  int64_t domain;
  Distribution distribution;
};

class CrossAlgorithmEqualityTest
    : public ::testing::TestWithParam<EqualityCase> {};

TEST_P(CrossAlgorithmEqualityTest, AllThreeBuildersAgree) {
  const EqualityCase& c = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const Dataset ds =
        testing::GeneratedDataset(c.n, c.domain, c.distribution, seed);
    const SkylineDiagram baseline = BuildDiagram(
        ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kBaseline);
    const SkylineDiagram dsg =
        BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg);
    const SkylineDiagram scanning = BuildDiagram(
        ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
    EXPECT_TRUE(baseline.cell_diagram()->SameResults(*dsg.cell_diagram()))
        << "seed " << seed;
    EXPECT_TRUE(baseline.cell_diagram()->SameResults(*scanning.cell_diagram()))
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, CrossAlgorithmEqualityTest,
    ::testing::Values(
        EqualityCase{60, 1024, Distribution::kIndependent},
        EqualityCase{60, 1024, Distribution::kCorrelated},
        EqualityCase{60, 1024, Distribution::kAnticorrelated},
        EqualityCase{60, 16, Distribution::kIndependent},  // heavy ties
        EqualityCase{120, 8, Distribution::kClustered},    // extreme ties
        EqualityCase{1, 4, Distribution::kIndependent}),
    [](const auto& info) {
      return std::string(DistributionName(info.param.distribution)) + "_n" +
             std::to_string(info.param.n) + "_s" +
             std::to_string(info.param.domain);
    });

TEST(QuadrantDiagramTest, PaperCellExampleMerging) {
  // The diagram's cell map is the input to merging: neighbouring cells with
  // equal results must intern to the same SetId.
  const Dataset ds = RandomDataset(20, 16, 3);
  const SkylineDiagram built =
      BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const CellGrid& grid = diagram.grid();
  for (uint32_t cy = 0; cy + 1 < grid.num_rows(); ++cy) {
    for (uint32_t cx = 0; cx + 1 < grid.num_columns(); ++cx) {
      const auto a = diagram.CellSkyline(cx, cy);
      const auto b = diagram.CellSkyline(cx + 1, cy);
      if (a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin())) {
        EXPECT_EQ(diagram.cell_set(cx, cy), diagram.cell_set(cx + 1, cy));
      }
    }
  }
}

TEST(QuadrantDiagramTest, StatsAreConsistent) {
  const Dataset ds = RandomDataset(40, 32, 9);
  const SkylineDiagram built =
      BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram::Stats stats = built.cell_diagram()->ComputeStats();
  EXPECT_EQ(stats.num_cells, built.cell_diagram()->grid().num_cells());
  EXPECT_GE(stats.num_distinct_sets, 2u);  // empty + at least one real set
  EXPECT_LE(stats.num_distinct_sets, stats.num_cells + 1);
  EXPECT_GT(stats.approx_bytes, 0u);
}

TEST(QuadrantDiagramTest, InterningAblationKeepsResults) {
  const Dataset ds = RandomDataset(30, 24, 15);
  DiagramOptions no_intern;
  no_intern.intern_result_sets = false;
  const SkylineDiagram with =
      BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const SkylineDiagram without =
      BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning,
                   /*parallelism=*/1, no_intern);
  EXPECT_TRUE(with.cell_diagram()->SameResults(*without.cell_diagram()));
  EXPECT_GE(without.cell_diagram()->ComputeStats().num_distinct_sets,
            with.cell_diagram()->ComputeStats().num_distinct_sets);
}

}  // namespace
}  // namespace skydia
