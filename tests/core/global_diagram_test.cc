#include <gtest/gtest.h>

#include "src/core/diagram.h"
#include "src/datagen/real_data.h"
#include "src/datagen/workload.h"
#include "src/skyline/query.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::BuildDiagram;
using skydia::testing::RandomDataset;

class GlobalDiagramTest : public ::testing::TestWithParam<BuildAlgorithm> {
 protected:
  SkylineDiagram Build(const Dataset& ds) const {
    return BuildDiagram(ds, SkylineQueryType::kGlobal, GetParam());
  }
};

TEST_P(GlobalDiagramTest, InteriorQueriesMatchBruteForce) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const Dataset ds = RandomDataset(30, 24, seed);
    const SkylineDiagram built = Build(ds);
    const CellDiagram& diagram = *built.cell_diagram();
    const CellGrid& grid = diagram.grid();
    const auto queries =
        GenerateInteriorQueries4(ds, 200, seed * 100, /*avoid_bisectors=*/false);
    for (const auto& [qx4, qy4] : queries) {
      // Locate the cell of the interior position: count of grid values
      // strictly below.
      uint32_t cx = 0;
      while (cx < grid.num_distinct_x() && 4 * grid.x_value(cx) < qx4) ++cx;
      uint32_t cy = 0;
      while (cy < grid.num_distinct_y() && 4 * grid.y_value(cy) < qy4) ++cy;
      const auto actual = diagram.CellSkyline(cx, cy);
      EXPECT_EQ(std::vector<PointId>(actual.begin(), actual.end()),
                GlobalSkylineAt4(ds, qx4, qy4))
          << "seed " << seed << " q4 (" << qx4 << ", " << qy4 << ")";
    }
  }
}

TEST_P(GlobalDiagramTest, TieHeavyInteriorQueries) {
  const Dataset ds = RandomDataset(60, 8, 5);
  const SkylineDiagram built = Build(ds);
  const CellDiagram& diagram = *built.cell_diagram();
  const CellGrid& grid = diagram.grid();
  const auto queries =
      GenerateInteriorQueries4(ds, 100, 999, /*avoid_bisectors=*/false);
  for (const auto& [qx4, qy4] : queries) {
    uint32_t cx = 0;
    while (cx < grid.num_distinct_x() && 4 * grid.x_value(cx) < qx4) ++cx;
    uint32_t cy = 0;
    while (cy < grid.num_distinct_y() && 4 * grid.y_value(cy) < qy4) ++cy;
    const auto actual = diagram.CellSkyline(cx, cy);
    EXPECT_EQ(std::vector<PointId>(actual.begin(), actual.end()),
              GlobalSkylineAt4(ds, qx4, qy4));
  }
}

INSTANTIATE_TEST_SUITE_P(AllBuilders, GlobalDiagramTest,
                         ::testing::Values(BuildAlgorithm::kBaseline,
                                           BuildAlgorithm::kDsg,
                                           BuildAlgorithm::kScanning),
                         [](const auto& info) {
                           return std::string(BuildAlgorithmName(info.param));
                         });

TEST(GlobalDiagramTest, BuildersAgreeWithEachOther) {
  const Dataset ds = RandomDataset(40, 20, 9);
  const SkylineDiagram a =
      BuildDiagram(ds, SkylineQueryType::kGlobal, BuildAlgorithm::kBaseline);
  const SkylineDiagram b =
      BuildDiagram(ds, SkylineQueryType::kGlobal, BuildAlgorithm::kDsg);
  const SkylineDiagram c =
      BuildDiagram(ds, SkylineQueryType::kGlobal, BuildAlgorithm::kScanning);
  EXPECT_TRUE(a.cell_diagram()->SameResults(*b.cell_diagram()));
  EXPECT_TRUE(a.cell_diagram()->SameResults(*c.cell_diagram()));
}

TEST(GlobalDiagramTest, GlobalContainsQuadrantResult) {
  const Dataset ds = RandomDataset(35, 30, 13);
  const SkylineDiagram quadrant_built =
      BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const SkylineDiagram global_built =
      BuildDiagram(ds, SkylineQueryType::kGlobal, BuildAlgorithm::kScanning);
  const CellDiagram& quadrant = *quadrant_built.cell_diagram();
  const CellDiagram& global = *global_built.cell_diagram();
  const CellGrid& grid = quadrant.grid();
  for (uint32_t cy = 0; cy < grid.num_rows(); ++cy) {
    for (uint32_t cx = 0; cx < grid.num_columns(); ++cx) {
      const auto q1 = quadrant.CellSkyline(cx, cy);
      const auto g = global.CellSkyline(cx, cy);
      for (PointId id : q1) {
        EXPECT_TRUE(std::binary_search(g.begin(), g.end(), id))
            << "cell (" << cx << ", " << cy << ")";
      }
    }
  }
}

TEST(GlobalDiagramTest, HotelExampleMatchesPaper) {
  const Dataset hotels = HotelExample();
  const SkylineDiagram diagram = BuildDiagram(
      hotels, SkylineQueryType::kGlobal, BuildAlgorithm::kScanning);
  // q = (10, 80) is interior (no hotel has x == 10 or y == 80).
  const auto result = diagram.Query(HotelExampleQuery());
  // Global skyline = {p3, p6, p8, p10, p11} = ids {2, 5, 7, 9, 10}.
  EXPECT_EQ(std::vector<PointId>(result.begin(), result.end()),
            (std::vector<PointId>{2, 5, 7, 9, 10}));
}

}  // namespace
}  // namespace skydia
