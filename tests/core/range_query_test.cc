#include "src/core/range_query.h"

#include <set>

#include <gtest/gtest.h>

#include "src/core/diagram.h"
#include "src/skyline/query.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::RandomDataset;

// Oracle: evaluate the quadrant skyline at every integer position in the
// range and combine.
std::pair<std::set<PointId>, std::set<PointId>> OracleUnionIntersection(
    const Dataset& ds, const QueryRange& range) {
  std::set<PointId> uni;
  std::set<PointId> inter;
  bool first = true;
  for (int64_t x = range.x_lo; x <= range.x_hi; ++x) {
    for (int64_t y = range.y_lo; y <= range.y_hi; ++y) {
      const auto sky = FirstQuadrantSkyline(ds, {x, y});
      uni.insert(sky.begin(), sky.end());
      if (first) {
        inter.insert(sky.begin(), sky.end());
        first = false;
      } else {
        std::set<PointId> next;
        for (PointId id : sky) {
          if (inter.count(id)) next.insert(id);
        }
        inter = std::move(next);
      }
    }
  }
  return {uni, inter};
}

TEST(RangeQueryTest, UnionAndIntersectionMatchIntegerOracle) {
  const Dataset ds = RandomDataset(20, 16, 3);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    QueryRange range;
    range.x_lo = rng.NextInt(0, 15);
    range.x_hi = range.x_lo + rng.NextInt(0, 15 - range.x_lo);
    range.y_lo = rng.NextInt(0, 15);
    range.y_hi = range.y_lo + rng.NextInt(0, 15 - range.y_lo);
    const auto [uni, inter] = OracleUnionIntersection(ds, range);

    auto u = RangeSkylineUnion(diagram, range);
    ASSERT_TRUE(u.ok());
    EXPECT_EQ(std::set<PointId>(u->begin(), u->end()), uni);

    auto x = RangeSkylineIntersection(diagram, range);
    ASSERT_TRUE(x.ok());
    EXPECT_EQ(std::set<PointId>(x->begin(), x->end()), inter);
  }
}

TEST(RangeQueryTest, DegenerateRangeEqualsPointQuery) {
  const Dataset ds = RandomDataset(15, 12, 5);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const QueryRange range{5, 5, 7, 7};
  auto u = RangeSkylineUnion(diagram, range);
  auto x = RangeSkylineIntersection(diagram, range);
  ASSERT_TRUE(u.ok());
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(*u, FirstQuadrantSkyline(ds, {5, 7}));
  EXPECT_EQ(*x, FirstQuadrantSkyline(ds, {5, 7}));
  auto d = RangeDistinctResults(diagram, range);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 1u);
}

TEST(RangeQueryTest, InvertedRangeRejected) {
  const Dataset ds = RandomDataset(5, 8, 7);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  EXPECT_FALSE(RangeSkylineUnion(diagram, {5, 4, 0, 1}).ok());
  EXPECT_FALSE(RangeSkylineIntersection(diagram, {0, 1, 5, 4}).ok());
  EXPECT_FALSE(RangeDistinctResults(diagram, {5, 4, 5, 4}).ok());
}

TEST(RangeQueryTest, WholeDomainUnionIsAllSkylineCandidates) {
  // The union over every query position is exactly the points that appear
  // in some cell's result; each point appears in the cell just below-left
  // of itself, so the union is the whole dataset.
  const Dataset ds = RandomDataset(12, 16, 9);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  auto u = RangeSkylineUnion(diagram, {0, 15, 0, 15});
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), ds.size());
}

TEST(RangeQueryTest, DistinctResultsCountsSafeZones) {
  const Dataset ds = RandomDataset(18, 20, 11);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  // Whole domain has many results...
  auto whole = RangeDistinctResults(diagram, {0, 19, 0, 19});
  ASSERT_TRUE(whole.ok());
  EXPECT_GT(*whole, 1u);
  // ...while the top-right corner past every point is one empty region.
  auto corner = RangeDistinctResults(diagram, {19, 19, 19, 19});
  ASSERT_TRUE(corner.ok());
  EXPECT_EQ(*corner, 1u);
}

// Property-based differential check of the summary path the line protocol
// serves: RangeSkylineSummarize through a PointLocationIndex must agree with
// brute-force evaluation at every integer position of random ranges —
// union, intersection, and the distinct-result count. Quadrant diagrams are
// exact everywhere, so every position (grid line or not) must match.
TEST(RangeQueryTest, SummarizeMatchesIntegerOracleOnRandomRanges) {
  const Dataset ds = RandomDataset(25, 24, 17);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const PointLocationIndex index(*built.cell_diagram());
  Rng rng(29);
  for (int i = 0; i < 40; ++i) {
    QueryRange range;
    range.x_lo = rng.NextInt(0, 23);
    range.x_hi = range.x_lo + rng.NextInt(0, 23 - range.x_lo);
    range.y_lo = rng.NextInt(0, 23);
    range.y_hi = range.y_lo + rng.NextInt(0, 23 - range.y_lo);

    const auto [uni, inter] = OracleUnionIntersection(ds, range);
    std::set<std::vector<PointId>> distinct_sets;
    for (int64_t x = range.x_lo; x <= range.x_hi; ++x) {
      for (int64_t y = range.y_lo; y <= range.y_hi; ++y) {
        distinct_sets.insert(FirstQuadrantSkyline(ds, {x, y}));
      }
    }

    auto summary = RangeSkylineSummarize(index, range);
    ASSERT_TRUE(summary.ok()) << summary.status();
    EXPECT_EQ(std::set<PointId>(summary->union_ids.begin(),
                                summary->union_ids.end()),
              uni);
    EXPECT_TRUE(std::is_sorted(summary->union_ids.begin(),
                               summary->union_ids.end()));
    EXPECT_EQ(std::set<PointId>(summary->intersection_ids.begin(),
                                summary->intersection_ids.end()),
              inter);
    EXPECT_TRUE(std::is_sorted(summary->intersection_ids.begin(),
                               summary->intersection_ids.end()));
    EXPECT_EQ(summary->distinct_results, distinct_sets.size());
  }
}

TEST(RangeQueryTest, SummarizeAgreesWithTheStandaloneQueries) {
  const Dataset ds = RandomDataset(30, 40, 19);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const PointLocationIndex index(diagram);
  Rng rng(31);
  for (int i = 0; i < 25; ++i) {
    QueryRange range;
    range.x_lo = rng.NextInt(0, 39);
    range.x_hi = range.x_lo + rng.NextInt(0, 39 - range.x_lo);
    range.y_lo = rng.NextInt(0, 39);
    range.y_hi = range.y_lo + rng.NextInt(0, 39 - range.y_lo);
    auto summary = RangeSkylineSummarize(index, range);
    auto u = RangeSkylineUnion(diagram, range);
    auto x = RangeSkylineIntersection(diagram, range);
    auto d = RangeDistinctResults(diagram, range);
    ASSERT_TRUE(summary.ok() && u.ok() && x.ok() && d.ok());
    EXPECT_EQ(summary->union_ids, *u);
    EXPECT_EQ(summary->intersection_ids, *x);
    EXPECT_EQ(summary->distinct_results, *d);
  }
}

TEST(RangeQueryTest, SummarizeRejectsInvertedRanges) {
  const Dataset ds = RandomDataset(5, 8, 7);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const PointLocationIndex index(*built.cell_diagram());
  EXPECT_FALSE(RangeSkylineSummarize(index, {5, 4, 0, 1}).ok());
  EXPECT_FALSE(RangeSkylineSummarize(index, {0, 1, 5, 4}).ok());
}

TEST(RangeQueryTest, DistinctResultsWithoutInterning) {
  const Dataset ds = RandomDataset(10, 12, 13);
  DiagramOptions no_intern;
  no_intern.intern_result_sets = false;
  const SkylineDiagram plain = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const SkylineDiagram raw =
      testing::BuildDiagram(ds, SkylineQueryType::kQuadrant,
                            BuildAlgorithm::kScanning, /*parallelism=*/1,
                            no_intern);
  const QueryRange range{0, 11, 0, 11};
  auto a = RangeDistinctResults(*plain.cell_diagram(), range);
  auto b = RangeDistinctResults(*raw.cell_diagram(), range);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

}  // namespace
}  // namespace skydia
