#include "src/core/render_svg.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "src/core/diagram.h"
#include "src/datagen/real_data.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::RandomDataset;
using skydia::testing::RandomDistinctDataset;

size_t CountOccurrences(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(RenderSvgTest, CellDiagramProducesWellFormedSvg) {
  const Dataset ds = RandomDataset(15, 20, 3);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const std::string svg = RenderCellDiagramSvg(ds, diagram);
  EXPECT_NE(svg.find("<svg xmlns"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One circle per seed.
  EXPECT_EQ(CountOccurrences(svg, "<circle"), ds.size());
  // At least one rectangle per distinct x-column with positive width.
  EXPECT_GT(CountOccurrences(svg, "<rect"), ds.size());
}

TEST(RenderSvgTest, LabelsToggle) {
  const Dataset hotels = HotelExample();
  const SkylineDiagram built = testing::BuildDiagram(
      hotels, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  SvgOptions with_labels;
  with_labels.draw_labels = true;
  const std::string svg = RenderCellDiagramSvg(hotels, diagram, with_labels);
  EXPECT_NE(svg.find(">p11</text>"), std::string::npos);
  const std::string plain = RenderCellDiagramSvg(hotels, diagram);
  EXPECT_EQ(plain.find("<text"), std::string::npos);
}

TEST(RenderSvgTest, EqualResultsShareColors) {
  const Dataset ds = RandomDataset(10, 16, 5);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const std::string svg = RenderCellDiagramSvg(ds, diagram);
  // Distinct fill colors cannot exceed distinct result sets + background
  // tones; sanity-check by counting unique hsl() strings.
  const size_t distinct_sets = diagram.ComputeStats().num_distinct_sets;
  size_t unique_hsl = 0;
  std::string marker = "fill=\"hsl(";
  std::vector<std::string> seen;
  for (size_t pos = svg.find(marker); pos != std::string::npos;
       pos = svg.find(marker, pos + 1)) {
    const size_t end = svg.find(')', pos);
    const std::string color = svg.substr(pos, end - pos);
    if (std::find(seen.begin(), seen.end(), color) == seen.end()) {
      seen.push_back(color);
      ++unique_hsl;
    }
  }
  EXPECT_LE(unique_hsl, distinct_sets);
}

TEST(RenderSvgTest, SubcellDiagramRenders) {
  const Dataset ds = RandomDataset(8, 12, 7);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning);
  const std::string svg =
      RenderSubcellDiagramSvg(ds, *built.subcell_diagram());
  EXPECT_NE(svg.find("<svg xmlns"), std::string::npos);
  EXPECT_EQ(CountOccurrences(svg, "<circle"), ds.size());
}

TEST(RenderSvgTest, SweepingDiagramRendersEveryPolyomino) {
  const Dataset ds = RandomDistinctDataset(12, 32, 9);
  const auto swept = BuildQuadrantSweeping(ds);
  ASSERT_TRUE(swept.ok());
  const std::string svg = RenderSweepingDiagramSvg(ds, *swept);
  EXPECT_EQ(CountOccurrences(svg, "<polygon"), swept->polyominoes.size());
}

TEST(RenderSvgTest, WriteSvgFileRoundTrip) {
  const Dataset ds = RandomDataset(5, 8, 11);
  const SkylineDiagram built = testing::BuildDiagram(
      ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& diagram = *built.cell_diagram();
  const std::string path = ::testing::TempDir() + "/skydia_render.svg";
  ASSERT_TRUE(WriteSvgFile(path, RenderCellDiagramSvg(ds, diagram)).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("<svg"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace skydia
