#include "src/core/highdim.h"

#include <gtest/gtest.h>

#include "src/core/diagram.h"
#include "src/datagen/distributions.h"
#include "src/skyline/dominance.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

DatasetNd RandomNd(size_t n, int dims, int64_t domain, uint64_t seed) {
  DataGenOptions options;
  options.n = n;
  options.domain_size = domain;
  options.seed = seed;
  auto nd = GenerateDatasetNd(options, dims);
  EXPECT_TRUE(nd.ok());
  return std::move(nd).value();
}

// Oracle: first-orthant skyline for the cell's candidate set.
std::vector<PointId> OracleCell(const DatasetNd& ds, const NdGrid& grid,
                                const std::vector<uint32_t>& idx) {
  std::vector<PointId> candidates;
  for (PointId id = 0; id < ds.size(); ++id) {
    bool ok = true;
    for (int d = 0; d < grid.dims(); ++d) {
      if (grid.rank(id, d) < idx[d]) {
        ok = false;
        break;
      }
    }
    if (ok) candidates.push_back(id);
  }
  std::vector<PointId> result;
  for (PointId a : candidates) {
    bool dominated = false;
    for (PointId b : candidates) {
      if (b != a && DominatesNd(ds.row(b), ds.row(a), ds.dims())) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(a);
  }
  return result;
}

TEST(NdGridTest, FlattenRoundTrip) {
  const DatasetNd ds = RandomNd(10, 3, 8, 1);
  const NdGrid grid(ds);
  std::vector<uint32_t> idx;
  for (uint64_t flat = 0; flat < grid.num_cells(); ++flat) {
    grid.Unflatten(flat, &idx);
    EXPECT_EQ(grid.Flatten(idx), flat);
  }
}

TEST(NdGridTest, IndexOfHalfOpen) {
  auto ds = DatasetNd::Create({2, 0, 5, 0}, 2, 8);
  ASSERT_TRUE(ds.ok());
  const NdGrid grid(*ds);
  EXPECT_EQ(grid.IndexOf(0, 1), 0u);
  EXPECT_EQ(grid.IndexOf(0, 2), 0u);
  EXPECT_EQ(grid.IndexOf(0, 3), 1u);
  EXPECT_EQ(grid.IndexOf(0, 5), 1u);
  EXPECT_EQ(grid.IndexOf(0, 6), 2u);
}

struct NdBuilderParam {
  NdCellDiagram (*builder)(const DatasetNd&, const DiagramOptions&);
  const char* name;
};

class NdDiagramTest : public ::testing::TestWithParam<NdBuilderParam> {};

TEST_P(NdDiagramTest, ThreeDimsMatchOracle) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const DatasetNd ds = RandomNd(12, 3, 10, seed);
    const NdCellDiagram diagram = GetParam().builder(ds, {});
    const NdGrid& grid = diagram.grid();
    std::vector<uint32_t> idx;
    for (uint64_t flat = 0; flat < grid.num_cells(); ++flat) {
      grid.Unflatten(flat, &idx);
      const auto actual = diagram.CellSkyline(flat);
      ASSERT_EQ(std::vector<PointId>(actual.begin(), actual.end()),
                OracleCell(ds, grid, idx))
          << "seed " << seed << " flat " << flat;
    }
  }
}

TEST_P(NdDiagramTest, ThreeDimsWithTies) {
  const DatasetNd ds = RandomNd(16, 3, 4, 5);  // heavy ties
  const NdCellDiagram diagram = GetParam().builder(ds, {});
  const NdGrid& grid = diagram.grid();
  std::vector<uint32_t> idx;
  for (uint64_t flat = 0; flat < grid.num_cells(); ++flat) {
    grid.Unflatten(flat, &idx);
    const auto actual = diagram.CellSkyline(flat);
    ASSERT_EQ(std::vector<PointId>(actual.begin(), actual.end()),
              OracleCell(ds, grid, idx))
        << "flat " << flat;
  }
}

TEST_P(NdDiagramTest, FourDims) {
  const DatasetNd ds = RandomNd(8, 4, 8, 7);
  const NdCellDiagram diagram = GetParam().builder(ds, {});
  const NdGrid& grid = diagram.grid();
  std::vector<uint32_t> idx;
  for (uint64_t flat = 0; flat < grid.num_cells(); ++flat) {
    grid.Unflatten(flat, &idx);
    const auto actual = diagram.CellSkyline(flat);
    ASSERT_EQ(std::vector<PointId>(actual.begin(), actual.end()),
              OracleCell(ds, grid, idx));
  }
}

TEST_P(NdDiagramTest, TwoDimsMatchesQuadrantDiagram) {
  // d = 2 must reproduce the 2-D quadrant diagram exactly.
  const Dataset ds2 = skydia::testing::RandomDataset(20, 16, 9);
  const DatasetNd ds = DatasetNd::FromDataset2d(ds2);
  const NdCellDiagram nd = GetParam().builder(ds, {});
  const SkylineDiagram built = skydia::testing::BuildDiagram(
      ds2, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
  const CellDiagram& quad = *built.cell_diagram();
  const CellGrid& grid2 = quad.grid();
  for (uint32_t cy = 0; cy < grid2.num_rows(); ++cy) {
    for (uint32_t cx = 0; cx < grid2.num_columns(); ++cx) {
      const auto expected = quad.CellSkyline(cx, cy);
      const auto actual = nd.CellSkyline(nd.grid().Flatten({cx, cy}));
      ASSERT_TRUE(expected.size() == actual.size() &&
                  std::equal(expected.begin(), expected.end(), actual.begin()))
          << "cell (" << cx << ", " << cy << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBuilders, NdDiagramTest,
    ::testing::Values(
        NdBuilderParam{&BuildNdBaseline, "baseline"},
        NdBuilderParam{&BuildNdDsg, "dsg"},
        NdBuilderParam{&BuildNdScanning, "scanning"},
        NdBuilderParam{&BuildNdScanningInclusionExclusion, "inclusionexclusion"}),
    [](const auto& info) { return info.param.name; });

TEST(NdDiagramTest, QueryPointLocation) {
  const DatasetNd ds = RandomNd(10, 3, 12, 11);
  const NdCellDiagram diagram = BuildNdScanning(ds, {});
  const NdGrid& grid = diagram.grid();
  // All-zero query sees the full-dataset skyline.
  const auto at_origin = diagram.Query({0, 0, 0});
  std::vector<uint32_t> zero(3, 0);
  const auto cell0 = diagram.CellSkyline(grid.Flatten(zero));
  EXPECT_TRUE(at_origin.size() == cell0.size() &&
              std::equal(at_origin.begin(), at_origin.end(), cell0.begin()));
}

TEST(NdDiagramTest, BuildersAgreeOnAnticorrelated) {
  DataGenOptions options;
  options.n = 14;
  options.domain_size = 10;
  options.seed = 13;
  options.distribution = Distribution::kAnticorrelated;
  auto nd = GenerateDatasetNd(options, 3);
  ASSERT_TRUE(nd.ok());
  const NdCellDiagram a = BuildNdBaseline(*nd, {});
  const NdCellDiagram b = BuildNdDsg(*nd, {});
  const NdCellDiagram c = BuildNdScanning(*nd, {});
  const NdCellDiagram d = BuildNdScanningInclusionExclusion(*nd, {});
  EXPECT_TRUE(a.SameResults(b));
  EXPECT_TRUE(a.SameResults(c));
  EXPECT_TRUE(a.SameResults(d));
}

}  // namespace
}  // namespace skydia
