#include "src/core/parallel.h"

#include <gtest/gtest.h>

#include "src/core/dynamic_baseline.h"
#include "src/core/dynamic_scanning.h"
#include "src/core/quadrant_baseline.h"
#include "src/core/quadrant_dsg.h"
#include "src/datagen/distributions.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::RandomDataset;

TEST(ParallelDsgTest, MatchesSequentialAcrossThreadCounts) {
  const Dataset ds = RandomDataset(60, 48, 3);
  const CellDiagram sequential = BuildQuadrantDsg(ds);
  for (const int threads : {1, 2, 3, 4, 7}) {
    const CellDiagram parallel = BuildQuadrantDsgParallel(ds, threads);
    EXPECT_TRUE(parallel.SameResults(sequential)) << threads << " threads";
  }
}

TEST(ParallelDsgTest, MatchesBaselineOnTieHeavyData) {
  const Dataset ds = RandomDataset(80, 8, 5);
  const CellDiagram baseline = BuildQuadrantBaseline(ds);
  const CellDiagram parallel = BuildQuadrantDsgParallel(ds, 4);
  EXPECT_TRUE(parallel.SameResults(baseline));
}

TEST(ParallelDsgTest, MoreThreadsThanRows) {
  auto ds = Dataset::Create({{1, 1}, {2, 2}}, 8);
  ASSERT_TRUE(ds.ok());
  const CellDiagram sequential = BuildQuadrantDsg(*ds);
  const CellDiagram parallel = BuildQuadrantDsgParallel(*ds, 16);
  EXPECT_TRUE(parallel.SameResults(sequential));
}

TEST(ParallelDsgTest, DistributionSweep) {
  for (const Distribution dist :
       {Distribution::kIndependent, Distribution::kCorrelated,
        Distribution::kAnticorrelated}) {
    const Dataset ds = testing::GeneratedDataset(50, 64, dist, 9);
    const CellDiagram sequential = BuildQuadrantDsg(ds);
    const CellDiagram parallel = BuildQuadrantDsgParallel(ds, 3);
    EXPECT_TRUE(parallel.SameResults(sequential)) << DistributionName(dist);
  }
}

TEST(ParallelDsgTest, SinglePoint) {
  auto ds = Dataset::Create({{3, 3}}, 8);
  ASSERT_TRUE(ds.ok());
  const CellDiagram parallel = BuildQuadrantDsgParallel(*ds, 4);
  EXPECT_EQ(parallel.CellSkyline(0, 0).size(), 1u);
  EXPECT_TRUE(parallel.CellSkyline(1, 1).empty());
}

TEST(ParallelDynamicTest, MatchesSequentialAcrossThreadsAndDistributions) {
  for (const Distribution dist :
       {Distribution::kIndependent, Distribution::kCorrelated,
        Distribution::kAnticorrelated}) {
    const Dataset ds = testing::GeneratedDataset(28, 48, dist, 17);
    const SubcellDiagram sequential = BuildDynamicScanning(ds);
    for (const int threads : {1, 2, 7}) {
      const SubcellDiagram parallel = BuildDynamicScanningParallel(ds, threads);
      EXPECT_TRUE(parallel.SameResults(sequential))
          << DistributionName(dist) << ", " << threads << " threads";
    }
  }
}

TEST(ParallelDynamicTest, MatchesBaselineOnTieHeavyData) {
  // A tiny domain makes grid and bisector lines coincide heavily — the
  // adversarial case for the incremental candidate propagation.
  const Dataset ds = RandomDataset(24, 6, 23);
  const SubcellDiagram baseline = BuildDynamicBaseline(ds);
  const SubcellDiagram parallel = BuildDynamicScanningParallel(ds, 4);
  EXPECT_TRUE(parallel.SameResults(baseline));
}

TEST(ParallelDynamicTest, MoreThreadsThanRows) {
  auto ds = Dataset::Create({{1, 1}, {2, 3}}, 8);
  ASSERT_TRUE(ds.ok());
  const SubcellDiagram sequential = BuildDynamicScanning(*ds);
  const SubcellDiagram parallel = BuildDynamicScanningParallel(*ds, 16);
  EXPECT_TRUE(parallel.SameResults(sequential));
}

TEST(ParallelDynamicTest, SinglePoint) {
  auto ds = Dataset::Create({{3, 3}}, 8);
  ASSERT_TRUE(ds.ok());
  const SubcellDiagram sequential = BuildDynamicScanning(*ds);
  const SubcellDiagram parallel = BuildDynamicScanningParallel(*ds, 4);
  EXPECT_TRUE(parallel.SameResults(sequential));
}

}  // namespace
}  // namespace skydia
