// Parallel builders must agree exactly with their sequential references.
// Every construction goes through the SkylineDiagram::Build facade: the
// parallelism knob is the only thing that changes between the two sides.
#include <gtest/gtest.h>

#include "src/core/diagram.h"
#include "src/datagen/distributions.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::BuildDiagram;
using skydia::testing::RandomDataset;

TEST(ParallelDsgTest, MatchesSequentialAcrossThreadCounts) {
  const Dataset ds = RandomDataset(60, 48, 3);
  const SkylineDiagram sequential =
      BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg);
  for (const int threads : {1, 2, 3, 4, 7}) {
    const SkylineDiagram parallel = BuildDiagram(
        ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg, threads);
    EXPECT_TRUE(parallel.cell_diagram()->SameResults(*sequential.cell_diagram()))
        << threads << " threads";
  }
}

TEST(ParallelDsgTest, MatchesBaselineOnTieHeavyData) {
  const Dataset ds = RandomDataset(80, 8, 5);
  const SkylineDiagram baseline =
      BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kBaseline);
  const SkylineDiagram parallel =
      BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg, 4);
  EXPECT_TRUE(parallel.cell_diagram()->SameResults(*baseline.cell_diagram()));
}

TEST(ParallelDsgTest, MoreThreadsThanRows) {
  auto ds = Dataset::Create({{1, 1}, {2, 2}}, 8);
  ASSERT_TRUE(ds.ok());
  const SkylineDiagram sequential =
      BuildDiagram(*ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg);
  const SkylineDiagram parallel =
      BuildDiagram(*ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg, 16);
  EXPECT_TRUE(parallel.cell_diagram()->SameResults(*sequential.cell_diagram()));
}

TEST(ParallelDsgTest, DistributionSweep) {
  for (const Distribution dist :
       {Distribution::kIndependent, Distribution::kCorrelated,
        Distribution::kAnticorrelated}) {
    const Dataset ds = testing::GeneratedDataset(50, 64, dist, 9);
    const SkylineDiagram sequential =
        BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg);
    // kAuto with parallelism > 1 must select the striped DSG construction.
    const SkylineDiagram parallel =
        BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kAuto, 3);
    EXPECT_TRUE(
        parallel.cell_diagram()->SameResults(*sequential.cell_diagram()))
        << DistributionName(dist);
  }
}

TEST(ParallelDsgTest, SinglePoint) {
  auto ds = Dataset::Create({{3, 3}}, 8);
  ASSERT_TRUE(ds.ok());
  const SkylineDiagram parallel =
      BuildDiagram(*ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg, 4);
  EXPECT_EQ(parallel.cell_diagram()->CellSkyline(0, 0).size(), 1u);
  EXPECT_TRUE(parallel.cell_diagram()->CellSkyline(1, 1).empty());
}

TEST(ParallelDynamicTest, MatchesSequentialAcrossThreadsAndDistributions) {
  for (const Distribution dist :
       {Distribution::kIndependent, Distribution::kCorrelated,
        Distribution::kAnticorrelated}) {
    const Dataset ds = testing::GeneratedDataset(28, 48, dist, 17);
    const SkylineDiagram sequential =
        BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning);
    for (const int threads : {1, 2, 7}) {
      const SkylineDiagram parallel =
          BuildDiagram(ds, SkylineQueryType::kDynamic,
                       BuildAlgorithm::kScanning, threads);
      EXPECT_TRUE(parallel.subcell_diagram()->SameResults(
          *sequential.subcell_diagram()))
          << DistributionName(dist) << ", " << threads << " threads";
    }
  }
}

TEST(ParallelDynamicTest, MatchesBaselineOnTieHeavyData) {
  // A tiny domain makes grid and bisector lines coincide heavily — the
  // adversarial case for the incremental candidate propagation.
  const Dataset ds = RandomDataset(24, 6, 23);
  const SkylineDiagram baseline =
      BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kBaseline);
  const SkylineDiagram parallel = BuildDiagram(
      ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning, 4);
  EXPECT_TRUE(
      parallel.subcell_diagram()->SameResults(*baseline.subcell_diagram()));
}

TEST(ParallelDynamicTest, MoreThreadsThanRows) {
  auto ds = Dataset::Create({{1, 1}, {2, 3}}, 8);
  ASSERT_TRUE(ds.ok());
  const SkylineDiagram sequential =
      BuildDiagram(*ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning);
  const SkylineDiagram parallel = BuildDiagram(
      *ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning, 16);
  EXPECT_TRUE(
      parallel.subcell_diagram()->SameResults(*sequential.subcell_diagram()));
}

TEST(ParallelDynamicTest, SinglePoint) {
  auto ds = Dataset::Create({{3, 3}}, 8);
  ASSERT_TRUE(ds.ok());
  const SkylineDiagram sequential =
      BuildDiagram(*ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning);
  const SkylineDiagram parallel = BuildDiagram(
      *ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning, 4);
  EXPECT_TRUE(
      parallel.subcell_diagram()->SameResults(*sequential.subcell_diagram()));
}

}  // namespace
}  // namespace skydia
