// Boundary-semantics tests for PointLocationIndex: queries exactly on grid
// lines, on vertices (data points), at domain corners, and outside the
// bounding grid. These pin the half-open convention documented in
// src/core/point_location.h — if a builder ever disagrees with the index
// about who owns a boundary, these tests name the position.
#include "src/core/point_location.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/core/diagram.h"
#include "src/core/merge.h"
#include "src/skyline/query.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::GeneratedDataset;

// Three points in general position: x lines {2, 4, 5}, y lines {1, 3, 6}.
Dataset ThreePoints() {
  auto ds = Dataset::Create({{2, 3}, {5, 1}, {4, 6}}, 8);
  return std::move(ds).value();
}

SkylineDiagram BuildOrDie(const Dataset& dataset, SkylineQueryType type) {
  auto diagram = SkylineDiagram::Build(dataset, type);
  EXPECT_TRUE(diagram.ok()) << diagram.status();
  return std::move(diagram).value();
}

TEST(PointLocationTest, GridLinesBelongToTheColumnOnTheirLeft) {
  const Dataset ds = ThreePoints();
  const SkylineDiagram diagram = BuildOrDie(ds, SkylineQueryType::kQuadrant);
  const PointLocationIndex index(*diagram.cell_diagram());

  // Column cx covers (line[cx-1], line[cx]]: a query ON a line lands in the
  // column that ends at the line.
  EXPECT_EQ(index.Locate({1, 0}).cx, 0u);
  EXPECT_EQ(index.Locate({2, 0}).cx, 0u);  // on line x=2
  EXPECT_EQ(index.Locate({3, 0}).cx, 1u);
  EXPECT_EQ(index.Locate({4, 0}).cx, 1u);  // on line x=4
  EXPECT_EQ(index.Locate({5, 0}).cx, 2u);  // on line x=5
  EXPECT_EQ(index.Locate({6, 0}).cx, 3u);

  EXPECT_EQ(index.Locate({0, 1}).cy, 0u);  // on line y=1
  EXPECT_EQ(index.Locate({0, 2}).cy, 1u);
  EXPECT_EQ(index.Locate({0, 3}).cy, 1u);  // on line y=3
  EXPECT_EQ(index.Locate({0, 6}).cy, 2u);  // on line y=6
  EXPECT_EQ(index.Locate({0, 7}).cy, 3u);
}

TEST(PointLocationTest, VerticesLocateToTheirRankCell) {
  const Dataset ds = ThreePoints();
  const SkylineDiagram diagram = BuildOrDie(ds, SkylineQueryType::kQuadrant);
  const CellGrid& grid = diagram.cell_diagram()->grid();
  const PointLocationIndex index(*diagram.cell_diagram());
  for (PointId id = 0; id < ds.size(); ++id) {
    const auto cell = index.Locate(ds.point(id));
    EXPECT_EQ(cell.cx, grid.xrank(id)) << "point " << id;
    EXPECT_EQ(cell.cy, grid.yrank(id)) << "point " << id;
  }
}

TEST(PointLocationTest, QueriesOutsideTheBoundingGridLocate) {
  const Dataset ds = ThreePoints();
  const SkylineDiagram diagram = BuildOrDie(ds, SkylineQueryType::kQuadrant);
  const PointLocationIndex index(*diagram.cell_diagram());

  // Column 0 extends to -inf, the last column to +inf.
  EXPECT_EQ(index.Locate({-100, -100}).cx, 0u);
  EXPECT_EQ(index.Locate({-100, -100}).cy, 0u);
  EXPECT_EQ(index.Locate({100, 100}).cx, index.num_columns() - 1);
  EXPECT_EQ(index.Locate({100, 100}).cy, index.num_rows() - 1);
  EXPECT_FALSE(index.OnBoundary({-100, -100}));

  // Outside queries still answer: below/left of everything, every point is
  // a first-quadrant candidate.
  EXPECT_EQ(index.Query({-100, -100}).size(),
            FirstQuadrantSkyline(ds, {-100, -100}).size());
  // Above/right of everything the candidate set is empty.
  EXPECT_TRUE(index.Query({100, 100}).empty());
}

TEST(PointLocationTest, QuadrantAnswersAreExactEverywhereExhaustively) {
  const Dataset ds = ThreePoints();
  const SkylineDiagram diagram = BuildOrDie(ds, SkylineQueryType::kQuadrant);
  const PointLocationIndex index(*diagram.cell_diagram());
  for (int64_t qx = -1; qx <= 8; ++qx) {
    for (int64_t qy = -1; qy <= 8; ++qy) {
      const Point2D q{qx, qy};
      const std::vector<PointId> expected = FirstQuadrantSkyline(ds, q);
      const auto got = index.Query(q);
      ASSERT_TRUE(got.size() == expected.size() &&
                  std::equal(got.begin(), got.end(), expected.begin()))
          << "quadrant mismatch at q = " << q;
    }
  }
}

TEST(PointLocationTest, GlobalBoundaryQueriesAnswerWithTheLeftBelowCell) {
  const Dataset ds = ThreePoints();
  const SkylineDiagram diagram = BuildOrDie(ds, SkylineQueryType::kGlobal);
  const PointLocationIndex index(*diagram.cell_diagram());

  // q on the vertical line x=2, interior in y: the stored answer must be
  // the global skyline just LEFT of the line (the half-open convention's
  // adjacent interior cell), i.e. at the 4x representative x4 = 4*2 - 2.
  const Point2D q{2, 2};
  ASSERT_TRUE(index.OnBoundary(q));
  const std::vector<PointId> left = GlobalSkylineAt4(ds, 4 * 2 - 2, 4 * 2);
  const auto got = index.Query(q);
  EXPECT_TRUE(got.size() == left.size() &&
              std::equal(got.begin(), got.end(), left.begin()))
      << "global boundary answer is not the left-adjacent interior result";
}

TEST(PointLocationTest, DynamicBisectorsAreBoundariesAndAnswerLeftBelow) {
  // x values {2, 4, 5} put a bisector at x=3 (between 2 and 4): an integer
  // position that is NOT a data coordinate but still a subcell boundary.
  const Dataset ds = ThreePoints();
  const SkylineDiagram diagram = BuildOrDie(ds, SkylineQueryType::kDynamic);
  const SubcellDiagram& subcell = *diagram.subcell_diagram();
  const PointLocationIndex index(subcell);

  const Point2D q{3, 2};
  EXPECT_TRUE(index.OnBoundary(q));

  // The located subcell's representative answer is the stored one: the
  // convention assigns boundary queries the interior subcell to the
  // left/below.
  const auto cell = index.Locate(q);
  const std::vector<PointId> expected = DynamicSkylineAt4(
      ds, subcell.grid().x_axis().Representative4(cell.cx),
      subcell.grid().y_axis().Representative4(cell.cy));
  const auto got = index.Query(q);
  EXPECT_TRUE(got.size() == expected.size() &&
              std::equal(got.begin(), got.end(), expected.begin()))
      << "dynamic boundary answer is not the left/below interior result";
}

TEST(PointLocationTest, PolyominoTableMatchesMergeCells) {
  const Dataset ds =
      GeneratedDataset(20, 32, Distribution::kIndependent, 13);
  const SkylineDiagram diagram = BuildOrDie(ds, SkylineQueryType::kQuadrant);
  const CellDiagram& cells = *diagram.cell_diagram();
  PointLocationIndex index(cells);
  EXPECT_FALSE(index.has_polyomino_table());
  index.BuildPolyominoTable();
  ASSERT_TRUE(index.has_polyomino_table());

  const MergedPolyominoes merged = MergeCells(cells);
  EXPECT_EQ(index.num_polyominoes(), merged.num_polyominoes());

  // The labellings must induce the same partition (label values may differ).
  const CellGrid& grid = cells.grid();
  std::vector<uint32_t> mine_to_theirs(index.num_polyominoes(), ~uint32_t{0});
  std::vector<uint32_t> theirs_to_mine(merged.num_polyominoes(), ~uint32_t{0});
  for (uint32_t cy = 0; cy < grid.num_rows(); ++cy) {
    for (uint32_t cx = 0; cx < grid.num_columns(); ++cx) {
      // Any interior-convention query position inside cell (cx, cy) works;
      // the cell's own grid position is one (lines belong to their cell).
      const Point2D q{
          cx < grid.num_distinct_x()
              ? grid.x_value(cx)
              : grid.x_value(grid.num_distinct_x() - 1) + 1,
          cy < grid.num_distinct_y()
              ? grid.y_value(cy)
              : grid.y_value(grid.num_distinct_y() - 1) + 1};
      const uint32_t mine = index.PolyominoOf(q);
      const uint32_t theirs =
          merged.cell_to_polyomino[grid.CellIndex(cx, cy)];
      if (mine_to_theirs[mine] == ~uint32_t{0}) {
        mine_to_theirs[mine] = theirs;
        EXPECT_EQ(theirs_to_mine[theirs], ~uint32_t{0})
            << "two index polyominoes map to one MergeCells polyomino";
        theirs_to_mine[theirs] = mine;
      }
      ASSERT_EQ(mine_to_theirs[mine], theirs)
          << "partition mismatch at cell (" << cx << ", " << cy << ")";
    }
  }
}

TEST(PointLocationTest, OwnedBytesCountsTheLineArrays) {
  const Dataset ds = ThreePoints();
  const SkylineDiagram diagram = BuildOrDie(ds, SkylineQueryType::kQuadrant);
  const PointLocationIndex index(*diagram.cell_diagram());
  // 3 x-lines + 3 y-lines at 8 bytes each, at minimum.
  EXPECT_GE(index.OwnedBytes(), 48u);
}

}  // namespace
}  // namespace skydia
