#!/usr/bin/env bash
# End-to-end smoke test for the skydia CLI: generate -> build -> check ->
# query round trip, exit-code contract for bad invocations, and a golden
# diff for batched query output.
#
# Usage: smoke_test.sh <path-to-skydia-binary> <path-to-tests/cli-dir>
set -u

SKYDIA="$1"
GOLDEN_DIR="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK" || exit 1

failures=0
step() { echo "--- $*"; }
fail() {
  echo "FAIL: $*" >&2
  failures=$((failures + 1))
}

expect_ok() {
  local what="$1"
  shift
  if ! "$@"; then fail "$what: expected exit 0, got $?"; fi
}

expect_err() {
  local what="$1"
  shift
  if "$@" 2>/dev/null; then fail "$what: expected non-zero exit"; fi
}

step "generate a deterministic workload"
expect_ok "generate" "$SKYDIA" generate --n 32 --domain 64 --seed 7 \
  --out points.csv

step "build one diagram per semantics"
expect_ok "build quadrant" "$SKYDIA" build --in points.csv --type quadrant \
  --out quadrant.skd
expect_ok "build global" "$SKYDIA" build --in points.csv --type global \
  --out global.skd
expect_ok "build dynamic" "$SKYDIA" build --in points.csv --type dynamic \
  --out dynamic.skd

step "check validates every blob"
expect_ok "check quadrant" "$SKYDIA" check quadrant.skd
expect_ok "check global" "$SKYDIA" check global.skd --allow-duplicate-sets
expect_ok "check dynamic" "$SKYDIA" check dynamic.skd

step "query a blob with a points CSV (golden output)"
cat > queries.csv <<'EOF'
x,y
0,0
5,5
13,7
31,2
63,63
-5,70
100,100
EOF
if ! "$SKYDIA" query quadrant.skd queries.csv > batch.out; then
  fail "query batch: expected exit 0"
fi
if ! diff -u "$GOLDEN_DIR/query_golden.txt" batch.out; then
  fail "query batch output differs from tests/cli/query_golden.txt"
fi

step "single-point and exact queries answer on every semantics"
expect_ok "query quadrant point" "$SKYDIA" query quadrant.skd --qx 5 --qy 5
expect_ok "query global exact" "$SKYDIA" query global.skd --qx 5 --qy 5 \
  --exact --semantics global
expect_ok "query dynamic exact" "$SKYDIA" query dynamic.skd --qx 5 --qy 5 \
  --exact

step "batched query with stats and threads"
if ! "$SKYDIA" query quadrant.skd queries.csv --threads 2 --stats \
    > stats.out; then
  fail "query --stats: expected exit 0"
fi
grep -q "engine stats: served=" stats.out || \
  fail "query --stats output is missing engine stats"

step "bench mode smoke"
if ! "$SKYDIA" query quadrant.skd queries.csv --bench --repeat 1 \
    --threads 2 > bench.out; then
  fail "query --bench: expected exit 0"
fi
grep -q "ns/query" bench.out || fail "bench output is missing ns/query lines"

step "bad invocations exit non-zero"
expect_err "query without arguments" "$SKYDIA" query
expect_err "query missing blob" "$SKYDIA" query missing.skd queries.csv
expect_err "query missing csv" "$SKYDIA" query quadrant.skd missing.csv
expect_err "query bad semantics" "$SKYDIA" query quadrant.skd queries.csv \
  --semantics sideways
expect_err "query --qx without --qy" "$SKYDIA" query quadrant.skd --qx 1
expect_err "unknown command" "$SKYDIA" frobnicate

step "corrupt blobs are rejected by check and query"
head -c 64 quadrant.skd > corrupt.skd
expect_err "check corrupt" "$SKYDIA" check corrupt.skd
expect_err "query corrupt" "$SKYDIA" query corrupt.skd queries.csv

if [ "$failures" -ne 0 ]; then
  echo "$failures smoke-test failure(s)" >&2
  exit 1
fi
echo "cli smoke test passed"
