#!/usr/bin/env bash
# End-to-end smoke test for the skydia CLI: generate -> build -> check ->
# query round trip, exit-code contract for bad invocations, and a golden
# diff for batched query output.
#
# Usage: smoke_test.sh <path-to-skydia-binary> <path-to-tests/cli-dir>
set -u

SKYDIA="$1"
GOLDEN_DIR="$2"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK" || exit 1

failures=0
step() { echo "--- $*"; }
fail() {
  echo "FAIL: $*" >&2
  failures=$((failures + 1))
}

expect_ok() {
  local what="$1"
  shift
  if ! "$@"; then fail "$what: expected exit 0, got $?"; fi
}

expect_err() {
  local what="$1"
  shift
  if "$@" 2>/dev/null; then fail "$what: expected non-zero exit"; fi
}

step "generate a deterministic workload"
expect_ok "generate" "$SKYDIA" generate --n 32 --domain 64 --seed 7 \
  --out points.csv

step "build one diagram per semantics"
expect_ok "build quadrant" "$SKYDIA" build --in points.csv --type quadrant \
  --out quadrant.skd
expect_ok "build global" "$SKYDIA" build --in points.csv --type global \
  --out global.skd
expect_ok "build dynamic" "$SKYDIA" build --in points.csv --type dynamic \
  --out dynamic.skd

step "check validates every blob"
expect_ok "check quadrant" "$SKYDIA" check quadrant.skd
expect_ok "check global" "$SKYDIA" check global.skd --allow-duplicate-sets
expect_ok "check dynamic" "$SKYDIA" check dynamic.skd

step "query a blob with a points CSV (golden output)"
cat > queries.csv <<'EOF'
x,y
0,0
5,5
13,7
31,2
63,63
-5,70
100,100
EOF
if ! "$SKYDIA" query quadrant.skd queries.csv > batch.out; then
  fail "query batch: expected exit 0"
fi
if ! diff -u "$GOLDEN_DIR/query_golden.txt" batch.out; then
  fail "query batch output differs from tests/cli/query_golden.txt"
fi

step "single-point and exact queries answer on every semantics"
expect_ok "query quadrant point" "$SKYDIA" query quadrant.skd --qx 5 --qy 5
expect_ok "query global exact" "$SKYDIA" query global.skd --qx 5 --qy 5 \
  --exact --semantics global
expect_ok "query dynamic exact" "$SKYDIA" query dynamic.skd --qx 5 --qy 5 \
  --exact

step "batched query with stats and threads"
if ! "$SKYDIA" query quadrant.skd queries.csv --threads 2 --stats \
    > stats.out; then
  fail "query --stats: expected exit 0"
fi
grep -q "engine stats: served=" stats.out || \
  fail "query --stats output is missing engine stats"

step "bench mode smoke"
if ! "$SKYDIA" query quadrant.skd queries.csv --bench --repeat 1 \
    --threads 2 > bench.out; then
  fail "query --bench: expected exit 0"
fi
grep -q "ns/query" bench.out || fail "bench output is missing ns/query lines"

step "--trace writes loadable Chrome-trace JSON (build and query)"
expect_ok "build --report --trace" "$SKYDIA" build --in points.csv \
  --type quadrant --threads 2 --report --trace build_trace.json \
  --out traced.skd
if ! "$SKYDIA" build --in points.csv --type quadrant --report \
    --out traced.skd | grep -q "build report:"; then
  fail "build --report output is missing the build report"
fi
# --batch-threshold 1 forces the batch through the sharded parallel path so
# the trace carries per-shard spans on the pool-worker tracks.
expect_ok "query --trace" "$SKYDIA" query traced.skd queries.csv \
  --threads 2 --batch-threshold 1 --trace query_trace.json
if command -v python3 >/dev/null 2>&1; then
  # The golden contract: both files parse as Chrome trace-event JSON and
  # contain the span families the issue promises — build phases and stripe
  # tracks from `build`, batch/shard spans from `query`.
  python3 - build_trace.json query_trace.json <<'PYEOF' || \
    fail "trace JSON golden check"
import json, sys

def names(path, key):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc["traceEvents"]
    assert isinstance(events, list) and events, f"{path}: no traceEvents"
    for e in events:
        assert e["ph"] in ("X", "C", "M"), e
        if e["ph"] == "X":
            assert e["dur"] >= 0 and e["ts"] >= 0, e
    return {e[key] for e in events if key in e}

build_names = names(sys.argv[1], "name")
for want in ("build", "grid", "stripes", "merge", "freeze", "stripe.dsg"):
    assert want in build_names, f"build trace missing span {want!r}"
assert "thread_name" in build_names, "build trace has no named tracks"

query_names = names(sys.argv[2], "name")
for want in ("load", "index.build", "query.batch", "query.shard"):
    assert want in query_names, f"query trace missing span {want!r}"
print("trace JSON golden check passed")
PYEOF
else
  echo "python3 unavailable; skipping trace JSON parse" >&2
fi

step "bad invocations exit non-zero"
expect_err "query without arguments" "$SKYDIA" query
expect_err "query missing blob" "$SKYDIA" query missing.skd queries.csv
expect_err "query missing csv" "$SKYDIA" query quadrant.skd missing.csv
expect_err "query bad semantics" "$SKYDIA" query quadrant.skd queries.csv \
  --semantics sideways
expect_err "query --qx without --qy" "$SKYDIA" query quadrant.skd --qx 1
expect_err "unknown command" "$SKYDIA" frobnicate

step "corrupt blobs are rejected by check and query"
head -c 64 quadrant.skd > corrupt.skd
expect_err "check corrupt" "$SKYDIA" check corrupt.skd
expect_err "query corrupt" "$SKYDIA" query corrupt.skd queries.csv

if [ "$failures" -ne 0 ]; then
  echo "$failures smoke-test failure(s)" >&2
  exit 1
fi
echo "cli smoke test passed"
