#include "src/datagen/distributions.h"

#include <cmath>

#include <gtest/gtest.h>

namespace skydia {
namespace {

TEST(DistributionsTest, DeterministicInSeed) {
  DataGenOptions options;
  options.n = 100;
  options.seed = 42;
  auto a = GenerateDataset(options);
  auto b = GenerateDataset(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->points(), b->points());
  options.seed = 43;
  auto c = GenerateDataset(options);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->points(), c->points());
}

TEST(DistributionsTest, PointsStayInDomain) {
  for (const Distribution dist :
       {Distribution::kIndependent, Distribution::kCorrelated,
        Distribution::kAnticorrelated, Distribution::kClustered}) {
    DataGenOptions options;
    options.n = 500;
    options.domain_size = 100;
    options.distribution = dist;
    auto ds = GenerateDataset(options);
    ASSERT_TRUE(ds.ok()) << DistributionName(dist);
    for (const Point2D& p : ds->points()) {
      EXPECT_GE(p.x, 0);
      EXPECT_LT(p.x, 100);
      EXPECT_GE(p.y, 0);
      EXPECT_LT(p.y, 100);
    }
  }
}

TEST(DistributionsTest, CorrelatedHasPositiveCorrelation) {
  DataGenOptions options;
  options.n = 2000;
  options.domain_size = 1024;
  options.distribution = Distribution::kCorrelated;
  auto ds = GenerateDataset(options);
  ASSERT_TRUE(ds.ok());
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  const double n = static_cast<double>(ds->size());
  for (const Point2D& p : ds->points()) {
    sx += p.x;
    sy += p.y;
    sxx += static_cast<double>(p.x) * p.x;
    syy += static_cast<double>(p.y) * p.y;
    sxy += static_cast<double>(p.x) * p.y;
  }
  const double corr = (n * sxy - sx * sy) /
                      std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
  EXPECT_GT(corr, 0.8);
}

TEST(DistributionsTest, AnticorrelatedHasNegativeCorrelation) {
  DataGenOptions options;
  options.n = 2000;
  options.domain_size = 1024;
  options.distribution = Distribution::kAnticorrelated;
  auto ds = GenerateDataset(options);
  ASSERT_TRUE(ds.ok());
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  const double n = static_cast<double>(ds->size());
  for (const Point2D& p : ds->points()) {
    sx += p.x;
    sy += p.y;
    sxx += static_cast<double>(p.x) * p.x;
    syy += static_cast<double>(p.y) * p.y;
    sxy += static_cast<double>(p.x) * p.y;
  }
  const double corr = (n * sxy - sx * sy) /
                      std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
  EXPECT_LT(corr, -0.8);
}

TEST(DistributionsTest, DistinctCoordinatesMode) {
  DataGenOptions options;
  options.n = 200;
  options.domain_size = 256;
  options.distinct_coordinates = true;
  for (const Distribution dist :
       {Distribution::kIndependent, Distribution::kCorrelated,
        Distribution::kAnticorrelated}) {
    options.distribution = dist;
    auto ds = GenerateDataset(options);
    ASSERT_TRUE(ds.ok()) << DistributionName(dist);
    EXPECT_TRUE(ds->HasDistinctCoordinates()) << DistributionName(dist);
  }
}

TEST(DistributionsTest, DistinctCoordinatesRequiresRoom) {
  DataGenOptions options;
  options.n = 100;
  options.domain_size = 50;
  options.distinct_coordinates = true;
  EXPECT_FALSE(GenerateDataset(options).ok());
}

TEST(DistributionsTest, NdGeneration) {
  DataGenOptions options;
  options.n = 50;
  options.domain_size = 64;
  auto nd = GenerateDatasetNd(options, 4);
  ASSERT_TRUE(nd.ok());
  EXPECT_EQ(nd->dims(), 4);
  EXPECT_EQ(nd->size(), 50u);
}

TEST(DistributionsTest, InvalidOptionsRejected) {
  DataGenOptions options;
  options.n = 10;
  options.domain_size = 0;
  EXPECT_FALSE(GenerateDataset(options).ok());
  options.domain_size = 10;
  EXPECT_FALSE(GenerateDatasetNd(options, 0).ok());
}

TEST(DistributionsTest, DistributionNames) {
  EXPECT_STREQ(DistributionName(Distribution::kIndependent), "independent");
  EXPECT_STREQ(DistributionName(Distribution::kCorrelated), "correlated");
  EXPECT_STREQ(DistributionName(Distribution::kAnticorrelated),
               "anticorrelated");
  EXPECT_STREQ(DistributionName(Distribution::kClustered), "clustered");
}

}  // namespace
}  // namespace skydia
