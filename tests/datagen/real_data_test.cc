#include "src/datagen/real_data.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "src/common/csv.h"
#include "src/skyline/query.h"

namespace skydia {
namespace {

// These assertions pin the paper's running example (Figure 1): every stated
// query result must hold verbatim for q = (10, 80).
TEST(HotelExampleTest, QuadrantSkylinesMatchPaper) {
  const Dataset hotels = HotelExample();
  const Point2D q = HotelExampleQuery();
  // First quadrant: {p3, p8, p10} (ids 2, 7, 9).
  EXPECT_EQ(QuadrantSkyline(hotels, q, 0), (std::vector<PointId>{2, 7, 9}));
  // Second quadrant: {p6}.
  EXPECT_EQ(QuadrantSkyline(hotels, q, 1), (std::vector<PointId>{5}));
  // Third quadrant: empty.
  EXPECT_TRUE(QuadrantSkyline(hotels, q, 2).empty());
  // Fourth quadrant: {p11}.
  EXPECT_EQ(QuadrantSkyline(hotels, q, 3), (std::vector<PointId>{10}));
}

TEST(HotelExampleTest, GlobalSkylineMatchesPaper) {
  const Dataset hotels = HotelExample();
  // {p3, p6, p8, p10, p11}.
  EXPECT_EQ(GlobalSkyline(hotels, HotelExampleQuery()),
            (std::vector<PointId>{2, 5, 7, 9, 10}));
}

TEST(HotelExampleTest, DynamicSkylineMatchesPaper) {
  const Dataset hotels = HotelExample();
  // {p6, p11}: the paper's t6/t11 observation.
  EXPECT_EQ(DynamicSkyline(hotels, HotelExampleQuery()),
            (std::vector<PointId>{5, 10}));
}

TEST(HotelExampleTest, DynamicIsSubsetOfGlobal) {
  const Dataset hotels = HotelExample();
  const auto dynamic = DynamicSkyline(hotels, HotelExampleQuery());
  const auto global = GlobalSkyline(hotels, HotelExampleQuery());
  for (PointId id : dynamic) {
    EXPECT_TRUE(std::binary_search(global.begin(), global.end(), id));
  }
}

TEST(HotelExampleTest, LabelsAndShape) {
  const Dataset hotels = HotelExample();
  EXPECT_EQ(hotels.size(), 11u);
  EXPECT_EQ(hotels.label(0), "p1");
  EXPECT_EQ(hotels.label(10), "p11");
  EXPECT_EQ(hotels.domain_size(), 128);
}

TEST(NbaLikeTest, WriteAndLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "skydia_nba_test.csv").string();
  ASSERT_TRUE(WriteNbaLikeCsv(path, 200, /*seed=*/7).ok());
  auto ds = LoadDatasetCsv(path, "points_rank", "rebounds_rank");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 200u);
  EXPECT_TRUE(ds->has_labels());
  EXPECT_EQ(ds->label(0), "player0");
  // Domain: smallest power of two above the max coordinate.
  EXPECT_LE(ds->domain_size(), 1024);
  std::remove(path.c_str());
}

TEST(NbaLikeTest, DeterministicInSeed) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path_a = (dir / "skydia_nba_a.csv").string();
  const std::string path_b = (dir / "skydia_nba_b.csv").string();
  ASSERT_TRUE(WriteNbaLikeCsv(path_a, 50, 3).ok());
  ASSERT_TRUE(WriteNbaLikeCsv(path_b, 50, 3).ok());
  auto a = LoadDatasetCsv(path_a, "points_rank", "rebounds_rank");
  auto b = LoadDatasetCsv(path_b, "points_rank", "rebounds_rank");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->points(), b->points());
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(LoadDatasetCsvTest, MissingColumnsRejected) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "skydia_badcol.csv").string();
  CsvDocument doc;
  doc.rows = {{"a", "b"}, {"1", "2"}};
  ASSERT_TRUE(WriteCsvFile(path, doc).ok());
  EXPECT_FALSE(LoadDatasetCsv(path, "missing", "b").ok());
  std::remove(path.c_str());
}

TEST(LoadDatasetCsvTest, NonIntegerValuesRejected) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "skydia_badint.csv").string();
  CsvDocument doc;
  doc.rows = {{"x", "y"}, {"1", "not-a-number"}};
  ASSERT_TRUE(WriteCsvFile(path, doc).ok());
  const auto loaded = LoadDatasetCsv(path, "x", "y");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace skydia
