#include "src/datagen/workload.h"

#include <gtest/gtest.h>

#include "src/core/subcell_grid.h"
#include "src/geometry/grid.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::RandomDataset;

TEST(WorkloadTest, QueriesStayInDomain) {
  const Dataset ds = RandomDataset(20, 64, 1);
  const auto queries = GenerateQueries(ds, 500, 7);
  EXPECT_EQ(queries.size(), 500u);
  for (const Point2D& q : queries) {
    EXPECT_GE(q.x, 0);
    EXPECT_LT(q.x, 64);
    EXPECT_GE(q.y, 0);
    EXPECT_LT(q.y, 64);
  }
}

TEST(WorkloadTest, QueriesDeterministic) {
  const Dataset ds = RandomDataset(20, 64, 1);
  EXPECT_EQ(GenerateQueries(ds, 50, 9), GenerateQueries(ds, 50, 9));
  EXPECT_NE(GenerateQueries(ds, 50, 9), GenerateQueries(ds, 50, 10));
}

TEST(WorkloadTest, InteriorQueriesAvoidGridLines) {
  const Dataset ds = RandomDataset(30, 16, 3);  // tie-heavy
  const auto queries =
      GenerateInteriorQueries4(ds, 300, 11, /*avoid_bisectors=*/false);
  for (const auto& [qx4, qy4] : queries) {
    for (const Point2D& p : ds.points()) {
      EXPECT_NE(qx4, 4 * p.x);
      EXPECT_NE(qy4, 4 * p.y);
    }
  }
}

TEST(WorkloadTest, InteriorQueriesAvoidBisectors) {
  const Dataset ds = RandomDataset(15, 32, 5);
  const SubcellGrid grid(ds);
  const auto queries =
      GenerateInteriorQueries4(ds, 300, 13, /*avoid_bisectors=*/true);
  for (const auto& [qx4, qy4] : queries) {
    // 4x position of a doubled line L is 2L; interior queries never match.
    for (uint32_t i = 0; i < grid.x_axis().num_lines(); ++i) {
      EXPECT_NE(qx4, 2 * grid.x_axis().line(i));
    }
    for (uint32_t i = 0; i < grid.y_axis().num_lines(); ++i) {
      EXPECT_NE(qy4, 2 * grid.y_axis().line(i));
    }
  }
}

}  // namespace
}  // namespace skydia
