#include "src/skyline/dsg.h"

#include <gtest/gtest.h>

#include "src/skyline/dominance.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::RandomDataset;

// O(n^3) oracle for direct dominance: u -> c iff u dominates c and no w lies
// strictly between.
std::vector<std::pair<PointId, PointId>> BruteDirectLinks(const Dataset& ds) {
  std::vector<std::pair<PointId, PointId>> links;
  for (PointId u = 0; u < ds.size(); ++u) {
    for (PointId c = 0; c < ds.size(); ++c) {
      if (u == c || !Dominates(ds.point(u), ds.point(c))) continue;
      bool direct = true;
      for (PointId w = 0; w < ds.size(); ++w) {
        if (w == u || w == c) continue;
        if (Dominates(ds.point(u), ds.point(w)) &&
            Dominates(ds.point(w), ds.point(c))) {
          direct = false;
          break;
        }
      }
      if (direct) links.emplace_back(u, c);
    }
  }
  return links;
}

TEST(DsgTest, PaperRunningExampleStructure) {
  // Figure 6 shape: layer-1 points have no parents; direct links skip levels
  // only when nothing lies between.
  auto ds = Dataset::Create({{1, 1}, {2, 3}, {3, 2}, {4, 4}}, 10);
  ASSERT_TRUE(ds.ok());
  const DirectedSkylineGraph dsg(*ds);
  EXPECT_TRUE(dsg.parents(0).empty());
  EXPECT_EQ(dsg.parents(1), (std::vector<PointId>{0}));
  EXPECT_EQ(dsg.parents(2), (std::vector<PointId>{0}));
  // (4,4) is directly below (2,3) and (3,2); (1,1) is indirect.
  EXPECT_EQ(dsg.parents(3), (std::vector<PointId>{1, 2}));
  EXPECT_EQ(dsg.children(0), (std::vector<PointId>{1, 2}));
  EXPECT_EQ(dsg.num_links(), 4u);
}

TEST(DsgTest, MatchesBruteForceOnRandomData) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Dataset ds = RandomDataset(60, 40, seed);
    const DirectedSkylineGraph dsg(ds);
    auto expected = BruteDirectLinks(ds);
    std::vector<std::pair<PointId, PointId>> actual;
    for (PointId u = 0; u < ds.size(); ++u) {
      for (PointId c : dsg.children(u)) actual.emplace_back(u, c);
    }
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "seed " << seed;
  }
}

TEST(DsgTest, MatchesBruteForceWithHeavyTies) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const Dataset ds = RandomDataset(80, 6, seed);  // many shared coords
    const DirectedSkylineGraph dsg(ds);
    auto expected = BruteDirectLinks(ds);
    std::vector<std::pair<PointId, PointId>> actual;
    for (PointId u = 0; u < ds.size(); ++u) {
      for (PointId c : dsg.children(u)) actual.emplace_back(u, c);
    }
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "seed " << seed;
  }
}

TEST(DsgTest, ParentsAndChildrenAreConsistent) {
  const Dataset ds = RandomDataset(100, 30, 5);
  const DirectedSkylineGraph dsg(ds);
  uint64_t parent_links = 0;
  for (PointId c = 0; c < ds.size(); ++c) {
    parent_links += dsg.parents(c).size();
    for (PointId u : dsg.parents(c)) {
      const auto& ch = dsg.children(u);
      EXPECT_TRUE(std::binary_search(ch.begin(), ch.end(), c));
    }
  }
  EXPECT_EQ(parent_links, dsg.num_links());
}

TEST(DsgTest, NdConstructorMatches2dOnLiftedData) {
  const Dataset ds = RandomDataset(50, 12, 21);
  const DirectedSkylineGraph d2(ds);
  const DirectedSkylineGraph dn(DatasetNd::FromDataset2d(ds));
  ASSERT_EQ(d2.num_points(), dn.num_points());
  EXPECT_EQ(d2.num_links(), dn.num_links());
  for (PointId id = 0; id < ds.size(); ++id) {
    EXPECT_EQ(d2.children(id), dn.children(id)) << "point " << id;
    EXPECT_EQ(d2.parents(id), dn.parents(id)) << "point " << id;
  }
}

TEST(DsgTest, DuplicatePointsAreMutualNonParents) {
  auto ds = Dataset::Create({{2, 2}, {2, 2}, {5, 5}}, 10);
  ASSERT_TRUE(ds.ok());
  const DirectedSkylineGraph dsg(*ds);
  EXPECT_TRUE(dsg.parents(0).empty());
  EXPECT_TRUE(dsg.parents(1).empty());
  // Both duplicates are direct parents of (5,5).
  EXPECT_EQ(dsg.parents(2), (std::vector<PointId>{0, 1}));
}

}  // namespace
}  // namespace skydia
