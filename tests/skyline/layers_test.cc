#include "src/skyline/layers.h"

#include <gtest/gtest.h>

#include "src/skyline/dominance.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::BruteSkyline2d;
using skydia::testing::RandomDataset;

TEST(SkylineLayersTest, FirstLayerIsSkyline) {
  const Dataset ds = RandomDataset(100, 64, 42);
  const SkylineLayers layers = ComputeSkylineLayers(ds);
  ASSERT_FALSE(layers.layers.empty());
  EXPECT_EQ(layers.layers[0], BruteSkyline2d(ds));
}

TEST(SkylineLayersTest, LayersPartitionThePoints) {
  const Dataset ds = RandomDataset(150, 32, 7);
  const SkylineLayers layers = ComputeSkylineLayers(ds);
  size_t total = 0;
  std::vector<bool> seen(ds.size(), false);
  for (const auto& layer : layers.layers) {
    for (PointId id : layer) {
      EXPECT_FALSE(seen[id]);
      seen[id] = true;
      ++total;
    }
  }
  EXPECT_EQ(total, ds.size());
}

TEST(SkylineLayersTest, LayerOfMatchesMembership) {
  const Dataset ds = RandomDataset(80, 50, 3);
  const SkylineLayers layers = ComputeSkylineLayers(ds);
  for (size_t k = 0; k < layers.layers.size(); ++k) {
    for (PointId id : layers.layers[k]) {
      EXPECT_EQ(layers.layer_of[id], k);
    }
  }
}

TEST(SkylineLayersTest, WithinLayerNoDominance) {
  const Dataset ds = RandomDataset(120, 16, 11);  // heavy ties
  const SkylineLayers layers = ComputeSkylineLayers(ds);
  for (const auto& layer : layers.layers) {
    for (PointId a : layer) {
      for (PointId b : layer) {
        EXPECT_FALSE(a != b && Dominates(ds.point(a), ds.point(b)))
            << "layer-mates " << a << " and " << b;
      }
    }
  }
}

TEST(SkylineLayersTest, DominatorsLiveOnLowerLayers) {
  const Dataset ds = RandomDataset(120, 16, 13);
  const SkylineLayers layers = ComputeSkylineLayers(ds);
  for (PointId a = 0; a < ds.size(); ++a) {
    for (PointId b = 0; b < ds.size(); ++b) {
      if (a != b && Dominates(ds.point(a), ds.point(b))) {
        EXPECT_LT(layers.layer_of[a], layers.layer_of[b]);
      }
    }
  }
}

TEST(SkylineLayersTest, ChainProducesOneLayerPerPoint) {
  auto ds = Dataset::Create({{0, 0}, {1, 1}, {2, 2}}, 10);
  ASSERT_TRUE(ds.ok());
  const SkylineLayers layers = ComputeSkylineLayers(*ds);
  EXPECT_EQ(layers.num_layers(), 3u);
}

TEST(SkylineLayersTest, AntichainIsOneLayer) {
  auto ds = Dataset::Create({{0, 3}, {1, 2}, {2, 1}, {3, 0}}, 10);
  ASSERT_TRUE(ds.ok());
  const SkylineLayers layers = ComputeSkylineLayers(*ds);
  EXPECT_EQ(layers.num_layers(), 1u);
}

TEST(SkylineLayersTest, NdMatches2dOnLiftedData) {
  const Dataset ds = RandomDataset(60, 20, 17);
  const SkylineLayers two = ComputeSkylineLayers(ds);
  const SkylineLayers nd = ComputeSkylineLayersNd(DatasetNd::FromDataset2d(ds));
  ASSERT_EQ(two.num_layers(), nd.num_layers());
  for (size_t k = 0; k < two.num_layers(); ++k) {
    EXPECT_EQ(two.layers[k], nd.layers[k]);
  }
}

}  // namespace
}  // namespace skydia
