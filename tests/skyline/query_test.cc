#include "src/skyline/query.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "src/skyline/dominance.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::RandomDataset;

// Oracles built directly from the dominance predicates.
std::vector<PointId> OracleQuadrant(const Dataset& ds, const Point2D& q,
                                    int quadrant) {
  std::vector<PointId> result;
  for (PointId a = 0; a < ds.size(); ++a) {
    if (QuadrantOf(ds.point(a), q) != quadrant) continue;
    bool dominated = false;
    for (PointId b = 0; b < ds.size(); ++b) {
      if (b != a && QuadrantOf(ds.point(b), q) == quadrant &&
          GlobalDominates(ds.point(b), ds.point(a), q)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(a);
  }
  return result;
}

std::vector<PointId> OracleDynamic(const Dataset& ds, int64_t qx4,
                                   int64_t qy4) {
  std::vector<PointId> result;
  for (PointId a = 0; a < ds.size(); ++a) {
    bool dominated = false;
    for (PointId b = 0; b < ds.size(); ++b) {
      if (b != a && DynamicDominates4(ds.point(b), ds.point(a), qx4, qy4)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(a);
  }
  return result;
}

TEST(QueryTest, QuadrantMatchesOracleOnRandomQueries) {
  const Dataset ds = RandomDataset(80, 40, 31);
  Rng rng(9);
  for (int i = 0; i < 30; ++i) {
    const Point2D q{rng.NextInt(0, 39), rng.NextInt(0, 39)};
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(QuadrantSkyline(ds, q, k), OracleQuadrant(ds, q, k))
          << "query " << q << " quadrant " << k;
    }
  }
}

TEST(QueryTest, GlobalIsUnionOfQuadrants) {
  const Dataset ds = RandomDataset(60, 30, 33);
  Rng rng(10);
  for (int i = 0; i < 20; ++i) {
    const Point2D q{rng.NextInt(0, 29), rng.NextInt(0, 29)};
    std::vector<PointId> expected;
    for (int k = 0; k < 4; ++k) {
      auto part = QuadrantSkyline(ds, q, k);
      expected.insert(expected.end(), part.begin(), part.end());
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(GlobalSkyline(ds, q), expected);
  }
}

TEST(QueryTest, DynamicMatchesOracle) {
  const Dataset ds = RandomDataset(70, 25, 35);
  Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    const int64_t qx4 = rng.NextInt(0, 4 * 25);
    const int64_t qy4 = rng.NextInt(0, 4 * 25);
    EXPECT_EQ(DynamicSkylineAt4(ds, qx4, qy4), OracleDynamic(ds, qx4, qy4));
  }
}

TEST(QueryTest, DynamicIsSubsetOfGlobal) {
  // The structural property Algorithm 6 relies on (§V.B).
  const Dataset ds = RandomDataset(90, 50, 37);
  Rng rng(12);
  for (int i = 0; i < 40; ++i) {
    const Point2D q{rng.NextInt(0, 49), rng.NextInt(0, 49)};
    const auto dynamic = DynamicSkyline(ds, q);
    const auto global = GlobalSkyline(ds, q);
    for (PointId id : dynamic) {
      EXPECT_TRUE(std::binary_search(global.begin(), global.end(), id))
          << "dynamic member " << id << " missing from global at " << q;
    }
  }
}

TEST(QueryTest, QueryOnAPointIncludesIt) {
  auto ds = Dataset::Create({{5, 5}, {7, 7}}, 10);
  ASSERT_TRUE(ds.ok());
  // q == p0: p0 at distance (0,0) dominates everything else.
  EXPECT_EQ(DynamicSkyline(*ds, {5, 5}), (std::vector<PointId>{0}));
  EXPECT_EQ(FirstQuadrantSkyline(*ds, {5, 5}), (std::vector<PointId>{0}));
}

TEST(QueryTest, SubsetEvaluationMatchesFullWhenSubsetContainsAnswer) {
  const Dataset ds = RandomDataset(50, 20, 41);
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    const int64_t qx4 = rng.NextInt(0, 80);
    const int64_t qy4 = rng.NextInt(0, 80);
    const auto full = DynamicSkylineAt4(ds, qx4, qy4);
    // The full skyline evaluated as a subset must reproduce itself.
    EXPECT_EQ(DynamicSkylineOfSubsetAt4(ds, full, qx4, qy4), full);
  }
}

TEST(QueryTest, QuadrantAt4MatchesIntegerVersionOnIntegerQueries) {
  const Dataset ds = RandomDataset(60, 30, 43);
  Rng rng(14);
  for (int i = 0; i < 20; ++i) {
    const Point2D q{rng.NextInt(0, 29), rng.NextInt(0, 29)};
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(QuadrantSkylineAt4(ds, 4 * q.x, 4 * q.y, k),
                QuadrantSkyline(ds, q, k));
    }
    EXPECT_EQ(GlobalSkylineAt4(ds, 4 * q.x, 4 * q.y), GlobalSkyline(ds, q));
  }
}

TEST(QueryTest, HotelFigureOneSemantics) {
  // Quadrant partition boundaries: points exactly on q's lines belong to the
  // >= side, matching Definition 3's partition of the point set.
  auto ds = Dataset::Create({{10, 80}, {10, 70}, {5, 80}}, 128);
  ASSERT_TRUE(ds.ok());
  const Point2D q{10, 80};
  EXPECT_EQ(QuadrantSkyline(*ds, q, 0), (std::vector<PointId>{0}));
  EXPECT_EQ(QuadrantSkyline(*ds, q, 3), (std::vector<PointId>{1}));
  EXPECT_EQ(QuadrantSkyline(*ds, q, 1), (std::vector<PointId>{2}));
}

}  // namespace
}  // namespace skydia
