#include "src/skyline/interning.h"

#include <gtest/gtest.h>

namespace skydia {
namespace {

TEST(InterningTest, EmptySetIsPreInterned) {
  SkylineSetPool pool;
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.Get(kEmptySetId).empty());
  EXPECT_EQ(pool.Intern({}), kEmptySetId);
}

TEST(InterningTest, DeduplicatesEqualSets) {
  SkylineSetPool pool;
  const SetId a = pool.Intern({1, 2, 3});
  const SetId b = pool.Intern({1, 2, 3});
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(InterningTest, DistinguishesDifferentSets) {
  SkylineSetPool pool;
  const SetId a = pool.Intern({1, 2, 3});
  const SetId b = pool.Intern({1, 2});
  const SetId c = pool.Intern({1, 2, 4});
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
}

TEST(InterningTest, GetReturnsCanonicalContents) {
  SkylineSetPool pool;
  const SetId a = pool.Intern({5, 9, 11});
  const auto span = pool.Get(a);
  EXPECT_EQ(std::vector<PointId>(span.begin(), span.end()),
            (std::vector<PointId>{5, 9, 11}));
}

TEST(InterningTest, InternCopyMatchesIntern) {
  SkylineSetPool pool;
  const std::vector<PointId> ids = {4, 8};
  const SetId a = pool.InternCopy(ids);
  const SetId b = pool.Intern({4, 8});
  EXPECT_EQ(a, b);
}

TEST(InterningTest, TotalElementsCountsDistinctOnly) {
  SkylineSetPool pool;
  pool.Intern({1, 2, 3});
  pool.Intern({1, 2, 3});
  pool.Intern({7});
  EXPECT_EQ(pool.total_elements(), 4u);
}

TEST(InterningTest, NoDedupModeStoresCopies) {
  SkylineSetPool pool(/*deduplicate=*/false);
  const SetId a = pool.Intern({1, 2});
  const SetId b = pool.Intern({1, 2});
  EXPECT_NE(a, b);
  // The empty set stays shared so kEmptySetId remains meaningful.
  EXPECT_EQ(pool.Intern({}), kEmptySetId);
}

TEST(InterningTest, ManySetsStressAndMemoryAccounting) {
  SkylineSetPool pool;
  for (uint32_t i = 0; i < 1000; ++i) {
    pool.Intern({i, i + 1, i + 2});
  }
  EXPECT_EQ(pool.size(), 1001u);
  EXPECT_EQ(pool.total_elements(), 3000u);
  EXPECT_GT(pool.ApproximateMemoryBytes(), 3000u * sizeof(PointId));
}

}  // namespace
}  // namespace skydia
