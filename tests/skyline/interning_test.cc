#include "src/skyline/interning.h"

#include <gtest/gtest.h>

namespace skydia {
namespace {

TEST(InterningTest, EmptySetIsPreInterned) {
  SkylineSetPool pool;
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.Get(kEmptySetId).empty());
  EXPECT_EQ(pool.Intern({}), kEmptySetId);
}

TEST(InterningTest, DeduplicatesEqualSets) {
  SkylineSetPool pool;
  const SetId a = pool.Intern({1, 2, 3});
  const SetId b = pool.Intern({1, 2, 3});
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(InterningTest, DistinguishesDifferentSets) {
  SkylineSetPool pool;
  const SetId a = pool.Intern({1, 2, 3});
  const SetId b = pool.Intern({1, 2});
  const SetId c = pool.Intern({1, 2, 4});
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
}

TEST(InterningTest, GetReturnsCanonicalContents) {
  SkylineSetPool pool;
  const SetId a = pool.Intern({5, 9, 11});
  const auto span = pool.Get(a);
  EXPECT_EQ(std::vector<PointId>(span.begin(), span.end()),
            (std::vector<PointId>{5, 9, 11}));
}

TEST(InterningTest, InternCopyMatchesIntern) {
  SkylineSetPool pool;
  const std::vector<PointId> ids = {4, 8};
  const SetId a = pool.InternCopy(ids);
  const SetId b = pool.Intern({4, 8});
  EXPECT_EQ(a, b);
}

TEST(InterningTest, TotalElementsCountsDistinctOnly) {
  SkylineSetPool pool;
  pool.Intern({1, 2, 3});
  pool.Intern({1, 2, 3});
  pool.Intern({7});
  EXPECT_EQ(pool.total_elements(), 4u);
}

TEST(InterningTest, NoDedupModeStoresCopies) {
  SkylineSetPool pool(/*deduplicate=*/false);
  const SetId a = pool.Intern({1, 2});
  const SetId b = pool.Intern({1, 2});
  EXPECT_NE(a, b);
  // The empty set stays shared so kEmptySetId remains meaningful.
  EXPECT_EQ(pool.Intern({}), kEmptySetId);
}

TEST(InterningTest, ManySetsStressAndMemoryAccounting) {
  SkylineSetPool pool;
  for (uint32_t i = 0; i < 1000; ++i) {
    pool.Intern({i, i + 1, i + 2});
  }
  EXPECT_EQ(pool.size(), 1001u);
  EXPECT_EQ(pool.total_elements(), 3000u);
  EXPECT_GT(pool.ApproximateMemoryBytes(), 3000u * sizeof(PointId));
}

TEST(InterningTest, ArenaStorageIsContiguous) {
  SkylineSetPool pool;
  const SetId a = pool.Intern({1, 2, 3});
  const SetId b = pool.Intern({4, 5});
  // Sets live back-to-back in one buffer, in intern order.
  const auto sa = pool.Get(a);
  const auto sb = pool.Get(b);
  EXPECT_EQ(sa.data() + sa.size(), sb.data());
}

TEST(InterningTest, AppendSkipsDeduplication) {
  SkylineSetPool pool;
  const SetId a = pool.Intern({1, 2, 3});
  const SetId b = pool.Append({1, 2, 3});
  EXPECT_NE(a, b);  // verbatim reload: a duplicate stays a separate set
  const auto span = pool.Get(b);
  EXPECT_EQ(std::vector<PointId>(span.begin(), span.end()),
            (std::vector<PointId>{1, 2, 3}));
}

TEST(InterningTest, InternCopyOfOwnSpanIsSafe) {
  // The source span aliases the arena; growth during insertion must not
  // read freed memory or corrupt the copy.
  SkylineSetPool pool(/*deduplicate=*/false);
  const SetId first = pool.Intern({10, 20, 30});
  for (int i = 0; i < 64; ++i) {
    const SetId copy = pool.InternCopy(pool.Get(first));
    const auto span = pool.Get(copy);
    ASSERT_EQ(std::vector<PointId>(span.begin(), span.end()),
              (std::vector<PointId>{10, 20, 30}));
  }
}

TEST(InterningTest, FreezePreservesIdsAndContents) {
  SkylineSetPool pool;
  std::vector<SetId> ids;
  for (uint32_t i = 0; i < 100; ++i) ids.push_back(pool.Intern({i, i + 7}));
  pool.Freeze();
  for (uint32_t i = 0; i < 100; ++i) {
    const auto span = pool.Get(ids[i]);
    EXPECT_EQ(std::vector<PointId>(span.begin(), span.end()),
              (std::vector<PointId>{i, i + 7}));
  }
  // The pool stays usable after Freeze: interning an existing set still
  // dedups, and new sets can still be added.
  EXPECT_EQ(pool.Intern({3, 10}), ids[3]);
  EXPECT_EQ(pool.Intern({999, 1000}), ids.size() + 1);
}

TEST(InterningTest, FreezeMakesAccountingExact) {
  SkylineSetPool pool;
  for (uint32_t i = 0; i < 500; ++i) pool.Intern({i, i + 1, i + 2, i + 3});
  pool.Freeze();
  // After shrinking, the arena term of the estimate equals the live data:
  // everything beyond elements + records is index overhead, bounded well
  // below the old per-set vector-header cost (24 bytes/set).
  const size_t floor =
      pool.total_elements() * sizeof(PointId) + pool.size() * 12;
  EXPECT_GE(pool.ApproximateMemoryBytes(), floor);
}

TEST(InterningTest, AdoptArenaRebuildsPool) {
  SkylineSetPool pool;
  // 3 sets: {}, {2, 4}, {9}; buffer laid out back-to-back.
  pool.AdoptArena({2, 4, 9}, {0, 2, 1});
  ASSERT_EQ(pool.size(), 3u);
  EXPECT_TRUE(pool.Get(0).empty());
  const auto s1 = pool.Get(1);
  EXPECT_EQ(std::vector<PointId>(s1.begin(), s1.end()),
            (std::vector<PointId>{2, 4}));
  const auto s2 = pool.Get(2);
  EXPECT_EQ(std::vector<PointId>(s2.begin(), s2.end()),
            (std::vector<PointId>{9}));
  EXPECT_EQ(pool.total_elements(), 3u);
  // The rebuilt index dedups future interns against adopted content.
  EXPECT_EQ(pool.Intern({9}), 2u);
}

}  // namespace
}  // namespace skydia
