#include "src/skyline/algorithms.h"

#include <gtest/gtest.h>

#include "src/datagen/distributions.h"
#include "tests/testing/util.h"

namespace skydia {
namespace {

using skydia::testing::BruteSkyline2d;
using skydia::testing::BruteSkylineNd;
using skydia::testing::RandomDataset;

TEST(MinStaircaseTest, SimpleStaircase) {
  const std::vector<Point2D> coords = {{1, 5}, {2, 3}, {3, 4}, {4, 1}};
  const std::vector<PointId> ids = {0, 1, 2, 3};
  EXPECT_EQ(MinStaircase(coords, ids), (std::vector<PointId>{0, 1, 3}));
}

TEST(MinStaircaseTest, TiesInXKeepOnlyGroupMinimum) {
  const std::vector<Point2D> coords = {{1, 5}, {1, 3}, {1, 3}, {2, 4}};
  const std::vector<PointId> ids = {0, 1, 2, 3};
  // Both copies of (1,3) survive; (1,5) is dominated by them; (2,4) too.
  EXPECT_EQ(MinStaircase(coords, ids), (std::vector<PointId>{1, 2}));
}

TEST(MinStaircaseTest, TiesInYAcrossGroups) {
  const std::vector<Point2D> coords = {{1, 3}, {2, 3}};
  const std::vector<PointId> ids = {0, 1};
  // (1,3) dominates (2,3): equal y, strictly smaller x.
  EXPECT_EQ(MinStaircase(coords, ids), (std::vector<PointId>{0}));
}

TEST(MinStaircaseTest, DuplicatePointsAllSurvive) {
  const std::vector<Point2D> coords = {{2, 2}, {2, 2}, {5, 1}, {1, 5}};
  const std::vector<PointId> ids = {0, 1, 2, 3};
  EXPECT_EQ(MinStaircase(coords, ids), (std::vector<PointId>{0, 1, 2, 3}));
}

TEST(MinStaircaseTest, EmptyInput) {
  EXPECT_TRUE(MinStaircase({}, {}).empty());
}

struct AlgoParam {
  SkylineAlgorithm algorithm;
  const char* name;
};

class SkylineAlgorithmTest : public ::testing::TestWithParam<AlgoParam> {};

TEST_P(SkylineAlgorithmTest, MatchesBruteForceOnRandom2d) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Dataset ds = RandomDataset(/*n=*/120, /*domain=*/64, seed);
    EXPECT_EQ(ComputeSkyline2d(ds, GetParam().algorithm), BruteSkyline2d(ds))
        << "seed " << seed;
  }
}

TEST_P(SkylineAlgorithmTest, MatchesBruteForceWithHeavyTies) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Dataset ds = RandomDataset(/*n=*/200, /*domain=*/8, seed);
    EXPECT_EQ(ComputeSkyline2d(ds, GetParam().algorithm), BruteSkyline2d(ds))
        << "seed " << seed;
  }
}

TEST_P(SkylineAlgorithmTest, SinglePoint) {
  auto ds = Dataset::Create({{5, 5}}, 10);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ComputeSkyline2d(*ds, GetParam().algorithm),
            (std::vector<PointId>{0}));
}

TEST_P(SkylineAlgorithmTest, AllDuplicates) {
  auto ds = Dataset::Create({{3, 3}, {3, 3}, {3, 3}}, 10);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ComputeSkyline2d(*ds, GetParam().algorithm),
            (std::vector<PointId>{0, 1, 2}));
}

TEST_P(SkylineAlgorithmTest, ChainHasSingleWinner) {
  auto ds = Dataset::Create({{0, 0}, {1, 1}, {2, 2}, {3, 3}}, 10);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ComputeSkyline2d(*ds, GetParam().algorithm),
            (std::vector<PointId>{0}));
}

TEST_P(SkylineAlgorithmTest, AntichainKeepsEverything) {
  auto ds = Dataset::Create({{0, 3}, {1, 2}, {2, 1}, {3, 0}}, 10);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ComputeSkyline2d(*ds, GetParam().algorithm),
            (std::vector<PointId>{0, 1, 2, 3}));
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SkylineAlgorithmTest,
    ::testing::Values(AlgoParam{SkylineAlgorithm::kSortScan, "sortscan"},
                      AlgoParam{SkylineAlgorithm::kBlockNestedLoop, "bnl"},
                      AlgoParam{SkylineAlgorithm::kSortFilter, "sfs"},
                      AlgoParam{SkylineAlgorithm::kDivideConquer, "dc"}),
    [](const ::testing::TestParamInfo<AlgoParam>& info) {
      return info.param.name;
    });

struct NdAlgoParam {
  SkylineAlgorithm algorithm;
  int dims;
  const char* name;
};

class SkylineNdTest : public ::testing::TestWithParam<NdAlgoParam> {};

TEST_P(SkylineNdTest, MatchesBruteForceNd) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    DataGenOptions options;
    options.n = 80;
    options.domain_size = 16;  // heavy ties in high dimensions
    options.seed = seed;
    options.distribution =
        seed % 2 == 0 ? Distribution::kIndependent : Distribution::kAnticorrelated;
    auto nd = GenerateDatasetNd(options, GetParam().dims);
    ASSERT_TRUE(nd.ok());
    EXPECT_EQ(ComputeSkylineNd(*nd, GetParam().algorithm), BruteSkylineNd(*nd))
        << "seed " << seed << " dims " << GetParam().dims;
  }
}

INSTANTIATE_TEST_SUITE_P(
    NdAlgorithms, SkylineNdTest,
    ::testing::Values(NdAlgoParam{SkylineAlgorithm::kBlockNestedLoop, 3, "bnl3"},
                      NdAlgoParam{SkylineAlgorithm::kSortFilter, 3, "sfs3"},
                      NdAlgoParam{SkylineAlgorithm::kDivideConquer, 3, "dc3"},
                      NdAlgoParam{SkylineAlgorithm::kBlockNestedLoop, 4, "bnl4"},
                      NdAlgoParam{SkylineAlgorithm::kSortFilter, 4, "sfs4"},
                      NdAlgoParam{SkylineAlgorithm::kDivideConquer, 4, "dc4"},
                      NdAlgoParam{SkylineAlgorithm::kDivideConquer, 5, "dc5"}),
    [](const ::testing::TestParamInfo<NdAlgoParam>& info) {
      return info.param.name;
    });

TEST(SkylineOfSubsetTest, RestrictsToCandidates2d) {
  auto ds = Dataset::Create({{0, 0}, {5, 5}, {6, 4}, {4, 6}}, 10);
  ASSERT_TRUE(ds.ok());
  // Without point 0, the other three form partial dominance.
  EXPECT_EQ(SkylineOfSubset2d(*ds, {1, 2, 3}), (std::vector<PointId>{1, 2, 3}));
  EXPECT_EQ(SkylineOfSubset2d(*ds, {0, 1}), (std::vector<PointId>{0}));
  EXPECT_TRUE(SkylineOfSubset2d(*ds, {}).empty());
}

TEST(SkylineOfSubsetTest, RestrictsToCandidatesNd) {
  auto nd = DatasetNd::Create({0, 0, 0, 1, 1, 1, 2, 0, 1}, 3, 10);
  ASSERT_TRUE(nd.ok());
  EXPECT_EQ(SkylineOfSubsetNd(*nd, {1, 2}), (std::vector<PointId>{1, 2}));
  EXPECT_EQ(SkylineOfSubsetNd(*nd, {0, 1, 2}), (std::vector<PointId>{0}));
}

TEST(SkylineDcTest, LargeScaleAgainstSfs) {
  DataGenOptions options;
  options.n = 5000;
  options.domain_size = 1 << 20;
  options.distribution = Distribution::kAnticorrelated;
  options.seed = 99;
  auto nd = GenerateDatasetNd(options, 3);
  ASSERT_TRUE(nd.ok());
  EXPECT_EQ(ComputeSkylineNd(*nd, SkylineAlgorithm::kDivideConquer),
            ComputeSkylineNd(*nd, SkylineAlgorithm::kSortFilter));
}

}  // namespace
}  // namespace skydia
