#include "src/skyline/dominance.h"

#include <gtest/gtest.h>

namespace skydia {
namespace {

TEST(DominanceTest, StrictAndNonStrict) {
  EXPECT_TRUE(Dominates({1, 1}, {2, 2}));
  EXPECT_TRUE(Dominates({1, 2}, {2, 2}));   // tie in y, strict in x
  EXPECT_TRUE(Dominates({2, 1}, {2, 2}));   // tie in x, strict in y
  EXPECT_FALSE(Dominates({2, 2}, {2, 2}));  // equal points never dominate
  EXPECT_FALSE(Dominates({1, 3}, {2, 2}));  // incomparable
  EXPECT_FALSE(Dominates({3, 1}, {2, 2}));
}

TEST(DominanceTest, NdMatches2d) {
  const int64_t a[] = {1, 2};
  const int64_t b[] = {2, 2};
  EXPECT_TRUE(DominatesNd(a, b, 2));
  EXPECT_FALSE(DominatesNd(b, a, 2));
  EXPECT_FALSE(DominatesNd(a, a, 2));
}

TEST(DominanceTest, NdThreeDims) {
  const int64_t a[] = {1, 2, 3};
  const int64_t b[] = {1, 2, 4};
  const int64_t c[] = {0, 9, 3};
  EXPECT_TRUE(DominatesNd(a, b, 3));
  EXPECT_FALSE(DominatesNd(b, a, 3));
  EXPECT_FALSE(DominatesNd(a, c, 3));
  EXPECT_FALSE(DominatesNd(c, a, 3));
}

TEST(DominanceTest, QuadrantOfPartition) {
  const Point2D q{10, 10};
  EXPECT_EQ(QuadrantOf({10, 10}, q), 0);  // boundary points go to Q1/Q4 sides
  EXPECT_EQ(QuadrantOf({15, 12}, q), 0);
  EXPECT_EQ(QuadrantOf({5, 12}, q), 1);
  EXPECT_EQ(QuadrantOf({5, 5}, q), 2);
  EXPECT_EQ(QuadrantOf({15, 5}, q), 3);
  EXPECT_EQ(QuadrantOf({10, 5}, q), 3);
  EXPECT_EQ(QuadrantOf({5, 10}, q), 1);
}

TEST(DominanceTest, DynamicDominates4UsesAbsoluteDistances) {
  // q at (10, 10) in original coordinates -> (40, 40) in 4x.
  const int64_t qx4 = 40;
  const int64_t qy4 = 40;
  // (8, 8) is at distance (2, 2); (13, 13) at (3, 3) -> dominated.
  EXPECT_TRUE(DynamicDominates4({8, 8}, {13, 13}, qx4, qy4));
  // Cross-quadrant dominance is the point of dynamic skylines.
  EXPECT_TRUE(DynamicDominates4({9, 9}, {12, 12}, qx4, qy4));
  // Equal distances never dominate.
  EXPECT_FALSE(DynamicDominates4({8, 8}, {12, 12}, qx4, qy4));
  EXPECT_FALSE(DynamicDominates4({12, 12}, {8, 8}, qx4, qy4));
}

TEST(DominanceTest, DynamicDominates4FractionalQuery) {
  // q = (10.25, 10.25) -> 4x = (41, 41): distances to (10,10) are (1,1),
  // to (11,11) are (3,3).
  EXPECT_TRUE(DynamicDominates4({10, 10}, {11, 11}, 41, 41));
  EXPECT_FALSE(DynamicDominates4({11, 11}, {10, 10}, 41, 41));
}

TEST(DominanceTest, GlobalDominanceRequiresSameQuadrant) {
  const Point2D q{10, 10};
  // (8, 12) is in Q2, (13, 13) in Q1: no global dominance across quadrants.
  EXPECT_FALSE(GlobalDominates({8, 12}, {13, 13}, q));
  // Within Q1: (11, 11) dominates (13, 13).
  EXPECT_TRUE(GlobalDominates({11, 11}, {13, 13}, q));
  // Within Q3: closer in both -> dominates.
  EXPECT_TRUE(GlobalDominates({9, 9}, {5, 5}, q));
}

}  // namespace
}  // namespace skydia
