#include "src/common/hash.h"

#include <gtest/gtest.h>

namespace skydia {
namespace {

TEST(HashTest, Fnv1aKnownVectors) {
  // Reference values for 64-bit FNV-1a.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(HashTest, Fnv1aDependsOnEveryByte) {
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abcx"));
}

TEST(HashTest, HashCombineOrderMatters) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2),
            HashCombine(HashCombine(0, 2), 1));
}

TEST(HashTest, HashIdsMatchesByteHash) {
  const std::vector<uint32_t> ids = {1, 2, 3};
  EXPECT_EQ(HashIds(ids), Fnv1a64(ids.data(), ids.size() * sizeof(uint32_t)));
}

TEST(HashTest, HashIdsDistinguishesContents) {
  EXPECT_NE(HashIds({1, 2, 3}), HashIds({1, 2, 4}));
  EXPECT_NE(HashIds({1, 2, 3}), HashIds({1, 2}));
  EXPECT_NE(HashIds({}), HashIds({0}));
}

}  // namespace
}  // namespace skydia
