#include "src/common/csv.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

namespace skydia {
namespace {

TEST(CsvTest, ParsesSimpleRows) {
  auto doc = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(doc->rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvTest, HandlesMissingTrailingNewline) {
  auto doc = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[1][1], "2");
}

TEST(CsvTest, HandlesCrlf) {
  auto doc = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[0][0], "a");
}

TEST(CsvTest, QuotedFieldsWithCommasAndNewlines) {
  auto doc = ParseCsv("\"x,y\",\"line1\nline2\"\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][0], "x,y");
  EXPECT_EQ(doc->rows[0][1], "line1\nline2");
}

TEST(CsvTest, EscapedQuotes) {
  auto doc = ParseCsv("\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][0], "he said \"hi\"");
}

TEST(CsvTest, EmptyFields) {
  auto doc = ParseCsv("a,,c\n,,\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[0][1], "");
  EXPECT_EQ(doc->rows[1].size(), 3u);
}

TEST(CsvTest, UnterminatedQuoteIsCorruption) {
  auto doc = ParseCsv("\"unterminated\n");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kCorruption);
}

TEST(CsvTest, RoundTripThroughWriter) {
  CsvDocument doc;
  doc.rows = {{"label", "x"}, {"has,comma", "5"}, {"has\"quote", "7"}};
  const std::string text = WriteCsv(doc);
  auto parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows, doc.rows);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "skydia_csv_test.csv").string();
  CsvDocument doc;
  doc.rows = {{"a", "b"}, {"1", "2"}};
  ASSERT_TRUE(WriteCsvFile(path, doc).ok());
  auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows, doc.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsNotFound) {
  auto doc = ReadCsvFile("/nonexistent/skydia/file.csv");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kNotFound);
}

// --- adversarial inputs (fuzz corpus regressions) ----------------------------

TEST(CsvTest, SingleEmptyQuotedFieldRoundTrips) {
  // Found by fuzz_csv's round-trip invariant: a row holding exactly one
  // empty field used to render as a blank line, which the parser skips —
  // the row vanished on write/read. The writer now quotes it.
  auto doc = ParseCsv("\"\"\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows, (std::vector<std::vector<std::string>>{{""}}));
  EXPECT_EQ(WriteCsv(*doc), "\"\"\n");
  auto again = ParseCsv(WriteCsv(*doc));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->rows, doc->rows);
}

TEST(CsvTest, CarriageReturnInsideQuotesIsData) {
  // \r is CRLF tolerance only OUTSIDE quotes; inside quotes it is field
  // data, and the writer must quote it back so the round trip holds.
  auto doc = ParseCsv("\"a\rb\",c\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows, (std::vector<std::vector<std::string>>{{"a\rb", "c"}}));
  auto again = ParseCsv(WriteCsv(*doc));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->rows, doc->rows);
}

TEST(CsvTest, BareCarriageReturnsDroppedOutsideQuotes) {
  // Every unquoted \r is swallowed, even mid-field — lenient CRLF
  // handling pinned down so a stricter rewrite shows up as a test diff.
  auto doc = ParseCsv("a\rb,c\r\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows, (std::vector<std::vector<std::string>>{{"ab", "c"}}));
}

TEST(CsvTest, NulByteIsFieldData) {
  // NUL has no special meaning: it flows through parse and write like any
  // other byte (datasets are read in binary mode).
  const std::string text("a\0b,c\n", 6);
  auto doc = ParseCsv(text);
  ASSERT_TRUE(doc.ok());
  const std::string field("a\0b", 3);
  EXPECT_EQ(doc->rows, (std::vector<std::vector<std::string>>{{field, "c"}}));
  auto again = ParseCsv(WriteCsv(*doc));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->rows, doc->rows);
}

}  // namespace
}  // namespace skydia
