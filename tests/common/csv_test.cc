#include "src/common/csv.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

namespace skydia {
namespace {

TEST(CsvTest, ParsesSimpleRows) {
  auto doc = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(doc->rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvTest, HandlesMissingTrailingNewline) {
  auto doc = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[1][1], "2");
}

TEST(CsvTest, HandlesCrlf) {
  auto doc = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[0][0], "a");
}

TEST(CsvTest, QuotedFieldsWithCommasAndNewlines) {
  auto doc = ParseCsv("\"x,y\",\"line1\nline2\"\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][0], "x,y");
  EXPECT_EQ(doc->rows[0][1], "line1\nline2");
}

TEST(CsvTest, EscapedQuotes) {
  auto doc = ParseCsv("\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][0], "he said \"hi\"");
}

TEST(CsvTest, EmptyFields) {
  auto doc = ParseCsv("a,,c\n,,\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[0][1], "");
  EXPECT_EQ(doc->rows[1].size(), 3u);
}

TEST(CsvTest, UnterminatedQuoteIsCorruption) {
  auto doc = ParseCsv("\"unterminated\n");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kCorruption);
}

TEST(CsvTest, RoundTripThroughWriter) {
  CsvDocument doc;
  doc.rows = {{"label", "x"}, {"has,comma", "5"}, {"has\"quote", "7"}};
  const std::string text = WriteCsv(doc);
  auto parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows, doc.rows);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "skydia_csv_test.csv").string();
  CsvDocument doc;
  doc.rows = {{"a", "b"}, {"1", "2"}};
  ASSERT_TRUE(WriteCsvFile(path, doc).ok());
  auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows, doc.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsNotFound) {
  auto doc = ReadCsvFile("/nonexistent/skydia/file.csv");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace skydia
