#include "src/common/status.h"

#include <gtest/gtest.h>

namespace skydia {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::NotFound("b"), StatusCode::kNotFound},
      {Status::OutOfRange("c"), StatusCode::kOutOfRange},
      {Status::FailedPrecondition("d"), StatusCode::kFailedPrecondition},
      {Status::Corruption("e"), StatusCode::kCorruption},
      {Status::Unimplemented("f"), StatusCode::kUnimplemented},
      {Status::Internal("g"), StatusCode::kInternal},
      {Status::AlreadyExists("h"), StatusCode::kAlreadyExists},
      {Status::ResourceExhausted("i"), StatusCode::kResourceExhausted},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status s = Status::NotFound("missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, StatusCodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "AlreadyExists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string out = std::move(v).value();
  EXPECT_EQ(out, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

}  // namespace
}  // namespace skydia
