#include "src/common/sha256.h"

#include <string>

#include <gtest/gtest.h>

namespace skydia {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestToHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestToHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      DigestToHex(Sha256::Hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(DigestToHex(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.Update(msg.substr(0, split));
    h.Update(msg.substr(split));
    EXPECT_EQ(DigestToHex(h.Finish()), DigestToHex(Sha256::Hash(msg)))
        << "split at " << split;
  }
}

TEST(Sha256Test, ExactBlockBoundaryLengths) {
  // 55/56/63/64/65 bytes cross the padding edge cases.
  for (const size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string msg(len, 'x');
    Sha256 incremental;
    for (char c : msg) incremental.Update(&c, 1);
    EXPECT_EQ(DigestToHex(incremental.Finish()),
              DigestToHex(Sha256::Hash(msg)))
        << "length " << len;
  }
}

TEST(Sha256Test, DigestToHexFormat) {
  const std::string hex = DigestToHex(Sha256::Hash("abc"));
  EXPECT_EQ(hex.size(), 64u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
}

}  // namespace
}  // namespace skydia
