#include "src/common/random.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace skydia {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  const int kSamples = 50000;
  double sum = 0;
  double sum_sq = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.NextBernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.25, 0.02);
}

}  // namespace
}  // namespace skydia
