#include "src/common/logging.h"

#include <gtest/gtest.h>

namespace skydia {
namespace {

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  SKYDIA_LOG(Info) << "should be suppressed " << 42;
  SKYDIA_LOG(Debug) << "also suppressed";
  SetLogLevel(original);
  SUCCEED();
}

TEST(LoggingTest, ChecksPassOnTrueConditions) {
  SKYDIA_CHECK(true);
  SKYDIA_CHECK_EQ(1, 1);
  SKYDIA_CHECK_NE(1, 2);
  SKYDIA_CHECK_LT(1, 2);
  SKYDIA_CHECK_LE(2, 2);
  SKYDIA_CHECK_GT(3, 2);
  SKYDIA_CHECK_GE(3, 3);
  SUCCEED();
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(SKYDIA_CHECK(1 == 2), "check failed");
  EXPECT_DEATH(SKYDIA_CHECK_EQ(3, 4), "check failed");
}

}  // namespace
}  // namespace skydia
