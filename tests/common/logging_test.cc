#include "src/common/logging.h"

#include <string>

#include <gtest/gtest.h>

namespace skydia {
namespace {

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedMessagesDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  SKYDIA_LOG(Info) << "should be suppressed " << 42;
  SKYDIA_LOG(Debug) << "also suppressed";
  SetLogLevel(original);
  SUCCEED();
}

TEST(LoggingTest, ChecksPassOnTrueConditions) {
  SKYDIA_CHECK(true);
  SKYDIA_CHECK_EQ(1, 1);
  SKYDIA_CHECK_NE(1, 2);
  SKYDIA_CHECK_LT(1, 2);
  SKYDIA_CHECK_LE(2, 2);
  SKYDIA_CHECK_GT(3, 2);
  SKYDIA_CHECK_GE(3, 3);
  SUCCEED();
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(SKYDIA_CHECK(1 == 2), "check failed");
  EXPECT_DEATH(SKYDIA_CHECK_EQ(3, 4), "check failed");
}

TEST(LoggingTest, LevelFromStringAcceptsKnownSpellings) {
  const struct {
    const char* name;
    LogLevel want;
  } kCases[] = {
      {"debug", LogLevel::kDebug},     {"DEBUG", LogLevel::kDebug},
      {"info", LogLevel::kInfo},       {"INFO", LogLevel::kInfo},
      {"warning", LogLevel::kWarning}, {"WARNING", LogLevel::kWarning},
      {"warn", LogLevel::kWarning},    {"WARN", LogLevel::kWarning},
      {"error", LogLevel::kError},     {"ERROR", LogLevel::kError},
  };
  for (const auto& c : kCases) {
    LogLevel level = LogLevel::kInfo;
    EXPECT_TRUE(internal::LevelFromString(c.name, &level)) << c.name;
    EXPECT_EQ(level, c.want) << c.name;
  }
}

TEST(LoggingTest, LevelFromStringRejectsUnknownAndLeavesOutputUntouched) {
  for (const char* bad : {"", "verbose", "Info", "2", "warning "}) {
    LogLevel level = LogLevel::kError;
    EXPECT_FALSE(internal::LevelFromString(bad, &level)) << bad;
    EXPECT_EQ(level, LogLevel::kError) << bad;
  }
}

TEST(LoggingTest, LogPrefixCarriesTimestampThreadIdLevelAndLocation) {
  const std::string prefix =
      internal::LogPrefix(LogLevel::kWarning, "file.cc", 42);
  // Shape: "[<seconds> T<id> WARN  file.cc:42] " — monotonic seconds first,
  // then the trace-correlatable thread id.
  EXPECT_EQ(prefix.front(), '[');
  EXPECT_NE(prefix.find(" T"), std::string::npos);
  EXPECT_NE(prefix.find("WARN"), std::string::npos);
  EXPECT_NE(prefix.find("file.cc:42] "), std::string::npos);
  EXPECT_NE(prefix.find('.'), std::string::npos);  // fractional seconds
}

TEST(LoggingTest, LogPrefixTimestampsAreMonotonic) {
  const auto seconds_of = [](const std::string& prefix) {
    return std::stod(prefix.substr(1, prefix.find(" T") - 1));
  };
  const double first =
      seconds_of(internal::LogPrefix(LogLevel::kInfo, "a.cc", 1));
  const double second =
      seconds_of(internal::LogPrefix(LogLevel::kInfo, "a.cc", 2));
  EXPECT_GE(second, first);
  EXPECT_GE(first, 0.0);
}

}  // namespace
}  // namespace skydia
