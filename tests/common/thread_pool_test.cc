#include "src/common/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace skydia {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroCount) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.ParallelFor(3, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, SingleThreadPoolIsSequentiallyCorrect) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.WaitIdle();
  // One worker drains the FIFO in submission order.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.ParallelFor(20, [&](size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
}  // namespace skydia
