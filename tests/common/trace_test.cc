// Unit tests for the tracing subsystem (src/common/trace.h): span nesting,
// ring-buffer wraparound, JSON escaping, the Chrome-trace export, and the
// text summary. Trace state is process-global, so every test that records
// runs its emission on a dedicated named thread and locates its own track by
// that name — tracks left behind by other suites in the same binary are
// ignored, not asserted away.
#include "src/common/trace.h"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace skydia::trace {
namespace {

/// RAII guard: enables tracing with a chosen ring capacity, restores the
/// defaults and clears all recorded state on exit so suites do not leak
/// events into each other.
class ScopedTracing {
 public:
  explicit ScopedTracing(size_t ring_events = 16384) {
    SetEnabled(false);
    Reset();
    SetRingCapacity(ring_events);
    SetEnabled(true);
  }
  ~ScopedTracing() {
    SetEnabled(false);
    Reset();
    SetRingCapacity(16384);
  }
};

/// Runs `body` on a fresh thread named `track_name` (fresh thread = fresh
/// ring buffer at the currently configured capacity), then returns that
/// thread's drained track, or nullopt when the thread never emitted — a
/// thread that records nothing allocates no ring buffer at all.
std::optional<ThreadTrack> MaybeEmitOnNamedThread(
    const std::string& track_name, const std::function<void()>& body) {
  std::thread worker([&] {
    SetThreadName(track_name);
    body();
  });
  worker.join();
  const TraceSnapshot snapshot = Collect();
  for (const ThreadTrack& track : snapshot.threads) {
    if (track.name == track_name) return track;
  }
  return std::nullopt;
}

/// MaybeEmitOnNamedThread for tests that expect the track to exist.
ThreadTrack EmitOnNamedThread(const std::string& track_name,
                              const std::function<void()>& body) {
  std::optional<ThreadTrack> track = MaybeEmitOnNamedThread(track_name, body);
  if (!track.has_value()) {
    ADD_FAILURE() << "no track named " << track_name;
    return ThreadTrack{};
  }
  return *std::move(track);
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  SetEnabled(false);
  Reset();
  // A fully disabled thread allocates no ring buffer, so its track does not
  // even exist in the snapshot.
  const std::optional<ThreadTrack> track =
      MaybeEmitOnNamedThread("disabled-thread", [] {
        SKYDIA_TRACE_SPAN("should.not.appear");
        Counter("also.not", 1);
      });
  EXPECT_FALSE(track.has_value());
}

TEST(TraceTest, SpanRecordsNameAndDuration) {
  ScopedTracing tracing;
  const ThreadTrack track = EmitOnNamedThread("span-thread", [] {
    SKYDIA_TRACE_SPAN("unit.work");
  });
  ASSERT_EQ(track.events.size(), 1u);
  const TraceEvent& event = track.events[0];
  EXPECT_STREQ(event.name, "unit.work");
  EXPECT_EQ(event.kind, TraceEvent::Kind::kSpan);
  EXPECT_EQ(event.depth, 0u);
}

TEST(TraceTest, NestedSpansTrackDepth) {
  ScopedTracing tracing;
  const ThreadTrack track = EmitOnNamedThread("nest-thread", [] {
    EXPECT_EQ(internal::SpanDepth(), 0);
    SKYDIA_TRACE_SPAN("outer");
    EXPECT_EQ(internal::SpanDepth(), 1);
    {
      SKYDIA_TRACE_SPAN("middle");
      EXPECT_EQ(internal::SpanDepth(), 2);
      {
        SKYDIA_TRACE_SPAN("inner");
        EXPECT_EQ(internal::SpanDepth(), 3);
      }
      EXPECT_EQ(internal::SpanDepth(), 2);
    }
    EXPECT_EQ(internal::SpanDepth(), 1);
  });
  // Events close innermost-first; depth is the number of open ancestors at
  // the moment the span closed.
  ASSERT_EQ(track.events.size(), 3u);
  for (const TraceEvent& event : track.events) {
    const std::string name = event.name;
    const uint32_t want = name == "outer" ? 0u : name == "middle" ? 1u : 2u;
    EXPECT_EQ(event.depth, want) << name;
  }
  // The outer span starts first and fully contains the inner ones.
  EXPECT_STREQ(track.events[0].name, "outer");
  EXPECT_GE(track.events[0].duration_ns, track.events[1].duration_ns);
}

TEST(TraceTest, RingWraparoundKeepsNewestAndCountsDropped) {
  constexpr size_t kCapacity = 8;  // already a power of two
  constexpr size_t kEmitted = 20;
  ScopedTracing tracing(kCapacity);
  const ThreadTrack track = EmitOnNamedThread("wrap-thread", [] {
    for (size_t i = 0; i < kEmitted; ++i) {
      Counter("wrap.counter", i);
    }
  });
  EXPECT_EQ(track.dropped, kEmitted - kCapacity);
  ASSERT_EQ(track.events.size(), kCapacity);
  // Newest-wins: the surviving values are the last kCapacity emissions.
  std::vector<uint64_t> values;
  for (const TraceEvent& event : track.events) {
    EXPECT_EQ(event.kind, TraceEvent::Kind::kCounter);
    values.push_back(event.value);
  }
  std::sort(values.begin(), values.end());
  for (size_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(values[i], kEmitted - kCapacity + i);
  }
}

TEST(TraceTest, TinyCapacityIsRoundedUpToMinimum) {
  ScopedTracing tracing(/*ring_events=*/1);  // clamped to 8
  const ThreadTrack track = EmitOnNamedThread("tiny-thread", [] {
    for (int i = 0; i < 8; ++i) Counter("tiny", 1);
  });
  EXPECT_EQ(track.events.size(), 8u);
  EXPECT_EQ(track.dropped, 0u);
}

TEST(TraceTest, CounterRecordsValue) {
  ScopedTracing tracing;
  const ThreadTrack track = EmitOnNamedThread("counter-thread", [] {
    Counter("cells", 4096);
  });
  ASSERT_EQ(track.events.size(), 1u);
  EXPECT_EQ(track.events[0].kind, TraceEvent::Kind::kCounter);
  EXPECT_EQ(track.events[0].value, 4096u);
}

TEST(TraceTest, ResetClearsRecordedEvents) {
  ScopedTracing tracing;
  EmitOnNamedThread("reset-thread", [] { SKYDIA_TRACE_SPAN("pre.reset"); });
  SetEnabled(false);
  Reset();
  SetEnabled(true);
  const TraceSnapshot snapshot = Collect();
  for (const ThreadTrack& track : snapshot.threads) {
    EXPECT_TRUE(track.events.empty()) << "track T" << track.tid;
  }
}

TEST(TraceTest, JsonEscaping) {
  const auto escaped = [](const char* in) {
    std::string out;
    internal::AppendJsonEscaped(in, &out);
    return out;
  };
  EXPECT_EQ(escaped("plain"), "plain");
  EXPECT_EQ(escaped("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escaped("back\\slash"), "back\\\\slash");
  EXPECT_EQ(escaped("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(escaped("cr\rtab\t"), "cr\\rtab\\t");
  EXPECT_EQ(escaped(std::string(1, '\x01').c_str()), "\\u0001");
  EXPECT_EQ(escaped(std::string(1, '\x1f').c_str()), "\\u001f");
  // 0x20 and above pass through, including UTF-8 continuation bytes.
  EXPECT_EQ(escaped("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(TraceTest, ChromeTraceJsonContainsSpansCountersAndThreadNames) {
  ScopedTracing tracing;
  const ThreadTrack track = EmitOnNamedThread("json \"quoted\" thread", [] {
    SKYDIA_TRACE_SPAN("json.span");
    Counter("json.counter", 7);
  });
  TraceSnapshot snapshot;
  snapshot.threads.push_back(track);
  snapshot.total_events = track.events.size();
  const std::string json = ToChromeTraceJson(snapshot);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"json.span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":7}"), std::string::npos);
  // The thread-name metadata event, with the name JSON-escaped.
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("json \\\"quoted\\\" thread"), std::string::npos);
  // Balanced object: starts with '{', ends with the closing of traceEvents.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.substr(json.size() - 2), "]}");
}

TEST(TraceTest, TextSummaryAggregatesPerSpanName) {
  ScopedTracing tracing;
  const ThreadTrack track = EmitOnNamedThread("summary-thread", [] {
    for (int i = 0; i < 3; ++i) {
      SKYDIA_TRACE_SPAN("summary.repeat");
    }
    Counter("summary.count", 11);
  });
  TraceSnapshot snapshot;
  snapshot.threads.push_back(track);
  snapshot.total_events = track.events.size();
  const std::string text = RenderTextSummary(snapshot);
  EXPECT_NE(text.find("summary.repeat"), std::string::npos);
  EXPECT_NE(text.find("count=3"), std::string::npos);
  EXPECT_NE(text.find("summary.count"), std::string::npos);
  EXPECT_NE(text.find("last=11"), std::string::npos);
  EXPECT_NE(text.find("summary-thread"), std::string::npos);
}

TEST(TraceTest, SpanDisabledMidFlightStillClosesCleanly) {
  // A span constructed while enabled must not crash (and must still record)
  // if tracing is switched off before it closes; one constructed while
  // disabled stays inert even if tracing is enabled before it closes.
  SetEnabled(false);
  Reset();
  SetEnabled(true);
  EmitOnNamedThread("midflight-on", [] {
    Span span("midflight.enabled");
    SetEnabled(false);
  });
  SetEnabled(true);
  const std::optional<ThreadTrack> off_track =
      MaybeEmitOnNamedThread("midflight-off", [] {
        SetEnabled(false);
        Span span("midflight.disabled");
        SetEnabled(true);
      });
  EXPECT_FALSE(off_track.has_value());
  SetEnabled(false);
  Reset();
}

TEST(TraceTest, WriteChromeTraceRejectsUnwritablePath) {
  const TraceSnapshot empty;
  EXPECT_FALSE(WriteChromeTrace(empty, "/nonexistent-dir/trace.json").ok());
}

// ---------------------------------------------------------------------------
// Flight recorder (always-on sampled mode) and request contexts.

TEST(TraceTest, FlightRecorderSamplesEveryNthSpanAndAllCounters) {
  RecorderOptions options;
  options.sample_period = 4;
  EnableFlightRecorder(options);
  EXPECT_TRUE(RecorderActive());
  EXPECT_FALSE(Enabled());  // sampled mode reads as "not full"
  const ThreadTrack track = EmitOnNamedThread("sampled-thread", [] {
    internal::t_sample_countdown = 1;  // deterministic draw: record span 1
    for (int i = 0; i < 16; ++i) {
      SKYDIA_TRACE_SPAN("sampled.span");
    }
    Counter("sampled.counter", 42);
  });
  DisableFlightRecorder();
  Reset();
  size_t spans = 0;
  size_t counters = 0;
  for (const TraceEvent& event : track.events) {
    (event.kind == TraceEvent::Kind::kSpan ? spans : counters)++;
  }
  EXPECT_EQ(spans, 4u);  // spans 1, 5, 9, 13 of the 16
  // Counters are low-rate and bypass the span sampling draw entirely.
  EXPECT_EQ(counters, 1u);
}

TEST(TraceTest, SetEnabledFalseFallsBackToSampledWhileRecorderActive) {
  EnableFlightRecorder();
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
  SetEnabled(false);
  EXPECT_FALSE(Enabled());        // full tracing is off again...
  EXPECT_TRUE(RecorderActive());  // ...but the always-on window survives
  const ThreadTrack track = EmitOnNamedThread("fallback-thread", [] {
    internal::t_sample_countdown = 1;
    SKYDIA_TRACE_SPAN("fallback.span");
  });
  EXPECT_EQ(track.events.size(), 1u);
  DisableFlightRecorder();
  EXPECT_FALSE(RecorderActive());
  // With the recorder disarmed, SetEnabled(false) means fully off.
  const std::optional<ThreadTrack> off =
      MaybeEmitOnNamedThread("fallback-off-thread", [] {
        SKYDIA_TRACE_SPAN("fallback.off");
      });
  EXPECT_FALSE(off.has_value());
  Reset();
}

TEST(TraceTest, CollectRecentDropsEventsOlderThanTheWindow) {
  RecorderOptions wide;
  wide.sample_period = 1;
  EnableFlightRecorder(wide);  // default ~10 s window
  const std::string name = "recent-thread";
  EmitOnNamedThread(name, [] {
    internal::t_sample_countdown = 1;
    SKYDIA_TRACE_SPAN("recent.span");
  });
  bool found = false;
  for (const ThreadTrack& track : CollectRecent().threads) {
    if (track.name == name) found = !track.events.empty();
  }
  EXPECT_TRUE(found);
  // Shrinking the window to 1 ns ages the span out (re-arming an active
  // recorder keeps the epoch, so existing timestamps stay comparable).
  RecorderOptions narrow;
  narrow.sample_period = 1;
  narrow.window_ns = 1;
  EnableFlightRecorder(narrow);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  for (const ThreadTrack& track : CollectRecent().threads) {
    if (track.name == name) {
      EXPECT_TRUE(track.events.empty());
    }
  }
  DisableFlightRecorder();
  Reset();
}

TEST(TraceTest, RequestTokensResolveToServerAndClientIds) {
  EXPECT_EQ(RequestIdForToken(0), "");
  EXPECT_EQ(RegisterRequestId(""), 0u);
  const uint64_t server = NextServerRequestToken();
  EXPECT_EQ(RequestIdForToken(server), "s" + std::to_string(server));
  const uint64_t client = RegisterRequestId("abc-123");
  EXPECT_EQ(RequestIdForToken(client), "abc-123");
  // Contexts nest and restore on scope exit.
  EXPECT_EQ(CurrentRequestContext(), 0u);
  {
    ScopedRequestContext outer(server);
    EXPECT_EQ(CurrentRequestContext(), server);
    {
      ScopedRequestContext inner(client);
      EXPECT_EQ(CurrentRequestContext(), client);
    }
    EXPECT_EQ(CurrentRequestContext(), server);
  }
  EXPECT_EQ(CurrentRequestContext(), 0u);
}

TEST(TraceTest, EvictedClientRidsFallBackToStablePlaceholders) {
  const uint64_t first = RegisterRequestId("evict-me");
  ASSERT_EQ(RequestIdForToken(first), "evict-me");
  // Flood the intern ring so "evict-me" is overwritten.
  for (int i = 0; i < 4096; ++i) {
    RegisterRequestId("filler");
  }
  const uint64_t seq = first & ~(uint64_t{1} << 63);
  EXPECT_EQ(RequestIdForToken(first), "c" + std::to_string(seq));
}

TEST(TraceTest, SpansCarryTheRequestContextAndExportRidArgs) {
  ScopedTracing tracing;  // full mode: every span records
  const uint64_t token = RegisterRequestId("req \"42\"");
  const ThreadTrack track = EmitOnNamedThread("ctx-thread", [token] {
    {
      ScopedRequestContext scope(token);
      SKYDIA_TRACE_SPAN("ctx.tagged");
    }
    SKYDIA_TRACE_SPAN("ctx.untagged");
  });
  ASSERT_EQ(track.events.size(), 2u);
  EXPECT_EQ(track.events[0].ctx, token);  // ascending start: tagged first
  EXPECT_EQ(track.events[1].ctx, 0u);
  TraceSnapshot snapshot;
  snapshot.threads.push_back(track);
  snapshot.total_events = track.events.size();
  const std::string json = ToChromeTraceJson(snapshot);
  // The rid rides in "args" with full JSON escaping; untagged spans omit it.
  EXPECT_NE(json.find("\"args\":{\"rid\":\"req \\\"42\\\"\"}"),
            std::string::npos);
}

TEST(TraceTest, CrashHandlerDumpsRecentWindowBeforeReRaising) {
  const std::string path =
      ::testing::TempDir() + "skydia-crash-trace-test.json";
  std::remove(path.c_str());
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: arm the recorder, record one span, then die. The signal is
    // raised rather than produced by a real bad dereference so the test
    // exercises only the handler, not undefined behavior.
    RecorderOptions options;
    options.sample_period = 1;
    EnableFlightRecorder(options);
    internal::t_sample_countdown = 1;
    if (!InstallCrashHandler(path).ok()) _exit(3);
    { SKYDIA_TRACE_SPAN("crash.span"); }
    std::raise(SIGSEGV);
    _exit(4);  // unreachable: the handler re-raises with SIG_DFL
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "crash handler wrote no dump at " << path;
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(contents.str().find("crash.span"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceTest, CurrentThreadIdIsStablePerThread) {
  const uint32_t mine = CurrentThreadId();
  EXPECT_EQ(CurrentThreadId(), mine);
  uint32_t other = 0;
  std::thread t([&] { other = CurrentThreadId(); });
  t.join();
  EXPECT_NE(other, mine);
  EXPECT_NE(other, 0u);
}

}  // namespace
}  // namespace skydia::trace
