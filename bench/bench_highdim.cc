// Experiment fig14-highdim: the d-dimensional diagram constructions
// (baseline vs DSG vs scanning) for d = 3 and d = 4 on small cardinalities —
// the O(n^d) hyper-cell grid dominates everything, which is why the paper
// treats high dimensions as an extension rather than a workhorse.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/highdim.h"

namespace skydia::bench {
namespace {

DatasetNd MakeNd(int64_t n, int dims) {
  DataGenOptions options;
  options.n = static_cast<size_t>(n);
  options.domain_size = 256;
  options.seed = kBenchSeed;
  auto nd = GenerateDatasetNd(options, dims);
  SKYDIA_CHECK(nd.ok());
  return std::move(nd).value();
}

void HighDimArgs(benchmark::internal::Benchmark* b) {
  for (const int64_t n : {12, 16, 20, 24}) b->Args({3, n});
  for (const int64_t n : {8, 10, 12}) b->Args({4, n});
  b->ArgNames({"d", "n"})->Unit(benchmark::kMillisecond)->Iterations(1);
}

void BM_NdBaseline(benchmark::State& state) {
  const DatasetNd ds = MakeNd(state.range(1), static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const NdCellDiagram diagram = BuildNdBaseline(ds, {});
    benchmark::DoNotOptimize(diagram.CellSkyline(0).data());
  }
}
BENCHMARK(BM_NdBaseline)->Apply(HighDimArgs);

void BM_NdDsg(benchmark::State& state) {
  const DatasetNd ds = MakeNd(state.range(1), static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const NdCellDiagram diagram = BuildNdDsg(ds, {});
    benchmark::DoNotOptimize(diagram.CellSkyline(0).data());
  }
}
BENCHMARK(BM_NdDsg)->Apply(HighDimArgs);

void BM_NdScanning(benchmark::State& state) {
  const DatasetNd ds = MakeNd(state.range(1), static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const NdCellDiagram diagram = BuildNdScanning(ds, {});
    benchmark::DoNotOptimize(diagram.CellSkyline(0).data());
  }
}
BENCHMARK(BM_NdScanning)->Apply(HighDimArgs);

void BM_NdScanningInclusionExclusion(benchmark::State& state) {
  const DatasetNd ds = MakeNd(state.range(1), static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const NdCellDiagram diagram = BuildNdScanningInclusionExclusion(ds, {});
    benchmark::DoNotOptimize(diagram.CellSkyline(0).data());
  }
}
BENCHMARK(BM_NdScanningInclusionExclusion)->Apply(HighDimArgs);

}  // namespace
}  // namespace skydia::bench

SKYDIA_BENCH_MAIN(bench_highdim);
