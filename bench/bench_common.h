// Shared helpers for the skydia benchmark harnesses. Every experiment id in
// EXPERIMENTS.md maps to one binary in this directory; binaries print
// google-benchmark tables whose rows mirror the reconstructed figures/tables
// of the paper (see DESIGN.md, "Per-experiment index").
#ifndef SKYDIA_BENCH_BENCH_COMMON_H_
#define SKYDIA_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/core/diagram.h"
#include "src/datagen/distributions.h"
#include "src/geometry/dataset.h"

namespace skydia::bench {

inline constexpr uint64_t kBenchSeed = 20180416;  // ICDE'18 week, fixed forever

inline Distribution DistributionFromIndex(int64_t index) {
  switch (index) {
    case 0:
      return Distribution::kCorrelated;
    case 1:
      return Distribution::kIndependent;
    case 2:
      return Distribution::kAnticorrelated;
    default:
      return Distribution::kClustered;
  }
}

inline Dataset MakeDataset(int64_t n, int64_t domain, Distribution dist,
                           uint64_t seed = kBenchSeed) {
  DataGenOptions options;
  options.n = static_cast<size_t>(n);
  options.domain_size = domain;
  options.distribution = dist;
  options.seed = seed;
  auto ds = GenerateDataset(options);
  SKYDIA_CHECK(ds.ok());
  return std::move(ds).value();
}

inline Dataset MakeDistinctDataset(int64_t n, int64_t domain,
                                   Distribution dist,
                                   uint64_t seed = kBenchSeed) {
  DataGenOptions options;
  options.n = static_cast<size_t>(n);
  options.domain_size = domain;
  options.distribution = dist;
  options.seed = seed;
  options.distinct_coordinates = true;
  auto ds = GenerateDataset(options);
  SKYDIA_CHECK(ds.ok());
  return std::move(ds).value();
}

inline Dataset CopyDataset(const Dataset& ds) {
  std::vector<std::string> labels;
  if (ds.has_labels()) {
    labels.reserve(ds.size());
    for (PointId id = 0; id < ds.size(); ++id) labels.push_back(ds.label(id));
  }
  auto copy = Dataset::Create(ds.points(), ds.domain_size(), std::move(labels));
  SKYDIA_CHECK(copy.ok());
  return std::move(copy).value();
}

// Benchmark-side spelling of the public builder facade. The dataset copy is
// O(n) against Ω(n log n) construction, so the measured loop stays dominated
// by the build itself.
inline SkylineDiagram BuildDiagram(
    const Dataset& ds, SkylineQueryType type,
    BuildAlgorithm algorithm = BuildAlgorithm::kAuto, int parallelism = 1,
    const DiagramOptions& diagram_options = {}) {
  SkylineBuildOptions options;
  options.algorithm = algorithm;
  options.parallelism = parallelism;
  options.diagram = diagram_options;
  auto built = SkylineDiagram::Build(CopyDataset(ds), type, options);
  SKYDIA_CHECK(built.ok());
  return std::move(built).value();
}

}  // namespace skydia::bench

#endif  // SKYDIA_BENCH_BENCH_COMMON_H_
