// Shared helpers for the skydia benchmark harnesses. Every experiment id in
// EXPERIMENTS.md maps to one binary in this directory; binaries print
// google-benchmark tables whose rows mirror the reconstructed figures/tables
// of the paper (see DESIGN.md, "Per-experiment index").
#ifndef SKYDIA_BENCH_BENCH_COMMON_H_
#define SKYDIA_BENCH_BENCH_COMMON_H_

#include <cstdint>

#include "src/common/logging.h"
#include "src/datagen/distributions.h"
#include "src/geometry/dataset.h"

namespace skydia::bench {

inline constexpr uint64_t kBenchSeed = 20180416;  // ICDE'18 week, fixed forever

inline Distribution DistributionFromIndex(int64_t index) {
  switch (index) {
    case 0:
      return Distribution::kCorrelated;
    case 1:
      return Distribution::kIndependent;
    case 2:
      return Distribution::kAnticorrelated;
    default:
      return Distribution::kClustered;
  }
}

inline Dataset MakeDataset(int64_t n, int64_t domain, Distribution dist,
                           uint64_t seed = kBenchSeed) {
  DataGenOptions options;
  options.n = static_cast<size_t>(n);
  options.domain_size = domain;
  options.distribution = dist;
  options.seed = seed;
  auto ds = GenerateDataset(options);
  SKYDIA_CHECK(ds.ok());
  return std::move(ds).value();
}

inline Dataset MakeDistinctDataset(int64_t n, int64_t domain,
                                   Distribution dist,
                                   uint64_t seed = kBenchSeed) {
  DataGenOptions options;
  options.n = static_cast<size_t>(n);
  options.domain_size = domain;
  options.distribution = dist;
  options.seed = seed;
  options.distinct_coordinates = true;
  auto ds = GenerateDataset(options);
  SKYDIA_CHECK(ds.ok());
  return std::move(ds).value();
}

}  // namespace skydia::bench

#endif  // SKYDIA_BENCH_BENCH_COMMON_H_
