// Shared helpers for the skydia benchmark harnesses. Every experiment id in
// EXPERIMENTS.md maps to one binary in this directory; binaries print
// google-benchmark tables whose rows mirror the reconstructed figures/tables
// of the paper (see DESIGN.md, "Per-experiment index").
//
// Every binary closes with SKYDIA_BENCH_MAIN(<name>) instead of
// BENCHMARK_MAIN(): besides the usual console table it writes a
// machine-readable baseline `BENCH_<name>.json` (schema checked by
// tools/bench_schema_check.py, consumed by the CI perf-smoke job) into
// $SKYDIA_BENCH_JSON_DIR, or the working directory when unset.
#ifndef SKYDIA_BENCH_BENCH_COMMON_H_
#define SKYDIA_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/trace.h"
#include "src/common/version.h"
#include "src/core/diagram.h"
#include "src/datagen/distributions.h"
#include "src/geometry/dataset.h"

namespace skydia::bench {

inline constexpr uint64_t kBenchSeed = 20180416;  // ICDE'18 week, fixed forever

inline Distribution DistributionFromIndex(int64_t index) {
  switch (index) {
    case 0:
      return Distribution::kCorrelated;
    case 1:
      return Distribution::kIndependent;
    case 2:
      return Distribution::kAnticorrelated;
    default:
      return Distribution::kClustered;
  }
}

inline Dataset MakeDataset(int64_t n, int64_t domain, Distribution dist,
                           uint64_t seed = kBenchSeed) {
  DataGenOptions options;
  options.n = static_cast<size_t>(n);
  options.domain_size = domain;
  options.distribution = dist;
  options.seed = seed;
  auto ds = GenerateDataset(options);
  SKYDIA_CHECK(ds.ok());
  return std::move(ds).value();
}

inline Dataset MakeDistinctDataset(int64_t n, int64_t domain,
                                   Distribution dist,
                                   uint64_t seed = kBenchSeed) {
  DataGenOptions options;
  options.n = static_cast<size_t>(n);
  options.domain_size = domain;
  options.distribution = dist;
  options.seed = seed;
  options.distinct_coordinates = true;
  auto ds = GenerateDataset(options);
  SKYDIA_CHECK(ds.ok());
  return std::move(ds).value();
}

inline Dataset CopyDataset(const Dataset& ds) {
  std::vector<std::string> labels;
  if (ds.has_labels()) {
    labels.reserve(ds.size());
    for (PointId id = 0; id < ds.size(); ++id) labels.push_back(ds.label(id));
  }
  auto copy = Dataset::Create(ds.points(), ds.domain_size(), std::move(labels));
  SKYDIA_CHECK(copy.ok());
  return std::move(copy).value();
}

// Benchmark-side spelling of the public builder facade. The dataset copy is
// O(n) against Ω(n log n) construction, so the measured loop stays dominated
// by the build itself.
inline SkylineDiagram BuildDiagram(
    const Dataset& ds, SkylineQueryType type,
    BuildAlgorithm algorithm = BuildAlgorithm::kAuto, int parallelism = 1,
    const DiagramOptions& diagram_options = {}) {
  SkylineBuildOptions options;
  options.algorithm = algorithm;
  options.parallelism = parallelism;
  options.diagram = diagram_options;
  auto built = SkylineDiagram::Build(CopyDataset(ds), type, options);
  SKYDIA_CHECK(built.ok());
  return std::move(built).value();
}

// --- machine-readable baselines ----------------------------------------------

/// A console reporter that additionally records every successful run and can
/// serialize the lot as a `BENCH_<name>.json` baseline. Aggregate rows
/// (mean/median/stddev under --benchmark_repetitions) are recorded alongside
/// iteration rows, tagged by their `aggregate` field.
class JsonBaselineReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonBaselineReporter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (!run.error_occurred) runs_.push_back(run);
    }
  }

  /// Writes the baseline next to $SKYDIA_BENCH_JSON_DIR (cwd when unset).
  /// Schema: tools/bench_schema_check.py is the executable contract.
  bool WriteBaseline() const {
    std::string out;
    out.reserve(4096);
    out += "{\n  \"schema_version\": 1,\n  \"bench\": ";
    Quoted(bench_name_, &out);
    out += ",\n  \"version\": ";
    Quoted(kVersion, &out);
    out += ",\n  \"commit\": ";
    Quoted(CommitStamp(), &out);
    out += ",\n  \"build_type\": ";
#ifdef NDEBUG
    Quoted("release", &out);
#else
    Quoted("debug", &out);
#endif
    out += ",\n  \"compiler\": ";
    Quoted(__VERSION__, &out);
    out += ",\n  \"hardware_concurrency\": ";
    out += std::to_string(std::thread::hardware_concurrency());
    out += ",\n  \"timestamp_unix\": ";
    out += std::to_string(static_cast<int64_t>(std::time(nullptr)));
    out += ",\n  \"benchmarks\": [";
    for (size_t i = 0; i < runs_.size(); ++i) {
      const Run& run = runs_[i];
      out += i == 0 ? "\n" : ",\n";
      out += "    {\"name\": ";
      Quoted(run.benchmark_name(), &out);
      out += ", \"iterations\": ";
      out += std::to_string(run.iterations);
      // Accumulated seconds over all iterations -> ns per iteration.
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      out += ", \"real_time_ns\": ";
      AppendDouble(run.real_accumulated_time * 1e9 / iters, &out);
      out += ", \"cpu_time_ns\": ";
      AppendDouble(run.cpu_accumulated_time * 1e9 / iters, &out);
      if (run.run_type == Run::RT_Aggregate) {
        out += ", \"aggregate\": ";
        Quoted(run.aggregate_name, &out);
      }
      if (!run.report_label.empty()) {
        out += ", \"label\": ";
        Quoted(run.report_label, &out);
      }
      if (!run.counters.empty()) {
        out += ", \"counters\": {";
        bool first = true;
        for (const auto& [name, counter] : run.counters) {
          out += first ? "" : ", ";
          first = false;
          Quoted(name, &out);
          out += ": ";
          AppendDouble(counter.value, &out);
        }
        out += "}";
      }
      out += "}";
    }
    out += "\n  ]\n}\n";

    const char* dir = std::getenv("SKYDIA_BENCH_JSON_DIR");
    std::string path = dir != nullptr && dir[0] != '\0' ? dir : ".";
    path += "/BENCH_" + bench_name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   path.c_str());
      return false;
    }
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    const bool closed = std::fclose(f) == 0;
    if (ok && closed) {
      std::fprintf(stderr, "wrote baseline %s (%zu rows)\n", path.c_str(),
                   runs_.size());
    } else {
      std::fprintf(stderr, "error: short write to %s\n", path.c_str());
    }
    return ok && closed;
  }

 private:
  static void Quoted(const std::string& text, std::string* out) {
    out->push_back('"');
    trace::internal::AppendJsonEscaped(text.c_str(), out);
    out->push_back('"');
  }
  static void AppendDouble(double value, std::string* out) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    out->append(buf);
  }
  /// CI stamps commits via SKYDIA_GIT_COMMIT at compile time or GITHUB_SHA
  /// in the environment; local builds fall back to "unknown".
  static std::string CommitStamp() {
    const std::string compiled = BuildCommit();
    if (compiled != "unknown") return compiled;
    const char* sha = std::getenv("GITHUB_SHA");
    return sha != nullptr && sha[0] != '\0' ? sha : "unknown";
  }

  std::string bench_name_;
  std::vector<Run> runs_;
};

/// BENCHMARK_MAIN() body plus the JSON baseline side-channel.
inline int BenchMain(int argc, char** argv, const char* bench_name) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonBaselineReporter reporter(bench_name);
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  const bool written = reporter.WriteBaseline();
  ::benchmark::Shutdown();
  return written ? 0 : 1;
}

}  // namespace skydia::bench

/// Drop-in replacement for BENCHMARK_MAIN(): also emits BENCH_<name>.json.
#define SKYDIA_BENCH_MAIN(name)                           \
  int main(int argc, char** argv) {                       \
    return ::skydia::bench::BenchMain(argc, argv, #name); \
  }                                                       \
  static_assert(true, "require a trailing semicolon")

#endif  // SKYDIA_BENCH_BENCH_COMMON_H_
