// Experiment tab4-substrate: the classic skyline algorithms underpinning all
// diagram baselines (sort-scan, BNL, SFS, divide & conquer) across the three
// canonical distributions. Anchors the substrate costs every other number
// builds on.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/skyline/algorithms.h"

namespace skydia::bench {
namespace {

void SkylineArgs(benchmark::internal::Benchmark* b, int64_t max_n) {
  for (int64_t dist = 0; dist < 3; ++dist) {
    for (int64_t n = 1024; n <= max_n; n *= 8) {
      b->Args({dist, n});
    }
  }
  b->ArgNames({"dist", "n"})->Unit(benchmark::kMillisecond);
}

void RunSkyline(benchmark::State& state, SkylineAlgorithm algorithm,
                int64_t n) {
  const Dataset ds =
      MakeDataset(n, 1 << 20, DistributionFromIndex(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSkyline2d(ds, algorithm));
  }
  state.SetLabel(DistributionName(DistributionFromIndex(state.range(0))));
}

void BM_SkylineSortScan(benchmark::State& state) {
  RunSkyline(state, SkylineAlgorithm::kSortScan, state.range(1));
}
BENCHMARK(BM_SkylineSortScan)->Apply([](auto* b) { SkylineArgs(b, 65536); });

void BM_SkylineBnl(benchmark::State& state) {
  RunSkyline(state, SkylineAlgorithm::kBlockNestedLoop, state.range(1));
}
BENCHMARK(BM_SkylineBnl)->Apply([](auto* b) { SkylineArgs(b, 65536); });

void BM_SkylineSfs(benchmark::State& state) {
  RunSkyline(state, SkylineAlgorithm::kSortFilter, state.range(1));
}
BENCHMARK(BM_SkylineSfs)->Apply([](auto* b) { SkylineArgs(b, 65536); });

void BM_SkylineDivideConquer(benchmark::State& state) {
  RunSkyline(state, SkylineAlgorithm::kDivideConquer, state.range(1));
}
BENCHMARK(BM_SkylineDivideConquer)->Apply([](auto* b) {
  SkylineArgs(b, 65536);
});

}  // namespace
}  // namespace skydia::bench

SKYDIA_BENCH_MAIN(bench_skyline_algos);
