// Closed-loop throughput benchmark for the `skydia serve` daemon.
//
// Opens N connections, keeps `pipeline` query lines in flight on each, and
// measures completed replies over a wall-clock window. Modes:
//
//   bench_serve_throughput --port P [--host H]      drive an external server
//   bench_serve_throughput                          self-hosted: builds an
//       n=4096 quadrant fixture, starts an in-process SkylineServer, and
//       drives it over real loopback sockets (the CI smoke configuration).
//   bench_serve_throughput --sweep-connections 1,8,64 --sweep-shards 1,2,4
//       self-hosted sweep: one measurement cell per connections x shards
//       combination, each cell against a freshly started server.
//
// Flags: --connections C (default 4), --shards S (default 1), --workers W
//        (default 1), --threads T (engine shard pool, default 1),
//        --client-threads T (load-generator threads multiplexing the
//        connections, default 4), --distinct-queries Q (shared pool of
//        distinct query points all connections sample from, default 4096;
//        0 = every burst unique), --pipeline D (default 64),
//        --reconnect-every K (tear down and re-dial each connection after
//        K completed bursts — a connection-churn workload exercising the
//        accept path; 0 = persistent connections),
//        --duration-seconds S (default 2), --repetitions R (best-of-R per
//        cell, default 1), --n N (fixture size, default 4096), --labels
//        (ask for label replies), --json-name NAME (baseline stem, default
//        serve_throughput).
//
// Every run writes a machine-readable baseline `BENCH_<json-name>.json`
// (schema: tools/bench_schema_check.py) into $SKYDIA_BENCH_JSON_DIR or the
// working directory — one row per sweep cell, with qps and sampled
// burst-round-trip p50/p99 counters. Prints per-cell totals; exits non-zero
// when any reply was an error, a connection failed, or throughput was zero —
// the CI smoke job relies on the exit code.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/common/version.h"
#include "src/core/diagram.h"
#include "src/core/serialize.h"
#include "src/datagen/distributions.h"
#include "src/serve/server.h"

namespace skydia {
namespace {

struct ClientStats {
  uint64_t replies = 0;
  uint64_t errors = 0;
  uint64_t reconnects = 0;
  bool transport_failed = false;
  /// Nanoseconds from burst send to last reply of the burst — one sample per
  /// completed burst, i.e. the closed-loop round-trip latency.
  std::vector<uint64_t> burst_ns;
};

/// One measured sweep cell (a connections x shards combination).
struct CellResult {
  int connections = 0;
  int shards = 0;
  int reconnect_every = 0;
  uint64_t replies = 0;
  uint64_t errors = 0;
  uint64_t reconnects = 0;
  bool transport_failed = false;
  double elapsed_seconds = 0;
  double qps = 0;
  uint64_t p50_burst_ns = 0;
  uint64_t p99_burst_ns = 0;
};

int DialServer(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Renders the workload's distinct-query pool: `distinct` pre-rendered
/// query lines drawn uniformly from the domain. Every connection samples
/// its bursts from this shared pool, so the distinct working set is fixed
/// by the flag, not by the connection count — the serve bench measures the
/// serving stack over a hot query distribution (cold point-location cost
/// is bench_query_throughput's job). 0 disables pooling: every burst is
/// unique, an all-miss stream.
std::vector<std::string> RenderQueryPool(int64_t domain, bool labels,
                                         size_t distinct) {
  Rng rng(20180416);
  std::vector<std::string> pool(distinct);
  for (std::string& line : pool) {
    line.append("{\"q\":[")
        .append(std::to_string(rng.NextInt(0, domain - 1)))
        .append(",")
        .append(std::to_string(rng.NextInt(0, domain - 1)))
        .append(labels ? "],\"labels\":true}\n" : "]}\n");
  }
  return pool;
}

/// Pre-renders `count` distinct bursts of `pipeline` query lines each, so
/// the measurement loop spends its cycles on the socket rather than on
/// std::to_string. Lines come from `pool` when non-empty, else they are
/// freshly randomized.
std::vector<std::string> PrerenderBursts(const std::vector<std::string>& pool,
                                         int64_t domain, int pipeline,
                                         bool labels, uint64_t seed,
                                         size_t count) {
  Rng rng(seed);
  std::vector<std::string> bursts(count);
  for (std::string& burst : bursts) {
    burst.reserve(static_cast<size_t>(pipeline) * 24);
    for (int i = 0; i < pipeline; ++i) {
      if (!pool.empty()) {
        burst.append(
            pool[static_cast<size_t>(rng.NextInt(
                0, static_cast<int64_t>(pool.size()) - 1))]);
        continue;
      }
      burst.append("{\"q\":[")
          .append(std::to_string(rng.NextInt(0, domain - 1)))
          .append(",")
          .append(std::to_string(rng.NextInt(0, domain - 1)))
          .append(labels ? "],\"labels\":true}\n" : "]}\n");
    }
  }
  return bursts;
}

/// Per-socket closed-loop state inside a multiplexing client thread.
struct MuxConn {
  int fd = -1;
  int pending = 0;  ///< replies still owed for the current burst
  size_t next_burst = 0;
  uint64_t bursts_done = 0;
  std::vector<std::string> bursts;
  std::chrono::steady_clock::time_point burst_start;
};

/// One client thread driving many connections: each socket runs its own
/// closed loop (burst out, count reply newlines, burst again the moment the
/// last reply drains), multiplexed over one epoll instance — so 64
/// benchmark connections cost a handful of threads instead of 64, and the
/// load generator's own cost per reply is a recv, a send, and an amortized
/// epoll_wait rather than an O(connections) scan per round trip. Keeping
/// the harness lean matters: client and server share the machine, so every
/// cycle the client wastes deflates the server numbers being compared.
///
/// `reconnect_every` > 0 turns the workload into a connection-churn one:
/// each connection tears itself down and re-dials after that many completed
/// bursts, so the cell exercises the server's accept path (state-machine
/// setup for the reactor, a thread spawn per accept for the old
/// thread-per-connection server) at a fixed concurrency level.
void RunMuxClient(const std::string& host, int port,
                  std::vector<MuxConn> conns, int pipeline,
                  int reconnect_every,
                  std::chrono::steady_clock::time_point deadline,
                  ClientStats* stats) {
  const int ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) {
    stats->transport_failed = true;
    return;
  }
  for (size_t i = 0; i < conns.size(); ++i) {
    MuxConn& conn = conns[i];
    conn.fd = DialServer(host, port);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = i;
    if (conn.fd < 0 || ::epoll_ctl(ep, EPOLL_CTL_ADD, conn.fd, &ev) < 0) {
      stats->transport_failed = true;
      break;
    }
  }
  // Bursts are far smaller than the socket buffer, so the blocking send
  // completes immediately in the common case.
  const auto send_burst = [&](MuxConn& conn) {
    const std::string& burst = conn.bursts[conn.next_burst];
    conn.next_burst = (conn.next_burst + 1) % conn.bursts.size();
    conn.burst_start = std::chrono::steady_clock::now();
    if (!SendAll(conn.fd, burst)) {
      stats->transport_failed = true;
      return;
    }
    conn.pending = pipeline;
  };
  for (MuxConn& conn : conns) {
    if (stats->transport_failed) break;
    send_burst(conn);
  }
  epoll_event events[64];
  char chunk[64 * 1024];
  while (!stats->transport_failed &&
         std::chrono::steady_clock::now() < deadline) {
    const int ready = ::epoll_wait(ep, events, 64, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      stats->transport_failed = true;
      break;
    }
    for (int e = 0; e < ready && !stats->transport_failed; ++e) {
      MuxConn& conn = conns[static_cast<size_t>(events[e].data.u64)];
      const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        stats->transport_failed = true;
        break;
      }
      // Replies are one line each, so newlines == replies: count them with
      // memchr instead of splitting strings. Error replies are detected by
      // substring scan per chunk — rare enough to be effectively free.
      const char* p = chunk;
      const char* end = chunk + n;
      while ((p = static_cast<const char*>(
                  memchr(p, '\n', static_cast<size_t>(end - p)))) != nullptr) {
        ++p;
        --conn.pending;
        ++stats->replies;
      }
      const std::string_view view(chunk, static_cast<size_t>(n));
      for (size_t at = view.find("\"error\":"); at != std::string_view::npos;
           at = view.find("\"error\":", at + 1)) {
        ++stats->errors;
      }
      if (conn.pending == 0) {
        stats->burst_ns.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - conn.burst_start)
                .count()));
        ++conn.bursts_done;
        if (reconnect_every > 0 &&
            conn.bursts_done % static_cast<uint64_t>(reconnect_every) == 0) {
          // RST-close (SO_LINGER 0) so churned sockets skip TIME_WAIT —
          // otherwise tens of thousands of TIME_WAIT entries exhaust the
          // client's ephemeral ports and connect() stalls dominate the
          // cell. The burst's replies are fully drained at this point.
          const linger reset{1, 0};
          ::setsockopt(conn.fd, SOL_SOCKET, SO_LINGER, &reset, sizeof(reset));
          ::close(conn.fd);  // also drops the fd out of the epoll set
          conn.fd = DialServer(host, port);
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.u64 = events[e].data.u64;
          if (conn.fd < 0 ||
              ::epoll_ctl(ep, EPOLL_CTL_ADD, conn.fd, &ev) < 0) {
            stats->transport_failed = true;
            break;
          }
          ++stats->reconnects;
        }
        send_burst(conn);
      }
    }
  }
  for (MuxConn& conn : conns) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  ::close(ep);
}

/// Drives `connections` closed-loop connections (multiplexed over
/// `client_threads` threads) against host:port for `duration` seconds and
/// aggregates one cell.
CellResult MeasureCell(const std::string& host, int port, int connections,
                       int shards, int64_t domain, int pipeline,
                       int reconnect_every, bool labels, int duration,
                       int client_threads,
                       const std::vector<std::string>& pool) {
  CellResult cell;
  cell.connections = connections;
  cell.shards = shards;
  cell.reconnect_every = reconnect_every;
  const int threads_n = std::max(1, std::min(client_threads, connections));
  // Deal connections round-robin onto client threads; every connection gets
  // its own pre-rendered burst rotation (seeded by global index).
  std::vector<std::vector<MuxConn>> per_thread(
      static_cast<size_t>(threads_n));
  for (int c = 0; c < connections; ++c) {
    MuxConn conn;
    conn.bursts = PrerenderBursts(pool, domain, pipeline, labels,
                                  static_cast<uint64_t>(c + 1), /*count=*/16);
    per_thread[static_cast<size_t>(c % threads_n)].push_back(std::move(conn));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(duration);
  std::vector<ClientStats> stats(static_cast<size_t>(threads_n));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(threads_n));
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads_n; ++t) {
    threads.emplace_back(RunMuxClient, host, port,
                         std::move(per_thread[static_cast<size_t>(t)]),
                         pipeline, reconnect_every, deadline,
                         &stats[static_cast<size_t>(t)]);
  }
  for (auto& t : threads) t.join();
  cell.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::vector<uint64_t> all_bursts;
  for (ClientStats& s : stats) {
    cell.replies += s.replies;
    cell.errors += s.errors;
    cell.reconnects += s.reconnects;
    cell.transport_failed = cell.transport_failed || s.transport_failed;
    all_bursts.insert(all_bursts.end(), s.burst_ns.begin(), s.burst_ns.end());
  }
  cell.qps = cell.elapsed_seconds > 0
                 ? static_cast<double>(cell.replies) / cell.elapsed_seconds
                 : 0;
  if (!all_bursts.empty()) {
    std::sort(all_bursts.begin(), all_bursts.end());
    cell.p50_burst_ns = all_bursts[all_bursts.size() / 2];
    cell.p99_burst_ns =
        all_bursts[std::min(all_bursts.size() - 1, all_bursts.size() * 99 / 100)];
  }
  return cell;
}

void AppendQuoted(const std::string& text, std::string* out) {
  out->push_back('"');
  for (const char c : text) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendDouble(double value, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  out->append(buf);
}

/// Writes the BENCH_<name>.json baseline (one row per sweep cell) into
/// $SKYDIA_BENCH_JSON_DIR or the working directory. Mirrors the JSON shape
/// bench_common.h emits for google-benchmark binaries so the schema checker
/// and regression gate treat both alike.
bool WriteBaseline(const std::string& bench_name, int pipeline, int workers,
                   const std::vector<CellResult>& cells) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema_version\": 1,\n  \"bench\": ";
  AppendQuoted(bench_name, &out);
  out += ",\n  \"version\": ";
  AppendQuoted(kVersion, &out);
  out += ",\n  \"commit\": ";
  std::string commit = BuildCommit();
  if (commit == "unknown") {
    const char* sha = std::getenv("GITHUB_SHA");
    if (sha != nullptr && sha[0] != '\0') commit = sha;
  }
  AppendQuoted(commit, &out);
  out += ",\n  \"build_type\": ";
#ifdef NDEBUG
  AppendQuoted("release", &out);
#else
  AppendQuoted("debug", &out);
#endif
  out += ",\n  \"compiler\": ";
  AppendQuoted(__VERSION__, &out);
  out += ",\n  \"hardware_concurrency\": ";
  out += std::to_string(std::thread::hardware_concurrency());
  out += ",\n  \"timestamp_unix\": ";
  out += std::to_string(static_cast<int64_t>(std::time(nullptr)));
  out += ",\n  \"benchmarks\": [";
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    std::string row_name = "serve_throughput/connections:" +
                           std::to_string(cell.connections) +
                           "/shards:" + std::to_string(cell.shards) +
                           "/pipeline:" + std::to_string(pipeline);
    if (cell.reconnect_every > 0) {
      row_name += "/reconnect:" + std::to_string(cell.reconnect_every);
    }
    AppendQuoted(row_name, &out);
    out += ", \"iterations\": ";
    out += std::to_string(cell.replies > 0 ? cell.replies : 1);
    const double ns_per_reply =
        cell.replies > 0
            ? cell.elapsed_seconds * 1e9 / static_cast<double>(cell.replies)
            : 0;
    out += ", \"real_time_ns\": ";
    AppendDouble(ns_per_reply, &out);
    out += ", \"cpu_time_ns\": ";
    AppendDouble(ns_per_reply, &out);
    out += ", \"counters\": {\"qps\": ";
    AppendDouble(cell.qps, &out);
    out += ", \"connections\": ";
    out += std::to_string(cell.connections);
    out += ", \"shards\": ";
    out += std::to_string(cell.shards);
    out += ", \"workers\": ";
    out += std::to_string(workers);
    out += ", \"errors\": ";
    out += std::to_string(cell.errors);
    out += ", \"reconnects\": ";
    out += std::to_string(cell.reconnects);
    out += ", \"p50_burst_ns\": ";
    out += std::to_string(cell.p50_burst_ns);
    out += ", \"p99_burst_ns\": ";
    out += std::to_string(cell.p99_burst_ns);
    out += "}}";
  }
  out += "\n  ]\n}\n";

  const char* dir = std::getenv("SKYDIA_BENCH_JSON_DIR");
  std::string path = dir != nullptr && dir[0] != '\0' ? dir : ".";
  path += "/BENCH_" + bench_name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const bool wrote = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  const bool closed = std::fclose(f) == 0;
  if (wrote && closed) {
    std::fprintf(stderr, "wrote baseline %s (%zu rows)\n", path.c_str(),
                 cells.size());
  }
  return wrote && closed;
}

int64_t FlagInt(int argc, char** argv, const char* name, int64_t fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == name && i + 1 < argc) return std::atoll(argv[i + 1]);
    if (arg.rfind(prefix, 0) == 0) {
      return std::atoll(arg.c_str() + prefix.size());
    }
  }
  return fallback;
}

std::string FlagString(int argc, char** argv, const char* name,
                       const std::string& fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == name && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

bool FlagBool(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == name) return true;
  }
  return false;
}

/// "1,8,64" -> {1, 8, 64}; `fallback` when the flag is absent or empty.
std::vector<int> FlagIntList(int argc, char** argv, const char* name,
                             std::vector<int> fallback) {
  const std::string raw = FlagString(argc, argv, name, "");
  if (raw.empty()) return fallback;
  std::vector<int> values;
  size_t start = 0;
  while (start <= raw.size()) {
    const size_t comma = raw.find(',', start);
    const std::string item = raw.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) values.push_back(std::atoi(item.c_str()));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values.empty() ? fallback : values;
}

int Main(int argc, char** argv) {
  const std::string host = FlagString(argc, argv, "--host", "127.0.0.1");
  const int port = static_cast<int>(FlagInt(argc, argv, "--port", 0));
  const int pipeline = static_cast<int>(FlagInt(argc, argv, "--pipeline", 64));
  const int duration =
      static_cast<int>(FlagInt(argc, argv, "--duration-seconds", 2));
  const auto n = static_cast<size_t>(FlagInt(argc, argv, "--n", 4096));
  const bool labels = FlagBool(argc, argv, "--labels");
  const int workers = static_cast<int>(FlagInt(argc, argv, "--workers", 1));
  const int threads = static_cast<int>(FlagInt(argc, argv, "--threads", 1));
  const int client_threads =
      static_cast<int>(FlagInt(argc, argv, "--client-threads", 4));
  const auto distinct = static_cast<size_t>(
      FlagInt(argc, argv, "--distinct-queries", 4096));
  const int64_t domain = FlagInt(argc, argv, "--domain", 1 << 20);
  const std::string json_name =
      FlagString(argc, argv, "--json-name", "serve_throughput");
  const int repetitions = std::max(
      1, static_cast<int>(FlagInt(argc, argv, "--repetitions", 1)));
  const int reconnect_every =
      static_cast<int>(FlagInt(argc, argv, "--reconnect-every", 0));
  const std::vector<int> connection_sweep = FlagIntList(
      argc, argv, "--sweep-connections",
      {static_cast<int>(FlagInt(argc, argv, "--connections", 4))});
  const std::vector<int> shard_sweep =
      FlagIntList(argc, argv, "--sweep-shards",
                  {static_cast<int>(FlagInt(argc, argv, "--shards", 1))});

  // Self-hosted runs build one fixture blob and restart a fresh server per
  // shard configuration; --port mode drives the external server as-is (the
  // shard flag then only labels the rows).
  std::string fixture_path;
  if (port == 0) {
    // Scoped so the built diagram and dataset are freed before any server
    // starts — the servers load the blob themselves, and keeping a second
    // copy of the structure resident would distort the measurement.
    DataGenOptions gen;
    gen.n = n;
    gen.domain_size = domain;
    gen.seed = 42;
    auto dataset = GenerateDataset(gen);
    if (!dataset.ok()) {
      std::cerr << "fixture dataset: " << dataset.status() << "\n";
      return 1;
    }
    auto diagram = SkylineDiagram::Build(*std::move(dataset),
                                         SkylineQueryType::kQuadrant);
    if (!diagram.ok()) {
      std::cerr << "fixture build: " << diagram.status() << "\n";
      return 1;
    }
    fixture_path =
        "/tmp/skydia_bench_serve_" + std::to_string(::getpid()) + ".skd";
    if (Status s = SaveCellDiagram(diagram->dataset(),
                                   *diagram->cell_diagram(), fixture_path);
        !s.ok()) {
      std::cerr << "fixture save: " << s << "\n";
      return 1;
    }
    std::cout << "self-hosted fixture: n=" << n << " domain=" << domain
              << "\n";
  }

  const std::vector<std::string> pool =
      distinct > 0 ? RenderQueryPool(domain, labels, distinct)
                   : std::vector<std::string>{};

  std::vector<CellResult> cells;
  bool failed = false;
  for (const int shards : shard_sweep) {
    serve::ServerOptions options;
    options.port = 0;
    options.num_shards = shards;
    options.num_workers = workers;
    options.engine.num_threads = threads;
    serve::SkylineServer self_hosted(options);
    int target_port = port;
    if (port == 0) {
      if (Status s = self_hosted.Start(fixture_path); !s.ok()) {
        std::cerr << "server start: " << s << "\n";
        return 1;
      }
      target_port = self_hosted.port();
    }
    for (const int connections : connection_sweep) {
      // Best-of-N: a closed-loop run on a shared machine only ever loses
      // throughput to scheduler noise, so the fastest repetition is the
      // least-contaminated estimate (the same reasoning as reporting the
      // min of google-benchmark repetitions).
      CellResult cell;
      for (int rep = 0; rep < repetitions; ++rep) {
        CellResult attempt = MeasureCell(host, target_port, connections,
                                         shards, domain, pipeline,
                                         reconnect_every, labels, duration,
                                         client_threads, pool);
        if (rep == 0 || attempt.transport_failed || attempt.qps > cell.qps) {
          cell = attempt;
        }
        if (cell.transport_failed) break;
      }
      std::printf(
          "serve bench: connections=%d shards=%d -> %llu replies in %.2fs "
          "= %.0f qps (burst p50 %.2fms, p99 %.2fms), %llu error replies%s\n",
          connections, shards, static_cast<unsigned long long>(cell.replies),
          cell.elapsed_seconds, cell.qps,
          static_cast<double>(cell.p50_burst_ns) / 1e6,
          static_cast<double>(cell.p99_burst_ns) / 1e6,
          static_cast<unsigned long long>(cell.errors),
          cell.transport_failed ? ", TRANSPORT FAILURE" : "");
      failed = failed || cell.transport_failed || cell.errors > 0 ||
               cell.replies == 0;
      cells.push_back(cell);
    }
    if (port == 0) self_hosted.Stop();
  }
  if (!fixture_path.empty()) ::unlink(fixture_path.c_str());

  if (!WriteBaseline(json_name, pipeline, workers, cells)) return 1;
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace skydia

int main(int argc, char** argv) { return skydia::Main(argc, argv); }
