// Closed-loop throughput benchmark for the `skydia serve` daemon.
//
// Opens N connections, keeps `pipeline` query lines in flight on each, and
// measures completed replies over a wall-clock window. Two modes:
//
//   bench_serve_throughput --port P [--host H]      drive an external server
//   bench_serve_throughput                          self-hosted: builds an
//       n=4096 quadrant fixture, starts an in-process SkylineServer, and
//       drives it over real loopback sockets (the CI smoke configuration).
//
// Flags: --connections C (default 4), --pipeline D (default 64),
//        --duration-seconds S (default 2), --n N (fixture size, default
//        4096), --labels (ask for label replies).
//
// Prints total queries, qps and error counts; exits non-zero when any reply
// was an error, a connection failed, or throughput was zero — the CI smoke
// job relies on the exit code.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/core/diagram.h"
#include "src/core/serialize.h"
#include "src/datagen/distributions.h"
#include "src/serve/server.h"

namespace skydia {
namespace {

struct ClientStats {
  uint64_t replies = 0;
  uint64_t errors = 0;
  bool transport_failed = false;
};

int DialServer(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// One closed-loop connection: write a burst of `pipeline` queries, read
/// exactly that many reply lines, repeat until the deadline.
void RunClient(const std::string& host, int port, int64_t domain,
               int pipeline, bool labels,
               std::chrono::steady_clock::time_point deadline, uint64_t seed,
               ClientStats* stats) {
  const int fd = DialServer(host, port);
  if (fd < 0) {
    stats->transport_failed = true;
    return;
  }
  Rng rng(seed);
  std::string burst;
  std::string inbox;
  char chunk[16 * 1024];
  while (std::chrono::steady_clock::now() < deadline) {
    burst.clear();
    for (int i = 0; i < pipeline; ++i) {
      const int64_t x = rng.NextInt(0, domain - 1);
      const int64_t y = rng.NextInt(0, domain - 1);
      burst.append("{\"q\":[")
          .append(std::to_string(x))
          .append(",")
          .append(std::to_string(y));
      if (labels) {
        burst.append("],\"labels\":true}\n");
      } else {
        burst.append("]}\n");
      }
    }
    if (!SendAll(fd, burst)) {
      stats->transport_failed = true;
      break;
    }
    int pending = pipeline;
    while (pending > 0) {
      size_t nl;
      while (pending > 0 && (nl = inbox.find('\n')) != std::string::npos) {
        if (inbox.compare(0, 9, "{\"error\":") == 0) ++stats->errors;
        ++stats->replies;
        --pending;
        inbox.erase(0, nl + 1);
      }
      if (pending == 0) break;
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        stats->transport_failed = true;
        pending = 0;
        break;
      }
      inbox.append(chunk, static_cast<size_t>(n));
    }
    if (stats->transport_failed) break;
  }
  ::close(fd);
}

int64_t FlagInt(int argc, char** argv, const char* name, int64_t fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == name && i + 1 < argc) return std::atoll(argv[i + 1]);
    if (arg.rfind(prefix, 0) == 0) {
      return std::atoll(arg.c_str() + prefix.size());
    }
  }
  return fallback;
}

std::string FlagString(int argc, char** argv, const char* name,
                       const std::string& fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == name && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

bool FlagBool(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == name) return true;
  }
  return false;
}

int Main(int argc, char** argv) {
  const std::string host = FlagString(argc, argv, "--host", "127.0.0.1");
  int port = static_cast<int>(FlagInt(argc, argv, "--port", 0));
  const int connections =
      static_cast<int>(FlagInt(argc, argv, "--connections", 4));
  const int pipeline = static_cast<int>(FlagInt(argc, argv, "--pipeline", 64));
  const int duration =
      static_cast<int>(FlagInt(argc, argv, "--duration-seconds", 2));
  const auto n = static_cast<size_t>(FlagInt(argc, argv, "--n", 4096));
  const bool labels = FlagBool(argc, argv, "--labels");
  int64_t domain = FlagInt(argc, argv, "--domain", 1 << 20);

  // Self-hosted mode: build the fixture, save it (the reload path needs a
  // file on disk), and serve it in-process.
  serve::SkylineServer* server = nullptr;
  serve::SkylineServer self_hosted;
  std::string fixture_path;
  if (port == 0) {
    DataGenOptions gen;
    gen.n = n;
    gen.domain_size = domain;
    gen.seed = 42;
    auto dataset = GenerateDataset(gen);
    if (!dataset.ok()) {
      std::cerr << "fixture dataset: " << dataset.status() << "\n";
      return 1;
    }
    auto diagram = SkylineDiagram::Build(*std::move(dataset),
                                         SkylineQueryType::kQuadrant);
    if (!diagram.ok()) {
      std::cerr << "fixture build: " << diagram.status() << "\n";
      return 1;
    }
    fixture_path = "/tmp/skydia_bench_serve_" + std::to_string(::getpid()) +
                   ".skd";
    if (Status s = SaveCellDiagram(diagram->dataset(),
                                   *diagram->cell_diagram(), fixture_path);
        !s.ok()) {
      std::cerr << "fixture save: " << s << "\n";
      return 1;
    }
    if (Status s = self_hosted.Start(fixture_path); !s.ok()) {
      std::cerr << "server start: " << s << "\n";
      return 1;
    }
    server = &self_hosted;
    port = self_hosted.port();
    std::cout << "self-hosted fixture: n=" << n << " domain=" << domain
              << " port=" << port << "\n";
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(duration);
  std::vector<ClientStats> stats(static_cast<size_t>(connections));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(connections));
  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back(RunClient, host, port, domain, pipeline, labels,
                         deadline, static_cast<uint64_t>(c + 1),
                         &stats[static_cast<size_t>(c)]);
  }
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  uint64_t replies = 0;
  uint64_t errors = 0;
  bool transport_failed = false;
  for (const ClientStats& s : stats) {
    replies += s.replies;
    errors += s.errors;
    transport_failed = transport_failed || s.transport_failed;
  }
  const double qps = elapsed > 0 ? static_cast<double>(replies) / elapsed : 0;
  std::printf(
      "serve bench: %llu replies in %.2fs over %d connection(s) "
      "(pipeline %d) -> %.0f qps, %llu error replies%s\n",
      static_cast<unsigned long long>(replies), elapsed, connections,
      pipeline, qps, static_cast<unsigned long long>(errors),
      transport_failed ? ", TRANSPORT FAILURE" : "");
  if (server != nullptr) {
    std::cout << server->RenderMetrics();
    server->Stop();
  }
  if (!fixture_path.empty()) ::unlink(fixture_path.c_str());

  if (transport_failed || errors > 0 || replies == 0) return 1;
  return 0;
}

}  // namespace
}  // namespace skydia

int main(int argc, char** argv) { return skydia::Main(argc, argv); }
