// Experiment fig10-quadrant-n: construction time of the four quadrant
// skyline-diagram algorithms vs dataset cardinality n, one series per data
// distribution (correlated / independent / anti-correlated).
//
// Expected shape (paper §VI): baseline slowest; DSG and scanning close and
// well below baseline (work proportional to DSG links / surviving skyline
// sizes); sweeping fastest by an order of magnitude since it never touches
// per-cell skylines. Absolute numbers are machine-specific.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/quadrant_sweeping.h"

namespace skydia::bench {
namespace {

void ArgsForCellBuilders(benchmark::internal::Benchmark* b, int64_t max_n) {
  for (int64_t dist = 0; dist < 3; ++dist) {
    for (int64_t n = 128; n <= max_n; n *= 2) {
      b->Args({dist, n});
    }
  }
  b->ArgNames({"dist", "n"})->Unit(benchmark::kMillisecond)->Iterations(1);
}

void BM_QuadrantBaseline(benchmark::State& state) {
  const Dataset ds = MakeDataset(state.range(1), 1 << 16,
                                 DistributionFromIndex(state.range(0)));
  for (auto _ : state) {
    const SkylineDiagram diagram = BuildDiagram(
        ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kBaseline);
    benchmark::DoNotOptimize(diagram.cell_diagram()->CellSkyline(0, 0).data());
  }
  state.SetLabel(DistributionName(DistributionFromIndex(state.range(0))));
}
BENCHMARK(BM_QuadrantBaseline)->Apply([](auto* b) {
  ArgsForCellBuilders(b, 512);
});

void BM_QuadrantDsg(benchmark::State& state) {
  const Dataset ds = MakeDataset(state.range(1), 1 << 16,
                                 DistributionFromIndex(state.range(0)));
  for (auto _ : state) {
    const SkylineDiagram diagram =
        BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg);
    benchmark::DoNotOptimize(diagram.cell_diagram()->CellSkyline(0, 0).data());
  }
  state.SetLabel(DistributionName(DistributionFromIndex(state.range(0))));
}
BENCHMARK(BM_QuadrantDsg)->Apply([](auto* b) {
  ArgsForCellBuilders(b, 1024);
});

void BM_QuadrantScanning(benchmark::State& state) {
  const Dataset ds = MakeDataset(state.range(1), 1 << 16,
                                 DistributionFromIndex(state.range(0)));
  for (auto _ : state) {
    const SkylineDiagram diagram = BuildDiagram(
        ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
    benchmark::DoNotOptimize(diagram.cell_diagram()->CellSkyline(0, 0).data());
  }
  state.SetLabel(DistributionName(DistributionFromIndex(state.range(0))));
}
BENCHMARK(BM_QuadrantScanning)->Apply([](auto* b) {
  ArgsForCellBuilders(b, 1024);
});

void BM_QuadrantSweeping(benchmark::State& state) {
  const Dataset ds = MakeDistinctDataset(state.range(1), 1 << 16,
                                         DistributionFromIndex(state.range(0)));
  for (auto _ : state) {
    const auto diagram = BuildQuadrantSweeping(ds);
    SKYDIA_CHECK(diagram.ok());
    benchmark::DoNotOptimize(diagram->polyominoes.size());
  }
  state.SetLabel(DistributionName(DistributionFromIndex(state.range(0))));
}
BENCHMARK(BM_QuadrantSweeping)->Apply([](auto* b) {
  ArgsForCellBuilders(b, 4096);
});

}  // namespace
}  // namespace skydia::bench

SKYDIA_BENCH_MAIN(bench_quadrant_scaling);
