// Experiment tab5-structure: diagram structure statistics — cell counts,
// polyomino counts, distinct result sets and memory footprint — across n and
// distributions. Reproduces the space-complexity discussion of §IV/§V
// (output structure is the binding constraint, bounded by min(s^2, n^2) * n).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/merge.h"
#include "src/core/quadrant_sweeping.h"

namespace skydia::bench {
namespace {

void StructureArgs(benchmark::internal::Benchmark* b) {
  for (int64_t dist = 0; dist < 3; ++dist) {
    for (int64_t n = 128; n <= 1024; n *= 2) {
      b->Args({dist, n});
    }
  }
  b->ArgNames({"dist", "n"})->Unit(benchmark::kMillisecond)->Iterations(1);
}

void BM_QuadrantStructure(benchmark::State& state) {
  const Dataset ds = MakeDataset(state.range(1), 1 << 16,
                                 DistributionFromIndex(state.range(0)));
  CellDiagram::Stats stats;
  uint32_t polyominoes = 0;
  for (auto _ : state) {
    const SkylineDiagram built = BuildDiagram(
        ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
    const CellDiagram& diagram = *built.cell_diagram();
    stats = diagram.ComputeStats();
    polyominoes = MergeCells(diagram).num_polyominoes();
  }
  state.counters["cells"] = static_cast<double>(stats.num_cells);
  state.counters["polyominoes"] = static_cast<double>(polyominoes);
  state.counters["distinct_sets"] = static_cast<double>(stats.num_distinct_sets);
  state.counters["set_elems"] = static_cast<double>(stats.total_set_elements);
  state.counters["pool_bytes"] = static_cast<double>(stats.pool_bytes);
  state.counters["bytes"] = static_cast<double>(stats.approx_bytes);
  state.SetLabel(DistributionName(DistributionFromIndex(state.range(0))));
}
BENCHMARK(BM_QuadrantStructure)->Apply(StructureArgs);

void BM_SweepingStructure(benchmark::State& state) {
  const Dataset ds = MakeDistinctDataset(state.range(1), 1 << 16,
                                         DistributionFromIndex(state.range(0)));
  uint64_t polyominoes = 0;
  uint64_t intersections = 0;
  int64_t area = 0;
  for (auto _ : state) {
    const auto diagram = BuildQuadrantSweeping(ds);
    SKYDIA_CHECK(diagram.ok());
    polyominoes = diagram->polyominoes.size();
    intersections = diagram->num_intersections;
    area = 0;
    for (const auto& poly : diagram->polyominoes) {
      area += poly.outline.Area();
    }
  }
  state.counters["polyominoes"] = static_cast<double>(polyominoes);
  state.counters["intersections"] = static_cast<double>(intersections);
  state.counters["covered_area"] = static_cast<double>(area);
  state.SetLabel(DistributionName(DistributionFromIndex(state.range(0))));
}
BENCHMARK(BM_SweepingStructure)->Apply(StructureArgs);

void BM_DynamicStructure(benchmark::State& state) {
  const Dataset ds = MakeDataset(state.range(1), 512,
                                 DistributionFromIndex(state.range(0)));
  SubcellDiagram::Stats stats;
  for (auto _ : state) {
    const SkylineDiagram built =
        BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning);
    stats = built.subcell_diagram()->ComputeStats();
  }
  state.counters["subcells"] = static_cast<double>(stats.num_subcells);
  state.counters["distinct_sets"] = static_cast<double>(stats.num_distinct_sets);
  state.counters["set_elems"] = static_cast<double>(stats.total_set_elements);
  state.counters["pool_bytes"] = static_cast<double>(stats.pool_bytes);
  state.counters["bytes"] = static_cast<double>(stats.approx_bytes);
  state.SetLabel(DistributionName(DistributionFromIndex(state.range(0))));
}
BENCHMARK(BM_DynamicStructure)->Apply([](auto* b) {
  for (int64_t dist = 0; dist < 3; ++dist) {
    for (int64_t n = 32; n <= 128; n *= 2) {
      b->Args({dist, n});
    }
  }
  b->ArgNames({"dist", "n"})->Unit(benchmark::kMillisecond)->Iterations(1);
});

}  // namespace
}  // namespace skydia::bench

SKYDIA_BENCH_MAIN(bench_structure_stats);
