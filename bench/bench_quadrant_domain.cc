// Experiment fig11-quadrant-s: construction time vs attribute domain size s
// at fixed n. A small domain collapses grid lines (coincident coordinates),
// bounding the cell count by min(s^2, n^2) — all cell-based algorithms should
// get *faster* as s shrinks, the limited-domain effect of §IV.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/quadrant_sweeping.h"

namespace skydia::bench {
namespace {

constexpr int64_t kN = 1024;

void DomainArgs(benchmark::internal::Benchmark* b) {
  for (int64_t s = 64; s <= 4096; s *= 4) {
    b->Args({s});
  }
  b->ArgNames({"s"})->Unit(benchmark::kMillisecond)->Iterations(1);
}

void BM_DomainBaseline(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(kN, state.range(0), Distribution::kIndependent);
  for (auto _ : state) {
    const SkylineDiagram diagram = BuildDiagram(
        ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kBaseline);
    benchmark::DoNotOptimize(diagram.cell_diagram()->CellSkyline(0, 0).data());
  }
}
BENCHMARK(BM_DomainBaseline)->Apply(DomainArgs);

void BM_DomainDsg(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(kN, state.range(0), Distribution::kIndependent);
  for (auto _ : state) {
    const SkylineDiagram diagram =
        BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg);
    benchmark::DoNotOptimize(diagram.cell_diagram()->CellSkyline(0, 0).data());
  }
}
BENCHMARK(BM_DomainDsg)->Apply(DomainArgs);

void BM_DomainScanning(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(kN, state.range(0), Distribution::kIndependent);
  for (auto _ : state) {
    const SkylineDiagram diagram = BuildDiagram(
        ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning);
    benchmark::DoNotOptimize(diagram.cell_diagram()->CellSkyline(0, 0).data());
  }
}
BENCHMARK(BM_DomainScanning)->Apply(DomainArgs);

void BM_DomainSweeping(benchmark::State& state) {
  // The vertex walk needs distinct coordinates, hence s >= n.
  if (state.range(0) < kN) {
    state.SkipWithError("sweeping needs s >= n for distinct coordinates");
    return;
  }
  const Dataset ds =
      MakeDistinctDataset(kN, state.range(0), Distribution::kIndependent);
  for (auto _ : state) {
    const auto diagram = BuildQuadrantSweeping(ds);
    SKYDIA_CHECK(diagram.ok());
    benchmark::DoNotOptimize(diagram->polyominoes.size());
  }
}
BENCHMARK(BM_DomainSweeping)->Apply(DomainArgs);

}  // namespace
}  // namespace skydia::bench

SKYDIA_BENCH_MAIN(bench_quadrant_domain);
