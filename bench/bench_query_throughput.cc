// Experiment tab3-query: the payoff of precomputation. Answering a skyline
// query through the diagram is a point-location lookup; computing it from
// scratch is an O(n log n) scan. This is the paper's core motivation — the
// skyline counterpart of answering kNN via a Voronoi diagram.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/diagram.h"
#include "src/datagen/workload.h"
#include "src/skyline/query.h"

namespace skydia::bench {
namespace {

constexpr size_t kQueries = 4096;

void QueryArgs(benchmark::internal::Benchmark* b) {
  for (int64_t n = 256; n <= 4096; n *= 4) b->Args({n});
  b->ArgNames({"n"})->Unit(benchmark::kMicrosecond);
}

void BM_QueryViaQuadrantDiagram(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(state.range(0), 1 << 16, Distribution::kIndependent);
  auto diagram = SkylineDiagram::Build(
      MakeDataset(state.range(0), 1 << 16, Distribution::kIndependent),
      SkylineQueryType::kQuadrant);
  SKYDIA_CHECK(diagram.ok());
  const auto queries = GenerateQueries(ds, kQueries, kBenchSeed);
  size_t i = 0;
  for (auto _ : state) {
    const auto result = diagram->Query(queries[i++ % kQueries]);
    benchmark::DoNotOptimize(result.data());
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_QueryViaQuadrantDiagram)->Apply(QueryArgs);

void BM_QueryFromScratch(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(state.range(0), 1 << 16, Distribution::kIndependent);
  const auto queries = GenerateQueries(ds, kQueries, kBenchSeed);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FirstQuadrantSkyline(ds, queries[i++ % kQueries]));
  }
}
BENCHMARK(BM_QueryFromScratch)->Apply(QueryArgs);

void BM_DynamicQueryViaDiagram(benchmark::State& state) {
  auto diagram = SkylineDiagram::Build(
      MakeDataset(state.range(0), 512, Distribution::kIndependent),
      SkylineQueryType::kDynamic);
  SKYDIA_CHECK(diagram.ok());
  const auto queries =
      GenerateQueries(diagram->dataset(), kQueries, kBenchSeed);
  size_t i = 0;
  for (auto _ : state) {
    const auto result = diagram->Query(queries[i++ % kQueries]);
    benchmark::DoNotOptimize(result.data());
  }
}
BENCHMARK(BM_DynamicQueryViaDiagram)
    ->Args({64})
    ->Args({128})
    ->ArgNames({"n"})
    ->Unit(benchmark::kMicrosecond);

void BM_DynamicQueryFromScratch(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(state.range(0), 512, Distribution::kIndependent);
  const auto queries = GenerateQueries(ds, kQueries, kBenchSeed);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DynamicSkyline(ds, queries[i++ % kQueries]));
  }
}
BENCHMARK(BM_DynamicQueryFromScratch)
    ->Args({64})
    ->Args({128})
    ->ArgNames({"n"})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace skydia::bench

BENCHMARK_MAIN();
