// Experiment tab3-query: the payoff of precomputation. Answering a skyline
// query through the diagram is a point-location lookup; computing it from
// scratch is an O(n log n) scan. This is the paper's core motivation — the
// skyline counterpart of answering kNN via a Voronoi diagram.
//
// Three serving paths over the same query stream:
//   BM_QueryFromScratch       — no precomputation, linear scan per query
//   BM_QueryViaIndex          — PointLocationIndex lookup, O(log s)
//   BM_QueryBatchedParallel   — QueryEngine::AnswerBatch sharded over threads
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_common.h"
#include "src/core/diagram.h"
#include "src/core/point_location.h"
#include "src/core/query_engine.h"
#include "src/datagen/workload.h"
#include "src/skyline/query.h"

namespace skydia::bench {
namespace {

constexpr size_t kQueries = 4096;

void QueryArgs(benchmark::internal::Benchmark* b) {
  for (int64_t n = 256; n <= 4096; n *= 4) b->Args({n});
  b->ArgNames({"n"})->Unit(benchmark::kMicrosecond);
}

void BM_QueryViaQuadrantDiagram(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(state.range(0), 1 << 16, Distribution::kIndependent);
  auto diagram = SkylineDiagram::Build(
      MakeDataset(state.range(0), 1 << 16, Distribution::kIndependent),
      SkylineQueryType::kQuadrant);
  SKYDIA_CHECK(diagram.ok());
  const auto queries = GenerateQueries(ds, kQueries, kBenchSeed);
  size_t i = 0;
  for (auto _ : state) {
    const auto result = diagram->Query(queries[i++ % kQueries]);
    benchmark::DoNotOptimize(result.data());
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_QueryViaQuadrantDiagram)->Apply(QueryArgs);

void BM_QueryViaIndex(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(state.range(0), 1 << 16, Distribution::kIndependent);
  auto diagram = SkylineDiagram::Build(ds, SkylineQueryType::kQuadrant);
  SKYDIA_CHECK(diagram.ok());
  const PointLocationIndex index(*diagram->cell_diagram());
  const auto queries = GenerateQueries(ds, kQueries, kBenchSeed);
  size_t i = 0;
  for (auto _ : state) {
    const auto result = index.Query(queries[i++ % kQueries]);
    benchmark::DoNotOptimize(result.data());
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_QueryViaIndex)->Apply(QueryArgs);

void BM_QueryBatchedParallel(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(state.range(0), 1 << 16, Distribution::kIndependent);
  auto diagram = SkylineDiagram::Build(ds, SkylineQueryType::kQuadrant);
  SKYDIA_CHECK(diagram.ok());
  QueryEngineOptions options;
  options.num_threads = static_cast<int>(state.range(1));
  options.parallel_batch_threshold = 1;
  const QueryEngine engine(ds, *diagram->cell_diagram(),
                           SkylineQueryType::kQuadrant, options);
  const auto queries = GenerateQueries(ds, kQueries, kBenchSeed);
  std::vector<SetId> out;
  for (auto _ : state) {
    engine.AnswerBatch(queries, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kQueries));
}
BENCHMARK(BM_QueryBatchedParallel)
    ->Args({4096, 1})
    ->Args({4096, 2})
    ->Args({4096, 4})
    ->ArgNames({"n", "threads"})
    ->Unit(benchmark::kMicrosecond);

// The tracing overhead budget: with tracing off, SKYDIA_TRACE_SPAN must cost
// one relaxed load — far below 1% of even the cheapest indexed query above
// (compare ns_per_span against BM_QueryViaIndex rows in the same table). The
// SKYDIA_CHECK is the compiled-in guard that the fast path is actually taken:
// a regression that leaves tracing enabled by default fails the binary.
void BM_TraceSpanDisabled(benchmark::State& state) {
  SKYDIA_CHECK(!trace::Enabled());
  for (auto _ : state) {
    SKYDIA_TRACE_SPAN("bench.disabled");
    benchmark::ClobberMemory();
  }
  // The Time column (and real_time_ns in the baseline) is ns per span.
  state.SetLabel("trace-disabled-fastpath");
}
BENCHMARK(BM_TraceSpanDisabled)->Unit(benchmark::kNanosecond);

void BM_TraceSpanSampled(benchmark::State& state) {
  // The always-on flight recorder keeps spans in sampled mode: every span
  // pays the countdown decrement, one in sample_period also records. The
  // acceptance gate holds this within 2x the disabled fast path.
  trace::RecorderOptions options;
  options.sample_period = 256;
  trace::EnableFlightRecorder(options);
  SKYDIA_CHECK(!trace::Enabled());
  for (auto _ : state) {
    SKYDIA_TRACE_SPAN("bench.sampled");
    benchmark::ClobberMemory();
  }
  trace::DisableFlightRecorder();
  state.SetLabel("trace-sampled-flightrecorder");
}
BENCHMARK(BM_TraceSpanSampled)->Unit(benchmark::kNanosecond);

void BM_QueryFromScratch(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(state.range(0), 1 << 16, Distribution::kIndependent);
  const auto queries = GenerateQueries(ds, kQueries, kBenchSeed);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FirstQuadrantSkyline(ds, queries[i++ % kQueries]));
  }
}
BENCHMARK(BM_QueryFromScratch)->Apply(QueryArgs);

void BM_DynamicQueryViaDiagram(benchmark::State& state) {
  auto diagram = SkylineDiagram::Build(
      MakeDataset(state.range(0), 512, Distribution::kIndependent),
      SkylineQueryType::kDynamic);
  SKYDIA_CHECK(diagram.ok());
  const auto queries =
      GenerateQueries(diagram->dataset(), kQueries, kBenchSeed);
  size_t i = 0;
  for (auto _ : state) {
    const auto result = diagram->Query(queries[i++ % kQueries]);
    benchmark::DoNotOptimize(result.data());
  }
}
BENCHMARK(BM_DynamicQueryViaDiagram)
    ->Args({64})
    ->Args({128})
    ->ArgNames({"n"})
    ->Unit(benchmark::kMicrosecond);

void BM_DynamicQueryViaIndex(benchmark::State& state) {
  auto diagram = SkylineDiagram::Build(
      MakeDataset(state.range(0), 512, Distribution::kIndependent),
      SkylineQueryType::kDynamic);
  SKYDIA_CHECK(diagram.ok());
  const PointLocationIndex index(*diagram->subcell_diagram());
  const auto queries =
      GenerateQueries(diagram->dataset(), kQueries, kBenchSeed);
  size_t i = 0;
  for (auto _ : state) {
    const auto result = index.Query(queries[i++ % kQueries]);
    benchmark::DoNotOptimize(result.data());
  }
}
BENCHMARK(BM_DynamicQueryViaIndex)
    ->Args({64})
    ->Args({128})
    ->ArgNames({"n"})
    ->Unit(benchmark::kMicrosecond);

void BM_DynamicQueryFromScratch(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(state.range(0), 512, Distribution::kIndependent);
  const auto queries = GenerateQueries(ds, kQueries, kBenchSeed);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DynamicSkyline(ds, queries[i++ % kQueries]));
  }
}
BENCHMARK(BM_DynamicQueryFromScratch)
    ->Args({64})
    ->Args({128})
    ->ArgNames({"n"})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace skydia::bench

SKYDIA_BENCH_MAIN(bench_query_throughput);
