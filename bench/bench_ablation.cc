// Ablation experiments for the design choices DESIGN.md calls out.
//
// abl-intern: result-set interning (hash-consing) on vs off for the scanning
//   builder. Interning is what keeps the O(n^3) output structure compact in
//   practice; without it every cell stores a private copy.
//
// abl-candidates: dynamic scanning's candidate pruning (previous skyline +
//   line contributors) vs recomputing each subcell from the containing
//   cell's global skyline (the subset algorithm) vs recomputing from all n
//   points. Quantifies how much of the win comes from incrementality.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/common/random.h"
#include "src/core/incremental.h"

namespace skydia::bench {
namespace {

void BM_InternOn(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(state.range(0), 1 << 16, Distribution::kIndependent);
  CellDiagram::Stats stats;
  for (auto _ : state) {
    DiagramOptions options;
    options.intern_result_sets = true;
    const SkylineDiagram diagram =
        BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning,
                     /*parallelism=*/1, options);
    stats = diagram.cell_diagram()->ComputeStats();
  }
  state.counters["bytes"] = static_cast<double>(stats.approx_bytes);
  state.counters["pool_bytes"] = static_cast<double>(stats.pool_bytes);
  state.counters["distinct_sets"] = static_cast<double>(stats.num_distinct_sets);
}
BENCHMARK(BM_InternOn)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->ArgNames({"n"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_InternOff(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(state.range(0), 1 << 16, Distribution::kIndependent);
  CellDiagram::Stats stats;
  for (auto _ : state) {
    DiagramOptions options;
    options.intern_result_sets = false;
    const SkylineDiagram diagram =
        BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning,
                     /*parallelism=*/1, options);
    stats = diagram.cell_diagram()->ComputeStats();
  }
  state.counters["bytes"] = static_cast<double>(stats.approx_bytes);
  state.counters["pool_bytes"] = static_cast<double>(stats.pool_bytes);
  state.counters["distinct_sets"] = static_cast<double>(stats.num_distinct_sets);
}
BENCHMARK(BM_InternOff)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->ArgNames({"n"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void CandidateArgs(benchmark::internal::Benchmark* b) {
  b->Arg(32)->Arg(64)->ArgNames({"n"})->Unit(benchmark::kMillisecond)->Iterations(1);
}

void BM_CandidatesScanning(benchmark::State& state) {
  const Dataset ds = MakeDataset(state.range(0), 512, Distribution::kIndependent);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning)
            .subcell_diagram()
            ->SubcellSkyline(0, 0)
            .data());
  }
}
BENCHMARK(BM_CandidatesScanning)->Apply(CandidateArgs);

void BM_CandidatesSubsetRecompute(benchmark::State& state) {
  const Dataset ds = MakeDataset(state.range(0), 512, Distribution::kIndependent);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kSubset)
            .subcell_diagram()
            ->SubcellSkyline(0, 0)
            .data());
  }
}
BENCHMARK(BM_CandidatesSubsetRecompute)->Apply(CandidateArgs);

void BM_CandidatesFullRecompute(benchmark::State& state) {
  const Dataset ds = MakeDataset(state.range(0), 512, Distribution::kIndependent);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kBaseline)
            .subcell_diagram()
            ->SubcellSkyline(0, 0)
            .data());
  }
}
BENCHMARK(BM_CandidatesFullRecompute)->Apply(CandidateArgs);

// abl-parallel: stripe-parallel DSG construction vs sequential. On a
// single-core host this isolates the overhead (replay + pool merge); with
// real cores the stripes scale.
void BM_ParallelDsg(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(512, 1 << 16, Distribution::kIndependent);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg,
                     threads)
            .cell_diagram()
            ->CellSkyline(0, 0)
            .data());
  }
}
BENCHMARK(BM_ParallelDsg)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Same ablation for the stripe-parallel dynamic scanning builder.
void BM_ParallelDynamicScanning(benchmark::State& state) {
  const Dataset ds = MakeDataset(96, 512, Distribution::kIndependent);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning,
                     threads)
            .subcell_diagram()
            ->SubcellSkyline(0, 0)
            .data());
  }
}
BENCHMARK(BM_ParallelDynamicScanning)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgNames({"threads"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// abl-incremental: appending one point to an existing diagram vs a full
// rebuild. The affected-rectangle property makes upper-right ("dominated
// newcomer") inserts nearly free.
void BM_IncrementalInsert(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(state.range(0), 1 << 16, Distribution::kIndependent);
  auto incremental = IncrementalQuadrantDiagram::Create(ds);
  SKYDIA_CHECK(incremental.ok());
  Rng rng(kBenchSeed);
  for (auto _ : state) {
    const Point2D p{rng.NextInt(0, (1 << 16) - 1),
                    rng.NextInt(0, (1 << 16) - 1)};
    benchmark::DoNotOptimize(incremental->Insert(p).ok());
  }
  state.counters["recomputed_cells"] =
      static_cast<double>(incremental->last_insert_recomputed_cells());
}
BENCHMARK(BM_IncrementalInsert)
    ->Arg(256)
    ->Arg(512)
    ->ArgNames({"n"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(4);

void BM_IncrementalFullRebuild(benchmark::State& state) {
  Dataset ds = MakeDataset(state.range(0), 1 << 16, Distribution::kIndependent);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning)
            .cell_diagram()
            ->CellSkyline(0, 0)
            .data());
  }
}
BENCHMARK(BM_IncrementalFullRebuild)
    ->Arg(256)
    ->Arg(512)
    ->ArgNames({"n"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(4);

}  // namespace
}  // namespace skydia::bench

SKYDIA_BENCH_MAIN(bench_ablation);
