// Experiment fig13-dynamic-s: dynamic-diagram construction time vs domain
// size s at fixed n = 64. Shrinking s makes bisector lines coincide, which
// bounds the subcell count by min((2s)^2, n^4) — the dominating cost driver
// for every dynamic algorithm (§V complexity analyses).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace skydia::bench {
namespace {

constexpr int64_t kN = 64;

void DomainArgs(benchmark::internal::Benchmark* b) {
  for (int64_t s = 32; s <= 512; s *= 2) {
    b->Args({s});
  }
  b->ArgNames({"s"})->Unit(benchmark::kMillisecond)->Iterations(1);
}

void BM_DynamicDomainBaseline(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(kN, state.range(0), Distribution::kIndependent);
  for (auto _ : state) {
    const SkylineDiagram diagram =
        BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kBaseline);
    benchmark::DoNotOptimize(
        diagram.subcell_diagram()->SubcellSkyline(0, 0).data());
  }
}
BENCHMARK(BM_DynamicDomainBaseline)->Apply(DomainArgs);

void BM_DynamicDomainSubset(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(kN, state.range(0), Distribution::kIndependent);
  for (auto _ : state) {
    const SkylineDiagram diagram =
        BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kSubset);
    benchmark::DoNotOptimize(
        diagram.subcell_diagram()->SubcellSkyline(0, 0).data());
  }
}
BENCHMARK(BM_DynamicDomainSubset)->Apply(DomainArgs);

void BM_DynamicDomainScanning(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(kN, state.range(0), Distribution::kIndependent);
  for (auto _ : state) {
    const SkylineDiagram diagram =
        BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning);
    benchmark::DoNotOptimize(
        diagram.subcell_diagram()->SubcellSkyline(0, 0).data());
  }
}
BENCHMARK(BM_DynamicDomainScanning)->Apply(DomainArgs);

}  // namespace
}  // namespace skydia::bench

SKYDIA_BENCH_MAIN(bench_dynamic_domain);
