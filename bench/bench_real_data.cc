// Experiment tab2-realdata: all seven diagram algorithms on the real-data
// workloads — the paper's 11-hotel running example and the NBA-like
// limited-domain stand-in (see DESIGN.md "Substitutions"). Real attribute
// tables are tie-heavy, which is exactly the min(s, n) regime the
// limited-domain analyses describe.
#include <filesystem>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/quadrant_sweeping.h"
#include "src/datagen/real_data.h"

namespace skydia::bench {
namespace {

const Dataset& Hotels() {
  static const Dataset* hotels = new Dataset(HotelExample());
  return *hotels;
}

const Dataset& NbaLike() {
  static const Dataset* nba = [] {
    const std::string path =
        (std::filesystem::temp_directory_path() / "skydia_bench_nba.csv")
            .string();
    SKYDIA_CHECK(WriteNbaLikeCsv(path, 512, kBenchSeed).ok());
    auto ds = LoadDatasetCsv(path, "points_rank", "rebounds_rank");
    SKYDIA_CHECK(ds.ok());
    return new Dataset(std::move(ds).value());
  }();
  return *nba;
}

const Dataset& Pick(int64_t which) { return which == 0 ? Hotels() : NbaLike(); }

const char* PickName(int64_t which) { return which == 0 ? "hotels" : "nba"; }

void RealDataArgs(benchmark::internal::Benchmark* b) {
  b->Arg(0)->Arg(1)->ArgNames({"dataset"})->Unit(benchmark::kMillisecond);
}

void BM_RealQuadrantBaseline(benchmark::State& state) {
  const Dataset& ds = Pick(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kBaseline)
            .cell_diagram()
            ->CellSkyline(0, 0)
            .data());
  }
  state.SetLabel(PickName(state.range(0)));
}
BENCHMARK(BM_RealQuadrantBaseline)->Apply(RealDataArgs);

void BM_RealQuadrantDsg(benchmark::State& state) {
  const Dataset& ds = Pick(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kDsg)
            .cell_diagram()
            ->CellSkyline(0, 0)
            .data());
  }
  state.SetLabel(PickName(state.range(0)));
}
BENCHMARK(BM_RealQuadrantDsg)->Apply(RealDataArgs);

void BM_RealQuadrantScanning(benchmark::State& state) {
  const Dataset& ds = Pick(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildDiagram(ds, SkylineQueryType::kQuadrant, BuildAlgorithm::kScanning)
            .cell_diagram()
            ->CellSkyline(0, 0)
            .data());
  }
  state.SetLabel(PickName(state.range(0)));
}
BENCHMARK(BM_RealQuadrantScanning)->Apply(RealDataArgs);

void BM_RealQuadrantSweeping(benchmark::State& state) {
  const Dataset& ds = Pick(state.range(0));
  if (!ds.HasDistinctCoordinates()) {
    // Tie-heavy tables use the tie-tolerant cell labelling instead.
    const CellGrid grid(ds);
    for (auto _ : state) {
      benchmark::DoNotOptimize(
          BuildSweepingCellLabels(ds, grid).num_polyominoes);
    }
    state.SetLabel(std::string(PickName(state.range(0))) + "/cell-labels");
    return;
  }
  for (auto _ : state) {
    const auto diagram = BuildQuadrantSweeping(ds);
    SKYDIA_CHECK(diagram.ok());
    benchmark::DoNotOptimize(diagram->polyominoes.size());
  }
  state.SetLabel(PickName(state.range(0)));
}
BENCHMARK(BM_RealQuadrantSweeping)->Apply(RealDataArgs);

void BM_RealDynamicBaseline(benchmark::State& state) {
  const Dataset& ds = Pick(state.range(0));
  if (state.range(0) == 1) {
    state.SkipWithError("O(n^5) baseline is infeasible at n = 512");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kBaseline)
            .subcell_diagram()
            ->SubcellSkyline(0, 0)
            .data());
  }
  state.SetLabel(PickName(state.range(0)));
}
BENCHMARK(BM_RealDynamicBaseline)->Apply(RealDataArgs);

void BM_RealDynamicSubset(benchmark::State& state) {
  const Dataset& ds = Pick(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kSubset)
            .subcell_diagram()
            ->SubcellSkyline(0, 0)
            .data());
  }
  state.SetLabel(PickName(state.range(0)));
}
BENCHMARK(BM_RealDynamicSubset)->Apply(RealDataArgs)->Iterations(1);

void BM_RealDynamicScanning(benchmark::State& state) {
  const Dataset& ds = Pick(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning)
            .subcell_diagram()
            ->SubcellSkyline(0, 0)
            .data());
  }
  state.SetLabel(PickName(state.range(0)));
}
BENCHMARK(BM_RealDynamicScanning)->Apply(RealDataArgs)->Iterations(1);

}  // namespace
}  // namespace skydia::bench

SKYDIA_BENCH_MAIN(bench_real_data);
