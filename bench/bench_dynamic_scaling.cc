// Experiment fig12-dynamic-n: construction time of the three dynamic
// skyline-diagram algorithms vs n at a limited domain (s = 512), one series
// per distribution.
//
// Expected shape (paper §VI): baseline worst (O(n) skyline per subcell);
// subset much faster (per-subcell work bounded by the global result size);
// scanning fastest (incremental candidates only).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace skydia::bench {
namespace {

constexpr int64_t kDomain = 512;

void DynamicArgs(benchmark::internal::Benchmark* b, int64_t max_n) {
  for (int64_t dist = 0; dist < 3; ++dist) {
    for (int64_t n = 16; n <= max_n; n *= 2) {
      b->Args({dist, n});
    }
  }
  b->ArgNames({"dist", "n"})->Unit(benchmark::kMillisecond)->Iterations(1);
}

void BM_DynamicBaseline(benchmark::State& state) {
  const Dataset ds = MakeDataset(state.range(1), kDomain,
                                 DistributionFromIndex(state.range(0)));
  for (auto _ : state) {
    const SkylineDiagram diagram =
        BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kBaseline);
    benchmark::DoNotOptimize(
        diagram.subcell_diagram()->SubcellSkyline(0, 0).data());
  }
  state.SetLabel(DistributionName(DistributionFromIndex(state.range(0))));
}
BENCHMARK(BM_DynamicBaseline)->Apply([](auto* b) { DynamicArgs(b, 64); });

void BM_DynamicSubset(benchmark::State& state) {
  const Dataset ds = MakeDataset(state.range(1), kDomain,
                                 DistributionFromIndex(state.range(0)));
  for (auto _ : state) {
    const SkylineDiagram diagram =
        BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kSubset);
    benchmark::DoNotOptimize(
        diagram.subcell_diagram()->SubcellSkyline(0, 0).data());
  }
  state.SetLabel(DistributionName(DistributionFromIndex(state.range(0))));
}
BENCHMARK(BM_DynamicSubset)->Apply([](auto* b) { DynamicArgs(b, 128); });

void BM_DynamicScanning(benchmark::State& state) {
  const Dataset ds = MakeDataset(state.range(1), kDomain,
                                 DistributionFromIndex(state.range(0)));
  for (auto _ : state) {
    const SkylineDiagram diagram =
        BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning);
    benchmark::DoNotOptimize(
        diagram.subcell_diagram()->SubcellSkyline(0, 0).data());
  }
  state.SetLabel(DistributionName(DistributionFromIndex(state.range(0))));
}
BENCHMARK(BM_DynamicScanning)->Apply([](auto* b) { DynamicArgs(b, 128); });

// Stripe-parallel scanning (subcell rows per worker, private pools, one
// deterministic remap-merge). Same output as BM_DynamicScanning; the
// speedup is the row-stripe parallelism minus the per-stripe seed skyline
// and the merge.
void BM_DynamicScanningParallel(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(state.range(1), kDomain, Distribution::kIndependent);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const SkylineDiagram diagram = BuildDiagram(
        ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning, threads);
    benchmark::DoNotOptimize(
        diagram.subcell_diagram()->SubcellSkyline(0, 0).data());
  }
}
BENCHMARK(BM_DynamicScanningParallel)->Apply([](auto* b) {
  for (const int64_t threads : {1, 2, 4}) {
    for (int64_t n = 32; n <= 128; n *= 2) {
      b->Args({threads, n});
    }
  }
  b->ArgNames({"threads", "n"})
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
});

// Unlimited-domain regime (s = 2^16): bisector lines rarely coincide, so a
// line has O(1) contributors and the paper's ordering emerges — scanning
// fastest, baseline worst. On the limited domain above, coincident lines
// carry many contributors and scanning loses its edge; EXPERIMENTS.md
// discusses the two regimes.
void UnlimitedArgs(benchmark::internal::Benchmark* b) {
  for (const int64_t n : {32, 48, 64, 80}) b->Args({n});
  b->ArgNames({"n"})->Unit(benchmark::kMillisecond)->Iterations(1);
}

void BM_DynamicBaselineUnlimited(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(state.range(0), 1 << 16, Distribution::kIndependent);
  for (auto _ : state) {
    const SkylineDiagram diagram =
        BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kBaseline);
    benchmark::DoNotOptimize(
        diagram.subcell_diagram()->SubcellSkyline(0, 0).data());
  }
}
BENCHMARK(BM_DynamicBaselineUnlimited)->Apply(UnlimitedArgs);

void BM_DynamicSubsetUnlimited(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(state.range(0), 1 << 16, Distribution::kIndependent);
  for (auto _ : state) {
    const SkylineDiagram diagram =
        BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kSubset);
    benchmark::DoNotOptimize(
        diagram.subcell_diagram()->SubcellSkyline(0, 0).data());
  }
}
BENCHMARK(BM_DynamicSubsetUnlimited)->Apply(UnlimitedArgs);

void BM_DynamicScanningUnlimited(benchmark::State& state) {
  const Dataset ds =
      MakeDataset(state.range(0), 1 << 16, Distribution::kIndependent);
  for (auto _ : state) {
    const SkylineDiagram diagram =
        BuildDiagram(ds, SkylineQueryType::kDynamic, BuildAlgorithm::kScanning);
    benchmark::DoNotOptimize(
        diagram.subcell_diagram()->SubcellSkyline(0, 0).data());
  }
}
BENCHMARK(BM_DynamicScanningUnlimited)->Apply(UnlimitedArgs);

}  // namespace
}  // namespace skydia::bench

SKYDIA_BENCH_MAIN(bench_dynamic_scaling);
