// Closed-loop benchmark for the serve daemon's live-mutation pipeline.
//
// Self-hosted only: builds an n=4096 quadrant fixture, starts an in-process
// SkylineServer with a mutation coalescing window, then drives it over real
// loopback sockets with one closed-loop writer connection (alternating
// {"cmd":"insert"} / {"cmd":"delete"}, each op ack'd before the next) and
// R closed-loop reader connections (pipelined query bursts) — so the
// numbers capture read latency under concurrent write-and-publish load,
// not an idle server.
//
// The headline counter is `recompute_speedup`: cells the incremental
// maintenance recomputed per mutation (scraped from the server's mutation
// metrics after a final flush) versus the (n+1)^2 cell computations a
// from-scratch scanning rebuild pays per snapshot. The run exits non-zero
// when the speedup drops below 10x at the default size, when any reply was
// an error, or when either side measured zero throughput — the CI smoke
// step gates on the exit code.
//
// Flags: --readers R (default 2), --pipeline D (reader burst depth,
//        default 32), --window-ms W (mutation coalescing window, default
//        25; 0 = publish per mutation), --duration-seconds S (default 2),
//        --n N (default 4096), --domain D (default 1<<20), --shards S,
//        --workers W, --min-speedup X (default 10),
//        --json-name NAME (default mutation_throughput).
//
// Writes BENCH_<json-name>.json (schema: tools/bench_schema_check.py) into
// $SKYDIA_BENCH_JSON_DIR or the working directory.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/common/version.h"
#include "src/core/diagram.h"
#include "src/core/serialize.h"
#include "src/datagen/distributions.h"
#include "src/serve/server.h"

namespace skydia {
namespace {

int DialServer(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Blocking line reader over one socket (the writer's closed loop and the
/// end-of-run flush are latency-insensitive, so blocking I/O keeps it
/// simple; readers use counted pipelined bursts instead).
struct LineConn {
  int fd = -1;
  std::string buffer;

  std::string ReadLine() {
    for (;;) {
      const size_t nl = buffer.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer.substr(0, nl);
        buffer.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return "";
      }
      buffer.append(chunk, static_cast<size_t>(n));
    }
  }
};

struct WriterStats {
  uint64_t acks = 0;
  uint64_t errors = 0;
  bool transport_failed = false;
};

/// Untimed net-zero write (insert + delete + flush) so the measured window
/// does not pay the one-time lazy shadow seed — a full incremental build —
/// on its first mutation.
bool Warmup(int port, int64_t domain, size_t initial_size) {
  LineConn conn;
  conn.fd = DialServer(port);
  if (conn.fd < 0) return false;
  const std::string lines =
      "{\"cmd\":\"insert\",\"x\":" + std::to_string(domain - 1) +
      ",\"y\":" + std::to_string(domain - 1) +
      "}\n{\"cmd\":\"delete\",\"point\":" + std::to_string(initial_size) +
      "}\n{\"cmd\":\"flush\"}\n";
  bool ok = SendAll(conn.fd, lines);
  for (int i = 0; ok && i < 3; ++i) {
    const std::string reply = conn.ReadLine();
    ok = !reply.empty() && reply.find("\"error\"") == std::string::npos;
  }
  ::close(conn.fd);
  return ok;
}

/// One closed-loop writer: alternating insert/delete so the live point
/// count oscillates around the fixture size instead of drifting.
void RunWriter(int port, int64_t domain, size_t initial_size,
               std::chrono::steady_clock::time_point deadline,
               WriterStats* stats) {
  LineConn conn;
  conn.fd = DialServer(port);
  if (conn.fd < 0) {
    stats->transport_failed = true;
    return;
  }
  Rng rng(7331);
  size_t size = initial_size;
  bool insert_next = true;
  while (std::chrono::steady_clock::now() < deadline) {
    std::string line;
    if (insert_next || size <= 2) {
      line = "{\"cmd\":\"insert\",\"x\":" +
             std::to_string(rng.NextInt(0, domain - 1)) +
             ",\"y\":" + std::to_string(rng.NextInt(0, domain - 1)) + "}\n";
    } else {
      line = "{\"cmd\":\"delete\",\"point\":" +
             std::to_string(rng.NextInt(
                 0, static_cast<int64_t>(size) - 1)) +
             "}\n";
    }
    if (!SendAll(conn.fd, line)) {
      stats->transport_failed = true;
      break;
    }
    const std::string reply = conn.ReadLine();
    if (reply.empty()) {
      stats->transport_failed = true;
      break;
    }
    if (reply.find("\"error\"") != std::string::npos) {
      ++stats->errors;
    } else {
      ++stats->acks;
      size += insert_next ? 1 : static_cast<size_t>(-1);
    }
    insert_next = !insert_next;
  }
  // Publish whatever the window is still holding so the scraped mutation
  // counters cover every acked op.
  if (!stats->transport_failed && SendAll(conn.fd, "{\"cmd\":\"flush\"}\n")) {
    (void)conn.ReadLine();
  }
  ::close(conn.fd);
}

struct ReaderStats {
  uint64_t replies = 0;
  uint64_t errors = 0;
  bool transport_failed = false;
  std::vector<uint64_t> burst_ns;
};

/// One closed-loop reader: a pipelined burst of point queries, re-sent the
/// moment the last reply of the previous burst drains.
void RunReader(int port, int64_t domain, int pipeline, uint64_t seed,
               std::chrono::steady_clock::time_point deadline,
               ReaderStats* stats) {
  LineConn conn;
  conn.fd = DialServer(port);
  if (conn.fd < 0) {
    stats->transport_failed = true;
    return;
  }
  Rng rng(seed);
  std::string burst;
  burst.reserve(static_cast<size_t>(pipeline) * 24);
  while (std::chrono::steady_clock::now() < deadline) {
    burst.clear();
    for (int i = 0; i < pipeline; ++i) {
      burst.append("{\"q\":[")
          .append(std::to_string(rng.NextInt(0, domain - 1)))
          .append(",")
          .append(std::to_string(rng.NextInt(0, domain - 1)))
          .append("]}\n");
    }
    const auto start = std::chrono::steady_clock::now();
    if (!SendAll(conn.fd, burst)) {
      stats->transport_failed = true;
      break;
    }
    for (int i = 0; i < pipeline; ++i) {
      const std::string reply = conn.ReadLine();
      if (reply.empty()) {
        stats->transport_failed = true;
        break;
      }
      ++stats->replies;
      if (reply.find("\"error\"") != std::string::npos) ++stats->errors;
    }
    if (stats->transport_failed) break;
    stats->burst_ns.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }
  ::close(conn.fd);
}

void AppendQuoted(const std::string& text, std::string* out) {
  out->push_back('"');
  for (const char c : text) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendDouble(double value, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  out->append(buf);
}

struct RunResult {
  size_t n = 0;
  int window_ms = 0;
  double elapsed_seconds = 0;
  uint64_t mutations = 0;
  uint64_t mutation_errors = 0;
  uint64_t publishes = 0;
  uint64_t cells_recomputed = 0;
  double cells_full_rebuild = 0;
  double recompute_speedup = 0;
  uint64_t read_replies = 0;
  uint64_t read_errors = 0;
  double read_qps = 0;
  uint64_t read_p50_burst_ns = 0;
  uint64_t read_p99_burst_ns = 0;
};

bool WriteBaseline(const std::string& bench_name, int readers, int pipeline,
                   const RunResult& r) {
  std::string out;
  out.reserve(2048);
  out += "{\n  \"schema_version\": 1,\n  \"bench\": ";
  AppendQuoted(bench_name, &out);
  out += ",\n  \"version\": ";
  AppendQuoted(kVersion, &out);
  out += ",\n  \"commit\": ";
  std::string commit = BuildCommit();
  if (commit == "unknown") {
    const char* sha = std::getenv("GITHUB_SHA");
    if (sha != nullptr && sha[0] != '\0') commit = sha;
  }
  AppendQuoted(commit, &out);
  out += ",\n  \"build_type\": ";
#ifdef NDEBUG
  AppendQuoted("release", &out);
#else
  AppendQuoted("debug", &out);
#endif
  out += ",\n  \"compiler\": ";
  AppendQuoted(__VERSION__, &out);
  out += ",\n  \"hardware_concurrency\": ";
  out += std::to_string(std::thread::hardware_concurrency());
  out += ",\n  \"timestamp_unix\": ";
  out += std::to_string(static_cast<int64_t>(std::time(nullptr)));
  out += ",\n  \"benchmarks\": [\n    {\"name\": ";
  AppendQuoted("mutation_throughput/n:" + std::to_string(r.n) +
                   "/window_ms:" + std::to_string(r.window_ms) +
                   "/readers:" + std::to_string(readers) +
                   "/pipeline:" + std::to_string(pipeline),
               &out);
  out += ", \"iterations\": ";
  out += std::to_string(r.mutations > 0 ? r.mutations : 1);
  const double ns_per_mutation =
      r.mutations > 0
          ? r.elapsed_seconds * 1e9 / static_cast<double>(r.mutations)
          : 0;
  out += ", \"real_time_ns\": ";
  AppendDouble(ns_per_mutation, &out);
  out += ", \"cpu_time_ns\": ";
  AppendDouble(ns_per_mutation, &out);
  out += ", \"counters\": {\"mutations_per_sec\": ";
  AppendDouble(r.elapsed_seconds > 0
                   ? static_cast<double>(r.mutations) / r.elapsed_seconds
                   : 0,
               &out);
  out += ", \"publishes\": ";
  out += std::to_string(r.publishes);
  out += ", \"cells_recomputed\": ";
  out += std::to_string(r.cells_recomputed);
  out += ", \"cells_per_mutation\": ";
  AppendDouble(r.mutations > 0 ? static_cast<double>(r.cells_recomputed) /
                                     static_cast<double>(r.mutations)
                               : 0,
               &out);
  out += ", \"cells_full_rebuild\": ";
  AppendDouble(r.cells_full_rebuild, &out);
  out += ", \"recompute_speedup\": ";
  AppendDouble(r.recompute_speedup, &out);
  out += ", \"read_qps\": ";
  AppendDouble(r.read_qps, &out);
  out += ", \"read_p50_burst_ns\": ";
  out += std::to_string(r.read_p50_burst_ns);
  out += ", \"read_p99_burst_ns\": ";
  out += std::to_string(r.read_p99_burst_ns);
  out += ", \"errors\": ";
  out += std::to_string(r.mutation_errors + r.read_errors);
  out += "}}\n  ]\n}\n";

  const char* dir = std::getenv("SKYDIA_BENCH_JSON_DIR");
  std::string path = dir != nullptr && dir[0] != '\0' ? dir : ".";
  path += "/BENCH_" + bench_name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const bool wrote = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  const bool closed = std::fclose(f) == 0;
  if (wrote && closed) {
    std::fprintf(stderr, "wrote baseline %s\n", path.c_str());
  }
  return wrote && closed;
}

int64_t FlagInt(int argc, char** argv, const char* name, int64_t fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == name && i + 1 < argc) return std::atoll(argv[i + 1]);
    if (arg.rfind(prefix, 0) == 0) {
      return std::atoll(arg.c_str() + prefix.size());
    }
  }
  return fallback;
}

std::string FlagString(int argc, char** argv, const char* name,
                       const std::string& fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == name && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

int Main(int argc, char** argv) {
  const auto n = static_cast<size_t>(FlagInt(argc, argv, "--n", 4096));
  const int64_t domain = FlagInt(argc, argv, "--domain", 1 << 20);
  const int readers = static_cast<int>(FlagInt(argc, argv, "--readers", 2));
  const int pipeline =
      static_cast<int>(FlagInt(argc, argv, "--pipeline", 32));
  const int window_ms =
      static_cast<int>(FlagInt(argc, argv, "--window-ms", 25));
  const int duration =
      static_cast<int>(FlagInt(argc, argv, "--duration-seconds", 6));
  const int shards = static_cast<int>(FlagInt(argc, argv, "--shards", 1));
  const int workers = static_cast<int>(FlagInt(argc, argv, "--workers", 1));
  const double min_speedup =
      static_cast<double>(FlagInt(argc, argv, "--min-speedup", 10));
  const std::string json_name =
      FlagString(argc, argv, "--json-name", "mutation_throughput");

  std::string fixture_path =
      "/tmp/skydia_bench_mutation_" + std::to_string(::getpid()) + ".skd";
  {
    DataGenOptions gen;
    gen.n = n;
    gen.domain_size = domain;
    gen.seed = 42;
    auto dataset = GenerateDataset(gen);
    if (!dataset.ok()) {
      std::cerr << "fixture dataset: " << dataset.status() << "\n";
      return 1;
    }
    auto diagram = SkylineDiagram::Build(*std::move(dataset),
                                         SkylineQueryType::kQuadrant);
    if (!diagram.ok()) {
      std::cerr << "fixture build: " << diagram.status() << "\n";
      return 1;
    }
    if (Status s = SaveCellDiagram(diagram->dataset(),
                                   *diagram->cell_diagram(), fixture_path);
        !s.ok()) {
      std::cerr << "fixture save: " << s << "\n";
      return 1;
    }
  }

  serve::ServerOptions options;
  options.port = 0;
  options.num_shards = shards;
  options.num_workers = workers;
  options.mutation_window_ms = window_ms;
  serve::SkylineServer server(options);
  if (Status s = server.Start(fixture_path); !s.ok()) {
    std::cerr << "server start: " << s << "\n";
    return 1;
  }
  const int port = server.port();
  std::cout << "self-hosted fixture: n=" << n << " domain=" << domain
            << " window_ms=" << window_ms << "\n";

  if (!Warmup(port, domain, n)) {
    std::cerr << "warmup mutation failed\n";
    server.Stop();
    return 1;
  }
  const serve::ServerMetrics& metrics = server.metrics();
  const uint64_t base_mutations = metrics.mutation_inserts.load() +
                                  metrics.mutation_deletes.load();
  const uint64_t base_publishes = metrics.mutation_publishes.load();
  const uint64_t base_cells = metrics.mutation_cells_recomputed.load();

  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::seconds(duration);
  WriterStats writer;
  std::vector<ReaderStats> reader_stats(
      static_cast<size_t>(std::max(readers, 0)));
  std::vector<std::thread> threads;
  threads.emplace_back(RunWriter, port, domain, n, deadline, &writer);
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back(RunReader, port, domain, pipeline,
                         static_cast<uint64_t>(r + 1), deadline,
                         &reader_stats[static_cast<size_t>(r)]);
  }
  for (auto& t : threads) t.join();

  RunResult result;
  result.n = n;
  result.window_ms = window_ms;
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.mutations = metrics.mutation_inserts.load() +
                     metrics.mutation_deletes.load() - base_mutations;
  result.mutation_errors = writer.errors;
  result.publishes = metrics.mutation_publishes.load() - base_publishes;
  result.cells_recomputed =
      metrics.mutation_cells_recomputed.load() - base_cells;
  // A from-scratch scanning rebuild fills every (n+1)^2 grid cell; the live
  // point count is the honest n for that comparison.
  const double live =
      static_cast<double>(metrics.mutation_points_live.load());
  result.cells_full_rebuild = (live + 1) * (live + 1);
  const double cells_per_mutation =
      result.mutations > 0 ? static_cast<double>(result.cells_recomputed) /
                                 static_cast<double>(result.mutations)
                           : 0;
  result.recompute_speedup =
      cells_per_mutation > 0 ? result.cells_full_rebuild / cells_per_mutation
                             : 0;

  std::vector<uint64_t> all_bursts;
  bool transport_failed = writer.transport_failed;
  for (const ReaderStats& s : reader_stats) {
    result.read_replies += s.replies;
    result.read_errors += s.errors;
    transport_failed = transport_failed || s.transport_failed;
    all_bursts.insert(all_bursts.end(), s.burst_ns.begin(), s.burst_ns.end());
  }
  // Readers stop at the deadline; the writer may overrun it finishing its
  // last ack and flush, so qps is over the read window, not the join time.
  const double read_window =
      std::min(result.elapsed_seconds, static_cast<double>(duration));
  result.read_qps =
      read_window > 0 ? static_cast<double>(result.read_replies) / read_window
                      : 0;
  if (!all_bursts.empty()) {
    std::sort(all_bursts.begin(), all_bursts.end());
    result.read_p50_burst_ns = all_bursts[all_bursts.size() / 2];
    result.read_p99_burst_ns = all_bursts[std::min(
        all_bursts.size() - 1, all_bursts.size() * 99 / 100)];
  }
  server.Stop();
  ::unlink(fixture_path.c_str());

  std::printf(
      "mutation bench: %llu mutations in %.2fs (%.0f/s, %llu publishes), "
      "%.1f cells/mutation vs %.0f full rebuild = %.0fx speedup\n"
      "read side: %llu replies (%.0f qps) under write load, burst p50 "
      "%.2fms p99 %.2fms, %llu errors%s\n",
      static_cast<unsigned long long>(result.mutations),
      result.elapsed_seconds,
      result.elapsed_seconds > 0
          ? static_cast<double>(result.mutations) / result.elapsed_seconds
          : 0,
      static_cast<unsigned long long>(result.publishes), cells_per_mutation,
      result.cells_full_rebuild, result.recompute_speedup,
      static_cast<unsigned long long>(result.read_replies), result.read_qps,
      static_cast<double>(result.read_p50_burst_ns) / 1e6,
      static_cast<double>(result.read_p99_burst_ns) / 1e6,
      static_cast<unsigned long long>(result.mutation_errors +
                                      result.read_errors),
      transport_failed ? ", TRANSPORT FAILURE" : "");

  if (!WriteBaseline(json_name, readers, pipeline, result)) return 1;
  const bool failed =
      transport_failed || result.mutation_errors > 0 ||
      result.read_errors > 0 || result.mutations == 0 ||
      (readers > 0 && result.read_replies == 0) ||
      result.recompute_speedup < min_speedup;
  if (result.recompute_speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: recompute speedup %.1fx is below the %.1fx floor\n",
                 result.recompute_speedup, min_speedup);
  }
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace skydia

int main(int argc, char** argv) { return skydia::Main(argc, argv); }
