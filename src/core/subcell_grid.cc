#include "src/core/subcell_grid.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace skydia {

namespace {

std::vector<int64_t> DistinctValues(const Dataset& dataset, bool use_x) {
  std::vector<int64_t> values;
  values.reserve(dataset.size());
  for (const Point2D& p : dataset.points()) {
    values.push_back(use_x ? p.x : p.y);
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

}  // namespace

SubcellAxis::SubcellAxis(const std::vector<int64_t>& values) {
  // All pairwise sums a + b (a <= b) in doubled coordinates: a == b gives the
  // point grid line 2a, a != b the bisector (a + b) / 2 doubled.
  std::unordered_set<int64_t> sums;
  sums.reserve(values.size() * values.size() / 2 + values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = i; j < values.size(); ++j) {
      sums.insert(values[i] + values[j]);
    }
  }
  lines_.assign(sums.begin(), sums.end());
  std::sort(lines_.begin(), lines_.end());
}

int64_t SubcellAxis::Representative4(uint32_t slab) const {
  if (lines_.empty()) return 0;
  if (slab == 0) return 2 * lines_.front() - 1;
  if (slab >= lines_.size()) return 2 * lines_.back() + 1;
  return lines_[slab - 1] + lines_[slab];
}

uint32_t SubcellAxis::SlabOfDoubled(int64_t v2) const {
  // Half-open convention matching CellGrid::ColumnOf: a query exactly on a
  // line is assigned to the slab on the line's left. Exactness is only
  // guaranteed for interior positions (see global_diagram.h contract).
  return static_cast<uint32_t>(
      std::lower_bound(lines_.begin(), lines_.end(), v2) - lines_.begin());
}

bool SubcellAxis::IsOnLine(int64_t v2) const {
  return std::binary_search(lines_.begin(), lines_.end(), v2);
}

SubcellGrid::SubcellGrid(const Dataset& dataset)
    : x_(DistinctValues(dataset, /*use_x=*/true)),
      y_(DistinctValues(dataset, /*use_x=*/false)),
      contrib_x_(BuildContributors(dataset, x_, /*use_x=*/true)),
      contrib_y_(BuildContributors(dataset, y_, /*use_x=*/false)) {}

std::vector<std::vector<PointId>> SubcellGrid::BuildContributors(
    const Dataset& dataset, const SubcellAxis& axis, bool use_x) {
  // Bucket point ids by coordinate value.
  std::unordered_map<int64_t, std::vector<PointId>> by_value;
  for (PointId id = 0; id < dataset.size(); ++id) {
    const Point2D& p = dataset.point(id);
    by_value[use_x ? p.x : p.y].push_back(id);
  }

  std::vector<std::vector<PointId>> contributors(axis.num_lines());
  for (uint32_t i = 0; i < axis.num_lines(); ++i) {
    const int64_t line = axis.line(i);
    std::vector<PointId>& out = contributors[i];
    // p contributes iff line - p.v is some point's coordinate value, i.e. the
    // line is a bisector (or grid line) p is party to.
    for (const auto& [value, ids] : by_value) {
      const int64_t partner = line - value;
      if (by_value.contains(partner)) {
        out.insert(out.end(), ids.begin(), ids.end());
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return contributors;
}

}  // namespace skydia
