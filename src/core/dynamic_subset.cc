#include "src/core/dynamic_subset.h"

#include <algorithm>

#include "src/core/build_report.h"
#include "src/skyline/query.h"

namespace skydia {

namespace {

// Maps every subcell slab to the skyline-cell column/row containing its
// interior: the number of distinct point coordinates whose grid line lies at
// or left of the slab's left boundary (no point line crosses a slab
// interior).
std::vector<uint32_t> SlabToCellIndex(const SubcellAxis& axis,
                                      const std::vector<int64_t>& doubled) {
  std::vector<uint32_t> map(axis.num_slabs());
  map[0] = 0;
  for (uint32_t slab = 1; slab < axis.num_slabs(); ++slab) {
    const int64_t left = axis.line(slab - 1);
    map[slab] = static_cast<uint32_t>(
        std::upper_bound(doubled.begin(), doubled.end(), left) -
        doubled.begin());
  }
  return map;
}

std::vector<int64_t> DoubledDistinct(const Dataset& dataset, bool use_x) {
  std::vector<int64_t> values;
  values.reserve(dataset.size());
  for (const Point2D& p : dataset.points()) {
    values.push_back(2 * (use_x ? p.x : p.y));
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

}  // namespace

SubcellDiagram BuildDynamicSubset(const Dataset& dataset,
                                  QuadrantAlgorithm algorithm,
                                  const DiagramOptions& options) {
  const CellDiagram global = [&] {
    PhaseScope phase("global");
    return BuildGlobalDiagram(dataset, algorithm, options);
  }();
  return BuildDynamicSubsetWithGlobal(dataset, global, options);
}

SubcellDiagram BuildDynamicSubsetWithGlobal(const Dataset& dataset,
                                            const CellDiagram& global,
                                            const DiagramOptions& options) {
  SubcellDiagram diagram = [&] {
    PhaseScope phase("grid");
    return SubcellDiagram(dataset, options.intern_result_sets);
  }();
  const SubcellGrid& grid = diagram.grid();

  {
    PhaseScope phase("scan");
    const std::vector<uint32_t> col_of = SlabToCellIndex(
        grid.x_axis(), DoubledDistinct(dataset, /*use_x=*/true));
    const std::vector<uint32_t> row_of = SlabToCellIndex(
        grid.y_axis(), DoubledDistinct(dataset, /*use_x=*/false));

    std::vector<MappedCandidate> scratch;
    std::vector<PointId> sky;
    for (uint32_t sy = 0; sy < grid.num_rows(); ++sy) {
      SKYDIA_TRACE_SPAN("scan.row");
      const int64_t repy4 = grid.y_axis().Representative4(sy);
      for (uint32_t sx = 0; sx < grid.num_columns(); ++sx) {
        const int64_t repx4 = grid.x_axis().Representative4(sx);
        DynamicSkylineOfSubsetAt4(dataset,
                                  global.CellSkyline(col_of[sx], row_of[sy]),
                                  repx4, repy4, &scratch, &sky);
        diagram.set_subcell(sx, sy, diagram.pool().InternCopy(sky));
      }
    }
  }
  {
    PhaseScope phase("freeze");
    diagram.pool().Freeze();
  }
  return diagram;
}

}  // namespace skydia
