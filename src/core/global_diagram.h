// Global skyline diagram: the global skyline is the union of the four
// per-quadrant skylines (§III), so the diagram is assembled from four runs of
// a quadrant builder on reflected copies of the dataset — reflection turns
// each quadrant's dominance into first-quadrant dominance, and cell indices
// map back by reversing the reflected axes.
//
// Exactness: cell results are exact for query points in the *interior* of
// their cell (not on a grid line). A query exactly on a grid line uses strict
// "<" candidate membership for the reflected quadrants, which the half-open
// convention cannot represent on the reflected axes; callers who must answer
// boundary queries exactly should fall back to skyline/query.h. Dynamic
// diagrams (src/core/dynamic_*.h) share the same interior-exactness contract.
#ifndef SKYDIA_SRC_CORE_GLOBAL_DIAGRAM_H_
#define SKYDIA_SRC_CORE_GLOBAL_DIAGRAM_H_

#include "src/core/options.h"
#include "src/core/skyline_cell.h"
#include "src/geometry/dataset.h"

namespace skydia {

/// Which cell-based construction runs underneath.
enum class QuadrantAlgorithm {
  kBaseline,  // Algorithm 1
  kDsg,       // Algorithm 2
  kScanning,  // Algorithm 3
};

const char* QuadrantAlgorithmName(QuadrantAlgorithm algorithm);

/// Deprecated direct entry point — new code should go through
/// SkylineDiagram::Build (src/core/diagram.h), which dispatches here.
/// Dispatches to the chosen first-quadrant builder.
CellDiagram BuildQuadrantDiagram(const Dataset& dataset,
                                 QuadrantAlgorithm algorithm,
                                 const DiagramOptions& options = {});

/// Deprecated direct entry point — new code should go through
/// SkylineDiagram::Build (src/core/diagram.h), which dispatches here.
/// Builds the global skyline diagram (union of the four quadrant skylines per
/// cell) using `algorithm` for each of the four reflected constructions.
CellDiagram BuildGlobalDiagram(const Dataset& dataset,
                               QuadrantAlgorithm algorithm,
                               const DiagramOptions& options = {});

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_GLOBAL_DIAGRAM_H_
