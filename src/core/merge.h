// Merging skyline cells into skyline polyominoes (the second phase shared by
// the baseline, DSG and scanning algorithms, §IV.A): adjacent cells with the
// same result set belong to the same polyomino. With interned result sets
// this is a connected-components pass over cell labels.
#ifndef SKYDIA_SRC_CORE_MERGE_H_
#define SKYDIA_SRC_CORE_MERGE_H_

#include <cstdint>
#include <vector>

#include "src/core/skyline_cell.h"
#include "src/skyline/interning.h"

namespace skydia {

/// The polyomino decomposition of a CellDiagram.
struct MergedPolyominoes {
  /// Row-major polyomino id per cell (same layout as the diagram's cells).
  std::vector<uint32_t> cell_to_polyomino;
  /// Result set of each polyomino.
  std::vector<SetId> polyomino_set;
  /// Number of cells in each polyomino.
  std::vector<uint32_t> polyomino_cells;

  uint32_t num_polyominoes() const {
    return static_cast<uint32_t>(polyomino_set.size());
  }
};

/// Merges 4-adjacent cells with equal result sets into polyominoes. O(cells).
MergedPolyominoes MergeCells(const CellDiagram& diagram);

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_MERGE_H_
