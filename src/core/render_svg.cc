#include "src/core/render_svg.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "src/common/hash.h"

namespace skydia {

namespace {

// Stable pastel color for a result set id: hash -> hue, fixed
// saturation/lightness, so equal results share a color across renders.
std::string ColorForSet(const SkylineSetPool& pool, SetId id) {
  if (pool.Get(id).empty()) return "#f2f2f2";
  const uint64_t h = HashIds(
      std::vector<PointId>(pool.Get(id).begin(), pool.Get(id).end()));
  const int hue = static_cast<int>(h % 360);
  std::ostringstream os;
  os << "hsl(" << hue << ", 55%, 78%)";
  return os.str();
}

struct Mapper {
  double scale;
  int height_px;

  double X(double x) const { return x * scale; }
  // SVG y grows downward; flip so the diagram reads like the paper's plots.
  double Y(double y) const { return height_px - y * scale; }
};

void EmitHeader(std::ostringstream* svg, int width, int height) {
  *svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
       << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << " "
       << height << "\">\n";
  *svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
}

void EmitSeeds(std::ostringstream* svg, const Dataset& dataset,
               const Mapper& m, bool labels) {
  for (PointId id = 0; id < dataset.size(); ++id) {
    const Point2D& p = dataset.point(id);
    *svg << "<circle cx=\"" << m.X(static_cast<double>(p.x)) << "\" cy=\""
         << m.Y(static_cast<double>(p.y))
         << "\" r=\"3\" fill=\"#222\" stroke=\"white\" stroke-width=\"1\"/>\n";
    if (labels) {
      *svg << "<text x=\"" << m.X(static_cast<double>(p.x)) + 5 << "\" y=\""
           << m.Y(static_cast<double>(p.y)) - 5
           << "\" font-size=\"10\" font-family=\"sans-serif\">"
           << dataset.label(id) << "</text>\n";
    }
  }
}

}  // namespace

std::string RenderCellDiagramSvg(const Dataset& dataset,
                                 const CellDiagram& diagram,
                                 const SvgOptions& options) {
  const auto s = static_cast<double>(dataset.domain_size());
  const Mapper m{options.width_px / s, options.width_px};
  const CellGrid& grid = diagram.grid();

  std::ostringstream svg;
  EmitHeader(&svg, options.width_px, options.width_px);

  // Cell rectangles: column cx spans [left, right) where the boundaries are
  // the grid values (clamped to the domain box).
  auto column_span = [&](uint32_t cx) {
    const double left = cx == 0 ? 0.0 : static_cast<double>(grid.x_value(cx - 1));
    const double right = cx < grid.num_distinct_x()
                             ? static_cast<double>(grid.x_value(cx))
                             : s;
    return std::pair<double, double>(left, right);
  };
  auto row_span = [&](uint32_t cy) {
    const double lo = cy == 0 ? 0.0 : static_cast<double>(grid.y_value(cy - 1));
    const double hi = cy < grid.num_distinct_y()
                          ? static_cast<double>(grid.y_value(cy))
                          : s;
    return std::pair<double, double>(lo, hi);
  };

  for (uint32_t cy = 0; cy < grid.num_rows(); ++cy) {
    const auto [ylo, yhi] = row_span(cy);
    if (yhi <= ylo) continue;
    for (uint32_t cx = 0; cx < grid.num_columns(); ++cx) {
      const auto [xlo, xhi] = column_span(cx);
      if (xhi <= xlo) continue;
      svg << "<rect x=\"" << m.X(xlo) << "\" y=\"" << m.Y(yhi) << "\" width=\""
          << (xhi - xlo) * m.scale << "\" height=\"" << (yhi - ylo) * m.scale
          << "\" fill=\"" << ColorForSet(diagram.pool(), diagram.cell_set(cx, cy))
          << "\"/>\n";
    }
  }

  if (options.draw_grid_lines) {
    for (uint32_t i = 0; i < grid.num_distinct_x(); ++i) {
      const double x = m.X(static_cast<double>(grid.x_value(i)));
      svg << "<line x1=\"" << x << "\" y1=\"0\" x2=\"" << x << "\" y2=\""
          << options.width_px
          << "\" stroke=\"#999\" stroke-width=\"0.5\"/>\n";
    }
    for (uint32_t i = 0; i < grid.num_distinct_y(); ++i) {
      const double y = m.Y(static_cast<double>(grid.y_value(i)));
      svg << "<line x1=\"0\" y1=\"" << y << "\" x2=\"" << options.width_px
          << "\" y2=\"" << y << "\" stroke=\"#999\" stroke-width=\"0.5\"/>\n";
    }
  }
  EmitSeeds(&svg, dataset, m, options.draw_labels);
  svg << "</svg>\n";
  return svg.str();
}

std::string RenderSubcellDiagramSvg(const Dataset& dataset,
                                    const SubcellDiagram& diagram,
                                    const SvgOptions& options) {
  const auto s = static_cast<double>(dataset.domain_size());
  const Mapper m{options.width_px / s, options.width_px};
  const SubcellGrid& grid = diagram.grid();

  std::ostringstream svg;
  EmitHeader(&svg, options.width_px, options.width_px);

  // Subcell boundaries are half-integer (doubled coordinates / 2).
  auto slab_span = [&](const SubcellAxis& axis, uint32_t slab) {
    const double lo = slab == 0 ? 0.0 : axis.line(slab - 1) / 2.0;
    const double hi = slab < axis.num_lines() ? axis.line(slab) / 2.0 : s;
    return std::pair<double, double>(lo, hi);
  };

  for (uint32_t sy = 0; sy < grid.num_rows(); ++sy) {
    const auto [ylo, yhi] = slab_span(grid.y_axis(), sy);
    if (yhi <= ylo) continue;
    for (uint32_t sx = 0; sx < grid.num_columns(); ++sx) {
      const auto [xlo, xhi] = slab_span(grid.x_axis(), sx);
      if (xhi <= xlo) continue;
      svg << "<rect x=\"" << m.X(xlo) << "\" y=\"" << m.Y(yhi) << "\" width=\""
          << (xhi - xlo) * m.scale << "\" height=\"" << (yhi - ylo) * m.scale
          << "\" fill=\""
          << ColorForSet(diagram.pool(), diagram.subcell_set(sx, sy))
          << "\"/>\n";
    }
  }
  EmitSeeds(&svg, dataset, m, options.draw_labels);
  svg << "</svg>\n";
  return svg.str();
}

std::string RenderSweepingDiagramSvg(const Dataset& dataset,
                                     const SweepingDiagram& diagram,
                                     const SvgOptions& options) {
  const auto s = static_cast<double>(dataset.domain_size());
  const Mapper m{options.width_px / s, options.width_px};

  std::ostringstream svg;
  EmitHeader(&svg, options.width_px, options.width_px);
  for (size_t i = 0; i < diagram.polyominoes.size(); ++i) {
    const SweepingPolyomino& poly = diagram.polyominoes[i];
    const int hue = static_cast<int>(
        HashCombine(static_cast<uint64_t>(poly.corner.x),
                    static_cast<uint64_t>(poly.corner.y)) %
        360);
    svg << "<polygon points=\"";
    for (const Point2D& v : poly.outline.vertices) {
      svg << m.X(static_cast<double>(v.x)) << ","
          << m.Y(static_cast<double>(v.y)) << " ";
    }
    svg << "\" fill=\"hsl(" << hue
        << ", 55%, 80%)\" stroke=\"#666\" stroke-width=\"0.6\"/>\n";
  }
  EmitSeeds(&svg, dataset, m, options.draw_labels);
  svg << "</svg>\n";
  return svg.str();
}

Status WriteSvgFile(const std::string& path, const std::string& svg) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  out << svg;
  if (!out) return Status::Internal("short write: " + path);
  return Status::OK();
}

}  // namespace skydia
