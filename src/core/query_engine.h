// QueryEngine: the batched, thread-parallel query-serving layer over a built
// skyline diagram — the "answer millions of skyline queries from the
// precomputed partition" half of the paper's precompute-once story.
//
// A single engine wraps one diagram (any of the three semantics) behind a
// PointLocationIndex and serves:
//   * Answer(q)        — one O(log s) lookup, span into the interned arena.
//   * AnswerBatch(qs)  — a batch of queries sharded across a ThreadPool.
//     Each shard runs with private scratch and an optional small
//     direct-mapped memo, so repeated query points (the heavy-traffic case:
//     many users asking from the same place) skip the binary searches.
//   * AnswerExact(q)   — boundary-exact answers: quadrant answers are exact
//     everywhere by construction; global/dynamic queries that land exactly
//     on a grid/bisector line fall back to the O(n log n) oracle
//     (src/skyline/query.h). See point_location.h for the convention.
//
// The engine keeps lightweight serving counters — queries served, memo hits,
// batches, and a sampled log-bucket latency histogram (every 32nd query in a
// shard is timed) — exposed through Stats(). Counters are atomics updated
// with relaxed ordering: exact totals, no inter-thread ordering guarantees.
//
// All serving methods are const and thread-safe; concurrent AnswerBatch
// calls on one engine are allowed (they share the engine's pool and may wait
// on each other's shards, which affects latency, not correctness).
//
// ServableDiagram closes the deployment loop: it loads a serialized blob
// (v1 or v2) and rebuilds the index immediately, so a frozen file is
// servable right after Load() returns.
#ifndef SKYDIA_SRC_CORE_QUERY_ENGINE_H_
#define SKYDIA_SRC_CORE_QUERY_ENGINE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/core/diagram.h"
#include "src/core/point_location.h"
#include "src/core/range_query.h"
#include "src/core/serialize.h"
#include "src/geometry/dataset.h"
#include "src/geometry/point.h"
#include "src/skyline/interning.h"

namespace skydia {

/// Options for QueryEngine.
struct QueryEngineOptions {
  /// Worker threads for AnswerBatch. 1 serves batches inline on the calling
  /// thread; > 1 creates a dedicated ThreadPool of that size.
  int num_threads = 1;
  /// Batches smaller than this are answered inline even when a pool exists
  /// (sharding overhead dominates below roughly a thousand lookups).
  size_t parallel_batch_threshold = 1024;
  /// Entries in the per-shard direct-mapped memo (rounded up to a power of
  /// two). 0 disables memoization.
  size_t memo_entries = 64;
};

/// Serving statistics. Latency percentiles come from sampled measurements
/// (every 32nd query of a shard), reported as the midpoint of a power-of-two
/// nanosecond bucket; 0 when nothing was sampled yet.
struct QueryEngineStats {
  /// Log2 latency buckets: bucket b counts samples in [2^b, 2^(b+1)) ns.
  static constexpr size_t kNumLatencyBuckets = 48;

  uint64_t queries_served = 0;
  uint64_t memo_hits = 0;
  uint64_t batches = 0;
  uint64_t oracle_fallbacks = 0;
  uint64_t latency_samples = 0;
  double p50_latency_ns = 0;
  double p99_latency_ns = 0;
  /// Raw sampled bucket counts (the Prometheus histogram source) and their
  /// approximate sum (each sample counted at its bucket midpoint).
  std::array<uint64_t, kNumLatencyBuckets> latency_bucket_counts{};
  double approx_latency_sum_ns = 0;
};

/// Per-query options for the general Answer/AnswerBatch entry points. The
/// one signature family shared by the single-query, batched, CLI and serving
/// paths (replaces the earlier positional-bool spellings).
struct QueryOptions {
  /// Answer exactly at every position: queries on grid/bisector lines of a
  /// global or dynamic diagram fall back to the O(n log n) oracle (quadrant
  /// diagrams are exact everywhere by construction and never fall back).
  bool exact = false;
  /// The semantics the caller expects. Unset means "whatever this engine
  /// serves". When set and different from the engine's: InvalidArgument
  /// unless `exact` is also set, in which case every answer is computed by
  /// the brute-force oracle under the requested semantics.
  std::optional<SkylineQueryType> semantics;
};

/// Batched query-serving over one diagram. Non-owning: the dataset and
/// diagram must outlive the engine (ServableDiagram bundles ownership).
class QueryEngine {
 public:
  /// Serves a cell diagram. `semantics` selects the exact-answer fallback
  /// oracle (kQuadrant or kGlobal; a cell diagram never encodes kDynamic).
  QueryEngine(const Dataset& dataset, const CellDiagram& diagram,
              SkylineQueryType semantics,
              const QueryEngineOptions& options = {});
  /// Serves a subcell (dynamic) diagram.
  QueryEngine(const Dataset& dataset, const SubcellDiagram& diagram,
              const QueryEngineOptions& options = {});

  /// One query via point location: sorted ids, interior-exact contract (see
  /// point_location.h). The span points into the diagram's arena.
  std::span<const PointId> Answer(const Point2D& q) const;

  /// One query, returning the interned result-set id (compact answer for
  /// callers that dedupe or forward ids; resolve with Get()).
  SetId AnswerSetId(const Point2D& q) const;

  /// One query under `options` (see QueryOptions). The general entry point:
  /// exactness and semantics mismatches are handled here; the only error is
  /// InvalidArgument for a semantics mismatch without `options.exact`.
  StatusOr<std::vector<PointId>> Answer(const Point2D& q,
                                        const QueryOptions& options) const;

  /// Every query in `queries` under the same `options`, one id vector per
  /// query. Runs the sharded SetId fast path underneath and patches in
  /// oracle answers only where `options` require them.
  StatusOr<std::vector<std::vector<PointId>>> AnswerBatch(
      std::span<const Point2D> queries, const QueryOptions& options) const;

  /// Deprecated spelling of Answer(q, {.exact = true}); prefer QueryOptions.
  std::vector<PointId> AnswerExact(const Point2D& q) const;

  /// Answers every query in `queries`, writing one interned id per query to
  /// `out` (resized to match). Shards across the engine's pool when the
  /// batch is large enough. This is the serving hot path: diagram answers
  /// only (the QueryOptions overload layers exactness on top).
  void AnswerBatch(std::span<const Point2D> queries,
                   std::vector<SetId>* out) const;
  std::vector<SetId> AnswerBatch(std::span<const Point2D> queries) const;

  /// Range query: the union/intersection/distinct-count summary of the
  /// skyline over every position in the closed rectangle (see
  /// range_query.h). Positions carry the index's cell convention — exact
  /// for quadrant diagrams, interior-exact for global/dynamic.
  StatusOr<RangeSkylineSummary> AnswerRange(const QueryRange& range) const;

  /// Members of an interned result set.
  std::span<const PointId> Get(SetId id) const { return index_.Get(id); }

  const PointLocationIndex& index() const { return index_; }
  const Dataset& dataset() const { return *dataset_; }
  SkylineQueryType semantics() const { return semantics_; }

  /// Snapshot of the serving counters.
  QueryEngineStats Stats() const;

 private:
  static constexpr size_t kLatencyBuckets =
      QueryEngineStats::kNumLatencyBuckets;
  static constexpr size_t kLatencySampleStride = 32;

  /// Answers queries[i] -> out[i] for one contiguous shard, with private
  /// memo and counters (merged into the atomics once per shard).
  void AnswerShard(std::span<const Point2D> queries, SetId* out) const;
  void RecordLatency(uint64_t ns) const;

  /// Brute-force answer under `semantics`; bumps the oracle counter.
  std::vector<PointId> OracleAnswer(SkylineQueryType semantics,
                                    const Point2D& q) const;

  PointLocationIndex index_;
  const Dataset* dataset_;
  SkylineQueryType semantics_;
  QueryEngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads == 1

  mutable std::atomic<uint64_t> queries_served_{0};
  mutable std::atomic<uint64_t> memo_hits_{0};
  mutable std::atomic<uint64_t> batches_{0};
  mutable std::atomic<uint64_t> oracle_fallbacks_{0};
  mutable std::array<std::atomic<uint64_t>, kLatencyBuckets> latency_buckets_{};
};

/// Per-shard serving counters (see ShardedServableDiagram::Stats).
struct ShardStats {
  uint64_t queries = 0;     ///< queries routed to this shard
  uint64_t memo_hits = 0;   ///< answered from the shard's memo
  uint64_t queue_depth = 0; ///< shard batches currently queued or running
  uint32_t row_begin = 0;   ///< stripe rows [row_begin, row_end)
  uint32_t row_end = 0;
};

/// The one serving surface the snapshot registry and the server target:
/// batched answers, range queries, stats and the point count, implemented
/// by both the single-index ServableDiagram and the row-striped
/// ShardedServableDiagram. Targeting the interface keeps the mutation
/// publish path shard-agnostic — a publish re-wraps the shadow diagram and
/// re-stripes it without the server knowing which shape it serves.
///
/// All methods are const and thread-safe (the implementations' contracts).
class Servable {
 public:
  virtual ~Servable() = default;

  /// Answers every query, one interned SetId per query written to `out`
  /// (resized to match). `pool` may parallelize the scatter in sharded
  /// implementations; single-index implementations follow their engine's
  /// own threading policy and may ignore it.
  virtual void AnswerSets(std::span<const Point2D> queries,
                          std::vector<SetId>* out,
                          ThreadPool* pool = nullptr) const = 0;

  /// The single-index engine behind this surface: the slow/exact query
  /// paths, range queries and engine counters. Sharded implementations
  /// return the base engine (SetIds are global across shards).
  virtual const QueryEngine& engine() const = 0;

  /// Row-stripe shards serving this surface (1 when unsharded).
  virtual int num_shards() const { return 1; }

  /// Per-shard counters, indexed by shard (empty when unsharded).
  virtual std::vector<ShardStats> shard_stats() const { return {}; }

  // Conveniences over the virtuals, shared by every implementation.
  std::span<const PointId> Get(SetId id) const { return engine().Get(id); }
  const Dataset& dataset() const { return engine().dataset(); }
  size_t point_count() const { return engine().dataset().size(); }
  StatusOr<RangeSkylineSummary> AnswerRange(const QueryRange& range) const {
    return engine().AnswerRange(range);
  }
};

/// A diagram loaded from disk — or wrapped from memory — together with
/// everything needed to serve it: dataset, diagram, and a ready QueryEngine.
/// Movable, not copyable.
class ServableDiagram : public Servable {
 public:
  /// Loads a serialized cell or subcell diagram (tries cell first, exactly
  /// like the CLI) and builds the serving index. `cell_semantics` tells the
  /// engine which exact-answer oracle a cell blob encodes — the file format
  /// does not record quadrant vs global (kDynamic is inferred from subcell
  /// blobs and must not be passed here).
  static StatusOr<ServableDiagram> Load(
      const std::string& path, const QueryEngineOptions& options = {},
      SkylineQueryType cell_semantics = SkylineQueryType::kQuadrant);

  /// Wraps an already-built diagram for serving, without a round trip
  /// through the serializer. The shared_ptrs pin the dataset/diagram
  /// addresses the engine's index references and allow sharing structure
  /// with a live producer (the mutation publish path wraps the shadow
  /// diagram's snapshots at zero copy cost). `cell_semantics` must be
  /// kQuadrant or kGlobal, exactly like Load.
  static ServableDiagram Wrap(std::shared_ptr<const Dataset> dataset,
                              std::shared_ptr<const CellDiagram> diagram,
                              SkylineQueryType cell_semantics,
                              const QueryEngineOptions& options = {});
  static ServableDiagram Wrap(std::shared_ptr<const Dataset> dataset,
                              std::shared_ptr<const SubcellDiagram> diagram,
                              const QueryEngineOptions& options = {});

  ServableDiagram(ServableDiagram&&) = default;
  ServableDiagram& operator=(ServableDiagram&&) = default;

  void AnswerSets(std::span<const Point2D> queries, std::vector<SetId>* out,
                  ThreadPool* pool = nullptr) const override {
    (void)pool;  // the engine runs its own pool policy
    engine_->AnswerBatch(queries, out);
  }
  const QueryEngine& engine() const override { return *engine_; }
  SkylineQueryType type() const { return engine_->semantics(); }

  /// Underlying diagrams (null for the other kind).
  const CellDiagram* cell_diagram() const {
    return cell_ ? &cell_->diagram : shared_cell_.get();
  }
  const SubcellDiagram* subcell_diagram() const {
    return subcell_ ? &subcell_->diagram : shared_subcell_.get();
  }

 private:
  ServableDiagram() = default;

  // unique_ptrs pin the addresses the engine's index references (Load);
  // Wrap pins through the shared_ptrs instead.
  std::unique_ptr<LoadedCellDiagram> cell_;
  std::unique_ptr<LoadedSubcellDiagram> subcell_;
  std::shared_ptr<const Dataset> shared_dataset_;
  std::shared_ptr<const CellDiagram> shared_cell_;
  std::shared_ptr<const SubcellDiagram> shared_subcell_;
  std::unique_ptr<QueryEngine> engine_;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_QUERY_ENGINE_H_
