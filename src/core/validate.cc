#include "src/core/validate.h"

#include <algorithm>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/hash.h"
#include "src/common/random.h"
#include "src/core/merge.h"
#include "src/skyline/query.h"

namespace skydia {

namespace {

bool SameContents(std::span<const PointId> a, std::span<const PointId> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

// Invariant 1: the records partition the arena back to back in id order and
// every member list is a sorted, duplicate-free subset of the point ids.
Status ValidatePool(const SkylineSetPool& pool, size_t num_points,
                    bool require_canonical) {
  if (pool.size() == 0) {
    return Status::Corruption("pool is empty (set 0 must be the empty set)");
  }
  if (pool.record_offset(kEmptySetId) != 0 || !pool.Get(kEmptySetId).empty()) {
    return Status::Corruption("set 0 is not the empty set");
  }
  uint64_t expected_offset = 0;
  for (SetId id = 0; id < pool.size(); ++id) {
    const std::span<const PointId> ids = pool.Get(id);
    if (pool.record_offset(id) != expected_offset) {
      return Status::Corruption(
          "arena record " + std::to_string(id) +
          " does not start where the previous record ends (offset " +
          std::to_string(pool.record_offset(id)) + ", expected " +
          std::to_string(expected_offset) + ")");
    }
    if (ids.size() > num_points) {
      return Status::Corruption("set " + std::to_string(id) +
                                " is larger than the dataset");
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] >= num_points) {
        return Status::Corruption("set " + std::to_string(id) +
                                  " references unknown point " +
                                  std::to_string(ids[i]));
      }
      if (i > 0 && ids[i] <= ids[i - 1]) {
        return Status::Corruption("set " + std::to_string(id) +
                                  " is not sorted/unique");
      }
    }
    expected_offset += ids.size();
  }
  if (expected_offset != pool.total_elements()) {
    return Status::Corruption(
        "arena has trailing members past the last record (" +
        std::to_string(pool.total_elements() - expected_offset) +
        " elements)");
  }
  if (require_canonical) {
    // Hash-consing must have held: no two ids with identical contents.
    // Otherwise the polyomino decomposition by SetId splits regions that
    // Definition 6 merges.
    std::unordered_map<uint64_t, std::vector<SetId>> by_hash;
    by_hash.reserve(pool.size());
    for (SetId id = 0; id < pool.size(); ++id) {
      const std::span<const PointId> ids = pool.Get(id);
      std::vector<SetId>& bucket =
          by_hash[Fnv1a64(ids.data(), ids.size() * sizeof(PointId))];
      for (const SetId other : bucket) {
        if (SameContents(pool.Get(other), ids)) {
          return Status::Corruption(
              "pool is not canonical: sets " + std::to_string(other) +
              " and " + std::to_string(id) + " have identical contents");
        }
      }
      bucket.push_back(id);
    }
  }
  return Status::OK();
}

// Invariant 2 for cell diagrams: strictly increasing compressed axes whose
// lines are exactly the point coordinates, and a full rows x columns cell
// table. The compressed grid is the rank-space image of the paper's
// (s+1) x (s+1) tiling: covering every (cx, cy) with no gaps is exactly the
// statement that the polyominoes tile the domain.
Status ValidateCellGrid(const Dataset& dataset, const CellDiagram& diagram) {
  const CellGrid& grid = diagram.grid();
  for (uint32_t i = 1; i < grid.num_distinct_x(); ++i) {
    if (grid.x_value(i - 1) >= grid.x_value(i)) {
      return Status::Corruption("x grid lines are not strictly increasing");
    }
  }
  for (uint32_t i = 1; i < grid.num_distinct_y(); ++i) {
    if (grid.y_value(i - 1) >= grid.y_value(i)) {
      return Status::Corruption("y grid lines are not strictly increasing");
    }
  }
  if (grid.num_columns() != grid.num_distinct_x() + 1 ||
      grid.num_rows() != grid.num_distinct_y() + 1 ||
      grid.num_cells() !=
          static_cast<uint64_t>(grid.num_columns()) * grid.num_rows()) {
    return Status::Corruption("cell grid shape is inconsistent");
  }
  for (PointId id = 0; id < dataset.size(); ++id) {
    const Point2D& p = dataset.point(id);
    if (grid.xrank(id) >= grid.num_distinct_x() ||
        grid.x_value(grid.xrank(id)) != p.x ||
        grid.yrank(id) >= grid.num_distinct_y() ||
        grid.y_value(grid.yrank(id)) != p.y) {
      return Status::Corruption("point " + std::to_string(id) +
                                " does not sit on its grid lines");
    }
  }
  const size_t pool_size = diagram.pool().size();
  for (uint32_t cy = 0; cy < grid.num_rows(); ++cy) {
    for (uint32_t cx = 0; cx < grid.num_columns(); ++cx) {
      if (diagram.cell_set(cx, cy) >= pool_size) {
        return Status::Corruption(
            "cell (" + std::to_string(cx) + ", " + std::to_string(cy) +
            ") references unknown result set " +
            std::to_string(diagram.cell_set(cx, cy)));
      }
    }
  }
  return Status::OK();
}

// Invariant 3 for cell diagrams: every cell of a polyomino carries the
// polyomino's result set, content-identically (Definition 6: a polyomino is
// a maximal region of constant skyline).
Status ValidatePolyominoes(const CellDiagram& diagram) {
  const CellGrid& grid = diagram.grid();
  const MergedPolyominoes merged = MergeCells(diagram);
  if (merged.cell_to_polyomino.size() != grid.num_cells()) {
    return Status::Corruption("polyomino labelling does not cover the grid");
  }
  uint64_t labelled_cells = 0;
  for (const uint32_t cells : merged.polyomino_cells) labelled_cells += cells;
  if (labelled_cells != grid.num_cells()) {
    return Status::Corruption("polyomino cell counts do not tile the grid");
  }
  for (uint32_t cy = 0; cy < grid.num_rows(); ++cy) {
    for (uint32_t cx = 0; cx < grid.num_columns(); ++cx) {
      const uint32_t poly =
          merged.cell_to_polyomino[grid.CellIndex(cx, cy)];
      if (poly >= merged.num_polyominoes()) {
        return Status::Corruption("cell labelled with unknown polyomino");
      }
      const SetId cell_set = diagram.cell_set(cx, cy);
      const SetId poly_set = merged.polyomino_set[poly];
      if (cell_set != poly_set &&
          !SameContents(diagram.pool().Get(cell_set),
                        diagram.pool().Get(poly_set))) {
        return Status::Corruption(
            "cell (" + std::to_string(cx) + ", " + std::to_string(cy) +
            ") disagrees with its polyomino's result set");
      }
    }
  }
  return Status::OK();
}

// Interior representative of cell column `cx` in 4x coordinates: a quarter
// left of line cx (or a quarter right of the last line for the outermost
// column). Never collides with a grid line, and — because coordinates are
// integers — selects exactly the candidate set {p : xrank(p) >= cx}.
int64_t ColumnRepresentative4(const CellGrid& grid, uint32_t cx) {
  return cx < grid.num_distinct_x()
             ? 4 * grid.x_value(cx) - 2
             : 4 * grid.x_value(grid.num_distinct_x() - 1) + 2;
}

int64_t RowRepresentative4(const CellGrid& grid, uint32_t cy) {
  return cy < grid.num_distinct_y()
             ? 4 * grid.y_value(cy) - 2
             : 4 * grid.y_value(grid.num_distinct_y() - 1) + 2;
}

std::string SampleError(const char* oracle, uint32_t cx, uint32_t cy) {
  return std::string("stored result of cell (") + std::to_string(cx) + ", " +
         std::to_string(cy) + ") does not match the " + oracle +
         " skyline at an interior point";
}

// Invariant 4 for cell diagrams: sampled cells match the brute-force oracle
// at an interior representative (Theorem 1 / Definition 4 ground truth).
Status SampleCellDiagram(const Dataset& dataset, const CellDiagram& diagram,
                         const ValidateOptions& options) {
  const CellGrid& grid = diagram.grid();
  Rng rng(options.seed);
  std::vector<std::pair<uint32_t, uint32_t>> samples;
  samples.reserve(options.sample_queries);
  for (size_t i = 0; i < options.sample_queries; ++i) {
    samples.emplace_back(
        static_cast<uint32_t>(rng.NextBounded(grid.num_columns())),
        static_cast<uint32_t>(rng.NextBounded(grid.num_rows())));
  }
  const auto check_all =
      [&](bool quadrant) -> std::optional<Status> {
    for (const auto& [cx, cy] : samples) {
      const int64_t qx4 = ColumnRepresentative4(grid, cx);
      const int64_t qy4 = RowRepresentative4(grid, cy);
      const std::vector<PointId> expected =
          quadrant ? QuadrantSkylineAt4(dataset, qx4, qy4, 0)
                   : GlobalSkylineAt4(dataset, qx4, qy4);
      if (!SameContents(diagram.CellSkyline(cx, cy), expected)) {
        return Status::Corruption(
            SampleError(quadrant ? "quadrant" : "global", cx, cy));
      }
    }
    return std::nullopt;
  };
  switch (options.semantics) {
    case CellSemantics::kQuadrant:
      if (auto error = check_all(true)) return *error;
      return Status::OK();
    case CellSemantics::kGlobal:
      if (auto error = check_all(false)) return *error;
      return Status::OK();
    case CellSemantics::kAuto: {
      const auto quadrant_error = check_all(true);
      if (!quadrant_error) return Status::OK();
      const auto global_error = check_all(false);
      if (!global_error) return Status::OK();
      return Status::Corruption("cells match neither oracle — " +
                                quadrant_error->message() + "; " +
                                global_error->message());
    }
  }
  return Status::Internal("unreachable semantics value");
}

// Invariant 2 for subcell diagrams. The bisector arrangement itself is
// rebuilt deterministically from the dataset (SubcellGrid's constructor), so
// the checks here cover the axis ordering, the point-on-line property, and
// the subcell table, not the O(n^2) pairwise bisector enumeration.
Status ValidateSubcellGrid(const Dataset& dataset,
                           const SubcellDiagram& diagram) {
  const SubcellGrid& grid = diagram.grid();
  const SubcellAxis& x = grid.x_axis();
  const SubcellAxis& y = grid.y_axis();
  for (uint32_t i = 1; i < x.num_lines(); ++i) {
    if (x.line(i - 1) >= x.line(i)) {
      return Status::Corruption("x subcell lines are not strictly increasing");
    }
  }
  for (uint32_t i = 1; i < y.num_lines(); ++i) {
    if (y.line(i - 1) >= y.line(i)) {
      return Status::Corruption("y subcell lines are not strictly increasing");
    }
  }
  if (grid.num_columns() != x.num_slabs() || grid.num_rows() != y.num_slabs() ||
      grid.num_subcells() !=
          static_cast<uint64_t>(grid.num_columns()) * grid.num_rows()) {
    return Status::Corruption("subcell grid shape is inconsistent");
  }
  for (PointId id = 0; id < dataset.size(); ++id) {
    const Point2D& p = dataset.point(id);
    if (!x.IsOnLine(2 * p.x) || !y.IsOnLine(2 * p.y)) {
      return Status::Corruption("point " + std::to_string(id) +
                                " does not sit on its subcell lines");
    }
  }
  const size_t pool_size = diagram.pool().size();
  for (uint32_t sy = 0; sy < grid.num_rows(); ++sy) {
    for (uint32_t sx = 0; sx < grid.num_columns(); ++sx) {
      if (diagram.subcell_set(sx, sy) >= pool_size) {
        return Status::Corruption(
            "subcell (" + std::to_string(sx) + ", " + std::to_string(sy) +
            ") references unknown result set " +
            std::to_string(diagram.subcell_set(sx, sy)));
      }
    }
  }
  return Status::OK();
}

Status SampleSubcellDiagram(const Dataset& dataset,
                            const SubcellDiagram& diagram,
                            const ValidateOptions& options) {
  const SubcellGrid& grid = diagram.grid();
  Rng rng(options.seed);
  for (size_t i = 0; i < options.sample_queries; ++i) {
    const auto sx = static_cast<uint32_t>(rng.NextBounded(grid.num_columns()));
    const auto sy = static_cast<uint32_t>(rng.NextBounded(grid.num_rows()));
    const std::vector<PointId> expected =
        DynamicSkylineAt4(dataset, grid.x_axis().Representative4(sx),
                          grid.y_axis().Representative4(sy));
    if (!SameContents(diagram.SubcellSkyline(sx, sy), expected)) {
      return Status::Corruption(
          "stored result of subcell (" + std::to_string(sx) + ", " +
          std::to_string(sy) +
          ") does not match the dynamic skyline at its representative");
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidateDiagram(const Dataset& dataset, const CellDiagram& diagram,
                       const ValidateOptions& options) {
  if (dataset.empty()) {
    return Status::Corruption("cell diagram over an empty dataset");
  }
  if (Status s = ValidatePool(diagram.pool(), dataset.size(),
                              options.require_canonical_pool);
      !s.ok()) {
    return s;
  }
  if (Status s = ValidateCellGrid(dataset, diagram); !s.ok()) return s;
  if (Status s = ValidatePolyominoes(diagram); !s.ok()) return s;
  if (options.sample_queries > 0) {
    return SampleCellDiagram(dataset, diagram, options);
  }
  return Status::OK();
}

Status ValidateDiagram(const Dataset& dataset, const SubcellDiagram& diagram,
                       const ValidateOptions& options) {
  if (dataset.empty()) {
    return Status::Corruption("subcell diagram over an empty dataset");
  }
  if (Status s = ValidatePool(diagram.pool(), dataset.size(),
                              options.require_canonical_pool);
      !s.ok()) {
    return s;
  }
  if (Status s = ValidateSubcellGrid(dataset, diagram); !s.ok()) return s;
  if (options.sample_queries > 0) {
    return SampleSubcellDiagram(dataset, diagram, options);
  }
  return Status::OK();
}

}  // namespace skydia
