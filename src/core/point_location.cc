#include "src/core/point_location.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace skydia {

PointLocationIndex::PointLocationIndex(const CellDiagram& diagram)
    : scale_(1),
      num_columns_(diagram.grid().num_columns()),
      num_rows_(diagram.grid().num_rows()),
      cells_(diagram.cell_table()),
      pool_(&diagram.pool()) {
  const CellGrid& grid = diagram.grid();
  x_lines_.reserve(grid.num_distinct_x());
  for (uint32_t i = 0; i < grid.num_distinct_x(); ++i) {
    x_lines_.push_back(grid.x_value(i));
  }
  y_lines_.reserve(grid.num_distinct_y());
  for (uint32_t i = 0; i < grid.num_distinct_y(); ++i) {
    y_lines_.push_back(grid.y_value(i));
  }
}

PointLocationIndex::PointLocationIndex(const SubcellDiagram& diagram)
    : scale_(2),
      num_columns_(diagram.grid().num_columns()),
      num_rows_(diagram.grid().num_rows()),
      cells_(diagram.cell_table()),
      pool_(&diagram.pool()) {
  const SubcellAxis& x = diagram.grid().x_axis();
  x_lines_.reserve(x.num_lines());
  for (uint32_t i = 0; i < x.num_lines(); ++i) x_lines_.push_back(x.line(i));
  const SubcellAxis& y = diagram.grid().y_axis();
  y_lines_.reserve(y.num_lines());
  for (uint32_t i = 0; i < y.num_lines(); ++i) y_lines_.push_back(y.line(i));
}

PointLocationIndex::PointLocationIndex(const CellDiagram& diagram,
                                       uint32_t row_begin, uint32_t row_end)
    : PointLocationIndex(diagram) {
  RestrictRows(row_begin, row_end);
}

PointLocationIndex::PointLocationIndex(const SubcellDiagram& diagram,
                                       uint32_t row_begin, uint32_t row_end)
    : PointLocationIndex(diagram) {
  RestrictRows(row_begin, row_end);
}

void PointLocationIndex::RestrictRows(uint32_t row_begin, uint32_t row_end) {
  // Row cy covers (y_line[cy-1], y_line[cy]], so the stripe [row_begin,
  // row_end) keeps exactly the lines strictly inside it: indexes
  // [row_begin, row_end - 1). Row arithmetic then yields stripe-local rows
  // for any query whose global row lies in the stripe.
  SKYDIA_CHECK(row_begin < row_end && row_end <= num_rows_);
  std::vector<int64_t> stripe_lines(y_lines_.begin() + row_begin,
                                    y_lines_.begin() + (row_end - 1));
  y_lines_ = std::move(stripe_lines);
  cells_ = cells_.subspan(
      static_cast<uint64_t>(row_begin) * num_columns_,
      static_cast<uint64_t>(row_end - row_begin) * num_columns_);
  num_rows_ = row_end - row_begin;
}

uint32_t PointLocationIndex::SlabOf(const std::vector<int64_t>& lines,
                                    int64_t v) {
  // Half-open convention: the slab index is the number of lines strictly
  // below v, so a query exactly on line i lands in slab i — the slab whose
  // interval (line[i-1], line[i]] ends at the line.
  return static_cast<uint32_t>(
      std::lower_bound(lines.begin(), lines.end(), v) - lines.begin());
}

bool PointLocationIndex::OnLine(const std::vector<int64_t>& lines, int64_t v) {
  return std::binary_search(lines.begin(), lines.end(), v);
}

void PointLocationIndex::BuildPolyominoTable() {
  constexpr uint32_t kUnlabelled = ~uint32_t{0};
  cell_polyomino_.assign(cells_.size(), kUnlabelled);
  num_polyominoes_ = 0;
  std::vector<uint64_t> stack;
  for (uint64_t start = 0; start < cells_.size(); ++start) {
    if (cell_polyomino_[start] != kUnlabelled) continue;
    const uint32_t label = num_polyominoes_++;
    const SetId set = cells_[start];
    cell_polyomino_[start] = label;
    stack.push_back(start);
    while (!stack.empty()) {
      const uint64_t cell = stack.back();
      stack.pop_back();
      const uint32_t cx = static_cast<uint32_t>(cell % num_columns_);
      const uint32_t cy = static_cast<uint32_t>(cell / num_columns_);
      const auto visit = [&](uint64_t next) {
        if (cell_polyomino_[next] == kUnlabelled && cells_[next] == set) {
          cell_polyomino_[next] = label;
          stack.push_back(next);
        }
      };
      if (cx > 0) visit(cell - 1);
      if (cx + 1 < num_columns_) visit(cell + 1);
      if (cy > 0) visit(cell - num_columns_);
      if (cy + 1 < num_rows_) visit(cell + num_columns_);
    }
  }
}

uint64_t PointLocationIndex::OwnedBytes() const {
  return (x_lines_.capacity() + y_lines_.capacity()) * sizeof(int64_t) +
         cell_polyomino_.capacity() * sizeof(uint32_t);
}

}  // namespace skydia
