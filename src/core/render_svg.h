// SVG rendering of skyline diagrams — the library's version of the paper's
// Figure 3 (quadrant diagram) and Figure 9 (subcell structure). Regions are
// colored by their result set (same result = same color), seeds drawn on
// top, so the polyomino structure is visible at a glance.
#ifndef SKYDIA_SRC_CORE_RENDER_SVG_H_
#define SKYDIA_SRC_CORE_RENDER_SVG_H_

#include <string>

#include "src/common/status.h"
#include "src/core/quadrant_sweeping.h"
#include "src/core/skyline_cell.h"
#include "src/core/subcell_diagram.h"
#include "src/geometry/dataset.h"

namespace skydia {

/// Rendering options. Defaults produce a 640-pixel-wide standalone SVG.
struct SvgOptions {
  int width_px = 640;
  bool draw_grid_lines = true;
  bool draw_labels = false;  // point labels next to the seeds
};

/// Renders a cell diagram (quadrant/global): each cell is a rectangle filled
/// with a color derived from its result set.
std::string RenderCellDiagramSvg(const Dataset& dataset,
                                 const CellDiagram& diagram,
                                 const SvgOptions& options = {});

/// Renders a dynamic (subcell) diagram.
std::string RenderSubcellDiagramSvg(const Dataset& dataset,
                                    const SubcellDiagram& diagram,
                                    const SvgOptions& options = {});

/// Renders the sweeping diagram's polyomino outlines directly (distinct
/// coordinates only — the outlines come from BuildQuadrantSweeping).
std::string RenderSweepingDiagramSvg(const Dataset& dataset,
                                     const SweepingDiagram& diagram,
                                     const SvgOptions& options = {});

/// Writes SVG text to a file.
Status WriteSvgFile(const std::string& path, const std::string& svg);

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_RENDER_SVG_H_
