// CellDiagram: the common output representation of the cell-based diagram
// algorithms (baseline, DSG, scanning — for quadrant and global skylines).
//
// It maps every skyline cell (see CellGrid) to an interned result set and
// supports exact point-location queries: for the first-quadrant semantics the
// half-open cell convention is exact for every query position, including
// queries on grid lines.
#ifndef SKYDIA_SRC_CORE_SKYLINE_CELL_H_
#define SKYDIA_SRC_CORE_SKYLINE_CELL_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/geometry/dataset.h"
#include "src/geometry/grid.h"
#include "src/geometry/point.h"
#include "src/skyline/interning.h"

namespace skydia {

/// Result of a cell-based diagram construction. Movable, not copyable
/// (the interning pool can be large).
class CellDiagram {
 public:
  explicit CellDiagram(const Dataset& dataset, bool intern_result_sets = true)
      : grid_(dataset),
        pool_(std::make_unique<SkylineSetPool>(intern_result_sets)),
        cells_(grid_.num_cells(), kEmptySetId) {}

  CellDiagram(CellDiagram&&) = default;
  CellDiagram& operator=(CellDiagram&&) = default;

  const CellGrid& grid() const { return grid_; }
  SkylineSetPool& pool() { return *pool_; }
  const SkylineSetPool& pool() const { return *pool_; }

  SetId cell_set(uint32_t cx, uint32_t cy) const {
    return cells_[grid_.CellIndex(cx, cy)];
  }
  void set_cell(uint32_t cx, uint32_t cy, SetId id) {
    cells_[grid_.CellIndex(cx, cy)] = id;
  }

  /// Skyline result (sorted point ids) of cell (cx, cy).
  std::span<const PointId> CellSkyline(uint32_t cx, uint32_t cy) const {
    return pool_->Get(cell_set(cx, cy));
  }

  /// The full row-major cell table (index = cy * num_columns + cx). Flat
  /// view consumed by PointLocationIndex; stays valid while the diagram
  /// lives (set_cell writes in place, the table never reallocates after
  /// construction).
  std::span<const SetId> cell_table() const { return cells_; }

  /// Point-location: the result for query point `q`.
  std::span<const PointId> Query(const Point2D& q) const {
    return CellSkyline(grid_.ColumnOf(q.x), grid_.RowOf(q.y));
  }
  SetId QuerySetId(const Point2D& q) const {
    return cell_set(grid_.ColumnOf(q.x), grid_.RowOf(q.y));
  }

  /// Semantic equality: same grid shape and the same result set in every
  /// cell (compares set contents, not SetIds, so diagrams built by different
  /// algorithms compare equal when they agree).
  bool SameResults(const CellDiagram& other) const;

  /// Structure statistics for the space-analysis experiments.
  struct Stats {
    uint64_t num_cells = 0;
    uint64_t num_distinct_sets = 0;   // interned sets incl. empty
    uint64_t total_set_elements = 0;  // sum of distinct set sizes
    uint64_t pool_bytes = 0;          // interning arena footprint alone
    uint64_t approx_bytes = 0;        // pool + cell map footprint
  };
  Stats ComputeStats() const;

 private:
  CellGrid grid_;
  std::unique_ptr<SkylineSetPool> pool_;
  std::vector<SetId> cells_;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_SKYLINE_CELL_H_
