#include "src/core/incremental_dynamic.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/core/dynamic_scanning.h"
#include "src/skyline/dominance.h"
#include "src/skyline/query.h"

namespace skydia {

namespace {

/// Slab of `axis` containing the 4x-scaled coordinate `rep4` under the
/// half-open convention (slab j is (line[j-1], line[j]] in doubled
/// coordinates): the number of lines with 2*line < rep4. A rep4 exactly on
/// a line maps to the slab owning that line; callers that need interior
/// exactness check IsOnAxisLine first.
uint32_t SlabOfRep4(const SubcellAxis& axis, int64_t rep4) {
  uint32_t lo = 0;
  uint32_t hi = axis.num_lines();
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (2 * axis.line(mid) < rep4) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// True when `rep4` falls exactly on a line of `axis` (the old diagram's
/// result is interior-exact only, so such positions must be recomputed).
bool IsOnAxisLine(const SubcellAxis& axis, uint32_t slab, int64_t rep4) {
  return slab < axis.num_lines() && 2 * axis.line(slab) == rep4;
}

}  // namespace

StatusOr<IncrementalDynamicDiagram> IncrementalDynamicDiagram::Create(
    Dataset dataset, const IncrementalOptions& options) {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot build a diagram of zero points");
  }
  if (options.require_distinct_coordinates &&
      !dataset.HasDistinctCoordinates()) {
    return Status::InvalidArgument(
        "require_distinct_coordinates was set but the seed dataset has "
        "duplicated coordinate values");
  }
  auto diagram = std::make_shared<SubcellDiagram>(
      BuildDynamicScanning(dataset, options.diagram));
  return IncrementalDynamicDiagram(
      std::make_shared<const Dataset>(std::move(dataset)), std::move(diagram),
      options);
}

StatusOr<PointId> IncrementalDynamicDiagram::Insert(
    const Point2D& p, std::optional<std::string> label) {
  const auto new_id = static_cast<PointId>(dataset_->size());
  auto new_dataset = internal::DatasetWithPoint(
      *dataset_, p, std::move(label), options_.require_distinct_coordinates);
  if (!new_dataset.ok()) return new_dataset.status();

  auto next = std::make_shared<SubcellDiagram>(
      *new_dataset, options_.diagram.intern_result_sets);
  const SubcellGrid& grid = next->grid();
  const SubcellGrid& old_grid = diagram_->grid();

  // Inserting only adds lines, so every new subcell nests inside one old
  // subcell and its representative is strictly interior to it — the old
  // result there is exact for the old point set.
  // Unchanged subcells keep their previous result. The fast path adopts the
  // old pool wholesale (one arena copy; old SetIds stay valid), so an
  // unchanged subcell copies a single integer; once the pool doubles past
  // the last compaction watermark, the slow path re-interns only referenced
  // sets (memoized per old SetId), garbage-collecting the pool.
  const SkylineSetPool& old_pool = diagram_->pool();
  const bool compact = old_pool.size() > 2 * pool_compaction_watermark_;
  constexpr SetId kUnmapped = ~SetId{0};
  std::vector<SetId> remap;
  if (compact) {
    remap.assign(old_pool.size(), kUnmapped);
  } else {
    next->pool().AdoptFrom(old_pool);
  }
  uint64_t recomputed = 0;
  std::vector<PointId> scratch;
  for (uint32_t sy = 0; sy < grid.num_rows(); ++sy) {
    const int64_t repy4 = grid.y_axis().Representative4(sy);
    const uint32_t old_sy = SlabOfRep4(old_grid.y_axis(), repy4);
    for (uint32_t sx = 0; sx < grid.num_columns(); ++sx) {
      const int64_t repx4 = grid.x_axis().Representative4(sx);
      const uint32_t old_sx = SlabOfRep4(old_grid.x_axis(), repx4);
      const SetId old_set_id = diagram_->subcell_set(old_sx, old_sy);
      const std::span<const PointId> old_set =
          diagram_->pool().Get(old_set_id);
      // By transitivity it suffices to test p against the old skyline
      // members: any dominator of p is itself dominated by one of them.
      bool dominated = false;
      for (const PointId s : old_set) {
        if (DynamicDominates4(new_dataset->point(s), p, repx4, repy4)) {
          dominated = true;
          break;
        }
      }
      if (dominated) {
        if (compact) {
          SetId& mapped = remap[old_set_id];
          if (mapped == kUnmapped) {
            mapped = next->pool().InternCopy(old_set);
          }
          next->set_subcell(sx, sy, mapped);
        } else {
          next->set_subcell(sx, sy, old_set_id);
        }
        continue;
      }
      scratch.clear();
      scratch.reserve(old_set.size() + 1);
      for (const PointId s : old_set) {
        if (!DynamicDominates4(p, new_dataset->point(s), repx4, repy4)) {
          scratch.push_back(s);
        }
      }
      scratch.push_back(new_id);  // largest id: the set stays sorted
      next->set_subcell(sx, sy, next->pool().InternCopy(scratch));
      ++recomputed;
    }
  }

  next->pool().Freeze();
  if (compact) pool_compaction_watermark_ = next->pool().size();
  last_insert_recomputed_subcells_ = recomputed;
  dataset_ =
      std::make_shared<const Dataset>(std::move(new_dataset).value());
  diagram_ = std::move(next);
  return new_id;
}

Status IncrementalDynamicDiagram::Delete(PointId id) {
  auto new_dataset = internal::DatasetWithoutPoint(
      *dataset_, id, options_.require_distinct_coordinates);
  if (!new_dataset.ok()) return new_dataset.status();

  auto next = std::make_shared<SubcellDiagram>(
      *new_dataset, options_.diagram.intern_result_sets);
  const SubcellGrid& grid = next->grid();
  const SubcellGrid& old_grid = diagram_->grid();

  // Unchanged subcells keep their previous result: the fast path adopts the
  // old pool with the deletion's id shift applied during the arena copy
  // (old SetIds stay valid); the compacting slow path re-interns referenced
  // sets with the shift memoized per old SetId. See Insert.
  const SkylineSetPool& old_pool = diagram_->pool();
  const bool compact = old_pool.size() > 2 * pool_compaction_watermark_;
  constexpr SetId kUnmapped = ~SetId{0};
  std::vector<SetId> remap;
  if (compact) {
    remap.assign(old_pool.size(), kUnmapped);
  } else {
    next->pool().AdoptFrom(old_pool, id);
  }
  uint64_t recomputed = 0;
  std::vector<PointId> scratch;
  for (uint32_t sy = 0; sy < grid.num_rows(); ++sy) {
    const int64_t repy4 = grid.y_axis().Representative4(sy);
    const uint32_t old_sy = SlabOfRep4(old_grid.y_axis(), repy4);
    const bool on_line_y = IsOnAxisLine(old_grid.y_axis(), old_sy, repy4);
    for (uint32_t sx = 0; sx < grid.num_columns(); ++sx) {
      const int64_t repx4 = grid.x_axis().Representative4(sx);
      const uint32_t old_sx = SlabOfRep4(old_grid.x_axis(), repx4);
      const SetId old_set_id = diagram_->subcell_set(old_sx, old_sy);
      const std::span<const PointId> old_set =
          diagram_->pool().Get(old_set_id);
      // Deleting removes lines, so a new representative can land exactly on
      // a removed old line — outside the old diagram's interior-exactness
      // contract. Recompute there, and wherever the old result loses the
      // deleted point (its removal can promote previously dominated points).
      const bool on_line =
          on_line_y || IsOnAxisLine(old_grid.x_axis(), old_sx, repx4);
      const bool contained =
          std::binary_search(old_set.begin(), old_set.end(), id);
      if (on_line || contained) {
        next->set_subcell(
            sx, sy,
            next->pool().Intern(DynamicSkylineAt4(*new_dataset, repx4,
                                                  repy4)));
        ++recomputed;
        continue;
      }
      // Unchanged: ids above the deleted one shift down (a pure shift keeps
      // the set sorted); the adopted pool already holds the shifted copy
      // under the same SetId.
      if (compact) {
        SetId& mapped = remap[old_set_id];
        if (mapped == kUnmapped) {
          scratch.clear();
          scratch.reserve(old_set.size());
          for (const PointId member : old_set) {
            scratch.push_back(member > id ? member - 1 : member);
          }
          mapped = next->pool().InternCopy(scratch);
        }
        next->set_subcell(sx, sy, mapped);
      } else {
        next->set_subcell(sx, sy, old_set_id);
      }
    }
  }

  next->pool().Freeze();
  if (compact) pool_compaction_watermark_ = next->pool().size();
  last_delete_recomputed_subcells_ = recomputed;
  dataset_ =
      std::make_shared<const Dataset>(std::move(new_dataset).value());
  diagram_ = std::move(next);
  return Status::OK();
}

}  // namespace skydia
