// ShardedServableDiagram: horizontal scale-out of the query-serving layer.
//
// The grid structure that makes the diagram partition-friendly for the
// stripe-parallel *builders* (sweep_kernel.h) works just as well on the
// *serving* side: the row-major cell table splits into row-stripes, each
// stripe gets its own stripe-restricted PointLocationIndex plus private
// serving state (direct-mapped memo, counters), and a query routes to its
// stripe with one binary search over the stripe-boundary y lines. Batches
// scatter queries to their shards, answer every shard independently (on a
// ThreadPool when one is provided), and gather the results back into
// request order.
//
// All shards reference the one loaded ServableDiagram — the dataset, the
// interned result pool and the cell table are shared, so SetIds remain
// global across shards and the serve layer's SetId-keyed reply cache works
// unchanged. A shard owns only its O(rows/S) slice of y lines plus its
// memo, so sharding costs O(s) memory, not O(blob).
//
// Thread-safety: all serving methods are const and safe to call
// concurrently; per-shard counters are relaxed atomics.
#ifndef SKYDIA_SRC_CORE_SHARDED_DIAGRAM_H_
#define SKYDIA_SRC_CORE_SHARDED_DIAGRAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/core/point_location.h"
#include "src/core/query_engine.h"
#include "src/geometry/point.h"

namespace skydia {

/// Options for ShardedServableDiagram::Create.
struct ShardingOptions {
  /// Requested row-stripe count. Clamped to the number of grid rows (every
  /// shard must own at least one row); values <= 1 build one shard.
  int num_shards = 1;
  /// Entries in each shard's direct-mapped query memo (rounded up to a
  /// power of two; 0 disables memoization).
  size_t memo_entries = 64;
};

/// A loaded diagram partitioned into row-stripe shards for serving.
/// (ShardStats lives in query_engine.h with the Servable interface.)
class ShardedServableDiagram : public Servable {
 public:
  /// Partitions `base` into `options.num_shards` row stripes. The base
  /// pointer is shared, never copied; it must stay alive as long as the
  /// sharded view (shared_ptr guarantees it).
  static StatusOr<ShardedServableDiagram> Create(
      std::shared_ptr<const ServableDiagram> base,
      const ShardingOptions& options = {});

  ShardedServableDiagram(ShardedServableDiagram&&) = default;
  ShardedServableDiagram& operator=(ShardedServableDiagram&&) = default;

  int num_shards() const override { return static_cast<int>(shards_.size()); }
  const ServableDiagram& base() const { return *base_; }
  const QueryEngine& engine() const override { return base_->engine(); }

  /// Servable batch entry point: scatter/gather across the shards.
  void AnswerSets(std::span<const Point2D> queries, std::vector<SetId>* out,
                  ThreadPool* pool = nullptr) const override {
    AnswerBatch(queries, out, pool);
  }
  std::vector<ShardStats> shard_stats() const override { return Stats(); }

  /// Shard owning the row of `q`: one binary search over the S-1 stripe
  /// boundary lines.
  uint32_t ShardOf(const Point2D& q) const;

  /// One query: route, then locate inside the owning stripe.
  SetId AnswerSetId(const Point2D& q) const;

  /// Members of an interned result set (ids are global across shards).
  std::span<const PointId> Get(SetId id) const {
    return base_->engine().Get(id);
  }

  /// Scatter/gather batch: partition `queries` by shard, answer each
  /// shard's share with its private memo (in parallel across `pool` when
  /// non-null and the batch is large enough), and write one SetId per query
  /// to `out` in request order.
  void AnswerBatch(std::span<const Point2D> queries, std::vector<SetId>* out,
                   ThreadPool* pool = nullptr) const;

  /// Snapshot of every shard's counters, indexed by shard.
  std::vector<ShardStats> Stats() const;

 private:
  struct Shard {
    std::unique_ptr<PointLocationIndex> index;  // stripe-restricted
    uint32_t row_begin = 0;
    uint32_t row_end = 0;
    mutable std::atomic<uint64_t> queries{0};
    mutable std::atomic<uint64_t> memo_hits{0};
    mutable std::atomic<uint64_t> queue_depth{0};
  };

  ShardedServableDiagram() = default;

  /// Answers `queries` against shard `s` with a private memo, writing
  /// out[scatter[i]] = answer(queries[i]).
  void AnswerShard(size_t s, std::span<const Point2D> queries,
                   std::span<const uint32_t> scatter, SetId* out) const;

  std::shared_ptr<const ServableDiagram> base_;
  std::vector<Shard> shards_;
  /// boundaries_[i] is the first y line of shard i+1 (internal, scaled
  /// coordinates): a query belongs to the last shard whose boundary is
  /// strictly below its y.
  std::vector<int64_t> boundaries_;
  int64_t scale_ = 1;
  size_t memo_entries_ = 0;
  /// Scatter batches below this size are answered sequentially even with a
  /// pool (handoff overhead dominates small shard shares).
  static constexpr size_t kParallelScatterThreshold = 256;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_SHARDED_DIAGRAM_H_
