#include "src/core/highdim.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "src/common/logging.h"
#include "src/skyline/algorithms.h"
#include "src/skyline/dsg.h"

namespace skydia {

NdGrid::NdGrid(const DatasetNd& dataset) {
  const int dims = dataset.dims();
  const size_t n = dataset.size();
  values_.resize(dims);
  ranks_.resize(dims);
  for (int d = 0; d < dims; ++d) {
    std::vector<int64_t>& vals = values_[d];
    vals.reserve(n);
    for (PointId id = 0; id < n; ++id) vals.push_back(dataset.coord(id, d));
    std::sort(vals.begin(), vals.end());
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
    ranks_[d].resize(n);
    for (PointId id = 0; id < n; ++id) {
      ranks_[d][id] = static_cast<uint32_t>(
          std::lower_bound(vals.begin(), vals.end(), dataset.coord(id, d)) -
          vals.begin());
    }
    num_cells_ *= cells_in_dim(d);
  }
  std::vector<uint32_t> idx(dims);
  for (PointId id = 0; id < n; ++id) {
    for (int d = 0; d < dims; ++d) idx[d] = ranks_[d][id];
    corners_[Flatten(idx)].push_back(id);
  }
}

uint64_t NdGrid::Flatten(const std::vector<uint32_t>& idx) const {
  uint64_t flat = 0;
  for (int d = 0; d < dims(); ++d) {
    flat = flat * cells_in_dim(d) + idx[d];
  }
  return flat;
}

void NdGrid::Unflatten(uint64_t flat, std::vector<uint32_t>* idx) const {
  idx->resize(dims());
  for (int d = dims() - 1; d >= 0; --d) {
    (*idx)[d] = static_cast<uint32_t>(flat % cells_in_dim(d));
    flat /= cells_in_dim(d);
  }
}

uint32_t NdGrid::IndexOf(int d, int64_t q) const {
  return static_cast<uint32_t>(
      std::lower_bound(values_[d].begin(), values_[d].end(), q) -
      values_[d].begin());
}

const std::vector<PointId>& NdGrid::PointsAtCorner(uint64_t flat_idx) const {
  const auto it = corners_.find(flat_idx);
  if (it == corners_.end()) return empty_;
  return it->second;
}

std::span<const PointId> NdCellDiagram::Query(
    const std::vector<int64_t>& q) const {
  SKYDIA_CHECK_EQ(static_cast<int>(q.size()), grid_.dims());
  std::vector<uint32_t> idx(q.size());
  for (int d = 0; d < grid_.dims(); ++d) idx[d] = grid_.IndexOf(d, q[d]);
  return CellSkyline(grid_.Flatten(idx));
}

bool NdCellDiagram::SameResults(const NdCellDiagram& other) const {
  if (grid_.num_cells() != other.grid_.num_cells()) return false;
  for (uint64_t i = 0; i < grid_.num_cells(); ++i) {
    const auto a = CellSkyline(i);
    const auto b = other.CellSkyline(i);
    if (a.size() != b.size() || !std::equal(a.begin(), a.end(), b.begin())) {
      return false;
    }
  }
  return true;
}

namespace {

bool IsCandidate(const NdGrid& grid, PointId id,
                 const std::vector<uint32_t>& idx) {
  for (int d = 0; d < grid.dims(); ++d) {
    if (grid.rank(id, d) < idx[d]) return false;
  }
  return true;
}

// Advances a mixed-radix counter; returns false after the last combination.
bool NextIndex(const NdGrid& grid, std::vector<uint32_t>* idx, int upto_dim) {
  for (int d = upto_dim - 1; d >= 0; --d) {
    if (++(*idx)[d] < grid.cells_in_dim(d)) return true;
    (*idx)[d] = 0;
  }
  return false;
}

}  // namespace

NdCellDiagram BuildNdBaseline(const DatasetNd& dataset,
                              const DiagramOptions& options) {
  NdCellDiagram diagram(dataset, options.intern_result_sets);
  const NdGrid& grid = diagram.grid();
  const size_t n = dataset.size();

  std::vector<uint32_t> idx(grid.dims(), 0);
  std::vector<PointId> candidates;
  do {
    candidates.clear();
    for (PointId id = 0; id < n; ++id) {
      if (IsCandidate(grid, id, idx)) candidates.push_back(id);
    }
    std::vector<PointId> sky = SkylineOfSubsetNd(dataset, candidates);
    diagram.set_cell(grid.Flatten(idx), diagram.pool().Intern(std::move(sky)));
  } while (NextIndex(grid, &idx, grid.dims()));
  diagram.pool().Freeze();
  return diagram;
}

NdCellDiagram BuildNdDsg(const DatasetNd& dataset,
                         const DiagramOptions& options) {
  NdCellDiagram diagram(dataset, options.intern_result_sets);
  const NdGrid& grid = diagram.grid();
  const DirectedSkylineGraph dsg(dataset);
  const size_t n = dataset.size();
  const int dims = grid.dims();
  const int last = dims - 1;

  // Iterate every row prefix over dims 0..d-2; sweep the last dimension.
  std::vector<uint32_t> prefix(dims, 0);  // last entry stays 0
  std::vector<uint8_t> alive(n);
  std::vector<uint32_t> parents_left(n);
  std::vector<std::vector<PointId>> last_dim_points(grid.cells_in_dim(last));
  for (auto& v : last_dim_points) v.clear();
  for (PointId id = 0; id < n; ++id) {
    last_dim_points[grid.rank(id, last)].push_back(id);
  }

  std::vector<uint32_t> idx(dims);
  std::vector<PointId> scratch;
  do {
    // Reset sweep state for this prefix.
    std::set<PointId> skyline;
    for (PointId id = 0; id < n; ++id) {
      bool ok = true;
      for (int d = 0; d < last; ++d) {
        if (grid.rank(id, d) < prefix[d]) {
          ok = false;
          break;
        }
      }
      alive[id] = ok ? 1 : 0;
    }
    for (PointId id = 0; id < n; ++id) {
      if (!alive[id]) continue;
      uint32_t left = 0;
      for (PointId parent : dsg.parents(id)) {
        if (alive[parent]) ++left;
      }
      parents_left[id] = left;
      if (left == 0) skyline.insert(id);
    }

    idx = prefix;
    for (uint32_t step = 0; step < grid.cells_in_dim(last); ++step) {
      if (step > 0) {
        // Cross the grid hyperplane of last-dim rank step-1. Only points
        // that were still alive participate: the batch can contain points
        // the row prefix already excluded, whose children were never
        // counted against them.
        const std::vector<PointId>& batch = last_dim_points[step - 1];
        std::vector<PointId> newly_removed;
        for (PointId id : batch) {
          if (!alive[id]) continue;
          alive[id] = 0;
          skyline.erase(id);
          newly_removed.push_back(id);
        }
        for (PointId id : newly_removed) {
          for (PointId child : dsg.children(id)) {
            if (!alive[child]) continue;
            if (--parents_left[child] == 0) skyline.insert(child);
          }
        }
      }
      idx[last] = step;
      scratch.assign(skyline.begin(), skyline.end());
      diagram.set_cell(grid.Flatten(idx),
                       diagram.pool().InternCopy(scratch));
    }
  } while (NextIndex(grid, &prefix, last));
  diagram.pool().Freeze();
  return diagram;
}

namespace {

// Shared driver for both scanning variants: visits cells in an order where
// all upper neighbours are final, applies the corner special case, and
// delegates the neighbour combination to `combine`.
template <typename Combine>
NdCellDiagram ScanNd(const DatasetNd& dataset, const DiagramOptions& options,
                     Combine combine) {
  NdCellDiagram diagram(dataset, options.intern_result_sets);
  const NdGrid& grid = diagram.grid();
  const int dims = grid.dims();

  // Descending mixed-radix enumeration: start from the all-max index.
  std::vector<uint32_t> idx(dims);
  for (int d = 0; d < dims; ++d) idx[d] = grid.cells_in_dim(d) - 1;

  std::vector<uint32_t> nbr(dims);
  for (;;) {
    const uint64_t flat = grid.Flatten(idx);
    // Any index at its maximum -> no candidates in that dimension.
    bool empty = false;
    for (int d = 0; d < dims; ++d) {
      if (idx[d] == grid.cells_in_dim(d) - 1) {
        empty = true;
        break;
      }
    }
    if (empty) {
      diagram.set_cell(flat, kEmptySetId);
    } else {
      const std::vector<PointId>& corner = grid.PointsAtCorner(flat);
      if (!corner.empty()) {
        std::vector<PointId> ids = corner;
        std::sort(ids.begin(), ids.end());
        diagram.set_cell(flat, diagram.pool().Intern(std::move(ids)));
      } else {
        diagram.set_cell(flat, combine(diagram, idx, &nbr));
      }
    }
    // Decrement the mixed-radix counter.
    int d = dims - 1;
    for (; d >= 0; --d) {
      if (idx[d] > 0) {
        --idx[d];
        break;
      }
      idx[d] = grid.cells_in_dim(d) - 1;
    }
    if (d < 0) break;
  }
  diagram.pool().Freeze();
  return diagram;
}

}  // namespace

NdCellDiagram BuildNdScanning(const DatasetNd& dataset,
                              const DiagramOptions& options) {
  return ScanNd(
      dataset, options,
      [&dataset](NdCellDiagram& diagram, const std::vector<uint32_t>& idx,
                 std::vector<uint32_t>* nbr) -> SetId {
        const NdGrid& grid = diagram.grid();
        std::vector<PointId> candidates;
        for (int d = 0; d < grid.dims(); ++d) {
          *nbr = idx;
          ++(*nbr)[d];
          const auto part = diagram.CellSkyline(grid.Flatten(*nbr));
          candidates.insert(candidates.end(), part.begin(), part.end());
        }
        std::sort(candidates.begin(), candidates.end());
        candidates.erase(std::unique(candidates.begin(), candidates.end()),
                         candidates.end());
        std::vector<PointId> sky = SkylineOfSubsetNd(dataset, candidates);
        return diagram.pool().Intern(std::move(sky));
      });
}

NdCellDiagram BuildNdScanningInclusionExclusion(const DatasetNd& dataset,
                                                const DiagramOptions& options) {
  return ScanNd(
      dataset, options,
      [&dataset](NdCellDiagram& diagram, const std::vector<uint32_t>& idx,
                 std::vector<uint32_t>* nbr) -> SetId {
        const NdGrid& grid = diagram.grid();
        const int dims = grid.dims();
        // Signed multiset count over the 2^d - 1 upper neighbours: +1 for an
        // odd number of +1 offsets, -1 for an even (non-zero) number.
        std::map<PointId, int> count;
        for (uint32_t mask = 1; mask < (1u << dims); ++mask) {
          *nbr = idx;
          int bits = 0;
          for (int d = 0; d < dims; ++d) {
            if (mask & (1u << d)) {
              ++(*nbr)[d];
              ++bits;
            }
          }
          const int sign = (bits % 2 == 1) ? 1 : -1;
          for (PointId id : diagram.CellSkyline(grid.Flatten(*nbr))) {
            count[id] += sign;
          }
        }
        std::vector<PointId> support;
        for (const auto& [id, c] : count) {
          if (c > 0) support.push_back(id);
        }
        std::vector<PointId> sky = SkylineOfSubsetNd(dataset, support);
        return diagram.pool().Intern(std::move(sky));
      });
}

}  // namespace skydia
