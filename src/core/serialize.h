// Binary serialization of built skyline diagrams: the precompute-once /
// serve-forever deployment the paper motivates (and the basis for the
// outsourcing applications — an owner builds and signs the file, servers
// load it).
//
// Format (little-endian), version 2 — the last magic byte is the version:
//   magic "SKYDIAG2" | kind u8 (1 = cell, 2 = subcell)
//   dataset: domain u64, n u64, n x (x i64, y i64),
//            labels: flag u8, then n x (len u32, bytes) when present
//   pool (the flat interning arena, one block):
//            num_sets u64, buffer_len u64, buffer u32 x buffer_len,
//            then num_sets x (offset u64, length u32)  -- set 0 is empty;
//            sets must tile the buffer back to back in id order
//   cells: count u64, ids u32...
//   footer: SHA-256 of everything above
// Version 1 ("SKYDIAG1") stored the pool as one length-prefixed id list per
// set; readers still accept it (writers always emit v2).
// Load verifies the magic, every structural invariant (sorted/unique set
// contents, in-range ids, canonical arena layout, grid shape) and the
// checksum, returning Status::Corruption on any mismatch — see
// tests/core/serialize_test.cc for the failure-injection matrix.
#ifndef SKYDIA_SRC_CORE_SERIALIZE_H_
#define SKYDIA_SRC_CORE_SERIALIZE_H_

#include <string>

#include "src/common/status.h"
#include "src/core/diagram.h"
#include "src/core/skyline_cell.h"
#include "src/core/subcell_diagram.h"
#include "src/core/validate.h"
#include "src/geometry/dataset.h"

namespace skydia {

/// A diagram loaded from disk, together with the dataset it was built from.
struct LoadedCellDiagram {
  Dataset dataset;
  CellDiagram diagram;
};
struct LoadedSubcellDiagram {
  Dataset dataset;
  SubcellDiagram diagram;
};

/// Options for the Parse/Load functions.
struct ParseOptions {
  /// Run ValidateDiagram() on the decoded diagram and fail the load with its
  /// Corruption status on violation. The per-field checks the reader always
  /// performs guard the decode itself; this additionally proves the decoded
  /// structure satisfies the paper's diagram invariants (see
  /// src/core/validate.h). Off by default: it re-reads the whole pool and,
  /// with `validate.sample_queries` > 0, runs brute-force skyline queries.
  bool validate_structure = false;
  /// Forwarded to ValidateDiagram. Note `validate.require_canonical_pool`
  /// must be false to load files written with interning disabled.
  ValidateOptions validate;
};

/// Serializes a cell diagram (quadrant or global) with its source dataset.
std::string SerializeCellDiagram(const Dataset& dataset,
                                 const CellDiagram& diagram);
Status SaveCellDiagram(const Dataset& dataset, const CellDiagram& diagram,
                       const std::string& path);

/// Deserializes; returns Corruption on malformed/damaged input.
StatusOr<LoadedCellDiagram> ParseCellDiagram(const std::string& bytes,
                                             const ParseOptions& options = {});
StatusOr<LoadedCellDiagram> LoadCellDiagram(const std::string& path,
                                            const ParseOptions& options = {});

/// Subcell (dynamic) variants.
std::string SerializeSubcellDiagram(const Dataset& dataset,
                                    const SubcellDiagram& diagram);
Status SaveSubcellDiagram(const Dataset& dataset,
                          const SubcellDiagram& diagram,
                          const std::string& path);
StatusOr<LoadedSubcellDiagram> ParseSubcellDiagram(
    const std::string& bytes, const ParseOptions& options = {});
StatusOr<LoadedSubcellDiagram> LoadSubcellDiagram(
    const std::string& path, const ParseOptions& options = {});

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_SERIALIZE_H_
