#include "src/core/quadrant_sweeping.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "src/common/logging.h"

namespace skydia {

namespace {

// One axis-parallel half-open ray family: sorted line coordinates plus the
// extent of each line (an H-line at y extends over x in [0, extent]).
struct Lines {
  std::vector<int64_t> coord;
  std::vector<int64_t> extent;

  size_t IndexOf(int64_t c) const {
    const auto it = std::lower_bound(coord.begin(), coord.end(), c);
    SKYDIA_CHECK(it != coord.end() && *it == c);
    return static_cast<size_t>(it - coord.begin());
  }
};

Lines CollectLines(const std::vector<Point2D>& points, bool horizontal,
                   int64_t s) {
  std::map<int64_t, int64_t> extent_by_coord;
  for (const Point2D& p : points) {
    const int64_t c = horizontal ? p.y : p.x;
    const int64_t e = horizontal ? p.x : p.y;
    auto [it, inserted] = extent_by_coord.emplace(c, e);
    if (!inserted) it->second = std::max(it->second, e);
  }
  // Domain boundary at 0 and the virtual sentinel seed at (s, s) close the
  // arrangement so faces tile [0, s]^2.
  extent_by_coord[0] = s;
  extent_by_coord[s] = s;
  Lines lines;
  lines.coord.reserve(extent_by_coord.size());
  lines.extent.reserve(extent_by_coord.size());
  for (const auto& [c, e] : extent_by_coord) {
    // A point on the opposite axis (p.x == 0 for a horizontal ray) emits a
    // zero-length ray: an empty wall that must not enter the arrangement.
    if (e <= 0) continue;
    lines.coord.push_back(c);
    lines.extent.push_back(e);
  }
  return lines;
}

}  // namespace

StatusOr<SweepingDiagram> BuildQuadrantSweeping(const Dataset& dataset) {
  if (!dataset.HasDistinctCoordinates()) {
    return Status::InvalidArgument(
        "the sweeping vertex-walk requires distinct coordinates per "
        "dimension; use BuildSweepingCellLabels for tie-heavy data");
  }
  const int64_t s = dataset.domain_size();
  const Lines h = CollectLines(dataset.points(), /*horizontal=*/true, s);
  const Lines v = CollectLines(dataset.points(), /*horizontal=*/false, s);

  // Arrangement nodes: (v.coord[j], h.coord[i]) whenever the two rays cross.
  // h_nodes[i] lists the x positions on H-line i, ascending; v_nodes[j] the
  // y positions on V-line j.
  std::vector<std::vector<int64_t>> h_nodes(h.coord.size());
  std::vector<std::vector<int64_t>> v_nodes(v.coord.size());
  uint64_t num_nodes = 0;
  for (size_t i = 0; i < h.coord.size(); ++i) {
    const int64_t hy = h.coord[i];
    const int64_t hxmax = h.extent[i];
    for (size_t j = 0; j < v.coord.size(); ++j) {
      const int64_t vx = v.coord[j];
      if (vx > hxmax) break;  // v.coord ascending
      if (hy <= v.extent[j]) {
        h_nodes[i].push_back(vx);
        v_nodes[j].push_back(hy);
        ++num_nodes;
      }
    }
  }
  // v_nodes entries were appended in ascending i order, hence ascending y.

  SweepingDiagram diagram;
  diagram.num_intersections = num_nodes;

  auto left_neighbor = [&](size_t hi, int64_t x) -> int64_t {
    const std::vector<int64_t>& xs = h_nodes[hi];
    const auto it = std::lower_bound(xs.begin(), xs.end(), x);
    SKYDIA_CHECK(it != xs.begin());
    return *(it - 1);
  };
  auto right_neighbor = [&](size_t hi, int64_t x) -> int64_t {
    const std::vector<int64_t>& xs = h_nodes[hi];
    const auto it = std::upper_bound(xs.begin(), xs.end(), x);
    SKYDIA_CHECK(it != xs.end());
    return *it;
  };
  auto lower_neighbor = [&](size_t vj, int64_t y) -> int64_t {
    const std::vector<int64_t>& ys = v_nodes[vj];
    const auto it = std::lower_bound(ys.begin(), ys.end(), y);
    SKYDIA_CHECK(it != ys.begin());
    return *(it - 1);
  };

  // Every node with x > 0 and y > 0 is the upper-right corner of exactly one
  // polyomino (Theorem 2 discussion); walk its outline.
  for (size_t i = 0; i < h.coord.size(); ++i) {
    const int64_t hy = h.coord[i];
    if (hy == 0) continue;
    for (int64_t gx : h_nodes[i]) {
      if (gx == 0) continue;
      SweepingPolyomino poly;
      poly.corner = Point2D{gx, hy};
      std::vector<Point2D>& verts = poly.outline.vertices;
      verts.push_back(poly.corner);
      // Top edge: one step left.
      Point2D vtx{left_neighbor(i, gx), hy};
      verts.push_back(vtx);
      // Lower-left staircase: alternate down / right until the right step
      // returns to the corner's vertical line; the closing right edge back up
      // to the corner is implicit in the vertex cycle.
      while (vtx.x != gx) {
        const size_t vj = v.IndexOf(vtx.x);
        vtx.y = lower_neighbor(vj, vtx.y);
        verts.push_back(vtx);
        const auto hit =
            std::lower_bound(h.coord.begin(), h.coord.end(), vtx.y);
        SKYDIA_CHECK(hit != h.coord.end() && *hit == vtx.y);
        const auto hi = static_cast<size_t>(hit - h.coord.begin());
        vtx.x = right_neighbor(hi, vtx.x);
        verts.push_back(vtx);
      }
      diagram.polyominoes.push_back(std::move(poly));
    }
  }
  return diagram;
}

SweepingCellLabels BuildSweepingCellLabels(const Dataset& dataset,
                                           const CellGrid& grid) {
  const uint32_t cols = grid.num_columns();
  const uint32_t rows = grid.num_rows();
  const uint64_t cells = grid.num_cells();

  // max_yrank_at_col[cx]: highest yrank among points on vertical grid line
  // cx, or -1 when the column has no point. Walls derive from these extents.
  std::vector<int64_t> max_yrank_at_col(cols, -1);
  std::vector<int64_t> max_xrank_at_row(rows, -1);
  for (PointId id = 0; id < dataset.size(); ++id) {
    const uint32_t xr = grid.xrank(id);
    const uint32_t yr = grid.yrank(id);
    max_yrank_at_col[xr] = std::max<int64_t>(max_yrank_at_col[xr], yr);
    max_xrank_at_row[yr] = std::max<int64_t>(max_xrank_at_row[yr], xr);
  }

  // Union-find over cells.
  std::vector<uint32_t> parent(cells);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](uint32_t a, uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[a] = b;
  };

  for (uint32_t cy = 0; cy < rows; ++cy) {
    for (uint32_t cx = 0; cx < cols; ++cx) {
      const auto idx = static_cast<uint32_t>(grid.CellIndex(cx, cy));
      // Right neighbour: blocked by the downward ray of any point on the
      // shared grid line reaching this row.
      if (cx + 1 < cols && max_yrank_at_col[cx] < static_cast<int64_t>(cy)) {
        unite(idx, static_cast<uint32_t>(grid.CellIndex(cx + 1, cy)));
      }
      // Upper neighbour: blocked by the leftward ray of any point on the
      // shared grid line reaching this column.
      if (cy + 1 < rows && max_xrank_at_row[cy] < static_cast<int64_t>(cx)) {
        unite(idx, static_cast<uint32_t>(grid.CellIndex(cx, cy + 1)));
      }
    }
  }

  SweepingCellLabels result;
  result.labels.resize(cells);
  std::unordered_map<uint32_t, uint32_t> compact;
  for (uint64_t i = 0; i < cells; ++i) {
    const uint32_t root = find(static_cast<uint32_t>(i));
    auto [it, inserted] =
        compact.emplace(root, static_cast<uint32_t>(compact.size()));
    result.labels[i] = it->second;
  }
  result.num_polyominoes = static_cast<uint32_t>(compact.size());
  return result;
}

}  // namespace skydia
