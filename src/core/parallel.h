// Parallel diagram construction — the direction the paper's journal
// extension develops. The cell (or subcell) grid is partitioned into
// horizontal stripes; each worker enters its stripe independently — by
// replaying the cheap row-advance removals (DSG) or with one from-scratch
// skyline at the stripe's first subcell (dynamic scanning) — and then sweeps
// its rows with the shared kernel (src/core/sweep_kernel.h), producing
// results in a worker-local interning pool. A deterministic merge remaps the
// per-stripe pools into the final diagram; the per-cell result *contents*
// are identical to the sequential builders' regardless of thread count (pool
// id numbering may differ).
#ifndef SKYDIA_SRC_CORE_PARALLEL_H_
#define SKYDIA_SRC_CORE_PARALLEL_H_

#include "src/core/options.h"
#include "src/core/skyline_cell.h"
#include "src/core/subcell_diagram.h"
#include "src/geometry/dataset.h"

namespace skydia {

/// Deprecated direct entry point — new code should go through
/// SkylineDiagram::Build (src/core/diagram.h), which dispatches here.
/// Builds the first-quadrant skyline diagram with the DSG algorithm across
/// `num_threads` workers (>= 1; 1 degenerates to the sequential algorithm).
CellDiagram BuildQuadrantDsgParallel(const Dataset& dataset, int num_threads,
                                     const DiagramOptions& options = {});

/// Deprecated direct entry point — new code should go through
/// SkylineDiagram::Build (src/core/diagram.h), which dispatches here.
/// Builds the dynamic skyline diagram with the scanning algorithm
/// (Algorithm 7) across `num_threads` workers. Subcell rows are striped;
/// each worker seeds its first row with one O(n log n) from-scratch skyline
/// and scans incrementally from there. SameResults-equal to
/// BuildDynamicScanning for every thread count.
SubcellDiagram BuildDynamicScanningParallel(const Dataset& dataset,
                                            int num_threads,
                                            const DiagramOptions& options = {});

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_PARALLEL_H_
