// Parallel quadrant-diagram construction — the direction the paper's journal
// extension develops. The cell grid is partitioned into horizontal stripes;
// each worker replays the (cheap) row-advance removals up to its stripe and
// then sweeps its rows independently with the DSG algorithm, producing
// results in a worker-local interning pool. A deterministic merge remaps the
// per-stripe pools into the final diagram; the per-cell result *contents*
// are identical to the sequential builders' regardless of thread count (pool
// id numbering may differ).
#ifndef SKYDIA_SRC_CORE_PARALLEL_H_
#define SKYDIA_SRC_CORE_PARALLEL_H_

#include "src/core/options.h"
#include "src/core/skyline_cell.h"
#include "src/geometry/dataset.h"

namespace skydia {

/// Builds the first-quadrant skyline diagram with the DSG algorithm across
/// `num_threads` workers (>= 1; 1 degenerates to the sequential algorithm).
CellDiagram BuildQuadrantDsgParallel(const Dataset& dataset, int num_threads,
                                     const DiagramOptions& options = {});

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_PARALLEL_H_
