#include "src/core/sharded_diagram.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "src/common/logging.h"
#include "src/common/trace.h"
#include "src/core/sweep_kernel.h"

namespace skydia {

namespace {

/// One direct-mapped memo slot (same scheme as QueryEngine::AnswerShard:
/// the last query point that hashed here, private to one shard task).
struct MemoEntry {
  int64_t x = 0;
  int64_t y = 0;
  SetId set = kEmptySetId;
  bool valid = false;
};

uint64_t MixQueryPoint(const Point2D& q) {
  // splitmix64 finalizer over the two coordinates (see query_engine.cc).
  uint64_t h = static_cast<uint64_t>(q.x) * 0x9E3779B97F4A7C15ull +
               static_cast<uint64_t>(q.y) * 0xC2B2AE3D27D4EB4Full;
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  return h;
}

}  // namespace

StatusOr<ShardedServableDiagram> ShardedServableDiagram::Create(
    std::shared_ptr<const ServableDiagram> base,
    const ShardingOptions& options) {
  if (base == nullptr) {
    return Status::InvalidArgument("ShardedServableDiagram needs a diagram");
  }
  SKYDIA_TRACE_SPAN("shard.build");
  ShardedServableDiagram sharded;
  const CellDiagram* cell = base->cell_diagram();
  const SubcellDiagram* subcell = base->subcell_diagram();
  SKYDIA_CHECK(cell != nullptr || subcell != nullptr);

  // Full y-line table (internal scaled coordinates) for the router; the
  // stripe indexes only keep their interior lines, so the boundary values
  // must come from the diagram itself.
  std::vector<int64_t> y_lines;
  uint32_t num_rows = 0;
  if (cell != nullptr) {
    sharded.scale_ = 1;
    num_rows = cell->grid().num_rows();
    y_lines.reserve(cell->grid().num_distinct_y());
    for (uint32_t i = 0; i < cell->grid().num_distinct_y(); ++i) {
      y_lines.push_back(cell->grid().y_value(i));
    }
  } else {
    sharded.scale_ = 2;
    num_rows = subcell->grid().num_rows();
    const SubcellAxis& y = subcell->grid().y_axis();
    y_lines.reserve(y.num_lines());
    for (uint32_t i = 0; i < y.num_lines(); ++i) {
      y_lines.push_back(y.line(i));
    }
  }

  // Every shard must own at least one row; a degenerate grid simply caps
  // the effective shard count.
  const uint32_t stripes = static_cast<uint32_t>(std::clamp(
      options.num_shards, 1, static_cast<int>(std::min<uint32_t>(
                                 num_rows, 1u << 16))));
  sharded.base_ = std::move(base);
  sharded.memo_entries_ =
      options.memo_entries > 0 ? std::bit_ceil(options.memo_entries) : 0;
  sharded.shards_ = std::vector<Shard>(stripes);
  sharded.boundaries_.reserve(stripes - 1);
  for (uint32_t s = 0; s < stripes; ++s) {
    const StripeRange range = StripeRows(num_rows, stripes, s);
    SKYDIA_CHECK(range.begin < range.end);
    Shard& shard = sharded.shards_[s];
    shard.row_begin = range.begin;
    shard.row_end = range.end;
    shard.index = cell != nullptr
                      ? std::make_unique<PointLocationIndex>(
                            *cell, range.begin, range.end)
                      : std::make_unique<PointLocationIndex>(
                            *subcell, range.begin, range.end);
    if (s > 0) {
      // Shards s-1 and s meet at row boundary range.begin: the separating
      // grid line is the upper edge of row range.begin - 1.
      sharded.boundaries_.push_back(y_lines[range.begin - 1]);
    }
  }
  return sharded;
}

uint32_t ShardedServableDiagram::ShardOf(const Point2D& q) const {
  // Half-open rows put a query exactly on a boundary line into the shard
  // below it, matching SlabOf's lower_bound convention.
  const int64_t v = scale_ * q.y;
  return static_cast<uint32_t>(
      std::lower_bound(boundaries_.begin(), boundaries_.end(), v) -
      boundaries_.begin());
}

SetId ShardedServableDiagram::AnswerSetId(const Point2D& q) const {
  const Shard& shard = shards_[ShardOf(q)];
  shard.queries.fetch_add(1, std::memory_order_relaxed);
  return shard.index->LocateSet(q);
}

void ShardedServableDiagram::AnswerShard(size_t s,
                                         std::span<const Point2D> queries,
                                         std::span<const uint32_t> scatter,
                                         SetId* out) const {
  SKYDIA_TRACE_SPAN("shard.answer");
  const Shard& shard = shards_[s];
  const size_t memo_size = memo_entries_;
  std::vector<MemoEntry> memo(memo_size);
  uint64_t hits = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const Point2D& q = queries[i];
    MemoEntry* slot = nullptr;
    if (memo_size > 0) {
      slot = &memo[MixQueryPoint(q) & (memo_size - 1)];
      if (slot->valid && slot->x == q.x && slot->y == q.y) {
        out[scatter[i]] = slot->set;
        ++hits;
        continue;
      }
    }
    const SetId set = shard.index->LocateSet(q);
    if (slot != nullptr) *slot = MemoEntry{q.x, q.y, set, true};
    out[scatter[i]] = set;
  }
  shard.queries.fetch_add(queries.size(), std::memory_order_relaxed);
  shard.memo_hits.fetch_add(hits, std::memory_order_relaxed);
}

void ShardedServableDiagram::AnswerBatch(std::span<const Point2D> queries,
                                         std::vector<SetId>* out,
                                         ThreadPool* pool) const {
  SKYDIA_TRACE_SPAN("shard.batch");
  out->resize(queries.size());
  if (queries.empty()) return;
  const size_t num_shards = shards_.size();
  if (num_shards == 1) {
    std::vector<uint32_t> identity(queries.size());
    for (uint32_t i = 0; i < identity.size(); ++i) identity[i] = i;
    shards_[0].queue_depth.fetch_add(1, std::memory_order_relaxed);
    AnswerShard(0, queries, identity, out->data());
    shards_[0].queue_depth.fetch_sub(1, std::memory_order_relaxed);
    return;
  }

  // Scatter: bucket queries by owning stripe, remembering each query's
  // original position so the gather restores request order.
  std::vector<std::vector<Point2D>> shard_queries(num_shards);
  std::vector<std::vector<uint32_t>> shard_scatter(num_shards);
  for (uint32_t i = 0; i < queries.size(); ++i) {
    const uint32_t s = ShardOf(queries[i]);
    shard_queries[s].push_back(queries[i]);
    shard_scatter[s].push_back(i);
  }

  SetId* const out_data = out->data();
  const bool parallel =
      pool != nullptr && queries.size() >= kParallelScatterThreshold;
  if (!parallel) {
    for (size_t s = 0; s < num_shards; ++s) {
      if (shard_queries[s].empty()) continue;
      shards_[s].queue_depth.fetch_add(1, std::memory_order_relaxed);
      AnswerShard(s, shard_queries[s], shard_scatter[s], out_data);
      shards_[s].queue_depth.fetch_sub(1, std::memory_order_relaxed);
    }
    return;
  }
  // Gather via the pool's WaitIdle handshake: disjoint out positions per
  // shard, so tasks need no synchronization beyond the barrier. Request
  // context is thread-local; re-establish it on each pool worker so the
  // shard spans carry the calling request's id.
  const uint64_t ctx = trace::CurrentRequestContext();
  for (size_t s = 0; s < num_shards; ++s) {
    if (shard_queries[s].empty()) continue;
    shards_[s].queue_depth.fetch_add(1, std::memory_order_relaxed);
    pool->Submit([this, s, ctx, &shard_queries, &shard_scatter, out_data] {
      trace::ScopedRequestContext ctx_scope(ctx);
      AnswerShard(s, shard_queries[s], shard_scatter[s], out_data);
      shards_[s].queue_depth.fetch_sub(1, std::memory_order_relaxed);
    });
  }
  pool->WaitIdle();
}

std::vector<ShardStats> ShardedServableDiagram::Stats() const {
  std::vector<ShardStats> stats(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    stats[s].queries = shards_[s].queries.load(std::memory_order_relaxed);
    stats[s].memo_hits = shards_[s].memo_hits.load(std::memory_order_relaxed);
    stats[s].queue_depth =
        shards_[s].queue_depth.load(std::memory_order_relaxed);
    stats[s].row_begin = shards_[s].row_begin;
    stats[s].row_end = shards_[s].row_end;
  }
  return stats;
}

}  // namespace skydia
