#include "src/core/skyline_cell.h"

#include <algorithm>

namespace skydia {

bool CellDiagram::SameResults(const CellDiagram& other) const {
  if (grid_.num_columns() != other.grid_.num_columns() ||
      grid_.num_rows() != other.grid_.num_rows()) {
    return false;
  }
  for (uint32_t cy = 0; cy < grid_.num_rows(); ++cy) {
    for (uint32_t cx = 0; cx < grid_.num_columns(); ++cx) {
      const auto a = CellSkyline(cx, cy);
      const auto b = other.CellSkyline(cx, cy);
      if (a.size() != b.size() || !std::equal(a.begin(), a.end(), b.begin())) {
        return false;
      }
    }
  }
  return true;
}

CellDiagram::Stats CellDiagram::ComputeStats() const {
  Stats stats;
  stats.num_cells = grid_.num_cells();
  stats.num_distinct_sets = pool_->size();
  stats.total_set_elements = pool_->total_elements();
  stats.pool_bytes = pool_->ApproximateMemoryBytes();
  stats.approx_bytes = stats.pool_bytes + cells_.size() * sizeof(SetId);
  return stats;
}

}  // namespace skydia
