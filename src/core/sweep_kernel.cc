#include "src/core/sweep_kernel.h"

#include <algorithm>
#include <iterator>

namespace skydia {

namespace {

// candidates = sorted_union(prev, extra), both sorted ascending.
void SortedUnion(const std::vector<PointId>& prev,
                 const std::vector<PointId>& extra,
                 std::vector<PointId>* out) {
  out->clear();
  out->reserve(prev.size() + extra.size());
  std::set_union(prev.begin(), prev.end(), extra.begin(), extra.end(),
                 std::back_inserter(*out));
}

}  // namespace

SweepState InitialSweepState(const DirectedSkylineGraph& dsg, size_t n) {
  SweepState state;
  state.alive.assign(n, 1);
  state.parents_left.resize(n);
  for (PointId id = 0; id < n; ++id) {
    state.parents_left[id] = dsg.parent_count(id);
    if (state.parents_left[id] == 0) state.skyline.insert(id);
  }
  return state;
}

void RemoveBatch(const DirectedSkylineGraph& dsg,
                 const std::vector<PointId>& batch, SweepState* state,
                 std::vector<PointId>* newly_removed) {
  newly_removed->clear();
  for (PointId id : batch) {
    if (!state->alive[id]) continue;
    state->alive[id] = 0;
    state->skyline.erase(id);
    newly_removed->push_back(id);
  }
  for (PointId id : *newly_removed) {
    for (PointId child : dsg.children(id)) {
      if (!state->alive[child]) continue;
      if (--state->parents_left[child] == 0) {
        state->skyline.insert(child);
      }
    }
  }
}

void DynamicRowScanner::SeedRow(uint32_t sy) {
  row_anchor_ = DynamicSkylineAt4(dataset_, grid_.x_axis().Representative4(0),
                                  grid_.y_axis().Representative4(sy));
}

void DynamicRowScanner::AdvanceRow(uint32_t sy) {
  SortedUnion(row_anchor_, grid_.ContributorsY(sy - 1), &candidates_);
  DynamicSkylineOfSubsetAt4(dataset_, candidates_,
                            grid_.x_axis().Representative4(0),
                            grid_.y_axis().Representative4(sy), &mapped_,
                            &row_anchor_);
}

void DynamicRowScanner::ScanRow(uint32_t sy, SkylineSetPool* pool,
                                SetId* row_out) {
  const int64_t repy4 = grid_.y_axis().Representative4(sy);
  current_ = row_anchor_;
  row_out[0] = pool->InternCopy(current_);
  for (uint32_t sx = 1; sx < grid_.num_columns(); ++sx) {
    // Cross vertical line sx-1.
    SortedUnion(current_, grid_.ContributorsX(sx - 1), &candidates_);
    DynamicSkylineOfSubsetAt4(dataset_, candidates_,
                              grid_.x_axis().Representative4(sx), repy4,
                              &mapped_, &current_);
    row_out[sx] = pool->InternCopy(current_);
  }
}

StripeRange StripeRows(uint32_t rows, uint32_t stripes, uint32_t stripe) {
  const uint32_t rows_per_stripe = (rows + stripes - 1) / stripes;
  StripeRange range;
  range.begin = std::min(rows, stripe * rows_per_stripe);
  range.end = std::min(rows, range.begin + rows_per_stripe);
  return range;
}

std::vector<SetId> RemapPool(const SkylineSetPool& src, SkylineSetPool* dst) {
  std::vector<SetId> remap(src.size(), kEmptySetId);
  for (SetId id = 0; id < src.size(); ++id) {
    remap[id] = dst->InternCopy(src.Get(id));
  }
  return remap;
}

}  // namespace skydia
