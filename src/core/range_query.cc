#include "src/core/range_query.h"

#include <algorithm>
#include <unordered_set>

namespace skydia {

namespace {

Status Validate(const QueryRange& range) {
  if (range.x_lo > range.x_hi || range.y_lo > range.y_hi) {
    return Status::InvalidArgument("inverted query range");
  }
  return Status::OK();
}

struct CellRect {
  uint32_t cx_lo, cx_hi, cy_lo, cy_hi;  // inclusive
};

CellRect CoveredCells(const CellGrid& grid, const QueryRange& range) {
  return CellRect{grid.ColumnOf(range.x_lo), grid.ColumnOf(range.x_hi),
                  grid.RowOf(range.y_lo), grid.RowOf(range.y_hi)};
}

}  // namespace

StatusOr<std::vector<PointId>> RangeSkylineUnion(const CellDiagram& diagram,
                                                 const QueryRange& range) {
  if (Status s = Validate(range); !s.ok()) return s;
  const CellRect rect = CoveredCells(diagram.grid(), range);
  // Deduplicate cells by SetId first: ranges usually cover few distinct
  // results even when they cover many cells.
  std::unordered_set<SetId> seen;
  std::vector<PointId> result;
  for (uint32_t cy = rect.cy_lo; cy <= rect.cy_hi; ++cy) {
    for (uint32_t cx = rect.cx_lo; cx <= rect.cx_hi; ++cx) {
      const SetId id = diagram.cell_set(cx, cy);
      if (!seen.insert(id).second) continue;
      const auto set = diagram.pool().Get(id);
      result.insert(result.end(), set.begin(), set.end());
    }
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

StatusOr<std::vector<PointId>> RangeSkylineIntersection(
    const CellDiagram& diagram, const QueryRange& range) {
  if (Status s = Validate(range); !s.ok()) return s;
  const CellRect rect = CoveredCells(diagram.grid(), range);
  std::unordered_set<SetId> seen;
  std::vector<PointId> result;
  bool first = true;
  std::vector<PointId> next;
  for (uint32_t cy = rect.cy_lo; cy <= rect.cy_hi; ++cy) {
    for (uint32_t cx = rect.cx_lo; cx <= rect.cx_hi; ++cx) {
      const SetId id = diagram.cell_set(cx, cy);
      if (!seen.insert(id).second) continue;
      const auto set = diagram.pool().Get(id);
      if (first) {
        result.assign(set.begin(), set.end());
        first = false;
        continue;
      }
      next.clear();
      std::set_intersection(result.begin(), result.end(), set.begin(),
                            set.end(), std::back_inserter(next));
      result.swap(next);
      if (result.empty()) return result;  // cannot recover
    }
  }
  return result;
}

StatusOr<RangeSkylineSummary> RangeSkylineSummarize(
    const PointLocationIndex& index, const QueryRange& range) {
  if (Status s = Validate(range); !s.ok()) return s;
  // Locate the two corners; the half-open convention makes the covered cell
  // rectangle exactly [lo, hi] on both axes (the index scales internally
  // for doubled subcell coordinates).
  const PointLocationIndex::CellRef lo =
      index.Locate(Point2D{range.x_lo, range.y_lo});
  const PointLocationIndex::CellRef hi =
      index.Locate(Point2D{range.x_hi, range.y_hi});

  // One sweep collecting the distinct interned results, then one pass over
  // those (usually few) sets for the union and intersection.
  std::unordered_set<SetId> seen;
  std::vector<SetId> distinct;  // insertion order, for determinism
  for (uint32_t cy = lo.cy; cy <= hi.cy; ++cy) {
    for (uint32_t cx = lo.cx; cx <= hi.cx; ++cx) {
      const SetId id = index.cell_set(cx, cy);
      if (seen.insert(id).second) distinct.push_back(id);
    }
  }
  RangeSkylineSummary summary;
  std::vector<PointId> scratch;
  bool first = true;
  for (const SetId id : distinct) {
    const auto set = index.Get(id);
    summary.union_ids.insert(summary.union_ids.end(), set.begin(), set.end());
    if (first) {
      summary.intersection_ids.assign(set.begin(), set.end());
      first = false;
    } else if (!summary.intersection_ids.empty()) {
      scratch.clear();
      std::set_intersection(summary.intersection_ids.begin(),
                            summary.intersection_ids.end(), set.begin(),
                            set.end(), std::back_inserter(scratch));
      summary.intersection_ids.swap(scratch);
    }
  }
  std::sort(summary.union_ids.begin(), summary.union_ids.end());
  summary.union_ids.erase(
      std::unique(summary.union_ids.begin(), summary.union_ids.end()),
      summary.union_ids.end());
  // Distinct ids can still alias identical contents in a non-interned pool;
  // compare contents, exactly like RangeDistinctResults.
  if (distinct.size() <= 1) {
    summary.distinct_results = distinct.size();
    return summary;
  }
  std::vector<std::vector<PointId>> contents;
  contents.reserve(distinct.size());
  for (const SetId id : distinct) {
    const auto set = index.Get(id);
    contents.emplace_back(set.begin(), set.end());
  }
  std::sort(contents.begin(), contents.end());
  contents.erase(std::unique(contents.begin(), contents.end()),
                 contents.end());
  summary.distinct_results = static_cast<uint64_t>(contents.size());
  return summary;
}

StatusOr<uint64_t> RangeDistinctResults(const CellDiagram& diagram,
                                        const QueryRange& range) {
  if (Status s = Validate(range); !s.ok()) return s;
  const CellRect rect = CoveredCells(diagram.grid(), range);
  // SetIds deduplicate only when interning is on; compare content hashes via
  // the pool's canonical storage to stay correct without it.
  std::unordered_set<SetId> ids;
  for (uint32_t cy = rect.cy_lo; cy <= rect.cy_hi; ++cy) {
    for (uint32_t cx = rect.cx_lo; cx <= rect.cx_hi; ++cx) {
      ids.insert(diagram.cell_set(cx, cy));
    }
  }
  if (ids.size() <= 1) return static_cast<uint64_t>(ids.size());
  // Resolve potential duplicate contents (non-interned pools).
  std::vector<std::vector<PointId>> contents;
  for (SetId id : ids) {
    const auto set = diagram.pool().Get(id);
    contents.emplace_back(set.begin(), set.end());
  }
  std::sort(contents.begin(), contents.end());
  contents.erase(std::unique(contents.begin(), contents.end()),
                 contents.end());
  return static_cast<uint64_t>(contents.size());
}

}  // namespace skydia
