#include "src/core/serialize.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/sha256.h"

namespace skydia {

namespace {

constexpr char kMagic[8] = {'S', 'K', 'Y', 'D', 'I', 'A', 'G', '1'};
constexpr uint8_t kKindCell = 1;
constexpr uint8_t kKindSubcell = 2;

// --- little-endian emit helpers ---------------------------------------------

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

// --- bounds-checked reader ---------------------------------------------------

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadBytes(void* out, size_t len) {
    if (bytes_.size() - pos_ < len) return false;
    std::memcpy(out, bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool ReadU8(uint8_t* v) { return ReadBytes(v, 1); }
  bool ReadU32(uint32_t* v) {
    uint8_t b[4];
    if (!ReadBytes(b, 4)) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= uint32_t{b[i]} << (8 * i);
    return true;
  }
  bool ReadU64(uint64_t* v) {
    uint8_t b[8];
    if (!ReadBytes(b, 8)) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= uint64_t{b[i]} << (8 * i);
    return true;
  }
  bool ReadI64(int64_t* v) {
    uint64_t u;
    if (!ReadU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool ReadString(std::string* out, size_t len) {
    if (bytes_.size() - pos_ < len) return false;
    out->assign(bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  size_t remaining() const { return bytes_.size() - pos_; }
  size_t position() const { return pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

// --- shared sections ---------------------------------------------------------

void EmitDataset(const Dataset& dataset, std::string* out) {
  PutU64(out, static_cast<uint64_t>(dataset.domain_size()));
  PutU64(out, dataset.size());
  for (const Point2D& p : dataset.points()) {
    PutI64(out, p.x);
    PutI64(out, p.y);
  }
  PutU8(out, dataset.has_labels() ? 1 : 0);
  if (dataset.has_labels()) {
    for (PointId id = 0; id < dataset.size(); ++id) {
      const std::string label = dataset.label(id);
      PutU32(out, static_cast<uint32_t>(label.size()));
      out->append(label);
    }
  }
}

StatusOr<Dataset> ReadDataset(Reader* reader) {
  uint64_t domain = 0;
  uint64_t n = 0;
  if (!reader->ReadU64(&domain) || !reader->ReadU64(&n)) {
    return Status::Corruption("truncated dataset header");
  }
  if (n > (uint64_t{1} << 32)) {
    return Status::Corruption("implausible point count");
  }
  std::vector<Point2D> points;
  points.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Point2D p;
    if (!reader->ReadI64(&p.x) || !reader->ReadI64(&p.y)) {
      return Status::Corruption("truncated point table");
    }
    points.push_back(p);
  }
  uint8_t has_labels = 0;
  if (!reader->ReadU8(&has_labels)) {
    return Status::Corruption("truncated label flag");
  }
  std::vector<std::string> labels;
  if (has_labels == 1) {
    labels.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      uint32_t len = 0;
      std::string label;
      if (!reader->ReadU32(&len) || !reader->ReadString(&label, len)) {
        return Status::Corruption("truncated label table");
      }
      labels.push_back(std::move(label));
    }
  } else if (has_labels != 0) {
    return Status::Corruption("invalid label flag");
  }
  auto dataset =
      Dataset::Create(std::move(points), static_cast<int64_t>(domain),
                      std::move(labels));
  if (!dataset.ok()) {
    return Status::Corruption("stored dataset violates domain bounds: " +
                              dataset.status().message());
  }
  return dataset;
}

void EmitPool(const SkylineSetPool& pool, std::string* out) {
  PutU64(out, pool.size());
  for (SetId id = 0; id < pool.size(); ++id) {
    const auto set = pool.Get(id);
    PutU64(out, set.size());
    for (PointId pid : set) PutU32(out, pid);
  }
}

Status ReadPool(Reader* reader, size_t num_points, SkylineSetPool* pool) {
  uint64_t num_sets = 0;
  if (!reader->ReadU64(&num_sets)) {
    return Status::Corruption("truncated pool header");
  }
  if (num_sets == 0) {
    return Status::Corruption("pool must contain the empty set");
  }
  for (uint64_t s = 0; s < num_sets; ++s) {
    uint64_t size = 0;
    if (!reader->ReadU64(&size)) {
      return Status::Corruption("truncated set header");
    }
    if (size > num_points) {
      return Status::Corruption("result set larger than the dataset");
    }
    std::vector<PointId> ids(size);
    PointId prev = 0;
    for (uint64_t i = 0; i < size; ++i) {
      if (!reader->ReadU32(&ids[i])) {
        return Status::Corruption("truncated set contents");
      }
      if (ids[i] >= num_points) {
        return Status::Corruption("result set references unknown point");
      }
      if (i > 0 && ids[i] <= prev) {
        return Status::Corruption("result set not sorted/unique");
      }
      prev = ids[i];
    }
    if (s == 0) {
      if (!ids.empty()) {
        return Status::Corruption("set 0 must be the empty set");
      }
      continue;  // the pool pre-interns it
    }
    pool->Append(std::move(ids));
  }
  return Status::OK();
}

Status ReadCells(Reader* reader, uint64_t expected_count, size_t pool_size,
                 std::vector<SetId>* out) {
  uint64_t count = 0;
  if (!reader->ReadU64(&count)) {
    return Status::Corruption("truncated cell header");
  }
  if (count != expected_count) {
    return Status::Corruption("cell count does not match the grid shape");
  }
  out->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (!reader->ReadU32(&(*out)[i])) {
      return Status::Corruption("truncated cell table");
    }
    if ((*out)[i] >= pool_size) {
      return Status::Corruption("cell references unknown result set");
    }
  }
  return Status::OK();
}

void AppendChecksum(std::string* out) {
  const Sha256Digest digest = Sha256::Hash(out->data(), out->size());
  out->append(reinterpret_cast<const char*>(digest.data()), digest.size());
}

Status CheckEnvelope(const std::string& bytes, uint8_t expected_kind,
                     std::string_view* payload) {
  if (bytes.size() < sizeof(kMagic) + 1 + 32) {
    return Status::Corruption("file too short");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic");
  }
  const size_t body_len = bytes.size() - 32;
  const Sha256Digest digest = Sha256::Hash(bytes.data(), body_len);
  if (std::memcmp(bytes.data() + body_len, digest.data(), 32) != 0) {
    return Status::Corruption("checksum mismatch");
  }
  const auto kind = static_cast<uint8_t>(bytes[sizeof(kMagic)]);
  if (kind != expected_kind) {
    return Status::Corruption("wrong diagram kind");
  }
  *payload = std::string_view(bytes).substr(sizeof(kMagic) + 1,
                                            body_len - sizeof(kMagic) - 1);
  return Status::OK();
}

Status WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::Internal("short write: " + path);
  return Status::OK();
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::string SerializeCellDiagram(const Dataset& dataset,
                                 const CellDiagram& diagram) {
  std::string out(kMagic, sizeof(kMagic));
  PutU8(&out, kKindCell);
  EmitDataset(dataset, &out);
  EmitPool(diagram.pool(), &out);
  const CellGrid& grid = diagram.grid();
  PutU64(&out, grid.num_cells());
  for (uint32_t cy = 0; cy < grid.num_rows(); ++cy) {
    for (uint32_t cx = 0; cx < grid.num_columns(); ++cx) {
      PutU32(&out, diagram.cell_set(cx, cy));
    }
  }
  AppendChecksum(&out);
  return out;
}

Status SaveCellDiagram(const Dataset& dataset, const CellDiagram& diagram,
                       const std::string& path) {
  return WriteFile(path, SerializeCellDiagram(dataset, diagram));
}

StatusOr<LoadedCellDiagram> ParseCellDiagram(const std::string& bytes) {
  std::string_view payload;
  if (Status s = CheckEnvelope(bytes, kKindCell, &payload); !s.ok()) return s;
  Reader reader(payload);
  StatusOr<Dataset> dataset = ReadDataset(&reader);
  if (!dataset.ok()) return dataset.status();

  CellDiagram diagram(*dataset);
  if (Status s = ReadPool(&reader, dataset->size(), &diagram.pool()); !s.ok()) {
    return s;
  }
  std::vector<SetId> cells;
  if (Status s = ReadCells(&reader, diagram.grid().num_cells(),
                           diagram.pool().size(), &cells);
      !s.ok()) {
    return s;
  }
  if (reader.remaining() != 0) {
    return Status::Corruption("trailing bytes after cell table");
  }
  const CellGrid& grid = diagram.grid();
  for (uint32_t cy = 0; cy < grid.num_rows(); ++cy) {
    for (uint32_t cx = 0; cx < grid.num_columns(); ++cx) {
      diagram.set_cell(cx, cy, cells[grid.CellIndex(cx, cy)]);
    }
  }
  return LoadedCellDiagram{std::move(dataset).value(), std::move(diagram)};
}

StatusOr<LoadedCellDiagram> LoadCellDiagram(const std::string& path) {
  StatusOr<std::string> bytes = ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return ParseCellDiagram(*bytes);
}

std::string SerializeSubcellDiagram(const Dataset& dataset,
                                    const SubcellDiagram& diagram) {
  std::string out(kMagic, sizeof(kMagic));
  PutU8(&out, kKindSubcell);
  EmitDataset(dataset, &out);
  EmitPool(diagram.pool(), &out);
  const SubcellGrid& grid = diagram.grid();
  PutU64(&out, grid.num_subcells());
  for (uint32_t sy = 0; sy < grid.num_rows(); ++sy) {
    for (uint32_t sx = 0; sx < grid.num_columns(); ++sx) {
      PutU32(&out, diagram.subcell_set(sx, sy));
    }
  }
  AppendChecksum(&out);
  return out;
}

Status SaveSubcellDiagram(const Dataset& dataset,
                          const SubcellDiagram& diagram,
                          const std::string& path) {
  return WriteFile(path, SerializeSubcellDiagram(dataset, diagram));
}

StatusOr<LoadedSubcellDiagram> ParseSubcellDiagram(const std::string& bytes) {
  std::string_view payload;
  if (Status s = CheckEnvelope(bytes, kKindSubcell, &payload); !s.ok()) {
    return s;
  }
  Reader reader(payload);
  StatusOr<Dataset> dataset = ReadDataset(&reader);
  if (!dataset.ok()) return dataset.status();

  SubcellDiagram diagram(*dataset);
  if (Status s = ReadPool(&reader, dataset->size(), &diagram.pool()); !s.ok()) {
    return s;
  }
  std::vector<SetId> cells;
  if (Status s = ReadCells(&reader, diagram.grid().num_subcells(),
                           diagram.pool().size(), &cells);
      !s.ok()) {
    return s;
  }
  if (reader.remaining() != 0) {
    return Status::Corruption("trailing bytes after subcell table");
  }
  const SubcellGrid& grid = diagram.grid();
  for (uint32_t sy = 0; sy < grid.num_rows(); ++sy) {
    for (uint32_t sx = 0; sx < grid.num_columns(); ++sx) {
      diagram.set_subcell(sx, sy, cells[grid.SubcellIndex(sx, sy)]);
    }
  }
  return LoadedSubcellDiagram{std::move(dataset).value(), std::move(diagram)};
}

StatusOr<LoadedSubcellDiagram> LoadSubcellDiagram(const std::string& path) {
  StatusOr<std::string> bytes = ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return ParseSubcellDiagram(*bytes);
}

}  // namespace skydia
