#include "src/core/serialize.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/sha256.h"

namespace skydia {

namespace {

// The last magic byte is the format version. v1 stored the pool as one
// length-prefixed id list per set; v2 stores the flat interning arena in one
// block (length-prefixed member buffer + per-set offset table). Writers emit
// v2; readers accept both.
constexpr char kMagicPrefix[7] = {'S', 'K', 'Y', 'D', 'I', 'A', 'G'};
constexpr uint8_t kVersion1 = 1;
constexpr uint8_t kVersion2 = 2;
constexpr uint8_t kKindCell = 1;
constexpr uint8_t kKindSubcell = 2;

// --- little-endian emit helpers ---------------------------------------------

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

// --- bounds-checked reader ---------------------------------------------------

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadBytes(void* out, size_t len) {
    if (bytes_.size() - pos_ < len) return false;
    std::memcpy(out, bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool ReadU8(uint8_t* v) { return ReadBytes(v, 1); }
  bool ReadU32(uint32_t* v) {
    uint8_t b[4];
    if (!ReadBytes(b, 4)) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= uint32_t{b[i]} << (8 * i);
    return true;
  }
  bool ReadU64(uint64_t* v) {
    uint8_t b[8];
    if (!ReadBytes(b, 8)) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= uint64_t{b[i]} << (8 * i);
    return true;
  }
  bool ReadI64(int64_t* v) {
    uint64_t u;
    if (!ReadU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool ReadString(std::string* out, size_t len) {
    if (bytes_.size() - pos_ < len) return false;
    out->assign(bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  size_t remaining() const { return bytes_.size() - pos_; }
  size_t position() const { return pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

// --- shared sections ---------------------------------------------------------

void EmitDataset(const Dataset& dataset, std::string* out) {
  PutU64(out, static_cast<uint64_t>(dataset.domain_size()));
  PutU64(out, dataset.size());
  for (const Point2D& p : dataset.points()) {
    PutI64(out, p.x);
    PutI64(out, p.y);
  }
  PutU8(out, dataset.has_labels() ? 1 : 0);
  if (dataset.has_labels()) {
    for (PointId id = 0; id < dataset.size(); ++id) {
      const std::string label = dataset.label(id);
      PutU32(out, static_cast<uint32_t>(label.size()));
      out->append(label);
    }
  }
}

StatusOr<Dataset> ReadDataset(Reader* reader) {
  uint64_t domain = 0;
  uint64_t n = 0;
  if (!reader->ReadU64(&domain) || !reader->ReadU64(&n)) {
    return Status::Corruption("truncated dataset header");
  }
  if (n > (uint64_t{1} << 32)) {
    return Status::Corruption("implausible point count");
  }
  std::vector<Point2D> points;
  points.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Point2D p;
    if (!reader->ReadI64(&p.x) || !reader->ReadI64(&p.y)) {
      return Status::Corruption("truncated point table");
    }
    points.push_back(p);
  }
  uint8_t has_labels = 0;
  if (!reader->ReadU8(&has_labels)) {
    return Status::Corruption("truncated label flag");
  }
  std::vector<std::string> labels;
  if (has_labels == 1) {
    labels.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      uint32_t len = 0;
      std::string label;
      if (!reader->ReadU32(&len) || !reader->ReadString(&label, len)) {
        return Status::Corruption("truncated label table");
      }
      labels.push_back(std::move(label));
    }
  } else if (has_labels != 0) {
    return Status::Corruption("invalid label flag");
  }
  auto dataset =
      Dataset::Create(std::move(points), static_cast<int64_t>(domain),
                      std::move(labels));
  if (!dataset.ok()) {
    return Status::Corruption("stored dataset violates domain bounds: " +
                              dataset.status().message());
  }
  return dataset;
}

// v2 pool block: the interning arena emitted flat — num_sets, then the
// length-prefixed member buffer in one run, then the {offset, length} record
// table. Loading is one buffer read plus an index rebuild instead of
// num_sets separate allocations.
void EmitPool(const SkylineSetPool& pool, std::string* out) {
  PutU64(out, pool.size());
  PutU64(out, pool.total_elements());
  for (SetId id = 0; id < pool.size(); ++id) {
    for (PointId pid : pool.Get(id)) PutU32(out, pid);
  }
  uint64_t offset = 0;
  for (SetId id = 0; id < pool.size(); ++id) {
    const auto set = pool.Get(id);
    PutU64(out, offset);
    PutU32(out, static_cast<uint32_t>(set.size()));
    offset += set.size();
  }
}

// Checks one set's structural invariants (shared by both format readers).
Status ValidateSet(std::span<const PointId> ids, size_t num_points) {
  if (ids.size() > num_points) {
    return Status::Corruption("result set larger than the dataset");
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] >= num_points) {
      return Status::Corruption("result set references unknown point");
    }
    if (i > 0 && ids[i] <= ids[i - 1]) {
      return Status::Corruption("result set not sorted/unique");
    }
  }
  return Status::OK();
}

// v1 pool section: one length-prefixed id list per set, reproduced via
// Append. Kept so pre-v2 diagram files stay loadable.
Status ReadPoolV1(Reader* reader, size_t num_points, SkylineSetPool* pool) {
  uint64_t num_sets = 0;
  if (!reader->ReadU64(&num_sets)) {
    return Status::Corruption("truncated pool header");
  }
  if (num_sets == 0) {
    return Status::Corruption("pool must contain the empty set");
  }
  for (uint64_t s = 0; s < num_sets; ++s) {
    uint64_t size = 0;
    if (!reader->ReadU64(&size)) {
      return Status::Corruption("truncated set header");
    }
    if (size > num_points) {
      return Status::Corruption("result set larger than the dataset");
    }
    std::vector<PointId> ids(size);
    for (uint64_t i = 0; i < size; ++i) {
      if (!reader->ReadU32(&ids[i])) {
        return Status::Corruption("truncated set contents");
      }
    }
    if (Status s_check = ValidateSet(ids, num_points); !s_check.ok()) {
      return s_check;
    }
    if (s == 0) {
      if (!ids.empty()) {
        return Status::Corruption("set 0 must be the empty set");
      }
      continue;  // the pool pre-interns it
    }
    pool->Append(std::move(ids));
  }
  return Status::OK();
}

Status ReadPoolV2(Reader* reader, size_t num_points, SkylineSetPool* pool) {
  uint64_t num_sets = 0;
  uint64_t buffer_len = 0;
  if (!reader->ReadU64(&num_sets) || !reader->ReadU64(&buffer_len)) {
    return Status::Corruption("truncated pool header");
  }
  if (num_sets == 0) {
    return Status::Corruption("pool must contain the empty set");
  }
  // Each buffer element takes 4 bytes and each offset-table record 12; cap
  // both counts against the remaining payload before allocating, so a forged
  // header cannot demand a multi-gigabyte buffer the blob does not carry.
  if (buffer_len > reader->remaining() / sizeof(PointId) ||
      num_sets > (uint64_t{1} << 32)) {
    return Status::Corruption("implausible pool arena size");
  }
  if (num_sets > (reader->remaining() - buffer_len * sizeof(PointId)) / 12) {
    return Status::Corruption("pool offset table larger than the payload");
  }
  std::vector<PointId> buffer(buffer_len);
  for (uint64_t i = 0; i < buffer_len; ++i) {
    if (!reader->ReadU32(&buffer[i])) {
      return Status::Corruption("truncated pool arena");
    }
  }
  std::vector<uint32_t> lengths(num_sets);
  uint64_t expected_offset = 0;
  for (uint64_t s = 0; s < num_sets; ++s) {
    uint64_t offset = 0;
    uint32_t length = 0;
    if (!reader->ReadU64(&offset) || !reader->ReadU32(&length)) {
      return Status::Corruption("truncated pool offset table");
    }
    // The writer emits sets back to back; require the canonical layout so
    // offsets cannot alias or leave gaps.
    if (offset != expected_offset || length > buffer_len - offset) {
      return Status::Corruption("pool offset table is not a flat arena");
    }
    const std::span<const PointId> ids(buffer.data() + offset, length);
    if (Status s_check = ValidateSet(ids, num_points); !s_check.ok()) {
      return s_check;
    }
    expected_offset = offset + length;
    lengths[s] = length;
  }
  if (expected_offset != buffer_len) {
    return Status::Corruption("pool arena has trailing members");
  }
  if (lengths[0] != 0) {
    return Status::Corruption("set 0 must be the empty set");
  }
  pool->AdoptArena(std::move(buffer), lengths);
  return Status::OK();
}

Status ReadPool(Reader* reader, uint8_t version, size_t num_points,
                SkylineSetPool* pool) {
  Status status = version == kVersion1 ? ReadPoolV1(reader, num_points, pool)
                                       : ReadPoolV2(reader, num_points, pool);
  if (status.ok()) pool->Freeze();
  return status;
}

Status ReadCells(Reader* reader, uint64_t expected_count, size_t pool_size,
                 std::vector<SetId>* out) {
  uint64_t count = 0;
  if (!reader->ReadU64(&count)) {
    return Status::Corruption("truncated cell header");
  }
  if (count != expected_count) {
    return Status::Corruption("cell count does not match the grid shape");
  }
  out->resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (!reader->ReadU32(&(*out)[i])) {
      return Status::Corruption("truncated cell table");
    }
    if ((*out)[i] >= pool_size) {
      return Status::Corruption("cell references unknown result set");
    }
  }
  return Status::OK();
}

void AppendChecksum(std::string* out) {
  const Sha256Digest digest = Sha256::Hash(out->data(), out->size());
  out->append(reinterpret_cast<const char*>(digest.data()), digest.size());
}

Status CheckEnvelope(const std::string& bytes, uint8_t expected_kind,
                     std::string_view* payload, uint8_t* version) {
  constexpr size_t kHeaderLen = sizeof(kMagicPrefix) + 1 + 1;  // magic|ver|kind
  if (bytes.size() < kHeaderLen + 32) {
    return Status::Corruption("file too short");
  }
  if (std::memcmp(bytes.data(), kMagicPrefix, sizeof(kMagicPrefix)) != 0) {
    return Status::Corruption("bad magic");
  }
  const char version_char = bytes[sizeof(kMagicPrefix)];
  if (version_char == '1') {
    *version = kVersion1;
  } else if (version_char == '2') {
    *version = kVersion2;
  } else {
    return Status::Corruption("unsupported format version");
  }
  const size_t body_len = bytes.size() - 32;
  const Sha256Digest digest = Sha256::Hash(bytes.data(), body_len);
  if (std::memcmp(bytes.data() + body_len, digest.data(), 32) != 0) {
    return Status::Corruption("checksum mismatch");
  }
  const auto kind = static_cast<uint8_t>(bytes[kHeaderLen - 1]);
  if (kind != expected_kind) {
    return Status::Corruption("wrong diagram kind");
  }
  *payload =
      std::string_view(bytes).substr(kHeaderLen, body_len - kHeaderLen);
  return Status::OK();
}

std::string EnvelopeHeader(uint8_t kind) {
  std::string out(kMagicPrefix, sizeof(kMagicPrefix));
  out.push_back('2');
  PutU8(&out, kind);
  return out;
}

Status WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::Internal("short write: " + path);
  return Status::OK();
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::string SerializeCellDiagram(const Dataset& dataset,
                                 const CellDiagram& diagram) {
  std::string out = EnvelopeHeader(kKindCell);
  EmitDataset(dataset, &out);
  EmitPool(diagram.pool(), &out);
  const CellGrid& grid = diagram.grid();
  PutU64(&out, grid.num_cells());
  for (uint32_t cy = 0; cy < grid.num_rows(); ++cy) {
    for (uint32_t cx = 0; cx < grid.num_columns(); ++cx) {
      PutU32(&out, diagram.cell_set(cx, cy));
    }
  }
  AppendChecksum(&out);
  return out;
}

Status SaveCellDiagram(const Dataset& dataset, const CellDiagram& diagram,
                       const std::string& path) {
  return WriteFile(path, SerializeCellDiagram(dataset, diagram));
}

StatusOr<LoadedCellDiagram> ParseCellDiagram(const std::string& bytes,
                                             const ParseOptions& options) {
  std::string_view payload;
  uint8_t version = 0;
  if (Status s = CheckEnvelope(bytes, kKindCell, &payload, &version); !s.ok()) {
    return s;
  }
  Reader reader(payload);
  StatusOr<Dataset> dataset = ReadDataset(&reader);
  if (!dataset.ok()) return dataset.status();

  CellDiagram diagram(*dataset);
  if (Status s = ReadPool(&reader, version, dataset->size(), &diagram.pool());
      !s.ok()) {
    return s;
  }
  std::vector<SetId> cells;
  if (Status s = ReadCells(&reader, diagram.grid().num_cells(),
                           diagram.pool().size(), &cells);
      !s.ok()) {
    return s;
  }
  if (reader.remaining() != 0) {
    return Status::Corruption("trailing bytes after cell table");
  }
  const CellGrid& grid = diagram.grid();
  for (uint32_t cy = 0; cy < grid.num_rows(); ++cy) {
    for (uint32_t cx = 0; cx < grid.num_columns(); ++cx) {
      diagram.set_cell(cx, cy, cells[grid.CellIndex(cx, cy)]);
    }
  }
  if (options.validate_structure) {
    if (Status s = ValidateDiagram(*dataset, diagram, options.validate);
        !s.ok()) {
      return s;
    }
  }
  return LoadedCellDiagram{std::move(dataset).value(), std::move(diagram)};
}

StatusOr<LoadedCellDiagram> LoadCellDiagram(const std::string& path,
                                            const ParseOptions& options) {
  StatusOr<std::string> bytes = ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return ParseCellDiagram(*bytes, options);
}

std::string SerializeSubcellDiagram(const Dataset& dataset,
                                    const SubcellDiagram& diagram) {
  std::string out = EnvelopeHeader(kKindSubcell);
  EmitDataset(dataset, &out);
  EmitPool(diagram.pool(), &out);
  const SubcellGrid& grid = diagram.grid();
  PutU64(&out, grid.num_subcells());
  for (uint32_t sy = 0; sy < grid.num_rows(); ++sy) {
    for (uint32_t sx = 0; sx < grid.num_columns(); ++sx) {
      PutU32(&out, diagram.subcell_set(sx, sy));
    }
  }
  AppendChecksum(&out);
  return out;
}

Status SaveSubcellDiagram(const Dataset& dataset,
                          const SubcellDiagram& diagram,
                          const std::string& path) {
  return WriteFile(path, SerializeSubcellDiagram(dataset, diagram));
}

StatusOr<LoadedSubcellDiagram> ParseSubcellDiagram(
    const std::string& bytes, const ParseOptions& options) {
  std::string_view payload;
  uint8_t version = 0;
  if (Status s = CheckEnvelope(bytes, kKindSubcell, &payload, &version);
      !s.ok()) {
    return s;
  }
  Reader reader(payload);
  StatusOr<Dataset> dataset = ReadDataset(&reader);
  if (!dataset.ok()) return dataset.status();

  SubcellDiagram diagram(*dataset);
  if (Status s = ReadPool(&reader, version, dataset->size(), &diagram.pool());
      !s.ok()) {
    return s;
  }
  std::vector<SetId> cells;
  if (Status s = ReadCells(&reader, diagram.grid().num_subcells(),
                           diagram.pool().size(), &cells);
      !s.ok()) {
    return s;
  }
  if (reader.remaining() != 0) {
    return Status::Corruption("trailing bytes after subcell table");
  }
  const SubcellGrid& grid = diagram.grid();
  for (uint32_t sy = 0; sy < grid.num_rows(); ++sy) {
    for (uint32_t sx = 0; sx < grid.num_columns(); ++sx) {
      diagram.set_subcell(sx, sy, cells[grid.SubcellIndex(sx, sy)]);
    }
  }
  if (options.validate_structure) {
    if (Status s = ValidateDiagram(*dataset, diagram, options.validate);
        !s.ok()) {
      return s;
    }
  }
  return LoadedSubcellDiagram{std::move(dataset).value(), std::move(diagram)};
}

StatusOr<LoadedSubcellDiagram> LoadSubcellDiagram(const std::string& path,
                                                  const ParseOptions& options) {
  StatusOr<std::string> bytes = ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return ParseSubcellDiagram(*bytes, options);
}

}  // namespace skydia
