// SubcellDiagram: output representation of the dynamic skyline diagram
// builders (baseline, subset, scanning). Maps every skyline subcell to an
// interned dynamic-skyline result set.
//
// Exactness contract: results are exact for queries in the interior of their
// subcell. Queries exactly on a grid/bisector line are answered with the
// adjacent interior subcell's result (half-open convention), which can differ
// from the true boundary result when the tie changes dominance; boundary-
// exact callers should use skyline/query.h directly.
#ifndef SKYDIA_SRC_CORE_SUBCELL_DIAGRAM_H_
#define SKYDIA_SRC_CORE_SUBCELL_DIAGRAM_H_

#include <memory>
#include <span>
#include <vector>

#include "src/core/subcell_grid.h"
#include "src/geometry/dataset.h"
#include "src/skyline/interning.h"

namespace skydia {

/// Result of a subcell-based diagram construction. Movable, not copyable.
class SubcellDiagram {
 public:
  explicit SubcellDiagram(const Dataset& dataset,
                          bool intern_result_sets = true)
      : grid_(dataset),
        pool_(std::make_unique<SkylineSetPool>(intern_result_sets)),
        cells_(grid_.num_subcells(), kEmptySetId) {}

  SubcellDiagram(SubcellDiagram&&) = default;
  SubcellDiagram& operator=(SubcellDiagram&&) = default;

  const SubcellGrid& grid() const { return grid_; }
  SkylineSetPool& pool() { return *pool_; }
  const SkylineSetPool& pool() const { return *pool_; }

  SetId subcell_set(uint32_t sx, uint32_t sy) const {
    return cells_[grid_.SubcellIndex(sx, sy)];
  }
  void set_subcell(uint32_t sx, uint32_t sy, SetId id) {
    cells_[grid_.SubcellIndex(sx, sy)] = id;
  }

  std::span<const PointId> SubcellSkyline(uint32_t sx, uint32_t sy) const {
    return pool_->Get(subcell_set(sx, sy));
  }

  /// The full row-major subcell table (index = sy * num_columns + sx). Flat
  /// view consumed by PointLocationIndex; stays valid while the diagram
  /// lives.
  std::span<const SetId> cell_table() const { return cells_; }

  /// Point-location for an integer query point (interior-exact).
  std::span<const PointId> Query(const Point2D& q) const {
    return SubcellSkyline(grid_.x_axis().SlabOfDoubled(2 * q.x),
                          grid_.y_axis().SlabOfDoubled(2 * q.y));
  }

  /// Semantic equality over all subcells (content comparison).
  bool SameResults(const SubcellDiagram& other) const {
    if (grid_.num_columns() != other.grid_.num_columns() ||
        grid_.num_rows() != other.grid_.num_rows()) {
      return false;
    }
    for (uint32_t sy = 0; sy < grid_.num_rows(); ++sy) {
      for (uint32_t sx = 0; sx < grid_.num_columns(); ++sx) {
        const auto a = SubcellSkyline(sx, sy);
        const auto b = other.SubcellSkyline(sx, sy);
        if (a.size() != b.size() ||
            !std::equal(a.begin(), a.end(), b.begin())) {
          return false;
        }
      }
    }
    return true;
  }

  struct Stats {
    uint64_t num_subcells = 0;
    uint64_t num_distinct_sets = 0;
    uint64_t total_set_elements = 0;
    uint64_t pool_bytes = 0;  // interning arena footprint alone
    uint64_t approx_bytes = 0;
  };
  Stats ComputeStats() const {
    Stats stats;
    stats.num_subcells = grid_.num_subcells();
    stats.num_distinct_sets = pool_->size();
    stats.total_set_elements = pool_->total_elements();
    stats.pool_bytes = pool_->ApproximateMemoryBytes();
    stats.approx_bytes = stats.pool_bytes + cells_.size() * sizeof(SetId);
    return stats;
  }

 private:
  SubcellGrid grid_;
  std::unique_ptr<SkylineSetPool> pool_;
  std::vector<SetId> cells_;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_SUBCELL_DIAGRAM_H_
