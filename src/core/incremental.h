// Incremental maintenance of the quadrant skyline diagram under point
// insertion.
//
// Inserting p only changes the results of cells whose candidate set gains p,
// i.e. the lower-left rectangle of cells with cx <= xrank(p) and
// cy <= yrank(p); everything up-right of p's grid lines keeps its result
// verbatim. The affected rectangle is refilled with the Theorem 1 scanning
// identity seeded from the unchanged cells, so an insertion near the
// upper-right corner of the data costs almost nothing and even a worst-case
// insertion never recomputes a skyline from scratch.
//
// Ids are stable: Insert appends, so existing PointIds keep their meaning.
// (Deletion would renumber ids and shares no structure; rebuild instead.)
#ifndef SKYDIA_SRC_CORE_INCREMENTAL_H_
#define SKYDIA_SRC_CORE_INCREMENTAL_H_

#include <memory>

#include "src/common/status.h"
#include "src/core/options.h"
#include "src/core/skyline_cell.h"
#include "src/geometry/dataset.h"

namespace skydia {

/// Options for IncrementalQuadrantDiagram.
struct IncrementalOptions {
  DiagramOptions diagram;
  /// Maintain the distinct-coordinates invariant across inserts: Create and
  /// Insert reject any point that duplicates an existing x or y coordinate
  /// (forwarded to Dataset::Create, whose failure surfaces as
  /// InvalidArgument — never an abort).
  bool require_distinct_coordinates = false;
};

/// A quadrant skyline diagram that supports appending points.
class IncrementalQuadrantDiagram {
 public:
  /// Builds the initial diagram (scanning construction).
  static StatusOr<IncrementalQuadrantDiagram> Create(
      Dataset dataset, const IncrementalOptions& options = {});

  IncrementalQuadrantDiagram(IncrementalQuadrantDiagram&&) = default;
  IncrementalQuadrantDiagram& operator=(IncrementalQuadrantDiagram&&) =
      default;

  /// Inserts `p` and updates the diagram. Returns the new point's id (always
  /// the previous size()), or InvalidArgument when `p` is outside the domain
  /// or the extended dataset fails validation (for example a duplicated
  /// coordinate under `require_distinct_coordinates`). On error the diagram
  /// is unchanged.
  StatusOr<PointId> Insert(const Point2D& p);

  const Dataset& dataset() const { return dataset_; }
  const CellDiagram& diagram() const { return *diagram_; }

  /// Point-location query (exact everywhere, like CellDiagram::Query).
  std::span<const PointId> Query(const Point2D& q) const {
    return diagram_->Query(q);
  }

  /// Number of cells whose result was recomputed by the last Insert (the
  /// affected rectangle); 0 before any insert. For tests and benchmarks.
  uint64_t last_insert_recomputed_cells() const {
    return last_insert_recomputed_cells_;
  }

 private:
  IncrementalQuadrantDiagram(Dataset dataset,
                             std::unique_ptr<CellDiagram> diagram,
                             const IncrementalOptions& options)
      : dataset_(std::move(dataset)),
        diagram_(std::move(diagram)),
        options_(options) {}

  Dataset dataset_;
  std::unique_ptr<CellDiagram> diagram_;
  IncrementalOptions options_;
  uint64_t last_insert_recomputed_cells_ = 0;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_INCREMENTAL_H_
