// Incremental maintenance of the quadrant skyline diagram under point
// insertion and deletion.
//
// A mutation of point p can only change cells where p is a *candidate*
// (cx <= xrank(p), cy <= yrank(p)) — but inside that rectangle most cells
// are still untouched: wherever some dominator of p (a point coordinate-wise
// <= p with one dimension strictly smaller) is also a candidate, p never
// enters the cell's skyline, so inserting or deleting it changes nothing.
// The changed region is therefore the staircase
//
//   { (cx, cy) : cx <= xrank(p), cy <= yrank(p), cy > M(cx) }
//
// where M(cx) is the maximum yrank over dominators of p with xrank >= cx
// (a suffix maximum computed in O(n + xrank(p))). Only those cells are
// refilled with the Theorem 1 scanning identity, seeded from the copied
// neighbours; everything else copies its previous result verbatim. An
// insertion dominated from nearby recomputes O(1) cells regardless of n.
//
// Insert appends, so existing PointIds keep their meaning. Delete removes
// one point and renumbers the ids above it (new_id = old_id - 1 for every
// old_id > deleted); labels keep following their points. The serving layer
// surfaces this contract to clients.
//
// The dataset and diagram live behind shared_ptr<const ...> so a publisher
// (src/serve/mutation_pipeline.h) can hand read-only snapshots to concurrent
// readers at zero copy cost; mutations swap in fresh objects and never touch
// a previously shared one.
#ifndef SKYDIA_SRC_CORE_INCREMENTAL_H_
#define SKYDIA_SRC_CORE_INCREMENTAL_H_

#include <memory>
#include <optional>
#include <string>

#include "src/common/status.h"
#include "src/core/options.h"
#include "src/core/skyline_cell.h"
#include "src/geometry/dataset.h"

namespace skydia {

/// Options for IncrementalQuadrantDiagram and IncrementalDynamicDiagram.
struct IncrementalOptions {
  DiagramOptions diagram;
  /// Maintain the distinct-coordinates invariant across inserts: Create and
  /// Insert reject any point that duplicates an existing x or y coordinate
  /// (forwarded to Dataset::Create, whose failure surfaces as
  /// InvalidArgument — never an abort).
  bool require_distinct_coordinates = false;
};

namespace internal {

/// Extended copy of `dataset` with `p` appended as the new last point.
/// Rejects points outside the domain and forwards validation failures from
/// Dataset::Create (InvalidArgument, never an abort). `label` names the new
/// point when the dataset carries labels (default "p<id>"); a label on an
/// unlabelled dataset materializes the default labels first.
StatusOr<Dataset> DatasetWithPoint(const Dataset& dataset, const Point2D& p,
                                   std::optional<std::string> label,
                                   bool require_distinct_coordinates);

/// Copy of `dataset` without point `id`; ids above shift down by one and
/// labels follow their points. NotFound for an id outside the dataset,
/// FailedPrecondition when only one point remains.
StatusOr<Dataset> DatasetWithoutPoint(const Dataset& dataset, PointId id,
                                      bool require_distinct_coordinates);

}  // namespace internal

/// A quadrant skyline diagram that supports inserting and deleting points.
class IncrementalQuadrantDiagram {
 public:
  /// Builds the initial diagram (scanning construction).
  static StatusOr<IncrementalQuadrantDiagram> Create(
      Dataset dataset, const IncrementalOptions& options = {});

  IncrementalQuadrantDiagram(IncrementalQuadrantDiagram&&) = default;
  IncrementalQuadrantDiagram& operator=(IncrementalQuadrantDiagram&&) =
      default;

  /// Inserts `p` and updates the diagram. Returns the new point's id (always
  /// the previous size()), or InvalidArgument when `p` is outside the domain
  /// or the extended dataset fails validation (for example a duplicated
  /// coordinate under `require_distinct_coordinates`). On error the diagram
  /// is unchanged. `label` names the new point when the dataset carries
  /// labels (default "p<id>"); passing a label to an unlabelled dataset
  /// materializes the default labels for the existing points first.
  StatusOr<PointId> Insert(const Point2D& p,
                           std::optional<std::string> label = std::nullopt);

  /// Deletes point `id` and updates the diagram. Ids above `id` shift down
  /// by one (labels follow their points). Returns NotFound for an id outside
  /// the dataset and FailedPrecondition when the diagram holds only one
  /// point (a diagram of zero points does not exist). On error the diagram
  /// is unchanged.
  Status Delete(PointId id);

  const Dataset& dataset() const { return *dataset_; }
  const CellDiagram& diagram() const { return *diagram_; }

  /// Read-only snapshots sharable with concurrent readers. The pointees are
  /// immutable: every mutation replaces the pointers with fresh objects.
  std::shared_ptr<const Dataset> shared_dataset() const { return dataset_; }
  std::shared_ptr<const CellDiagram> shared_diagram() const {
    return diagram_;
  }

  /// Point-location query (exact everywhere, like CellDiagram::Query).
  std::span<const PointId> Query(const Point2D& q) const {
    return diagram_->Query(q);
  }

  /// Number of cells whose result was recomputed by the last Insert /
  /// Delete (the changed staircase, not the whole candidate rectangle);
  /// 0 before any mutation. For tests, metrics and benchmarks.
  uint64_t last_insert_recomputed_cells() const {
    return last_insert_recomputed_cells_;
  }
  uint64_t last_delete_recomputed_cells() const {
    return last_delete_recomputed_cells_;
  }

 private:
  IncrementalQuadrantDiagram(std::shared_ptr<const Dataset> dataset,
                             std::shared_ptr<const CellDiagram> diagram,
                             const IncrementalOptions& options)
      : dataset_(std::move(dataset)),
        diagram_(std::move(diagram)),
        options_(options),
        pool_compaction_watermark_(diagram_->pool().size()) {}

  std::shared_ptr<const Dataset> dataset_;
  std::shared_ptr<const CellDiagram> diagram_;
  IncrementalOptions options_;
  uint64_t last_insert_recomputed_cells_ = 0;
  uint64_t last_delete_recomputed_cells_ = 0;
  /// Pool size after the last compacting mutation (or Create). Mutations
  /// adopt the previous pool wholesale — carrying some no-longer-referenced
  /// sets forward — until the pool doubles past this watermark, then re-intern
  /// only referenced sets (see the copy-phase comments in incremental.cc).
  size_t pool_compaction_watermark_ = 0;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_INCREMENTAL_H_
