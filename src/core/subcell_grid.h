// SubcellGrid: the grid of *skyline subcells* (Definition 7) for dynamic
// skyline diagrams.
//
// For dynamic skylines the grid lines are (a) the vertical/horizontal lines
// through every point and (b) the per-pair bisector lines in each dimension.
// Bisectors fall on half-integers, so the grid works in *doubled*
// coordinates: the line set per dimension is { a + b : a, b point values }
// (taking a == b covers the point lines, 2a). With a limited domain of size s
// the positions collapse to at most 2s-1 distinct values — the effect the
// domain-size experiments measure.
//
// Subcell representatives live on quarter-integer positions, represented in
// 4x-scaled coordinates (see src/skyline/dominance.h): the representative of
// the open interval (L[i-1], L[i]) in doubled coordinates is L[i-1] + L[i] in
// 4x coordinates, strictly inside and never colliding with a mapped point.
#ifndef SKYDIA_SRC_CORE_SUBCELL_GRID_H_
#define SKYDIA_SRC_CORE_SUBCELL_GRID_H_

#include <cstdint>
#include <vector>

#include "src/geometry/dataset.h"
#include "src/geometry/point.h"

namespace skydia {

/// One dimension's subcell line arrangement (doubled coordinates).
class SubcellAxis {
 public:
  /// `values` are the distinct original point coordinates of this dimension.
  explicit SubcellAxis(const std::vector<int64_t>& values);

  /// Number of grid+bisector lines.
  uint32_t num_lines() const { return static_cast<uint32_t>(lines_.size()); }
  /// Number of subcell slabs (lines + 1).
  uint32_t num_slabs() const { return num_lines() + 1; }

  /// Doubled coordinate of line i.
  int64_t line(uint32_t i) const { return lines_[i]; }

  /// 4x-coordinate representative strictly inside slab i.
  int64_t Representative4(uint32_t slab) const;

  /// Slab containing the doubled coordinate `v2` under the half-open
  /// convention (lines belong to the slab on their left); exact for interior
  /// queries.
  uint32_t SlabOfDoubled(int64_t v2) const;

  /// True when the doubled coordinate `v2` falls exactly on a line.
  bool IsOnLine(int64_t v2) const;

 private:
  std::vector<int64_t> lines_;
};

/// Full 2-D subcell grid plus per-line contributor lists.
class SubcellGrid {
 public:
  explicit SubcellGrid(const Dataset& dataset);

  const SubcellAxis& x_axis() const { return x_; }
  const SubcellAxis& y_axis() const { return y_; }

  uint32_t num_columns() const { return x_.num_slabs(); }
  uint32_t num_rows() const { return y_.num_slabs(); }
  uint64_t num_subcells() const {
    return static_cast<uint64_t>(num_columns()) * num_rows();
  }

  uint64_t SubcellIndex(uint32_t sx, uint32_t sy) const {
    return static_cast<uint64_t>(sy) * num_columns() + sx;
  }

  /// Point ids whose dominance relations can flip when a query crosses
  /// vertical line i: every p with (line(i) - p.x) equal to some point's x
  /// coordinate (this covers both p's own grid line and all bisectors p is
  /// party to). Sorted ascending.
  const std::vector<PointId>& ContributorsX(uint32_t line) const {
    return contrib_x_[line];
  }
  const std::vector<PointId>& ContributorsY(uint32_t line) const {
    return contrib_y_[line];
  }

 private:
  static std::vector<std::vector<PointId>> BuildContributors(
      const Dataset& dataset, const SubcellAxis& axis, bool use_x);

  SubcellAxis x_;
  SubcellAxis y_;
  std::vector<std::vector<PointId>> contrib_x_;
  std::vector<std::vector<PointId>> contrib_y_;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_SUBCELL_GRID_H_
