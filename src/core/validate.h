// Structural invariant validator for built (or loaded) skyline diagrams.
//
// A diagram is the paper's precompute-once artifact: the skyline polyominoes
// tile the (s+1) x (s+1) grid (Definitions 4-6 of Liu et al., ICDE 2018) and
// every cell stores exactly the skyline of any query inside it (Theorems
// 1-2). Nothing in the serving path recomputes skylines, so a corrupted
// diagram silently serves wrong answers forever. ValidateDiagram() checks the
// defining invariants mechanically:
//
//  1. Pool arena integrity: records cover the frozen arena back to back in id
//     order — in-bounds, non-overlapping, no gaps, record 0 is the empty set
//     — and every member list is sorted, duplicate-free, and references a
//     real point.
//  2. Cell tiling: the grid axes are strictly increasing, every point sits on
//     a grid line, the cell table covers the full rank-space grid (rows x
//     columns with no gaps — the compressed image of the paper's domain
//     tiling), and every cell references an existing result set.
//  3. Polyomino consistency: adjacent cells merged into one polyomino carry
//     identical interned result sets (checked through MergeCells for cell
//     diagrams), and — for canonical pools — no two distinct SetIds hold
//     identical contents, so the polyomino decomposition by SetId equals the
//     decomposition by content (Definition 6's "same skyline" regions).
//  4. Sampled ground truth (sample_queries > 0): for randomly chosen cells,
//     the stored result equals the O(n log n) brute-force skyline at an
//     interior representative position (quarter-integer coordinates, so the
//     sample never sits on a grid or bisector line).
//
// The checks are pure reads; validation never mutates the diagram.
#ifndef SKYDIA_SRC_CORE_VALIDATE_H_
#define SKYDIA_SRC_CORE_VALIDATE_H_

#include <cstddef>
#include <cstdint>

#include "src/common/status.h"
#include "src/core/skyline_cell.h"
#include "src/core/subcell_diagram.h"
#include "src/geometry/dataset.h"

namespace skydia {

/// Which query semantics a cell diagram encodes. The serialized format does
/// not record this, so loaded diagrams use kAuto: the sampled ground-truth
/// check passes if all samples match the quadrant oracle or all samples match
/// the global oracle.
enum class CellSemantics { kAuto, kQuadrant, kGlobal };

struct ValidateOptions {
  /// Number of random cells to compare against the brute-force oracle.
  /// 0 = structural checks only.
  size_t sample_queries = 0;
  /// Seed for the sample-cell choice (deterministic).
  uint64_t seed = 1;
  /// Oracle used for cell diagrams (ignored for subcell diagrams).
  CellSemantics semantics = CellSemantics::kAuto;
  /// Require the pool to be duplicate-free (hash-consing held). True for
  /// every diagram the builders produce with interning on; set false when
  /// validating diagrams built or stored with interning disabled.
  bool require_canonical_pool = true;
};

/// Validates a quadrant/global cell diagram against `dataset` (the dataset it
/// was built from). Returns OK or Corruption naming the first violated
/// invariant.
Status ValidateDiagram(const Dataset& dataset, const CellDiagram& diagram,
                       const ValidateOptions& options = {});

/// Validates a dynamic subcell diagram.
Status ValidateDiagram(const Dataset& dataset, const SubcellDiagram& diagram,
                       const ValidateOptions& options = {});

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_VALIDATE_H_
