// Range skyline queries over a built diagram: given an axis-aligned
// rectangle of possible query positions (the location-uncertainty scenario
// of the paper's related work, Lin et al. / Cheema et al.), report what the
// skyline can be anywhere in the range. The diagram makes these trivial —
// enumerate the covered cells and combine their interned results.
#ifndef SKYDIA_SRC_CORE_RANGE_QUERY_H_
#define SKYDIA_SRC_CORE_RANGE_QUERY_H_

#include <vector>

#include "src/common/status.h"
#include "src/core/point_location.h"
#include "src/core/skyline_cell.h"
#include "src/geometry/point.h"

namespace skydia {

/// An axis-aligned closed rectangle of query positions.
struct QueryRange {
  int64_t x_lo = 0;
  int64_t x_hi = 0;
  int64_t y_lo = 0;
  int64_t y_hi = 0;
};

/// Points that are in the skyline of *some* query position in the range
/// (union over covered cells), sorted ascending. InvalidArgument when the
/// range is inverted.
StatusOr<std::vector<PointId>> RangeSkylineUnion(const CellDiagram& diagram,
                                                 const QueryRange& range);

/// Points in the skyline of *every* query position in the range
/// (intersection over covered cells), sorted ascending — the range's "safe"
/// results in the safe-zone terminology.
StatusOr<std::vector<PointId>> RangeSkylineIntersection(
    const CellDiagram& diagram, const QueryRange& range);

/// Number of distinct skyline results across the range — 1 means the whole
/// rectangle is a safe zone (lies within one skyline polyomino's result).
StatusOr<uint64_t> RangeDistinctResults(const CellDiagram& diagram,
                                        const QueryRange& range);

/// Union, intersection and distinct-result count of one range in a single
/// cell sweep — the shape the serving layer returns for {"cmd":"range"}.
struct RangeSkylineSummary {
  /// In the skyline of some position in the range, sorted ascending.
  std::vector<PointId> union_ids;
  /// In the skyline of every position in the range (the safe results).
  std::vector<PointId> intersection_ids;
  /// Distinct skyline results across the range; 1 = the range is one safe
  /// zone.
  uint64_t distinct_results = 0;
};

/// Index-based variant serving any diagram kind through its
/// PointLocationIndex (this is what QueryEngine::AnswerRange and the line
/// protocol use). Positions carry the index's cell convention: exact
/// everywhere for quadrant diagrams, interior-exact for global/dynamic (a
/// range edge exactly on a grid line resolves to the line's lower/left
/// cell). InvalidArgument when the range is inverted.
StatusOr<RangeSkylineSummary> RangeSkylineSummarize(
    const PointLocationIndex& index, const QueryRange& range);

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_RANGE_QUERY_H_
