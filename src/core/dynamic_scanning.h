// Scanning dynamic skyline diagram (Algorithm 7, §V.C): sweep the subcells
// row by row; when the sweep crosses a vertical (resp. horizontal) grid or
// bisector line, only the points party to that line can change dominance, so
//
//   Sky(SC_next) = DynamicSkyline( Sky(SC_prev) ∪ contributors(line) )
//
// evaluated at the next subcell's representative. Correctness: a pairwise
// dominance relation (a, b) flips only at a's and b's bisector lines, so the
// new skyline is contained in the candidate set; and because dynamic
// dominance (fixed query) is transitive, any candidate dominated by a
// non-candidate is also dominated by a new-skyline member, which *is* a
// candidate — so the skyline of the candidate set equals the true skyline.
#ifndef SKYDIA_SRC_CORE_DYNAMIC_SCANNING_H_
#define SKYDIA_SRC_CORE_DYNAMIC_SCANNING_H_

#include "src/core/options.h"
#include "src/core/subcell_diagram.h"
#include "src/geometry/dataset.h"

namespace skydia {

/// Deprecated direct entry point — new code should go through
/// SkylineDiagram::Build (src/core/diagram.h), which dispatches here.
/// Builds the dynamic skyline diagram with the scanning algorithm.
SubcellDiagram BuildDynamicScanning(const Dataset& dataset,
                                    const DiagramOptions& options = {});

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_DYNAMIC_SCANNING_H_
