#include "src/core/dynamic_scanning.h"

#include <vector>

#include "src/core/build_report.h"
#include "src/core/sweep_kernel.h"

namespace skydia {

SubcellDiagram BuildDynamicScanning(const Dataset& dataset,
                                    const DiagramOptions& options) {
  SubcellDiagram diagram = [&] {
    PhaseScope phase("grid");
    return SubcellDiagram(dataset, options.intern_result_sets);
  }();
  const SubcellGrid& grid = diagram.grid();
  const uint32_t cols = grid.num_columns();
  const uint32_t rows = grid.num_rows();

  {
    PhaseScope phase("scan");
    // The shared row walk (src/core/sweep_kernel.h): seed the anchor at
    // (0, 0) from scratch, then advance it across each horizontal line and
    // scan every row incrementally across the vertical lines.
    DynamicRowScanner scanner(dataset, grid);
    scanner.SeedRow(0);
    std::vector<SetId> row(cols, kEmptySetId);
    for (uint32_t sy = 0; sy < rows; ++sy) {
      SKYDIA_TRACE_SPAN("scan.row");
      if (sy > 0) scanner.AdvanceRow(sy);
      scanner.ScanRow(sy, &diagram.pool(), row.data());
      for (uint32_t sx = 0; sx < cols; ++sx) {
        diagram.set_subcell(sx, sy, row[sx]);
      }
    }
  }
  {
    PhaseScope phase("freeze");
    diagram.pool().Freeze();
  }
  return diagram;
}

}  // namespace skydia
