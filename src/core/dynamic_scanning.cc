#include "src/core/dynamic_scanning.h"

#include <algorithm>

#include "src/skyline/query.h"

namespace skydia {

namespace {

// candidates = sorted_union(prev, extra), both sorted ascending.
void SortedUnion(const std::vector<PointId>& prev,
                 const std::vector<PointId>& extra,
                 std::vector<PointId>* out) {
  out->clear();
  out->reserve(prev.size() + extra.size());
  std::set_union(prev.begin(), prev.end(), extra.begin(), extra.end(),
                 std::back_inserter(*out));
}

}  // namespace

SubcellDiagram BuildDynamicScanning(const Dataset& dataset,
                                    const DiagramOptions& options) {
  SubcellDiagram diagram(dataset, options.intern_result_sets);
  const SubcellGrid& grid = diagram.grid();
  const uint32_t cols = grid.num_columns();
  const uint32_t rows = grid.num_rows();

  // Row anchor: the skyline of subcell (0, sy), advanced upward across the
  // horizontal lines. Start with a from-scratch computation at (0, 0).
  std::vector<PointId> row_anchor = DynamicSkylineAt4(
      dataset, grid.x_axis().Representative4(0), grid.y_axis().Representative4(0));

  std::vector<PointId> current;
  std::vector<PointId> candidates;
  std::vector<MappedCandidate> scratch;
  for (uint32_t sy = 0; sy < rows; ++sy) {
    const int64_t repy4 = grid.y_axis().Representative4(sy);
    if (sy > 0) {
      // Cross horizontal line sy-1 at column 0.
      SortedUnion(row_anchor, grid.ContributorsY(sy - 1), &candidates);
      DynamicSkylineOfSubsetAt4(dataset, candidates,
                                grid.x_axis().Representative4(0), repy4,
                                &scratch, &row_anchor);
    }
    current = row_anchor;
    diagram.set_subcell(0, sy, diagram.pool().InternCopy(current));
    for (uint32_t sx = 1; sx < cols; ++sx) {
      // Cross vertical line sx-1.
      SortedUnion(current, grid.ContributorsX(sx - 1), &candidates);
      DynamicSkylineOfSubsetAt4(dataset, candidates,
                                grid.x_axis().Representative4(sx), repy4,
                                &scratch, &current);
      diagram.set_subcell(sx, sy, diagram.pool().InternCopy(current));
    }
  }
  return diagram;
}

}  // namespace skydia
