#include "src/core/quadrant_scanning.h"

#include <algorithm>
#include <vector>

#include "src/common/logging.h"
#include "src/core/build_report.h"

namespace skydia {
namespace internal {

// result = (a + b) - c with saturating multiset subtraction over sorted sets.
// Each input is duplicate-free; the output is asserted duplicate-free (which
// Theorem 1 guarantees).
void ScanningMergeIdentity(std::span<const PointId> a,
                           std::span<const PointId> b,
                           std::span<const PointId> c,
                           std::vector<PointId>* out) {
  out->clear();
  size_t ia = 0;
  size_t ib = 0;
  size_t ic = 0;
  while (ia < a.size() || ib < b.size()) {
    PointId next;
    if (ia < a.size() && (ib >= b.size() || a[ia] <= b[ib])) {
      next = a[ia];
    } else {
      next = b[ib];
    }
    int count = 0;
    if (ia < a.size() && a[ia] == next) {
      ++count;
      ++ia;
    }
    if (ib < b.size() && b[ib] == next) {
      ++count;
      ++ib;
    }
    while (ic < c.size() && c[ic] < next) ++ic;
    if (ic < c.size() && c[ic] == next) {
      --count;
      ++ic;
    }
    SKYDIA_CHECK_LE(count, 1);
    if (count == 1) out->push_back(next);
  }
}

}  // namespace internal

CellDiagram BuildQuadrantScanning(const Dataset& dataset,
                                  const DiagramOptions& options) {
  CellDiagram diagram = [&] {
    PhaseScope phase("grid");
    return CellDiagram(dataset, options.intern_result_sets);
  }();
  const CellGrid& grid = diagram.grid();
  const uint32_t cols = grid.num_columns();
  const uint32_t rows = grid.num_rows();
  SkylineSetPool& pool = diagram.pool();

  // Two sliding rows of interned ids: the row above (already final) and the
  // row being produced. The top row (cy = rows-1) is all-empty: no candidate
  // has yrank >= num_distinct_y().
  std::vector<SetId> above(cols, kEmptySetId);
  std::vector<SetId> current(cols, kEmptySetId);
  for (uint32_t cx = 0; cx < cols; ++cx) {
    diagram.set_cell(cx, rows - 1, kEmptySetId);
  }

  {
    PhaseScope phase("scan");
    std::vector<PointId> scratch;
    for (uint32_t cy = rows - 1; cy-- > 0;) {
      SKYDIA_TRACE_SPAN("scan.row");
      // Rightmost column has no candidates either.
      current[cols - 1] = kEmptySetId;
      diagram.set_cell(cols - 1, cy, kEmptySetId);
      for (uint32_t cx = cols - 1; cx-- > 0;) {
        const std::vector<PointId>& corner = grid.PointsAtCorner(cx, cy);
        SetId result;
        if (!corner.empty()) {
          // A corner point dominates every other candidate of this cell.
          scratch = corner;  // already sorted ascending by construction order?
          std::sort(scratch.begin(), scratch.end());
          result = pool.InternCopy(scratch);
        } else {
          internal::ScanningMergeIdentity(pool.Get(current[cx + 1]),
                                          pool.Get(above[cx]),
                                          pool.Get(above[cx + 1]), &scratch);
          result = pool.InternCopy(scratch);
        }
        current[cx] = result;
        diagram.set_cell(cx, cy, result);
      }
      std::swap(above, current);
    }
  }
  {
    PhaseScope phase("freeze");
    diagram.pool().Freeze();
  }
  return diagram;
}

}  // namespace skydia
