// Subset dynamic skyline diagram (Algorithm 6): the dynamic skyline of a
// subcell is always a subset of the *global* skyline of the skyline cell
// containing it (a mapped point can only dominate more, never less). The
// builder therefore computes the global diagram first and evaluates each
// subcell's dynamic skyline over that cell's (small) global result instead of
// all n points. Worst case matches the baseline; amortized
// O(n^4 log n)-style behaviour in practice because global results average
// O(log n) points (§V.B).
#ifndef SKYDIA_SRC_CORE_DYNAMIC_SUBSET_H_
#define SKYDIA_SRC_CORE_DYNAMIC_SUBSET_H_

#include "src/core/global_diagram.h"
#include "src/core/options.h"
#include "src/core/subcell_diagram.h"
#include "src/geometry/dataset.h"

namespace skydia {

/// Deprecated direct entry point — new code should go through
/// SkylineDiagram::Build (src/core/diagram.h), which dispatches here.
/// Builds the dynamic skyline diagram via the subset algorithm. `algorithm`
/// selects the underlying global-diagram construction (default: scanning,
/// the fastest cell-based builder).
SubcellDiagram BuildDynamicSubset(
    const Dataset& dataset,
    QuadrantAlgorithm algorithm = QuadrantAlgorithm::kScanning,
    const DiagramOptions& options = {});

/// Variant reusing an already-built global diagram (must come from the same
/// dataset).
SubcellDiagram BuildDynamicSubsetWithGlobal(const Dataset& dataset,
                                            const CellDiagram& global,
                                            const DiagramOptions& options = {});

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_DYNAMIC_SUBSET_H_
