#include "src/core/merge.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace skydia {

MergedPolyominoes MergeCells(const CellDiagram& diagram) {
  const CellGrid& grid = diagram.grid();
  const uint32_t cols = grid.num_columns();
  const uint32_t rows = grid.num_rows();
  const uint64_t cells = grid.num_cells();

  std::vector<uint32_t> parent(cells);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](uint32_t a, uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[a] = b;
  };

  // Interned SetIds make "same result" a single integer comparison; a pool
  // without deduplication still works because equal neighbours were interned
  // from identical content only when dedup is on — so compare set contents
  // via ids where possible and fall back to span equality otherwise.
  const SkylineSetPool& pool = diagram.pool();
  auto same = [&](SetId a, SetId b) {
    if (a == b) return true;
    const auto sa = pool.Get(a);
    const auto sb = pool.Get(b);
    return sa.size() == sb.size() &&
           std::equal(sa.begin(), sa.end(), sb.begin());
  };

  for (uint32_t cy = 0; cy < rows; ++cy) {
    for (uint32_t cx = 0; cx < cols; ++cx) {
      const auto idx = static_cast<uint32_t>(grid.CellIndex(cx, cy));
      if (cx + 1 < cols &&
          same(diagram.cell_set(cx, cy), diagram.cell_set(cx + 1, cy))) {
        unite(idx, static_cast<uint32_t>(grid.CellIndex(cx + 1, cy)));
      }
      if (cy + 1 < rows &&
          same(diagram.cell_set(cx, cy), diagram.cell_set(cx, cy + 1))) {
        unite(idx, static_cast<uint32_t>(grid.CellIndex(cx, cy + 1)));
      }
    }
  }

  MergedPolyominoes merged;
  merged.cell_to_polyomino.resize(cells);
  std::unordered_map<uint32_t, uint32_t> compact;
  for (uint64_t i = 0; i < cells; ++i) {
    const uint32_t root = find(static_cast<uint32_t>(i));
    auto [it, inserted] =
        compact.emplace(root, static_cast<uint32_t>(compact.size()));
    if (inserted) {
      merged.polyomino_set.push_back(
          diagram.cell_set(static_cast<uint32_t>(i % cols),
                           static_cast<uint32_t>(i / cols)));
      merged.polyomino_cells.push_back(0);
    }
    merged.cell_to_polyomino[i] = it->second;
    ++merged.polyomino_cells[it->second];
  }
  return merged;
}

}  // namespace skydia
