// Sweeping construction of the quadrant skyline diagram (Algorithm 4 +
// Theorem 2): two half-open grid lines per point — one downward, one leftward
// — partition the plane into the skyline polyominoes *directly*, without ever
// computing a per-cell skyline. O(n^2) time.
//
// Two implementations are provided:
//
//  * BuildQuadrantSweeping — the paper's vertex-walk. Every intersection
//    point of the arrangement is the upper-right corner of exactly one
//    polyomino, whose outline is traced left / (down, right)* through
//    neighbouring intersections. Requires distinct coordinates per dimension
//    (the paper's general-position setting); returns InvalidArgument
//    otherwise. The domain boundary is closed with a virtual sentinel seed at
//    (s, s) plus the two axes, so the polyominoes tile [0, s]^2 exactly.
//
//  * BuildSweepingCellLabels — a tie-tolerant variant used for validation and
//    structure statistics: labels every skyline cell (rank space) with its
//    polyomino id via union-find over the "no ray between these cells"
//    adjacency. Cells (cx, cy) ~ (cx+1, cy) are connected iff no point with
//    xrank == cx has yrank >= cy, and symmetrically for rows.
#ifndef SKYDIA_SRC_CORE_QUADRANT_SWEEPING_H_
#define SKYDIA_SRC_CORE_QUADRANT_SWEEPING_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/geometry/dataset.h"
#include "src/geometry/grid.h"
#include "src/geometry/point.h"
#include "src/geometry/polyomino.h"

namespace skydia {

/// One region of the sweeping diagram.
struct SweepingPolyomino {
  /// The intersection point that is this polyomino's upper-right corner.
  Point2D corner;
  /// Closed rectilinear outline: corner, its left neighbour, then the
  /// lower-left staircase, ending below the corner.
  PolyominoOutline outline;
};

/// The sweeping diagram: polyominoes tiling [0, domain_size]^2.
struct SweepingDiagram {
  std::vector<SweepingPolyomino> polyominoes;
  /// Number of arrangement intersections (equals polyominoes.size() plus the
  /// boundary nodes that cannot be upper-right corners).
  uint64_t num_intersections = 0;
};

/// Paper Algorithm 4. Requires dataset.HasDistinctCoordinates().
StatusOr<SweepingDiagram> BuildQuadrantSweeping(const Dataset& dataset);

/// Tie-tolerant polyomino labelling of the skyline cells.
struct SweepingCellLabels {
  /// Row-major (grid.CellIndex) polyomino label per cell.
  std::vector<uint32_t> labels;
  uint32_t num_polyominoes = 0;
};
SweepingCellLabels BuildSweepingCellLabels(const Dataset& dataset,
                                           const CellGrid& grid);

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_QUADRANT_SWEEPING_H_
