#include "src/core/build_report.h"

#include <cstdio>

namespace skydia {

namespace build_report_internal {
namespace {

thread_local BuildReport* t_report = nullptr;
thread_local int t_phase_depth = 0;

}  // namespace

ReportInstaller::ReportInstaller(BuildReport* report) : prev_(t_report) {
  if (report != nullptr) t_report = report;
}

ReportInstaller::~ReportInstaller() { t_report = prev_; }

}  // namespace build_report_internal

PhaseScope::PhaseScope(const char* name) : span_(name), name_(name) {
  using build_report_internal::t_phase_depth;
  using build_report_internal::t_report;
  record_ = t_report != nullptr && t_phase_depth == 0;
  ++t_phase_depth;
  if (record_) start_ns_ = trace::NowNanos();
}

PhaseScope::~PhaseScope() {
  --build_report_internal::t_phase_depth;
  if (!record_) return;
  const double seconds =
      static_cast<double>(trace::NowNanos() - start_ns_) / 1e9;
  BuildReport* report = build_report_internal::t_report;
  for (BuildPhaseTiming& phase : report->phases) {
    if (phase.name == name_) {
      ++phase.count;
      phase.seconds += seconds;
      return;
    }
  }
  report->phases.push_back(BuildPhaseTiming{name_, 1, seconds});
}

std::string BuildReport::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "build report: %s/%s parallelism=%d n=%llu\n",
                diagram_type.c_str(), algorithm.c_str(), parallelism,
                static_cast<unsigned long long>(dataset_points));
  out.append(line);
  double phase_sum = 0.0;
  for (const BuildPhaseTiming& phase : phases) {
    phase_sum += phase.seconds;
    const double share =
        total_seconds > 0.0 ? 100.0 * phase.seconds / total_seconds : 0.0;
    std::snprintf(line, sizeof(line),
                  "  phase %-12s %10.3f ms  %5.1f%%  (x%llu)\n",
                  phase.name.c_str(), phase.seconds * 1e3, share,
                  static_cast<unsigned long long>(phase.count));
    out.append(line);
  }
  std::snprintf(line, sizeof(line),
                "  total %19.3f ms  (phases cover %.1f%%)\n",
                total_seconds * 1e3,
                total_seconds > 0.0 ? 100.0 * phase_sum / total_seconds : 0.0);
  out.append(line);
  std::snprintf(
      line, sizeof(line),
      "  cells=%llu distinct_sets=%llu set_elements=%llu arena_bytes=%llu "
      "approx_bytes=%llu\n",
      static_cast<unsigned long long>(num_cells),
      static_cast<unsigned long long>(num_distinct_sets),
      static_cast<unsigned long long>(total_set_elements),
      static_cast<unsigned long long>(arena_bytes),
      static_cast<unsigned long long>(approx_bytes));
  out.append(line);
  return out;
}

}  // namespace skydia
