#include "src/core/dynamic_baseline.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <numeric>

#include "src/core/build_report.h"

namespace skydia {

namespace {

// Point ids in ascending mapped-x order (|4*p.x - repx4|) for one subcell
// column, with group boundaries between distinct mapped values. The order is
// shared by every subcell of the column.
struct ColumnOrder {
  std::vector<PointId> ids;
  std::vector<uint32_t> group_begin;  // indices into ids; sentinel ids.size()
};

ColumnOrder BuildColumnOrder(const Dataset& dataset,
                             const std::vector<PointId>& by_x, int64_t repx4) {
  const size_t n = by_x.size();
  ColumnOrder order;
  order.ids.reserve(n);
  // Split: [0, split) lie strictly left of the representative. The
  // representative never coincides with a mapped point (see SubcellAxis).
  size_t split = 0;
  while (split < n && 4 * dataset.point(by_x[split]).x < repx4) ++split;
  size_t li = split;  // walks down through [0, split)
  size_t ri = split;  // walks up through [split, n)
  auto mapped = [&](size_t idx) {
    return std::llabs(4 * dataset.point(by_x[idx]).x - repx4);
  };
  int64_t last = -1;
  while (li > 0 || ri < n) {
    bool take_left;
    if (li == 0) {
      take_left = false;
    } else if (ri == n) {
      take_left = true;
    } else {
      take_left = mapped(li - 1) < mapped(ri);
    }
    const size_t idx = take_left ? li - 1 : ri;
    const int64_t m = mapped(idx);
    if (m != last) {
      order.group_begin.push_back(static_cast<uint32_t>(order.ids.size()));
      last = m;
    }
    order.ids.push_back(by_x[idx]);
    if (take_left) {
      --li;
    } else {
      ++ri;
    }
  }
  order.group_begin.push_back(static_cast<uint32_t>(order.ids.size()));
  return order;
}

}  // namespace

SubcellDiagram BuildDynamicBaseline(const Dataset& dataset,
                                    const DiagramOptions& options) {
  SubcellDiagram diagram = [&] {
    PhaseScope phase("grid");
    return SubcellDiagram(dataset, options.intern_result_sets);
  }();
  const SubcellGrid& grid = diagram.grid();
  const size_t n = dataset.size();

  std::vector<PointId> by_x(n);
  {
    PhaseScope phase("sort");
    std::iota(by_x.begin(), by_x.end(), 0);
    std::sort(by_x.begin(), by_x.end(), [&](PointId a, PointId b) {
      return dataset.point(a).x < dataset.point(b).x;
    });
  }

  {
    PhaseScope phase("cells");
    std::vector<PointId> scratch;
    for (uint32_t sx = 0; sx < grid.num_columns(); ++sx) {
      SKYDIA_TRACE_SPAN("cells.column");
      const int64_t repx4 = grid.x_axis().Representative4(sx);
      const ColumnOrder order = BuildColumnOrder(dataset, by_x, repx4);
      const size_t groups = order.group_begin.size() - 1;
      for (uint32_t sy = 0; sy < grid.num_rows(); ++sy) {
        const int64_t repy4 = grid.y_axis().Representative4(sy);
        // Staircase over mapped y, ascending mapped x, tie-groups intact.
        scratch.clear();
        int64_t best = std::numeric_limits<int64_t>::max();
        for (size_t g = 0; g < groups; ++g) {
          const uint32_t lo = order.group_begin[g];
          const uint32_t hi = order.group_begin[g + 1];
          int64_t group_min = std::numeric_limits<int64_t>::max();
          for (uint32_t k = lo; k < hi; ++k) {
            group_min = std::min<int64_t>(
                group_min,
                std::llabs(4 * dataset.point(order.ids[k]).y - repy4));
          }
          if (group_min < best) {
            for (uint32_t k = lo; k < hi; ++k) {
              if (std::llabs(4 * dataset.point(order.ids[k]).y - repy4) ==
                  group_min) {
                scratch.push_back(order.ids[k]);
              }
            }
            best = group_min;
          }
        }
        std::sort(scratch.begin(), scratch.end());
        diagram.set_subcell(sx, sy, diagram.pool().InternCopy(scratch));
      }
    }
  }
  {
    PhaseScope phase("freeze");
    diagram.pool().Freeze();
  }
  return diagram;
}

}  // namespace skydia
