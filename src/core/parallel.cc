#include "src/core/parallel.h"

#include <algorithm>
#include <memory>
#include <set>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/skyline/dsg.h"
#include "src/skyline/interning.h"

namespace skydia {

namespace {

// Per-worker sweep state (mirrors quadrant_dsg.cc).
struct SweepState {
  std::vector<uint8_t> alive;
  std::vector<uint32_t> parents_left;
  std::set<PointId> skyline;
};

void RemoveBatch(const DirectedSkylineGraph& dsg,
                 const std::vector<PointId>& batch, SweepState* state) {
  std::vector<PointId> newly_removed;
  for (PointId id : batch) {
    if (!state->alive[id]) continue;
    state->alive[id] = 0;
    state->skyline.erase(id);
    newly_removed.push_back(id);
  }
  for (PointId id : newly_removed) {
    for (PointId child : dsg.children(id)) {
      if (!state->alive[child]) continue;
      if (--state->parents_left[child] == 0) {
        state->skyline.insert(child);
      }
    }
  }
}

SweepState InitialState(const DirectedSkylineGraph& dsg, size_t n) {
  SweepState state;
  state.alive.assign(n, 1);
  state.parents_left.resize(n);
  for (PointId id = 0; id < n; ++id) {
    state.parents_left[id] = dsg.parent_count(id);
    if (state.parents_left[id] == 0) state.skyline.insert(id);
  }
  return state;
}

// One stripe's output: row-major SetIds into its private pool.
struct StripeResult {
  uint32_t row_begin = 0;
  uint32_t row_end = 0;
  std::unique_ptr<SkylineSetPool> pool;
  std::vector<SetId> cells;
};

}  // namespace

CellDiagram BuildQuadrantDsgParallel(const Dataset& dataset, int num_threads,
                                     const DiagramOptions& options) {
  SKYDIA_CHECK_GE(num_threads, 1);
  CellDiagram diagram(dataset, options.intern_result_sets);
  const CellGrid& grid = diagram.grid();
  const DirectedSkylineGraph dsg(dataset);
  const size_t n = dataset.size();
  const uint32_t rows = grid.num_rows();
  const uint32_t cols = grid.num_columns();

  const auto stripes =
      std::min<uint32_t>(rows, static_cast<uint32_t>(num_threads));
  std::vector<StripeResult> results(stripes);
  const uint32_t rows_per_stripe = (rows + stripes - 1) / stripes;

  {
    ThreadPool pool(static_cast<size_t>(num_threads));
    pool.ParallelFor(stripes, [&](size_t stripe) {
      StripeResult& result = results[stripe];
      result.row_begin = static_cast<uint32_t>(stripe) * rows_per_stripe;
      result.row_end =
          std::min<uint32_t>(rows, result.row_begin + rows_per_stripe);
      result.pool = std::make_unique<SkylineSetPool>();
      result.cells.assign(
          static_cast<size_t>(result.row_end - result.row_begin) * cols,
          kEmptySetId);

      // Replay the row advances below this stripe — removals only, no cell
      // recording, so the whole replay costs O(n + links).
      SweepState row_state = InitialState(dsg, n);
      for (uint32_t cy = 0; cy < result.row_begin; ++cy) {
        RemoveBatch(dsg, grid.PointsAtRow(cy), &row_state);
      }

      std::vector<PointId> scratch;
      for (uint32_t cy = result.row_begin; cy < result.row_end; ++cy) {
        SweepState work = row_state;
        for (uint32_t cx = 0; cx < cols; ++cx) {
          if (cx > 0) RemoveBatch(dsg, grid.PointsAtColumn(cx - 1), &work);
          scratch.assign(work.skyline.begin(), work.skyline.end());
          result.cells[static_cast<size_t>(cy - result.row_begin) * cols + cx] =
              result.pool->InternCopy(scratch);
        }
        if (cy + 1 < result.row_end) {
          RemoveBatch(dsg, grid.PointsAtRow(cy), &row_state);
        }
      }
    });
  }

  // Deterministic merge: stripes in order, remapping each private pool into
  // the diagram's pool.
  std::vector<SetId> remap;
  for (const StripeResult& result : results) {
    remap.assign(result.pool->size(), kEmptySetId);
    for (SetId id = 0; id < result.pool->size(); ++id) {
      remap[id] = diagram.pool().InternCopy(result.pool->Get(id));
    }
    for (uint32_t cy = result.row_begin; cy < result.row_end; ++cy) {
      for (uint32_t cx = 0; cx < cols; ++cx) {
        diagram.set_cell(
            cx, cy,
            remap[result.cells[static_cast<size_t>(cy - result.row_begin) *
                                   cols +
                               cx]]);
      }
    }
  }
  return diagram;
}

}  // namespace skydia
