#include "src/core/parallel.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/common/trace.h"
#include "src/core/build_report.h"
#include "src/core/sweep_kernel.h"
#include "src/core/validate.h"
#include "src/skyline/dsg.h"
#include "src/skyline/interning.h"

namespace skydia {

namespace {

// One stripe's output: row-major SetIds into its private pool. Workers write
// disjoint StripeResult slots with no locking; the writes become visible to
// the merging thread through the WaitIdle() mutex handshake at the end of
// ThreadPool::ParallelFor.
struct StripeResult {
  StripeRange rows;
  std::unique_ptr<SkylineSetPool> pool;
  std::vector<SetId> cells;
};

// Debug builds re-check the merged diagram (mirrors the assertion in
// SkylineDiagram::Build; the parallel builders bypass that entry point).
#ifndef NDEBUG
template <typename Diagram>
void DebugValidateParallel(const Dataset& dataset, const Diagram& diagram,
                           const DiagramOptions& options,
                           CellSemantics semantics) {
  ValidateOptions validate;
  validate.sample_queries = 4;
  validate.semantics = semantics;
  validate.require_canonical_pool = options.intern_result_sets;
  const Status status = ValidateDiagram(dataset, diagram, validate);
  if (!status.ok()) {
    SKYDIA_LOG(Error) << "parallel-built diagram violates its invariants: "
                      << status;
  }
  SKYDIA_CHECK(status.ok());
}
#endif  // NDEBUG

}  // namespace

CellDiagram BuildQuadrantDsgParallel(const Dataset& dataset, int num_threads,
                                     const DiagramOptions& options) {
  SKYDIA_CHECK_GE(num_threads, 1);
  CellDiagram diagram = [&] {
    PhaseScope phase("grid");
    return CellDiagram(dataset, options.intern_result_sets);
  }();
  const CellGrid& grid = diagram.grid();
  const DirectedSkylineGraph dsg = [&] {
    PhaseScope phase("dsg");
    return DirectedSkylineGraph(dataset);
  }();
  const size_t n = dataset.size();
  const uint32_t rows = grid.num_rows();
  const uint32_t cols = grid.num_columns();

  const auto stripes =
      std::min<uint32_t>(rows, static_cast<uint32_t>(num_threads));
  std::vector<StripeResult> results(stripes);

  {
    PhaseScope phase("stripes");
    ThreadPool pool(static_cast<size_t>(num_threads));
    pool.ParallelFor(stripes, [&](size_t stripe) {
      SKYDIA_TRACE_SPAN("stripe.dsg");
      StripeResult& result = results[stripe];
      result.rows = StripeRows(rows, stripes, static_cast<uint32_t>(stripe));
      result.pool = std::make_unique<SkylineSetPool>();
      result.cells.assign(
          static_cast<size_t>(result.rows.end - result.rows.begin) * cols,
          kEmptySetId);

      // Replay the row advances below this stripe — removals only, no cell
      // recording, so the whole replay costs O(n + links).
      std::vector<PointId> removed_scratch;
      SweepState row_state = InitialSweepState(dsg, n);
      {
        SKYDIA_TRACE_SPAN("stripe.replay");
        for (uint32_t cy = 0; cy < result.rows.begin; ++cy) {
          RemoveBatch(dsg, grid.PointsAtRow(cy), &row_state, &removed_scratch);
        }
      }

      std::vector<PointId> scratch;
      for (uint32_t cy = result.rows.begin; cy < result.rows.end; ++cy) {
        SKYDIA_TRACE_SPAN("sweep.row");
        SweepState work = row_state;
        for (uint32_t cx = 0; cx < cols; ++cx) {
          if (cx > 0) {
            RemoveBatch(dsg, grid.PointsAtColumn(cx - 1), &work,
                        &removed_scratch);
          }
          scratch.assign(work.skyline.begin(), work.skyline.end());
          result.cells[static_cast<size_t>(cy - result.rows.begin) * cols +
                       cx] = result.pool->InternCopy(scratch);
        }
        if (cy + 1 < result.rows.end) {
          RemoveBatch(dsg, grid.PointsAtRow(cy), &row_state, &removed_scratch);
        }
      }
      result.pool->Freeze();
    });
  }

  {
    PhaseScope phase("merge");
    // Deterministic merge: stripes in order, remapping each private pool
    // into the diagram's pool.
    for (const StripeResult& result : results) {
      const std::vector<SetId> remap =
          RemapPool(*result.pool, &diagram.pool());
      for (uint32_t cy = result.rows.begin; cy < result.rows.end; ++cy) {
        for (uint32_t cx = 0; cx < cols; ++cx) {
          diagram.set_cell(
              cx, cy,
              remap[result.cells[static_cast<size_t>(cy - result.rows.begin) *
                                     cols +
                                 cx]]);
        }
      }
    }
  }
  {
    PhaseScope phase("freeze");
    diagram.pool().Freeze();
  }
#ifndef NDEBUG
  {
    PhaseScope phase("validate");
    DebugValidateParallel(dataset, diagram, options, CellSemantics::kQuadrant);
  }
#endif
  return diagram;
}

SubcellDiagram BuildDynamicScanningParallel(const Dataset& dataset,
                                            int num_threads,
                                            const DiagramOptions& options) {
  SKYDIA_CHECK_GE(num_threads, 1);
  SubcellDiagram diagram = [&] {
    PhaseScope phase("grid");
    return SubcellDiagram(dataset, options.intern_result_sets);
  }();
  const SubcellGrid& grid = diagram.grid();
  const uint32_t rows = grid.num_rows();
  const uint32_t cols = grid.num_columns();

  const auto stripes =
      std::min<uint32_t>(rows, static_cast<uint32_t>(num_threads));
  std::vector<StripeResult> results(stripes);

  {
    PhaseScope phase("stripes");
    ThreadPool pool(static_cast<size_t>(num_threads));
    pool.ParallelFor(stripes, [&](size_t stripe) {
      SKYDIA_TRACE_SPAN("stripe.scan");
      StripeResult& result = results[stripe];
      result.rows = StripeRows(rows, stripes, static_cast<uint32_t>(stripe));
      result.pool = std::make_unique<SkylineSetPool>();
      result.cells.assign(
          static_cast<size_t>(result.rows.end - result.rows.begin) * cols,
          kEmptySetId);

      // Enter the stripe with one from-scratch skyline at (0, row_begin),
      // then scan incrementally exactly like the sequential builder.
      DynamicRowScanner scanner(dataset, grid);
      scanner.SeedRow(result.rows.begin);
      for (uint32_t sy = result.rows.begin; sy < result.rows.end; ++sy) {
        SKYDIA_TRACE_SPAN("scan.row");
        if (sy > result.rows.begin) scanner.AdvanceRow(sy);
        scanner.ScanRow(
            sy, result.pool.get(),
            result.cells.data() +
                static_cast<size_t>(sy - result.rows.begin) * cols);
      }
      result.pool->Freeze();
    });
  }

  {
    PhaseScope phase("merge");
    // Deterministic merge in stripe order (mirrors BuildQuadrantDsgParallel).
    for (const StripeResult& result : results) {
      const std::vector<SetId> remap =
          RemapPool(*result.pool, &diagram.pool());
      for (uint32_t sy = result.rows.begin; sy < result.rows.end; ++sy) {
        for (uint32_t sx = 0; sx < cols; ++sx) {
          diagram.set_subcell(
              sx, sy,
              remap[result.cells[static_cast<size_t>(sy - result.rows.begin) *
                                     cols +
                                 sx]]);
        }
      }
    }
  }
  {
    PhaseScope phase("freeze");
    diagram.pool().Freeze();
  }
#ifndef NDEBUG
  {
    PhaseScope phase("validate");
    DebugValidateParallel(dataset, diagram, options, CellSemantics::kAuto);
  }
#endif
  return diagram;
}

}  // namespace skydia
