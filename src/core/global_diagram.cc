#include "src/core/global_diagram.h"

#include <algorithm>
#include <array>

#include "src/common/logging.h"
#include "src/core/build_report.h"
#include "src/core/quadrant_baseline.h"
#include "src/core/quadrant_dsg.h"
#include "src/core/quadrant_scanning.h"

namespace skydia {

namespace {

Dataset Reflect(const Dataset& dataset, bool flip_x, bool flip_y) {
  const int64_t d = dataset.domain_size();
  std::vector<Point2D> points;
  points.reserve(dataset.size());
  for (const Point2D& p : dataset.points()) {
    points.push_back(Point2D{flip_x ? d - 1 - p.x : p.x,
                             flip_y ? d - 1 - p.y : p.y});
  }
  auto reflected = Dataset::Create(std::move(points), d);
  SKYDIA_CHECK(reflected.ok());
  return std::move(reflected).value();
}

}  // namespace

const char* QuadrantAlgorithmName(QuadrantAlgorithm algorithm) {
  switch (algorithm) {
    case QuadrantAlgorithm::kBaseline:
      return "baseline";
    case QuadrantAlgorithm::kDsg:
      return "dsg";
    case QuadrantAlgorithm::kScanning:
      return "scanning";
  }
  return "?";
}

CellDiagram BuildQuadrantDiagram(const Dataset& dataset,
                                 QuadrantAlgorithm algorithm,
                                 const DiagramOptions& options) {
  switch (algorithm) {
    case QuadrantAlgorithm::kBaseline:
      return BuildQuadrantBaseline(dataset, options);
    case QuadrantAlgorithm::kDsg:
      return BuildQuadrantDsg(dataset, options);
    case QuadrantAlgorithm::kScanning:
      return BuildQuadrantScanning(dataset, options);
  }
  SKYDIA_CHECK(false);
  return BuildQuadrantBaseline(dataset, options);
}

CellDiagram BuildGlobalDiagram(const Dataset& dataset,
                               QuadrantAlgorithm algorithm,
                               const DiagramOptions& options) {
  // Quadrant diagrams of the four reflections. Index k matches
  // QuadrantOf(): 0 = (+x, +y), 1 = (-x, +y), 2 = (-x, -y), 3 = (+x, -y).
  // The nested quadrant builds open their own phases; they show up in the
  // trace but only the enclosing "quadrants" reaches the build report.
  const std::array<CellDiagram, 4> quads = [&] {
    PhaseScope phase("quadrants");
    return std::array<CellDiagram, 4>{
        BuildQuadrantDiagram(dataset, algorithm, options),
        BuildQuadrantDiagram(Reflect(dataset, /*flip_x=*/true,
                                     /*flip_y=*/false),
                             algorithm, options),
        BuildQuadrantDiagram(Reflect(dataset, /*flip_x=*/true,
                                     /*flip_y=*/true),
                             algorithm, options),
        BuildQuadrantDiagram(Reflect(dataset, /*flip_x=*/false,
                                     /*flip_y=*/true),
                             algorithm, options)};
  }();
  const CellDiagram& q1 = quads[0];
  const CellDiagram& q2 = quads[1];
  const CellDiagram& q3 = quads[2];
  const CellDiagram& q4 = quads[3];

  CellDiagram global = [&] {
    PhaseScope phase("grid");
    return CellDiagram(dataset, options.intern_result_sets);
  }();
  const CellGrid& grid = global.grid();
  const uint32_t cols = grid.num_columns();
  const uint32_t rows = grid.num_rows();
  SKYDIA_CHECK_EQ(cols, q2.grid().num_columns());
  SKYDIA_CHECK_EQ(rows, q2.grid().num_rows());

  {
    PhaseScope phase("merge");
    std::vector<PointId> merged;
    for (uint32_t cy = 0; cy < rows; ++cy) {
      SKYDIA_TRACE_SPAN("merge.row");
      for (uint32_t cx = 0; cx < cols; ++cx) {
        // Reflected axes index from the other end: interior column cx of the
        // original grid corresponds to interior column (cols-1) - cx of an
        // x-reflected grid, and likewise for rows.
        const uint32_t rx = (cols - 1) - cx;
        const uint32_t ry = (rows - 1) - cy;
        merged.clear();
        const auto append = [&](std::span<const PointId> part) {
          merged.insert(merged.end(), part.begin(), part.end());
        };
        append(q1.CellSkyline(cx, cy));
        append(q2.CellSkyline(rx, cy));
        append(q3.CellSkyline(rx, ry));
        append(q4.CellSkyline(cx, ry));
        std::sort(merged.begin(), merged.end());
        // The quadrants partition the candidates, so no duplicates can
        // occur; dedupe defensively anyway (it is free on sorted data).
        merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
        global.set_cell(cx, cy, global.pool().InternCopy(merged));
      }
    }
  }
  {
    PhaseScope phase("freeze");
    global.pool().Freeze();
  }
  return global;
}

}  // namespace skydia
