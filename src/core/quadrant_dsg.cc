#include "src/core/quadrant_dsg.h"

#include <vector>

#include "src/core/build_report.h"
#include "src/core/sweep_kernel.h"
#include "src/skyline/dsg.h"

namespace skydia {

namespace {

void RecordCell(const SweepState& state, uint32_t cx, uint32_t cy,
                CellDiagram* diagram, std::vector<PointId>* scratch) {
  scratch->assign(state.skyline.begin(), state.skyline.end());
  diagram->set_cell(cx, cy, diagram->pool().InternCopy(*scratch));
}

}  // namespace

CellDiagram BuildQuadrantDsg(const Dataset& dataset,
                             const DiagramOptions& options) {
  CellDiagram diagram = [&] {
    PhaseScope phase("grid");
    return CellDiagram(dataset, options.intern_result_sets);
  }();
  const CellGrid& grid = diagram.grid();
  const DirectedSkylineGraph dsg = [&] {
    PhaseScope phase("dsg");
    return DirectedSkylineGraph(dataset);
  }();

  {
    PhaseScope phase("sweep");
    // Row-start state: everything with yrank >= current row alive.
    SweepState row_state = InitialSweepState(dsg, dataset.size());

    std::vector<PointId> scratch;
    std::vector<PointId> removed_scratch;
    for (uint32_t cy = 0; cy < grid.num_rows(); ++cy) {
      SKYDIA_TRACE_SPAN("sweep.row");
      // Sweep this row on a working copy (the paper's tempDSG).
      SweepState work = row_state;
      RecordCell(work, 0, cy, &diagram, &scratch);
      for (uint32_t cx = 1; cx < grid.num_columns(); ++cx) {
        RemoveBatch(dsg, grid.PointsAtColumn(cx - 1), &work, &removed_scratch);
        RecordCell(work, cx, cy, &diagram, &scratch);
      }
      // Advance the row-start state upwards.
      if (cy + 1 < grid.num_rows()) {
        RemoveBatch(dsg, grid.PointsAtRow(cy), &row_state, &removed_scratch);
      }
    }
  }
  {
    PhaseScope phase("freeze");
    diagram.pool().Freeze();
  }
  return diagram;
}

}  // namespace skydia
