#include "src/core/quadrant_dsg.h"

#include <algorithm>
#include <set>
#include <vector>

#include "src/skyline/dsg.h"

namespace skydia {

namespace {

// Mutable sweep state: which points are still candidates, how many direct
// parents each has left, and the current skyline.
struct SweepState {
  std::vector<uint8_t> alive;
  std::vector<uint32_t> parents_left;
  std::set<PointId> skyline;
};

// Removes `batch` from the state: phase 1 retires the points themselves,
// phase 2 promotes surviving children whose last direct parent vanished.
// Only points that were actually alive participate in phase 2 — batch lists
// may contain points removed by an earlier (orthogonal) sweep, and their
// children were already decremented then.
void RemoveBatch(const DirectedSkylineGraph& dsg,
                 const std::vector<PointId>& batch, SweepState* state,
                 std::vector<PointId>* newly_removed) {
  newly_removed->clear();
  for (PointId id : batch) {
    if (!state->alive[id]) continue;
    state->alive[id] = 0;
    state->skyline.erase(id);
    newly_removed->push_back(id);
  }
  for (PointId id : *newly_removed) {
    for (PointId child : dsg.children(id)) {
      if (!state->alive[child]) continue;
      if (--state->parents_left[child] == 0) {
        state->skyline.insert(child);
      }
    }
  }
}

void RecordCell(const SweepState& state, uint32_t cx, uint32_t cy,
                CellDiagram* diagram, std::vector<PointId>* scratch) {
  scratch->assign(state.skyline.begin(), state.skyline.end());
  diagram->set_cell(cx, cy, diagram->pool().InternCopy(*scratch));
}

}  // namespace

CellDiagram BuildQuadrantDsg(const Dataset& dataset,
                             const DiagramOptions& options) {
  CellDiagram diagram(dataset, options.intern_result_sets);
  const CellGrid& grid = diagram.grid();
  const DirectedSkylineGraph dsg(dataset);
  const size_t n = dataset.size();

  // Row-start state: everything with yrank >= current row alive.
  SweepState row_state;
  row_state.alive.assign(n, 1);
  row_state.parents_left.resize(n);
  for (PointId id = 0; id < n; ++id) {
    row_state.parents_left[id] = dsg.parent_count(id);
    if (row_state.parents_left[id] == 0) row_state.skyline.insert(id);
  }

  std::vector<PointId> scratch;
  std::vector<PointId> removed_scratch;
  for (uint32_t cy = 0; cy < grid.num_rows(); ++cy) {
    // Sweep this row on a working copy (the paper's tempDSG).
    SweepState work = row_state;
    RecordCell(work, 0, cy, &diagram, &scratch);
    for (uint32_t cx = 1; cx < grid.num_columns(); ++cx) {
      RemoveBatch(dsg, grid.PointsAtColumn(cx - 1), &work, &removed_scratch);
      RecordCell(work, cx, cy, &diagram, &scratch);
    }
    // Advance the row-start state upwards.
    if (cy + 1 < grid.num_rows()) {
      RemoveBatch(dsg, grid.PointsAtRow(cy), &row_state, &removed_scratch);
    }
  }
  return diagram;
}

}  // namespace skydia
