// Baseline dynamic skyline diagram (Algorithm 5): for every skyline subcell,
// map all points through |p - q| for the subcell's representative and compute
// the traditional skyline. O(n^5) over an unlimited domain; O(min(s^2,n^2)^2
// * n) with domain size s.
//
// The per-subcell skyline runs in O(n) as in the paper: the mapped x-order of
// the points is fixed within one subcell *column* (a two-way merge of the
// x-sorted points around the representative), so it is computed once per
// column and each subcell performs a single staircase scan.
#ifndef SKYDIA_SRC_CORE_DYNAMIC_BASELINE_H_
#define SKYDIA_SRC_CORE_DYNAMIC_BASELINE_H_

#include "src/core/options.h"
#include "src/core/subcell_diagram.h"
#include "src/geometry/dataset.h"

namespace skydia {

/// Deprecated direct entry point — new code should go through
/// SkylineDiagram::Build (src/core/diagram.h), which dispatches here.
/// Builds the dynamic skyline diagram with the baseline algorithm.
SubcellDiagram BuildDynamicBaseline(const Dataset& dataset,
                                    const DiagramOptions& options = {});

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_DYNAMIC_BASELINE_H_
