#include "src/core/diagram.h"

#include "src/common/logging.h"
#include "src/common/trace.h"
#include "src/core/build_report.h"
#include "src/core/dynamic_baseline.h"
#include "src/core/dynamic_scanning.h"
#include "src/core/dynamic_subset.h"
#include "src/core/parallel.h"
#include "src/core/validate.h"
#include "src/skyline/query.h"

namespace skydia {

namespace {

// Debug builds re-check every freshly built diagram against the structural
// invariants plus a few sampled brute-force queries (src/core/validate.h).
// Release/RelWithDebInfo builds skip this entirely.
#ifndef NDEBUG
constexpr size_t kDebugValidateSamples = 4;

void DebugValidate(const SkylineDiagram& diagram,
                   const SkylineBuildOptions& options) {
  ValidateOptions validate;
  validate.sample_queries = kDebugValidateSamples;
  validate.require_canonical_pool = options.diagram.intern_result_sets;
  Status status;
  if (diagram.cell_diagram() != nullptr) {
    validate.semantics = diagram.type() == SkylineQueryType::kQuadrant
                             ? CellSemantics::kQuadrant
                             : CellSemantics::kGlobal;
    status =
        ValidateDiagram(diagram.dataset(), *diagram.cell_diagram(), validate);
  } else {
    status = ValidateDiagram(diagram.dataset(), *diagram.subcell_diagram(),
                             validate);
  }
  if (!status.ok()) {
    SKYDIA_LOG(Error) << "freshly built " << SkylineQueryTypeName(diagram.type())
                      << " diagram violates its invariants: " << status;
  }
  SKYDIA_CHECK(status.ok());
}
#endif  // NDEBUG

}  // namespace

const char* SkylineQueryTypeName(SkylineQueryType type) {
  switch (type) {
    case SkylineQueryType::kQuadrant:
      return "quadrant";
    case SkylineQueryType::kGlobal:
      return "global";
    case SkylineQueryType::kDynamic:
      return "dynamic";
  }
  return "?";
}

StatusOr<SkylineQueryType> ParseSkylineQueryType(const std::string& name) {
  if (name == "quadrant") return SkylineQueryType::kQuadrant;
  if (name == "global") return SkylineQueryType::kGlobal;
  if (name == "dynamic") return SkylineQueryType::kDynamic;
  return Status::InvalidArgument("unknown query semantics \"" + name +
                                 "\" (quadrant|global|dynamic)");
}

const char* DynamicAlgorithmName(DynamicAlgorithm algorithm) {
  switch (algorithm) {
    case DynamicAlgorithm::kBaseline:
      return "baseline";
    case DynamicAlgorithm::kSubset:
      return "subset";
    case DynamicAlgorithm::kScanning:
      return "scanning";
  }
  return "?";
}

const char* BuildAlgorithmName(BuildAlgorithm algorithm) {
  switch (algorithm) {
    case BuildAlgorithm::kAuto:
      return "auto";
    case BuildAlgorithm::kBaseline:
      return "baseline";
    case BuildAlgorithm::kDsg:
      return "dsg";
    case BuildAlgorithm::kSubset:
      return "subset";
    case BuildAlgorithm::kScanning:
      return "scanning";
  }
  return "?";
}

StatusOr<BuildAlgorithm> ParseBuildAlgorithm(const std::string& name) {
  if (name == "auto") return BuildAlgorithm::kAuto;
  if (name == "baseline") return BuildAlgorithm::kBaseline;
  if (name == "dsg") return BuildAlgorithm::kDsg;
  if (name == "subset") return BuildAlgorithm::kSubset;
  if (name == "scanning") return BuildAlgorithm::kScanning;
  return Status::InvalidArgument(
      "unknown build algorithm \"" + name +
      "\" (auto|baseline|dsg|subset|scanning)");
}

namespace {

/// Builds the cell diagram (quadrant or global) for the resolved options.
StatusOr<CellDiagram> BuildCell(const Dataset& dataset, SkylineQueryType type,
                                const SkylineBuildOptions& options) {
  QuadrantAlgorithm cell = QuadrantAlgorithm::kScanning;
  switch (options.algorithm) {
    case BuildAlgorithm::kAuto:
      cell = (options.parallelism > 1 && type == SkylineQueryType::kQuadrant)
                 ? QuadrantAlgorithm::kDsg
                 : QuadrantAlgorithm::kScanning;
      break;
    case BuildAlgorithm::kBaseline:
      cell = QuadrantAlgorithm::kBaseline;
      break;
    case BuildAlgorithm::kDsg:
      cell = QuadrantAlgorithm::kDsg;
      break;
    case BuildAlgorithm::kScanning:
      cell = QuadrantAlgorithm::kScanning;
      break;
    case BuildAlgorithm::kSubset:
      return Status::InvalidArgument(
          "the subset construction builds dynamic diagrams only");
  }
  if (options.parallelism > 1) {
    if (type == SkylineQueryType::kGlobal) {
      return Status::InvalidArgument(
          "global diagrams have no parallel construction; use parallelism 1");
    }
    if (cell != QuadrantAlgorithm::kDsg) {
      return Status::InvalidArgument(
          "parallel quadrant construction runs the dsg algorithm; request "
          "algorithm auto or dsg");
    }
    return BuildQuadrantDsgParallel(dataset, options.parallelism,
                                    options.diagram);
  }
  return type == SkylineQueryType::kQuadrant
             ? BuildQuadrantDiagram(dataset, cell, options.diagram)
             : BuildGlobalDiagram(dataset, cell, options.diagram);
}

/// Builds the subcell diagram (dynamic semantics) for the resolved options.
StatusOr<SubcellDiagram> BuildSubcell(const Dataset& dataset,
                                      const SkylineBuildOptions& options) {
  if (options.parallelism > 1) {
    if (options.algorithm != BuildAlgorithm::kAuto &&
        options.algorithm != BuildAlgorithm::kScanning) {
      return Status::InvalidArgument(
          "parallel dynamic construction runs the scanning algorithm; "
          "request algorithm auto or scanning");
    }
    return BuildDynamicScanningParallel(dataset, options.parallelism,
                                        options.diagram);
  }
  switch (options.algorithm) {
    case BuildAlgorithm::kAuto:
    case BuildAlgorithm::kScanning:
      return BuildDynamicScanning(dataset, options.diagram);
    case BuildAlgorithm::kBaseline:
      return BuildDynamicBaseline(dataset, options.diagram);
    case BuildAlgorithm::kSubset:
      return BuildDynamicSubset(dataset, QuadrantAlgorithm::kScanning,
                                options.diagram);
    case BuildAlgorithm::kDsg:
      // The DSG spelling of a dynamic build: the subset construction over a
      // DSG-built global diagram.
      return BuildDynamicSubset(dataset, QuadrantAlgorithm::kDsg,
                                options.diagram);
  }
  return Status::Internal("unreachable dynamic algorithm");
}

/// The algorithm a kAuto request resolves to (mirrors BuildCell /
/// BuildSubcell), for the BuildReport header line.
const char* ResolvedAlgorithmName(SkylineQueryType type,
                                  const SkylineBuildOptions& options) {
  if (options.algorithm != BuildAlgorithm::kAuto) {
    return BuildAlgorithmName(options.algorithm);
  }
  return (options.parallelism > 1 && type == SkylineQueryType::kQuadrant)
             ? "dsg"
             : "scanning";
}

}  // namespace

StatusOr<SkylineDiagram> SkylineDiagram::Build(Dataset dataset,
                                               SkylineQueryType type,
                                               const BuildOptions& options) {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot build a diagram of zero points");
  }
  if (options.parallelism < 1) {
    return Status::InvalidArgument("parallelism must be >= 1");
  }
  SkylineDiagram diagram(std::move(dataset), type);
  BuildReport* report = options.report;
  if (report != nullptr) {
    *report = BuildReport{};
    report->diagram_type = SkylineQueryTypeName(type);
    report->algorithm = ResolvedAlgorithmName(type, options);
    report->parallelism = options.parallelism;
    report->dataset_points = diagram.dataset_.size();
  }
  {
    SKYDIA_TRACE_SPAN("build");
    build_report_internal::ReportInstaller installer(report);
    const uint64_t start_ns = trace::NowNanos();
    if (type == SkylineQueryType::kDynamic) {
      auto subcell = BuildSubcell(diagram.dataset_, options);
      if (!subcell.ok()) return subcell.status();
      diagram.subcell_ =
          std::make_unique<SubcellDiagram>(std::move(subcell).value());
    } else {
      auto cell = BuildCell(diagram.dataset_, type, options);
      if (!cell.ok()) return cell.status();
      diagram.cell_ = std::make_unique<CellDiagram>(std::move(cell).value());
    }
    if (report != nullptr) {
      report->total_seconds =
          static_cast<double>(trace::NowNanos() - start_ns) / 1e9;
    }
  }
  if (report != nullptr) {
    if (diagram.cell_ != nullptr) {
      const CellDiagram::Stats stats = diagram.cell_->ComputeStats();
      report->num_cells = stats.num_cells;
      report->num_distinct_sets = stats.num_distinct_sets;
      report->total_set_elements = stats.total_set_elements;
      report->arena_bytes = stats.pool_bytes;
      report->approx_bytes = stats.approx_bytes;
    } else {
      const SubcellDiagram::Stats stats = diagram.subcell_->ComputeStats();
      report->num_cells = stats.num_subcells;
      report->num_distinct_sets = stats.num_distinct_sets;
      report->total_set_elements = stats.total_set_elements;
      report->arena_bytes = stats.pool_bytes;
      report->approx_bytes = stats.approx_bytes;
    }
  }
#ifndef NDEBUG
  DebugValidate(diagram, options);
#endif
  return diagram;
}

std::span<const PointId> SkylineDiagram::Query(const Point2D& q) const {
  if (cell_ != nullptr) return cell_->Query(q);
  return subcell_->Query(q);
}

bool SkylineDiagram::OnBoundary(const Point2D& q) const {
  if (cell_ != nullptr) {
    return cell_->grid().IsOnVerticalLine(q.x) ||
           cell_->grid().IsOnHorizontalLine(q.y);
  }
  return subcell_->grid().x_axis().IsOnLine(2 * q.x) ||
         subcell_->grid().y_axis().IsOnLine(2 * q.y);
}

std::vector<PointId> SkylineDiagram::QueryExact(const Point2D& q) const {
  switch (type_) {
    case SkylineQueryType::kQuadrant: {
      // The half-open convention is exact everywhere for Q1 semantics.
      const auto span = Query(q);
      return std::vector<PointId>(span.begin(), span.end());
    }
    case SkylineQueryType::kGlobal:
      if (OnBoundary(q)) return GlobalSkyline(dataset_, q);
      break;
    case SkylineQueryType::kDynamic:
      if (OnBoundary(q)) return DynamicSkyline(dataset_, q);
      break;
  }
  const auto span = Query(q);
  return std::vector<PointId>(span.begin(), span.end());
}

std::vector<std::string> SkylineDiagram::QueryLabels(const Point2D& q) const {
  std::vector<std::string> labels;
  for (PointId id : QueryExact(q)) labels.push_back(dataset_.label(id));
  return labels;
}

}  // namespace skydia
