#include "src/core/diagram.h"

#include "src/common/logging.h"
#include "src/core/dynamic_baseline.h"
#include "src/core/dynamic_scanning.h"
#include "src/core/dynamic_subset.h"
#include "src/core/validate.h"
#include "src/skyline/query.h"

namespace skydia {

namespace {

// Debug builds re-check every freshly built diagram against the structural
// invariants plus a few sampled brute-force queries (src/core/validate.h).
// Release/RelWithDebInfo builds skip this entirely.
#ifndef NDEBUG
constexpr size_t kDebugValidateSamples = 4;

void DebugValidate(const SkylineDiagram& diagram,
                   const SkylineBuildOptions& options) {
  ValidateOptions validate;
  validate.sample_queries = kDebugValidateSamples;
  validate.require_canonical_pool = options.diagram.intern_result_sets;
  Status status;
  if (diagram.cell_diagram() != nullptr) {
    validate.semantics = diagram.type() == SkylineQueryType::kQuadrant
                             ? CellSemantics::kQuadrant
                             : CellSemantics::kGlobal;
    status =
        ValidateDiagram(diagram.dataset(), *diagram.cell_diagram(), validate);
  } else {
    status = ValidateDiagram(diagram.dataset(), *diagram.subcell_diagram(),
                             validate);
  }
  if (!status.ok()) {
    SKYDIA_LOG(Error) << "freshly built " << SkylineQueryTypeName(diagram.type())
                      << " diagram violates its invariants: " << status;
  }
  SKYDIA_CHECK(status.ok());
}
#endif  // NDEBUG

}  // namespace

const char* SkylineQueryTypeName(SkylineQueryType type) {
  switch (type) {
    case SkylineQueryType::kQuadrant:
      return "quadrant";
    case SkylineQueryType::kGlobal:
      return "global";
    case SkylineQueryType::kDynamic:
      return "dynamic";
  }
  return "?";
}

const char* DynamicAlgorithmName(DynamicAlgorithm algorithm) {
  switch (algorithm) {
    case DynamicAlgorithm::kBaseline:
      return "baseline";
    case DynamicAlgorithm::kSubset:
      return "subset";
    case DynamicAlgorithm::kScanning:
      return "scanning";
  }
  return "?";
}

StatusOr<SkylineDiagram> SkylineDiagram::Build(Dataset dataset,
                                               SkylineQueryType type,
                                               const BuildOptions& options) {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot build a diagram of zero points");
  }
  SkylineDiagram diagram(std::move(dataset), type);
  switch (type) {
    case SkylineQueryType::kQuadrant:
      diagram.cell_ = std::make_unique<CellDiagram>(BuildQuadrantDiagram(
          diagram.dataset_, options.cell_algorithm, options.diagram));
      break;
    case SkylineQueryType::kGlobal:
      diagram.cell_ = std::make_unique<CellDiagram>(BuildGlobalDiagram(
          diagram.dataset_, options.cell_algorithm, options.diagram));
      break;
    case SkylineQueryType::kDynamic:
      switch (options.dynamic_algorithm) {
        case DynamicAlgorithm::kBaseline:
          diagram.subcell_ = std::make_unique<SubcellDiagram>(
              BuildDynamicBaseline(diagram.dataset_, options.diagram));
          break;
        case DynamicAlgorithm::kSubset:
          diagram.subcell_ = std::make_unique<SubcellDiagram>(
              BuildDynamicSubset(diagram.dataset_, options.cell_algorithm,
                                 options.diagram));
          break;
        case DynamicAlgorithm::kScanning:
          diagram.subcell_ = std::make_unique<SubcellDiagram>(
              BuildDynamicScanning(diagram.dataset_, options.diagram));
          break;
      }
      break;
  }
#ifndef NDEBUG
  DebugValidate(diagram, options);
#endif
  return diagram;
}

std::span<const PointId> SkylineDiagram::Query(const Point2D& q) const {
  if (cell_ != nullptr) return cell_->Query(q);
  return subcell_->Query(q);
}

bool SkylineDiagram::OnBoundary(const Point2D& q) const {
  if (cell_ != nullptr) {
    return cell_->grid().IsOnVerticalLine(q.x) ||
           cell_->grid().IsOnHorizontalLine(q.y);
  }
  return subcell_->grid().x_axis().IsOnLine(2 * q.x) ||
         subcell_->grid().y_axis().IsOnLine(2 * q.y);
}

std::vector<PointId> SkylineDiagram::QueryExact(const Point2D& q) const {
  switch (type_) {
    case SkylineQueryType::kQuadrant: {
      // The half-open convention is exact everywhere for Q1 semantics.
      const auto span = Query(q);
      return std::vector<PointId>(span.begin(), span.end());
    }
    case SkylineQueryType::kGlobal:
      if (OnBoundary(q)) return GlobalSkyline(dataset_, q);
      break;
    case SkylineQueryType::kDynamic:
      if (OnBoundary(q)) return DynamicSkyline(dataset_, q);
      break;
  }
  const auto span = Query(q);
  return std::vector<PointId>(span.begin(), span.end());
}

std::vector<std::string> SkylineDiagram::QueryLabels(const Point2D& q) const {
  std::vector<std::string> labels;
  for (PointId id : QueryExact(q)) labels.push_back(dataset_.label(id));
  return labels;
}

}  // namespace skydia
