// Scanning construction of the quadrant skyline diagram (Algorithm 3 +
// Theorem 1 of the paper): scan cells from the top-right corner down-left and
// obtain each cell's skyline from its three already-computed neighbours with
// one multiset identity,
//
//   Sky(C[i][j]) = Sky(C[i+1][j]) + Sky(C[i][j+1]) - Sky(C[i+1][j+1]),
//
// except for cells that carry a point on their upper-right corner, whose
// skyline is exactly the corner point(s). The subtraction saturates at zero:
// a candidate dominated both by a point on the crossed vertical line and by
// one on the crossed horizontal line — while surviving among the strictly
// upper-right points — appears in neither neighbour sum but does appear in
// the subtrahend. Saturating handles this exactly (it also covers tie-heavy
// data, where whole groups share one grid line); the case analysis lives in
// tests/core/theorems_test.cc.
#ifndef SKYDIA_SRC_CORE_QUADRANT_SCANNING_H_
#define SKYDIA_SRC_CORE_QUADRANT_SCANNING_H_

#include "src/core/options.h"
#include "src/core/skyline_cell.h"
#include "src/geometry/dataset.h"

namespace skydia {

/// Deprecated direct entry point — new code should go through
/// SkylineDiagram::Build (src/core/diagram.h), which dispatches here.
/// Builds the first-quadrant skyline diagram with the scanning algorithm.
CellDiagram BuildQuadrantScanning(const Dataset& dataset,
                                  const DiagramOptions& options = {});

namespace internal {

/// The Theorem 1 combination step: out = (right + up) - upright over sorted
/// sets, subtraction saturating at zero. Shared with the incremental
/// maintenance code.
void ScanningMergeIdentity(std::span<const PointId> right,
                           std::span<const PointId> up,
                           std::span<const PointId> upright,
                           std::vector<PointId>* out);

}  // namespace internal
}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_QUADRANT_SCANNING_H_
