#include "src/core/query_engine.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <utility>

#include "src/common/logging.h"
#include "src/common/trace.h"
#include "src/skyline/query.h"

namespace skydia {

namespace {

/// One direct-mapped memo slot: the last query point that hashed here.
struct MemoEntry {
  int64_t x = 0;
  int64_t y = 0;
  SetId set = kEmptySetId;
  bool valid = false;
};

uint64_t MixQueryPoint(const Point2D& q) {
  // splitmix64 finalizer over the two coordinates; cheap and well spread
  // for the clustered query patterns the memo targets.
  uint64_t h = static_cast<uint64_t>(q.x) * 0x9E3779B97F4A7C15ull +
               static_cast<uint64_t>(q.y) * 0xC2B2AE3D27D4EB4Full;
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  return h;
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

QueryEngine::QueryEngine(const Dataset& dataset, const CellDiagram& diagram,
                         SkylineQueryType semantics,
                         const QueryEngineOptions& options)
    : index_(diagram),
      dataset_(&dataset),
      semantics_(semantics),
      options_(options) {
  if (options_.memo_entries > 0) {
    options_.memo_entries = std::bit_ceil(options_.memo_entries);
  }
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<size_t>(options_.num_threads));
  }
}

QueryEngine::QueryEngine(const Dataset& dataset, const SubcellDiagram& diagram,
                         const QueryEngineOptions& options)
    : index_(diagram),
      dataset_(&dataset),
      semantics_(SkylineQueryType::kDynamic),
      options_(options) {
  if (options_.memo_entries > 0) {
    options_.memo_entries = std::bit_ceil(options_.memo_entries);
  }
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<size_t>(options_.num_threads));
  }
}

std::span<const PointId> QueryEngine::Answer(const Point2D& q) const {
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  return index_.Query(q);
}

SetId QueryEngine::AnswerSetId(const Point2D& q) const {
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  return index_.LocateSet(q);
}

std::vector<PointId> QueryEngine::OracleAnswer(SkylineQueryType semantics,
                                               const Point2D& q) const {
  oracle_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  switch (semantics) {
    case SkylineQueryType::kQuadrant:
      return FirstQuadrantSkyline(*dataset_, q);
    case SkylineQueryType::kGlobal:
      return GlobalSkyline(*dataset_, q);
    case SkylineQueryType::kDynamic:
      return DynamicSkyline(*dataset_, q);
  }
  return {};
}

StatusOr<std::vector<PointId>> QueryEngine::Answer(
    const Point2D& q, const QueryOptions& options) const {
  const SkylineQueryType want = options.semantics.value_or(semantics_);
  if (want != semantics_) {
    if (!options.exact) {
      return Status::InvalidArgument(
          std::string("this engine serves ") +
          SkylineQueryTypeName(semantics_) + " semantics; answering a " +
          SkylineQueryTypeName(want) +
          " query needs the oracle path (set QueryOptions::exact)");
    }
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    return OracleAnswer(want, q);
  }
  // Quadrant answers are exact at every position (half-open cells match the
  // >= candidate rule); the other semantics only need the oracle when the
  // query sits exactly on a grid/bisector line.
  if (options.exact && semantics_ != SkylineQueryType::kQuadrant &&
      index_.OnBoundary(q)) {
    queries_served_.fetch_add(1, std::memory_order_relaxed);
    return OracleAnswer(semantics_, q);
  }
  const std::span<const PointId> result = Answer(q);
  return std::vector<PointId>(result.begin(), result.end());
}

StatusOr<std::vector<std::vector<PointId>>> QueryEngine::AnswerBatch(
    std::span<const Point2D> queries, const QueryOptions& options) const {
  const SkylineQueryType want = options.semantics.value_or(semantics_);
  if (want != semantics_ && !options.exact) {
    return Status::InvalidArgument(
        std::string("this engine serves ") + SkylineQueryTypeName(semantics_) +
        " semantics; answering a " + SkylineQueryTypeName(want) +
        " batch needs the oracle path (set QueryOptions::exact)");
  }
  std::vector<std::vector<PointId>> out(queries.size());
  if (want != semantics_) {
    for (size_t i = 0; i < queries.size(); ++i) {
      out[i] = OracleAnswer(want, queries[i]);
    }
    queries_served_.fetch_add(queries.size(), std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    return out;
  }
  std::vector<SetId> sets;
  AnswerBatch(queries, &sets);
  const bool may_fall_back =
      options.exact && semantics_ != SkylineQueryType::kQuadrant;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (may_fall_back && index_.OnBoundary(queries[i])) {
      out[i] = OracleAnswer(semantics_, queries[i]);
    } else {
      const std::span<const PointId> ids = index_.Get(sets[i]);
      out[i].assign(ids.begin(), ids.end());
    }
  }
  return out;
}

StatusOr<RangeSkylineSummary> QueryEngine::AnswerRange(
    const QueryRange& range) const {
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  return RangeSkylineSummarize(index_, range);
}

std::vector<PointId> QueryEngine::AnswerExact(const Point2D& q) const {
  return std::move(Answer(q, QueryOptions{.exact = true, .semantics = {}}))
      .value();
}

void QueryEngine::AnswerShard(std::span<const Point2D> queries,
                              SetId* out) const {
  SKYDIA_TRACE_SPAN("query.shard");
  const size_t memo_size = options_.memo_entries;
  std::vector<MemoEntry> memo(memo_size);
  uint64_t hits = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const Point2D& q = queries[i];
    const bool sampled = (i % kLatencySampleStride) == 0;
    const uint64_t start = sampled ? NowNanos() : 0;
    SetId set;
    MemoEntry* slot = nullptr;
    if (memo_size > 0) {
      slot = &memo[MixQueryPoint(q) & (memo_size - 1)];
      if (slot->valid && slot->x == q.x && slot->y == q.y) {
        out[i] = slot->set;
        ++hits;
        if (sampled) RecordLatency(NowNanos() - start);
        continue;
      }
    }
    set = index_.LocateSet(q);
    if (slot != nullptr) *slot = MemoEntry{q.x, q.y, set, true};
    out[i] = set;
    if (sampled) RecordLatency(NowNanos() - start);
  }
  queries_served_.fetch_add(queries.size(), std::memory_order_relaxed);
  memo_hits_.fetch_add(hits, std::memory_order_relaxed);
}

void QueryEngine::AnswerBatch(std::span<const Point2D> queries,
                              std::vector<SetId>* out) const {
  SKYDIA_TRACE_SPAN("query.batch");
  batches_.fetch_add(1, std::memory_order_relaxed);
  out->resize(queries.size());
  if (pool_ == nullptr || queries.size() < options_.parallel_batch_threshold) {
    AnswerShard(queries, out->data());
    return;
  }
  // One contiguous shard per worker: private memo and counters per shard,
  // disjoint output ranges, publication via the pool's WaitIdle handshake.
  const size_t shards = pool_->num_threads();
  const size_t chunk = (queries.size() + shards - 1) / shards;
  SetId* const out_data = out->data();
  // Request context is thread-local; re-establish it on each pool worker so
  // the shard spans carry the calling request's id.
  const uint64_t ctx = trace::CurrentRequestContext();
  pool_->ParallelFor(shards, [&, ctx](size_t shard) {
    const size_t begin = shard * chunk;
    if (begin >= queries.size()) return;
    trace::ScopedRequestContext ctx_scope(ctx);
    const size_t end = std::min(queries.size(), begin + chunk);
    AnswerShard(queries.subspan(begin, end - begin), out_data + begin);
  });
}

std::vector<SetId> QueryEngine::AnswerBatch(
    std::span<const Point2D> queries) const {
  std::vector<SetId> out;
  AnswerBatch(queries, &out);
  return out;
}

void QueryEngine::RecordLatency(uint64_t ns) const {
  const auto bucket = static_cast<size_t>(std::bit_width(ns | 1) - 1);
  latency_buckets_[std::min(bucket, kLatencyBuckets - 1)].fetch_add(
      1, std::memory_order_relaxed);
}

QueryEngineStats QueryEngine::Stats() const {
  QueryEngineStats stats;
  stats.queries_served = queries_served_.load(std::memory_order_relaxed);
  stats.memo_hits = memo_hits_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.oracle_fallbacks = oracle_fallbacks_.load(std::memory_order_relaxed);
  for (size_t b = 0; b < kLatencyBuckets; ++b) {
    const uint64_t count = latency_buckets_[b].load(std::memory_order_relaxed);
    stats.latency_bucket_counts[b] = count;
    stats.latency_samples += count;
    stats.approx_latency_sum_ns +=
        static_cast<double>(count) * 1.5 *
        static_cast<double>(uint64_t{1} << b);
  }
  if (stats.latency_samples == 0) return stats;
  const auto& counts = stats.latency_bucket_counts;
  const auto percentile = [&](double fraction) {
    const auto target = static_cast<uint64_t>(
        fraction * static_cast<double>(stats.latency_samples - 1));
    uint64_t seen = 0;
    for (size_t b = 0; b < kLatencyBuckets; ++b) {
      seen += counts[b];
      if (counts[b] > 0 && seen > target) {
        // Midpoint of the power-of-two bucket [2^b, 2^(b+1)).
        return 1.5 * static_cast<double>(uint64_t{1} << b);
      }
    }
    return 0.0;
  };
  stats.p50_latency_ns = percentile(0.50);
  stats.p99_latency_ns = percentile(0.99);
  return stats;
}

StatusOr<ServableDiagram> ServableDiagram::Load(
    const std::string& path, const QueryEngineOptions& options,
    SkylineQueryType cell_semantics) {
  if (cell_semantics == SkylineQueryType::kDynamic) {
    return Status::InvalidArgument(
        "cell_semantics must be kQuadrant or kGlobal; dynamic semantics are "
        "inferred from subcell blobs");
  }
  ServableDiagram servable;
  SKYDIA_TRACE_SPAN("load");
  auto as_cell = [&] {
    SKYDIA_TRACE_SPAN("load.blob");
    return LoadCellDiagram(path);
  }();
  if (as_cell.ok()) {
    servable.cell_ =
        std::make_unique<LoadedCellDiagram>(std::move(as_cell).value());
    SKYDIA_TRACE_SPAN("index.build");
    servable.engine_ = std::make_unique<QueryEngine>(
        servable.cell_->dataset, servable.cell_->diagram, cell_semantics,
        options);
    return servable;
  }
  auto as_subcell = [&] {
    SKYDIA_TRACE_SPAN("load.blob");
    return LoadSubcellDiagram(path);
  }();
  if (as_subcell.ok()) {
    servable.subcell_ =
        std::make_unique<LoadedSubcellDiagram>(std::move(as_subcell).value());
    SKYDIA_TRACE_SPAN("index.build");
    servable.engine_ = std::make_unique<QueryEngine>(
        servable.subcell_->dataset, servable.subcell_->diagram, options);
    return servable;
  }
  return as_cell.status();
}

ServableDiagram ServableDiagram::Wrap(
    std::shared_ptr<const Dataset> dataset,
    std::shared_ptr<const CellDiagram> diagram,
    SkylineQueryType cell_semantics, const QueryEngineOptions& options) {
  SKYDIA_CHECK(cell_semantics != SkylineQueryType::kDynamic);
  ServableDiagram servable;
  servable.shared_dataset_ = std::move(dataset);
  servable.shared_cell_ = std::move(diagram);
  SKYDIA_TRACE_SPAN("index.build");
  servable.engine_ = std::make_unique<QueryEngine>(
      *servable.shared_dataset_, *servable.shared_cell_, cell_semantics,
      options);
  return servable;
}

ServableDiagram ServableDiagram::Wrap(
    std::shared_ptr<const Dataset> dataset,
    std::shared_ptr<const SubcellDiagram> diagram,
    const QueryEngineOptions& options) {
  ServableDiagram servable;
  servable.shared_dataset_ = std::move(dataset);
  servable.shared_subcell_ = std::move(diagram);
  SKYDIA_TRACE_SPAN("index.build");
  servable.engine_ = std::make_unique<QueryEngine>(
      *servable.shared_dataset_, *servable.shared_subcell_, options);
  return servable;
}

}  // namespace skydia
