#include "src/core/quadrant_baseline.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/core/build_report.h"

namespace skydia {

CellDiagram BuildQuadrantBaseline(const Dataset& dataset,
                                  const DiagramOptions& options) {
  CellDiagram diagram = [&] {
    PhaseScope phase("grid");
    return CellDiagram(dataset, options.intern_result_sets);
  }();
  const CellGrid& grid = diagram.grid();
  const size_t n = dataset.size();

  // Sort once by (x asc, y asc); every per-cell scan reuses this order
  // (Algorithm 1, line 1).
  std::vector<PointId> order(n);
  {
    PhaseScope phase("sort");
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](PointId a, PointId b) {
      const Point2D& pa = dataset.point(a);
      const Point2D& pb = dataset.point(b);
      if (pa.x != pb.x) return pa.x < pb.x;
      if (pa.y != pb.y) return pa.y < pb.y;
      return a < b;
    });
  }

  std::vector<PointId> scratch;
  {
    PhaseScope phase("cells");
    for (uint32_t cy = 0; cy < grid.num_rows(); ++cy) {
      SKYDIA_TRACE_SPAN("cells.row");
      for (uint32_t cx = 0; cx < grid.num_columns(); ++cx) {
        // Candidates: xrank >= cx && yrank >= cy. Staircase over the sorted
        // order: within each x-group the minimal-y candidates come first, and
        // a group contributes its minimum-y candidates when that minimum
        // beats every earlier group's best.
        scratch.clear();
        int64_t best_y = std::numeric_limits<int64_t>::max();
        size_t i = 0;
        while (i < n) {
          const PointId first = order[i];
          const int64_t gx = dataset.point(first).x;
          size_t j = i;
          int64_t group_min = std::numeric_limits<int64_t>::max();
          bool group_seen = false;
          // One pass over the x-group: candidates appear in ascending y, so
          // the first candidate carries the group minimum.
          while (j < n && dataset.point(order[j]).x == gx) {
            const PointId id = order[j];
            if (grid.xrank(id) >= cx && grid.yrank(id) >= cy) {
              const int64_t y = dataset.point(id).y;
              if (!group_seen) {
                group_min = y;
                group_seen = true;
              }
              if (y == group_min && group_min < best_y) {
                scratch.push_back(id);
              }
            }
            ++j;
          }
          if (group_seen && group_min < best_y) best_y = group_min;
          i = j;
        }
        std::sort(scratch.begin(), scratch.end());
        diagram.set_cell(cx, cy, diagram.pool().InternCopy(scratch));
      }
    }
  }
  {
    PhaseScope phase("freeze");
    diagram.pool().Freeze();
  }
  return diagram;
}

}  // namespace skydia
