// BuildReport: per-phase wall times and structure counts for one
// SkylineDiagram::Build call, the profiling companion of src/common/trace.h.
//
// Builders mark their phases with PhaseScope (grid construction, the DSG /
// scan / sort passes, stripe fan-out, merge, arena freeze). Every PhaseScope
// always emits a trace span; when the thread also has a report installed
// (SkylineBuildOptions::report != nullptr inside Build()), top-level phases
// additionally accumulate into that report. Phases opened on ThreadPool
// workers never touch the report — the installing thread's phases already
// cover the full wall time — so no synchronization is needed.
//
// tests/core/build_report_test.cc pins the contract that the reported phase
// times sum to within 10% of total_seconds on the n=4096 fixture.
#ifndef SKYDIA_SRC_CORE_BUILD_REPORT_H_
#define SKYDIA_SRC_CORE_BUILD_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/trace.h"

namespace skydia {

/// One named build phase: how often it ran and its total wall time on the
/// thread driving the build.
struct BuildPhaseTiming {
  std::string name;
  uint64_t count = 0;
  double seconds = 0.0;
};

/// What one Build() call did and where the time went.
struct BuildReport {
  std::string diagram_type;  // "quadrant" | "global" | "dynamic"
  std::string algorithm;     // resolved spelling, e.g. "scanning"
  int parallelism = 1;

  /// Top-level phases in first-entry order; their seconds sum to ~total.
  std::vector<BuildPhaseTiming> phases;
  /// Wall time of the construction proper (excludes debug re-validation).
  double total_seconds = 0.0;

  uint64_t dataset_points = 0;
  uint64_t num_cells = 0;  // cells (quadrant/global) or subcells (dynamic)
  uint64_t num_distinct_sets = 0;
  uint64_t total_set_elements = 0;
  uint64_t arena_bytes = 0;   // interning arena footprint alone
  uint64_t approx_bytes = 0;  // arena + cell map footprint

  /// Human-readable multi-line rendering (the `--report` CLI output).
  std::string ToString() const;
};

namespace build_report_internal {
/// Installs `report` as the calling thread's phase sink for the lifetime of
/// the object. Null `report` installs nothing (PhaseScope stays trace-only).
class ReportInstaller {
 public:
  explicit ReportInstaller(BuildReport* report);
  ~ReportInstaller();

  ReportInstaller(const ReportInstaller&) = delete;
  ReportInstaller& operator=(const ReportInstaller&) = delete;

 private:
  BuildReport* prev_;
};
}  // namespace build_report_internal

/// RAII build-phase marker. Emits a trace span under `name` (a string
/// literal) and, when the calling thread has a BuildReport installed and the
/// phase is not nested inside another PhaseScope, adds its wall time to the
/// report. Cheap enough to leave in release builders: with tracing off and
/// no report installed it costs two thread-local reads and a branch.
class PhaseScope {
 public:
  explicit PhaseScope(const char* name);
  ~PhaseScope();

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  trace::Span span_;  // first: the span brackets the report timing
  const char* name_;
  uint64_t start_ns_ = 0;
  bool record_ = false;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_BUILD_REPORT_H_
