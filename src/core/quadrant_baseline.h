// Baseline skyline-diagram construction for quadrant skyline queries
// (Algorithm 1 of the paper): computes the skyline of every skyline cell from
// scratch with a sorted scan. O(n^3) time after the initial sort (the paper's
// bound; O(min(s^2, n^2) * n) under a limited domain of size s).
#ifndef SKYDIA_SRC_CORE_QUADRANT_BASELINE_H_
#define SKYDIA_SRC_CORE_QUADRANT_BASELINE_H_

#include "src/core/options.h"
#include "src/core/skyline_cell.h"
#include "src/geometry/dataset.h"

namespace skydia {

/// Deprecated direct entry point — new code should go through
/// SkylineDiagram::Build (src/core/diagram.h), which dispatches here.
/// Builds the first-quadrant skyline diagram with the baseline algorithm.
CellDiagram BuildQuadrantBaseline(const Dataset& dataset,
                                  const DiagramOptions& options = {});

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_QUADRANT_BASELINE_H_
