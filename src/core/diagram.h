// SkylineDiagram: the library's user-facing entry point.
//
// Builds the skyline diagram for one of the three query semantics and
// answers point-location queries in O(log n). This is the analogue of using
// a (k-th order) Voronoi diagram to answer kNN queries: build once, then
// every skyline query is a grid lookup instead of an O(n log n) computation.
//
// Example:
//   auto dataset = Dataset::Create(points, /*domain_size=*/1024);
//   auto diagram = SkylineDiagram::Build(std::move(dataset).value(),
//                                        SkylineQueryType::kQuadrant);
//   for (PointId id : diagram->Query({10, 80})) { ... }
#ifndef SKYDIA_SRC_CORE_DIAGRAM_H_
#define SKYDIA_SRC_CORE_DIAGRAM_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/global_diagram.h"
#include "src/core/options.h"
#include "src/core/skyline_cell.h"
#include "src/core/subcell_diagram.h"
#include "src/geometry/dataset.h"

namespace skydia {

struct BuildReport;

/// Which skyline query semantics the diagram precomputes.
enum class SkylineQueryType { kQuadrant, kGlobal, kDynamic };

const char* SkylineQueryTypeName(SkylineQueryType type);

/// Parses "quadrant" | "global" | "dynamic" (the CLI and wire spellings).
StatusOr<SkylineQueryType> ParseSkylineQueryType(const std::string& name);

/// Which dynamic-diagram construction to run.
enum class DynamicAlgorithm {
  kBaseline,  // Algorithm 5
  kSubset,    // Algorithm 6
  kScanning,  // Algorithm 7
};

const char* DynamicAlgorithmName(DynamicAlgorithm algorithm);

/// Algorithm selector for SkylineDiagram::Build, unified across the three
/// query semantics. Every named paper construction is reachable through this
/// one enum; Build() rejects combinations that do not exist (for example
/// kSubset for a quadrant diagram) with InvalidArgument.
enum class BuildAlgorithm {
  /// The recommended construction for the requested semantics and
  /// parallelism: scanning everywhere, except that a parallel quadrant build
  /// selects the striped DSG construction.
  kAuto,
  kBaseline,  // Algorithm 1 (quadrant/global) / Algorithm 5 (dynamic)
  kDsg,       // Algorithm 2 (quadrant/global); DSG-backed subset for dynamic
  kSubset,    // Algorithm 6 (dynamic only)
  kScanning,  // Algorithm 3 (quadrant/global) / Algorithm 7 (dynamic)
};

const char* BuildAlgorithmName(BuildAlgorithm algorithm);

/// Parses "auto" | "baseline" | "dsg" | "subset" | "scanning" (the CLI and
/// config spellings). Returns InvalidArgument on anything else.
StatusOr<BuildAlgorithm> ParseBuildAlgorithm(const std::string& name);

/// Options for SkylineDiagram::Build.
struct SkylineBuildOptions {
  /// Which construction to run (see BuildAlgorithm).
  BuildAlgorithm algorithm = BuildAlgorithm::kAuto;
  /// Worker threads for construction. 1 runs the sequential reference
  /// algorithms; > 1 selects the striped parallel builders (quadrant: DSG,
  /// dynamic: scanning — other algorithm choices are rejected, and global
  /// diagrams have no parallel construction).
  int parallelism = 1;
  DiagramOptions diagram;
  /// When non-null, Build() fills this with per-phase wall times and
  /// structure counts (see src/core/build_report.h). The pointee must
  /// outlive the Build() call; it is overwritten, not appended to.
  BuildReport* report = nullptr;
};

/// A built skyline diagram with its source dataset. Movable, not copyable.
class SkylineDiagram {
 public:
  using BuildOptions = SkylineBuildOptions;

  /// Builds the diagram. Takes ownership of the dataset (queries need it for
  /// labels and for the boundary fallback).
  static StatusOr<SkylineDiagram> Build(Dataset dataset, SkylineQueryType type,
                                        const BuildOptions& options = {});

  SkylineDiagram(SkylineDiagram&&) = default;
  SkylineDiagram& operator=(SkylineDiagram&&) = default;

  SkylineQueryType type() const { return type_; }
  const Dataset& dataset() const { return dataset_; }

  /// Answers the skyline query at `q` via point location. For quadrant
  /// diagrams the answer is exact for every `q`; for global and dynamic
  /// diagrams it is exact for `q` in the interior of its cell/subcell (see
  /// global_diagram.h) — use QueryExact for guaranteed-exact answers at
  /// arbitrary positions.
  std::span<const PointId> Query(const Point2D& q) const;

  /// Exact answer at any position: uses the diagram when `q` is interior and
  /// falls back to the O(n log n) reference evaluation on cell boundaries.
  std::vector<PointId> QueryExact(const Point2D& q) const;

  /// Query result rendered through the dataset's labels.
  std::vector<std::string> QueryLabels(const Point2D& q) const;

  /// The underlying cell diagram (quadrant/global builds only).
  const CellDiagram* cell_diagram() const { return cell_.get(); }
  /// The underlying subcell diagram (dynamic builds only).
  const SubcellDiagram* subcell_diagram() const { return subcell_.get(); }

 private:
  SkylineDiagram(Dataset dataset, SkylineQueryType type)
      : dataset_(std::move(dataset)), type_(type) {}

  /// True when `q` lies on a grid (or bisector) line of this diagram.
  bool OnBoundary(const Point2D& q) const;

  Dataset dataset_;
  SkylineQueryType type_;
  std::unique_ptr<CellDiagram> cell_;
  std::unique_ptr<SubcellDiagram> subcell_;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_DIAGRAM_H_
