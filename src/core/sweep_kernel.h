// Shared sweep machinery for the diagram builders — the one implementation of
// the primitives that the sequential and parallel constructions both replay:
//
//  * the DSG sweep (SweepState / InitialSweepState / RemoveBatch): the
//    paper's tempDSG walk that retires point batches as the sweep crosses
//    grid lines and promotes newly exposed children onto the skyline. Used
//    by the quadrant DSG builder and its stripe-parallel variant.
//  * the dynamic scanning row walk (DynamicRowScanner): Algorithm 7's
//    incremental candidate propagation across one subcell row, shared by the
//    sequential scanning builder and the stripe-parallel one.
//  * stripe partitioning and the deterministic pool remap-merge that turns
//    worker-private interning pools into one diagram pool with contents
//    independent of the thread count.
#ifndef SKYDIA_SRC_CORE_SWEEP_KERNEL_H_
#define SKYDIA_SRC_CORE_SWEEP_KERNEL_H_

#include <cstdint>
#include <set>
#include <vector>

#include "src/core/subcell_grid.h"
#include "src/geometry/dataset.h"
#include "src/skyline/dsg.h"
#include "src/skyline/interning.h"
#include "src/skyline/query.h"

namespace skydia {

// --- DSG sweep (quadrant builders) ------------------------------------------

/// Mutable sweep state: which points are still candidates, how many direct
/// parents each has left, and the current skyline.
struct SweepState {
  std::vector<uint8_t> alive;
  std::vector<uint32_t> parents_left;
  std::set<PointId> skyline;
};

/// The state before any removal: everything alive, parentless points on the
/// skyline.
SweepState InitialSweepState(const DirectedSkylineGraph& dsg, size_t n);

/// Removes `batch` from the state: phase 1 retires the points themselves,
/// phase 2 promotes surviving children whose last direct parent vanished.
/// Only points that were actually alive participate in phase 2 — batch lists
/// may contain points removed by an earlier (orthogonal) sweep, and their
/// children were already decremented then. `newly_removed` is scratch reused
/// across calls.
void RemoveBatch(const DirectedSkylineGraph& dsg,
                 const std::vector<PointId>& batch, SweepState* state,
                 std::vector<PointId>* newly_removed);

// --- dynamic scanning row walk (Algorithm 7) --------------------------------

/// Walks subcell rows of a dynamic diagram: maintains the row anchor (the
/// skyline of subcell (0, sy)) across horizontal lines and scans one row at a
/// time across the vertical lines. One instance per worker; all scratch is
/// reused across rows.
class DynamicRowScanner {
 public:
  DynamicRowScanner(const Dataset& dataset, const SubcellGrid& grid)
      : dataset_(dataset), grid_(grid) {}

  /// Seeds the row anchor with a from-scratch O(n log n) skyline computation
  /// at subcell (0, sy) — how a stripe enters at an arbitrary row.
  void SeedRow(uint32_t sy);

  /// Advances the anchor across horizontal line `sy - 1` (from row sy-1 to
  /// sy): only that line's contributors can change dominance.
  void AdvanceRow(uint32_t sy);

  /// Scans row `sy` left to right, interning every subcell's result into
  /// `pool` and writing the ids to `row_out[0 .. grid.num_columns())`.
  void ScanRow(uint32_t sy, SkylineSetPool* pool, SetId* row_out);

 private:
  const Dataset& dataset_;
  const SubcellGrid& grid_;
  std::vector<PointId> row_anchor_;
  std::vector<PointId> current_;
  std::vector<PointId> candidates_;
  std::vector<MappedCandidate> mapped_;
};

// --- stripe partitioning and deterministic merge ----------------------------

/// Half-open row range [begin, end) of `stripe` out of `stripes` over `rows`
/// rows (the last stripe may be short).
struct StripeRange {
  uint32_t begin = 0;
  uint32_t end = 0;
};
StripeRange StripeRows(uint32_t rows, uint32_t stripes, uint32_t stripe);

/// Interns every set of `src` into `dst`, returning the old-id -> new-id
/// map. Merging worker pools in stripe order makes the final diagram's
/// contents (and, with deduplication, its ids) independent of thread count.
std::vector<SetId> RemapPool(const SkylineSetPool& src, SkylineSetPool* dst);

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_SWEEP_KERNEL_H_
