#include "src/core/incremental.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/core/quadrant_scanning.h"

namespace skydia {

namespace {

/// Suffix maximum of dominator yranks: M[cx] = max{ yrank(d) : d dominates
/// `p` (coordinate-wise <=, one strictly <), xrank(d) >= cx } over the ranks
/// of `grid`, or -1 when no dominator qualifies. `skip` excludes one id from
/// the dominator scan (the point being mutated itself); pass the dataset's
/// size to scan everything. Cell (cx, cy) keeps its result across the
/// mutation iff cy <= M[cx]: a dominator is then a candidate there, so `p`
/// never enters that cell's skyline. Indices 0..bound inclusive are valid.
std::vector<int64_t> DominatorSuffixMax(const Dataset& dataset,
                                        const CellGrid& grid,
                                        const Point2D& p, PointId skip,
                                        uint32_t bound) {
  std::vector<int64_t> m(static_cast<size_t>(bound) + 2, -1);
  for (PointId id = 0; id < dataset.size(); ++id) {
    if (id == skip) continue;
    const Point2D& d = dataset.point(id);
    if (d.x > p.x || d.y > p.y || (d.x == p.x && d.y == p.y)) continue;
    const uint32_t xr = grid.xrank(id);
    SKYDIA_CHECK_LE(xr, bound);
    m[xr] = std::max(m[xr], static_cast<int64_t>(grid.yrank(id)));
  }
  for (uint32_t cx = bound + 1; cx-- > 0;) {
    m[cx] = std::max(m[cx], m[cx + 1]);
  }
  return m;
}

/// Refills exactly the changed staircase { cx <= rect_x, cy <= rect_y,
/// cy > m[cx] } with the Theorem 1 scan. Every neighbour a changed cell
/// reads is already final: unchanged cells were copied beforehand and
/// changed ones are visited in decreasing (cy, cx) order. Returns the
/// number of recomputed cells.
uint64_t RefillChangedCells(CellDiagram* next, uint32_t rect_x,
                            uint32_t rect_y,
                            const std::vector<int64_t>& m) {
  const CellGrid& grid = next->grid();
  uint64_t recomputed = 0;
  std::vector<PointId> scratch;
  for (uint32_t cy = rect_y + 1; cy-- > 0;) {
    for (uint32_t cx = rect_x + 1; cx-- > 0;) {
      if (static_cast<int64_t>(cy) <= m[cx]) continue;
      const std::vector<PointId>& corner = grid.PointsAtCorner(cx, cy);
      SetId result;
      if (!corner.empty()) {
        scratch = corner;
        std::sort(scratch.begin(), scratch.end());
        result = next->pool().InternCopy(scratch);
      } else {
        internal::ScanningMergeIdentity(next->CellSkyline(cx + 1, cy),
                                        next->CellSkyline(cx, cy + 1),
                                        next->CellSkyline(cx + 1, cy + 1),
                                        &scratch);
        result = next->pool().InternCopy(scratch);
      }
      next->set_cell(cx, cy, result);
      ++recomputed;
    }
  }
  return recomputed;
}

}  // namespace

namespace internal {

StatusOr<Dataset> DatasetWithPoint(const Dataset& dataset, const Point2D& p,
                                   std::optional<std::string> label,
                                   bool require_distinct_coordinates) {
  if (p.x < 0 || p.x >= dataset.domain_size() || p.y < 0 ||
      p.y >= dataset.domain_size()) {
    return Status::InvalidArgument("point outside the domain");
  }
  const auto new_id = static_cast<PointId>(dataset.size());
  std::vector<Point2D> points = dataset.points();
  points.push_back(p);
  std::vector<std::string> labels;
  if (dataset.has_labels() || label.has_value()) {
    labels.reserve(points.size());
    for (PointId id = 0; id < new_id; ++id) labels.push_back(dataset.label(id));
    if (label.has_value()) {
      labels.push_back(*std::move(label));
    } else {
      // insert-based to dodge GCC 12's -Wrestrict false positive (PR 105651)
      // on `"p" + std::to_string(...)` at -O2.
      labels.push_back(std::to_string(new_id));
      labels.back().insert(0, 1, 'p');
    }
  }
  DatasetOptions dataset_options;
  dataset_options.require_distinct_coordinates = require_distinct_coordinates;
  return Dataset::Create(std::move(points), dataset.domain_size(),
                         std::move(labels), dataset_options);
}

StatusOr<Dataset> DatasetWithoutPoint(const Dataset& dataset, PointId id,
                                      bool require_distinct_coordinates) {
  if (id >= dataset.size()) {
    return Status::NotFound("unknown point id " + std::to_string(id));
  }
  if (dataset.size() == 1) {
    return Status::FailedPrecondition(
        "cannot delete the last remaining point");
  }
  std::vector<Point2D> points;
  points.reserve(dataset.size() - 1);
  std::vector<std::string> labels;
  if (dataset.has_labels()) labels.reserve(dataset.size() - 1);
  for (PointId i = 0; i < dataset.size(); ++i) {
    if (i == id) continue;
    points.push_back(dataset.point(i));
    if (dataset.has_labels()) labels.push_back(dataset.label(i));
  }
  DatasetOptions dataset_options;
  dataset_options.require_distinct_coordinates = require_distinct_coordinates;
  return Dataset::Create(std::move(points), dataset.domain_size(),
                         std::move(labels), dataset_options);
}

}  // namespace internal

StatusOr<IncrementalQuadrantDiagram> IncrementalQuadrantDiagram::Create(
    Dataset dataset, const IncrementalOptions& options) {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot build a diagram of zero points");
  }
  if (options.require_distinct_coordinates &&
      !dataset.HasDistinctCoordinates()) {
    return Status::InvalidArgument(
        "require_distinct_coordinates was set but the seed dataset has "
        "duplicated coordinate values");
  }
  auto diagram = std::make_shared<CellDiagram>(
      BuildQuadrantScanning(dataset, options.diagram));
  return IncrementalQuadrantDiagram(
      std::make_shared<const Dataset>(std::move(dataset)), std::move(diagram),
      options);
}

StatusOr<PointId> IncrementalQuadrantDiagram::Insert(
    const Point2D& p, std::optional<std::string> label) {
  // Extend the dataset; the new id is the previous size. A rejected
  // extension (for example a duplicated coordinate under
  // require_distinct_coordinates) leaves this diagram untouched.
  const auto new_id = static_cast<PointId>(dataset_->size());
  auto new_dataset = internal::DatasetWithPoint(
      *dataset_, p, std::move(label), options_.require_distinct_coordinates);
  if (!new_dataset.ok()) return new_dataset.status();

  const CellGrid& old_grid = diagram_->grid();
  const bool x_existed = old_grid.IsOnVerticalLine(p.x);
  const bool y_existed = old_grid.IsOnHorizontalLine(p.y);

  auto next = std::make_shared<CellDiagram>(
      *new_dataset, options_.diagram.intern_result_sets);
  const CellGrid& grid = next->grid();
  const uint32_t r = grid.xrank(new_id);
  const uint32_t ry = grid.yrank(new_id);
  const uint32_t cols = grid.num_columns();
  const uint32_t rows = grid.num_rows();
  SKYDIA_CHECK_EQ(cols, old_grid.num_columns() + (x_existed ? 0 : 1));
  SKYDIA_CHECK_EQ(rows, old_grid.num_rows() + (y_existed ? 0 : 1));

  // New column -> old column with identical candidate set (p excluded).
  const auto old_cx = [&](uint32_t cx) {
    return (x_existed || cx <= r) ? cx : cx - 1;
  };
  const auto old_cy = [&](uint32_t cy) {
    return (y_existed || cy <= ry) ? cy : cy - 1;
  };

  // A cell keeps its result wherever a dominator of p is also a candidate.
  const std::vector<int64_t> m =
      DominatorSuffixMax(*new_dataset, grid, p, new_id, r);

  // Phase 1: every unchanged cell — p not a candidate, or dominated there —
  // keeps its previous result. The fast path adopts the old pool wholesale
  // (one arena copy; old SetIds stay valid in the new pool), so an unchanged
  // cell copies a single integer instead of re-interning its set — with
  // millions of cells the per-set hashing would otherwise dominate the
  // mutation's wall time. Adoption carries no-longer-referenced sets
  // forward; once the pool doubles past the last compaction watermark the
  // slow path re-interns only referenced sets (memoized per old SetId),
  // garbage-collecting the pool.
  const SkylineSetPool& old_pool = diagram_->pool();
  const bool compact = old_pool.size() > 2 * pool_compaction_watermark_;
  if (!compact) {
    next->pool().AdoptFrom(old_pool);
    for (uint32_t cy = 0; cy < rows; ++cy) {
      for (uint32_t cx = 0; cx < cols; ++cx) {
        const bool changed =
            cx <= r && cy <= ry && static_cast<int64_t>(cy) > m[cx];
        if (changed) continue;
        next->set_cell(cx, cy, diagram_->cell_set(old_cx(cx), old_cy(cy)));
      }
    }
  } else {
    constexpr SetId kUnmapped = ~SetId{0};
    std::vector<SetId> remap(old_pool.size(), kUnmapped);
    for (uint32_t cy = 0; cy < rows; ++cy) {
      for (uint32_t cx = 0; cx < cols; ++cx) {
        const bool changed =
            cx <= r && cy <= ry && static_cast<int64_t>(cy) > m[cx];
        if (changed) continue;
        const SetId old_set = diagram_->cell_set(old_cx(cx), old_cy(cy));
        SetId& mapped = remap[old_set];
        if (mapped == kUnmapped) {
          mapped = next->pool().InternCopy(old_pool.Get(old_set));
        }
        next->set_cell(cx, cy, mapped);
      }
    }
  }

  // Phase 2: refill the changed staircase with the Theorem 1 scan.
  last_insert_recomputed_cells_ = RefillChangedCells(next.get(), r, ry, m);

  next->pool().Freeze();
  if (compact) pool_compaction_watermark_ = next->pool().size();
  dataset_ =
      std::make_shared<const Dataset>(std::move(new_dataset).value());
  diagram_ = std::move(next);
  return new_id;
}

Status IncrementalQuadrantDiagram::Delete(PointId id) {
  // Shrink the dataset; ids above the deleted one shift down by one. On
  // error (NotFound / FailedPrecondition) the diagram is untouched.
  auto new_dataset = internal::DatasetWithoutPoint(
      *dataset_, id, options_.require_distinct_coordinates);
  if (!new_dataset.ok()) return new_dataset.status();
  const Point2D p = dataset_->point(id);

  const CellGrid& old_grid = diagram_->grid();
  const uint32_t r_old = old_grid.xrank(id);
  const uint32_t ry_old = old_grid.yrank(id);
  const bool x_removed = old_grid.PointsAtColumn(r_old).size() == 1;
  const bool y_removed = old_grid.PointsAtRow(ry_old).size() == 1;

  auto next = std::make_shared<CellDiagram>(
      *new_dataset, options_.diagram.intern_result_sets);
  const CellGrid& grid = next->grid();
  const uint32_t cols = grid.num_columns();
  const uint32_t rows = grid.num_rows();
  SKYDIA_CHECK_EQ(cols, old_grid.num_columns() - (x_removed ? 1 : 0));
  SKYDIA_CHECK_EQ(rows, old_grid.num_rows() - (y_removed ? 1 : 0));

  // New column -> old column with identical candidate set (the deleted
  // point excluded: when its grid line disappears, columns at or above its
  // old rank shift up by one in the old grid).
  const auto old_cx = [&](uint32_t cx) {
    return (x_removed && cx >= r_old) ? cx + 1 : cx;
  };
  const auto old_cy = [&](uint32_t cy) {
    return (y_removed && cy >= ry_old) ? cy + 1 : cy;
  };

  // The changed staircase lives below the deleted point's old ranks; when
  // its grid line disappears the rectangle shrinks by one (the merged
  // column's candidate set never contained the point).
  const int64_t rect_x = static_cast<int64_t>(r_old) - (x_removed ? 1 : 0);
  const int64_t rect_y = static_cast<int64_t>(ry_old) - (y_removed ? 1 : 0);

  // Dominators of the deleted point carry the same ranks in both grids
  // within the rectangle (their coordinates are strictly below any removed
  // line), so the suffix maximum is computed directly on the new grid.
  std::vector<int64_t> m;
  if (rect_x >= 0 && rect_y >= 0) {
    m = DominatorSuffixMax(*new_dataset, grid, p, new_dataset->size(),
                           static_cast<uint32_t>(rect_x));
  }

  // Phase 1: copy every unchanged cell, renumbering member ids. The deleted
  // id never appears in an unchanged cell's result (it changed or was never
  // in the skyline there), so the renumbering is a pure shift. The fast
  // path adopts the old pool wholesale with the shift applied during the
  // arena copy, so unchanged cells keep their old SetId verbatim; the
  // compacting slow path re-interns only referenced sets, memoizing the
  // shifted copy per old SetId (see Insert).
  const SkylineSetPool& old_pool = diagram_->pool();
  const bool compact = old_pool.size() > 2 * pool_compaction_watermark_;
  if (!compact) {
    next->pool().AdoptFrom(old_pool, id);
    for (uint32_t cy = 0; cy < rows; ++cy) {
      for (uint32_t cx = 0; cx < cols; ++cx) {
        const bool changed = static_cast<int64_t>(cx) <= rect_x &&
                             static_cast<int64_t>(cy) <= rect_y &&
                             static_cast<int64_t>(cy) > m[cx];
        if (changed) continue;
        next->set_cell(cx, cy, diagram_->cell_set(old_cx(cx), old_cy(cy)));
      }
    }
  } else {
    constexpr SetId kUnmapped = ~SetId{0};
    std::vector<SetId> remap(old_pool.size(), kUnmapped);
    std::vector<PointId> scratch;
    for (uint32_t cy = 0; cy < rows; ++cy) {
      for (uint32_t cx = 0; cx < cols; ++cx) {
        const bool changed = static_cast<int64_t>(cx) <= rect_x &&
                             static_cast<int64_t>(cy) <= rect_y &&
                             static_cast<int64_t>(cy) > m[cx];
        if (changed) continue;
        const SetId old_set_id = diagram_->cell_set(old_cx(cx), old_cy(cy));
        SetId& mapped = remap[old_set_id];
        if (mapped == kUnmapped) {
          const std::span<const PointId> old_set = old_pool.Get(old_set_id);
          scratch.clear();
          scratch.reserve(old_set.size());
          for (const PointId member : old_set) {
            SKYDIA_CHECK_NE(member, id);
            scratch.push_back(member > id ? member - 1 : member);
          }
          mapped = next->pool().InternCopy(scratch);
        }
        next->set_cell(cx, cy, mapped);
      }
    }
  }

  // Phase 2: refill the changed staircase (possibly empty when the deleted
  // point held the minimal unique coordinate of a dimension).
  last_delete_recomputed_cells_ =
      (rect_x >= 0 && rect_y >= 0)
          ? RefillChangedCells(next.get(), static_cast<uint32_t>(rect_x),
                               static_cast<uint32_t>(rect_y), m)
          : 0;

  next->pool().Freeze();
  if (compact) pool_compaction_watermark_ = next->pool().size();
  dataset_ =
      std::make_shared<const Dataset>(std::move(new_dataset).value());
  diagram_ = std::move(next);
  return Status::OK();
}

}  // namespace skydia
