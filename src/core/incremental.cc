#include "src/core/incremental.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/core/quadrant_scanning.h"

namespace skydia {

StatusOr<IncrementalQuadrantDiagram> IncrementalQuadrantDiagram::Create(
    Dataset dataset, const IncrementalOptions& options) {
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot build a diagram of zero points");
  }
  if (options.require_distinct_coordinates &&
      !dataset.HasDistinctCoordinates()) {
    return Status::InvalidArgument(
        "require_distinct_coordinates was set but the seed dataset has "
        "duplicated coordinate values");
  }
  auto diagram = std::make_unique<CellDiagram>(
      BuildQuadrantScanning(dataset, options.diagram));
  return IncrementalQuadrantDiagram(std::move(dataset), std::move(diagram),
                                    options);
}

StatusOr<PointId> IncrementalQuadrantDiagram::Insert(const Point2D& p) {
  if (p.x < 0 || p.x >= dataset_.domain_size() || p.y < 0 ||
      p.y >= dataset_.domain_size()) {
    return Status::InvalidArgument("point outside the domain");
  }

  // Extend the dataset; the new id is the previous size.
  const auto new_id = static_cast<PointId>(dataset_.size());
  std::vector<Point2D> points = dataset_.points();
  points.push_back(p);
  std::vector<std::string> labels;
  if (dataset_.has_labels()) {
    labels.reserve(points.size());
    for (PointId id = 0; id < new_id; ++id) labels.push_back(dataset_.label(id));
    // insert-based to dodge GCC 12's -Wrestrict false positive (PR 105651)
    // on `"p" + std::to_string(...)` at -O2.
    labels.push_back(std::to_string(new_id));
    labels.back().insert(0, 1, 'p');
  }
  DatasetOptions dataset_options;
  dataset_options.require_distinct_coordinates =
      options_.require_distinct_coordinates;
  auto new_dataset = Dataset::Create(std::move(points), dataset_.domain_size(),
                                     std::move(labels), dataset_options);
  // A rejected extension (for example a duplicated coordinate under
  // require_distinct_coordinates) leaves this diagram untouched.
  if (!new_dataset.ok()) return new_dataset.status();

  const CellGrid& old_grid = diagram_->grid();
  const bool x_existed = old_grid.IsOnVerticalLine(p.x);
  const bool y_existed = old_grid.IsOnHorizontalLine(p.y);

  auto next = std::make_unique<CellDiagram>(
      *new_dataset, options_.diagram.intern_result_sets);
  const CellGrid& grid = next->grid();
  const uint32_t r = grid.xrank(new_id);
  const uint32_t ry = grid.yrank(new_id);
  const uint32_t cols = grid.num_columns();
  const uint32_t rows = grid.num_rows();
  SKYDIA_CHECK_EQ(cols, old_grid.num_columns() + (x_existed ? 0 : 1));
  SKYDIA_CHECK_EQ(rows, old_grid.num_rows() + (y_existed ? 0 : 1));

  // New column -> old column with identical candidate set (p excluded).
  const auto old_cx = [&](uint32_t cx) {
    return (x_existed || cx <= r) ? cx : cx - 1;
  };
  const auto old_cy = [&](uint32_t cy) {
    return (y_existed || cy <= ry) ? cy : cy - 1;
  };

  // Phase 1: the unchanged region (p is not a candidate) copies old results.
  for (uint32_t cy = 0; cy < rows; ++cy) {
    for (uint32_t cx = 0; cx < cols; ++cx) {
      if (cx <= r && cy <= ry) continue;
      next->set_cell(cx, cy,
                     next->pool().InternCopy(
                         diagram_->CellSkyline(old_cx(cx), old_cy(cy))));
    }
  }

  // Phase 2: refill the affected rectangle with the Theorem 1 scan, seeded
  // by the already-copied column r+1 and row ry+1.
  std::vector<PointId> scratch;
  for (uint32_t cy = ry + 1; cy-- > 0;) {
    for (uint32_t cx = r + 1; cx-- > 0;) {
      const std::vector<PointId>& corner = grid.PointsAtCorner(cx, cy);
      SetId result;
      if (!corner.empty()) {
        scratch = corner;
        std::sort(scratch.begin(), scratch.end());
        result = next->pool().InternCopy(scratch);
      } else {
        internal::ScanningMergeIdentity(next->CellSkyline(cx + 1, cy),
                                        next->CellSkyline(cx, cy + 1),
                                        next->CellSkyline(cx + 1, cy + 1),
                                        &scratch);
        result = next->pool().InternCopy(scratch);
      }
      next->set_cell(cx, cy, result);
    }
  }

  next->pool().Freeze();
  last_insert_recomputed_cells_ =
      static_cast<uint64_t>(r + 1) * (ry + 1);
  dataset_ = std::move(new_dataset).value();
  diagram_ = std::move(next);
  return new_id;
}

}  // namespace skydia
