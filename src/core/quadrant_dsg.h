// Directed-skyline-graph construction of the quadrant skyline diagram
// (Algorithm 2 of the paper).
//
// Instead of recomputing every cell from scratch, the builder maintains the
// skyline incrementally: crossing a grid line removes exactly the points on
// that line, and a removed point's direct children (in the DSG) with no
// remaining direct parents become new skyline members. The sweep removes
// points in monotone rank order, so dominators are always removed no later
// than the points they dominate, which is what makes direct-parent counting
// sufficient (see src/skyline/dsg.h).
//
// Worst case O(n^3) like the baseline, but the work per row is proportional
// to the number of direct links, which is far below n^2 in practice (§IV.B).
#ifndef SKYDIA_SRC_CORE_QUADRANT_DSG_H_
#define SKYDIA_SRC_CORE_QUADRANT_DSG_H_

#include "src/core/options.h"
#include "src/core/skyline_cell.h"
#include "src/geometry/dataset.h"

namespace skydia {

/// Deprecated direct entry point — new code should go through
/// SkylineDiagram::Build (src/core/diagram.h), which dispatches here.
/// Builds the first-quadrant skyline diagram with the DSG algorithm.
CellDiagram BuildQuadrantDsg(const Dataset& dataset,
                             const DiagramOptions& options = {});

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_QUADRANT_DSG_H_
