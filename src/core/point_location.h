// PointLocationIndex: the serving-side point-location structure over a built
// skyline diagram — the step that makes the diagram the Voronoi counterpart
// for skyline queries. Build once, then every query is two binary searches
// over flat sorted line arrays plus one table load and one arena read:
// O(log s) with s distinct grid lines per axis, touching four cache lines
// end to end (two line arrays, the cell table, the interned arena).
//
// The index is a *view*: it copies the O(s) grid-line coordinates into dense
// arrays it owns, and references the diagram's cell table and interned result
// pool in place (both are flat already — the cell table is row-major SetIds,
// the pool is one arena, see src/skyline/interning.h). It must not outlive
// the diagram it was built from. Rebuilding after deserialization is O(s)
// and allocation-light, so a loaded blob is immediately servable.
//
// Boundary and tie-breaking convention (pinned by
// tests/core/point_location_test.cc; keep the builders, the validator and
// this index in sync):
//
//   * Column cx covers the half-open x-interval (line[cx-1], line[cx]].
//     A query exactly ON a grid line belongs to the column that *ends* at
//     that line (the left/lower side); symmetrically for rows. Column 0
//     extends to -inf, the last column to +inf, so every integer query —
//     including positions outside the data's bounding box and negative
//     coordinates — locates to a cell.
//   * Quadrant semantics: the convention is exact for EVERY query position,
//     including queries on grid lines and on data points. The first-quadrant
//     candidate set {p : p.x >= q.x, p.y >= q.y} is constant on each
//     half-open cell, lines included (see src/geometry/grid.h).
//   * Global and dynamic semantics: exact for queries in the open interior
//     of a cell/subcell. A query exactly on a line is answered with the
//     adjacent interior result on the line's left/below side, which can
//     differ from the true boundary answer when the tie flips a dominance
//     pair. Boundary-exact serving goes through QueryEngine::AnswerExact,
//     which detects boundary hits via OnBoundary() and falls back to the
//     O(n log n) oracle.
//   * Dynamic diagrams also cut on bisector lines, which live on
//     half-integers; the index stores those axes in doubled coordinates and
//     scales queries by 2 internally. Integer queries therefore never land
//     between two adjacent doubled lines.
#ifndef SKYDIA_SRC_CORE_POINT_LOCATION_H_
#define SKYDIA_SRC_CORE_POINT_LOCATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/skyline_cell.h"
#include "src/core/subcell_diagram.h"
#include "src/geometry/point.h"
#include "src/skyline/interning.h"

namespace skydia {

/// Flat point-location index over a cell (quadrant/global) or subcell
/// (dynamic) diagram. Cheap to build, immutable afterwards; all methods are
/// const and safe to call concurrently.
class PointLocationIndex {
 public:
  /// Builds the index over a cell diagram (quadrant or global semantics).
  explicit PointLocationIndex(const CellDiagram& diagram);
  /// Builds the index over a subcell diagram (dynamic semantics).
  explicit PointLocationIndex(const SubcellDiagram& diagram);

  /// Stripe-restricted variants: the index covers only rows
  /// [row_begin, row_end) of the diagram (0 <= row_begin < row_end <=
  /// num_rows). The x axis stays complete; the y axis keeps only the lines
  /// interior to the stripe, so Locate() is correct exactly for queries
  /// whose global row falls inside the stripe — the router must send each
  /// query to the stripe that owns its row (see ShardedServableDiagram).
  PointLocationIndex(const CellDiagram& diagram, uint32_t row_begin,
                     uint32_t row_end);
  PointLocationIndex(const SubcellDiagram& diagram, uint32_t row_begin,
                     uint32_t row_end);

  /// Grid cell of a located query.
  struct CellRef {
    uint32_t cx;
    uint32_t cy;
  };

  /// Locates `q` under the half-open convention above. Total: every query
  /// maps to exactly one cell.
  CellRef Locate(const Point2D& q) const {
    return CellRef{SlabOf(x_lines_, scale_ * q.x),
                   SlabOf(y_lines_, scale_ * q.y)};
  }

  /// Interned result-set id of the cell containing `q`.
  SetId LocateSet(const Point2D& q) const {
    const CellRef c = Locate(q);
    return cells_[static_cast<uint64_t>(c.cy) * num_columns_ + c.cx];
  }

  /// The query answer: sorted point ids of the cell containing `q`. The span
  /// points into the diagram's interned arena and stays valid as long as the
  /// diagram does.
  std::span<const PointId> Query(const Point2D& q) const {
    return pool_->Get(LocateSet(q));
  }

  /// True when `q` lies exactly on a grid line (or, for dynamic diagrams, a
  /// bisector line) of either axis — the positions where global/dynamic
  /// answers carry the interior-adjacent convention instead of being exact.
  bool OnBoundary(const Point2D& q) const {
    return OnLine(x_lines_, scale_ * q.x) || OnLine(y_lines_, scale_ * q.y);
  }

  uint32_t num_columns() const { return num_columns_; }
  uint32_t num_rows() const { return num_rows_; }
  uint64_t num_cells() const { return cells_.size(); }
  const SkylineSetPool& pool() const { return *pool_; }

  /// Interned result of cell (cx, cy) — rows are stripe-local for
  /// stripe-restricted indexes. Feeds the range-query sweeps.
  SetId cell_set(uint32_t cx, uint32_t cy) const {
    return cells_[static_cast<uint64_t>(cy) * num_columns_ + cx];
  }

  /// The i-th y grid line in the index's internal coordinate system
  /// (doubled for dynamic diagrams; compare against scale() * q.y). Feeds
  /// the shard router's stripe-boundary table.
  int64_t y_line_value(uint32_t i) const { return y_lines_[i]; }
  uint32_t num_y_lines() const {
    return static_cast<uint32_t>(y_lines_.size());
  }
  int64_t scale() const { return scale_; }

  /// Members of an interned set (for callers holding SetIds from LocateSet).
  std::span<const PointId> Get(SetId id) const { return pool_->Get(id); }

  /// Builds the cell -> polyomino table: connected components of 4-adjacent
  /// cells with the same interned result (Definition 6's maximal constant-
  /// skyline regions, generalized to subcell grids). Optional because it
  /// costs O(cells) memory; PolyominoOf requires it.
  void BuildPolyominoTable();
  bool has_polyomino_table() const { return !cell_polyomino_.empty(); }
  uint32_t num_polyominoes() const { return num_polyominoes_; }

  /// Polyomino id of the located cell (requires BuildPolyominoTable).
  uint32_t PolyominoOf(const Point2D& q) const {
    const CellRef c = Locate(q);
    return cell_polyomino_[static_cast<uint64_t>(c.cy) * num_columns_ + c.cx];
  }

  /// Heap footprint of the structures the index owns (excludes the diagram's
  /// cell table and arena, which it only references).
  uint64_t OwnedBytes() const;

 private:
  static uint32_t SlabOf(const std::vector<int64_t>& lines, int64_t v);
  static bool OnLine(const std::vector<int64_t>& lines, int64_t v);

  /// Shrinks a freshly built full index to rows [row_begin, row_end).
  void RestrictRows(uint32_t row_begin, uint32_t row_end);

  std::vector<int64_t> x_lines_;  // sorted; scaled by `scale_`
  std::vector<int64_t> y_lines_;
  int64_t scale_ = 1;  // 1 for cell diagrams, 2 for (doubled) subcell axes
  uint32_t num_columns_ = 0;
  uint32_t num_rows_ = 0;
  std::span<const SetId> cells_;  // the diagram's row-major cell table
  const SkylineSetPool* pool_ = nullptr;
  std::vector<uint32_t> cell_polyomino_;  // empty until BuildPolyominoTable
  uint32_t num_polyominoes_ = 0;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_POINT_LOCATION_H_
