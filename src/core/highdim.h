// High-dimensional skyline diagrams (§IV.E): the baseline, DSG and scanning
// constructions generalized to d >= 2 over the O(n^d) hyper-cell grid.
//
// Cell space is the product of per-dimension coordinate ranks with the same
// half-open convention as the 2-D CellGrid; candidates of cell I are the
// points with rank_k >= I_k in every dimension, and the result is the
// first-orthant skyline.
//
// Two scanning variants are provided:
//  * BuildNdScanning — candidate-union form (provably exact, including under
//    ties): Sky(C_I) ⊆ ∪_k Sky(C_{I+e_k}) ∪ corner(I), and skyline-of-
//    candidates equals the true skyline by transitivity.
//  * BuildNdScanningInclusionExclusion — the paper's alternating-sum formula
//    over the 2^d - 1 upper neighbours followed by an outer Skyline() call,
//    kept for fidelity and cross-checked against the exact variants in the
//    test suite.
//
// These builders target the small instances the complexity O(n^{d+1}) allows;
// they exist to reproduce the paper's extension section, not for scale.
#ifndef SKYDIA_SRC_CORE_HIGHDIM_H_
#define SKYDIA_SRC_CORE_HIGHDIM_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/core/options.h"
#include "src/geometry/dataset.h"
#include "src/skyline/interning.h"

namespace skydia {

/// Coordinate-compressed hyper-cell grid for a d-dimensional dataset.
class NdGrid {
 public:
  explicit NdGrid(const DatasetNd& dataset);

  int dims() const { return static_cast<int>(values_.size()); }
  /// Cells along dimension `d` (= distinct values + 1).
  uint32_t cells_in_dim(int d) const {
    return static_cast<uint32_t>(values_[d].size()) + 1;
  }
  uint64_t num_cells() const { return num_cells_; }

  uint32_t rank(PointId id, int d) const { return ranks_[d][id]; }

  /// Mixed-radix flat index of a cell index vector.
  uint64_t Flatten(const std::vector<uint32_t>& idx) const;
  /// Inverse of Flatten.
  void Unflatten(uint64_t flat, std::vector<uint32_t>* idx) const;

  /// Cell index of a query coordinate along dimension d (count of distinct
  /// values strictly below; half-open convention).
  uint32_t IndexOf(int d, int64_t q) const;

  /// Points whose rank vector equals `idx` exactly (the cell's upper corner),
  /// or empty.
  const std::vector<PointId>& PointsAtCorner(uint64_t flat_idx) const;

 private:
  std::vector<std::vector<int64_t>> values_;   // [dim] sorted distinct
  std::vector<std::vector<uint32_t>> ranks_;   // [dim][point]
  std::unordered_map<uint64_t, std::vector<PointId>> corners_;
  std::vector<PointId> empty_;
  uint64_t num_cells_ = 1;
};

/// Result container for d-dimensional diagrams.
class NdCellDiagram {
 public:
  NdCellDiagram(const DatasetNd& dataset, bool intern_result_sets = true)
      : grid_(dataset),
        pool_(std::make_unique<SkylineSetPool>(intern_result_sets)),
        cells_(grid_.num_cells(), kEmptySetId) {}

  NdCellDiagram(NdCellDiagram&&) = default;
  NdCellDiagram& operator=(NdCellDiagram&&) = default;

  const NdGrid& grid() const { return grid_; }
  SkylineSetPool& pool() { return *pool_; }
  const SkylineSetPool& pool() const { return *pool_; }

  SetId cell_set(uint64_t flat) const { return cells_[flat]; }
  void set_cell(uint64_t flat, SetId id) { cells_[flat] = id; }

  std::span<const PointId> CellSkyline(uint64_t flat) const {
    return pool_->Get(cells_[flat]);
  }

  /// Point-location for a d-dimensional query (first-orthant semantics,
  /// exact everywhere like the 2-D quadrant diagram).
  std::span<const PointId> Query(const std::vector<int64_t>& q) const;

  bool SameResults(const NdCellDiagram& other) const;

 private:
  NdGrid grid_;
  std::unique_ptr<SkylineSetPool> pool_;
  std::vector<SetId> cells_;
};

/// Algorithm 1 generalized: per-cell skyline from scratch. O(n^d * n log n).
NdCellDiagram BuildNdBaseline(const DatasetNd& dataset,
                              const DiagramOptions& options = {});

/// Algorithm 2 generalized: per row-prefix DSG sweep along the last
/// dimension. O(n^{d-1} * links).
NdCellDiagram BuildNdDsg(const DatasetNd& dataset,
                         const DiagramOptions& options = {});

/// Exact scanning via candidate union over the d upper neighbours.
NdCellDiagram BuildNdScanning(const DatasetNd& dataset,
                              const DiagramOptions& options = {});

/// The paper's inclusion-exclusion scanning formula (§IV.E.3).
NdCellDiagram BuildNdScanningInclusionExclusion(
    const DatasetNd& dataset, const DiagramOptions& options = {});

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_HIGHDIM_H_
