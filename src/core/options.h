// Construction options shared by the diagram builders.
#ifndef SKYDIA_SRC_CORE_OPTIONS_H_
#define SKYDIA_SRC_CORE_OPTIONS_H_

namespace skydia {

/// Options accepted by every diagram builder. Defaults reproduce the paper's
/// algorithms; the toggles exist for the ablation benchmarks.
struct DiagramOptions {
  /// Hash-cons the per-cell result sets (see SkylineSetPool). Turning this
  /// off makes every cell store a private copy — the `abl-intern` ablation.
  bool intern_result_sets = true;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_OPTIONS_H_
