// Incremental maintenance of the dynamic skyline diagram under point
// insertion and deletion.
//
// Mutating one point p leaves most of the subcell arrangement reusable:
//
//  * Insert: every old grid/bisector line survives (the doubled line set
//    { a + b } only gains members), so each new subcell nests inside exactly
//    one old subcell and its representative is strictly interior to it. At
//    that representative the old result set decides everything by
//    transitivity: if some old skyline member dynamically dominates p the
//    subcell keeps its result verbatim; otherwise the new result is the old
//    members p fails to dominate, plus p.
//  * Delete: the line set only shrinks. When the deleted point is absent
//    from the old result at the new representative, removing it cannot
//    promote anything (a point it dominated is also dominated by a
//    surviving skyline member), so the subcell copies its old result with
//    ids renumbered. Only subcells whose old result contained the point —
//    or whose new representative lands exactly on a removed line, where the
//    old diagram's interior-exactness contract does not apply — are
//    recomputed from scratch.
//
// Ids renumber on Delete exactly like IncrementalQuadrantDiagram
// (new_id = old_id - 1 for every old_id > deleted; labels follow).
#ifndef SKYDIA_SRC_CORE_INCREMENTAL_DYNAMIC_H_
#define SKYDIA_SRC_CORE_INCREMENTAL_DYNAMIC_H_

#include <memory>
#include <optional>
#include <string>

#include "src/common/status.h"
#include "src/core/incremental.h"
#include "src/core/subcell_diagram.h"
#include "src/geometry/dataset.h"

namespace skydia {

/// A dynamic (subcell) skyline diagram that supports inserting and deleting
/// points.
class IncrementalDynamicDiagram {
 public:
  /// Builds the initial diagram (scanning construction).
  static StatusOr<IncrementalDynamicDiagram> Create(
      Dataset dataset, const IncrementalOptions& options = {});

  IncrementalDynamicDiagram(IncrementalDynamicDiagram&&) = default;
  IncrementalDynamicDiagram& operator=(IncrementalDynamicDiagram&&) = default;

  /// Inserts `p`; same contract as IncrementalQuadrantDiagram::Insert.
  StatusOr<PointId> Insert(const Point2D& p,
                           std::optional<std::string> label = std::nullopt);

  /// Deletes point `id`; same contract as IncrementalQuadrantDiagram::Delete
  /// (NotFound for unknown ids, FailedPrecondition for the last point, ids
  /// above the deleted one shift down).
  Status Delete(PointId id);

  const Dataset& dataset() const { return *dataset_; }
  const SubcellDiagram& diagram() const { return *diagram_; }

  /// Read-only snapshots sharable with concurrent readers (see
  /// IncrementalQuadrantDiagram::shared_dataset).
  std::shared_ptr<const Dataset> shared_dataset() const { return dataset_; }
  std::shared_ptr<const SubcellDiagram> shared_diagram() const {
    return diagram_;
  }

  /// Point-location query (interior-exact, like SubcellDiagram::Query).
  std::span<const PointId> Query(const Point2D& q) const {
    return diagram_->Query(q);
  }

  /// Number of subcells whose result was recomputed (not copied) by the
  /// last Insert / Delete; 0 before any mutation.
  uint64_t last_insert_recomputed_subcells() const {
    return last_insert_recomputed_subcells_;
  }
  uint64_t last_delete_recomputed_subcells() const {
    return last_delete_recomputed_subcells_;
  }

 private:
  IncrementalDynamicDiagram(std::shared_ptr<const Dataset> dataset,
                            std::shared_ptr<const SubcellDiagram> diagram,
                            const IncrementalOptions& options)
      : dataset_(std::move(dataset)),
        diagram_(std::move(diagram)),
        options_(options),
        pool_compaction_watermark_(diagram_->pool().size()) {}

  std::shared_ptr<const Dataset> dataset_;
  std::shared_ptr<const SubcellDiagram> diagram_;
  IncrementalOptions options_;
  uint64_t last_insert_recomputed_subcells_ = 0;
  uint64_t last_delete_recomputed_subcells_ = 0;
  /// Pool size after the last compacting mutation (or Create); see
  /// IncrementalQuadrantDiagram::pool_compaction_watermark_.
  size_t pool_compaction_watermark_ = 0;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_CORE_INCREMENTAL_DYNAMIC_H_
