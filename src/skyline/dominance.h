// Dominance predicates (Definitions 1-3 of the paper).
//
// The library's convention is *min-preference*: a dominates b when a is
// coordinate-wise <= b with at least one strict inequality. For quadrant and
// dynamic queries the comparison happens on |p - q| distances; helpers below
// provide the exact-integer versions used throughout (including 4x-scaled
// coordinates for subcell representatives, see DESIGN.md).
#ifndef SKYDIA_SRC_SKYLINE_DOMINANCE_H_
#define SKYDIA_SRC_SKYLINE_DOMINANCE_H_

#include <cstdint>
#include <cstdlib>

#include "src/geometry/point.h"

namespace skydia {

/// True when `a` dominates `b` (min-preference, Definition 1).
inline bool Dominates(const Point2D& a, const Point2D& b) {
  return a.x <= b.x && a.y <= b.y && (a.x < b.x || a.y < b.y);
}

/// d-dimensional dominance over raw coordinate rows.
bool DominatesNd(const int64_t* a, const int64_t* b, int dims);

/// True when `a` dominates `b` *with regard to query q* (Definition 2,
/// dynamic dominance): |a[i]-q[i]| <= |b[i]-q[i]| for all i, strict for one.
/// The query is given in 4x-scaled coordinates (points are compared as 4*p),
/// so that subcell representatives — which live on quarter-integer positions —
/// stay exact.
inline bool DynamicDominates4(const Point2D& a, const Point2D& b, int64_t qx4,
                              int64_t qy4) {
  const int64_t ax = std::llabs(4 * a.x - qx4);
  const int64_t ay = std::llabs(4 * a.y - qy4);
  const int64_t bx = std::llabs(4 * b.x - qx4);
  const int64_t by = std::llabs(4 * b.y - qy4);
  return ax <= bx && ay <= by && (ax < bx || ay < by);
}

/// Quadrant index of point `p` relative to query `q` under the library's
/// partition convention: Q1 = (x>=, y>=), Q2 = (x<, y>=), Q3 = (x<, y<),
/// Q4 = (x>=, y<). Returns 0..3 for Q1..Q4.
inline int QuadrantOf(const Point2D& p, const Point2D& q) {
  const bool right = p.x >= q.x;
  const bool up = p.y >= q.y;
  if (right && up) return 0;
  if (!right && up) return 1;
  if (!right && !up) return 2;
  return 3;
}

/// True when `a` dominates `b` with regard to `q` under *global* dominance
/// (Definition 3): both must lie in the same quadrant of `q`, and `a` must be
/// coordinate-wise at least as close with one dimension strictly closer.
inline bool GlobalDominates(const Point2D& a, const Point2D& b,
                            const Point2D& q) {
  if (QuadrantOf(a, q) != QuadrantOf(b, q)) return false;
  const int64_t ax = std::llabs(a.x - q.x);
  const int64_t ay = std::llabs(a.y - q.y);
  const int64_t bx = std::llabs(b.x - q.x);
  const int64_t by = std::llabs(b.y - q.y);
  return ax <= bx && ay <= by && (ax < bx || ay < by);
}

}  // namespace skydia

#endif  // SKYDIA_SRC_SKYLINE_DOMINANCE_H_
