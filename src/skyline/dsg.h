// Directed Skyline Graph (§IV.B).
//
// Captures the *direct* dominance relationships between points: u is a direct
// parent of c when u dominates c and no third point w satisfies
// u ≼ w ≼ c. The incremental diagram algorithm removes points in a monotone
// sweep order (dominators are always removed no later than the points they
// dominate), so a point becomes a skyline member exactly when its last
// remaining direct parent is removed — counting direct parents suffices.
//
// Direct parents of c are the maxima of c's dominator set: a dominator u is
// direct iff it does not strictly dominate any other dominator of c.
#ifndef SKYDIA_SRC_SKYLINE_DSG_H_
#define SKYDIA_SRC_SKYLINE_DSG_H_

#include <cstdint>
#include <vector>

#include "src/geometry/dataset.h"
#include "src/geometry/point.h"

namespace skydia {

/// The direct-dominance DAG of a 2-D dataset. Immutable after construction.
class DirectedSkylineGraph {
 public:
  /// Builds the graph in O(n^2) time (per-point maxima scan over a sorted
  /// order).
  explicit DirectedSkylineGraph(const Dataset& dataset);

  /// d-dimensional variant (pairwise, O(n^2 d + links * n) worst case; meant
  /// for the small inputs the high-dimensional diagrams run on).
  explicit DirectedSkylineGraph(const DatasetNd& dataset);

  size_t num_points() const { return children_.size(); }

  /// Direct children of `id` (points it directly dominates), sorted.
  const std::vector<PointId>& children(PointId id) const {
    return children_[id];
  }
  /// Direct parents of `id`, sorted.
  const std::vector<PointId>& parents(PointId id) const {
    return parents_[id];
  }
  uint32_t parent_count(PointId id) const {
    return static_cast<uint32_t>(parents_[id].size());
  }

  /// Total number of direct links (the paper's practical-cost driver).
  uint64_t num_links() const { return num_links_; }

 private:
  void Finalize();

  std::vector<std::vector<PointId>> children_;
  std::vector<std::vector<PointId>> parents_;
  uint64_t num_links_ = 0;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_SKYLINE_DSG_H_
