#include "src/skyline/interning.h"

#include <algorithm>
#include <cassert>

#include "src/common/hash.h"
#include "src/common/trace.h"

namespace skydia {

namespace {

uint64_t HashSpan(std::span<const PointId> ids) {
  return Fnv1a64(ids.data(), ids.size() * sizeof(PointId));
}

[[maybe_unused]] bool SortedUnique(std::span<const PointId> ids) {
  for (size_t i = 1; i < ids.size(); ++i) {
    if (ids[i - 1] >= ids[i]) return false;
  }
  return true;
}

}  // namespace

SkylineSetPool::SkylineSetPool(bool deduplicate) : deduplicate_(deduplicate) {
  // Reserve id 0 for the empty set so diagram code can use kEmptySetId.
  records_.push_back(SetRecord{0, 0});
  chain_.push_back(kNoSet);
  index_.emplace(HashSpan({}), kEmptySetId);
}

SetId SkylineSetPool::PushSet(std::span<const PointId> ids, uint64_t hash) {
  const auto id = static_cast<SetId>(records_.size());
  const uint64_t offset = arena_.size();
  // `ids` may point into the arena itself; growing can reallocate, so append
  // via a stable index rather than through the (possibly dangling) span.
  const bool aliases = !ids.empty() && ids.data() >= arena_.data() &&
                       ids.data() < arena_.data() + arena_.size();
  if (aliases) {
    const size_t src = static_cast<size_t>(ids.data() - arena_.data());
    arena_.resize(arena_.size() + ids.size());
    std::copy_n(arena_.begin() + static_cast<ptrdiff_t>(src), ids.size(),
                arena_.begin() + static_cast<ptrdiff_t>(offset));
  } else {
    arena_.insert(arena_.end(), ids.begin(), ids.end());
  }
  records_.push_back(SetRecord{offset, static_cast<uint32_t>(ids.size())});
  // Head insertion into the hash chain.
  const auto [it, inserted] = index_.emplace(hash, id);
  if (inserted) {
    chain_.push_back(kNoSet);
  } else {
    chain_.push_back(it->second);
    it->second = id;
  }
  return id;
}

SetId SkylineSetPool::LookupOrInsert(std::span<const PointId> ids) {
  assert(SortedUnique(ids));
  const uint64_t h = HashSpan(ids);
  if (deduplicate_ || ids.empty()) {
    const auto it = index_.find(h);
    if (it != index_.end()) {
      for (SetId candidate = it->second; candidate != kNoSet;
           candidate = chain_[candidate]) {
        const auto existing = Get(candidate);
        if (existing.size() == ids.size() &&
            std::equal(existing.begin(), existing.end(), ids.begin())) {
          return candidate;
        }
      }
    }
  }
  return PushSet(ids, h);
}

SetId SkylineSetPool::Intern(std::vector<PointId> ids) {
  return LookupOrInsert(ids);
}

SetId SkylineSetPool::InternCopy(std::span<const PointId> ids) {
  return LookupOrInsert(ids);
}

SetId SkylineSetPool::Append(std::vector<PointId> ids) {
  assert(SortedUnique(std::span<const PointId>(ids)));
  return PushSet(ids, HashSpan(ids));
}

void SkylineSetPool::AdoptArena(std::vector<PointId> buffer,
                                const std::vector<uint32_t>& lengths) {
  assert(records_.size() == 1 && arena_.empty());
  assert(!lengths.empty() && lengths[0] == 0);
  arena_ = std::move(buffer);
  records_.clear();
  chain_.clear();
  index_.clear();
  records_.reserve(lengths.size());
  chain_.reserve(lengths.size());
  uint64_t offset = 0;
  for (size_t s = 0; s < lengths.size(); ++s) {
    const auto id = static_cast<SetId>(s);
    records_.push_back(SetRecord{offset, lengths[s]});
    offset += lengths[s];
    const uint64_t h = HashSpan(Get(id));
    const auto [it, inserted] = index_.emplace(h, id);
    if (inserted) {
      chain_.push_back(kNoSet);
    } else {
      chain_.push_back(it->second);
      it->second = id;
    }
  }
  assert(offset == arena_.size());
}

void SkylineSetPool::AdoptFrom(const SkylineSetPool& base,
                               std::optional<PointId> shift_above) {
  assert(records_.size() == 1 && arena_.empty());
  records_ = base.records_;
  // No dedup index for the adopted sets: chains stay empty except the empty
  // set, which keeps id 0 findable so kEmptySetId stays canonical.
  chain_.assign(records_.size(), kNoSet);
  index_.clear();
  index_.emplace(HashSpan({}), kEmptySetId);
  if (!shift_above.has_value()) {
    arena_ = base.arena_;
    return;
  }
  // Deletion renumbering: members above the pivot shift down by one. Sets
  // still containing the pivot itself are by contract no longer referenced
  // by any cell (every cell whose result held the deleted point is
  // recomputed); shifted they would stop being sorted/unique, so they are
  // emptied in place — ids and record count stay stable, offsets rebuild.
  const PointId pivot = *shift_above;
  arena_.reserve(base.arena_.size());
  for (SetId id = 0; id < static_cast<SetId>(records_.size()); ++id) {
    const std::span<const PointId> members = base.Get(id);
    const uint64_t offset = arena_.size();
    const bool contains_pivot =
        std::binary_search(members.begin(), members.end(), pivot);
    if (!contains_pivot) {
      for (const PointId member : members) {
        arena_.push_back(member > pivot ? member - 1 : member);
      }
    }
    records_[id].offset = offset;
    records_[id].length =
        contains_pivot ? 0 : static_cast<uint32_t>(members.size());
  }
}

void SkylineSetPool::Freeze() {
  SKYDIA_TRACE_SPAN("pool.freeze");
  arena_.shrink_to_fit();
  records_.shrink_to_fit();
  chain_.shrink_to_fit();
}

uint64_t SkylineSetPool::ApproximateMemoryBytes() const {
  uint64_t bytes = arena_.capacity() * sizeof(PointId);
  bytes += records_.capacity() * sizeof(SetRecord);
  bytes += chain_.capacity() * sizeof(SetId);
  // Closed-addressing hash map: one node per entry plus the bucket array.
  bytes += index_.size() *
           (sizeof(std::pair<const uint64_t, SetId>) + sizeof(void*));
  bytes += index_.bucket_count() * sizeof(void*);
  return bytes;
}

}  // namespace skydia
