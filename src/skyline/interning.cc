#include "src/skyline/interning.h"

#include <algorithm>
#include <cassert>

#include "src/common/hash.h"

namespace skydia {

namespace {

uint64_t HashSpan(std::span<const PointId> ids) {
  return Fnv1a64(ids.data(), ids.size() * sizeof(PointId));
}

[[maybe_unused]] bool SortedUnique(std::span<const PointId> ids) {
  for (size_t i = 1; i < ids.size(); ++i) {
    if (ids[i - 1] >= ids[i]) return false;
  }
  return true;
}

}  // namespace

SkylineSetPool::SkylineSetPool(bool deduplicate) : deduplicate_(deduplicate) {
  // Reserve id 0 for the empty set so diagram code can use kEmptySetId.
  sets_.emplace_back();
  index_[HashSpan({})].push_back(kEmptySetId);
}

SetId SkylineSetPool::LookupOrInsert(std::span<const PointId> ids,
                                     bool may_move,
                                     std::vector<PointId>* owned) {
  assert(SortedUnique(ids));
  const uint64_t h = HashSpan(ids);
  std::vector<SetId>& bucket = index_[h];
  if (deduplicate_ || ids.empty()) {
    for (SetId candidate : bucket) {
      const std::vector<PointId>& existing = sets_[candidate];
      if (existing.size() == ids.size() &&
          std::equal(existing.begin(), existing.end(), ids.begin())) {
        return candidate;
      }
    }
  }
  const auto id = static_cast<SetId>(sets_.size());
  if (may_move) {
    sets_.push_back(std::move(*owned));
  } else {
    sets_.emplace_back(ids.begin(), ids.end());
  }
  total_elements_ += ids.size();
  bucket.push_back(id);
  return id;
}

SetId SkylineSetPool::Intern(std::vector<PointId> ids) {
  return LookupOrInsert(ids, /*may_move=*/true, &ids);
}

SetId SkylineSetPool::Append(std::vector<PointId> ids) {
  assert(SortedUnique(std::span<const PointId>(ids)));
  const uint64_t h = HashSpan(std::span<const PointId>(ids));
  const auto id = static_cast<SetId>(sets_.size());
  total_elements_ += ids.size();
  index_[h].push_back(id);
  sets_.push_back(std::move(ids));
  return id;
}

SetId SkylineSetPool::InternCopy(std::span<const PointId> ids) {
  return LookupOrInsert(ids, /*may_move=*/false, nullptr);
}

uint64_t SkylineSetPool::ApproximateMemoryBytes() const {
  uint64_t bytes = total_elements_ * sizeof(PointId);
  bytes += sets_.size() * sizeof(std::vector<PointId>);
  bytes += index_.size() *
           (sizeof(uint64_t) + sizeof(std::vector<SetId>) + sizeof(void*));
  for (const auto& [h, bucket] : index_) {
    bytes += bucket.size() * sizeof(SetId);
  }
  return bytes;
}

}  // namespace skydia
