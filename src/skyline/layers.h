// Skyline layers (the onion peeling of §IV.B): layer 1 is the skyline of the
// dataset, layer k the skyline of what remains after peeling layers < k.
// Properties used downstream (paper, §IV.B): points within a layer are
// mutually non-dominating; a point's dominators all live on strictly lower
// layers.
#ifndef SKYDIA_SRC_SKYLINE_LAYERS_H_
#define SKYDIA_SRC_SKYLINE_LAYERS_H_

#include <cstdint>
#include <vector>

#include "src/geometry/dataset.h"
#include "src/geometry/point.h"

namespace skydia {

/// The layer decomposition of a 2-D dataset.
struct SkylineLayers {
  /// layers[k] = ids on layer k (0-based), each sorted ascending.
  std::vector<std::vector<PointId>> layers;
  /// layer_of[id] = 0-based layer index of the point.
  std::vector<uint32_t> layer_of;

  size_t num_layers() const { return layers.size(); }
};

/// Computes the skyline layers by iterated staircase peeling. O(L * n log n)
/// where L is the number of layers.
SkylineLayers ComputeSkylineLayers(const Dataset& dataset);

/// d-dimensional variant (pairwise peeling, used by the high-dimensional
/// diagram code on small inputs).
SkylineLayers ComputeSkylineLayersNd(const DatasetNd& dataset);

}  // namespace skydia

#endif  // SKYDIA_SRC_SKYLINE_LAYERS_H_
