#include "src/skyline/dsg.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/skyline/dominance.h"

namespace skydia {

DirectedSkylineGraph::DirectedSkylineGraph(const Dataset& dataset) {
  const size_t n = dataset.size();
  children_.resize(n);
  parents_.resize(n);

  // Sort ids by (x asc, y asc). For each point c, walk the prefix backwards
  // (descending x) collecting the maxima of its dominator set.
  std::vector<PointId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    const Point2D& pa = dataset.point(a);
    const Point2D& pb = dataset.point(b);
    if (pa.x != pb.x) return pa.x < pb.x;
    if (pa.y != pb.y) return pa.y < pb.y;
    return a < b;
  });

  for (size_t ci = 0; ci < n; ++ci) {
    const PointId c = order[ci];
    const Point2D& pc = dataset.point(c);
    // Walk x-groups from c's own group leftwards. Within one x value, a
    // dominator is excluded by a same-x dominator with strictly larger y,
    // and by any already-seen (strictly larger x) dominator with y >= its y.
    int64_t max_seen_y = std::numeric_limits<int64_t>::min();
    bool any_seen = false;
    // Points after ci with the same x as c cannot dominate c (their y >= c.y
    // by sort order), so the backwards walk starts at ci.
    size_t i = ci;
    while (i > 0) {
      // Identify the x-group ending at i-1.
      const int64_t gx = dataset.point(order[i - 1]).x;
      size_t begin = i;
      while (begin > 0 && dataset.point(order[begin - 1]).x == gx) --begin;
      // Collect dominators in [begin, i) and their max y.
      int64_t group_max = std::numeric_limits<int64_t>::min();
      bool group_any = false;
      for (size_t k = begin; k < i; ++k) {
        const Point2D& w = dataset.point(order[k]);
        const bool dominates =
            w.x <= pc.x && w.y <= pc.y && (w.x < pc.x || w.y < pc.y);
        if (dominates) {
          group_any = true;
          group_max = std::max(group_max, w.y);
        }
      }
      if (group_any && (!any_seen || group_max > max_seen_y)) {
        for (size_t k = begin; k < i; ++k) {
          const PointId w_id = order[k];
          const Point2D& w = dataset.point(w_id);
          const bool dominates =
              w.x <= pc.x && w.y <= pc.y && (w.x < pc.x || w.y < pc.y);
          if (dominates && w.y == group_max) {
            parents_[c].push_back(w_id);
            children_[w_id].push_back(c);
          }
        }
      }
      if (group_any) {
        max_seen_y = any_seen ? std::max(max_seen_y, group_max) : group_max;
        any_seen = true;
      }
      i = begin;
    }
  }
  Finalize();
}

DirectedSkylineGraph::DirectedSkylineGraph(const DatasetNd& dataset) {
  const size_t n = dataset.size();
  const int dims = dataset.dims();
  children_.resize(n);
  parents_.resize(n);
  std::vector<PointId> dominators;
  for (PointId c = 0; c < n; ++c) {
    dominators.clear();
    for (PointId w = 0; w < n; ++w) {
      if (w != c && DominatesNd(dataset.row(w), dataset.row(c), dims)) {
        dominators.push_back(w);
      }
    }
    for (PointId u : dominators) {
      bool direct = true;
      for (PointId w : dominators) {
        if (w != u && DominatesNd(dataset.row(u), dataset.row(w), dims)) {
          direct = false;
          break;
        }
      }
      if (direct) {
        parents_[c].push_back(u);
        children_[u].push_back(c);
      }
    }
  }
  Finalize();
}

void DirectedSkylineGraph::Finalize() {
  num_links_ = 0;
  for (auto& v : children_) {
    std::sort(v.begin(), v.end());
    num_links_ += v.size();
  }
  for (auto& v : parents_) std::sort(v.begin(), v.end());
}

}  // namespace skydia
