#include "src/skyline/query.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "src/common/logging.h"
#include "src/skyline/algorithms.h"
#include "src/skyline/dominance.h"

namespace skydia {

std::vector<PointId> QuadrantSkyline(const Dataset& dataset, const Point2D& q,
                                     int quadrant) {
  SKYDIA_CHECK(quadrant >= 0 && quadrant < 4);
  std::vector<PointId> ids;
  std::vector<Point2D> mapped;
  for (PointId id = 0; id < dataset.size(); ++id) {
    const Point2D& p = dataset.point(id);
    if (QuadrantOf(p, q) != quadrant) continue;
    ids.push_back(id);
    mapped.push_back(Point2D{std::llabs(p.x - q.x), std::llabs(p.y - q.y)});
  }
  return MinStaircase(std::move(mapped), std::move(ids));
}

std::vector<PointId> GlobalSkyline(const Dataset& dataset, const Point2D& q) {
  std::vector<PointId> result;
  for (int k = 0; k < 4; ++k) {
    std::vector<PointId> part = QuadrantSkyline(dataset, q, k);
    result.insert(result.end(), part.begin(), part.end());
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<PointId> QuadrantSkylineAt4(const Dataset& dataset, int64_t qx4,
                                        int64_t qy4, int quadrant) {
  SKYDIA_CHECK(quadrant >= 0 && quadrant < 4);
  std::vector<PointId> ids;
  std::vector<Point2D> mapped;
  for (PointId id = 0; id < dataset.size(); ++id) {
    const Point2D& p = dataset.point(id);
    const bool right = 4 * p.x >= qx4;
    const bool up = 4 * p.y >= qy4;
    const int k = (right && up) ? 0 : (!right && up) ? 1 : (!right) ? 2 : 3;
    if (k != quadrant) continue;
    ids.push_back(id);
    mapped.push_back(
        Point2D{std::llabs(4 * p.x - qx4), std::llabs(4 * p.y - qy4)});
  }
  return MinStaircase(std::move(mapped), std::move(ids));
}

std::vector<PointId> GlobalSkylineAt4(const Dataset& dataset, int64_t qx4,
                                      int64_t qy4) {
  std::vector<PointId> result;
  for (int k = 0; k < 4; ++k) {
    std::vector<PointId> part = QuadrantSkylineAt4(dataset, qx4, qy4, k);
    result.insert(result.end(), part.begin(), part.end());
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<PointId> DynamicSkyline(const Dataset& dataset, const Point2D& q) {
  return DynamicSkylineAt4(dataset, 4 * q.x, 4 * q.y);
}

std::vector<PointId> DynamicSkylineAt4(const Dataset& dataset, int64_t qx4,
                                       int64_t qy4) {
  std::vector<PointId> ids(dataset.size());
  for (PointId id = 0; id < dataset.size(); ++id) ids[id] = id;
  return DynamicSkylineOfSubsetAt4(dataset, ids, qx4, qy4);
}

std::vector<PointId> DynamicSkylineOfSubsetAt4(
    const Dataset& dataset, const std::vector<PointId>& candidates,
    int64_t qx4, int64_t qy4) {
  std::vector<MappedCandidate> scratch;
  std::vector<PointId> out;
  DynamicSkylineOfSubsetAt4(dataset, candidates, qx4, qy4, &scratch, &out);
  return out;
}

void DynamicSkylineOfSubsetAt4(const Dataset& dataset,
                               std::span<const PointId> candidates,
                               int64_t qx4, int64_t qy4,
                               std::vector<MappedCandidate>* scratch,
                               std::vector<PointId>* out) {
  scratch->clear();
  scratch->reserve(candidates.size());
  for (PointId id : candidates) {
    const Point2D& p = dataset.point(id);
    scratch->push_back(MappedCandidate{std::llabs(4 * p.x - qx4),
                                       std::llabs(4 * p.y - qy4), id});
  }
  std::sort(scratch->begin(), scratch->end(),
            [](const MappedCandidate& a, const MappedCandidate& b) {
              if (a.mx != b.mx) return a.mx < b.mx;
              return a.my < b.my;
            });
  out->clear();
  // Staircase over (mx, my) with tie groups: within one mx value the minimum
  // my comes first; every copy of the group minimum survives when it beats
  // all previous groups.
  int64_t best = std::numeric_limits<int64_t>::max();
  size_t i = 0;
  const size_t k = scratch->size();
  while (i < k) {
    const int64_t gx = (*scratch)[i].mx;
    const int64_t group_min = (*scratch)[i].my;
    if (group_min < best) {
      while (i < k && (*scratch)[i].mx == gx && (*scratch)[i].my == group_min) {
        out->push_back((*scratch)[i].id);
        ++i;
      }
      best = group_min;
    }
    while (i < k && (*scratch)[i].mx == gx) ++i;
  }
  std::sort(out->begin(), out->end());
}

}  // namespace skydia
