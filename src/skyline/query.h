// Reference (brute-force) query evaluation for the three skyline query
// semantics. These are the ground truth every diagram algorithm is validated
// against, and the "from scratch" competitor in the query-latency experiment.
//
// Semantics (see DESIGN.md "Coordinate model" for the boundary conventions):
//  * Quadrant k candidates partition the point set:
//      Q1 = {x >= qx, y >= qy}, Q2 = {x < qx, y >= qy},
//      Q3 = {x < qx, y < qy},  Q4 = {x >= qx, y < qy}.
//    Within a quadrant, p dominates p' iff it is coordinate-wise at least as
//    close to q with one dimension strictly closer.
//  * Global skyline = union of the four quadrant skylines (Definition 3).
//  * Dynamic skyline maps every point through |p - q| and takes the
//    traditional skyline of the mapped multiset (Definition 2).
#ifndef SKYDIA_SRC_SKYLINE_QUERY_H_
#define SKYDIA_SRC_SKYLINE_QUERY_H_

#include <span>
#include <vector>

#include "src/geometry/dataset.h"
#include "src/geometry/point.h"

namespace skydia {

/// Skyline of quadrant `quadrant` (0..3 for Q1..Q4) w.r.t. query `q`.
/// Returns ids sorted ascending. O(n log n).
std::vector<PointId> QuadrantSkyline(const Dataset& dataset, const Point2D& q,
                                     int quadrant);

/// First-quadrant skyline (the paper's default "quadrant skyline query").
inline std::vector<PointId> FirstQuadrantSkyline(const Dataset& dataset,
                                                 const Point2D& q) {
  return QuadrantSkyline(dataset, q, 0);
}

/// Global skyline (union of the four quadrant skylines), ids sorted ascending.
std::vector<PointId> GlobalSkyline(const Dataset& dataset, const Point2D& q);

/// Dynamic skyline w.r.t. `q`, ids sorted ascending.
std::vector<PointId> DynamicSkyline(const Dataset& dataset, const Point2D& q);

/// Variants taking the query position in 4x-scaled coordinates (used for
/// cell/subcell interior representatives on fractional positions).
std::vector<PointId> QuadrantSkylineAt4(const Dataset& dataset, int64_t qx4,
                                        int64_t qy4, int quadrant);
std::vector<PointId> GlobalSkylineAt4(const Dataset& dataset, int64_t qx4,
                                      int64_t qy4);

/// Dynamic skyline w.r.t. a query position given in 4x-scaled coordinates
/// (used for subcell representatives that live on quarter-integer positions).
std::vector<PointId> DynamicSkylineAt4(const Dataset& dataset, int64_t qx4,
                                       int64_t qy4);

/// Dynamic skyline restricted to the candidate subset `candidates`
/// (ids into `dataset`); the query is in 4x coordinates. Used by the subset
/// and scanning diagram algorithms. O(k log k).
std::vector<PointId> DynamicSkylineOfSubsetAt4(
    const Dataset& dataset, const std::vector<PointId>& candidates,
    int64_t qx4, int64_t qy4);

/// One candidate mapped through |p - q| (4x coordinates).
struct MappedCandidate {
  int64_t mx;
  int64_t my;
  PointId id;
};

/// Allocation-free variant of DynamicSkylineOfSubsetAt4 for tight per-subcell
/// loops: `scratch` and `out` are reused across calls. `out` receives the
/// skyline ids sorted ascending.
void DynamicSkylineOfSubsetAt4(const Dataset& dataset,
                               std::span<const PointId> candidates,
                               int64_t qx4, int64_t qy4,
                               std::vector<MappedCandidate>* scratch,
                               std::vector<PointId>* out);

}  // namespace skydia

#endif  // SKYDIA_SRC_SKYLINE_QUERY_H_
