#include "src/skyline/layers.h"

#include <numeric>

#include "src/skyline/algorithms.h"
#include "src/skyline/dominance.h"

namespace skydia {

SkylineLayers ComputeSkylineLayers(const Dataset& dataset) {
  SkylineLayers result;
  result.layer_of.assign(dataset.size(), 0);
  std::vector<PointId> remaining(dataset.size());
  std::iota(remaining.begin(), remaining.end(), 0);
  while (!remaining.empty()) {
    std::vector<PointId> layer = SkylineOfSubset2d(dataset, remaining);
    const auto layer_index = static_cast<uint32_t>(result.layers.size());
    for (PointId id : layer) result.layer_of[id] = layer_index;
    // `layer` is sorted ascending (SkylineOfSubset2d contract); remaining is
    // kept sorted, so one linear pass removes the peeled points.
    std::vector<PointId> next;
    next.reserve(remaining.size() - layer.size());
    size_t li = 0;
    for (PointId id : remaining) {
      if (li < layer.size() && layer[li] == id) {
        ++li;
      } else {
        next.push_back(id);
      }
    }
    result.layers.push_back(std::move(layer));
    remaining = std::move(next);
  }
  return result;
}

SkylineLayers ComputeSkylineLayersNd(const DatasetNd& dataset) {
  SkylineLayers result;
  const int dims = dataset.dims();
  result.layer_of.assign(dataset.size(), 0);
  std::vector<PointId> remaining(dataset.size());
  std::iota(remaining.begin(), remaining.end(), 0);
  while (!remaining.empty()) {
    std::vector<PointId> layer;
    for (PointId a : remaining) {
      bool dominated = false;
      for (PointId b : remaining) {
        if (b != a && DominatesNd(dataset.row(b), dataset.row(a), dims)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) layer.push_back(a);
    }
    const auto layer_index = static_cast<uint32_t>(result.layers.size());
    for (PointId id : layer) result.layer_of[id] = layer_index;
    std::vector<PointId> next;
    size_t li = 0;
    for (PointId id : remaining) {
      if (li < layer.size() && layer[li] == id) {
        ++li;
      } else {
        next.push_back(id);
      }
    }
    result.layers.push_back(std::move(layer));
    remaining = std::move(next);
  }
  return result;
}

}  // namespace skydia
