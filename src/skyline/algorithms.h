// Skyline computation substrate.
//
// Implements the classic algorithms the paper builds on (and compares
// against): the 2-D sort-scan staircase, Block-Nested-Loop (BNL,
// Börzsönyi et al.), Sort-Filter-Skyline (SFS, Chomicki et al.) and the
// divide-and-conquer maxima algorithm (Kung/Luccio/Preparata lineage) for
// d >= 2. All return point ids sorted ascending, all are exact under ties
// (duplicate points are mutually non-dominating and all belong to the
// skyline).
#ifndef SKYDIA_SRC_SKYLINE_ALGORITHMS_H_
#define SKYDIA_SRC_SKYLINE_ALGORITHMS_H_

#include <vector>

#include "src/geometry/dataset.h"
#include "src/geometry/point.h"

namespace skydia {

enum class SkylineAlgorithm {
  kSortScan,        // 2-D only, O(n log n)
  kBlockNestedLoop, // any d, O(n^2) worst case
  kSortFilter,      // any d, O(n^2) worst case, strong in practice
  kDivideConquer,   // any d, O(n log n) for d=2/3 style recursion
};

/// Computes the skyline of the whole 2-D dataset (min-preference) with the
/// requested algorithm. Returns ids sorted ascending.
std::vector<PointId> ComputeSkyline2d(const Dataset& dataset,
                                      SkylineAlgorithm algorithm);

/// Computes the skyline of a d-dimensional dataset. kSortScan is rejected for
/// d != 2 via SKYDIA_CHECK.
std::vector<PointId> ComputeSkylineNd(const DatasetNd& dataset,
                                      SkylineAlgorithm algorithm);

/// Computes the skyline of the subset `candidates` (ids into `dataset`),
/// min-preference over the original coordinates. O(k log k) sort-scan.
/// Returns ids sorted ascending.
std::vector<PointId> SkylineOfSubset2d(const Dataset& dataset,
                                       const std::vector<PointId>& candidates);

/// Computes the skyline of the subset `candidates` (ids into `dataset`) in d
/// dimensions via the divide & conquer recursion. Returns ids sorted
/// ascending.
std::vector<PointId> SkylineOfSubsetNd(const DatasetNd& dataset,
                                       const std::vector<PointId>& candidates);

/// Staircase core shared by several diagram algorithms: given (x, y, id)
/// triples, returns the ids of min-preference skyline members, ascending.
/// Exact under ties in either coordinate and under duplicate points.
std::vector<PointId> MinStaircase(std::vector<Point2D> coords,
                                  std::vector<PointId> ids);

}  // namespace skydia

#endif  // SKYDIA_SRC_SKYLINE_ALGORITHMS_H_
