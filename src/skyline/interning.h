// Hash-consing pool for skyline result sets.
//
// The cell maps store one result per cell — up to O(n^2) cells for
// quadrant/global and O(n^4) subcells for dynamic diagrams — but neighbouring
// cells overwhelmingly share results (that is exactly why polyominoes exist).
// Interning stores every distinct result once and lets cells carry a 32-bit
// id, turning the O(n^3)/O(n^5) worst-case output space into
// O(#polyominoes * avg skyline size) in practice. The `abl-intern` benchmark
// quantifies the effect.
//
// Storage layout: the pool is an arena. All set members live back to back in
// one contiguous buffer; each SetId maps to an {offset, length} record into
// it. Point-location therefore touches exactly two cache lines (record +
// members) instead of chasing a per-set heap vector, and the per-set overhead
// is a 16-byte record rather than a 24-byte std::vector header plus its
// allocation. SetIds are assigned densely in insertion order and are stable
// for the lifetime of the pool (Freeze() never renumbers).
//
// Span validity: spans returned by Get() point into the arena and are
// invalidated by any subsequent Intern/InternCopy/Append that grows the
// buffer — consume them before interning again, or copy. (Freeze() also
// reallocates; existing SetIds stay valid, outstanding spans do not.)
#ifndef SKYDIA_SRC_SKYLINE_INTERNING_H_
#define SKYDIA_SRC_SKYLINE_INTERNING_H_

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/geometry/point.h"

namespace skydia {

/// Identifier of an interned skyline result set.
using SetId = uint32_t;

/// The id every pool assigns to the empty set (always interned first).
inline constexpr SetId kEmptySetId = 0;

/// Deduplicating arena store of point-id sets. Sets are canonicalized as
/// ascending id vectors. Not thread-safe.
class SkylineSetPool {
 public:
  /// `deduplicate == false` disables hash-consing (every Intern call stores a
  /// fresh copy); used only by the interning ablation benchmark.
  explicit SkylineSetPool(bool deduplicate = true);

  /// Interns `ids`, which must be sorted ascending and duplicate-free
  /// (checked in debug builds). Returns the id of the canonical copy.
  SetId Intern(std::vector<PointId> ids);

  /// Interns without taking ownership (copies only on first sight).
  SetId InternCopy(std::span<const PointId> ids);

  /// Appends `ids` as a new set without deduplication lookup, returning its
  /// id. Used by deserialization to reproduce a stored pool verbatim
  /// (including pools built with deduplication off). `ids` must be sorted
  /// ascending and duplicate-free.
  SetId Append(std::vector<PointId> ids);

  /// Replaces the contents of a freshly constructed pool with a whole arena
  /// at once: `buffer` holds every set's members back to back, partitioned by
  /// `lengths` (one entry per set; entry 0 must be 0 for the empty set). The
  /// v2 deserialization path uses this to adopt the on-disk arena block
  /// without per-set copies. Rebuilds the dedup index.
  void AdoptArena(std::vector<PointId> buffer,
                  const std::vector<uint32_t>& lengths);

  /// Replaces the contents of a freshly constructed pool with a verbatim
  /// copy of `base`: every SetId of `base` stays valid here with identical
  /// members. Unlike AdoptArena the dedup index is NOT rebuilt (only the
  /// empty set stays indexed), so later Intern calls deduplicate against
  /// post-adoption sets only — the incremental mutation path uses this to
  /// carry a multi-million-set pool across a mutation in one memcpy instead
  /// of re-hashing every set. When `shift_above` is set, every stored member
  /// id strictly greater than `*shift_above` is decremented by one (the
  /// renumbering a point deletion induces), and sets containing
  /// `*shift_above` itself — by contract no longer referenced by any cell —
  /// are emptied in place, keeping every record sorted/unique and in range.
  /// An adopted pool may hold duplicate contents (hash-consing resumes only
  /// for sets interned after adoption), so it is not canonical in the
  /// ValidateOptions::require_canonical_pool sense until the owner's next
  /// compacting mutation re-interns it.
  void AdoptFrom(const SkylineSetPool& base,
                 std::optional<PointId> shift_above = std::nullopt);

  /// The canonical members of set `id`, ascending. Invalidated by the next
  /// mutating call (see file comment).
  std::span<const PointId> Get(SetId id) const {
    const SetRecord& r = records_[id];
    return std::span<const PointId>(arena_.data() + r.offset, r.length);
  }

  /// Number of distinct sets (including the empty set).
  size_t size() const { return records_.size(); }

  /// Arena offset of set `id`'s members (record introspection for the
  /// structural validator; see src/core/validate.h). Together with
  /// `Get(id).size()` this exposes the full {offset, length} record.
  uint64_t record_offset(SetId id) const { return records_[id].offset; }

  /// Whether Intern/InternCopy hash-cons (true except for the
  /// interning-ablation pools). Note a deduplicating pool can still hold
  /// duplicate contents when populated via Append/AdoptArena — deserialized
  /// pools reproduce whatever the writer stored.
  bool deduplicates() const { return deduplicate_; }

  /// Total stored elements across all distinct sets (== arena length).
  uint64_t total_elements() const { return arena_.size(); }

  /// Releases growth slack: shrinks the arena and record tables to their
  /// exact sizes. Call after construction finishes; the pool stays fully
  /// usable (later Intern calls simply regrow).
  void Freeze();

  /// Heap footprint of the pool in bytes. Exact for the arena, record and
  /// chain storage (capacities, not sizes); the hash index is estimated from
  /// node and bucket counts.
  uint64_t ApproximateMemoryBytes() const;

 private:
  struct SetRecord {
    uint64_t offset;
    uint32_t length;
  };
  static constexpr SetId kNoSet = ~SetId{0};

  SetId LookupOrInsert(std::span<const PointId> ids);
  /// Appends the members to the arena and registers the new set in the index
  /// chain. `ids` may alias the arena itself.
  SetId PushSet(std::span<const PointId> ids, uint64_t hash);

  std::vector<PointId> arena_;     // all members, back to back
  std::vector<SetRecord> records_; // SetId -> slice of arena_
  // hash -> first SetId with that hash; collisions chain through chain_.
  std::unordered_map<uint64_t, SetId> index_;
  std::vector<SetId> chain_;       // SetId -> next SetId with the same hash
  bool deduplicate_ = true;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_SKYLINE_INTERNING_H_
