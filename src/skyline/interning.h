// Hash-consing pool for skyline result sets.
//
// The cell maps store one result per cell — up to O(n^2) cells for
// quadrant/global and O(n^4) subcells for dynamic diagrams — but neighbouring
// cells overwhelmingly share results (that is exactly why polyominoes exist).
// Interning stores every distinct result once and lets cells carry a 32-bit
// id, turning the O(n^3)/O(n^5) worst-case output space into
// O(#polyominoes * avg skyline size) in practice. The `abl-intern` benchmark
// quantifies the effect.
#ifndef SKYDIA_SRC_SKYLINE_INTERNING_H_
#define SKYDIA_SRC_SKYLINE_INTERNING_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/geometry/point.h"

namespace skydia {

/// Identifier of an interned skyline result set.
using SetId = uint32_t;

/// The id every pool assigns to the empty set (always interned first).
inline constexpr SetId kEmptySetId = 0;

/// Deduplicating store of point-id sets. Sets are canonicalized as ascending
/// id vectors. Not thread-safe.
class SkylineSetPool {
 public:
  /// `deduplicate == false` disables hash-consing (every Intern call stores a
  /// fresh copy); used only by the interning ablation benchmark.
  explicit SkylineSetPool(bool deduplicate = true);

  /// Interns `ids`, which must be sorted ascending and duplicate-free
  /// (checked in debug builds). Returns the id of the canonical copy.
  SetId Intern(std::vector<PointId> ids);

  /// Interns without taking ownership (copies only on first sight).
  SetId InternCopy(std::span<const PointId> ids);

  /// Appends `ids` as a new set without deduplication lookup, returning its
  /// id. Used by deserialization to reproduce a stored pool verbatim
  /// (including pools built with deduplication off). `ids` must be sorted
  /// ascending and duplicate-free.
  SetId Append(std::vector<PointId> ids);

  /// The canonical members of set `id`, ascending.
  std::span<const PointId> Get(SetId id) const {
    return std::span<const PointId>(sets_[id]);
  }

  /// Number of distinct sets (including the empty set).
  size_t size() const { return sets_.size(); }

  /// Total stored elements across all distinct sets.
  uint64_t total_elements() const { return total_elements_; }

  /// Approximate heap footprint of the pool in bytes.
  uint64_t ApproximateMemoryBytes() const;

 private:
  SetId LookupOrInsert(std::span<const PointId> ids, bool may_move,
                       std::vector<PointId>* owned);

  std::vector<std::vector<PointId>> sets_;
  // hash -> candidate set ids (collision chain).
  std::unordered_map<uint64_t, std::vector<SetId>> index_;
  uint64_t total_elements_ = 0;
  bool deduplicate_ = true;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_SKYLINE_INTERNING_H_
