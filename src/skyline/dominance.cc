#include "src/skyline/dominance.h"

namespace skydia {

bool DominatesNd(const int64_t* a, const int64_t* b, int dims) {
  bool strict = false;
  for (int i = 0; i < dims; ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

}  // namespace skydia
